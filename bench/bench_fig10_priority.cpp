// Fig 10: receiver-driven prioritization.  A host receives one 200KB short
// flow while six long flows hammer it.  With the short flow's PULLs placed
// in a higher priority class, its completion time stays within tens of
// microseconds of the idle-network time; without, it gets a 1/7 fair share.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "harness/experiments.h"
#include "harness/flow_factory.h"
#include "topo/micro_topo.h"

namespace ndpsim {
namespace {

enum class mode { idle, with_priority, without_priority };

sample_set run_mode(mode m, std::uint64_t bytes, int trials) {
  sample_set fct_us;
  for (int t = 0; t < trials; ++t) {
    sim_env env(500 + t);
    fabric_params fp;
    fp.proto = protocol::ndp;
    single_switch topo(env, 8, gbps(10), from_us(1),
                       make_queue_factory(env, fp));
    flow_factory flows(env, topo);
    if (m != mode::idle) {
      for (std::uint32_t s = 0; s < 6; ++s) {
        flow_options o;  // unbounded long flows
        o.start = 0;
        flows.create(protocol::ndp, s, 7, o);
      }
      env.events.run_until(from_ms(1));  // long flows reach steady state
    }
    flow_options so;
    so.bytes = bytes;
    so.start = env.now() + static_cast<simtime_t>(env.rand_below(2000)) *
                               kNanosecond;
    so.pull_class = m == mode::with_priority ? 1 : 0;
    flow& f = flows.create(protocol::ndp, 6, 7, so);
    run_until_complete(env, {&f}, env.now() + from_ms(100));
    fct_us.add(f.fct_us());
  }
  return fct_us;
}

void BM_priority(benchmark::State& state) {
  const auto m = static_cast<mode>(state.range(0));
  sample_set s;
  for (auto _ : state) s = run_mode(m, 200'000, 15);
  state.counters["fct_us_median"] = s.median();
  state.counters["fct_us_p90"] = s.quantile(0.90);
  state.SetLabel(m == mode::idle               ? "idle"
                 : m == mode::with_priority    ? "with prioritization"
                                               : "without prioritization");
}

BENCHMARK(BM_priority)
    ->Arg(static_cast<int>(mode::idle))
    ->Arg(static_cast<int>(mode::with_priority))
    ->Arg(static_cast<int>(mode::without_priority))
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ndpsim

int main(int argc, char** argv) {
  ndpsim::bench::print_banner(
      "Fig 10: prioritizing a 200KB flow over six long flows to one host",
      "FCT with priority within ~50us of idle; without priority ~500us "
      "slower (fair 1/7 share)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
