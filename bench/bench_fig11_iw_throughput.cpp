// Fig 11: throughput of a single NDP flow between two back-to-back hosts as
// a function of the initial window, with and without the host-processing
// delay model ("Perfect" vs "Experimental").
//
// The link one-way delay is 50us, so the bandwidth-delay product is ~15 full
// 9K packets: the Perfect curve saturates at IW~15.  The prototype buffers
// ~10 extra packets of host processing (36us per direction), pushing the
// knee to IW~25 — exactly the paper's observation.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "harness/flow_factory.h"
#include "harness/queue_factory.h"
#include "host/artifacts.h"
#include "topo/micro_topo.h"

namespace ndpsim {
namespace {

double run_iw(std::uint32_t iw, bool host_delays) {
  sim_env env(3);
  fabric_params fp;
  fp.proto = protocol::ndp;
  const simtime_t delay =
      from_us(50) + (host_delays ? host_delay_model{}.per_direction : 0);
  back_to_back topo(env, gbps(10), delay, make_queue_factory(env, fp));
  flow_factory flows(env, topo);
  flow_options o;  // unbounded
  o.iw_packets = iw;
  // A grossly oversized IW self-inflates the RTT past the 1ms default RTO
  // (256 packets = 1.8ms of NIC backlog); the paper's point here is
  // throughput vs IW, so keep the RTO backstop out of the way.
  o.ndp_rto = from_ms(10);
  flow& f = flows.create(protocol::ndp, 0, 1, o);
  env.events.run_until(from_ms(5));
  const std::uint64_t base = f.payload_received();
  env.events.run_until(from_ms(15));
  return static_cast<double>(f.payload_received() - base) * 8 /
         to_sec(from_ms(10)) / 1e9;
}

void BM_iw(benchmark::State& state) {
  const auto iw = static_cast<std::uint32_t>(state.range(0));
  const bool host_delays = state.range(1) != 0;
  double gbps_measured = 0;
  for (auto _ : state) gbps_measured = run_iw(iw, host_delays);
  state.counters["throughput_gbps"] = gbps_measured;
  state.SetLabel(host_delays ? "Experimental (host delays)" : "Perfect");
}

BENCHMARK(BM_iw)
    ->ArgsProduct({{1, 2, 4, 8, 12, 15, 20, 25, 32, 64, 128, 256}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ndpsim

int main(int argc, char** argv) {
  ndpsim::bench::print_banner(
      "Fig 11: throughput vs initial window, back-to-back hosts",
      "Perfect saturates 10G at IW~15; with host processing delays the knee "
      "moves to IW~25 (the prototype's extra ~10 buffered packets)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
