// Scratch profiling driver: just the k=32 NDP permutation figure (the
// hot-path workload the flat-dispatch work targets), so a sampling profiler
// sees only the inner loop.  Not part of the recorded bench.
#include <chrono>
#include <cstdio>

#include "harness/experiments.h"

using namespace ndpsim;

int main() {
  const auto t0 = std::chrono::steady_clock::now();
  fabric_params fp;
  fp.proto = protocol::ndp;
  auto bed = make_fat_tree_testbed(7, 32, fp);
  flow_options o;
  o.max_paths = 16;
  const auto res = run_permutation(*bed, protocol::ndp, o, from_us(150),
                                   from_us(350));
  (void)res;
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto& ds = bed->env.events.dispatch_stats();
  std::printf("events %llu wall %.2fs  %.2fM ev/s\n",
              (unsigned long long)bed->env.events.events_processed(), wall,
              bed->env.events.events_processed() / wall / 1e6);
  std::printf("heap %llu lane %llu flat %llu runs %llu (avg run %.2f)\n",
              (unsigned long long)ds.heap_events,
              (unsigned long long)ds.lane_events,
              (unsigned long long)ds.flat_events,
              (unsigned long long)ds.flat_runs,
              ds.flat_runs ? (double)ds.flat_events / ds.flat_runs : 0.0);
  return 0;
}
