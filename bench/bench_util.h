// Shared helpers for the per-figure benchmark binaries.
//
// Every binary reproduces one figure/table of the paper and prints the
// measured series next to the paper's qualitative expectation.  Topology
// sizes default to laptop-friendly scale; set NDP_BENCH_SCALE=paper for the
// paper's sizes (432/8192-host FatTrees etc.).
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace ndpsim::bench {

/// True when NDP_BENCH_SCALE=paper: run the paper's full topology sizes.
inline bool paper_scale() {
  const char* s = std::getenv("NDP_BENCH_SCALE");
  return s != nullptr && std::strcmp(s, "paper") == 0;
}

/// FatTree k for "the 432-host topology" experiments (k=12 at paper scale).
inline unsigned default_k() { return paper_scale() ? 12 : 8; }

inline void print_banner(const char* figure, const char* expectation) {
  std::printf("\n=== %s ===\n", figure);
  std::printf("paper expectation: %s\n", expectation);
  std::printf("scale: %s (set NDP_BENCH_SCALE=paper for full size)\n\n",
              paper_scale() ? "paper" : "reduced");
}

}  // namespace ndpsim::bench
