// Ablation: which parts of the NDP switch actually matter?
//
// The paper motivates three changes over CP (§3.1): priority forwarding of
// headers with a 10:1 WRR cap, the 50% trim-position coin, and
// return-to-sender.  This bench disables one mechanism at a time and runs
// the two stress scenarios that exposed them:
//   (a) a 40:1 line-rate overload (collapse/fairness, Fig 2's setting),
//   (b) a 60:1 single-packet-flow incast (RTS's reason to exist, §3.2.4).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "ndp/ndp_queue.h"
#include "ndp/ndp_sink.h"
#include "ndp/ndp_source.h"
#include "ndp/pull_pacer.h"
#include "net/fifo_queues.h"
#include "stats/cdf.h"
#include "topo/micro_topo.h"
#include "topo/path_table.h"
#include "workload/cbr_source.h"

namespace ndpsim {
namespace {

enum class variant : int {
  full,        // the NDP queue as published
  no_wrr,      // strict header priority (WRR cap removed)
  no_coin,     // always trim the arriving packet (CP-style victim choice)
  no_rts,      // drop headers when the header queue fills
  no_trim,     // plain drop-tail (the "who needs trimming" strawman)
};

ndp_queue_config make_cfg(variant v) {
  ndp_queue_config c;
  switch (v) {
    case variant::full:
      break;
    case variant::no_wrr:
      c.wrr_headers_per_data = 1u << 30;
      break;
    case variant::no_coin:
      c.random_trim_position = false;
      break;
    case variant::no_rts:
      c.enable_rts = false;
      break;
    case variant::no_trim:
      c.enable_trimming = false;
      break;
  }
  return c;
}

const char* variant_name(variant v) {
  switch (v) {
    case variant::full: return "full NDP queue";
    case variant::no_wrr: return "no WRR cap (strict header prio)";
    case variant::no_coin: return "no trim coin (always arrival)";
    case variant::no_rts: return "no return-to-sender";
    case variant::no_trim: return "no trimming (drop-tail)";
  }
  return "?";
}

queue_factory factory_for(sim_env& env, variant v) {
  return [&env, v](link_level level, std::size_t, linkspeed_bps rate,
                   const std::string& name) -> std::unique_ptr<queue_base> {
    if (level == link_level::host_up) {
      return std::make_unique<host_priority_queue>(env, rate, name);
    }
    return std::make_unique<ndp_queue>(env, rate, make_cfg(v), name);
  };
}

// (a) 40 unresponsive line-rate senders -> one port: mean and worst-10% of
// fair-share goodput.
void BM_overload(benchmark::State& state) {
  const auto v = static_cast<variant>(state.range(0));
  double mean_pct = 0;
  double worst10_pct = 0;
  for (auto _ : state) {
    sim_env env(4);
    const std::size_t n = 40;
    single_switch star(env, n + 1, gbps(10), from_us(1), factory_for(env, v));
    std::vector<std::unique_ptr<cbr_source>> sources;
    std::vector<std::unique_ptr<counting_sink>> sinks;
    for (std::uint32_t i = 0; i < n; ++i) {
      auto sink = std::make_unique<counting_sink>(env);
      const double skew =
          1.0 + (static_cast<double>((i * 7919u) % 101u) - 50.0) * 1e-4;
      auto src = std::make_unique<cbr_source>(
          env, static_cast<linkspeed_bps>(10e9 * skew), 9000, i, 0.10);
      src->start(star.paths().single(i, static_cast<std::uint32_t>(n), 0),
                 sink.get(), i, static_cast<std::uint32_t>(n), 0);
      sources.push_back(std::move(src));
      sinks.push_back(std::move(sink));
    }
    env.events.run_until(from_ms(4));
    std::vector<std::uint64_t> base(n);
    for (std::size_t i = 0; i < n; ++i) base[i] = sinks[i]->payload_bytes();
    env.events.run_until(from_ms(40));
    sample_set pct;
    const double fair =
        10e9 * 8936 / 9000 / static_cast<double>(n) * to_sec(from_ms(36)) / 8;
    for (std::size_t i = 0; i < n; ++i) {
      pct.add(100.0 * static_cast<double>(sinks[i]->payload_bytes() - base[i]) /
              fair);
    }
    mean_pct = pct.mean();
    worst10_pct = pct.mean_lowest(0.10);
  }
  state.counters["goodput_pct_mean"] = mean_pct;
  state.counters["goodput_pct_worst10"] = worst10_pct;
  state.SetLabel(std::string("overload: ") + variant_name(v));
}

// (b) 60 single-window flows -> one port with a small header queue: how
// fast does everything complete, and how many RTOs were needed?
void BM_tiny_flow_incast(benchmark::State& state) {
  const auto v = static_cast<variant>(state.range(0));
  double last_fct_us = 0;
  double timeouts = 0;
  double bounces = 0;
  std::size_t completed = 0;
  for (auto _ : state) {
    sim_env env(6);
    const std::size_t n = 60;
    auto factory = [&env, v](link_level level, std::size_t,
                             linkspeed_bps rate, const std::string& name)
        -> std::unique_ptr<queue_base> {
      if (level == link_level::host_up) {
        return std::make_unique<host_priority_queue>(env, rate, name);
      }
      ndp_queue_config c = make_cfg(v);
      c.header_capacity_bytes = 8 * kHeaderBytes;  // stress the header queue
      return std::make_unique<ndp_queue>(env, rate, c, name);
    };
    single_switch star(env, n + 1, gbps(10), from_us(1), factory);
    pull_pacer pacer(env, gbps(10));
    struct conn {
      std::unique_ptr<ndp_source> src;
      std::unique_ptr<ndp_sink> snk;
    };
    std::vector<conn> conns;
    ndp_source_config sc;
    sc.iw_packets = 30;
    sc.rto = from_ms(2);
    for (std::uint32_t s = 0; s < n; ++s) {
      conn c;
      c.src = std::make_unique<ndp_source>(env, sc, 100 + s);
      c.snk = std::make_unique<ndp_sink>(env, pacer, ndp_sink_config{}, 100 + s);
      c.src->connect(*c.snk, star.paths().all(s, static_cast<std::uint32_t>(n)),
                     s, static_cast<std::uint32_t>(n), 2 * 8936, 0);
      conns.push_back(std::move(c));
    }
    env.events.run_until(from_ms(100));
    completed = 0;
    last_fct_us = 0;
    timeouts = 0;
    bounces = 0;
    for (const auto& c : conns) {
      if (c.snk->complete()) {
        ++completed;
        last_fct_us = std::max(last_fct_us, to_us(c.snk->completion_time()));
      }
      timeouts += static_cast<double>(c.src->stats().rtx_after_timeout);
      bounces += static_cast<double>(c.src->stats().bounces_received);
    }
  }
  state.counters["completed"] = static_cast<double>(completed);
  state.counters["last_fct_us"] = last_fct_us;
  state.counters["rto_retransmissions"] = timeouts;
  state.counters["bounces"] = bounces;
  state.SetLabel(std::string("tiny-flow incast: ") + variant_name(v));
}

void register_all() {
  for (int v = 0; v <= 4; ++v) {
    benchmark::RegisterBenchmark("BM_overload", &BM_overload)
        ->Arg(v)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
  for (int v = 0; v <= 4; ++v) {
    benchmark::RegisterBenchmark("BM_tiny_flow_incast", &BM_tiny_flow_incast)
        ->Arg(v)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace ndpsim

int main(int argc, char** argv) {
  ndpsim::bench::print_banner(
      "Ablation: NDP switch mechanisms (WRR / trim coin / RTS / trimming)",
      "removing WRR invites header-flood collapse under overload; removing "
      "the coin hurts worst-10% fairness; removing RTS turns header-queue "
      "overflow into RTO stalls; removing trimming is drop-tail (loss blind)");
  ndpsim::register_all();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
