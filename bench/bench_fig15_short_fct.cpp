// Fig 15: FCT of repeated 90KB transfers between two otherwise-idle hosts
// while every other host sources four long-running flows to random
// destinations — measures the standing-queue penalty each protocol imposes
// on innocent short flows.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "harness/experiments.h"
#include "workload/traffic_matrix.h"

namespace ndpsim {
namespace {

sample_set run_short_fcts(protocol proto, std::uint64_t seed) {
  fabric_params fp;
  fp.proto = proto;
  auto bed = make_fat_tree_testbed(seed, bench::default_k(), fp);
  const std::size_t n = bed->topo->n_hosts();
  // Hosts 0 and 1 (different pods for generality) exchange the short flows.
  const std::uint32_t a = 0;
  const std::uint32_t b = static_cast<std::uint32_t>(n - 1);

  // Background: every other host sources 4 long flows to random dests.
  flow_options bg;
  bg.handshake = false;
  for (std::uint32_t h = 0; h < n; ++h) {
    if (h == a || h == b) continue;
    for (int i = 0; i < 4; ++i) {
      std::uint32_t dst;
      do {
        dst = static_cast<std::uint32_t>(bed->env.rand_below(n));
      } while (dst == h || dst == a || dst == b);
      flow_options o = bg;
      o.start = static_cast<simtime_t>(bed->env.rand_below(1000)) * kMicrosecond / 10;
      bed->flows->create(proto, h, dst, o);
    }
  }
  bed->env.events.run_until(from_ms(3));  // background reaches steady state

  // Repeated 90KB transfers, one at a time.
  sample_set fct_ms;
  const int reps = bench::paper_scale() ? 60 : 25;
  for (int r = 0; r < reps; ++r) {
    flow_options o;
    o.bytes = 90'000;
    o.handshake = false;
    o.start = bed->env.now() + from_us(10);
    flow& f = bed->flows->create(proto, r % 2 == 0 ? a : b,
                                 r % 2 == 0 ? b : a, o);
    run_until_complete(bed->env, {&f}, bed->env.now() + from_ms(200));
    if (f.complete()) fct_ms.add(f.fct_us() / 1000.0);
  }
  return fct_ms;
}

void BM_short_fct(benchmark::State& state) {
  const auto proto = static_cast<protocol>(state.range(0));
  sample_set s;
  for (auto _ : state) s = run_short_fcts(proto, 77);
  state.counters["median_ms"] = s.median();
  state.counters["p90_ms"] = s.quantile(0.90);
  state.counters["p99_ms"] = s.quantile(0.99);
  state.counters["completed"] = static_cast<double>(s.size());
  state.SetLabel(to_string(proto));
}

BENCHMARK(BM_short_fct)
    ->Arg(static_cast<int>(protocol::ndp))
    ->Arg(static_cast<int>(protocol::dctcp))
    ->Arg(static_cast<int>(protocol::dcqcn))
    ->Arg(static_cast<int>(protocol::mptcp))
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ndpsim

int main(int argc, char** argv) {
  ndpsim::bench::print_banner(
      "Fig 15: 90KB flow FCTs under random background load",
      "NDP worst case ~2x the idle optimum; DCTCP ~3x NDP's median and ~4x "
      "at the 99th; DCQCN slightly worse than DCTCP (sporadic PFC pauses); "
      "MPTCP ~10x NDP (it fills every buffer)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
