// Fig 8: time to perform a 1KB RPC over NDP, TCP Fast Open and TCP, with and
// without deep CPU sleep states (host-artifact model; see DESIGN.md).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "host/rpc_latency_model.h"

namespace ndpsim {
namespace {

void BM_rpc(benchmark::State& state) {
  const auto stack = static_cast<rpc_stack>(state.range(0));
  const bool sleep = state.range(1) != 0;
  sim_env env(7);
  sample_set s;
  for (auto _ : state) {
    s = simulate_rpc_latency(env, stack, sleep, 20000);
  }
  state.counters["median_us"] = s.median();
  state.counters["p10_us"] = s.quantile(0.10);
  state.counters["p90_us"] = s.quantile(0.90);
  const char* name = stack == rpc_stack::ndp   ? "NDP"
                     : stack == rpc_stack::tfo ? "TFO"
                                               : "TCP";
  state.SetLabel(std::string(name) + (sleep ? "" : " (no sleep)"));
}

BENCHMARK(BM_rpc)
    ->Args({static_cast<int>(rpc_stack::ndp), 1})
    ->Args({static_cast<int>(rpc_stack::tfo), 0})
    ->Args({static_cast<int>(rpc_stack::tcp), 0})
    ->Args({static_cast<int>(rpc_stack::tfo), 1})
    ->Args({static_cast<int>(rpc_stack::tcp), 1})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ndpsim

int main(int argc, char** argv) {
  ndpsim::bench::print_banner(
      "Fig 8: 1KB RPC latency, NDP vs TFO vs TCP (+- deep sleep)",
      "NDP median ~62us; TFO ~4x and TCP ~5x NDP with sleep states; with "
      "sleep disabled TFO ~2x and TCP ~3x NDP");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
