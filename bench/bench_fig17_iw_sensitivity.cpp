// Fig 17: sensitivity of permutation throughput to NDP's two parameters —
// the initial window and the switch buffer size (6/8/10 packets at 9K MTU,
// and 8 packets at 1.5K MTU).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "harness/experiments.h"

namespace ndpsim {
namespace {

void BM_iw_buffer(benchmark::State& state) {
  const auto iw = static_cast<std::uint32_t>(state.range(0));
  const auto buf_pkts = static_cast<std::uint32_t>(state.range(1));
  const auto mtu = static_cast<std::uint32_t>(state.range(2));
  fabric_params fp;
  fp.proto = protocol::ndp;
  fp.mtu_bytes = mtu;
  fp.ndp_data_pkts = buf_pkts;
  permutation_result res;
  for (auto _ : state) {
    auto bed = make_fat_tree_testbed(17, bench::default_k(), fp);
    flow_options o;
    o.mss_bytes = mtu;
    o.iw_packets = iw;
    res = run_permutation(*bed, protocol::ndp, o, from_ms(3), from_ms(6));
  }
  state.counters["utilization_pct"] = res.utilization * 100;
  state.SetLabel(std::to_string(buf_pkts) + "pkt buffer, " +
                 std::to_string(mtu / 1000) + "K MTU, IW=" +
                 std::to_string(iw));
}

void register_benches() {
  const std::vector<std::int64_t> iws = {5, 10, 15, 20, 25, 30, 40};
  struct cfg {
    std::int64_t buf;
    std::int64_t mtu;
  };
  for (cfg c : {cfg{6, 9000}, cfg{8, 9000}, cfg{10, 9000}, cfg{8, 1500}}) {
    for (auto iw : iws) {
      benchmark::RegisterBenchmark("BM_iw_buffer", &BM_iw_buffer)
          ->Args({iw, c.buf, c.mtu})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace ndpsim

int main(int argc, char** argv) {
  ndpsim::bench::print_banner(
      "Fig 17: permutation utilization vs IW and buffer size",
      "IW~20 needed for full utilization at 9K MTU (30 at 1.5K); 6-packet "
      "buffers ~90%, 8-packet ~95%+; overshooting IW reduces throughput "
      "slightly (more trimmed headers)");
  ndpsim::register_benches();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
