// Fig 9: seven-to-one incast on the 8-server two-tier testbed (four-port
// switches: 4 ToRs x 2 hosts, 2 spines), response size 10KB..1MB.
// NDP vs TCP, median and 90th percentile of the incast completion time,
// against the theoretical optimum (receiver link saturated).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "harness/experiments.h"
#include "harness/flow_factory.h"
#include "topo/micro_topo.h"

namespace ndpsim {
namespace {

struct trial_result {
  double median_ms;
  double p90_ms;
};

trial_result run_trials(protocol proto, std::uint64_t bytes, int n_trials) {
  sample_set completion_ms;
  for (int trial = 0; trial < n_trials; ++trial) {
    sim_env env(100 + trial);
    fabric_params fp;
    fp.proto = proto;
    if (proto == protocol::tcp) {
      // The Linux side of the testbed: 1500B MTU and the NetFPGA's modest
      // per-port buffering (its output queues are small), so slow-start
      // overshoot actually loses packets as it did on the testbed.
      fp.mtu_bytes = 1500;
      fp.droptail_pkts = 300;  // ~450KB shared-ish buffer at 1500B
    }
    leaf_spine topo(env, 4, 2, 2, gbps(10), from_us(1),
                    make_queue_factory(env, fp));
    flow_factory flows(env, topo);
    std::vector<flow*> fs;
    for (std::uint32_t s = 1; s < 8; ++s) {
      flow_options o;
      o.bytes = bytes;
      o.start = static_cast<simtime_t>(env.rand_below(1000)) * kNanosecond;
      // Paper's Linux TCP: handshake + 200ms MinRTO, 1500B frames.
      o.handshake = true;
      o.min_rto = from_ms(200);
      if (proto == protocol::tcp) {
        o.mss_bytes = 1500;
        // Typical (small-RTT datacenter) receive-window autotuning bound:
        // keeps slow-start overshoot recoverable by fast retransmit, as on
        // the testbed ("median flows do not suffer timeouts").
        o.max_cwnd_mss = 64;
      }
      fs.push_back(&flows.create(proto, s, 0, o));
    }
    run_until_complete(env, fs, from_sec(3));
    double last = 0;
    for (flow* f : fs) {
      if (f->complete()) last = std::max(last, to_us(f->completion_time()));
    }
    completion_ms.add(last / 1000.0);
  }
  return trial_result{completion_ms.median(), completion_ms.quantile(0.90)};
}

void BM_incast7to1(benchmark::State& state) {
  const auto proto = static_cast<protocol>(state.range(0));
  const std::uint64_t kb = static_cast<std::uint64_t>(state.range(1));
  trial_result r{};
  for (auto _ : state) r = run_trials(proto, kb * 1000, 9);
  state.counters["median_ms"] = r.median_ms;
  state.counters["p90_ms"] = r.p90_ms;
  state.counters["optimal_ms"] =
      incast_optimal_us(7, kb * 1000, 9000, gbps(10), from_us(18)) / 1000.0;
  state.SetLabel(std::string(to_string(proto)) + " " + std::to_string(kb) +
                 "KB");
}

BENCHMARK(BM_incast7to1)
    ->ArgsProduct({{static_cast<int>(protocol::ndp),
                    static_cast<int>(protocol::tcp)},
                   {10, 50, 100, 250, 500, 1000}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ndpsim

int main(int argc, char** argv) {
  ndpsim::bench::print_banner(
      "Fig 9: 7:1 incast completion time vs response size (testbed topology)",
      "NDP within ~5% of the optimum and its 90th percentile within 10% of "
      "its median; TCP ~4x slower in the median with a 90th percentile blown "
      "up by 200ms RTOs");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
