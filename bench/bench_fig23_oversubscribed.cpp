// Fig 23: the Facebook "web" workload (small packets, no rack locality) on a
// 4:1 oversubscribed three-tier FatTree, closed-loop arrivals, at two load
// levels (5 and 10 simultaneous connections per host).  NDP vs DCTCP FCTs.
//
// This is NDP's least favourable regime: most traffic crosses the
// oversubscribed core, and small packets give a poor trimming compression
// ratio — yet it should still beat DCTCP in the median and hold the tail,
// with no congestion collapse.
//
// LIMITATION — how the 4:1 is produced: `fat_tree` emulates oversubscription
// by hanging `oversubscription * k/2` hosts off each ToR while keeping the
// ToR->agg and agg->core tiers fully provisioned.  That concentrates the
// entire 4:1 ratio at the ToR uplink tier; a production 4:1 fabric typically
// spreads it across tiers (fewer uplinks/cores), which shapes where queues
// build and where NDP trims.  The headline comparison (NDP vs DCTCP under
// core-crossing load) survives this, but per-tier queue depths should not be
// read as a literal reproduction of the paper's fabric.  Each run emits the
// effective ratio actually wired — host ingress capacity over ToR uplink
// capacity, from the instantiated queues, not the config knob — as the
// `effective_oversubscription` counter in the benchmark JSON so downstream
// consumers can see what fabric the numbers came from.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "harness/experiments.h"
#include "workload/closed_loop.h"
#include "workload/size_distributions.h"

namespace ndpsim {
namespace {

struct load_result {
  double median_ms;
  double p90_ms;
  double p99_ms;
  double completed;
  double trim_frac_tor;
  double effective_oversubscription;
};

/// The ratio actually wired into the instantiated fabric: aggregate host
/// ingress capacity per ToR over aggregate ToR uplink capacity (computed
/// from the live queues' rates, so a speed override or config change shows
/// up here rather than silently diverging from the `oversubscription` knob).
double effective_ratio(const fat_tree& ft) {
  const double host_in = static_cast<double>(ft.hosts_per_tor()) *
                         static_cast<double>(ft.host_link_speed(0));
  const auto& tor_up = ft.queues_at(link_level::tor_up);
  const std::size_t uplinks_per_tor = tor_up.size() / ft.n_tors();
  double uplink_out = 0;
  for (std::size_t u = 0; u < uplinks_per_tor; ++u) {
    uplink_out += static_cast<double>(tor_up[u]->rate());
  }
  return uplink_out > 0 ? host_in / uplink_out : 0.0;
}

load_result run_load(protocol proto, unsigned conns_per_host) {
  fabric_params fp;
  fp.proto = proto;
  fp.mtu_bytes = 1500;  // web traffic: small packets
  const unsigned k = bench::paper_scale() ? 8 : 4;  // 512 or 64 hosts at 4:1
  auto bed = make_fat_tree_testbed(23, k, fp, /*oversubscription=*/4);

  closed_loop_generator gen(
      bed->env, bed->topo->n_hosts(), conns_per_host, facebook_web_sizes(),
      from_ms(1),
      [&](std::uint32_t src, std::uint32_t dst, std::uint64_t bytes,
          simtime_t start, std::function<void()> done) {
        flow_options o;
        o.bytes = bytes;
        o.start = start;
        o.mss_bytes = 1500;
        o.handshake = false;
        o.min_rto = from_ms(1);
        flow& f = bed->flows->create(proto, src, dst, o);
        f.on_complete(std::move(done));
      });
  gen.start();
  bed->env.events.run_until(from_ms(bench::paper_scale() ? 120 : 80));
  gen.stop();

  load_result r{};
  const auto& fct = gen.fcts().fct_us();
  r.median_ms = fct.median() / 1000.0;
  r.p90_ms = fct.quantile(0.90) / 1000.0;
  r.p99_ms = fct.quantile(0.99) / 1000.0;
  r.completed = static_cast<double>(gen.fcts().completed());
  const auto tor_up = bed->topo->aggregate_stats(link_level::tor_up);
  r.trim_frac_tor =
      tor_up.arrivals > 0
          ? static_cast<double>(tor_up.trimmed) /
                static_cast<double>(tor_up.arrivals)
          : 0.0;
  r.effective_oversubscription = effective_ratio(*bed->topo);
  return r;
}

void BM_oversubscribed(benchmark::State& state) {
  const auto proto = static_cast<protocol>(state.range(0));
  const auto conns = static_cast<unsigned>(state.range(1));
  load_result r{};
  for (auto _ : state) r = run_load(proto, conns);
  state.counters["median_ms"] = r.median_ms;
  state.counters["p90_ms"] = r.p90_ms;
  state.counters["p99_ms"] = r.p99_ms;
  state.counters["flows_completed"] = r.completed;
  state.counters["tor_uplink_trim_frac"] = r.trim_frac_tor;
  state.counters["effective_oversubscription"] = r.effective_oversubscription;
  state.SetLabel(std::string(to_string(proto)) +
                 (conns <= 5 ? " medium load" : " high load"));
}

BENCHMARK(BM_oversubscribed)
    ->ArgsProduct({{static_cast<int>(protocol::ndp),
                    static_cast<int>(protocol::dctcp)},
                   {5, 10}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ndpsim

int main(int argc, char** argv) {
  ndpsim::bench::print_banner(
      "Fig 23: Facebook web workload, 4:1 oversubscribed fabric",
      "medium load: NDP median FCT ~half DCTCP's, ~1/3 at the 99th; high "
      "load (~70% ToR trimming): NDP still slightly ahead in median and "
      "tail, and no congestion collapse");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
