// Fig 21: sender-limited traffic.  Host A sends to B, C, D and E; host F
// also sends to E.  A's NIC is the bottleneck for its four flows, so E's
// fair queuing of its pull queue must give F the residual capacity of E's
// link while A's flows split A's link evenly — with no wasted pulls.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "harness/flow_factory.h"
#include "harness/queue_factory.h"
#include "topo/micro_topo.h"

namespace ndpsim {
namespace {

void BM_sender_limited(benchmark::State& state) {
  // Hosts: A=0, B=1, C=2, D=3, E=4, F=5.
  std::vector<double> gbps_measured(5, 0);
  for (auto _ : state) {
    sim_env env(21);
    fabric_params fp;
    fp.proto = protocol::ndp;
    single_switch topo(env, 6, gbps(10), from_us(1),
                       make_queue_factory(env, fp));
    flow_factory flows(env, topo);
    std::vector<flow*> fs;
    flow_options o;  // unbounded
    fs.push_back(&flows.create(protocol::ndp, 0, 1, o));  // A->B
    fs.push_back(&flows.create(protocol::ndp, 0, 2, o));  // A->C
    fs.push_back(&flows.create(protocol::ndp, 0, 3, o));  // A->D
    fs.push_back(&flows.create(protocol::ndp, 0, 4, o));  // A->E
    fs.push_back(&flows.create(protocol::ndp, 5, 4, o));  // F->E

    env.events.run_until(from_ms(5));
    std::vector<std::uint64_t> base;
    for (flow* f : fs) base.push_back(f->payload_received());
    env.events.run_until(from_ms(25));
    for (std::size_t i = 0; i < fs.size(); ++i) {
      gbps_measured[i] =
          static_cast<double>(fs[i]->payload_received() - base[i]) * 8 /
          to_sec(from_ms(20)) / 1e9;
    }
  }
  const char* names[] = {"A->B", "A->C", "A->D", "A->E", "F->E"};
  const double paper[] = {2.51, 2.50, 2.51, 2.38, 7.55};
  std::printf("%-6s %-10s %-10s\n", "flow", "measured", "paper");
  double total_a = 0, total_e = 0;
  for (int i = 0; i < 5; ++i) {
    std::printf("%-6s %-10.2f %-10.2f\n", names[i], gbps_measured[i], paper[i]);
    if (i < 4) total_a += gbps_measured[i];
    if (i >= 3) total_e += gbps_measured[i];
  }
  std::printf("total from A: %.2f (paper 9.90)  total to E: %.2f (paper 9.93)\n",
              total_a, total_e);
  state.counters["A_to_E_gbps"] = gbps_measured[3];
  state.counters["F_to_E_gbps"] = gbps_measured[4];
  state.counters["total_from_A_gbps"] = total_a;
  state.counters["total_to_E_gbps"] = total_e;
}

BENCHMARK(BM_sender_limited)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ndpsim

int main(int argc, char** argv) {
  ndpsim::bench::print_banner(
      "Fig 21: sender-limited topology (A->B,C,D,E and F->E)",
      "A's four flows each ~2.4-2.5Gb/s (A's link full and evenly split); "
      "F->E ~7.5Gb/s (E's link full); no pulls wasted");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
