// Fig 4: CDF of NDP delivery latency (first send -> ACK at the sender,
// including retransmission delay) on a FatTree under four traffic matrices:
// permutation, random, and 100-flow incasts of 135KB and 1350KB.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "harness/experiments.h"
#include "workload/traffic_matrix.h"

namespace ndpsim {
namespace {

using bench::paper_scale;

sample_set run_matrix(const char* kind, std::uint64_t flow_bytes) {
  fabric_params fp;
  fp.proto = protocol::ndp;
  auto bed = make_fat_tree_testbed(42, bench::default_k(), fp);
  const std::size_t n = bed->topo->n_hosts();

  sample_set latency_us;
  auto attach = [&latency_us](flow& f) {
    f.set_latency_callback(
        [&latency_us](simtime_t l) { latency_us.add(to_us(l)); });
  };

  flow_options o;
  if (std::string(kind) == "permutation" || std::string(kind) == "random") {
    const auto matrix = std::string(kind) == "permutation"
                            ? permutation_matrix(bed->env.rng, n)
                            : random_matrix(bed->env.rng, n);
    for (std::uint32_t h = 0; h < n; ++h) {
      flow_options fo = o;
      fo.start = static_cast<simtime_t>(bed->env.rand_below(100)) * kMicrosecond / 10;
      attach(bed->flows->create(protocol::ndp, h, matrix[h], fo));
    }
    bed->env.events.run_until(from_ms(paper_scale() ? 50 : 15));
    return latency_us;
  }
  // Incast.
  const std::size_t n_senders = std::min<std::size_t>(100, n - 1);
  const auto senders = incast_senders(bed->env.rng, n, 0, n_senders);
  std::vector<flow*> flows;
  for (auto s : senders) {
    flow_options fo = o;
    fo.bytes = flow_bytes;
    fo.start = static_cast<simtime_t>(bed->env.rand_below(1000)) * kNanosecond;
    flow& f = bed->flows->create(protocol::ndp, s, 0, fo);
    attach(f);
    flows.push_back(&f);
  }
  run_until_complete(bed->env, flows, from_sec(2));
  return latency_us;
}

void report(benchmark::State& state, const sample_set& s) {
  state.counters["p10_us"] = s.quantile(0.10);
  state.counters["median_us"] = s.median();
  state.counters["p90_us"] = s.quantile(0.90);
  state.counters["p99_us"] = s.quantile(0.99);
  state.counters["max_us"] = s.max();
  state.counters["samples"] = static_cast<double>(s.size());
}

void BM_permutation(benchmark::State& state) {
  sample_set s;
  for (auto _ : state) s = run_matrix("permutation", 0);
  report(state, s);
}
void BM_random(benchmark::State& state) {
  sample_set s;
  for (auto _ : state) s = run_matrix("random", 0);
  report(state, s);
}
void BM_incast_135KB(benchmark::State& state) {
  sample_set s;
  for (auto _ : state) s = run_matrix("incast", 135'000);
  report(state, s);
}
void BM_incast_1350KB(benchmark::State& state) {
  sample_set s;
  for (auto _ : state) s = run_matrix("incast", 1'350'000);
  report(state, s);
}

BENCHMARK(BM_permutation)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_random)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_incast_135KB)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_incast_1350KB)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ndpsim

int main(int argc, char** argv) {
  ndpsim::bench::print_banner(
      "Fig 4: delivery latency CDF under permutation / random / incast",
      "permutation+random medians ~100us even fully loaded; 135KB incast "
      "pushes whole flows into the first RTT (high tail, ~11ms last packet "
      "at 100 senders); 1350KB incast settles to paced pulls with a ~95us "
      "median");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
