// §6.2 "Who needs packet trimming?" (in-text): pHost — receiver-driven like
// NDP but over plain 8-packet drop-tail switches — compared on the
// permutation matrix and on a large incast.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "harness/experiments.h"
#include "workload/traffic_matrix.h"

namespace ndpsim {
namespace {

void BM_phost_permutation(benchmark::State& state) {
  const auto proto = static_cast<protocol>(state.range(0));
  fabric_params fp;
  fp.proto = proto;
  permutation_result res;
  for (auto _ : state) {
    auto bed = make_fat_tree_testbed(71, bench::default_k(), fp);
    flow_options o;
    if (proto == protocol::phost) {
      o.bytes = 100'000'000;  // pHost needs finite flows (RTS carries size)
    }
    res = run_permutation(*bed, proto, o, from_ms(3), from_ms(8));
  }
  state.counters["utilization_pct"] = res.utilization * 100;
  state.SetLabel(std::string(to_string(proto)) + " permutation");
}

void BM_phost_incast(benchmark::State& state) {
  const auto proto = static_cast<protocol>(state.range(0));
  fabric_params fp;
  fp.proto = proto;
  incast_result res;
  std::size_t n = 0;
  for (auto _ : state) {
    auto bed = make_fat_tree_testbed(72, bench::default_k(), fp);
    n = std::min<std::size_t>(bench::paper_scale() ? 400 : 100,
                              bed->topo->n_hosts() - 1);
    const auto senders =
        incast_senders(bed->env.rng, bed->topo->n_hosts(), 0, n);
    flow_options o;
    // Short responses: loss recovery (token timeouts for pHost, NACK+PULL
    // for NDP) dominates, which is where trimming pays.
    res = run_incast(*bed, proto, senders, 0, 90'000, o, from_sec(30));
  }
  state.counters["last_fct_ms"] = res.last_fct_us / 1000.0;
  state.counters["completed"] = static_cast<double>(res.completed);
  state.counters["optimal_ms"] =
      incast_optimal_us(n, 90'000, 9000, gbps(10), from_us(40)) / 1000.0;
  state.SetLabel(std::string(to_string(proto)) + " incast n=" +
                 std::to_string(n));
}

BENCHMARK(BM_phost_permutation)
    ->Arg(static_cast<int>(protocol::phost))
    ->Arg(static_cast<int>(protocol::ndp))
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_phost_incast)
    ->Arg(static_cast<int>(protocol::phost))
    ->Arg(static_cast<int>(protocol::ndp))
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ndpsim

int main(int argc, char** argv) {
  ndpsim::bench::print_banner(
      "Text §6.2: pHost vs NDP (is trimming needed?)",
      "pHost ~70% permutation utilization vs NDP ~95%; on the large incast "
      "pHost is ~10x slower than NDP (first-RTT drops cost token timeouts)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
