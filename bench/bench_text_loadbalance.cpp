// §3.1.1 / §3 "Congestion Control" (in-text numbers): sender-driven path
// permutation vs per-packet random ECMP.
//
// Under a full permutation load the paper reports 0.01% of packets trimmed
// on core uplinks when *senders* load balance (shuffled walk) vs 2.4% when
// switches pick randomly per packet, and slightly higher overall capacity
// for the sender-driven scheme.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "harness/experiments.h"

namespace ndpsim {
namespace {

void BM_loadbalance(benchmark::State& state) {
  const auto mode = static_cast<path_mode>(state.range(0));
  fabric_params fp;
  fp.proto = protocol::ndp;
  permutation_result res;
  double uplink_trim_pct = 0;
  for (auto _ : state) {
    auto bed = make_fat_tree_testbed(31, bench::default_k(), fp);
    flow_options o;
    o.mode = mode;
    res = run_permutation(*bed, protocol::ndp, o, from_ms(3), from_ms(8));
    const auto tor_up = bed->topo->aggregate_stats(link_level::tor_up);
    const auto agg_up = bed->topo->aggregate_stats(link_level::agg_up);
    const std::uint64_t up_arrivals = tor_up.arrivals + agg_up.arrivals;
    const std::uint64_t up_trims = tor_up.trimmed + agg_up.trimmed;
    uplink_trim_pct = up_arrivals > 0
                          ? 100.0 * static_cast<double>(up_trims) /
                                static_cast<double>(up_arrivals)
                          : 0.0;
  }
  state.counters["uplink_trim_pct"] = uplink_trim_pct;
  state.counters["utilization_pct"] = res.utilization * 100;
  state.SetLabel(mode == path_mode::permutation
                     ? "sender permutation (NDP default)"
                     : "per-packet random ECMP");
}

BENCHMARK(BM_loadbalance)
    ->Arg(static_cast<int>(path_mode::permutation))
    ->Arg(static_cast<int>(path_mode::random_per_packet))
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ndpsim

int main(int argc, char** argv) {
  ndpsim::bench::print_banner(
      "Text §3.1.1: sender-permutation vs switch-random load balancing",
      "uplink trimming ~0.01% with sender permutation vs ~2.4% with random "
      "per-packet ECMP; permutation buys up to ~10% capacity with 8-packet "
      "buffers");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
