// Fig 2: congestion collapse and phase problems with CP vs the NDP switch.
//
// N unresponsive line-rate flows converge on one 10Gb/s port.  With CP's
// single FIFO, trimmed headers consume a growing share of the link and
// deterministic trimming favours some senders (phase effects): mean goodput
// collapses and the worst-10% flows collapse faster.  The NDP queue's WRR
// (10 headers : 1 data) caps header overhead and the 50% trim coin breaks
// phase locking: both curves stay near 100% of fair share.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "bench_util.h"
#include "cp/cp_queue.h"
#include "net/fifo_queues.h"
#include "ndp/ndp_queue.h"
#include "topo/micro_topo.h"
#include "topo/path_table.h"
#include "stats/cdf.h"
#include "workload/cbr_source.h"

namespace ndpsim {
namespace {

struct collapse_result {
  double mean_pct;
  double worst10_pct;
};

collapse_result run_collapse(bool use_ndp_queue, std::size_t n_flows,
                             std::uint64_t seed) {
  sim_env env(seed);
  const std::uint32_t mtu = 9000;
  auto factory = [&](link_level level, std::size_t, linkspeed_bps rate,
                     const std::string& name) -> std::unique_ptr<queue_base> {
    if (level == link_level::host_up) {
      return std::make_unique<host_priority_queue>(env, rate, name);
    }
    if (use_ndp_queue) {
      ndp_queue_config c;
      c.data_capacity_bytes = 8ull * mtu;
      c.header_capacity_bytes = 8ull * mtu;
      return std::make_unique<ndp_queue>(env, rate, c, name);
    }
    return std::make_unique<cp_queue>(env, rate, 8ull * mtu, name);
  };
  single_switch star(env, n_flows + 1, gbps(10), from_us(1), factory);
  const auto rx = static_cast<std::uint32_t>(n_flows);

  std::vector<std::unique_ptr<cbr_source>> sources;
  std::vector<std::unique_ptr<counting_sink>> sinks;
  for (std::uint32_t i = 0; i < n_flows; ++i) {
    auto sink = std::make_unique<counting_sink>(env);
    // Send jitter plus per-sender clock skew model OS/NIC timing
    // variability and crystal tolerance (the paper notes real-world phase
    // effects are partially masked by exactly this); skew makes sender
    // phases precess through each other instead of locking.
    const double skew = 1.0 + (static_cast<double>((i * 7919u) % 101u) - 50.0) * 1e-4;
    const auto rate = static_cast<linkspeed_bps>(10e9 * skew);
    auto src = std::make_unique<cbr_source>(env, rate, mtu, i, 0.10);
    src->start(star.paths().single(i, rx, 0), sink.get(), i, rx,
               static_cast<simtime_t>(i) * 100);
    sources.push_back(std::move(src));
    sinks.push_back(std::move(sink));
  }

  const simtime_t warmup = from_ms(4);
  // Longer windows for larger N so per-flow goodput has enough packets for
  // the worst-10% statistic to be about fairness rather than sampling noise.
  const simtime_t measure =
      std::min<simtime_t>(from_ms(20) + n_flows * from_ms(0.4), from_ms(60));
  env.events.run_until(warmup);
  std::vector<std::uint64_t> base(n_flows);
  for (std::size_t i = 0; i < n_flows; ++i) base[i] = sinks[i]->payload_bytes();
  env.events.run_until(warmup + measure);

  // Fair share of goodput: the link carries payload at rate * (payload/mtu).
  const double fair_bps = 10e9 * (mtu - kHeaderBytes) / mtu /
                          static_cast<double>(n_flows);
  sample_set pct;
  for (std::size_t i = 0; i < n_flows; ++i) {
    const double bps =
        static_cast<double>(sinks[i]->payload_bytes() - base[i]) * 8 /
        to_sec(measure);
    pct.add(100.0 * bps / fair_bps);
  }
  return collapse_result{pct.mean(), pct.mean_lowest(0.10)};
}

void BM_collapse(benchmark::State& state) {
  const bool ndp = state.range(0) != 0;
  const auto n = static_cast<std::size_t>(state.range(1));
  collapse_result r{};
  for (auto _ : state) r = run_collapse(ndp, n, 1);
  state.counters["goodput_pct_mean"] = r.mean_pct;
  state.counters["goodput_pct_worst10"] = r.worst10_pct;
  state.SetLabel(ndp ? "NDP switch" : "CP switch");
}

BENCHMARK(BM_collapse)
    ->ArgsProduct({{0, 1}, {4, 10, 20, 40, 80, 140, 200}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ndpsim

int main(int argc, char** argv) {
  ndpsim::bench::print_banner(
      "Fig 2: percent of fair goodput vs number of unresponsive flows",
      "CP mean decays with N and its worst-10% collapses (phase effects); "
      "NDP stays ~90-100% for both, flat in N");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
