// Fig 14: per-flow throughput under a permutation traffic matrix on the
// FatTree, for NDP, MPTCP (8 subflows), DCTCP and DCQCN.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "harness/experiments.h"

namespace ndpsim {
namespace {

void BM_permutation(benchmark::State& state) {
  const auto proto = static_cast<protocol>(state.range(0));
  fabric_params fp;
  fp.proto = proto;
  permutation_result res;
  for (auto _ : state) {
    auto bed = make_fat_tree_testbed(42, bench::default_k(), fp);
    flow_options o;
    o.handshake = false;
    o.subflows = 8;
    res = run_permutation(*bed, proto, o, from_ms(3),
                          from_ms(bench::paper_scale() ? 20 : 8));
  }
  state.counters["utilization_pct"] = res.utilization * 100;
  state.counters["mean_gbps"] = res.mean_gbps;
  state.counters["min_gbps"] = res.flow_gbps.front();
  state.counters["p10_gbps"] =
      res.flow_gbps[res.flow_gbps.size() / 10];
  state.counters["median_gbps"] = res.flow_gbps[res.flow_gbps.size() / 2];
  state.counters["max_gbps"] = res.flow_gbps.back();
  state.SetLabel(to_string(proto));
  // Print the sorted per-flow series (deciles) — the figure's curve.
  std::printf("%-6s per-flow Gb/s deciles:", to_string(proto));
  for (int d = 0; d <= 10; ++d) {
    const std::size_t i =
        std::min(res.flow_gbps.size() - 1, d * res.flow_gbps.size() / 10);
    std::printf(" %.2f", res.flow_gbps[i]);
  }
  std::printf("\n");
}

BENCHMARK(BM_permutation)
    ->Arg(static_cast<int>(protocol::ndp))
    ->Arg(static_cast<int>(protocol::mptcp))
    ->Arg(static_cast<int>(protocol::dctcp))
    ->Arg(static_cast<int>(protocol::dcqcn))
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ndpsim

int main(int argc, char** argv) {
  ndpsim::bench::print_banner(
      "Fig 14: per-flow throughput, permutation traffic matrix",
      "NDP ~92%+ utilization with even the slowest flow near 9Gb/s; MPTCP "
      "~89%; DCTCP/DCQCN ~40% mean with some flows under 1Gb/s (per-flow "
      "ECMP collisions)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
