// Event-core performance benchmark: tracks simulator events/sec from PR to
// PR (written to BENCH_eventcore.json at the repo root by scripts/bench.sh).
//
// Three sections:
//  1. Scheduler microbenchmark — the new indexed min-heap with cancellable
//     handles vs an embedded replica of the pre-change scheduler (a
//     std::priority_queue where a moved timer leaves a dead entry behind and
//     every dead entry costs a spurious wake-up).  The workload is the
//     simulator's dominant timer pattern: an RTO deadline pushed out on every
//     ACK, i.e. far more reschedules than genuine expirations.
//  2. Route-setup microbenchmark — the interned path table vs a replica of
//     the per-flow route building it replaced (every connection privately
//     heap-building every route pair), reporting routes/sec and resident
//     route bytes under closed-loop flow churn.
//  3. Flow-churn benchmark — closed-loop RPC churn with the flow recycler
//     vs the no-recycle baseline (every completed flow kept forever, the
//     pre-lifecycle behaviour): sustained flows/sec and resident-memory
//     growth.
//  4. Representative figure runs — a small NDP incast, k=4/k=16 NDP
//     permutations, and k=8 DCQCN and pHost permutations, reporting
//     end-to-end events/sec of the full simulator.
//  5. Parallel sweep — the same incast at several seeds, run serially and
//     through parallel_runner, checking bitwise-identical per-config FCT
//     results and reporting the wall-clock ratio.
//
// `--quick` reduces repetition counts (best-of rounds) for CI smoke runs
// while keeping every measured workload identical, so reported rates stay
// comparable with full runs.  All gated rates are computed over process CPU
// time, not wall-clock — the simulator is single-threaded and CPU time is
// what reproduces on shared machines.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <functional>
#include <queue>
#include <string>
#include <vector>

#if defined(__linux__)
#include <sys/resource.h>
#include <unistd.h>
#endif

#include "harness/experiments.h"
#include "harness/flow_recycler.h"
#include "harness/parallel_runner.h"
#include "net/fifo_queues.h"
#include "sim/eventlist.h"
#include "topo/path_table.h"
#include "workload/traffic_matrix.h"

namespace ndpsim {
namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// CPU seconds (user + system) consumed by this process so far.  The churn
/// comparison times with this instead of wall-clock: the simulator is
/// single-threaded, and on shared machines wall time includes whatever else
/// is running — CPU time is the metric that reproduces.  Falls back to
/// wall-clock where getrusage is unavailable.
double cpu_seconds_now() {
#if defined(__linux__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    return static_cast<double>(ru.ru_utime.tv_sec + ru.ru_stime.tv_sec) +
           static_cast<double>(ru.ru_utime.tv_usec + ru.ru_stime.tv_usec) /
               1e6;
  }
#endif
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Current resident set size of this process (0 where unsupported).
std::size_t current_rss_bytes() {
#if defined(__linux__)
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long total = 0;
  long rss = 0;
  const int n = std::fscanf(f, "%ld %ld", &total, &rss);
  std::fclose(f);
  if (n != 2) return 0;
  return static_cast<std::size_t>(rss) *
         static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

// --------------------------------------------------------------------------
// Section 1: scheduler microbenchmark.
// --------------------------------------------------------------------------

// Replica of the scheduler this PR replaced (a verbatim structural copy of
// the seed's event_list), kept as the baseline so the speedup is measured
// against the same workload in the same binary.  The old API had no
// cancel/reschedule: the documented idiom was "schedule another event and be
// prepared for wake-ups you no longer need", so a moved RTO leaves a dead
// entry that still gets popped and dispatched as a spurious wake-up.
class legacy_source {
 public:
  virtual ~legacy_source() = default;
  virtual void do_next_event() = 0;
};

class legacy_event_list {
 public:
  void schedule(legacy_source& src, simtime_t when) {
    heap_.push(entry{when, seq_++, &src});
  }
  [[nodiscard]] simtime_t now() const { return now_; }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  void run_until(simtime_t horizon) {
    while (!heap_.empty() && heap_.top().when <= horizon) {
      const entry e = heap_.top();
      heap_.pop();
      now_ = e.when;
      e.src->do_next_event();
    }
    now_ = horizon;
  }

 private:
  struct entry {
    simtime_t when;
    std::uint64_t seq;
    legacy_source* src;
    [[nodiscard]] bool operator<(const entry& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };
  std::priority_queue<entry> heap_;
  simtime_t now_ = 0;
  std::uint64_t seq_ = 0;
};

/// do_next_event target for the new-scheduler microbench: counts fires.
class counting_source final : public event_source {
 public:
  explicit counting_source(event_list& el) : event_source(el, "flow") {}
  void do_next_event() override { ++fires; }
  std::uint64_t fires = 0;
  timer_handle rto;
};

// The simulator's dominant timer pattern, at the paper's rates: each flow's
// RTO backstop moves on every ACK.  A 9KB jumbogram at 10Gb/s means one ACK
// per flow every ~7.2us while the RTO sits 1ms out — so a deadline is moved
// ~139 times before it could ever fire.  With 512 concurrent flows the
// global inter-ACK gap is ~14ns of virtual time.
struct churn_params {
  std::size_t flows = 512;
  std::uint64_t acks = 2'000'000;   ///< reschedules (one per simulated ACK)
  simtime_t rto = from_ms(1.0);     ///< deadline distance
  simtime_t tick = from_ns(14);     ///< virtual time advanced per ACK
};

/// xorshift so both sides see the same flow sequence with zero RNG overhead.
struct tiny_rng {
  std::uint64_t s = 0x9E3779B97F4A7C15ull;
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
};

/// RTO churn on the new scheduler: one handle per flow, moved in place.
double churn_new(const churn_params& p, std::uint64_t* fires_out) {
  event_list el;
  std::deque<counting_source> flows;  // deque: event_source is pinned in place
  for (std::size_t i = 0; i < p.flows; ++i) flows.emplace_back(el);
  tiny_rng rng;
  const double c0 = cpu_seconds_now();
  simtime_t vnow = 0;
  for (std::uint64_t op = 0; op < p.acks; ++op) {
    vnow += p.tick;
    el.run_until(vnow);
    counting_source& f = flows[rng.next() % p.flows];
    el.reschedule(f.rto, f, vnow + p.rto);
  }
  el.run_until(vnow + p.rto + 1);
  const double dt = cpu_seconds_now() - c0;
  std::uint64_t fires = 0;
  for (const auto& f : flows) fires += f.fires;
  *fires_out = fires;
  return dt;
}

/// The same ACK sequence on the legacy scheduler: every move pushes a fresh
/// entry; superseded entries fire as spurious wake-ups the source must
/// detect itself ("check your own state" — the old contract).
double churn_legacy(const churn_params& p, std::uint64_t* fires_out,
                    std::uint64_t* spurious_out) {
  legacy_event_list el;
  struct legacy_flow final : legacy_source {
    legacy_event_list* el = nullptr;
    std::uint64_t* spurious = nullptr;
    simtime_t deadline = -1;
    std::uint64_t fires = 0;
    void do_next_event() override {
      if (el->now() == deadline) {
        ++fires;
      } else {
        ++*spurious;  // deadline moved since this entry was armed
      }
    }
  };
  std::uint64_t spurious = 0;
  std::vector<legacy_flow> flows(p.flows);
  for (auto& f : flows) {
    f.el = &el;
    f.spurious = &spurious;
  }
  tiny_rng rng;
  const double c0 = cpu_seconds_now();
  simtime_t vnow = 0;
  for (std::uint64_t op = 0; op < p.acks; ++op) {
    vnow += p.tick;
    el.run_until(vnow);
    legacy_flow& f = flows[rng.next() % p.flows];
    f.deadline = vnow + p.rto;
    el.schedule(f, f.deadline);
  }
  el.run_until(vnow + p.rto + 1);
  const double dt = cpu_seconds_now() - c0;
  std::uint64_t fires = 0;
  for (const auto& f : flows) fires += f.fires;
  *fires_out = fires;
  *spurious_out = spurious;
  return dt;
}

/// Self-rescheduling tick sources (pipe/pacer-style FIFO traffic): measures
/// raw dispatch + heap throughput with no cancellations.
double ticks_new(std::size_t sources, std::uint64_t total_events) {
  event_list el;
  struct tick_source final : event_source {
    tick_source(event_list& el, simtime_t period)
        : event_source(el, "tick"), period_(period) {}
    void do_next_event() override {
      timer_ = events().schedule_in(*this, period_);
    }
    simtime_t period_;
    timer_handle timer_;
  };
  std::deque<tick_source> srcs;  // deque: event_source is pinned in place
  for (std::size_t i = 0; i < sources; ++i) {
    // Coprime-ish periods plus a shared one: a mix of unique timestamps and
    // same-timestamp bursts, like synchronized incast arrivals.
    srcs.emplace_back(el, from_ns(100 + 10 * (i % 16)));
    el.schedule_at(srcs.back(), from_ns(100));
  }
  const double c0 = cpu_seconds_now();
  std::uint64_t n = 0;
  while (n < total_events) n += el.run_next_batch();
  return cpu_seconds_now() - c0;
}

double ticks_legacy(std::size_t sources, std::uint64_t total_events) {
  legacy_event_list el;
  struct tick_source final : legacy_source {
    legacy_event_list* el = nullptr;
    simtime_t period = 0;
    std::uint64_t* count = nullptr;
    void do_next_event() override {
      ++*count;
      el->schedule(*this, el->now() + period);
    }
  };
  std::uint64_t n = 0;
  std::vector<tick_source> srcs(sources);
  for (std::size_t i = 0; i < sources; ++i) {
    srcs[i].el = &el;
    srcs[i].period = from_ns(100 + 10 * (i % 16));
    srcs[i].count = &n;
    el.schedule(srcs[i], from_ns(100));
  }
  const double c0 = cpu_seconds_now();
  while (n < total_events) el.run_until(el.now() + from_us(1));
  return cpu_seconds_now() - c0;
}

// --------------------------------------------------------------------------
// Section 2: route-setup microbenchmark.
// --------------------------------------------------------------------------

struct route_setup_result {
  double legacy_sec = 0;
  double interned_sec = 0;
  std::uint64_t route_pairs = 0;     ///< route pairs handed to flows (each side)
  std::size_t legacy_bytes = 0;      ///< resident route bytes, per-flow model
  std::size_t interned_bytes = 0;    ///< resident shared-route bytes (table)
  [[nodiscard]] double speedup() const { return legacy_sec / interned_sec; }
};

/// Closed-loop flow churn on a k=8 FatTree permutation: `kRounds` generations
/// of flows between the same host pairs, every flow taking the full multipath
/// set (the default).  The legacy side replicates the seed's contract —
/// `make_routes` heap-builds every pair privately and the connection appends
/// its endpoints and owns the routes to the end of the run.  The interned
/// side asks the table, which builds each (src, dst, path) once.
route_setup_result run_route_setup() {
  constexpr unsigned kK = 8;
  constexpr int kRounds = 10;
  route_setup_result res;

  auto droptail = [](sim_env& env) {
    return [&env](link_level, std::size_t, linkspeed_bps rate,
                  const std::string& name) -> std::unique_ptr<queue_base> {
      return std::make_unique<drop_tail_queue>(env, rate, 100 * 9000, name);
    };
  };
  struct null_sink final : packet_sink {
    void receive(packet&) override {}
  };

  {  // Legacy per-flow replica.
    sim_env env(1);
    fat_tree_config tc;
    tc.k = kK;
    fat_tree ft(env, tc, droptail(env));
    const auto matrix = permutation_matrix(env.rng, ft.n_hosts());
    null_sink ep;
    std::vector<std::unique_ptr<owned_route>> keep;  // flows own to sim end
    const auto t0 = std::chrono::steady_clock::now();
    for (int round = 0; round < kRounds; ++round) {
      for (std::uint32_t h = 0; h < ft.n_hosts(); ++h) {
        const std::size_t n = ft.n_paths(h, matrix[h]);
        for (std::size_t p = 0; p < n; ++p) {
          auto [f, r] = ft.make_route_pair(h, matrix[h], p);
          f->push_back(&ep);
          r->push_back(&ep);
          f->set_reverse(r.get());
          r->set_reverse(f.get());
          keep.push_back(std::move(f));
          keep.push_back(std::move(r));
          ++res.route_pairs;
        }
      }
    }
    res.legacy_sec = seconds_since(t0);
    for (const auto& r : keep) {
      res.legacy_bytes += sizeof(owned_route) + r->size() * sizeof(packet_sink*);
    }
  }

  {  // Interned table.
    sim_env env(1);
    fat_tree_config tc;
    tc.k = kK;
    fat_tree ft(env, tc, droptail(env));
    const auto matrix = permutation_matrix(env.rng, ft.n_hosts());
    std::uint64_t handed = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int round = 0; round < kRounds; ++round) {
      for (std::uint32_t h = 0; h < ft.n_hosts(); ++h) {
        const path_set ps = ft.paths().all(h, matrix[h]);
        handed += ps.size();
      }
    }
    res.interned_sec = seconds_since(t0);
    res.interned_bytes = ft.paths().resident_bytes();
    NDPSIM_ASSERT(handed == res.route_pairs);
  }
  return res;
}

// --------------------------------------------------------------------------
// Section 3: flow-churn benchmark (lifecycle engine vs no-recycle baseline).
// --------------------------------------------------------------------------

struct churn_phase_result {
  double cpu_sec = 0;              ///< process CPU time consumed by the phase
  std::uint64_t completed = 0;
  std::size_t flow_slots = 0;      ///< factory flow-table size at the end
  std::size_t table_bytes = 0;     ///< path_table resident bytes at the end
  std::size_t rss_growth = 0;      ///< process RSS growth over the phase
  std::size_t rss_after = 0;       ///< absolute RSS when the phase ended
  [[nodiscard]] double flows_per_sec() const {
    return cpu_sec > 0 ? static_cast<double>(completed) / cpu_sec : 0;
  }
};

struct churn_workload {
  unsigned k = 8;
  // Enough turnovers that the baseline's accumulation (demux entries,
  // subset arrays, live transport objects) costs it measurably, not just
  // in memory: at 64 generations the no-recycle side drags ~4k dead flows.
  std::uint64_t generations = 64;
  std::uint64_t bytes = 90'000;  ///< ~10 packets per RPC
  std::size_t senders = 64;      ///< closed-loop incast population
};

/// Closed-loop RPC churn: `senders` hosts keep one 90KB request each in
/// flight towards host 0 (an RPC server), replacing every completed flow
/// immediately, for `generations` turnovers of the population.  This is the
/// demux-heavy pattern: every flow terminates at the same receiving host.
churn_phase_result churn_with_recycler(const churn_workload& w) {
  churn_phase_result res;
  fabric_params fp;
  fp.proto = protocol::ndp;
  auto bed = make_fat_tree_testbed(21, w.k, fp);
  std::uint64_t cursor = 0;
  const std::size_t n_senders =
      std::min<std::size_t>(w.senders, bed->topo->n_hosts() - 1);
  auto pick_pair = [&cursor, n_senders](sim_env&) {
    const std::uint32_t src =
        static_cast<std::uint32_t>(1 + cursor++ % n_senders);
    return std::make_pair(src, std::uint32_t{0});
  };
  const std::uint64_t target = w.generations * n_senders;
  recycler_config rc;
  rc.proto = protocol::ndp;
  rc.opts.bytes = w.bytes;
  rc.opts.max_paths = 8;
  rc.linger = from_us(200);
  rc.max_starts = target;  // same flow count as the baseline side
  flow_recycler rec(bed->env, *bed->topo, *bed->flows, rc, pick_pair);

  const std::size_t rss0 = current_rss_bytes();
  const double c0 = cpu_seconds_now();
  rec.start(n_senders);
  while (rec.fcts().completed() < target && bed->env.events.run_next_event()) {
  }
  rec.stop();
  res.cpu_sec = cpu_seconds_now() - c0;
  res.completed = rec.fcts().completed();
  res.flow_slots = bed->flows->flows().size();
  res.table_bytes = bed->topo->paths().resident_bytes();
  res.rss_after = current_rss_bytes();
  res.rss_growth = res.rss_after > rss0 ? res.rss_after - rss0 : 0;
  return res;
}

/// The same workload with the pre-lifecycle behaviour: completed flows are
/// never destroyed — transports, demux bindings and subset arrays all
/// accumulate for the run's lifetime.
churn_phase_result churn_baseline(const churn_workload& w) {
  churn_phase_result res;
  fabric_params fp;
  fp.proto = protocol::ndp;
  auto bed = make_fat_tree_testbed(21, w.k, fp);
  const std::size_t n_senders =
      std::min<std::size_t>(w.senders, bed->topo->n_hosts() - 1);
  const std::uint64_t target = w.generations * n_senders;
  std::uint64_t started = 0;
  std::uint64_t completed = 0;
  flow_options base;
  base.bytes = w.bytes;
  base.max_paths = 8;
  std::function<void(std::uint32_t)> start_one =
      [&](std::uint32_t src) {
        flow_options o = base;
        o.start = bed->env.now();
        flow& f = bed->flows->create(protocol::ndp, src, 0, o);
        ++started;
        f.on_complete([&, src] {
          ++completed;
          if (started < target) start_one(src);
        });
      };

  const std::size_t rss0 = current_rss_bytes();
  const double c0 = cpu_seconds_now();
  for (std::size_t s = 0; s < n_senders; ++s) {
    start_one(static_cast<std::uint32_t>(1 + s));
  }
  while (completed < target && bed->env.events.run_next_event()) {
  }
  res.cpu_sec = cpu_seconds_now() - c0;
  res.completed = completed;
  res.flow_slots = bed->flows->flows().size();
  res.table_bytes = bed->topo->paths().resident_bytes();
  res.rss_after = current_rss_bytes();
  res.rss_growth = res.rss_after > rss0 ? res.rss_after - rss0 : 0;
  return res;
}

// --------------------------------------------------------------------------
// Sections 4 + 5: figure-level runs and the parallel sweep.
// --------------------------------------------------------------------------

struct figure_stats {
  std::string name;
  std::uint64_t events = 0;
  double wall_seconds = 0;
  double cpu_seconds = 0;   ///< events_per_sec denominator (load-immune)
  double events_per_sec = 0;
  std::size_t completed = 0;
};

/// Shared epilogue: events/sec over process CPU time, not wall — on a busy
/// machine wall time counts everyone else's work and the committed-baseline
/// comparison in CI would flag phantom regressions.
void finish_figure(figure_stats& st, std::uint64_t events, double wall,
                   double cpu) {
  st.events = events;
  st.wall_seconds = wall;
  st.cpu_seconds = cpu;
  st.events_per_sec =
      cpu > 0 ? static_cast<double>(events) / cpu : 0;
}

void incast_body(const experiment_config& cfg, sim_env& env,
                 fct_recorder& fcts) {
  fabric_params fp;
  fp.proto = protocol::ndp;
  fat_tree_config tc;
  tc.k = 4;
  testbed bed(env, tc, fp);  // one sim_env per job, owned by the runner
  std::vector<std::uint32_t> senders;
  for (std::uint32_t h = 1; h < bed.topo->n_hosts(); ++h) senders.push_back(h);
  flow_options o;
  const std::uint64_t bytes = 270'000 + 9'000 * static_cast<std::uint64_t>(
                                            cfg.param);
  const auto res = run_incast(bed, protocol::ndp, senders, 0, bytes, o,
                              from_ms(200));
  (void)res;
  for (const auto& f : bed.flows->flows()) {
    if (f == nullptr) continue;  // destroyed flows leave recycled holes
    fcts.flow_started(f->id, f->start_time, f->bytes);
    if (f->complete()) fcts.flow_completed(f->id, f->completion_time());
  }
}

figure_stats run_incast_figure() {
  figure_stats st;
  st.name = "incast_ndp_k4_15to1";
  const auto t0 = std::chrono::steady_clock::now();
  const double c0 = cpu_seconds_now();
  experiment_config cfg{.name = st.name, .seed = 42, .param = 0};
  sim_env env(cfg.seed);
  fct_recorder fcts;
  incast_body(cfg, env, fcts);
  finish_figure(st, env.events.events_processed(), seconds_since(t0),
                cpu_seconds_now() - c0);
  st.completed = fcts.completed();
  return st;
}

figure_stats run_permutation_figure() {
  figure_stats st;
  st.name = "permutation_ndp_k4";
  const auto t0 = std::chrono::steady_clock::now();
  const double c0 = cpu_seconds_now();
  fabric_params fp;
  fp.proto = protocol::ndp;
  auto bed = make_fat_tree_testbed(7, 4, fp);
  flow_options o;
  const auto res = run_permutation(*bed, protocol::ndp, o, from_ms(1),
                                   from_ms(4));
  (void)res;
  finish_figure(st, bed->env.events.events_processed(), seconds_since(t0),
                cpu_seconds_now() - c0);
  st.completed = bed->topo->n_hosts();
  return st;
}

/// Large-k scale scenario unlocked by the interned path table: a 1024-host
/// permutation (64 shared paths per inter-pod pair) that the per-flow route
/// model made needlessly expensive to even set up.
figure_stats run_permutation_k16_figure() {
  figure_stats st;
  st.name = "permutation_ndp_k16";
  const auto t0 = std::chrono::steady_clock::now();
  const double c0 = cpu_seconds_now();
  fabric_params fp;
  fp.proto = protocol::ndp;
  auto bed = make_fat_tree_testbed(7, 16, fp);
  flow_options o;
  const auto res = run_permutation(*bed, protocol::ndp, o, from_ms(0.5),
                                   from_ms(1.5));
  (void)res;
  finish_figure(st, bed->env.events.events_processed(), seconds_since(t0),
                cpu_seconds_now() - c0);
  st.completed = bed->topo->n_hosts();
  std::printf("  k16: %zu interned paths, %.1f MB shared route state\n",
              bed->topo->paths().interned_paths(),
              static_cast<double>(bed->topo->paths().resident_bytes()) / 1e6);
  return st;
}

/// Figure-level DCQCN at scale (ROADMAP open item: only the NDP/TCP
/// families were exercised past toy sizes): a k=8 (128-host) permutation on
/// the PFC-lossless RED-marking fabric, goodput measured over a window.
figure_stats run_permutation_dcqcn_k8() {
  figure_stats st;
  st.name = "permutation_dcqcn_k8";
  const auto t0 = std::chrono::steady_clock::now();
  const double c0 = cpu_seconds_now();
  fabric_params fp;
  fp.proto = protocol::dcqcn;
  auto bed = make_fat_tree_testbed(7, 8, fp);
  flow_options o;
  const auto res = run_permutation(*bed, protocol::dcqcn, o, from_ms(0.5),
                                   from_ms(2));
  (void)res;
  finish_figure(st, bed->env.events.events_processed(), seconds_since(t0),
                cpu_seconds_now() - c0);
  // Unbounded goodput-window flows never complete; report the honest count.
  st.completed = bed->flows->completed_count();
  return st;
}

/// Figure-level pHost at scale: a k=8 permutation of finite 900KB flows over
/// its shallow (8-packet) drop-tail fabric, run to completion.
figure_stats run_phost_k8() {
  figure_stats st;
  st.name = "permutation_phost_k8";
  const auto t0 = std::chrono::steady_clock::now();
  const double c0 = cpu_seconds_now();
  fabric_params fp;
  fp.proto = protocol::phost;
  auto bed = make_fat_tree_testbed(7, 8, fp);
  const auto matrix = permutation_matrix(bed->env.rng, bed->topo->n_hosts());
  std::vector<flow*> flows;
  flow_options o;
  o.bytes = 900'000;
  for (std::uint32_t h = 0; h < bed->topo->n_hosts(); ++h) {
    flow_options fo = o;
    fo.start = static_cast<simtime_t>(bed->env.rand_below(1000)) * kNanosecond;
    flows.push_back(&bed->flows->create(protocol::phost, h, matrix[h], fo));
  }
  run_until_complete(bed->env, flows, from_ms(200));
  finish_figure(st, bed->env.events.events_processed(), seconds_since(t0),
                cpu_seconds_now() - c0);
  st.completed = bed->flows->completed_count();
  return st;
}

/// Exact (bitwise) comparison of two sweeps' per-config FCT records.
bool outcomes_identical(const std::vector<experiment_outcome>& a,
                        const std::vector<experiment_outcome>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& ra = a[i].fcts.records();
    const auto& rb = b[i].fcts.records();
    if (ra.size() != rb.size()) return false;
    for (std::size_t j = 0; j < ra.size(); ++j) {
      if (ra[j].flow_id != rb[j].flow_id || ra[j].start != rb[j].start ||
          ra[j].end != rb[j].end || ra[j].bytes != rb[j].bytes) {
        return false;
      }
    }
    if (a[i].events_processed != b[i].events_processed ||
        a[i].sim_end != b[i].sim_end) {
      return false;
    }
  }
  return true;
}

}  // namespace
}  // namespace ndpsim

int main(int argc, char** argv) {
  using namespace ndpsim;
  const char* out_path = "BENCH_eventcore.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      out_path = argv[i];
    }
  }
  if (quick) std::printf("quick mode: reduced iteration counts\n");

  // ---- Section 1: scheduler microbenchmark.  Not scaled down in quick
  // mode: it is sub-second at full counts, and shorter runs under-amortize
  // heap/cache warmup, which would make the reported rates incomparable
  // with full runs (the property the CI smoke check relies on).
  churn_params cp;
  std::uint64_t new_fires = 0;
  std::uint64_t legacy_fires = 0;
  std::uint64_t legacy_spurious = 0;
  // Warm, then measure (one warm round is enough at these sizes).
  {
    churn_params warm = cp;
    warm.acks = 100'000;
    std::uint64_t tmp = 0;
    (void)churn_new(warm, &tmp);
    (void)churn_legacy(warm, &tmp, &legacy_spurious);
  }
  const double t_new = churn_new(cp, &new_fires);
  const double t_legacy = churn_legacy(cp, &legacy_fires, &legacy_spurious);
  const double churn_new_ops = static_cast<double>(cp.acks) / t_new;
  const double churn_legacy_ops = static_cast<double>(cp.acks) / t_legacy;
  std::printf("timer churn (%zu flows, %llu acks):\n", cp.flows,
              static_cast<unsigned long long>(cp.acks));
  std::printf("  new    : %.2fs  %.1fM timer-ops/s  (%llu genuine fires)\n",
              t_new, churn_new_ops / 1e6,
              static_cast<unsigned long long>(new_fires));
  std::printf(
      "  legacy : %.2fs  %.1fM timer-ops/s  (%llu genuine, %llu spurious)\n",
      t_legacy, churn_legacy_ops / 1e6,
      static_cast<unsigned long long>(legacy_fires),
      static_cast<unsigned long long>(legacy_spurious));
  std::printf("  speedup: %.2fx\n\n", t_legacy / t_new);

  const std::uint64_t tick_events = 4'000'000;
  const double tick_new_s = ticks_new(4096, tick_events);
  const double tick_legacy_s = ticks_legacy(4096, tick_events);
  const double tick_new_eps = static_cast<double>(tick_events) / tick_new_s;
  const double tick_legacy_eps =
      static_cast<double>(tick_events) / tick_legacy_s;
  std::printf("tick dispatch (4096 sources, %lluM events):\n",
              static_cast<unsigned long long>(tick_events / 1'000'000));
  std::printf("  new    : %.2fs  %.1fM events/s\n", tick_new_s,
              tick_new_eps / 1e6);
  std::printf("  legacy : %.2fs  %.1fM events/s\n", tick_legacy_s,
              tick_legacy_eps / 1e6);
  std::printf("  speedup: %.2fx\n\n", tick_legacy_s / tick_new_s);

  // ---- Section 2: route-setup microbenchmark.
  const route_setup_result rs = run_route_setup();
  std::printf(
      "route setup (k=8 permutation, 10 rounds of flow churn, %llu route "
      "pairs):\n",
      static_cast<unsigned long long>(rs.route_pairs));
  std::printf("  legacy   : %.3fs  %.2fM routes/s  %.1f MB resident\n",
              rs.legacy_sec,
              static_cast<double>(rs.route_pairs) / rs.legacy_sec / 1e6,
              static_cast<double>(rs.legacy_bytes) / 1e6);
  std::printf("  interned : %.3fs  %.2fM routes/s  %.1f MB resident\n",
              rs.interned_sec,
              static_cast<double>(rs.route_pairs) / rs.interned_sec / 1e6,
              static_cast<double>(rs.interned_bytes) / 1e6);
  std::printf("  speedup: %.2fx, memory: %.1fx smaller\n\n", rs.speedup(),
              static_cast<double>(rs.legacy_bytes) /
                  static_cast<double>(rs.interned_bytes));

  // ---- Section 3: flow-churn benchmark.  The recycling phase runs FIRST:
  // process RSS only ever grows, so the ordering makes "recycling's RSS
  // high-water < baseline's" a conservative comparison (the baseline starts
  // from the recycler's peak and still has to climb past it).  A discarded
  // warmup round first faults in the allocator pages both phases reuse, so
  // whichever phase runs first doesn't eat the warmup cost alone.
  // Quick mode keeps the gated workload identical (64 generations) and
  // saves time by running fewer best-of rounds — reduced repetitions keep
  // the reported rate comparable with full runs; a reduced workload would
  // not (under-amortized warmup systematically lowers it).
  churn_workload cw;
  {
    churn_workload warm = cw;
    warm.generations = 1;
    (void)churn_with_recycler(warm);
    (void)churn_baseline(warm);
  }
  // Interleaved best-of-3 pairs: at ~60ms per phase, scheduler jitter alone
  // swings a single run ~10%, so each side keeps its best timing.  The RSS
  // metrics come from the FIRST pair only — later rounds reuse pages the
  // first already faulted in, which would understate the baseline's growth.
  churn_phase_result cr = churn_with_recycler(cw);
  churn_phase_result cb = churn_baseline(cw);
  for (int round = 1; round < (quick ? 2 : 3); ++round) {
    const churn_phase_result r2 = churn_with_recycler(cw);
    const churn_phase_result b2 = churn_baseline(cw);
    if (r2.cpu_sec < cr.cpu_sec) cr.cpu_sec = r2.cpu_sec;
    if (b2.cpu_sec < cb.cpu_sec) cb.cpu_sec = b2.cpu_sec;
  }
  std::printf(
      "flow churn (k=%u, %zu-deep closed-loop incast, %llu generations):\n",
      cw.k, cw.senders, static_cast<unsigned long long>(cw.generations));
  std::printf(
      "  recycling : %.3f cpu-s  %6.0f flows/s  %5zu flow slots  %.2f MB "
      "table  rss +%.1f MB (%.1f MB total)\n",
      cr.cpu_sec, cr.flows_per_sec(), cr.flow_slots,
      static_cast<double>(cr.table_bytes) / 1e6,
      static_cast<double>(cr.rss_growth) / 1e6,
      static_cast<double>(cr.rss_after) / 1e6);
  std::printf(
      "  baseline  : %.3f cpu-s  %6.0f flows/s  %5zu flow slots  %.2f MB "
      "table  rss +%.1f MB (%.1f MB total)\n",
      cb.cpu_sec, cb.flows_per_sec(), cb.flow_slots,
      static_cast<double>(cb.table_bytes) / 1e6,
      static_cast<double>(cb.rss_growth) / 1e6,
      static_cast<double>(cb.rss_after) / 1e6);

  // ---- Section 4: representative figure runs.  Not scaled down in quick
  // mode (each is seconds at worst): identical workloads are what keeps
  // quick-run events/sec comparable with the committed full-run values.
  const figure_stats incast = run_incast_figure();
  const figure_stats perm = run_permutation_figure();
  const figure_stats perm16 = run_permutation_k16_figure();
  const figure_stats dcqcn8 = run_permutation_dcqcn_k8();
  const figure_stats phost8 = run_phost_k8();
  for (const auto& st : {incast, perm, perm16, dcqcn8, phost8}) {
    std::printf("%-24s %8.2fs  %9llu events  %.2fM events/s  (%zu flows)\n",
                st.name.c_str(), st.wall_seconds,
                static_cast<unsigned long long>(st.events),
                st.events_per_sec / 1e6, st.completed);
  }

  // ---- Section 5: serial vs parallel sweep, identical-results check.
  std::vector<experiment_config> sweep;
  for (int i = 0; i < 4; ++i) {
    sweep.push_back(experiment_config{
        .name = "incast_seed" + std::to_string(1000 + i),
        .seed = static_cast<std::uint64_t>(1000 + i),
        .param = i});
  }
  auto body = [](const experiment_config& cfg, sim_env& env,
                 fct_recorder& fcts) { incast_body(cfg, env, fcts); };

  parallel_runner serial(1);
  const auto ts0 = std::chrono::steady_clock::now();
  const auto serial_out = serial.run(sweep, body);
  const double serial_wall = seconds_since(ts0);

  parallel_runner pool(0);
  const auto tp0 = std::chrono::steady_clock::now();
  const auto parallel_out = pool.run(sweep, body);
  const double parallel_wall = seconds_since(tp0);

  const bool identical = outcomes_identical(serial_out, parallel_out);
  const fct_recorder merged = merge_fcts(parallel_out);
  std::printf(
      "\nsweep of %zu configs: serial %.2fs, parallel %.2fs on %u threads "
      "(%.2fx), results %s, %zu flows merged\n",
      sweep.size(), serial_wall, parallel_wall, pool.threads(),
      serial_wall / parallel_wall, identical ? "IDENTICAL" : "DIVERGED",
      merged.completed());

  // ---- Emit JSON.
  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"generated_by\": \"bench_eventcore\",\n");
  std::fprintf(f, "  \"host_threads\": %u,\n", pool.threads());
  std::fprintf(f, "  \"scheduler_microbench\": {\n");
  std::fprintf(f,
               "    \"timer_churn\": {\"ops\": %llu, \"legacy_ops_per_sec\": "
               "%.0f, \"new_ops_per_sec\": %.0f, \"legacy_spurious_wakeups\": "
               "%llu, \"speedup\": %.3f},\n",
               static_cast<unsigned long long>(cp.acks), churn_legacy_ops,
               churn_new_ops,
               static_cast<unsigned long long>(legacy_spurious),
               t_legacy / t_new);
  std::fprintf(f,
               "    \"tick_dispatch\": {\"events\": %llu, "
               "\"legacy_events_per_sec\": %.0f, \"new_events_per_sec\": "
               "%.0f, \"speedup\": %.3f}\n",
               static_cast<unsigned long long>(tick_events), tick_legacy_eps,
               tick_new_eps, tick_legacy_s / tick_new_s);
  std::fprintf(f, "  },\n");
  std::fprintf(
      f,
      "  \"route_setup\": {\"route_pairs\": %llu, \"legacy_routes_per_sec\": "
      "%.0f, \"interned_routes_per_sec\": %.0f, \"legacy_resident_bytes\": "
      "%zu, \"interned_resident_bytes\": %zu, \"speedup\": %.3f},\n",
      static_cast<unsigned long long>(rs.route_pairs),
      static_cast<double>(rs.route_pairs) / rs.legacy_sec,
      static_cast<double>(rs.route_pairs) / rs.interned_sec, rs.legacy_bytes,
      rs.interned_bytes, rs.speedup());
  std::fprintf(f, "  \"flow_churn\": {\n");
  std::fprintf(f, "    \"k\": %u,\n", cw.k);
  std::fprintf(f, "    \"population\": %zu,\n", cw.senders);
  std::fprintf(f, "    \"generations\": %llu,\n",
               static_cast<unsigned long long>(cw.generations));
  std::fprintf(f,
               "    \"recycling\": {\"flows_completed\": %llu, "
               "\"flows_per_sec\": %.0f, \"flow_slots\": %zu, "
               "\"table_resident_bytes\": %zu, \"rss_growth_bytes\": %zu, "
               "\"peak_rss_bytes\": %zu},\n",
               static_cast<unsigned long long>(cr.completed),
               cr.flows_per_sec(), cr.flow_slots, cr.table_bytes,
               cr.rss_growth, cr.rss_after);
  std::fprintf(f,
               "    \"baseline\": {\"flows_completed\": %llu, "
               "\"flows_per_sec\": %.0f, \"flow_slots\": %zu, "
               "\"table_resident_bytes\": %zu, \"rss_growth_bytes\": %zu, "
               "\"peak_rss_bytes\": %zu},\n",
               static_cast<unsigned long long>(cb.completed),
               cb.flows_per_sec(), cb.flow_slots, cb.table_bytes,
               cb.rss_growth, cb.rss_after);
  std::fprintf(f, "    \"speedup\": %.3f,\n",
               cb.flows_per_sec() > 0
                   ? cr.flows_per_sec() / cb.flows_per_sec()
                   : 0.0);
  std::fprintf(f, "    \"peak_rss_lower\": %s\n",
               cr.rss_after < cb.rss_after ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"figures\": [\n");
  bool first = true;
  for (const auto& st : {incast, perm, perm16, dcqcn8, phost8}) {
    std::fprintf(f,
                 "%s    {\"name\": \"%s\", \"events\": %llu, "
                 "\"wall_seconds\": %.4f, \"cpu_seconds\": %.4f, "
                 "\"events_per_sec\": %.0f, "
                 "\"flows_completed\": %zu}",
                 first ? "" : ",\n", st.name.c_str(),
                 static_cast<unsigned long long>(st.events), st.wall_seconds,
                 st.cpu_seconds, st.events_per_sec, st.completed);
    first = false;
  }
  std::fprintf(f, "\n  ],\n");
  std::fprintf(f, "  \"parallel_sweep\": {\n");
  std::fprintf(f, "    \"configs\": %zu,\n", sweep.size());
  std::fprintf(f, "    \"threads\": %u,\n", pool.threads());
  std::fprintf(f, "    \"serial_wall_seconds\": %.4f,\n", serial_wall);
  std::fprintf(f, "    \"parallel_wall_seconds\": %.4f,\n", parallel_wall);
  std::fprintf(f, "    \"speedup\": %.3f,\n", serial_wall / parallel_wall);
  std::fprintf(f, "    \"identical_results\": %s\n",
               identical ? "true" : "false");
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  // The microbench gates the acceptance criteria ride on.
  if (t_legacy / t_new < 2.0) {
    std::fprintf(stderr,
                 "WARNING: timer churn speedup %.2fx below the 2x target\n",
                 t_legacy / t_new);
  }
  if (rs.speedup() < 5.0) {
    std::fprintf(stderr,
                 "WARNING: route setup speedup %.2fx below the 5x target\n",
                 rs.speedup());
  }
  if (cr.flows_per_sec() < cb.flows_per_sec()) {
    std::fprintf(stderr,
                 "WARNING: recycling churn %.0f flows/s below the no-recycle "
                 "baseline's %.0f\n",
                 cr.flows_per_sec(), cb.flows_per_sec());
  }
  if (cr.rss_after >= cb.rss_after && cb.rss_after > 0) {
    std::fprintf(stderr,
                 "WARNING: recycling peak RSS not below the baseline's\n");
  }
  return identical ? 0 : 2;
}
