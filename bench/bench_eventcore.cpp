// Event-core performance benchmark: tracks simulator events/sec from PR to
// PR (written to BENCH_eventcore.json at the repo root by scripts/bench.sh).
//
// Three sections:
//  1. Scheduler microbenchmark — the new indexed min-heap with cancellable
//     handles vs an embedded replica of the pre-change scheduler (a
//     std::priority_queue where a moved timer leaves a dead entry behind and
//     every dead entry costs a spurious wake-up).  The workload is the
//     simulator's dominant timer pattern: an RTO deadline pushed out on every
//     ACK, i.e. far more reschedules than genuine expirations.
//  2. Route-setup microbenchmark — the interned path table vs a replica of
//     the per-flow route building it replaced (every connection privately
//     heap-building every route pair), reporting routes/sec and resident
//     route bytes under closed-loop flow churn.
//  3. Flow-churn benchmark — closed-loop RPC churn with the flow recycler
//     vs the no-recycle baseline (every completed flow kept forever, the
//     pre-lifecycle behaviour): sustained flows/sec and resident-memory
//     growth.
//  4. Representative figure runs — a small NDP incast, k=4/k=16 NDP
//     permutations, and k=8 DCQCN and pHost permutations, reporting
//     end-to-end events/sec of the full simulator.
//  5. Parallel sweep — the same incast at several seeds, run serially and
//     through parallel_runner, checking bitwise-identical per-config FCT
//     results and reporting the wall-clock ratio.
//  6. Campaign engine — the sweep scaled to hundreds of jobs through
//     campaign_runner: jobs/sec of the streaming spill path, live RSS at
//     half vs full campaign length (bounded-memory claim) vs the
//     keep-every-outcome baseline, and the interrupted-resume merged
//     result's byte-identity with the uninterrupted run's.
//
// `--quick` reduces repetition counts (best-of rounds) for CI smoke runs
// while keeping every measured workload identical, so reported rates stay
// comparable with full runs.  All gated rates are computed over process CPU
// time, not wall-clock — the simulator is single-threaded and CPU time is
// what reproduces on shared machines.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iterator>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#if defined(__linux__)
#include <sys/resource.h>
#include <unistd.h>
#endif
#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "harness/campaign_runner.h"
#include "harness/experiments.h"
#include "harness/flow_recycler.h"
#include "harness/parallel_runner.h"
#include "net/fifo_queues.h"
#include "sim/eventlist.h"
#include "topo/path_table.h"
#include "workload/traffic_matrix.h"

namespace ndpsim {
namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// CPU seconds (user + system) consumed by this process so far.  The churn
/// comparison times with this instead of wall-clock: the simulator is
/// single-threaded, and on shared machines wall time includes whatever else
/// is running — CPU time is the metric that reproduces.  Falls back to
/// wall-clock where getrusage is unavailable.
double cpu_seconds_now() {
#if defined(__linux__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    return static_cast<double>(ru.ru_utime.tv_sec + ru.ru_stime.tv_sec) +
           static_cast<double>(ru.ru_utime.tv_usec + ru.ru_stime.tv_usec) /
               1e6;
  }
#endif
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Current resident set size of this process (0 where unsupported).
std::size_t current_rss_bytes() {
#if defined(__linux__)
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  long total = 0;
  long rss = 0;
  const int n = std::fscanf(f, "%ld %ld", &total, &rss);
  std::fclose(f);
  if (n != 2) return 0;
  return static_cast<std::size_t>(rss) *
         static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
#else
  return 0;
#endif
}

// --------------------------------------------------------------------------
// Section 1: scheduler microbenchmark.
// --------------------------------------------------------------------------

// Replica of the scheduler this PR replaced (a verbatim structural copy of
// the seed's event_list), kept as the baseline so the speedup is measured
// against the same workload in the same binary.  The old API had no
// cancel/reschedule: the documented idiom was "schedule another event and be
// prepared for wake-ups you no longer need", so a moved RTO leaves a dead
// entry that still gets popped and dispatched as a spurious wake-up.
class legacy_source {
 public:
  virtual ~legacy_source() = default;
  virtual void do_next_event() = 0;
};

class legacy_event_list {
 public:
  void schedule(legacy_source& src, simtime_t when) {
    heap_.push(entry{when, seq_++, &src});
  }
  [[nodiscard]] simtime_t now() const { return now_; }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  void run_until(simtime_t horizon) {
    while (!heap_.empty() && heap_.top().when <= horizon) {
      const entry e = heap_.top();
      heap_.pop();
      now_ = e.when;
      e.src->do_next_event();
    }
    now_ = horizon;
  }

 private:
  struct entry {
    simtime_t when;
    std::uint64_t seq;
    legacy_source* src;
    [[nodiscard]] bool operator<(const entry& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };
  std::priority_queue<entry> heap_;
  simtime_t now_ = 0;
  std::uint64_t seq_ = 0;
};

/// do_next_event target for the new-scheduler microbench: counts fires.
class counting_source final : public event_source {
 public:
  explicit counting_source(event_list& el) : event_source(el, "flow") {}
  void do_next_event() override { ++fires; }
  std::uint64_t fires = 0;
  timer_handle rto;
};

// The simulator's dominant timer pattern, at the paper's rates: each flow's
// RTO backstop moves on every ACK.  A 9KB jumbogram at 10Gb/s means one ACK
// per flow every ~7.2us while the RTO sits 1ms out — so a deadline is moved
// ~139 times before it could ever fire.  With 512 concurrent flows the
// global inter-ACK gap is ~14ns of virtual time.
struct churn_params {
  std::size_t flows = 512;
  std::uint64_t acks = 2'000'000;   ///< reschedules (one per simulated ACK)
  simtime_t rto = from_ms(1.0);     ///< deadline distance
  simtime_t tick = from_ns(14);     ///< virtual time advanced per ACK
};

/// xorshift so both sides see the same flow sequence with zero RNG overhead.
struct tiny_rng {
  std::uint64_t s = 0x9E3779B97F4A7C15ull;
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
};

/// RTO churn on the new scheduler: one handle per flow, moved in place.
double churn_new(const churn_params& p, std::uint64_t* fires_out) {
  event_list el;
  std::deque<counting_source> flows;  // deque: event_source is pinned in place
  for (std::size_t i = 0; i < p.flows; ++i) flows.emplace_back(el);
  tiny_rng rng;
  const double c0 = cpu_seconds_now();
  simtime_t vnow = 0;
  for (std::uint64_t op = 0; op < p.acks; ++op) {
    vnow += p.tick;
    el.run_until(vnow);
    counting_source& f = flows[rng.next() % p.flows];
    el.reschedule(f.rto, f, vnow + p.rto);
  }
  el.run_until(vnow + p.rto + 1);
  const double dt = cpu_seconds_now() - c0;
  std::uint64_t fires = 0;
  for (const auto& f : flows) fires += f.fires;
  *fires_out = fires;
  return dt;
}

/// The same ACK sequence on the legacy scheduler: every move pushes a fresh
/// entry; superseded entries fire as spurious wake-ups the source must
/// detect itself ("check your own state" — the old contract).
double churn_legacy(const churn_params& p, std::uint64_t* fires_out,
                    std::uint64_t* spurious_out) {
  legacy_event_list el;
  struct legacy_flow final : legacy_source {
    legacy_event_list* el = nullptr;
    std::uint64_t* spurious = nullptr;
    simtime_t deadline = -1;
    std::uint64_t fires = 0;
    void do_next_event() override {
      if (el->now() == deadline) {
        ++fires;
      } else {
        ++*spurious;  // deadline moved since this entry was armed
      }
    }
  };
  std::uint64_t spurious = 0;
  std::vector<legacy_flow> flows(p.flows);
  for (auto& f : flows) {
    f.el = &el;
    f.spurious = &spurious;
  }
  tiny_rng rng;
  const double c0 = cpu_seconds_now();
  simtime_t vnow = 0;
  for (std::uint64_t op = 0; op < p.acks; ++op) {
    vnow += p.tick;
    el.run_until(vnow);
    legacy_flow& f = flows[rng.next() % p.flows];
    f.deadline = vnow + p.rto;
    el.schedule(f, f.deadline);
  }
  el.run_until(vnow + p.rto + 1);
  const double dt = cpu_seconds_now() - c0;
  std::uint64_t fires = 0;
  for (const auto& f : flows) fires += f.fires;
  *fires_out = fires;
  *spurious_out = spurious;
  return dt;
}

/// Self-rescheduling tick sources (pipe/pacer-style FIFO traffic): measures
/// raw dispatch + heap throughput with no cancellations.
double ticks_new(std::size_t sources, std::uint64_t total_events) {
  event_list el;
  struct tick_source final : event_source {
    tick_source(event_list& el, simtime_t period)
        : event_source(el, "tick"), period_(period) {}
    void do_next_event() override {
      timer_ = events().schedule_in(*this, period_);
    }
    simtime_t period_;
    timer_handle timer_;
  };
  std::deque<tick_source> srcs;  // deque: event_source is pinned in place
  for (std::size_t i = 0; i < sources; ++i) {
    // Coprime-ish periods plus a shared one: a mix of unique timestamps and
    // same-timestamp bursts, like synchronized incast arrivals.
    srcs.emplace_back(el, from_ns(100 + 10 * (i % 16)));
    el.schedule_at(srcs.back(), from_ns(100));
  }
  const double c0 = cpu_seconds_now();
  std::uint64_t n = 0;
  while (n < total_events) n += el.run_next_batch();
  return cpu_seconds_now() - c0;
}

double ticks_legacy(std::size_t sources, std::uint64_t total_events) {
  legacy_event_list el;
  struct tick_source final : legacy_source {
    legacy_event_list* el = nullptr;
    simtime_t period = 0;
    std::uint64_t* count = nullptr;
    void do_next_event() override {
      ++*count;
      el->schedule(*this, el->now() + period);
    }
  };
  std::uint64_t n = 0;
  std::vector<tick_source> srcs(sources);
  for (std::size_t i = 0; i < sources; ++i) {
    srcs[i].el = &el;
    srcs[i].period = from_ns(100 + 10 * (i % 16));
    srcs[i].count = &n;
    el.schedule(srcs[i], from_ns(100));
  }
  const double c0 = cpu_seconds_now();
  while (n < total_events) el.run_until(el.now() + from_us(1));
  return cpu_seconds_now() - c0;
}

// --------------------------------------------------------------------------
// Section 2: route-setup microbenchmark.
// --------------------------------------------------------------------------

struct route_setup_result {
  double legacy_sec = 0;
  double interned_sec = 0;
  std::uint64_t route_pairs = 0;     ///< route pairs handed to flows (each side)
  std::size_t legacy_bytes = 0;      ///< resident route bytes, per-flow model
  std::size_t interned_bytes = 0;    ///< resident shared-route bytes (table)
  [[nodiscard]] double speedup() const { return legacy_sec / interned_sec; }
};

/// Closed-loop flow churn on a k=8 FatTree permutation: `kRounds` generations
/// of flows between the same host pairs, every flow taking the full multipath
/// set (the default).  The legacy side replicates the seed's contract —
/// `make_routes` heap-builds every pair privately and the connection appends
/// its endpoints and owns the routes to the end of the run.  The interned
/// side asks the table, which builds each (src, dst, path) once.
route_setup_result run_route_setup() {
  constexpr unsigned kK = 8;
  constexpr int kRounds = 10;
  route_setup_result res;

  auto droptail = [](sim_env& env) {
    return [&env](link_level, std::size_t, linkspeed_bps rate,
                  const std::string& name) -> std::unique_ptr<queue_base> {
      return std::make_unique<drop_tail_queue>(env, rate, 100 * 9000, name);
    };
  };
  struct null_sink final : packet_sink {
    void receive(packet&) override {}
  };

  {  // Legacy per-flow replica.
    sim_env env(1);
    fat_tree_config tc;
    tc.k = kK;
    fat_tree ft(env, tc, droptail(env));
    const auto matrix = permutation_matrix(env.rng, ft.n_hosts());
    null_sink ep;
    std::vector<std::unique_ptr<owned_route>> keep;  // flows own to sim end
    const auto t0 = std::chrono::steady_clock::now();
    for (int round = 0; round < kRounds; ++round) {
      for (std::uint32_t h = 0; h < ft.n_hosts(); ++h) {
        const std::size_t n = ft.n_paths(h, matrix[h]);
        for (std::size_t p = 0; p < n; ++p) {
          auto [f, r] = ft.make_route_pair(h, matrix[h], p);
          f->push_back(&ep);
          r->push_back(&ep);
          f->set_reverse(r.get());
          r->set_reverse(f.get());
          keep.push_back(std::move(f));
          keep.push_back(std::move(r));
          ++res.route_pairs;
        }
      }
    }
    res.legacy_sec = seconds_since(t0);
    for (const auto& r : keep) {
      res.legacy_bytes += sizeof(owned_route) + r->size() * sizeof(packet_sink*);
    }
  }

  {  // Interned table.
    sim_env env(1);
    fat_tree_config tc;
    tc.k = kK;
    fat_tree ft(env, tc, droptail(env));
    const auto matrix = permutation_matrix(env.rng, ft.n_hosts());
    std::uint64_t handed = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int round = 0; round < kRounds; ++round) {
      for (std::uint32_t h = 0; h < ft.n_hosts(); ++h) {
        const path_set ps = ft.paths().all(h, matrix[h]);
        handed += ps.size();
      }
    }
    res.interned_sec = seconds_since(t0);
    res.interned_bytes = ft.paths().resident_bytes();
    NDPSIM_ASSERT(handed == res.route_pairs);
  }
  return res;
}

// --------------------------------------------------------------------------
// Section 2b: fabric-setup microbenchmark (structure/state split).
// --------------------------------------------------------------------------

struct fabric_setup_result {
  unsigned k = 0;
  std::size_t hosts = 0;
  std::size_t links = 0;
  double blueprint_sec = 0;    ///< build the shared immutable blueprint once
  double instantiate_sec = 0;  ///< stamp one per-env instance out of it
  double route_warm_sec = 0;   ///< resolve a permutation's route set (warm)
  double legacy_sec = 0;       ///< pre-split from-scratch replica (see below)
  std::size_t blueprint_bytes = 0;  ///< shared, counted once per sweep
  std::size_t instance_bytes = 0;   ///< per env
  std::size_t table_bytes = 0;      ///< per-env path table
  std::size_t legacy_bytes = 0;     ///< per env under the pre-split model
  /// The acceptance ratio: stamping one more instance out of a warm
  /// blueprint vs standing the same fabric up from scratch pre-split.
  [[nodiscard]] double speedup() const { return legacy_sec / instantiate_sec; }
  /// Same, charging the instance for resolving its whole route set too.
  [[nodiscard]] double with_routes_speedup() const {
    return legacy_sec / (instantiate_sec + route_warm_sec);
  }
};

/// Blueprint build vs per-env instantiation, against a replica of the
/// pre-split from-scratch build: eagerly-formatted `std::string` names on
/// every queue/pipe (the seed's `make_link`) plus per-route `owned_route`
/// heap building (the seed's route model) for one permutation's route set at
/// `max_paths` paths per pair.  The warm side runs the real code: construct
/// a `fabric_instance` over the already-built blueprint and resolve the same
/// route set through the interned structural table.
fabric_setup_result run_fabric_setup(unsigned k, int rounds) {
  constexpr std::size_t kMaxPaths = 16;
  fabric_setup_result res;
  res.k = k;
  fabric_params fp;
  fp.proto = protocol::ndp;

  // The shared blueprint build (timed once; it happens once per sweep).
  auto tbp = std::chrono::steady_clock::now();
  auto bp = make_fat_tree_blueprint(k, fp);
  res.blueprint_sec = seconds_since(tbp);
  res.hosts = bp->n_hosts();
  res.links = bp->links().size();

  // A fixed pseudo-permutation partner (h -> reversed id) and path picks,
  // shared by both sides so the workloads match.
  const auto partner = [n = res.hosts](std::uint32_t h) {
    return static_cast<std::uint32_t>(n - 1 - h);
  };

  for (int round = 0; round < rounds; ++round) {
    {  // Legacy from-scratch replica.
      sim_env env(1);
      auto factory = make_queue_factory(env, fp);
      std::vector<std::unique_ptr<queue_base>> queues;
      std::vector<std::unique_ptr<pipe>> pipes;
      std::vector<packet_sink*> sinks(bp->n_slots(), nullptr);
      queues.reserve(res.links);
      pipes.reserve(res.links);
      const auto t0 = std::chrono::steady_clock::now();
      for (const auto& l : bp->links()) {
        // What the seed's make_link paid per link: format the name, copy it
        // into the queue, format and copy the pipe's.
        std::string name = bp->format_name(l.first_slot);
        auto q = factory(l.level, l.index, l.rate, name);
        pipes.push_back(std::make_unique<pipe>(env, l.delay, name + ".pipe"));
        sinks[l.first_slot] = q.get();
        sinks[l.first_slot + 1] = pipes.back().get();
        queues.push_back(std::move(q));
      }
      // The pre-split route model: `make_route_pair` heap-builds a scratch
      // pair per path and the per-env table copies the hops into its arena
      // (what `path_table::ensure_path` did before the blueprint existed).
      std::vector<std::uint32_t> seq;
      std::deque<route> arena_routes;
      std::vector<std::unique_ptr<packet_sink*[]>> arena;
      std::size_t arena_used = 0, arena_cap = 0, arena_hops = 0;
      auto intern_replica = [&](const owned_route& r) {
        const std::size_t hops = r.size() + 1;  // + demux terminal
        if (arena_used + hops > arena_cap) {
          arena_cap = 4096;
          arena_used = 0;
          arena.push_back(std::make_unique<packet_sink*[]>(arena_cap));
        }
        packet_sink** span = arena.back().get() + arena_used;
        for (std::size_t i = 0; i < r.size(); ++i) span[i] = &r.at(i);
        span[hops - 1] = span[0];  // terminal stand-in
        arena_used += hops;
        arena_hops += hops;
        arena_routes.emplace_back(span, static_cast<std::uint32_t>(hops));
      };
      for (std::uint32_t h = 0; h < res.hosts; ++h) {
        const std::uint32_t d = partner(h);
        if (d == h) continue;
        const std::size_t n = bp->n_paths(h, d);
        for (std::size_t i = 0; i < std::min(n, kMaxPaths); ++i) {
          const std::size_t p = (h + i) % n;
          auto fwd = std::make_unique<owned_route>();
          bp->build_path(h, d, p, seq);
          for (const std::uint32_t s : seq) fwd->push_back(sinks[s]);
          auto rev = std::make_unique<owned_route>();
          bp->build_path(d, h, p, seq);
          for (const std::uint32_t s : seq) rev->push_back(sinks[s]);
          fwd->set_reverse(rev.get());
          rev->set_reverse(fwd.get());
          // Interned into the per-env arena; the scratch pair is then freed
          // (exactly the pre-split ensure_path sequence).
          intern_replica(*fwd);
          intern_replica(*rev);
        }
      }
      const double dt = seconds_since(t0);
      if (round == 0 || dt < res.legacy_sec) res.legacy_sec = dt;
      if (round == 0) {
        res.legacy_bytes = arena_hops * sizeof(packet_sink*) +
                           arena_routes.size() * sizeof(route) +
                           res.links * sizeof(void*) * 2;
        for (const auto& q : queues) res.legacy_bytes += q->name().size();
      }
    }

    {  // Structure/state split: instantiate + warm route resolution.
      sim_env env(1);
      const auto t0 = std::chrono::steady_clock::now();
      fat_tree ft(env, bp, make_queue_factory(env, fp));
      const double inst = seconds_since(t0);
      const auto t1 = std::chrono::steady_clock::now();
      for (std::uint32_t h = 0; h < res.hosts; ++h) {
        const std::uint32_t d = partner(h);
        if (d == h) continue;
        const path_set ps = ft.paths().sample(env, h, d, kMaxPaths);
        (void)ps;
      }
      const double warm = seconds_since(t1);
      if (round == 0 || inst + warm < res.instantiate_sec + res.route_warm_sec) {
        res.instantiate_sec = inst;
        res.route_warm_sec = warm;
      }
      if (round == 0) {
        res.instance_bytes = ft.resident_bytes();
        res.table_bytes = ft.paths().resident_bytes();
      }
    }
  }
  res.blueprint_bytes = bp->resident_bytes();
  return res;
}

// --------------------------------------------------------------------------
// Section 3: flow-churn benchmark (lifecycle engine vs no-recycle baseline).
// --------------------------------------------------------------------------

struct churn_phase_result {
  double cpu_sec = 0;              ///< process CPU time consumed by the phase
  std::uint64_t completed = 0;
  std::size_t flow_slots = 0;      ///< factory flow-table size at the end
  std::size_t table_bytes = 0;     ///< path_table resident bytes at the end
  std::size_t rss_growth = 0;      ///< process RSS growth over the phase
  std::size_t rss_after = 0;       ///< absolute RSS when the phase ended
  [[nodiscard]] double flows_per_sec() const {
    return cpu_sec > 0 ? static_cast<double>(completed) / cpu_sec : 0;
  }
};

struct churn_workload {
  unsigned k = 8;
  // Enough turnovers that the baseline's accumulation (demux entries,
  // subset arrays, live transport objects) costs it measurably, not just
  // in memory: at 64 generations the no-recycle side drags ~4k dead flows.
  std::uint64_t generations = 64;
  std::uint64_t bytes = 90'000;  ///< ~10 packets per RPC
  std::size_t senders = 64;      ///< closed-loop incast population
};

/// Closed-loop RPC churn: `senders` hosts keep one 90KB request each in
/// flight towards host 0 (an RPC server), replacing every completed flow
/// immediately, for `generations` turnovers of the population.  This is the
/// demux-heavy pattern: every flow terminates at the same receiving host.
churn_phase_result churn_with_recycler(const churn_workload& w) {
  churn_phase_result res;
  fabric_params fp;
  fp.proto = protocol::ndp;
  auto bed = make_fat_tree_testbed(21, w.k, fp);
  std::uint64_t cursor = 0;
  const std::size_t n_senders =
      std::min<std::size_t>(w.senders, bed->topo->n_hosts() - 1);
  auto pick_pair = [&cursor, n_senders](sim_env&) {
    const std::uint32_t src =
        static_cast<std::uint32_t>(1 + cursor++ % n_senders);
    return std::make_pair(src, std::uint32_t{0});
  };
  const std::uint64_t target = w.generations * n_senders;
  recycler_config rc;
  rc.proto = protocol::ndp;
  rc.opts.bytes = w.bytes;
  rc.opts.max_paths = 8;
  rc.linger = from_us(200);
  rc.max_starts = target;  // same flow count as the baseline side
  flow_recycler rec(bed->env, *bed->topo, *bed->flows, rc, pick_pair);

  const std::size_t rss0 = current_rss_bytes();
  const double c0 = cpu_seconds_now();
  rec.start(n_senders);
  while (rec.fcts().completed() < target && bed->env.events.run_next_event()) {
  }
  rec.stop();
  res.cpu_sec = cpu_seconds_now() - c0;
  res.completed = rec.fcts().completed();
  res.flow_slots = bed->flows->flows().size();
  res.table_bytes = bed->topo->paths().resident_bytes();
  res.rss_after = current_rss_bytes();
  res.rss_growth = res.rss_after > rss0 ? res.rss_after - rss0 : 0;
  return res;
}

/// The same workload with the pre-lifecycle behaviour: completed flows are
/// never destroyed — transports, demux bindings and subset arrays all
/// accumulate for the run's lifetime.
churn_phase_result churn_baseline(const churn_workload& w) {
  churn_phase_result res;
  fabric_params fp;
  fp.proto = protocol::ndp;
  auto bed = make_fat_tree_testbed(21, w.k, fp);
  const std::size_t n_senders =
      std::min<std::size_t>(w.senders, bed->topo->n_hosts() - 1);
  const std::uint64_t target = w.generations * n_senders;
  std::uint64_t started = 0;
  std::uint64_t completed = 0;
  flow_options base;
  base.bytes = w.bytes;
  base.max_paths = 8;
  std::function<void(std::uint32_t)> start_one =
      [&](std::uint32_t src) {
        flow_options o = base;
        o.start = bed->env.now();
        flow& f = bed->flows->create(protocol::ndp, src, 0, o);
        ++started;
        f.on_complete([&, src] {
          ++completed;
          if (started < target) start_one(src);
        });
      };

  const std::size_t rss0 = current_rss_bytes();
  const double c0 = cpu_seconds_now();
  for (std::size_t s = 0; s < n_senders; ++s) {
    start_one(static_cast<std::uint32_t>(1 + s));
  }
  while (completed < target && bed->env.events.run_next_event()) {
  }
  res.cpu_sec = cpu_seconds_now() - c0;
  res.completed = completed;
  res.flow_slots = bed->flows->flows().size();
  res.table_bytes = bed->topo->paths().resident_bytes();
  res.rss_after = current_rss_bytes();
  res.rss_growth = res.rss_after > rss0 ? res.rss_after - rss0 : 0;
  return res;
}

// --------------------------------------------------------------------------
// Sections 4 + 5: figure-level runs and the parallel sweep.
// --------------------------------------------------------------------------

struct figure_stats {
  std::string name;
  std::uint64_t events = 0;
  double wall_seconds = 0;
  double cpu_seconds = 0;   ///< events_per_sec denominator (load-immune)
  double events_per_sec = 0;
  std::size_t completed = 0;
};

/// Shared epilogue: events/sec over process CPU time, not wall — on a busy
/// machine wall time counts everyone else's work and the committed-baseline
/// comparison in CI would flag phantom regressions.
void finish_figure(figure_stats& st, std::uint64_t events, double wall,
                   double cpu) {
  st.events = events;
  st.wall_seconds = wall;
  st.cpu_seconds = cpu;
  st.events_per_sec =
      cpu > 0 ? static_cast<double>(events) / cpu : 0;
}

/// The sweep body.  With `bp == nullptr` every job builds a private fabric
/// (blueprint + instance); with a blueprint the job only stamps out its
/// per-env instance — the structure/state split.  `fabric_bytes` (when set)
/// accumulates the job's resident fabric memory: instance + per-env path
/// table, plus the blueprint when it is private (a shared blueprint is
/// counted once by the caller instead).
void incast_body(const experiment_config& cfg, sim_env& env,
                 fct_recorder& fcts,
                 const std::shared_ptr<const fabric_blueprint>* bp = nullptr,
                 std::atomic<std::size_t>* fabric_bytes = nullptr) {
  fabric_params fp;
  fp.proto = protocol::ndp;
  std::unique_ptr<testbed> bed;
  if (bp != nullptr) {
    bed = std::make_unique<testbed>(env, *bp, fp);
  } else {
    fat_tree_config tc;
    tc.k = 4;
    bed = std::make_unique<testbed>(env, tc, fp);
  }
  std::vector<std::uint32_t> senders;
  for (std::uint32_t h = 1; h < bed->topo->n_hosts(); ++h) senders.push_back(h);
  flow_options o;
  const std::uint64_t bytes = 270'000 + 9'000 * static_cast<std::uint64_t>(
                                            cfg.param);
  const auto res = run_incast(*bed, protocol::ndp, senders, 0, bytes, o,
                              from_ms(200));
  (void)res;
  for (const auto& f : bed->flows->flows()) {
    if (f == nullptr) continue;  // destroyed flows leave recycled holes
    fcts.flow_started(f->id, f->start_time, f->bytes);
    if (f->complete()) fcts.flow_completed(f->id, f->completion_time());
  }
  if (fabric_bytes != nullptr) {
    std::size_t b = bed->topo->resident_bytes() +
                    bed->topo->paths().resident_bytes();
    if (bp == nullptr) b += bed->topo->blueprint()->resident_bytes();
    fabric_bytes->fetch_add(b, std::memory_order_relaxed);
  }
}

// --------------------------------------------------------------------------
// Section 5b: campaign engine — long sweeps in bounded memory.
// --------------------------------------------------------------------------

/// Return free heap pages to the kernel so a current_rss_bytes() reading
/// approximates LIVE bytes.  Without this the campaign comparison below is
/// blind: the flow-churn section has already grown the allocator arena, and
/// every campaign phase would be served from its free lists without moving
/// RSS at all.  No-op off glibc (the readings get noisier, the gates keep
/// their slack).
void trim_heap() {
#if defined(__GLIBC__)
  malloc_trim(0);
#endif
}

std::size_t trimmed_rss_bytes() {
  trim_heap();
  return current_rss_bytes();
}

/// Campaign section result: streaming throughput, RSS under three retention
/// policies, and the resume-identity flag (the campaign engine's contract).
struct campaign_bench_result {
  std::size_t jobs = 0;
  double stream_cpu_sec = 0;
  std::uint64_t flows = 0;          ///< completed flows across the full sweep
  std::size_t rss_half = 0;         ///< live RSS after an N/2-job campaign
  std::size_t rss_stream = 0;       ///< live RSS after the full N-job campaign
  std::size_t rss_keepall = 0;      ///< live RSS with all N outcomes held
  bool flows_match = false;         ///< streaming and keep-all agree on flows
  bool resume_identical = false;    ///< interrupted+resumed == uninterrupted
  bool rss_flat = false;            ///< doubling campaign length ~= free
  double jobs_per_sec() const {
    return stream_cpu_sec > 0 ? static_cast<double>(jobs) / stream_cpu_sec
                              : 0;
  }
};

/// The campaign engine bench: the parallel-sweep incast body scaled from 4
/// configs to hundreds, run three ways.  (1) streaming through
/// campaign_runner at half and full length — the bounded-memory claim is
/// that RSS tracks ACTIVE jobs, not campaign length, so the two runs must
/// land at about the same live RSS; (2) the keep-everything baseline
/// (parallel_runner::run holding every outcome's recorder + telemetry plane
/// live at once, the pre-campaign behaviour), which must sit strictly above
/// the streaming high-water; (3) a fresh campaign interrupted at half the
/// jobs and resumed from its journal, whose merged result file must be
/// byte-identical to the uninterrupted run's.  Quick mode runs a shorter
/// grid; per-job work is identical, so jobs/sec stays comparable.
campaign_bench_result run_campaign_bench(bool quick) {
  namespace fs = std::filesystem;
  campaign_bench_result r;
  r.jobs = quick ? 128 : 512;
  const fs::path base = fs::temp_directory_path() / "ndpsim_bench_campaign";
  fs::remove_all(base);

  // One shared blueprint (structure resident once); a per-job telemetry
  // plane attached before the testbed stamps out its instance — the per-job
  // state a keep-everything sweep is stuck holding.
  fabric_params fp;
  fp.proto = protocol::ndp;
  auto bp = make_fat_tree_blueprint(4, fp);
  const auto body = [&bp](const experiment_config& cfg, sim_env& env,
                          fct_recorder& fcts) {
    env.telemetry =
        std::make_shared<telemetry_plane>(bp->n_slots(), bp.get());
    incast_body(cfg, env, fcts, &bp, nullptr);
  };

  std::vector<experiment_config> grid;
  grid.reserve(r.jobs);
  for (std::size_t i = 0; i < r.jobs; ++i) {
    grid.push_back(experiment_config{
        .name = "campaign_incast_" + std::to_string(i),
        .seed = static_cast<std::uint64_t>(9000 + i),
        .param = static_cast<std::int64_t>(i % 4)});
  }

  // Phase 1: streaming campaigns, half length then full length.
  bool half_ok = false;
  {
    const std::vector<experiment_config> half_grid(
        grid.begin(), grid.begin() + static_cast<std::ptrdiff_t>(r.jobs / 2));
    campaign_config cc;
    cc.dir = (base / "half").string();
    const campaign_result half = campaign_runner(cc).run(half_grid, body);
    half_ok = half.completed;
  }
  r.rss_half = trimmed_rss_bytes();

  campaign_config full_cc;
  full_cc.dir = (base / "full").string();
  const double c0 = cpu_seconds_now();
  const campaign_result full = campaign_runner(full_cc).run(grid, body);
  r.stream_cpu_sec = cpu_seconds_now() - c0;
  r.rss_stream = trimmed_rss_bytes();
  for (const fct_summary& s : full.summaries) r.flows += s.flows;

  // Phase 2: keep-everything baseline, measured while the outcome vector is
  // alive (recorders + planes for every job at once).
  std::uint64_t keepall_flows = 0;
  {
    const parallel_runner pool(0);
    const std::vector<experiment_outcome> all = pool.run(grid, body);
    r.rss_keepall = trimmed_rss_bytes();
    for (const experiment_outcome& o : all) keepall_flows += o.fcts.completed();
  }
  r.flows_match = full.completed && half_ok && keepall_flows == r.flows;

  // Phase 3: resume identity.  Interrupt at half the jobs (journal survives,
  // process state dropped), resume, byte-compare the merged files.
  campaign_config rcc;
  rcc.dir = (base / "resume").string();
  rcc.max_jobs = r.jobs / 2;
  const campaign_result interrupted = campaign_runner(rcc).run(grid, body);
  rcc.max_jobs = 0;
  rcc.resume = true;
  const campaign_result resumed = campaign_runner(rcc).run(grid, body);
  const auto slurp = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const std::string merged_full = slurp(full.merged_path);
  const std::string merged_resumed = slurp(resumed.merged_path);
  r.resume_identical = !interrupted.completed && resumed.completed &&
                       resumed.jobs_skipped > 0 &&
                       resumed.journal_rejects == 0 &&
                       resumed.spill_rejects == 0 && !merged_full.empty() &&
                       merged_full == merged_resumed;

  // Flat = the extra RSS from doubling the campaign is small both absolutely
  // and next to what keep-all retains (the summary map and page-granularity
  // noise are all that may grow).
  const std::size_t grew =
      r.rss_stream > r.rss_half ? r.rss_stream - r.rss_half : 0;
  const std::size_t retained =
      r.rss_keepall > r.rss_stream ? r.rss_keepall - r.rss_stream : 0;
  r.rss_flat = grew <= std::max<std::size_t>(8u << 20, retained / 4);

  fs::remove_all(base);
  return r;
}

figure_stats run_incast_figure() {
  figure_stats st;
  st.name = "incast_ndp_k4_15to1";
  const auto t0 = std::chrono::steady_clock::now();
  const double c0 = cpu_seconds_now();
  experiment_config cfg{.name = st.name, .seed = 42, .param = 0};
  sim_env env(cfg.seed);
  fct_recorder fcts;
  incast_body(cfg, env, fcts);
  finish_figure(st, env.events.events_processed(), seconds_since(t0),
                cpu_seconds_now() - c0);
  st.completed = fcts.completed();
  return st;
}

figure_stats run_permutation_figure() {
  figure_stats st;
  st.name = "permutation_ndp_k4";
  const auto t0 = std::chrono::steady_clock::now();
  const double c0 = cpu_seconds_now();
  fabric_params fp;
  fp.proto = protocol::ndp;
  auto bed = make_fat_tree_testbed(7, 4, fp);
  flow_options o;
  const auto res = run_permutation(*bed, protocol::ndp, o, from_ms(1),
                                   from_ms(4));
  (void)res;
  finish_figure(st, bed->env.events.events_processed(), seconds_since(t0),
                cpu_seconds_now() - c0);
  st.completed = bed->topo->n_hosts();
  return st;
}

/// Large-k scale scenario unlocked by the interned path table: a 1024-host
/// permutation (64 shared paths per inter-pod pair) that the per-flow route
/// model made needlessly expensive to even set up.
figure_stats run_permutation_k16_figure() {
  figure_stats st;
  st.name = "permutation_ndp_k16";
  const auto t0 = std::chrono::steady_clock::now();
  const double c0 = cpu_seconds_now();
  fabric_params fp;
  fp.proto = protocol::ndp;
  auto bed = make_fat_tree_testbed(7, 16, fp);
  flow_options o;
  const auto res = run_permutation(*bed, protocol::ndp, o, from_ms(0.5),
                                   from_ms(1.5));
  (void)res;
  finish_figure(st, bed->env.events.events_processed(), seconds_since(t0),
                cpu_seconds_now() - c0);
  st.completed = bed->topo->n_hosts();
  std::printf("  k16: %zu interned paths, %.1f MB shared route state\n",
              bed->topo->paths().interned_paths(),
              static_cast<double>(bed->topo->paths().resident_bytes()) / 1e6);
  return st;
}

/// The k=32 (8192-host) scale scenario unlocked by the blueprint/instance
/// split: fabric construction no longer formats ~100k names or heap-builds
/// per-env hop arrays, so the permutation becomes a routine figure run.
/// Multipath rides the flow factory's automatic large-fabric cap (16 paths
/// per pair for >= 4096-host fabrics — the full 256-path inter-pod sets
/// would spend the run interning routes no flow ever uses).
figure_stats run_permutation_k32_figure() {
  figure_stats st;
  st.name = "permutation_ndp_k32";
  const auto t0 = std::chrono::steady_clock::now();
  const double c0 = cpu_seconds_now();
  fabric_params fp;
  fp.proto = protocol::ndp;
  auto bed = make_fat_tree_testbed(7, 32, fp);
  flow_options o;
  const auto res = run_permutation(*bed, protocol::ndp, o, from_us(150),
                                   from_us(350));
  (void)res;
  finish_figure(st, bed->env.events.events_processed(), seconds_since(t0),
                cpu_seconds_now() - c0);
  st.completed = bed->topo->n_hosts();
  std::printf("  k32: %zu hosts, %zu interned paths, %.1f MB shared "
              "structure, %.1f MB per-env table\n",
              bed->topo->n_hosts(), bed->topo->paths().interned_paths(),
              static_cast<double>(bed->topo->blueprint()->resident_bytes()) /
                  1e6,
              static_cast<double>(bed->topo->paths().resident_bytes()) / 1e6);
  return st;
}

/// Figure-level DCQCN at scale (ROADMAP open item: only the NDP/TCP
/// families were exercised past toy sizes): a k=8 (128-host) permutation on
/// the PFC-lossless RED-marking fabric.  Finite 900KB flows run to
/// completion, mirroring the pHost figure — the earlier goodput-window
/// variant used unbounded flows, so `flows_completed` was structurally zero
/// and the figure could silently degenerate into measuring nothing (caught
/// by `require_completions` now).
figure_stats run_permutation_dcqcn_k8() {
  figure_stats st;
  st.name = "permutation_dcqcn_k8";
  const auto t0 = std::chrono::steady_clock::now();
  const double c0 = cpu_seconds_now();
  fabric_params fp;
  fp.proto = protocol::dcqcn;
  auto bed = make_fat_tree_testbed(7, 8, fp);
  const auto matrix = permutation_matrix(bed->env.rng, bed->topo->n_hosts());
  std::vector<flow*> flows;
  flow_options o;
  o.bytes = 900'000;
  for (std::uint32_t h = 0; h < bed->topo->n_hosts(); ++h) {
    flow_options fo = o;
    fo.start = static_cast<simtime_t>(bed->env.rand_below(1000)) * kNanosecond;
    flows.push_back(&bed->flows->create(protocol::dcqcn, h, matrix[h], fo));
  }
  run_until_complete(bed->env, flows, from_ms(200));
  finish_figure(st, bed->env.events.events_processed(), seconds_since(t0),
                cpu_seconds_now() - c0);
  st.completed = bed->flows->completed_count();
  return st;
}

/// Figure-level pHost at scale: a k=8 permutation of finite 900KB flows over
/// its shallow (8-packet) drop-tail fabric, run to completion.
figure_stats run_phost_k8() {
  figure_stats st;
  st.name = "permutation_phost_k8";
  const auto t0 = std::chrono::steady_clock::now();
  const double c0 = cpu_seconds_now();
  fabric_params fp;
  fp.proto = protocol::phost;
  auto bed = make_fat_tree_testbed(7, 8, fp);
  const auto matrix = permutation_matrix(bed->env.rng, bed->topo->n_hosts());
  std::vector<flow*> flows;
  flow_options o;
  o.bytes = 900'000;
  for (std::uint32_t h = 0; h < bed->topo->n_hosts(); ++h) {
    flow_options fo = o;
    fo.start = static_cast<simtime_t>(bed->env.rand_below(1000)) * kNanosecond;
    flows.push_back(&bed->flows->create(protocol::phost, h, matrix[h], fo));
  }
  run_until_complete(bed->env, flows, from_ms(200));
  finish_figure(st, bed->env.events.events_processed(), seconds_since(t0),
                cpu_seconds_now() - c0);
  st.completed = bed->flows->completed_count();
  return st;
}

// --------------------------------------------------------------------------
// Section 4b: flat-dispatch microbenchmark — the same seeded k=16 NDP
// permutation run twice, once with type-indexed flat dispatch disabled
// (every event goes through the per-candidate virtual path) and once with
// it enabled (pipe expiries and queue service completions batch through
// their registered flat handlers).  The ordering contract says the two
// modes must dispatch the exact same event sequence, so the event counts
// must match bitwise; the FCT-level identity is asserted by the
// flat_dispatch ctest — here the counts gate catches gross divergence and
// the timings quantify what devirtualization is worth on a real fabric.
// k=16 (1024 hosts), not k=8: flat dispatch pays off through run length
// (events per handler call), and runs only get long once thousands of
// pipes/queues share lanes — a k=8 fabric averages ~1.4 events/run, which
// measures the batching overhead rather than the batching.
// --------------------------------------------------------------------------

struct flat_dispatch_result {
  std::uint64_t events = 0;        ///< events per mode (identical by contract)
  double virtual_sec = 0;          ///< best-of cpu seconds, flat dispatch off
  double flat_sec = 0;             ///< best-of cpu seconds, flat dispatch on
  std::uint64_t flat_runs = 0;
  std::uint64_t flat_events = 0;
  std::uint64_t heap_events = 0;
  bool identical = false;
  [[nodiscard]] double speedup() const { return virtual_sec / flat_sec; }
  [[nodiscard]] double avg_run() const {
    return flat_runs > 0
               ? static_cast<double>(flat_events) / static_cast<double>(flat_runs)
               : 0;
  }
};

flat_dispatch_result run_flat_dispatch_bench(bool quick) {
  struct mode_out {
    std::uint64_t events = 0;
    double cpu_sec = 0;
    event_list::dispatch_counters stats;
  };
  auto run_mode = [](bool flat) {
    fabric_params fp;
    fp.proto = protocol::ndp;
    auto bed = make_fat_tree_testbed(7, 16, fp);
    bed->env.events.set_flat_dispatch(flat);
    flow_options o;
    const double c0 = cpu_seconds_now();
    const auto res = run_permutation(*bed, protocol::ndp, o, from_us(100),
                                     from_us(300));
    (void)res;
    mode_out out;
    out.cpu_sec = cpu_seconds_now() - c0;
    out.events = bed->env.events.events_processed();
    out.stats = bed->env.events.dispatch_stats();
    return out;
  };
  flat_dispatch_result r;
  mode_out v = run_mode(false);
  mode_out fl = run_mode(true);
  // Enough rounds that quick-mode candidates converge near the committed
  // full-run min: the CI regression gate divides this section's rate by the
  // committed one, and a best-of-2 quick reading sits 15-25% above the
  // best-of-5 floor often enough to flake a 20% tolerance.
  for (int round = 1; round < (quick ? 4 : 5); ++round) {
    const mode_out v2 = run_mode(false);
    const mode_out f2 = run_mode(true);
    if (v2.cpu_sec < v.cpu_sec) v.cpu_sec = v2.cpu_sec;
    if (f2.cpu_sec < fl.cpu_sec) fl.cpu_sec = f2.cpu_sec;
  }
  r.events = fl.events;
  r.virtual_sec = v.cpu_sec;
  r.flat_sec = fl.cpu_sec;
  r.flat_runs = fl.stats.flat_runs;
  r.flat_events = fl.stats.flat_events;
  r.heap_events = fl.stats.heap_events;
  r.identical = v.events == fl.events;
  return r;
}

// --------------------------------------------------------------------------
// Section 4d: telemetry overhead — section 4b's seeded k=16 NDP permutation
// (flat dispatch on, the production configuration) run twice: with no
// telemetry plane on the env (every component's `tele_` stays null — the
// "one never-taken branch per site" tier, which must be within noise of a
// build without the hooks) and with every slot armed plus the epoch
// collector sampling at 20us (the "one indexed increment per counted event"
// tier, gated at <=10% end-to-end).  Telemetry is observational-only, so
// the two modes must process the identical transport event sequence — the
// collector's own timer firings are the one legitimate count difference and
// are subtracted before the identity check; any other divergence is FATAL.
// Both modes build through the shared-blueprint testbed so the *only*
// difference between them is the plane.
// --------------------------------------------------------------------------

struct telemetry_bench_result {
  std::uint64_t events = 0;  ///< transport events per mode (identical)
  double off_sec = 0;        ///< best-of cpu seconds, no plane attached
  double on_sec = 0;         ///< best-of cpu seconds, armed + collector
  std::uint64_t armed_slots = 0;
  std::uint64_t collector_epochs = 0;  ///< snapshots taken in the on mode
  bool identical = false;
  [[nodiscard]] double overhead() const { return on_sec / off_sec; }
};

telemetry_bench_result run_telemetry_bench(bool quick) {
  struct mode_out {
    std::uint64_t events = 0;  ///< collector's own firings already excluded
    double cpu_sec = 0;
    std::uint64_t epochs = 0;
    std::uint64_t armed = 0;
  };
  auto run_mode = [](bool telemetry) {
    fabric_params fp;
    fp.proto = protocol::ndp;
    sim_env env(7);
    auto bp = make_fat_tree_blueprint(16, fp);
    if (telemetry) {
      env.telemetry =
          std::make_shared<telemetry_plane>(bp->n_slots(), bp.get());
    }
    testbed bed(env, bp, fp);
    bed.env.events.set_flat_dispatch(true);
    std::unique_ptr<telemetry_collector> col;
    if (telemetry) {
      // 20us epochs sample the ~400us run ~20 times — dense enough to be a
      // real collector workload without snapshot copies dominating the
      // measured overhead (each epoch copies the full counter plane).
      col = std::make_unique<telemetry_collector>(env.events, *env.telemetry,
                                                  from_us(20));
      col->start();
    }
    flow_options o;
    const double c0 = cpu_seconds_now();
    const auto res =
        run_permutation(bed, protocol::ndp, o, from_us(100), from_us(300));
    (void)res;
    mode_out out;
    out.cpu_sec = cpu_seconds_now() - c0;
    out.events = env.events.events_processed();
    if (col != nullptr) {
      out.epochs = col->recorded_epochs();
      // Every snapshot after the t=0 baseline was a timer event; subtracting
      // them makes the off-vs-on identity check exact.
      out.events -= col->recorded_epochs() - 1;
      for (std::uint32_t s = 0; s < env.telemetry->n_slots(); ++s) {
        if (env.telemetry->info(s).armed) ++out.armed;
      }
    }
    return out;
  };
  // More best-of rounds than the other sections: the overhead gate divides
  // two ~0.3s timings, so a single slow round on a shared machine shows up
  // as percentage points of fake overhead.  The min converges slowly — an
  // isolated best-of-8 measures ~5% where best-of-3 reads 11-14% on an idle
  // machine — so even the quick tier gets 5 interleaved rounds.
  mode_out off = run_mode(false);
  mode_out on = run_mode(true);
  for (int round = 1; round < (quick ? 5 : 8); ++round) {
    const mode_out o2 = run_mode(false);
    const mode_out n2 = run_mode(true);
    if (o2.cpu_sec < off.cpu_sec) off.cpu_sec = o2.cpu_sec;
    if (n2.cpu_sec < on.cpu_sec) on.cpu_sec = n2.cpu_sec;
  }
  telemetry_bench_result r;
  r.events = off.events;
  r.off_sec = off.cpu_sec;
  r.on_sec = on.cpu_sec;
  r.armed_slots = on.armed;
  r.collector_epochs = on.epochs;
  r.identical = off.events == on.events;
  return r;
}

// --------------------------------------------------------------------------
// Section 4c: packet-path microbenchmark (hot-header layout + pool order).
// --------------------------------------------------------------------------
//
// Replays the per-event packet path in isolation — alloc, enqueue at a WRR
// port, dequeue (the front packet's size read), a 4-hop forwarding chain
// (host -> ToR -> agg -> core, the per-hop touches a fat-tree path makes),
// sink receive, release — over a live set large enough to fall out of L2,
// against two packet memory models:
//   legacy: the seed's field order (the per-hop fields rt / next_hop /
//           enqueue_time sit past the first cache line, no alignment) and
//           its LIFO pointer free list, which after churn hands out
//           packets in near-random address order.
//   new:    the hot/cold split `packet` (per-hop fields in the first line,
//           64-byte aligned) and the address-ordered `packet_pool`.
// The driver is one template instantiated for both models, so the reported
// ratio isolates struct layout + allocation order from everything else.

namespace packet_path {

/// Field-for-field replica of the seed's packet layout (natural alignment,
/// per-hop fields on the second cache line).
struct legacy_packet {
  packet_type type = packet_type::ndp_data;
  std::uint16_t flags = 0;
  std::uint8_t priority = 0;
  std::uint32_t flow_id = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint32_t size_bytes = 0;
  std::uint32_t payload_bytes = 0;
  std::uint64_t seqno = 0;
  std::uint64_t ackno = 0;
  std::uint64_t pullno = 0;
  std::uint64_t data_seq = 0;
  std::uint16_t path_id = 0;
  const void* rt = nullptr;
  const void* reverse_rt = nullptr;
  std::uint32_t next_hop = 0;
  simtime_t first_sent = 0;
  simtime_t enqueue_time = 0;
  void* ingress = nullptr;
  bool in_pool = false;
};

/// The seed's pool policy: slab-backed storage, LIFO pointer free list.
class legacy_pool {
 public:
  [[nodiscard]] legacy_packet* alloc() {
    if (free_.empty()) grow();
    legacy_packet* p = free_.back();
    free_.pop_back();
    *p = legacy_packet{};
    return p;
  }
  void release(legacy_packet* p) { free_.push_back(p); }

 private:
  static constexpr std::size_t kBlock = 1024;
  void grow() {
    auto& block =
        blocks_.emplace_back(std::make_unique<legacy_packet[]>(kBlock));
    for (std::size_t i = 0; i < kBlock; ++i) free_.push_back(&block[i]);
  }
  std::vector<std::unique_ptr<legacy_packet[]>> blocks_;
  std::vector<legacy_packet*> free_;
};

/// Adapter giving the real pool the same 2-call surface.
class new_pool {
 public:
  [[nodiscard]] packet* alloc() { return pool_.alloc(); }
  void release(packet* p) { pool_.release(p); }

 private:
  packet_pool pool_;
};

struct packet_path_result {
  std::uint64_t ops = 0;
  std::size_t live_packets = 0;
  double legacy_sec = 0;
  double new_sec = 0;
  [[nodiscard]] double speedup() const { return legacy_sec / new_sec; }
};

/// One op = dequeue at a WRR port, advance one hop; a packet that has done
/// all `kForwardHops` hops is sunk (read the delivery fields, write an ack
/// field) and replaced by a freshly allocated one, keeping the live set
/// constant.  Four forwarding hops per delivery mirrors a fat-tree path
/// (host/ToR/agg/core queues) — the per-hop touch is where the hot/cold
/// layouts differ, the sink touch is where they do the same work.
/// Releases go through a deferred FIFO buffer, as in the simulator where a
/// packet dies at the receiver long after younger packets were allocated —
/// this is what ages the legacy LIFO free list into random address order.
template <typename P, typename Pool>
double drive(Pool& pool, std::uint64_t ops, std::size_t live,
             std::uint64_t* checksum) {
  constexpr std::size_t kPorts = 256;  // power of two
  constexpr std::size_t kDefer = 4096;
  constexpr std::uint32_t kForwardHops = 4;  // fat-tree path depth
  struct port {
    ring_fifo<P*> data;
    ring_fifo<P*> hdr;
    unsigned hdrs_since_data = 0;
  };
  std::vector<port> ports(kPorts);
  std::vector<P*> defer;
  defer.reserve(kDefer);
  std::uint64_t rng = 0x9E3779B97F4A7C15ull;
  auto next_rand = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  auto fill_and_enqueue = [&](std::uint64_t seq) {
    P* p = pool.alloc();
    const bool header = (seq % 10) == 0;
    p->type = header ? packet_type::ndp_ack : packet_type::ndp_data;
    p->seqno = seq;
    p->flow_id = static_cast<std::uint32_t>(seq);
    p->size_bytes = header ? 64 : 9000;
    p->payload_bytes = header ? 0 : 8936;
    p->next_hop = 0;
    port& pt = ports[next_rand() & (kPorts - 1)];
    (header ? pt.hdr : pt.data).push_back(p);
  };

  std::uint64_t seq = 0;
  for (std::size_t i = 0; i < live; ++i) fill_and_enqueue(++seq);

  std::uint64_t sum = 0;
  const double c0 = cpu_seconds_now();
  for (std::uint64_t op = 0; op < ops; ++op) {
    // WRR dequeue (10:1 headers over data, the ndp_queue discipline),
    // probing from a random port — the front packet read is the cache miss
    // the layouts differ on.
    std::size_t pi = next_rand() & (kPorts - 1);
    P* p = nullptr;
    for (std::size_t probe = 0; probe < kPorts; ++probe, pi = (pi + 1) & (kPorts - 1)) {
      port& pt = ports[pi];
      const bool have_data = !pt.data.empty();
      if (!pt.hdr.empty() &&
          (!have_data || pt.hdrs_since_data < 10)) {
        p = pt.hdr.front();
        pt.hdr.pop_front();
        if (have_data) ++pt.hdrs_since_data;
        break;
      }
      if (have_data) {
        p = pt.data.front();
        pt.data.pop_front();
        pt.hdrs_since_data = 0;
        break;
      }
    }
    if (p == nullptr) continue;  // cannot happen with live >> ports
    sum += p->size_bytes;        // serialization-time read
    if (p->next_hop + 1 < kForwardHops) {
      // Forwarding hop: per-hop header touch, then re-enqueue downstream.
      p->next_hop += 1;
      p->enqueue_time = static_cast<simtime_t>(op);
      port& pt = ports[next_rand() & (kPorts - 1)];
      (p->payload_bytes == 0 ? pt.hdr : pt.data).push_back(p);
      continue;
    }
    // Last hop: terminal receive (delivery fields), deferred release.
    sum += p->seqno + p->flow_id + p->payload_bytes;
    p->ackno = p->seqno;  // cold-line write, as the sink's ACK build does
    defer.push_back(p);
    if (defer.size() == kDefer) {
      for (P* d : defer) pool.release(d);
      defer.clear();
    }
    fill_and_enqueue(++seq);
  }
  const double dt = cpu_seconds_now() - c0;
  *checksum = sum;
  return dt;
}

packet_path_result run_packet_path(bool quick) {
  packet_path_result r;
  r.live_packets = 1 << 16;  // 64k live packets: ~8 MB, past L2
  r.ops = quick ? 4'000'000 : 20'000'000;
  // Warm pass, then measure against the SAME pool: the warm pass faults the
  // slab pages in and — the point of the comparison — ages the free list
  // into the state each policy sustains (shuffled for the legacy LIFO,
  // address-clustered for the ordered pool).  Interleaved best-of rounds:
  // each side is a single ~0.7s timing, so one external load blip lands on
  // one side only and fabricates a 20-30% "speedup" swing either way.
  r.legacy_sec = 1e9;
  r.new_sec = 1e9;
  for (int round = 0; round < (quick ? 2 : 3); ++round) {
    std::uint64_t sum_legacy = 0;
    std::uint64_t sum_new = 0;
    {
      legacy_pool pool;
      std::uint64_t warm_sum = 0;
      (void)drive<legacy_packet>(pool, r.ops / 8, r.live_packets, &warm_sum);
      r.legacy_sec = std::min(
          r.legacy_sec,
          drive<legacy_packet>(pool, r.ops, r.live_packets, &sum_legacy));
    }
    {
      new_pool pool;
      std::uint64_t warm_sum = 0;
      (void)drive<packet>(pool, r.ops / 8, r.live_packets, &warm_sum);
      r.new_sec =
          std::min(r.new_sec, drive<packet>(pool, r.ops, r.live_packets, &sum_new));
    }
    // Same rng stream, same sizes: both drivers must have done identical work.
    NDPSIM_ASSERT_MSG(sum_legacy == sum_new,
                      "packet_path drivers diverged — bench bug");
  }
  return r;
}

}  // namespace packet_path

/// Exact (bitwise) comparison of two sweeps' per-config FCT records.
bool outcomes_identical(const std::vector<experiment_outcome>& a,
                        const std::vector<experiment_outcome>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& ra = a[i].fcts.records();
    const auto& rb = b[i].fcts.records();
    if (ra.size() != rb.size()) return false;
    for (std::size_t j = 0; j < ra.size(); ++j) {
      if (ra[j].flow_id != rb[j].flow_id || ra[j].start != rb[j].start ||
          ra[j].end != rb[j].end || ra[j].bytes != rb[j].bytes) {
        return false;
      }
    }
    if (a[i].events_processed != b[i].events_processed ||
        a[i].sim_end != b[i].sim_end) {
      return false;
    }
  }
  return true;
}

}  // namespace
}  // namespace ndpsim

int main(int argc, char** argv) {
  using namespace ndpsim;
  const char* out_path = "BENCH_eventcore.json";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      out_path = argv[i];
    }
  }
  if (quick) std::printf("quick mode: reduced iteration counts\n");

  // ---- Section 1: scheduler microbenchmark.  Not scaled down in quick
  // mode: it is sub-second at full counts, and shorter runs under-amortize
  // heap/cache warmup, which would make the reported rates incomparable
  // with full runs (the property the CI smoke check relies on).
  churn_params cp;
  std::uint64_t new_fires = 0;
  std::uint64_t legacy_fires = 0;
  std::uint64_t legacy_spurious = 0;
  // Warm, then measure (one warm round is enough at these sizes).
  {
    churn_params warm = cp;
    warm.acks = 100'000;
    std::uint64_t tmp = 0;
    (void)churn_new(warm, &tmp);
    (void)churn_legacy(warm, &tmp, &legacy_spurious);
  }
  // Interleaved best-of-2 for the same reason as the tick section below:
  // single ~0.1s timings under a CI rate gate.
  double t_new = churn_new(cp, &new_fires);
  double t_legacy = churn_legacy(cp, &legacy_fires, &legacy_spurious);
  t_new = std::min(t_new, churn_new(cp, &new_fires));
  t_legacy = std::min(t_legacy, churn_legacy(cp, &legacy_fires, &legacy_spurious));
  const double churn_new_ops = static_cast<double>(cp.acks) / t_new;
  const double churn_legacy_ops = static_cast<double>(cp.acks) / t_legacy;
  std::printf("timer churn (%zu flows, %llu acks):\n", cp.flows,
              static_cast<unsigned long long>(cp.acks));
  std::printf("  new    : %.2fs  %.1fM timer-ops/s  (%llu genuine fires)\n",
              t_new, churn_new_ops / 1e6,
              static_cast<unsigned long long>(new_fires));
  std::printf(
      "  legacy : %.2fs  %.1fM timer-ops/s  (%llu genuine, %llu spurious)\n",
      t_legacy, churn_legacy_ops / 1e6,
      static_cast<unsigned long long>(legacy_fires),
      static_cast<unsigned long long>(legacy_spurious));
  std::printf("  speedup: %.2fx\n\n", t_legacy / t_new);

  // Interleaved best-of: each side is a single ~0.5s timing, and the CI
  // regression gate compares this rate against the committed baseline's, so
  // a one-off load blip on either side flakes the 20% tolerance.
  const std::uint64_t tick_events = 4'000'000;
  double tick_new_s = ticks_new(4096, tick_events);
  double tick_legacy_s = ticks_legacy(4096, tick_events);
  for (int round = 1; round < 2; ++round) {
    tick_new_s = std::min(tick_new_s, ticks_new(4096, tick_events));
    tick_legacy_s = std::min(tick_legacy_s, ticks_legacy(4096, tick_events));
  }
  const double tick_new_eps = static_cast<double>(tick_events) / tick_new_s;
  const double tick_legacy_eps =
      static_cast<double>(tick_events) / tick_legacy_s;
  std::printf("tick dispatch (4096 sources, %lluM events):\n",
              static_cast<unsigned long long>(tick_events / 1'000'000));
  std::printf("  new    : %.2fs  %.1fM events/s\n", tick_new_s,
              tick_new_eps / 1e6);
  std::printf("  legacy : %.2fs  %.1fM events/s\n", tick_legacy_s,
              tick_legacy_eps / 1e6);
  std::printf("  speedup: %.2fx\n\n", tick_legacy_s / tick_new_s);

  // ---- Section 3: flow-churn benchmark.  The recycling phase runs FIRST:
  // process RSS only ever grows, so the ordering makes "recycling's RSS
  // high-water < baseline's" a conservative comparison (the baseline starts
  // from the recycler's peak and still has to climb past it).  A discarded
  // warmup round first faults in the allocator pages both phases reuse, so
  // whichever phase runs first doesn't eat the warmup cost alone.
  // Quick mode keeps the gated workload identical (64 generations) and
  // saves time by running fewer best-of rounds — reduced repetitions keep
  // the reported rate comparable with full runs; a reduced workload would
  // not (under-amortized warmup systematically lowers it).
  churn_workload cw;
  {
    churn_workload warm = cw;
    warm.generations = 1;
    (void)churn_with_recycler(warm);
    (void)churn_baseline(warm);
  }
  // Interleaved best-of-3 pairs: at ~60ms per phase, scheduler jitter alone
  // swings a single run ~10%, so each side keeps its best timing.  The RSS
  // metrics come from the FIRST pair only — later rounds reuse pages the
  // first already faulted in, which would understate the baseline's growth.
  churn_phase_result cr = churn_with_recycler(cw);
  churn_phase_result cb = churn_baseline(cw);
  for (int round = 1; round < (quick ? 2 : 3); ++round) {
    const churn_phase_result r2 = churn_with_recycler(cw);
    const churn_phase_result b2 = churn_baseline(cw);
    if (r2.cpu_sec < cr.cpu_sec) cr.cpu_sec = r2.cpu_sec;
    if (b2.cpu_sec < cb.cpu_sec) cb.cpu_sec = b2.cpu_sec;
  }
  std::printf(
      "flow churn (k=%u, %zu-deep closed-loop incast, %llu generations):\n",
      cw.k, cw.senders, static_cast<unsigned long long>(cw.generations));
  std::printf(
      "  recycling : %.3f cpu-s  %6.0f flows/s  %5zu flow slots  %.2f MB "
      "table  rss +%.1f MB (%.1f MB total)\n",
      cr.cpu_sec, cr.flows_per_sec(), cr.flow_slots,
      static_cast<double>(cr.table_bytes) / 1e6,
      static_cast<double>(cr.rss_growth) / 1e6,
      static_cast<double>(cr.rss_after) / 1e6);
  std::printf(
      "  baseline  : %.3f cpu-s  %6.0f flows/s  %5zu flow slots  %.2f MB "
      "table  rss +%.1f MB (%.1f MB total)\n",
      cb.cpu_sec, cb.flows_per_sec(), cb.flow_slots,
      static_cast<double>(cb.table_bytes) / 1e6,
      static_cast<double>(cb.rss_growth) / 1e6,
      static_cast<double>(cb.rss_after) / 1e6);

  // ---- Section 5b: campaign engine (streaming vs keep-all RSS, resume
  // identity).  Runs AFTER the flow-churn section, whose recycling-vs-
  // baseline RSS comparison our keep-all phase would otherwise poison, and
  // BEFORE the figure runs: the campaign RSS gates compare live-heap
  // readings a few MB apart, and taking them after the k=32 figure's
  // ~300 MB excursion would bury the signal in allocator noise.
  const campaign_bench_result camp = run_campaign_bench(quick);
  std::printf(
      "\ncampaign engine (%zu-job incast sweep, shared blueprint, "
      "per-job telemetry plane):\n"
      "  streaming : %.2f cpu-s  %.0f jobs/s  %llu flows   live rss %.1f MB "
      "(half-length campaign %.1f MB — %s)\n"
      "  keep-all  : live rss %.1f MB with every outcome held (%s streaming "
      "high-water)\n"
      "  resume    : interrupted at %zu jobs, resumed from journal, merged "
      "results %s\n",
      camp.jobs, camp.stream_cpu_sec, camp.jobs_per_sec(),
      static_cast<unsigned long long>(camp.flows),
      static_cast<double>(camp.rss_stream) / 1e6,
      static_cast<double>(camp.rss_half) / 1e6,
      camp.rss_flat ? "flat" : "NOT FLAT",
      static_cast<double>(camp.rss_keepall) / 1e6,
      camp.rss_keepall > camp.rss_stream ? "above" : "NOT ABOVE",
      camp.jobs / 2,
      camp.resume_identical ? "BYTE-IDENTICAL" : "DIVERGED");
  if (!camp.resume_identical) {
    std::fprintf(stderr,
                 "FATAL: campaign resume produced a different merged result\n");
    return 1;
  }
  if (!camp.flows_match) {
    std::fprintf(stderr,
                 "FATAL: streaming campaign and keep-all sweep disagree on "
                 "completed flows\n");
    return 1;
  }

  // ---- Section 4: representative figure runs.  Not scaled down in quick
  // mode (each is seconds at worst): identical workloads are what keeps
  // quick-run events/sec comparable with the committed full-run values.
  // Runs BEFORE the route-setup and fabric-setup microbenches (emitted in
  // JSON order regardless): those sections allocate and free hundreds of
  // megabytes of short-lived fabric replicas, and the resulting heap
  // fragmentation costs the big figure runs ~10% events/sec — the k=32
  // figure is the gated headline number, so it gets the clean heap.  Still
  // AFTER the flow-churn section, whose recycling-vs-baseline RSS peak
  // comparison the k=32 figure's ~300 MB high-water would poison.
  std::vector<figure_stats> figures;
  figures.push_back(run_incast_figure());
  figures.push_back(run_permutation_figure());
  // The 8192-host run the blueprint split unlocks; full runs only (it is
  // the one figure whose wall-clock would defeat the point of --quick).
  // First of the large figures — cleanest heap for the gated number.
  if (!quick) figures.push_back(run_permutation_k32_figure());
  figures.push_back(run_permutation_k16_figure());
  figures.push_back(run_permutation_dcqcn_k8());
  figures.push_back(run_phost_k8());
  for (const auto& st : figures) {
    std::printf("%-24s %8.2fs  %9llu events  %.2fM events/s  (%zu flows)\n",
                st.name.c_str(), st.wall_seconds,
                static_cast<unsigned long long>(st.events),
                st.events_per_sec / 1e6, st.completed);
  }
  // A figure that completes zero flows measured nothing — its events/sec is
  // the rate of a degenerate workload and every downstream gate on it is
  // meaningless.  Fail the whole bench run loudly (no JSON is written, so
  // the CI smoke gate trips too) instead of recording a hollow number.
  for (const auto& st : figures) {
    if (st.completed == 0) {
      std::fprintf(stderr,
                   "FATAL: figure %s completed zero flows — refusing to "
                   "record a degenerate run\n",
                   st.name.c_str());
      return 1;
    }
  }

  // ---- Section 4b: virtual vs flat dispatch on the identical workload.
  const flat_dispatch_result fd = run_flat_dispatch_bench(quick);
  std::printf(
      "\nflat dispatch (k=16 NDP permutation, %llu events/mode):\n"
      "  virtual : %.3f cpu-s  %.2fM events/s\n"
      "  flat    : %.3f cpu-s  %.2fM events/s  (%llu runs, avg %.1f "
      "events/run, %llu heap events)\n"
      "  speedup: %.2fx, event counts %s\n",
      static_cast<unsigned long long>(fd.events), fd.virtual_sec,
      static_cast<double>(fd.events) / fd.virtual_sec / 1e6, fd.flat_sec,
      static_cast<double>(fd.events) / fd.flat_sec / 1e6,
      static_cast<unsigned long long>(fd.flat_runs), fd.avg_run(),
      static_cast<unsigned long long>(fd.heap_events), fd.speedup(),
      fd.identical ? "IDENTICAL" : "DIVERGED");
  if (!fd.identical) {
    std::fprintf(stderr,
                 "FATAL: flat dispatch diverged from virtual dispatch\n");
    return 1;
  }

  // ---- Section 4d: telemetry off vs on, on the same workload as 4b.
  const telemetry_bench_result tb = run_telemetry_bench(quick);
  std::printf(
      "\ntelemetry (k=16 NDP permutation, flat dispatch, %llu events/mode):\n"
      "  off : %.3f cpu-s  %.2fM events/s\n"
      "  on  : %.3f cpu-s  %.2fM events/s  (%llu slots armed, %llu epochs "
      "sampled)\n"
      "  overhead: %.1f%%, transport event counts %s\n",
      static_cast<unsigned long long>(tb.events), tb.off_sec,
      static_cast<double>(tb.events) / tb.off_sec / 1e6, tb.on_sec,
      static_cast<double>(tb.events) / tb.on_sec / 1e6,
      static_cast<unsigned long long>(tb.armed_slots),
      static_cast<unsigned long long>(tb.collector_epochs),
      (tb.overhead() - 1.0) * 100.0, tb.identical ? "IDENTICAL" : "DIVERGED");
  if (!tb.identical) {
    std::fprintf(stderr,
                 "FATAL: telemetry perturbed the transport event sequence\n");
    return 1;
  }

  // ---- Section 4c: packet-path microbenchmark (old vs new packet layout).
  // Runs after the figures: it allocates ~16 MB of packet slabs, and the
  // k=32 headline figure gets the clean heap.
  const packet_path::packet_path_result pp = packet_path::run_packet_path(quick);
  std::printf(
      "\npacket path (4-hop WRR chain, %lluM ops, %zu live packets):\n"
      "  legacy layout+pool : %.3f cpu-s  %.2fM ops/s\n"
      "  hot/cold + ordered : %.3f cpu-s  %.2fM ops/s\n"
      "  speedup: %.2fx\n",
      static_cast<unsigned long long>(pp.ops / 1'000'000), pp.live_packets,
      pp.legacy_sec, static_cast<double>(pp.ops) / pp.legacy_sec / 1e6,
      pp.new_sec, static_cast<double>(pp.ops) / pp.new_sec / 1e6,
      pp.speedup());

  // ---- Section 2: route-setup microbenchmark.  Best-of rounds: the
  // interned side finishes in ~1ms, where allocation jitter alone spans
  // >30% run to run; keeping each side's best timing is what makes the
  // routes/sec rate stable enough for the CI regression gate to watch it.
  // Runs AFTER the flow-churn section (emitted in JSON order regardless):
  // each legacy round transiently allocates a ~6 MB per-flow route arena,
  // and process RSS high-water from those rounds would poison the churn
  // recycling-vs-baseline peak comparison above.
  route_setup_result rs = run_route_setup();
  for (int round = 1; round < (quick ? 2 : 3); ++round) {
    const route_setup_result r2 = run_route_setup();
    if (r2.legacy_sec < rs.legacy_sec) rs.legacy_sec = r2.legacy_sec;
    if (r2.interned_sec < rs.interned_sec) rs.interned_sec = r2.interned_sec;
  }
  std::printf(
      "\nroute setup (k=8 permutation, 10 rounds of flow churn, %llu route "
      "pairs):\n",
      static_cast<unsigned long long>(rs.route_pairs));
  std::printf("  legacy   : %.3fs  %.2fM routes/s  %.1f MB resident\n",
              rs.legacy_sec,
              static_cast<double>(rs.route_pairs) / rs.legacy_sec / 1e6,
              static_cast<double>(rs.legacy_bytes) / 1e6);
  std::printf("  interned : %.3fs  %.2fM routes/s  %.1f MB resident\n",
              rs.interned_sec,
              static_cast<double>(rs.route_pairs) / rs.interned_sec / 1e6,
              static_cast<double>(rs.interned_bytes) / 1e6);
  std::printf("  speedup: %.2fx, memory: %.1fx smaller\n", rs.speedup(),
              static_cast<double>(rs.legacy_bytes) /
                  static_cast<double>(rs.interned_bytes));

  // ---- Section 3b: fabric-setup microbenchmark (structure/state split).
  // k=16 always (fast enough for the CI smoke run to gate); k=32 — the
  // 8192-host fabric the split exists for — only in full runs.  Runs after
  // the flow-churn section for the same RSS-poisoning reason: its k=32
  // phases allocate (and free) hundreds of megabytes.
  std::vector<fabric_setup_result> fabric_setups;
  fabric_setups.push_back(run_fabric_setup(16, quick ? 2 : 3));
  if (!quick) fabric_setups.push_back(run_fabric_setup(32, 2));
  std::printf("\n");
  for (const auto& f : fabric_setups) {
    std::printf(
        "fabric setup (k=%u, %zu hosts, %zu links, 16-path permutation "
        "route set):\n",
        f.k, f.hosts, f.links);
    std::printf(
        "  from-scratch (pre-split replica): %.3fs  %.1f MB per env\n",
        f.legacy_sec, static_cast<double>(f.legacy_bytes) / 1e6);
    std::printf(
        "  blueprint: %.3fs once (%.1f MB shared); instantiate %.3fs + warm "
        "routes %.3fs, %.1f MB per env\n",
        f.blueprint_sec, static_cast<double>(f.blueprint_bytes) / 1e6,
        f.instantiate_sec, f.route_warm_sec,
        static_cast<double>(f.instance_bytes + f.table_bytes) / 1e6);
    std::printf("  per-instance speedup: %.1fx (%.1fx charging route "
                "resolution to the instance)\n",
                f.speedup(), f.with_routes_speedup());
  }
  std::printf("\n");

  // ---- Section 5: serial vs parallel sweep, identical-results check.
  std::vector<experiment_config> sweep;
  for (int i = 0; i < 4; ++i) {
    sweep.push_back(experiment_config{
        .name = "incast_seed" + std::to_string(1000 + i),
        .seed = static_cast<std::uint64_t>(1000 + i),
        .param = i});
  }
  std::atomic<std::size_t> private_fabric_bytes{0};
  auto body = [&private_fabric_bytes](const experiment_config& cfg,
                                      sim_env& env, fct_recorder& fcts) {
    incast_body(cfg, env, fcts, nullptr, &private_fabric_bytes);
  };

  parallel_runner serial(1);
  const auto ts0 = std::chrono::steady_clock::now();
  const auto serial_out = serial.run(sweep, body);
  const double serial_wall = seconds_since(ts0);
  const std::size_t private_bytes = private_fabric_bytes.load();

  parallel_runner pool(0);
  const auto tp0 = std::chrono::steady_clock::now();
  const auto parallel_out = pool.run(sweep, body);
  const double parallel_wall = seconds_since(tp0);

  const bool identical = outcomes_identical(serial_out, parallel_out);
  const fct_recorder merged = merge_fcts(parallel_out);
  std::printf(
      "\nsweep of %zu configs: serial %.2fs, parallel %.2fs on %u threads "
      "(%.2fx), results %s, %zu flows merged\n",
      sweep.size(), serial_wall, parallel_wall, pool.threads(),
      serial_wall / parallel_wall, identical ? "IDENTICAL" : "DIVERGED",
      merged.completed());

  // The same sweep over ONE shared blueprint: every job stamps out a
  // per-env instance, the immutable structure (link records + structural
  // path table) is resident once instead of once per job.  Results must be
  // bitwise-identical to the private-fabric sweep — the split may not leak
  // any state between jobs.
  fabric_params sweep_fp;
  sweep_fp.proto = protocol::ndp;
  auto sweep_bp = make_fat_tree_blueprint(4, sweep_fp);
  std::atomic<std::size_t> shared_env_bytes{0};
  auto shared_body = [&sweep_bp, &shared_env_bytes](
                         const experiment_config& cfg, sim_env& env,
                         fct_recorder& fcts) {
    incast_body(cfg, env, fcts, &sweep_bp, &shared_env_bytes);
  };
  const auto tb0 = std::chrono::steady_clock::now();
  const auto shared_out = pool.run(sweep, shared_body);
  const double shared_wall = seconds_since(tb0);
  const bool shared_identical = outcomes_identical(serial_out, shared_out);
  const std::size_t shared_bytes =
      shared_env_bytes.load() + sweep_bp->resident_bytes();
  const std::size_t private_per_sweep = private_bytes;  // one serial sweep
  std::printf(
      "shared-blueprint sweep: parallel %.2fs, results %s, resident fabric "
      "%.2f MB shared vs %.2f MB private (%s)\n",
      shared_wall, shared_identical ? "IDENTICAL" : "DIVERGED",
      static_cast<double>(shared_bytes) / 1e6,
      static_cast<double>(private_per_sweep) / 1e6,
      shared_bytes < private_per_sweep ? "lower" : "NOT LOWER");

  // ---- Emit JSON.
  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"generated_by\": \"bench_eventcore\",\n");
  std::fprintf(f, "  \"host_threads\": %u,\n", pool.threads());
  std::fprintf(f, "  \"scheduler_microbench\": {\n");
  std::fprintf(f,
               "    \"timer_churn\": {\"ops\": %llu, \"legacy_ops_per_sec\": "
               "%.0f, \"new_ops_per_sec\": %.0f, \"legacy_spurious_wakeups\": "
               "%llu, \"speedup\": %.3f},\n",
               static_cast<unsigned long long>(cp.acks), churn_legacy_ops,
               churn_new_ops,
               static_cast<unsigned long long>(legacy_spurious),
               t_legacy / t_new);
  std::fprintf(f,
               "    \"tick_dispatch\": {\"events\": %llu, "
               "\"legacy_events_per_sec\": %.0f, \"new_events_per_sec\": "
               "%.0f, \"speedup\": %.3f}\n",
               static_cast<unsigned long long>(tick_events), tick_legacy_eps,
               tick_new_eps, tick_legacy_s / tick_new_s);
  std::fprintf(f, "  },\n");
  std::fprintf(
      f,
      "  \"route_setup\": {\"route_pairs\": %llu, \"legacy_routes_per_sec\": "
      "%.0f, \"interned_routes_per_sec\": %.0f, \"legacy_resident_bytes\": "
      "%zu, \"interned_resident_bytes\": %zu, \"speedup\": %.3f},\n",
      static_cast<unsigned long long>(rs.route_pairs),
      static_cast<double>(rs.route_pairs) / rs.legacy_sec,
      static_cast<double>(rs.route_pairs) / rs.interned_sec, rs.legacy_bytes,
      rs.interned_bytes, rs.speedup());
  std::fprintf(f, "  \"fabric_setup\": [\n");
  for (std::size_t i = 0; i < fabric_setups.size(); ++i) {
    const auto& fb = fabric_setups[i];
    std::fprintf(
        f,
        "    {\"k\": %u, \"hosts\": %zu, \"links\": %zu, "
        "\"blueprint_seconds\": %.6f, \"instantiate_seconds\": %.6f, "
        "\"route_warm_seconds\": %.6f, \"legacy_seconds\": %.6f, "
        "\"instantiates_per_sec\": %.2f, \"speedup\": %.3f, "
        "\"with_routes_speedup\": %.3f, "
        "\"blueprint_resident_bytes\": %zu, \"instance_resident_bytes\": %zu, "
        "\"table_resident_bytes\": %zu, \"legacy_resident_bytes\": %zu}%s\n",
        fb.k, fb.hosts, fb.links, fb.blueprint_sec, fb.instantiate_sec,
        fb.route_warm_sec, fb.legacy_sec, 1.0 / fb.instantiate_sec,
        fb.speedup(), fb.with_routes_speedup(), fb.blueprint_bytes,
        fb.instance_bytes, fb.table_bytes, fb.legacy_bytes,
        i + 1 < fabric_setups.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"flow_churn\": {\n");
  std::fprintf(f, "    \"k\": %u,\n", cw.k);
  std::fprintf(f, "    \"population\": %zu,\n", cw.senders);
  std::fprintf(f, "    \"generations\": %llu,\n",
               static_cast<unsigned long long>(cw.generations));
  std::fprintf(f,
               "    \"recycling\": {\"flows_completed\": %llu, "
               "\"flows_per_sec\": %.0f, \"flow_slots\": %zu, "
               "\"table_resident_bytes\": %zu, \"rss_growth_bytes\": %zu, "
               "\"peak_rss_bytes\": %zu},\n",
               static_cast<unsigned long long>(cr.completed),
               cr.flows_per_sec(), cr.flow_slots, cr.table_bytes,
               cr.rss_growth, cr.rss_after);
  std::fprintf(f,
               "    \"baseline\": {\"flows_completed\": %llu, "
               "\"flows_per_sec\": %.0f, \"flow_slots\": %zu, "
               "\"table_resident_bytes\": %zu, \"rss_growth_bytes\": %zu, "
               "\"peak_rss_bytes\": %zu},\n",
               static_cast<unsigned long long>(cb.completed),
               cb.flows_per_sec(), cb.flow_slots, cb.table_bytes,
               cb.rss_growth, cb.rss_after);
  std::fprintf(f, "    \"speedup\": %.3f,\n",
               cb.flows_per_sec() > 0
                   ? cr.flows_per_sec() / cb.flows_per_sec()
                   : 0.0);
  std::fprintf(f, "    \"peak_rss_lower\": %s\n",
               cr.rss_after < cb.rss_after ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"figures\": [\n");
  bool first = true;
  for (const auto& st : figures) {
    std::fprintf(f,
                 "%s    {\"name\": \"%s\", \"events\": %llu, "
                 "\"wall_seconds\": %.4f, \"cpu_seconds\": %.4f, "
                 "\"events_per_sec\": %.0f, "
                 "\"flows_completed\": %zu}",
                 first ? "" : ",\n", st.name.c_str(),
                 static_cast<unsigned long long>(st.events), st.wall_seconds,
                 st.cpu_seconds, st.events_per_sec, st.completed);
    first = false;
  }
  std::fprintf(f, "\n  ],\n");
  std::fprintf(
      f,
      "  \"flat_dispatch\": {\"events\": %llu, "
      "\"virtual_events_per_sec\": %.0f, \"flat_events_per_sec\": %.0f, "
      "\"speedup\": %.3f, \"flat_runs\": %llu, \"avg_run_length\": %.2f, "
      "\"heap_events\": %llu, \"identical_events\": %s},\n",
      static_cast<unsigned long long>(fd.events),
      static_cast<double>(fd.events) / fd.virtual_sec,
      static_cast<double>(fd.events) / fd.flat_sec, fd.speedup(),
      static_cast<unsigned long long>(fd.flat_runs), fd.avg_run(),
      static_cast<unsigned long long>(fd.heap_events),
      fd.identical ? "true" : "false");
  std::fprintf(
      f,
      "  \"telemetry\": {\"events\": %llu, \"off_events_per_sec\": %.0f, "
      "\"on_events_per_sec\": %.0f, \"overhead\": %.4f, \"armed_slots\": "
      "%llu, \"collector_epochs\": %llu, \"identical_events\": %s},\n",
      static_cast<unsigned long long>(tb.events),
      static_cast<double>(tb.events) / tb.off_sec,
      static_cast<double>(tb.events) / tb.on_sec, tb.overhead(),
      static_cast<unsigned long long>(tb.armed_slots),
      static_cast<unsigned long long>(tb.collector_epochs),
      tb.identical ? "true" : "false");
  std::fprintf(
      f,
      "  \"packet_path\": {\"ops\": %llu, \"live_packets\": %zu, "
      "\"legacy_ops_per_sec\": %.0f, \"new_ops_per_sec\": %.0f, "
      "\"speedup\": %.3f},\n",
      static_cast<unsigned long long>(pp.ops), pp.live_packets,
      static_cast<double>(pp.ops) / pp.legacy_sec,
      static_cast<double>(pp.ops) / pp.new_sec, pp.speedup());
  std::fprintf(f, "  \"campaign\": {\n");
  std::fprintf(f, "    \"jobs\": %zu,\n", camp.jobs);
  std::fprintf(f, "    \"jobs_per_sec\": %.2f,\n", camp.jobs_per_sec());
  std::fprintf(f, "    \"flows\": %llu,\n",
               static_cast<unsigned long long>(camp.flows));
  std::fprintf(f, "    \"rss_half_bytes\": %zu,\n", camp.rss_half);
  std::fprintf(f, "    \"rss_stream_bytes\": %zu,\n", camp.rss_stream);
  std::fprintf(f, "    \"rss_keepall_bytes\": %zu,\n", camp.rss_keepall);
  std::fprintf(f, "    \"rss_below_baseline\": %s,\n",
               camp.rss_stream < camp.rss_keepall ? "true" : "false");
  std::fprintf(f, "    \"rss_flat\": %s,\n", camp.rss_flat ? "true" : "false");
  std::fprintf(f, "    \"resume_identical\": %s\n",
               camp.resume_identical ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"parallel_sweep\": {\n");
  std::fprintf(f, "    \"configs\": %zu,\n", sweep.size());
  std::fprintf(f, "    \"threads\": %u,\n", pool.threads());
  std::fprintf(f, "    \"serial_wall_seconds\": %.4f,\n", serial_wall);
  std::fprintf(f, "    \"parallel_wall_seconds\": %.4f,\n", parallel_wall);
  std::fprintf(f, "    \"speedup\": %.3f,\n", serial_wall / parallel_wall);
  std::fprintf(f, "    \"identical_results\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(f, "    \"shared_blueprint\": {\n");
  std::fprintf(f, "      \"parallel_wall_seconds\": %.4f,\n", shared_wall);
  std::fprintf(f, "      \"identical_results\": %s,\n",
               shared_identical ? "true" : "false");
  std::fprintf(f, "      \"shared_resident_bytes\": %zu,\n", shared_bytes);
  std::fprintf(f, "      \"private_resident_bytes\": %zu,\n",
               private_per_sweep);
  std::fprintf(f, "      \"resident_lower\": %s\n",
               shared_bytes < private_per_sweep ? "true" : "false");
  std::fprintf(f, "    }\n");
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);

  // The microbench gates the acceptance criteria ride on.
  if (t_legacy / t_new < 2.0) {
    std::fprintf(stderr,
                 "WARNING: timer churn speedup %.2fx below the 2x target\n",
                 t_legacy / t_new);
  }
  if (rs.speedup() < 5.0) {
    std::fprintf(stderr,
                 "WARNING: route setup speedup %.2fx below the 5x target\n",
                 rs.speedup());
  }
  for (const auto& fb : fabric_setups) {
    // The acceptance gate rides on the k=32 fabric (the scale the split
    // exists for; smaller fabrics amortize less construction per route).
    if (fb.k >= 32 && fb.speedup() < 10.0) {
      std::fprintf(stderr,
                   "WARNING: k=%u per-instance setup %.1fx below the 10x "
                   "from-scratch target\n",
                   fb.k, fb.speedup());
    }
  }
  if (shared_bytes >= private_per_sweep) {
    std::fprintf(stderr,
                 "WARNING: shared-blueprint sweep not lighter than private "
                 "fabrics\n");
  }
  if (cr.flows_per_sec() < cb.flows_per_sec()) {
    std::fprintf(stderr,
                 "WARNING: recycling churn %.0f flows/s below the no-recycle "
                 "baseline's %.0f\n",
                 cr.flows_per_sec(), cb.flows_per_sec());
  }
  if (cr.rss_after >= cb.rss_after && cb.rss_after > 0) {
    std::fprintf(stderr,
                 "WARNING: recycling peak RSS not below the baseline's\n");
  }
  if (camp.rss_stream >= camp.rss_keepall) {
    std::fprintf(stderr,
                 "WARNING: streaming campaign RSS not below the keep-all "
                 "baseline's\n");
  }
  if (!camp.rss_flat) {
    std::fprintf(stderr,
                 "WARNING: campaign RSS grew with campaign length (not "
                 "bounded by active jobs)\n");
  }
  if (fd.speedup() < 1.2) {
    std::fprintf(stderr,
                 "WARNING: flat dispatch speedup %.2fx below the 1.2x "
                 "target\n",
                 fd.speedup());
  }
  if (tb.overhead() > 1.10) {
    std::fprintf(stderr,
                 "WARNING: telemetry-on overhead %.1f%% above the 10%% "
                 "budget\n",
                 (tb.overhead() - 1.0) * 100.0);
  }
  // Unarmed telemetry is one never-taken branch per site: its rate must sit
  // within noise of section 4b's flat run of the very same workload (same
  // binary, same process — a real regression here means the hooks cost
  // something even when off).  The bar is 10%, not tighter: the two
  // sections time the identical configuration minutes apart and
  // cross-section drift alone spans ~7% on a shared machine, while a hook
  // that acquires real unarmed cost lands far above 10%.
  const double fd_flat_eps = static_cast<double>(fd.events) / fd.flat_sec;
  const double tb_off_eps = static_cast<double>(tb.events) / tb.off_sec;
  if (tb_off_eps < 0.90 * fd_flat_eps) {
    std::fprintf(stderr,
                 "WARNING: telemetry-off rate %.2fM ev/s more than 10%% below "
                 "the flat-dispatch run's %.2fM ev/s\n",
                 tb_off_eps / 1e6, fd_flat_eps / 1e6);
  }
  return identical && shared_identical ? 0 : 2;
}
