// Fig 22: permutation throughput when one core<->aggregation link silently
// negotiates down to 1Gb/s.  NDP's path scoreboard (ACK/NACK ratios per
// path) must detect and avoid the degraded paths; without the penalty
// mechanism NDP sprays into the black hole; MPTCP's per-path congestion
// control also copes; single-path DCTCP flows unlucky enough to hash onto
// the degraded link suffer.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "harness/experiments.h"

namespace ndpsim {
namespace {

permutation_result run_degraded(protocol proto, bool ndp_penalty) {
  fabric_params fp;
  fp.proto = proto;
  // Degrade the first agg->core uplink and the matching core->agg downlink.
  auto override = [](link_level level, std::size_t index,
                     linkspeed_bps def) -> linkspeed_bps {
    if (level == link_level::agg_up && index == 0) return gbps(1);
    if (level == link_level::core_down && index == 0) return gbps(1);
    return def;
  };
  auto bed =
      make_fat_tree_testbed(22, bench::default_k(), fp, 1, override);
  flow_options o;
  o.handshake = false;
  o.subflows = 8;
  o.path_penalty = ndp_penalty;
  return run_permutation(*bed, proto, o, from_ms(4), from_ms(8));
}

void BM_degraded(benchmark::State& state) {
  const auto proto = static_cast<protocol>(state.range(0));
  const bool penalty = state.range(1) != 0;
  permutation_result res;
  for (auto _ : state) res = run_degraded(proto, penalty);
  state.counters["utilization_pct"] = res.utilization * 100;
  state.counters["min_gbps"] = res.flow_gbps.front();
  state.counters["p10_gbps"] = res.flow_gbps[res.flow_gbps.size() / 10];
  state.counters["median_gbps"] = res.flow_gbps[res.flow_gbps.size() / 2];
  std::string label = to_string(proto);
  if (proto == protocol::ndp && !penalty) label += " (no path penalty)";
  state.SetLabel(label);
  std::printf("%-24s per-flow Gb/s deciles:", label.c_str());
  for (int d = 0; d <= 10; ++d) {
    const std::size_t i =
        std::min(res.flow_gbps.size() - 1, d * res.flow_gbps.size() / 10);
    std::printf(" %.2f", res.flow_gbps[i]);
  }
  std::printf("\n");
}

BENCHMARK(BM_degraded)
    ->Args({static_cast<int>(protocol::ndp), 1})
    ->Args({static_cast<int>(protocol::ndp), 0})
    ->Args({static_cast<int>(protocol::mptcp), 1})
    ->Args({static_cast<int>(protocol::dctcp), 1})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ndpsim

int main(int argc, char** argv) {
  ndpsim::bench::print_banner(
      "Fig 22: permutation with one core link degraded to 1Gb/s",
      "NDP with the path penalty and MPTCP route around the failure (near "
      "Fig 14 throughput); NDP without the penalty leaves many flows at a "
      "few Gb/s; a few DCTCP flows collapse to <1Gb/s");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
