// Fig 16: incast completion time vs the number of backend servers, 450KB
// responses, for MPTCP, DCTCP, DCQCN and NDP. Reports both the last and the
// first flow's completion (the spread is the fairness of the scheme).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "harness/experiments.h"
#include "workload/traffic_matrix.h"

namespace ndpsim {
namespace {

void BM_incast(benchmark::State& state) {
  const auto proto = static_cast<protocol>(state.range(0));
  const auto n = static_cast<std::size_t>(state.range(1));
  fabric_params fp;
  fp.proto = proto;
  incast_result res;
  double optimal_ms = 0;
  for (auto _ : state) {
    auto bed = make_fat_tree_testbed(16, bench::default_k(), fp);
    if (n > bed->topo->n_hosts() - 1) {
      state.SkipWithError("incast larger than topology");
      return;
    }
    const auto senders =
        incast_senders(bed->env.rng, bed->topo->n_hosts(), 0, n);
    flow_options o;
    o.handshake = false;
    o.min_rto = from_us(200);  // Vasudevan-style aggressive timers for TCPs
    res = run_incast(*bed, proto, senders, 0, 450'000, o, from_sec(20));
    optimal_ms =
        incast_optimal_us(n, 450'000, 9000, gbps(10), from_us(40)) / 1000.0;
  }
  state.counters["last_fct_ms"] = res.last_fct_us / 1000.0;
  state.counters["first_fct_ms"] = res.first_fct_us / 1000.0;
  state.counters["optimal_ms"] = optimal_ms;
  state.counters["completed"] = static_cast<double>(res.completed);
  state.SetLabel(std::string(to_string(proto)) + " n=" + std::to_string(n));
}

const std::vector<std::int64_t> kSizes() {
  if (ndpsim::bench::paper_scale()) return {8, 16, 32, 64, 128, 256, 400};
  return {8, 16, 32, 64, 100};
}

void register_benches() {
  for (auto proto : {protocol::mptcp, protocol::dctcp, protocol::dcqcn,
                     protocol::ndp}) {
    for (auto n : kSizes()) {
      benchmark::RegisterBenchmark("BM_incast450KB", &BM_incast)
          ->Args({static_cast<int>(proto), n})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace ndpsim

int main(int argc, char** argv) {
  ndpsim::bench::print_banner(
      "Fig 16: incast completion time vs number of senders (450KB each)",
      "completion grows linearly with n for NDP/DCQCN (~1% over optimal) and "
      "DCTCP (~5% over); MPTCP far above with huge spread (synchronized "
      "losses); NDP's first/last spread within ~20%");
  ndpsim::register_benches();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
