// Fig 13: does imperfect pull pacing matter?  A large incast (200:1 at paper
// scale) with flow sizes 10..120KB, run once with perfect pacing and once
// with the measured pull-spacing distribution plugged into the pacer.  The
// completion times should be indistinguishable.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "harness/experiments.h"
#include "host/artifacts.h"
#include "workload/traffic_matrix.h"

namespace ndpsim {
namespace {

double run_incast_fct(std::uint64_t bytes, bool jittered) {
  fabric_params fp;
  fp.proto = protocol::ndp;
  fp.mtu_bytes = 1500;  // paper uses 1500B packets here
  auto bed = make_fat_tree_testbed(23, bench::default_k(), fp);
  const std::size_t n =
      std::min<std::size_t>(bench::paper_scale() ? 200 : 100,
                            bed->topo->n_hosts() - 1);
  if (jittered) {
    bed->flows->ndp_pacer(0).set_interval_jitter(
        make_pull_jitter(bed->env, 1500));
  }
  const auto senders = incast_senders(bed->env.rng, bed->topo->n_hosts(), 0, n);
  flow_options o;
  o.mss_bytes = 1500;
  o.iw_packets = 30;
  const auto res =
      run_incast(*bed, protocol::ndp, senders, 0, bytes, o, from_sec(5));
  return res.last_fct_us;
}

void BM_jitter(benchmark::State& state) {
  const std::uint64_t kb = static_cast<std::uint64_t>(state.range(0));
  const bool jittered = state.range(1) != 0;
  double fct = 0;
  for (auto _ : state) fct = run_incast_fct(kb * 1000, jittered);
  state.counters["last_fct_us"] = fct;
  state.SetLabel(jittered ? "experimental pulls" : "perfect pulls");
}

BENCHMARK(BM_jitter)
    ->ArgsProduct({{10, 20, 40, 60, 80, 120}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ndpsim

int main(int argc, char** argv) {
  ndpsim::bench::print_banner(
      "Fig 13: incast completion, perfect vs measured pull spacing",
      "the two curves overlap: real-world pull jitter has no discernible "
      "effect on incast FCTs");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
