// Fig 19: collateral damage of a 64:1 incast on a long flow to a *different*
// host on the same ToR, for DCTCP, DCQCN and NDP.  Prints the goodput
// time-series of the long flow and the incast aggregate.
//
// DCTCP: the incast overflows shared buffers; the long flow dips and
// recovers slowly.  DCQCN: no loss, but PFC pause frames cascade up and
// repeatedly stall the long flow (the paper's key indictment of lossless
// Ethernet).  NDP: a sub-millisecond dip during the incast's first RTT, then
// full throughput.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "harness/experiments.h"
#include "stats/rate_sampler.h"
#include "workload/traffic_matrix.h"

namespace ndpsim {
namespace {

void BM_collateral(benchmark::State& state) {
  const auto proto = static_cast<protocol>(state.range(0));
  double long_flow_min_gbps = 99;
  double long_flow_mean_after_gbps = 0;
  std::vector<rate_sampler::sample> series;
  for (auto _ : state) {
    fabric_params fp;
    fp.proto = proto;
    auto bed = make_fat_tree_testbed(19, bench::default_k(), fp);
    const std::size_t n_hosts = bed->topo->n_hosts();
    // Hosts 0 and 1 share a ToR; the long flow's source is in another pod.
    flow_options lo;
    lo.handshake = false;
    flow& long_flow =
        bed->flows->create(proto, static_cast<std::uint32_t>(n_hosts - 1), 0, lo);

    rate_sampler sampler(
        bed->env, [&long_flow] { return long_flow.payload_received(); },
        from_ms(1));
    sampler.start(0);

    bed->env.events.run_until(from_ms(20));  // long flow at steady state
    // 64:1 incast to host 1 (same ToR as the long flow's destination).
    std::vector<std::uint32_t> senders;
    for (std::uint32_t h = 2; h < n_hosts && senders.size() < 64; ++h) {
      if (h != n_hosts - 1) senders.push_back(h);
    }
    std::vector<flow*> incast;
    for (auto s : senders) {
      flow_options o;
      o.bytes = 900'000;
      o.handshake = false;
      o.min_rto = from_us(500);
      o.start = bed->env.now();
      incast.push_back(&bed->flows->create(proto, s, 1, o));
    }
    bed->env.events.run_until(from_ms(60));

    series = sampler.samples();
    // Long-flow dip during/after the incast window.
    int count_after = 0;
    for (const auto& smp : series) {
      if (smp.at > from_ms(20)) {
        long_flow_min_gbps = std::min(long_flow_min_gbps, smp.rate_bps / 1e9);
        long_flow_mean_after_gbps += smp.rate_bps / 1e9;
        ++count_after;
      }
    }
    if (count_after > 0) long_flow_mean_after_gbps /= count_after;
  }
  state.counters["longflow_min_gbps"] = long_flow_min_gbps;
  state.counters["longflow_mean_gbps_after_incast"] = long_flow_mean_after_gbps;
  state.SetLabel(to_string(proto));
  std::printf("%s long-flow goodput (Gb/s) per ms from t=18ms:\n  ",
              to_string(proto));
  for (const auto& smp : series) {
    if (smp.at >= from_ms(18) && smp.at <= from_ms(40)) {
      std::printf("%.1f ", smp.rate_bps / 1e9);
    }
  }
  std::printf("\n");
}

BENCHMARK(BM_collateral)
    ->Arg(static_cast<int>(protocol::dctcp))
    ->Arg(static_cast<int>(protocol::dcqcn))
    ->Arg(static_cast<int>(protocol::ndp))
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace ndpsim

int main(int argc, char** argv) {
  ndpsim::bench::print_banner(
      "Fig 19: collateral damage of a 64:1 incast on a same-ToR long flow",
      "DCTCP: dip and slow recovery (losses at ToR and agg); DCQCN: repeated "
      "stalls from cascading PFC pauses; NDP: <1ms dip then full rate");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
