// §6.2 "Larger topologies" (in-text): permutation utilization with 8-packet
// buffers, IW 30 and 9K MTU, as the FatTree grows.  The paper reports a
// gentle decrease from 98% at 128 hosts to 90% at 8192 hosts.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "harness/experiments.h"

namespace ndpsim {
namespace {

void BM_scaling(benchmark::State& state) {
  const auto k = static_cast<unsigned>(state.range(0));
  fabric_params fp;
  fp.proto = protocol::ndp;
  permutation_result res;
  for (auto _ : state) {
    auto bed = make_fat_tree_testbed(61, k, fp);
    flow_options o;
    o.iw_packets = 30;
    res = run_permutation(*bed, protocol::ndp, o, from_ms(3), from_ms(6));
  }
  state.counters["hosts"] = static_cast<double>(k) * k * k / 4;
  state.counters["utilization_pct"] = res.utilization * 100;
  state.counters["min_gbps"] = res.flow_gbps.front();
  state.SetLabel("k=" + std::to_string(k));
}

void register_benches() {
  std::vector<std::int64_t> ks = {4, 6, 8};
  if (ndpsim::bench::paper_scale()) ks = {4, 8, 12, 16};
  for (auto k : ks) {
    benchmark::RegisterBenchmark("BM_scaling", &BM_scaling)
        ->Arg(k)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace ndpsim

int main(int argc, char** argv) {
  ndpsim::bench::print_banner(
      "Text §6.2: permutation utilization vs topology size",
      "utilization decreases gently with size (98% at 128 hosts -> 90% at "
      "8192 in the paper) while buffers stay at 8 packets");
  ndpsim::register_benches();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
