// Fig 12: distribution of the spacing between PULL packets for 1500B and
// 9000B data packets, replaying the measured imperfect pacing of the Linux
// prototype (host-artifact model, see src/host/artifacts.h).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "host/artifacts.h"
#include "stats/cdf.h"

namespace ndpsim {
namespace {

void BM_spacing(benchmark::State& state) {
  const std::uint32_t pkt = static_cast<std::uint32_t>(state.range(0));
  const simtime_t nominal = serialization_time(pkt, gbps(10));
  sim_env env(8);
  auto jitter = make_pull_jitter(env, pkt);
  sample_set s;
  for (auto _ : state) {
    for (int i = 0; i < 100000; ++i) s.add(to_us(jitter(nominal)));
  }
  state.counters["target_us"] = to_us(nominal);
  state.counters["p05_us"] = s.quantile(0.05);
  state.counters["median_us"] = s.median();
  state.counters["p90_us"] = s.quantile(0.90);
  state.counters["p99_us"] = s.quantile(0.99);
  state.SetLabel(std::to_string(pkt) + "B packets");
  if (state.range(1) != 0) {
    std::printf("CDF (%uB):\n%s\n", pkt, s.cdf_rows(20).c_str());
  }
}

BENCHMARK(BM_spacing)->Args({1500, 0})->Args({9000, 0})->Iterations(1);

}  // namespace
}  // namespace ndpsim

int main(int argc, char** argv) {
  ndpsim::bench::print_banner(
      "Fig 12: PULL spacing at the sender for 1500B and 9000B packets",
      "medians match the 1.2us / 7.2us targets; the 1500B curve has early "
      "back-to-back pulls and a multi-x tail, the 9000B curve is tight");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
