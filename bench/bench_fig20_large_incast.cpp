// Fig 20: very large incasts (up to 8000 flows at paper scale), 270KB per
// flow: (a) completion-time overhead over the theoretical optimum and
// (b) retransmissions per packet, split by trigger (NACK vs return-to-sender
// bounce), for IW in {1, 10, 23}.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "harness/experiments.h"
#include "workload/traffic_matrix.h"

namespace ndpsim {
namespace {

unsigned big_k() { return bench::paper_scale() ? 16 : 8; }

void BM_large_incast(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto iw = static_cast<std::uint32_t>(state.range(1));
  fabric_params fp;
  fp.proto = protocol::ndp;
  incast_result res;
  double overhead_pct = 0;
  for (auto _ : state) {
    auto bed = make_fat_tree_testbed(20, big_k(), fp);
    if (n > bed->topo->n_hosts() - 1) {
      state.SkipWithError("incast larger than topology");
      return;
    }
    const auto senders =
        incast_senders(bed->env.rng, bed->topo->n_hosts(), 0, n);
    flow_options o;
    o.iw_packets = iw;
    res = run_incast(*bed, protocol::ndp, senders, 0, 270'000, o,
                     from_sec(60));
    const double opt =
        incast_optimal_us(n, 270'000, 9000, gbps(10), from_us(45));
    overhead_pct = 100.0 * (res.last_fct_us - opt) / opt;
  }
  const double total_pkts = static_cast<double>(res.packets_sent);
  state.counters["overhead_pct"] = overhead_pct;
  state.counters["rtx_per_pkt_nack"] =
      static_cast<double>(res.rtx_after_nack) / total_pkts;
  state.counters["rtx_per_pkt_bounce"] =
      static_cast<double>(res.rtx_after_bounce) / total_pkts;
  state.counters["rtx_per_pkt_timeout"] =
      static_cast<double>(res.rtx_after_timeout) / total_pkts;
  state.counters["completed"] = static_cast<double>(res.completed);
  state.SetLabel("IW=" + std::to_string(iw) + " n=" + std::to_string(n));
}

void register_benches() {
  std::vector<std::int64_t> sizes = {1, 4, 16, 64, 120};
  if (ndpsim::bench::paper_scale()) sizes = {1, 4, 16, 64, 256, 1000};
  for (std::int64_t iw : {23, 10, 1}) {
    for (auto n : sizes) {
      benchmark::RegisterBenchmark("BM_large_incast", &BM_large_incast)
          ->Args({n, iw})
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }
}

}  // namespace
}  // namespace ndpsim

int main(int argc, char** argv) {
  ndpsim::bench::print_banner(
      "Fig 20: large-incast overhead and retransmission mechanisms",
      "(a) IW=23: worst overhead on *small* incasts yet within ~2% of "
      "optimal, negligible for large n; IW=1 bad below ~8 flows (cannot fill "
      "the receiver link); (b) NACKs dominate small incasts, return-to-sender "
      "takes over above ~100 flows; mean rtx/packet stays around or below 1");
  ndpsim::register_benches();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
