// The flow lifecycle engine: create/destroy symmetry, flow-id recycling,
// pooled path subsets, demux shrink + stale-packet handling, and the
// closed-loop flow_recycler.
#include <gtest/gtest.h>

#include <set>

#include "harness/experiments.h"
#include "harness/flow_recycler.h"
#include "net/fifo_queues.h"
#include "sim/assert.h"
#include "topo/fat_tree.h"
#include "topo/path_table.h"
#include "test_util.h"

namespace ndpsim {
namespace {

queue_factory droptail_factory(sim_env& env) {
  return [&env](link_level, std::size_t, linkspeed_bps rate,
                const std::string& name) -> std::unique_ptr<queue_base> {
    return std::make_unique<drop_tail_queue>(env, rate, 100 * 9000, name);
  };
}

fat_tree_config ft_cfg(unsigned k) {
  fat_tree_config c;
  c.k = k;
  return c;
}

// ---------------------------------------------------------------------------
// flow_factory create/destroy symmetry and flow-id recycling.
// ---------------------------------------------------------------------------

TEST(flow_lifecycle, destroy_frees_slot_and_recycles_id) {
  fabric_params fp;
  fp.proto = protocol::ndp;
  auto bed = make_fat_tree_testbed(3, 4, fp);
  flow_options o;
  o.bytes = 5 * 8936;

  flow& a = bed->flows->create(protocol::ndp, 0, 15, o);
  const std::uint32_t id_a = a.id;
  run_until_complete(bed->env, {&a}, from_ms(50));
  ASSERT_TRUE(a.complete());
  EXPECT_EQ(bed->flows->live_count(), 1u);

  bed->flows->destroy(a);
  EXPECT_EQ(bed->flows->live_count(), 0u);
  EXPECT_EQ(bed->flows->destroyed_count(), 1u);

  // The replacement reuses both the table slot and the flow id.
  o.start = bed->env.now();
  flow& b = bed->flows->create(protocol::ndp, 0, 15, o);
  EXPECT_EQ(b.id, id_a);
  EXPECT_EQ(bed->flows->flows().size(), 1u);

  // ...and the recycled id rebinds to the new endpoints: the flow runs to
  // completion with payload delivered to the *new* sink.
  run_until_complete(bed->env, {&b}, bed->env.now() + from_ms(50));
  EXPECT_TRUE(b.complete());
  EXPECT_EQ(b.payload_received(), o.bytes);
}

TEST(flow_lifecycle, mptcp_id_blocks_recycle_by_exact_span) {
  fabric_params fp;
  fp.proto = protocol::mptcp;
  auto bed = make_fat_tree_testbed(4, 4, fp);
  flow_options o;
  o.bytes = 200'000;
  o.subflows = 4;

  flow& m = bed->flows->create(protocol::mptcp, 0, 15, o);
  const std::uint32_t block = m.id;  // spans [block, block + 4]
  run_until_complete(bed->env, {&m}, from_ms(200));
  ASSERT_TRUE(m.complete());
  bed->flows->destroy(m);

  // A single-id flow must NOT carve ids out of the recycled 5-wide block...
  o.start = bed->env.now();
  flow& s = bed->flows->create(protocol::ndp, 1, 14, o);
  EXPECT_NE(s.id, block);
  // ...but the next same-span MPTCP connection takes the whole block back.
  flow& m2 = bed->flows->create(protocol::mptcp, 2, 13, o);
  EXPECT_EQ(m2.id, block);
}

TEST(flow_lifecycle, destroy_unbinds_demux_entries) {
  fabric_params fp;
  fp.proto = protocol::ndp;
  auto bed = make_fat_tree_testbed(5, 4, fp);
  flow_options o;
  o.bytes = 3 * 8936;
  flow& f = bed->flows->create(protocol::ndp, 0, 15, o);
  path_table& pt = bed->topo->paths();
  EXPECT_EQ(pt.demux(0).bound_count(), 1u);
  EXPECT_EQ(pt.demux(15).bound_count(), 1u);
  run_until_complete(bed->env, {&f}, from_ms(50));
  ASSERT_TRUE(f.complete());
  bed->flows->destroy(f);
  EXPECT_EQ(pt.demux(0).bound_count(), 0u);
  EXPECT_EQ(pt.demux(15).bound_count(), 0u);
}

// ---------------------------------------------------------------------------
// Stale packets for a dead flow: dropped, not misdelivered.
// ---------------------------------------------------------------------------

TEST(flow_lifecycle, stale_packet_for_dead_flow_is_dropped_when_enabled) {
  sim_env env;
  fat_tree ft(env, ft_cfg(4), droptail_factory(env));
  ft.paths().enable_stale_drop(env.pool);
  flow_demux& d = ft.paths().demux(15);

  testing::recording_sink live_ep(env);
  d.bind(7, &live_ep);

  // A packet for an unbound (torn down) flow id dies at the demux...
  packet* stale = env.pool.alloc();
  stale->type = packet_type::ndp_ack;
  stale->flow_id = 99;
  d.receive(*stale);
  EXPECT_EQ(d.stale_drops(), 1u);
  EXPECT_EQ(ft.paths().stale_drops(), 1u);
  EXPECT_EQ(live_ep.count(), 0u);  // ...and is NOT handed to another flow

  // ...while a packet for the live flow still reaches its endpoint.
  packet* good = env.pool.alloc();
  good->type = packet_type::ndp_ack;
  good->flow_id = 7;
  d.receive(*good);
  EXPECT_EQ(live_ep.count(), 1u);
  EXPECT_EQ(d.stale_drops(), 1u);
  EXPECT_EQ(env.pool.outstanding(), 0u);  // both packets returned to the pool
}

TEST(flow_lifecycle, unbound_delivery_still_asserts_without_stale_policy) {
  sim_env env;
  fat_tree ft(env, ft_cfg(4), droptail_factory(env));
  flow_demux& d = ft.paths().demux(15);
  packet* p = env.pool.alloc();
  p->flow_id = 42;
  EXPECT_THROW(d.receive(*p), simulation_error);
  env.pool.release(p);
}

// ---------------------------------------------------------------------------
// Pooled subset arrays in path_table::sample.
// ---------------------------------------------------------------------------

TEST(flow_lifecycle, released_subset_array_is_reused_bitwise) {
  sim_env env;
  fat_tree ft(env, ft_cfg(4), droptail_factory(env));
  path_table& pt = ft.paths();

  path_set a = pt.sample(env, 0, 15, 2);
  ASSERT_EQ(a.size(), 2u);
  ASSERT_NE(a.pool_token, 0u);
  const route* const* storage = a.fwd;

  // A second sample while `a` is live must NOT alias its arrays.
  path_set b = pt.sample(env, 0, 15, 2);
  ASSERT_NE(b.pool_token, 0u);
  EXPECT_NE(b.fwd, a.fwd);
  EXPECT_EQ(pt.subset_arrays(), 2u);

  // Releasing `a` and sampling the same size reuses `a`'s storage bitwise
  // (same pointer array, refilled) instead of growing the pool...
  const route* b0 = b.forward(0);
  const route* b1 = b.forward(1);
  pt.release(a);
  EXPECT_EQ(pt.free_subset_arrays(), 1u);
  path_set c = pt.sample(env, 0, 15, 2);
  EXPECT_EQ(c.fwd, storage);
  EXPECT_EQ(pt.subset_arrays(), 2u);
  EXPECT_EQ(pt.free_subset_arrays(), 0u);

  // ...and the live set `b` is untouched by the recycling.
  EXPECT_EQ(b.forward(0), b0);
  EXPECT_EQ(b.forward(1), b1);
}

TEST(flow_lifecycle, subset_double_release_asserts) {
  sim_env env;
  fat_tree ft(env, ft_cfg(4), droptail_factory(env));
  path_set a = ft.paths().sample(env, 0, 15, 2);
  ft.paths().release(a);
  EXPECT_THROW(ft.paths().release(a), simulation_error);
}

TEST(flow_lifecycle, uncapped_and_single_views_are_not_pooled) {
  sim_env env;
  fat_tree ft(env, ft_cfg(4), droptail_factory(env));
  path_set all = ft.paths().all(0, 15);
  path_set one = ft.paths().single(0, 15, 0);
  EXPECT_EQ(all.pool_token, 0u);
  EXPECT_EQ(one.pool_token, 0u);
  ft.paths().release(all);  // no-ops
  ft.paths().release(one);
  EXPECT_EQ(ft.paths().subset_arrays(), 0u);
}

// ---------------------------------------------------------------------------
// flow_demux shrink under churn.
// ---------------------------------------------------------------------------

TEST(flow_lifecycle, demux_table_shrinks_after_mass_unbind) {
  flow_demux d;
  struct null_sink final : packet_sink {
    void receive(packet&) override {}
  } ep;
  for (std::uint32_t i = 1; i <= 1024; ++i) d.bind(i, &ep);
  const std::size_t peak = d.table_size();
  EXPECT_GE(peak, 2048u);  // load kept <= 1/2 on the way up

  for (std::uint32_t i = 1; i <= 1019; ++i) d.unbind(i);
  EXPECT_EQ(d.bound_count(), 5u);
  // Churn must not pin the probe table at its high-water size.
  EXPECT_LE(d.table_size(), 64u);
  // The survivors are still found after the rehashes.
  for (std::uint32_t i = 1020; i <= 1024; ++i) {
    EXPECT_EQ(d.endpoint_for(i), &ep);
  }
  EXPECT_EQ(d.endpoint_for(5), nullptr);
}

// ---------------------------------------------------------------------------
// The flow_recycler: closed-loop churn end to end.
// ---------------------------------------------------------------------------

TEST(flow_lifecycle, recycler_closed_loop_holds_memory_flat) {
  fabric_params fp;
  fp.proto = protocol::ndp;
  auto bed = make_fat_tree_testbed(9, 4, fp);
  const std::size_t pop = 8;

  // Fixed pairs 0->8, 1->9, ... cycled across generations.
  std::uint64_t cursor = 0;
  auto pick = [&cursor, pop](sim_env&) {
    const std::uint32_t src = static_cast<std::uint32_t>(cursor++ % pop);
    return std::make_pair(src, static_cast<std::uint32_t>(src + pop));
  };
  // Pre-intern so the flatness check measures churn, not lazy interning.
  for (std::uint32_t s = 0; s < pop; ++s) {
    (void)bed->topo->paths().all(s, s + pop);
  }

  recycler_config rc;
  rc.proto = protocol::ndp;
  rc.opts.bytes = 5 * 8936;
  rc.opts.max_paths = 2;
  rc.linger = from_us(100);
  flow_recycler rec(bed->env, *bed->topo, *bed->flows, rc, pick);
  rec.start(pop);

  while (rec.generations() < 1 && bed->env.events.run_next_event()) {
  }
  const std::size_t warm_slots = bed->flows->flows().size();
  const std::size_t warm_subsets = bed->topo->paths().subset_arrays();
  const std::size_t warm_bytes = bed->topo->paths().resident_bytes();

  while (rec.generations() < 5 && bed->env.events.run_next_event()) {
  }
  rec.stop();

  EXPECT_GE(rec.flows_recycled(), 4 * pop);
  EXPECT_EQ(bed->flows->flows().size(), warm_slots);
  EXPECT_EQ(bed->topo->paths().subset_arrays(), warm_subsets);
  EXPECT_EQ(bed->topo->paths().resident_bytes(), warm_bytes);
  EXPECT_LE(bed->flows->live_count(), pop + rec.lingering());

  // Per-generation FCT epochs: every completed generation recorded `pop`
  // flows, and later epochs exist (the recorder tags by generation).
  const fct_recorder& fcts = rec.fcts();
  EXPECT_GE(fcts.max_epoch(), 4u);
  EXPECT_EQ(fcts.completed_in_epoch(1), pop);
  EXPECT_EQ(fcts.completed_in_epoch(2), pop);
  EXPECT_GT(fcts.fct_us_epoch(1).size(), 0u);
}

TEST(flow_lifecycle, recycler_open_loop_poisson_arrivals_recycle_ids) {
  fabric_params fp;
  fp.proto = protocol::tcp;
  auto bed = make_fat_tree_testbed(10, 4, fp);

  auto pick = [](sim_env& env) {
    const auto src = static_cast<std::uint32_t>(env.rand_below(8));
    return std::make_pair(src, static_cast<std::uint32_t>(src + 8));
  };
  recycler_config rc;
  rc.proto = protocol::tcp;
  rc.opts.bytes = 2 * 8936;
  rc.opts.handshake = false;
  rc.linger = from_us(100);
  rc.open_rate_per_sec = 200'000;  // ~one arrival per 5us
  rc.max_starts = 60;
  flow_recycler rec(bed->env, *bed->topo, *bed->flows, rc, pick);
  rec.start(4);

  bed->env.events.run_until(from_ms(20));
  rec.stop();
  bed->env.events.run_until(from_ms(40));

  EXPECT_EQ(rec.flows_started(), 60u);
  EXPECT_GE(rec.fcts().completed(), 55u);  // nearly all arrivals finished
  EXPECT_GE(rec.flows_recycled(), 50u);
  // Id recycling kept the id space far below one-id-per-arrival.
  std::uint32_t max_id = 0;
  for (const auto& f : bed->flows->flows()) {
    if (f != nullptr) max_id = std::max(max_id, f->id);
  }
  EXPECT_LT(max_id, 30u);
}

TEST(flow_lifecycle, recycler_works_for_every_transport) {
  for (protocol proto : {protocol::ndp, protocol::tcp, protocol::dctcp,
                         protocol::mptcp, protocol::dcqcn, protocol::phost}) {
    fabric_params fp;
    fp.proto = proto;
    auto bed = make_fat_tree_testbed(11, 4, fp);
    std::uint64_t cursor = 0;
    auto pick = [&cursor](sim_env&) {
      const std::uint32_t src = static_cast<std::uint32_t>(cursor++ % 4);
      return std::make_pair(src, static_cast<std::uint32_t>(src + 8));
    };
    recycler_config rc;
    rc.proto = proto;
    rc.opts.bytes = 3 * 8936;
    rc.opts.subflows = 2;
    rc.linger = from_us(200);
    rc.max_starts = 12;
    flow_recycler rec(bed->env, *bed->topo, *bed->flows, rc, pick);
    rec.start(4);
    bed->env.events.run_until(from_ms(400));
    EXPECT_EQ(rec.flows_started(), 12u) << to_string(proto);
    EXPECT_GE(rec.flows_recycled(), 8u) << to_string(proto);
    EXPECT_EQ(rec.fcts().completed(), 12u) << to_string(proto);
  }
}

}  // namespace
}  // namespace ndpsim
