// Flat-vs-virtual dispatch identity: the type-indexed flat dispatch path
// (lane batches through registered handlers) must be observationally
// IDENTICAL to per-event virtual dispatch — same event counts, same
// same-timestamp tie-breaking, bitwise-equal FCT records — across every
// transport.  Flat dispatch is a performance mode, never a semantics mode;
// these tests are the gate that keeps it that way.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "harness/experiments.h"
#include "workload/traffic_matrix.h"

namespace ndpsim {
namespace {

// ---------------------------------------------------------------------------
// Transport-level identity: a seeded k=4 permutation of finite flows, run to
// completion twice — flat dispatch on and off — then compared field by field.
// ---------------------------------------------------------------------------

struct flow_record {
  std::uint32_t id = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  simtime_t start = 0;
  simtime_t end = 0;
  bool complete = false;

  bool operator==(const flow_record&) const = default;
};

struct workload_result {
  std::vector<flow_record> records;
  std::uint64_t events = 0;
  std::uint64_t flat_events = 0;
};

// Telemetry axis for the identity runs: `plane` arms every component's
// counter slot (hot-path increments live), `collector` additionally runs the
// epoch sampler with its heap timer.  Both must be invisible in the FCT
// records; `plane` must be invisible in the event count too (counting
// schedules nothing — the collector's own timer events are the one allowed
// difference in `collector` mode).
enum class tele_mode { off, plane, collector };

workload_result run_workload(protocol proto, bool flat,
                             tele_mode tele = tele_mode::off) {
  fabric_params fp;
  fp.proto = proto;
  sim_env env(7);
  std::shared_ptr<const fabric_blueprint> bp;
  std::unique_ptr<testbed> bed;
  if (tele != tele_mode::off) {
    // The plane must be attached before the fabric is stamped out; sizing it
    // needs the blueprint, so telemetry runs use the shared-blueprint testbed
    // (bitwise-identical to the private build — test_fabric_blueprint pins
    // that, and the identity assertions below re-verify it transitively).
    bp = make_fat_tree_blueprint(4, fp);
    env.telemetry = std::make_shared<telemetry_plane>(bp->n_slots(), bp.get());
    bed = std::make_unique<testbed>(env, bp, fp);
  } else {
    bed = make_fat_tree_testbed(7, 4, fp);
  }
  std::unique_ptr<telemetry_collector> col;
  if (tele == tele_mode::collector) {
    col = std::make_unique<telemetry_collector>(bed->env.events,
                                                *bed->env.telemetry, from_us(20));
    col->start();
  }
  bed->env.events.set_flat_dispatch(flat);
  const auto matrix = permutation_matrix(bed->env.rng, bed->topo->n_hosts());
  std::vector<flow*> flows;
  flow_options o;
  o.bytes = 90'000;
  for (std::uint32_t h = 0; h < bed->topo->n_hosts(); ++h) {
    flow_options fo = o;
    fo.start = static_cast<simtime_t>(bed->env.rand_below(1000)) * kNanosecond;
    flows.push_back(&bed->flows->create(proto, h, matrix[h], fo));
  }
  run_until_complete(bed->env, flows, from_ms(500));
  if (col != nullptr) {
    col->finish();
    EXPECT_GT(col->n_epochs(), 1u);  // the sampler actually ran
  }
  workload_result out;
  for (const flow* f : flows) {
    out.records.push_back(flow_record{f->id, f->src, f->dst, f->start_time,
                                      f->completion_time(), f->complete()});
  }
  out.events = bed->env.events.events_processed();
  out.flat_events = bed->env.events.dispatch_stats().flat_events;
  return out;
}

class flat_dispatch_identity : public ::testing::TestWithParam<protocol> {};

TEST_P(flat_dispatch_identity, fcts_bitwise_equal_to_virtual_dispatch) {
  const workload_result virt = run_workload(GetParam(), false);
  const workload_result flat = run_workload(GetParam(), true);

  // Virtual mode must not have batch-dispatched anything; flat mode must
  // actually have exercised the flat path (every fabric has pipes/queues),
  // otherwise this test compares the virtual path against itself.
  EXPECT_EQ(virt.flat_events, 0u);
  EXPECT_GT(flat.flat_events, 0u);

  // The whole point: identical event sequence, identical outcomes.
  EXPECT_EQ(virt.events, flat.events);
  ASSERT_EQ(virt.records.size(), flat.records.size());
  for (std::size_t i = 0; i < virt.records.size(); ++i) {
    EXPECT_EQ(virt.records[i], flat.records[i]) << "flow index " << i;
    EXPECT_TRUE(flat.records[i].complete) << "flow index " << i;
  }
}

// Telemetry must be observational only: armed counters (and the collector's
// sampling timer) may not move a single FCT bit on any transport.  With just
// the plane armed the event *count* must match too — hot-path counting
// schedules nothing; collector mode adds exactly its own timer events, so
// there only the records are compared.
TEST_P(flat_dispatch_identity, telemetry_on_off_fcts_bitwise_equal) {
  const workload_result off = run_workload(GetParam(), true, tele_mode::off);
  const workload_result armed = run_workload(GetParam(), true, tele_mode::plane);
  const workload_result sampled =
      run_workload(GetParam(), true, tele_mode::collector);

  EXPECT_EQ(off.events, armed.events);
  ASSERT_EQ(off.records.size(), armed.records.size());
  ASSERT_EQ(off.records.size(), sampled.records.size());
  for (std::size_t i = 0; i < off.records.size(); ++i) {
    EXPECT_EQ(off.records[i], armed.records[i]) << "flow index " << i;
    EXPECT_EQ(off.records[i], sampled.records[i]) << "flow index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(all_transports, flat_dispatch_identity,
                         ::testing::Values(protocol::ndp, protocol::tcp,
                                           protocol::dctcp, protocol::mptcp,
                                           protocol::dcqcn, protocol::phost),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// ---------------------------------------------------------------------------
// Layout-vs-seed identity: the packet hot/cold split, the allocation-order
// pool and the devirtualized dequeue tier are memory-layout changes, never
// semantics changes.  These goldens pin the bitwise FCT record stream (and
// total event count) of the seeded k=4 permutation for every transport, as
// produced by the tree *before* those changes; any later divergence means a
// layout/pool/dequeue change altered simulation behavior.
//
// Regenerate only for an intentional, justified semantic change: run with
// --gtest_filter='*golden*' — each failure message prints the observed hash.
// ---------------------------------------------------------------------------

std::uint64_t fnv1a_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001B3ull;
  }
  return h;
}

std::uint64_t hash_workload(const workload_result& r) {
  std::uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a offset basis
  h = fnv1a_mix(h, r.events);
  for (const flow_record& f : r.records) {
    h = fnv1a_mix(h, f.id);
    h = fnv1a_mix(h, f.src);
    h = fnv1a_mix(h, f.dst);
    h = fnv1a_mix(h, static_cast<std::uint64_t>(f.start));
    h = fnv1a_mix(h, static_cast<std::uint64_t>(f.end));
    h = fnv1a_mix(h, f.complete ? 1u : 0u);
  }
  return h;
}

struct golden_case {
  protocol proto;
  std::uint64_t hash;
};

class fct_golden_identity : public ::testing::TestWithParam<golden_case> {};

TEST_P(fct_golden_identity, fct_records_bitwise_match_seed) {
  const workload_result got = run_workload(GetParam().proto, true);
  EXPECT_EQ(hash_workload(got), GetParam().hash)
      << "observed hash 0x" << std::hex << hash_workload(got) << " for "
      << to_string(GetParam().proto)
      << " — a layout/pool/dequeue change altered simulation behavior";
}

INSTANTIATE_TEST_SUITE_P(
    all_transports, fct_golden_identity,
    // TCP and DCTCP coincide: at this scale no queue crosses the marking
    // threshold, so DCTCP degenerates to TCP bit-for-bit.
    ::testing::Values(golden_case{protocol::ndp, 0x842a2a02fd7f49a0ull},
                      golden_case{protocol::tcp, 0xfd24f29ceef13bbfull},
                      golden_case{protocol::dctcp, 0xfd24f29ceef13bbfull},
                      golden_case{protocol::mptcp, 0x1f83e18aab0598e5ull},
                      golden_case{protocol::dcqcn, 0x2f789aa7a98cb4e1ull},
                      golden_case{protocol::phost, 0x52a72b6c09461e23ull}),
    [](const auto& info) { return std::string(to_string(info.param.proto)); });

// ---------------------------------------------------------------------------
// Scheduler-level identity: zero-delay self-rescheduling lane sources racing
// a heap timer at the same timestamps.  This is the nastiest ordering case —
// a flat run must not swallow entries scheduled *during* the run (they carry
// later seqs), and heap/lane ties at one timestamp must break identically in
// both modes.
// ---------------------------------------------------------------------------

std::vector<int>* g_log = nullptr;

class zero_delay_source final : public event_source {
 public:
  zero_delay_source(event_list& ev, int id, std::uint32_t lane, int fires)
      : event_source(ev, "zd", dispatch_class::pacer_tick),
        id_(id),
        lane_(lane),
        remaining_(fires) {}

  void kick(simtime_t when) { events().schedule_lane(lane_, *this, when); }

  void fire() {
    g_log->push_back(id_);
    if (--remaining_ > 0) events().schedule_lane(lane_, *this, events().now());
  }

  void do_next_event() override { FAIL() << "zero_delay_source uses lanes"; }
  void do_lane_event(std::uint64_t /*payload*/) override { fire(); }

  static void dispatch_run(event_source* const* srcs,
                           const std::uint64_t* /*payloads*/, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      static_cast<zero_delay_source*>(srcs[i])->fire();
    }
  }

 private:
  int id_;
  std::uint32_t lane_;
  int remaining_;
};

class heap_ticker final : public event_source {
 public:
  heap_ticker(event_list& ev, int id, int fires, simtime_t period)
      : event_source(ev, "heap_ticker"),
        id_(id),
        remaining_(fires),
        period_(period) {}

  void kick(simtime_t when) { (void)events().schedule_at(*this, when); }

  void do_next_event() override {
    g_log->push_back(id_);
    // Reschedule at the SAME timestamp a few times, then step forward, so
    // heap entries contend with lane entries at identical times.
    if (--remaining_ <= 0) return;
    const simtime_t next =
        remaining_ % 3 == 0 ? events().now() + period_ : events().now();
    (void)events().schedule_at(*this, next);
  }

 private:
  int id_;
  int remaining_;
  simtime_t period_;
};

std::vector<int> run_zero_delay(bool flat) {
  std::vector<int> log;
  g_log = &log;
  sim_env env(7);
  env.events.set_flat_dispatch(flat);
  env.events.set_flat_handler(dispatch_class::pacer_tick,
                              &zero_delay_source::dispatch_run);
  const std::uint32_t lane = env.events.lane_for(dispatch_class::pacer_tick, 0);
  EXPECT_NE(lane, event_list::kNoLane);
  zero_delay_source a(env.events, 1, lane, 40);
  zero_delay_source b(env.events, 2, lane, 40);
  heap_ticker h(env.events, 3, 30, from_us(1));
  a.kick(from_us(1));
  b.kick(from_us(1));
  h.kick(from_us(1));
  env.events.run_until(from_us(100));
  if (flat) EXPECT_GT(env.events.dispatch_stats().flat_runs, 0u);
  g_log = nullptr;
  return log;
}

TEST(flat_dispatch, zero_delay_self_rescheduling_order_identical) {
  const std::vector<int> virt = run_zero_delay(false);
  const std::vector<int> flat = run_zero_delay(true);
  ASSERT_FALSE(virt.empty());
  EXPECT_EQ(virt, flat);
}

}  // namespace
}  // namespace ndpsim
