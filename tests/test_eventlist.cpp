#include <gtest/gtest.h>

#include <vector>

#include "sim/eventlist.h"
#include "sim/time.h"

namespace ndpsim {
namespace {

class probe : public event_source {
 public:
  probe(event_list& el, std::vector<std::pair<int, simtime_t>>* log, int id)
      : event_source(el, "probe"), log_(log), id_(id) {}
  void do_next_event() override { log_->emplace_back(id_, events().now()); }

 private:
  std::vector<std::pair<int, simtime_t>>* log_;
  int id_;
};

TEST(time, unit_conversions) {
  EXPECT_EQ(from_us(1.0), kMicrosecond);
  EXPECT_EQ(from_ms(2.0), 2 * kMillisecond);
  EXPECT_DOUBLE_EQ(to_us(from_us(123.0)), 123.0);
  EXPECT_EQ(gbps(10), 10'000'000'000ull);
}

TEST(time, serialization_time_9k_at_10g_is_7_2us) {
  // The paper: a 9KB jumbogram takes 7.2us to serialize at 10Gb/s.
  EXPECT_EQ(serialization_time(9000, gbps(10)), from_us(7.2));
}

TEST(time, serialization_time_64b_header) {
  EXPECT_EQ(serialization_time(64, gbps(10)), from_ns(51.2));
}

TEST(time, bytes_in_time_inverts_serialization) {
  const simtime_t t = serialization_time(123456, gbps(10));
  EXPECT_EQ(bytes_in_time(t, gbps(10)), 123456u);
}

TEST(eventlist, runs_in_time_order) {
  event_list el;
  std::vector<std::pair<int, simtime_t>> log;
  probe a(el, &log, 1), b(el, &log, 2);
  el.schedule_at(a, 100);
  el.schedule_at(b, 50);
  el.schedule_at(a, 150);
  el.run_all();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], (std::pair<int, simtime_t>{2, 50}));
  EXPECT_EQ(log[1], (std::pair<int, simtime_t>{1, 100}));
  EXPECT_EQ(log[2], (std::pair<int, simtime_t>{1, 150}));
}

TEST(eventlist, fifo_tiebreak_at_same_time) {
  event_list el;
  std::vector<std::pair<int, simtime_t>> log;
  probe a(el, &log, 1), b(el, &log, 2), c(el, &log, 3);
  el.schedule_at(b, 10);
  el.schedule_at(c, 10);
  el.schedule_at(a, 10);
  el.run_all();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].first, 2);
  EXPECT_EQ(log[1].first, 3);
  EXPECT_EQ(log[2].first, 1);
}

TEST(eventlist, run_until_advances_now_even_without_events) {
  event_list el;
  el.run_until(from_us(5));
  EXPECT_EQ(el.now(), from_us(5));
}

TEST(eventlist, run_until_only_processes_due_events) {
  event_list el;
  std::vector<std::pair<int, simtime_t>> log;
  probe a(el, &log, 1);
  el.schedule_at(a, 10);
  el.schedule_at(a, 100);
  el.run_until(50);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(el.pending(), 1u);
  el.run_until(200);
  EXPECT_EQ(log.size(), 2u);
}

TEST(eventlist, rejects_scheduling_in_the_past) {
  event_list el;
  std::vector<std::pair<int, simtime_t>> log;
  probe a(el, &log, 1);
  el.run_until(100);
  EXPECT_THROW(el.schedule_at(a, 50), simulation_error);
}

TEST(eventlist, schedule_in_is_relative) {
  event_list el;
  std::vector<std::pair<int, simtime_t>> log;
  probe a(el, &log, 1);
  el.run_until(40);
  el.schedule_in(a, 10);
  el.run_all();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].second, 50);
}

TEST(eventlist, counts_processed_events) {
  event_list el;
  std::vector<std::pair<int, simtime_t>> log;
  probe a(el, &log, 1);
  el.schedule_at(a, 1);
  el.schedule_at(a, 2);
  el.run_all();
  EXPECT_EQ(el.events_processed(), 2u);
}

TEST(eventlist, cancel_prevents_fire) {
  event_list el;
  std::vector<std::pair<int, simtime_t>> log;
  probe a(el, &log, 1), b(el, &log, 2);
  timer_handle ha = el.schedule_at(a, 10);
  el.schedule_at(b, 20);
  EXPECT_TRUE(el.cancel(ha));
  el.run_all();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].first, 2);
  EXPECT_EQ(el.pending(), 0u);
}

TEST(eventlist, cancel_is_safe_on_invalid_and_fired_handles) {
  event_list el;
  std::vector<std::pair<int, simtime_t>> log;
  probe a(el, &log, 1);
  timer_handle never;  // default-constructed
  EXPECT_FALSE(el.cancel(never));
  timer_handle h = el.schedule_at(a, 5);
  el.run_all();
  EXPECT_FALSE(el.cancel(h));          // already fired
  EXPECT_FALSE(el.is_pending(h));
  timer_handle h2 = el.schedule_at(a, 10);
  EXPECT_TRUE(el.cancel(h2));
  EXPECT_FALSE(el.cancel(h2));         // double cancel is a no-op
}

TEST(eventlist, reschedule_moves_event_earlier_and_later) {
  event_list el;
  std::vector<std::pair<int, simtime_t>> log;
  probe a(el, &log, 1), b(el, &log, 2);
  timer_handle ha = el.schedule_at(a, 100);
  el.schedule_at(b, 50);
  el.reschedule(ha, a, 10);  // decrease-key: ahead of b
  el.reschedule(ha, a, 80);  // increase-key: behind b again
  el.run_all();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], (std::pair<int, simtime_t>{2, 50}));
  EXPECT_EQ(log[1], (std::pair<int, simtime_t>{1, 80}));
}

TEST(eventlist, reschedule_on_invalid_handle_schedules_fresh) {
  event_list el;
  std::vector<std::pair<int, simtime_t>> log;
  probe a(el, &log, 1);
  timer_handle h;  // invalid
  el.reschedule(h, a, 30);
  EXPECT_TRUE(el.is_pending(h));
  EXPECT_EQ(el.expiry(h), 30);
  el.run_all();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].second, 30);
  EXPECT_FALSE(el.is_pending(h));  // fired handles go invalid
}

TEST(eventlist, reschedule_to_same_time_rearms_behind_fifo_peers) {
  // Re-arming is a new arming: the moved event runs after events that were
  // already pending at that timestamp.
  event_list el;
  std::vector<std::pair<int, simtime_t>> log;
  probe a(el, &log, 1), b(el, &log, 2), c(el, &log, 3);
  timer_handle ha = el.schedule_at(a, 10);
  el.schedule_at(b, 10);
  el.schedule_at(c, 10);
  el.reschedule(ha, a, 10);
  el.run_all();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].first, 2);
  EXPECT_EQ(log[1].first, 3);
  EXPECT_EQ(log[2].first, 1);
}

TEST(eventlist, expiry_tracks_reschedules) {
  event_list el;
  std::vector<std::pair<int, simtime_t>> log;
  probe a(el, &log, 1);
  timer_handle h = el.schedule_at(a, 40);
  EXPECT_EQ(el.expiry(h), 40);
  el.reschedule(h, a, 90);
  EXPECT_EQ(el.expiry(h), 90);
  EXPECT_TRUE(el.is_pending(h));
  el.cancel(h);
  EXPECT_FALSE(el.is_pending(h));
}

TEST(eventlist, reschedule_rejects_the_past) {
  event_list el;
  std::vector<std::pair<int, simtime_t>> log;
  probe a(el, &log, 1);
  timer_handle h = el.schedule_at(a, 200);
  el.run_until(100);
  EXPECT_THROW(el.reschedule(h, a, 50), simulation_error);
}

TEST(eventlist, run_until_lands_exactly_on_event_timestamp) {
  event_list el;
  std::vector<std::pair<int, simtime_t>> log;
  probe a(el, &log, 1);
  el.schedule_at(a, 100);
  el.run_until(100);  // horizon == event time: the event must run
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].second, 100);
  EXPECT_EQ(el.now(), 100);
  EXPECT_EQ(el.pending(), 0u);
}

TEST(eventlist, batch_runs_all_equal_timestamps_including_newly_scheduled) {
  event_list el;
  std::vector<std::pair<int, simtime_t>> log;
  // `spawner` schedules another probe at its own (current) timestamp.
  struct spawner final : event_source {
    spawner(event_list& e, probe* tail) : event_source(e, "spawn"), tail_(tail) {}
    void do_next_event() override { events().schedule_at(*tail_, events().now()); }
    probe* tail_;
  };
  probe a(el, &log, 1), tail(el, &log, 9);
  spawner s(el, &tail);
  el.schedule_at(a, 10);
  el.schedule_at(s, 10);
  el.schedule_at(a, 20);
  EXPECT_EQ(el.run_next_batch(), 3u);  // a, spawner, then the spawned tail
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].first, 1);
  EXPECT_EQ(log[1].first, 9);
  EXPECT_EQ(log[1].second, 10);
  EXPECT_EQ(el.pending(), 1u);  // the event at t=20 is untouched
}

TEST(eventlist, cancel_heavy_churn_leaves_no_dead_entries) {
  // The old scheduler accumulated a dead entry per moved timer; the indexed
  // heap must keep exactly one pending entry per live timer, whatever the
  // churn.
  event_list el;
  std::vector<std::pair<int, simtime_t>> log;
  probe a(el, &log, 1);
  timer_handle h;
  for (int i = 0; i < 10000; ++i) {
    el.reschedule(h, a, 1000 + i);
    EXPECT_EQ(el.pending(), 1u);
  }
  timer_handle h2 = el.schedule_at(a, 500);
  EXPECT_EQ(el.pending(), 2u);
  el.cancel(h2);
  EXPECT_EQ(el.pending(), 1u);
  el.run_all();
  EXPECT_EQ(log.size(), 1u);  // one live timer -> one fire
  EXPECT_EQ(el.pending(), 0u);
}

TEST(eventlist, run_all_event_budget_throws) {
  // A source that reschedules itself forever must trip the budget backstop.
  event_list el;
  struct looper : event_source {
    explicit looper(event_list& e) : event_source(e, "loop") {}
    void do_next_event() override { events().schedule_in(*this, 1); }
  } l(el);
  el.schedule_at(l, 0);
  EXPECT_THROW(el.run_all(1000), simulation_error);
}

TEST(eventlist, run_all_event_budget_trips_inside_a_zero_delay_batch) {
  // Rescheduling at delta 0 keeps extending the current same-timestamp
  // batch; the budget must be enforced per event, not per batch, or this
  // would hang instead of throwing.
  event_list el;
  struct zero_looper : event_source {
    explicit zero_looper(event_list& e) : event_source(e, "loop0") {}
    void do_next_event() override { events().schedule_in(*this, 0); }
  } l(el);
  el.schedule_at(l, 0);
  EXPECT_THROW(el.run_all(1000), simulation_error);
}

}  // namespace
}  // namespace ndpsim
