#include <gtest/gtest.h>

#include "dctcp/dctcp_source.h"
#include "net/fifo_queues.h"
#include "tcp/tcp_sink.h"
#include "topo/micro_topo.h"
#include "topo/path_table.h"

namespace ndpsim {
namespace {

queue_factory ecn_factory(sim_env& env, std::uint32_t cap_pkts,
                          std::uint32_t k_pkts) {
  return [&env, cap_pkts, k_pkts](
             link_level level, std::size_t, linkspeed_bps rate,
             const std::string& name) -> std::unique_ptr<queue_base> {
    if (level == link_level::host_up) {
      return std::make_unique<host_priority_queue>(env, rate, name);
    }
    return std::make_unique<ecn_threshold_queue>(
        env, rate, cap_pkts * 9000ull, k_pkts * 9000ull, name);
  };
}

struct dconn {
  dconn(sim_env& env, topology& topo, std::uint32_t s, std::uint32_t d,
        std::uint64_t bytes, std::uint32_t fid, tcp_config cfg = {})
      : source(env, [&] { cfg.handshake = false; return cfg; }(),
               dctcp_config{}, fid),
        sink(env, fid) {
    source.connect(sink, topo.paths().single(s, d, 0), s, d, bytes, 0);
  }
  dctcp_source source;
  tcp_sink sink;
};

TEST(dctcp, sets_ect_and_reacts_to_marks_without_loss) {
  sim_env env(3);
  single_switch star(env, 3, gbps(10), from_us(1), ecn_factory(env, 200, 3));
  dconn a(env, star, 0, 2, 0, 1);
  dconn b(env, star, 1, 2, 0, 2);
  env.events.run_until(from_ms(20));
  EXPECT_GT(a.source.stats().ecn_echoes, 0u);
  // DCTCP keeps the shared queue bounded near K, so no drops at all.
  EXPECT_EQ(star.switch_port(2).stats().dropped, 0u);
  EXPECT_GT(star.switch_port(2).stats().marked, 0u);
  EXPECT_EQ(a.source.stats().timeouts + b.source.stats().timeouts, 0u);
}

TEST(dctcp, alpha_converges_down_when_unmarked) {
  sim_env env;
  back_to_back b2b(env, gbps(10), from_us(1), ecn_factory(env, 200, 50));
  tcp_config cfg;
  cfg.max_cwnd_mss = 32;  // keep observation windows short
  dconn c(env, b2b, 0, 1, 0, 1, cfg);
  // alpha starts at 1; with no marks on an uncongested path it must decay
  // by (1-g) per observation window.
  env.events.run_until(from_ms(20));
  EXPECT_LT(c.source.alpha(), 0.2);
}

TEST(dctcp, throughput_matches_tcp_when_uncongested) {
  sim_env env;
  back_to_back b2b(env, gbps(10), from_us(1), ecn_factory(env, 200, 30));
  dconn c(env, b2b, 0, 1, 0, 1);
  env.events.run_until(from_ms(5));
  const std::uint64_t base = c.sink.payload_received();
  env.events.run_until(from_ms(15));
  const double gb = static_cast<double>(c.sink.payload_received() - base) *
                    8 / to_sec(from_ms(10)) / 1e9;
  EXPECT_GT(gb, 9.0);
}

TEST(dctcp, keeps_queue_near_marking_threshold) {
  sim_env env(5);
  single_switch star(env, 3, gbps(10), from_us(1), ecn_factory(env, 200, 5));
  dconn a(env, star, 0, 2, 0, 1);
  dconn b(env, star, 1, 2, 0, 2);
  env.events.run_until(from_ms(10));
  // Sample the standing queue over a while: should hover around K=5 pkts,
  // far below the 200-packet capacity (this is DCTCP's whole point).
  std::uint64_t max_seen = 0;
  for (int i = 0; i < 100; ++i) {
    env.events.run_until(env.now() + from_us(100));
    max_seen = std::max(max_seen, star.switch_port(2).buffered_bytes());
  }
  EXPECT_LT(max_seen, 40ull * 9000);
}

TEST(dctcp, fractional_backoff_gentler_than_tcp_halving) {
  // With a small fraction of marks, DCTCP's cut should be much smaller than
  // 50%. Feed the source synthetic ACK patterns via a real tiny topology:
  // compare window after one congestion episode.
  sim_env env(6);
  single_switch star(env, 2, gbps(10), from_us(1), ecn_factory(env, 200, 30));
  dconn c(env, star, 0, 1, 0, 1);
  env.events.run_until(from_ms(4));
  const std::uint64_t w = c.source.cwnd_bytes();
  // Single flow at line rate against K=30: occasional marks, small alpha,
  // so the window stays near the BDP instead of sawtoothing to half.
  EXPECT_GT(w, 10ull * 8936);
  env.events.run_until(from_ms(8));
  EXPECT_GT(c.source.cwnd_bytes(), w / 2);
}

}  // namespace
}  // namespace ndpsim
