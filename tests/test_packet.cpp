#include <gtest/gtest.h>

#include "net/packet.h"
#include "net/route.h"
#include "net/sim_env.h"
#include "test_util.h"

namespace ndpsim {
namespace {

TEST(packet_pool, alloc_returns_value_initialized) {
  packet_pool pool;
  packet* p = pool.alloc();
  p->seqno = 42;
  p->flags = 0xff;
  pool.release(p);
  packet* q = pool.alloc();
  EXPECT_EQ(q->seqno, 0u);
  EXPECT_EQ(q->flags, 0u);
  pool.release(q);
}

TEST(packet_pool, tracks_outstanding) {
  packet_pool pool;
  EXPECT_EQ(pool.outstanding(), 0u);
  packet* a = pool.alloc();
  packet* b = pool.alloc();
  EXPECT_EQ(pool.outstanding(), 2u);
  pool.release(a);
  EXPECT_EQ(pool.outstanding(), 1u);
  pool.release(b);
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(packet_pool, double_free_throws) {
  packet_pool pool;
  packet* a = pool.alloc();
  pool.release(a);
  EXPECT_THROW(pool.release(a), simulation_error);
}

TEST(packet_pool, interleaved_double_free_throws) {
  // With another packet still outstanding, the aggregate counter alone would
  // let this re-release slip through; the per-packet in-pool flag catches it.
  packet_pool pool;
  packet* a = pool.alloc();
  packet* b = pool.alloc();
  pool.release(a);
  EXPECT_THROW(pool.release(a), simulation_error);
  EXPECT_EQ(pool.outstanding(), 1u);  // the failed release changed nothing
  pool.release(b);
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(packet_pool, released_packet_can_be_reallocated_cleanly) {
  packet_pool pool;
  packet* a = pool.alloc();
  a->seqno = 7;
  pool.release(a);
  packet* b = pool.alloc();  // same storage, poison must be wiped
  EXPECT_EQ(b, a);
  EXPECT_EQ(b->seqno, 0u);
  EXPECT_FALSE(b->in_pool);
  pool.release(b);
}

TEST(packet_pool, compaction_prefers_lowest_addresses) {
  // Release in a scrambled order across two slabs, compact, then check the
  // pool hands back ascending pool slots: the compaction sort means the
  // next allocation burst walks the slabs front to back.
  packet_pool pool;
  std::vector<packet*> ps;
  for (int i = 0; i < 2000; ++i) ps.push_back(pool.alloc());
  for (std::size_t i = 0; i < ps.size(); i += 2) pool.release(ps[i]);
  for (std::size_t i = 1; i < ps.size(); i += 2) pool.release(ps[i]);
  pool.compact();
  // The free list is now fully sorted, so allocation replays the original
  // ascending slot order regardless of the scrambled release order.
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(pool.alloc(), ps[i]);
  }
}

TEST(packet_pool, double_free_detected_across_compaction) {
  // compact() re-sorts the free list; the in-pool poison lives in the packet
  // itself, so a stale pointer must still be rejected afterwards and the
  // slot must come back exactly once.
  packet_pool pool;
  packet* a = pool.alloc();
  packet* b = pool.alloc();
  pool.release(b);
  pool.release(a);
  pool.compact();
  EXPECT_THROW(pool.release(a), simulation_error);
  packet* x = pool.alloc();
  packet* y = pool.alloc();
  EXPECT_NE(x, y);
  EXPECT_EQ(pool.outstanding(), 2u);
  pool.release(x);
  pool.release(y);
}

TEST(packet_pool, compaction_preserves_outstanding_packets) {
  // Live packets are untouched by compaction: contents, addresses and the
  // double-free guard all survive a compact() of the free list around them.
  packet_pool pool;
  std::vector<packet*> live;
  for (int i = 0; i < 1500; ++i) {
    packet* p = pool.alloc();
    p->seqno = static_cast<std::uint64_t>(i);
    if (i % 3 == 0) {
      live.push_back(p);
    } else {
      pool.release(p);
    }
  }
  pool.compact();
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(live[i]->seqno, static_cast<std::uint64_t>(3 * i));
    EXPECT_FALSE(live[i]->in_pool);
  }
  for (packet* p : live) pool.release(p);
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(packet_pool, grows_beyond_one_block) {
  packet_pool pool;
  std::vector<packet*> ps;
  for (int i = 0; i < 3000; ++i) ps.push_back(pool.alloc());
  EXPECT_GE(pool.capacity(), 3000u);
  for (packet* p : ps) pool.release(p);
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(packet, flag_helpers) {
  packet p;
  EXPECT_FALSE(p.has_flag(pkt_flag::syn));
  p.set_flag(pkt_flag::syn);
  p.set_flag(pkt_flag::last);
  EXPECT_TRUE(p.has_flag(pkt_flag::syn));
  EXPECT_TRUE(p.has_flag(pkt_flag::last));
  p.clear_flag(pkt_flag::syn);
  EXPECT_FALSE(p.has_flag(pkt_flag::syn));
  EXPECT_TRUE(p.has_flag(pkt_flag::last));
}

TEST(packet, header_class_classification) {
  packet p;
  p.type = packet_type::ndp_data;
  EXPECT_FALSE(p.is_header_class());
  p.set_flag(pkt_flag::trimmed);
  EXPECT_TRUE(p.is_header_class());  // trimmed data rides the header queue
  packet a;
  a.type = packet_type::ndp_ack;
  EXPECT_TRUE(a.is_header_class());
  packet t;
  t.type = packet_type::tcp_data;
  EXPECT_FALSE(t.is_header_class());
  packet k;
  k.type = packet_type::tcp_ack;
  EXPECT_TRUE(k.is_header_class());
}

TEST(packet, control_type_classification) {
  EXPECT_FALSE(is_control(packet_type::ndp_data));
  EXPECT_FALSE(is_control(packet_type::cbr_data));
  EXPECT_FALSE(is_control(packet_type::phost_data));
  EXPECT_TRUE(is_control(packet_type::ndp_pull));
  EXPECT_TRUE(is_control(packet_type::dcqcn_cnp));
  EXPECT_TRUE(is_control(packet_type::phost_token));
}

TEST(packet, send_to_next_hop_walks_route) {
  sim_env env;
  testing::recording_sink s1(env), s2(env);
  owned_route r;
  r.push_back(&s1);
  packet* p = testing::make_data(env, &r);
  send_to_next_hop(*p);
  EXPECT_EQ(s1.count(), 1u);
  EXPECT_EQ(s2.count(), 0u);
  EXPECT_EQ(env.pool.outstanding(), 0u);
}

TEST(packet, running_off_route_throws) {
  sim_env env;
  owned_route r;  // empty
  packet* p = testing::make_data(env, &r);
  EXPECT_THROW(send_to_next_hop(*p), simulation_error);
  env.pool.release(p);
}

TEST(route, reverse_registration) {
  owned_route f, r;
  f.set_reverse(&r);
  r.set_reverse(&f);
  EXPECT_EQ(f.reverse(), &r);
  EXPECT_EQ(r.reverse(), &f);
}

TEST(route, queue_hops_counts_pairs) {
  sim_env env;
  testing::recording_sink end(env);
  owned_route r;
  // [q, p, q, p, endpoint] -> 2 queue hops
  testing::recording_sink a(env), b(env), c(env), d(env);
  r.push_back(&a);
  r.push_back(&b);
  r.push_back(&c);
  r.push_back(&d);
  r.push_back(&end);
  EXPECT_EQ(r.queue_hops(), 2u);
}

}  // namespace
}  // namespace ndpsim
