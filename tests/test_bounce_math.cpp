// Property test for return-to-sender route reversal: a header bounced at the
// t-th queue of an n-queue symmetric path must come back to the source
// endpoint, whatever t and n.
#include <gtest/gtest.h>

#include <memory>

#include "ndp/ndp_queue.h"
#include "net/pipe.h"
#include "test_util.h"

namespace ndpsim {
namespace {

struct bounce_case {
  int n_queues;   // path length
  int jam_index;  // queue that bounces (0 = source NIC itself)
};

class bounce_math : public ::testing::TestWithParam<bounce_case> {};

TEST_P(bounce_math, header_returns_to_source_endpoint) {
  const auto [n, t] = GetParam();
  sim_env env;
  testing::recording_sink src_end(env), dst_end(env);

  // Build a forward chain of n ndp queues and a symmetric reverse chain.
  std::vector<std::unique_ptr<ndp_queue>> fq(n), rq(n);
  std::vector<std::unique_ptr<pipe>> fp(n), rp(n);
  ndp_queue_config roomy;
  roomy.data_capacity_bytes = 64 * 9000;
  roomy.header_capacity_bytes = 64 * 9000;
  ndp_queue_config jammed;
  jammed.data_capacity_bytes = 64 * 9000;
  jammed.header_capacity_bytes = 1;  // nothing fits: every header bounces
  auto fwd = std::make_unique<owned_route>();
  auto rev = std::make_unique<owned_route>();
  for (int i = 0; i < n; ++i) {
    fq[i] = std::make_unique<ndp_queue>(env, gbps(10),
                                        i == t ? jammed : roomy,
                                        "f" + std::to_string(i));
    rq[i] = std::make_unique<ndp_queue>(env, gbps(10), roomy,
                                        "r" + std::to_string(i));
    fp[i] = std::make_unique<pipe>(env, from_us(1));
    rp[i] = std::make_unique<pipe>(env, from_us(1));
    fwd->push_back(fq[i].get());
    fwd->push_back(fp[i].get());
    rev->push_back(rq[i].get());
    rev->push_back(rp[i].get());
  }
  fwd->push_back(&dst_end);
  rev->push_back(&src_end);
  fwd->set_reverse(rev.get());
  rev->set_reverse(fwd.get());

  // A pre-trimmed header travelling the forward path: at queue t its header
  // queue is full, forcing a bounce.
  packet* p = env.pool.alloc();
  p->type = packet_type::ndp_data;
  p->set_flag(pkt_flag::trimmed);
  p->priority = 1;
  p->size_bytes = kHeaderBytes;
  p->seqno = 77;
  p->src = 10;
  p->dst = 20;
  p->rt = fwd.get();
  p->reverse_rt = rev.get();
  p->next_hop = 0;
  send_to_next_hop(*p);
  env.events.run_all();

  ASSERT_EQ(src_end.count(), 1u) << "bounce from queue " << t << "/" << n;
  EXPECT_EQ(dst_end.count(), 0u);
  const auto& got = src_end.arrivals()[0];
  EXPECT_EQ(got.seqno, 77u);
  EXPECT_NE(got.flags & pkt_flag::bounced, 0);
  EXPECT_EQ(env.pool.outstanding(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    chain_positions, bounce_math,
    ::testing::Values(bounce_case{1, 0}, bounce_case{2, 0}, bounce_case{2, 1},
                      bounce_case{3, 1}, bounce_case{4, 0}, bounce_case{4, 2},
                      bounce_case{4, 3}, bounce_case{6, 1}, bounce_case{6, 3},
                      bounce_case{6, 5}));

}  // namespace
}  // namespace ndpsim
