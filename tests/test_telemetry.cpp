// Conservation-law suite for the telemetry plane.
//
// The counters are only worth their (near-)zero cost if they are *accurate*,
// so every law here is an exact integer identity, not a tolerance check:
//  * queue packets:  enq == deq + dropped + bounced + resident
//  * queue bytes:    enq == deq + dropped + bounced + trimmed-away + resident
//    (a trimmed packet stays resident at header size; `trim_bytes` is the
//    payload removed in place)
//  * pipe:           enq == deq once the wire drained (pipes never drop)
//  * demux:          enq == deq-to-endpoint + stale drops
// plus an exact cross-check against the queues' own `queue_stats` (two
// independent counting systems must tell one story), and the merge law:
// a parallel_runner sweep's merged plane is bitwise equal to the serial
// run's, however the jobs were scheduled.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiments.h"
#include "harness/parallel_runner.h"
#include "stats/fct_summary.h"
#include "stats/telemetry_json.h"
#include "topo/path_table.h"
#include "workload/traffic_matrix.h"

namespace ndpsim {
namespace {

#ifdef NDPSIM_TELEMETRY_DISABLED
#define SKIP_WITHOUT_TELEMETRY() \
  GTEST_SKIP() << "built with NDPSIM_TELEMETRY=OFF: increments compiled out"
#else
#define SKIP_WITHOUT_TELEMETRY() (void)0
#endif

constexpr link_level kLevels[] = {link_level::host_up,   link_level::tor_up,
                                  link_level::agg_up,    link_level::core_down,
                                  link_level::agg_down,  link_level::tor_down};

// A testbed with an armed telemetry plane: the plane must exist on the env
// before the fabric is stamped out (components cache their slot pointer at
// construction), and it must be sized to the blueprint's slot table.
struct tele_bed {
  sim_env env;
  std::shared_ptr<const fabric_blueprint> bp;
  std::unique_ptr<testbed> bed;

  tele_bed(std::uint64_t seed, unsigned k, const fabric_params& fp)
      : env(seed), bp(make_fat_tree_blueprint(k, fp)) {
    env.telemetry = std::make_shared<telemetry_plane>(bp->n_slots(), bp.get());
    bed = std::make_unique<testbed>(env, bp, fp);
  }

  [[nodiscard]] telemetry_plane& plane() { return *env.telemetry; }
};

// The queue laws hold at ANY instant (resident terms absorb what is still
// inside), so they are checked without requiring the run to have drained.
void expect_queue_conservation(const fat_tree& ft) {
  for (const link_level lvl : kLevels) {
    for (const queue_base* q : ft.queues_at(lvl)) {
      ASSERT_TRUE(q->telemetry_armed())
          << "queue not armed at level " << to_string(lvl);
      const telemetry_counters c = q->telemetry();
      const std::uint64_t resident_pkts =
          q->buffered_packets() + (q->busy() ? 1 : 0);
      EXPECT_EQ(c.enq_pkts,
                c.deq_pkts + c.drop_pkts + c.bounce_pkts + resident_pkts)
          << "packet conservation violated at " << to_string(lvl);
      const std::uint64_t resident_bytes =
          q->buffered_bytes() + q->serving_bytes();
      EXPECT_EQ(c.enq_bytes, c.deq_bytes + c.drop_bytes + c.bounce_bytes +
                                 c.trim_bytes + resident_bytes)
          << "byte conservation violated at " << to_string(lvl);

      // Independent-counting cross-check: the telemetry slot must agree
      // exactly with the queue's own stats block at every overlapping field.
      const queue_stats& s = q->stats();
      EXPECT_EQ(s.arrivals, c.enq_pkts);
      EXPECT_EQ(s.forwarded, c.deq_pkts);
      EXPECT_EQ(s.dropped, c.drop_pkts);
      EXPECT_EQ(s.trimmed, c.trim_pkts);
      EXPECT_EQ(s.bounced, c.bounce_pkts);
      EXPECT_EQ(s.marked, c.mark_pkts);
      EXPECT_EQ(s.bytes_forwarded, c.deq_bytes);
    }
  }
}

// Pipe law needs a drained wire; demux law holds at any instant.
void expect_pipe_and_demux_conservation(tele_bed& tb) {
  const telemetry_plane& plane = tb.plane();
  std::uint64_t pipe_pkts = 0;
  for (std::uint32_t slot = 0; slot < plane.n_slots(); ++slot) {
    const auto& info = plane.info(slot);
    if (!info.armed || info.kind != telemetry_kind::pipe) continue;
    const telemetry_counters c = plane.counters(slot);
    EXPECT_EQ(c.enq_pkts, c.deq_pkts)
        << "pipe " << plane.slot_name(slot) << " not conserved";
    EXPECT_EQ(c.enq_bytes, c.deq_bytes)
        << "pipe " << plane.slot_name(slot) << " not conserved";
    pipe_pkts += c.enq_pkts;
  }
  EXPECT_GT(pipe_pkts, 0u) << "workload never touched a pipe";

  std::uint64_t delivered = 0;
  for (std::uint32_t h = 0; h < tb.bed->topo->n_hosts(); ++h) {
    flow_demux& d = tb.bed->topo->paths().demux(h);
    ASSERT_TRUE(d.telemetry_armed()) << "demux " << h << " not armed";
    const telemetry_counters c = d.telemetry();
    EXPECT_EQ(c.enq_pkts, c.deq_pkts + c.stale_drops) << "demux " << h;
    EXPECT_EQ(d.stale_drops(), c.stale_drops) << "demux " << h;
    delivered += c.enq_pkts;
  }
  EXPECT_GT(delivered, 0u) << "workload never reached a demux";
}

// Run a seeded k=4 permutation to completion on a telemetry-armed testbed,
// then drain the event loop so the pipe law can be exact.
void run_permutation_workload(tele_bed& tb, protocol proto) {
  const auto matrix =
      permutation_matrix(tb.env.rng, tb.bed->topo->n_hosts());
  std::vector<flow*> flows;
  flow_options o;
  o.bytes = 90'000;
  for (std::uint32_t h = 0; h < tb.bed->topo->n_hosts(); ++h) {
    flow_options fo = o;
    fo.start = static_cast<simtime_t>(tb.env.rand_below(1000)) * kNanosecond;
    flows.push_back(&tb.bed->flows->create(proto, h, matrix[h], fo));
  }
  run_until_complete(tb.env, flows, from_ms(500));
  for (const flow* f : flows) ASSERT_TRUE(f->complete());
  tb.env.events.run_until(from_ms(600));  // drain in-flight control traffic
}

class telemetry_conservation : public ::testing::TestWithParam<protocol> {};

TEST_P(telemetry_conservation, permutation_conserves_every_component) {
  SKIP_WITHOUT_TELEMETRY();
  fabric_params fp;
  fp.proto = GetParam();
  tele_bed tb(7, 4, fp);
  run_permutation_workload(tb, GetParam());
  expect_queue_conservation(*tb.bed->topo);
  expect_pipe_and_demux_conservation(tb);
}

INSTANTIATE_TEST_SUITE_P(all_transports, telemetry_conservation,
                         ::testing::Values(protocol::ndp, protocol::tcp,
                                           protocol::dctcp, protocol::mptcp,
                                           protocol::dcqcn, protocol::phost),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// NDP incast: the scenario that actually exercises the trim arm of the byte
// law (header-size residue, payload accounted by trim_bytes) and, with RTS
// on, the bounce arm too.
TEST(telemetry_conservation_incast, ndp_incast_conserves_with_trims) {
  SKIP_WITHOUT_TELEMETRY();
  fabric_params fp;
  fp.proto = protocol::ndp;
  tele_bed tb(11, 4, fp);
  std::vector<std::uint32_t> senders;
  for (std::uint32_t h = 0; h < 12; ++h) senders.push_back(h);
  const auto r = run_incast(*tb.bed, protocol::ndp, senders, /*receiver=*/15,
                            /*bytes=*/90'000, flow_options{}, from_ms(200));
  ASSERT_EQ(r.completed, senders.size());
  tb.env.events.run_until(from_ms(300));

  expect_queue_conservation(*tb.bed->topo);
  expect_pipe_and_demux_conservation(tb);

  // The incast must have trimmed somewhere (that's the NDP mechanism under
  // test) — and the trim counter must agree with the fabric's own stats.
  std::uint64_t trims = 0;
  for (const link_level lvl : kLevels) {
    for (const queue_base* q : tb.bed->topo->queues_at(lvl)) {
      trims += q->telemetry().trim_pkts;
    }
  }
  EXPECT_GT(trims, 0u);
  EXPECT_EQ(trims, tb.bed->topo->aggregate_stats(link_level::host_up).trimmed +
                       tb.bed->topo->aggregate_stats(link_level::tor_up).trimmed +
                       tb.bed->topo->aggregate_stats(link_level::agg_up).trimmed +
                       tb.bed->topo->aggregate_stats(link_level::core_down).trimmed +
                       tb.bed->topo->aggregate_stats(link_level::agg_down).trimmed +
                       tb.bed->topo->aggregate_stats(link_level::tor_down).trimmed);
}

// DCTCP incast: exercises the ECN-mark counter against queue_stats.marked.
TEST(telemetry_conservation_incast, dctcp_incast_counts_ecn_marks) {
  SKIP_WITHOUT_TELEMETRY();
  fabric_params fp;
  fp.proto = protocol::dctcp;
  tele_bed tb(13, 4, fp);
  std::vector<std::uint32_t> senders;
  for (std::uint32_t h = 0; h < 12; ++h) senders.push_back(h);
  const auto r = run_incast(*tb.bed, protocol::dctcp, senders, /*receiver=*/15,
                            /*bytes=*/90'000, flow_options{}, from_ms(200));
  ASSERT_EQ(r.completed, senders.size());
  tb.env.events.run_until(from_ms(300));

  expect_queue_conservation(*tb.bed->topo);
  std::uint64_t marks = 0;
  for (const link_level lvl : kLevels) {
    for (const queue_base* q : tb.bed->topo->queues_at(lvl)) {
      marks += q->telemetry().mark_pkts;
    }
  }
  EXPECT_GT(marks, 0u) << "12:1 incast should cross the ECN threshold";
}

// ---------------------------------------------------------------------------
// Merge law: a sweep's merged telemetry is a pure function of its configs —
// bitwise equal run serially or on 4 threads.
// ---------------------------------------------------------------------------

TEST(telemetry_parallel, merged_plane_bitwise_equal_serial_vs_threaded) {
  SKIP_WITHOUT_TELEMETRY();
  fabric_params fp;
  fp.proto = protocol::ndp;
  const auto bp = make_fat_tree_blueprint(4, fp);

  std::vector<experiment_config> cfgs;
  for (int i = 0; i < 4; ++i) {
    cfgs.push_back(experiment_config{"job" + std::to_string(i),
                                     static_cast<std::uint64_t>(100 + i)});
  }
  const experiment_fn body = [&](const experiment_config& cfg, sim_env& env,
                                 fct_recorder& fcts) {
    (void)fcts;
    env.telemetry =
        std::make_shared<telemetry_plane>(bp->n_slots(), bp.get());
    testbed bed(env, bp, fp);
    const auto matrix = permutation_matrix(env.rng, bed.topo->n_hosts());
    std::vector<flow*> flows;
    flow_options o;
    o.bytes = 30'000;
    for (std::uint32_t h = 0; h < bed.topo->n_hosts(); ++h) {
      flow_options fo = o;
      fo.start = static_cast<simtime_t>(env.rand_below(1000)) * kNanosecond;
      flows.push_back(&bed.flows->create(protocol::ndp, h, matrix[h], fo));
    }
    run_until_complete(env, flows, from_ms(200));
    (void)cfg;
  };

  const auto serial = parallel_runner(1).run(cfgs, body);
  const auto threaded = parallel_runner(4).run(cfgs, body);
  const auto merged_serial = merge_telemetry(serial);
  const auto merged_threaded = merge_telemetry(threaded);
  ASSERT_NE(merged_serial, nullptr);
  ASSERT_NE(merged_threaded, nullptr);
  EXPECT_TRUE(merged_serial->counters_equal(*merged_threaded));

  // The merge actually accumulated: 4 jobs' worth of traffic, not 1.
  std::uint64_t merged_enq = 0, one_job_enq = 0;
  for (std::uint32_t s = 0; s < merged_serial->n_slots(); ++s) {
    merged_enq += merged_serial->counters(s).enq_pkts;
    one_job_enq += serial[0].telemetry->counters(s).enq_pkts;
  }
  EXPECT_GT(one_job_enq, 0u);
  EXPECT_GT(merged_enq, one_job_enq);
}

// ---------------------------------------------------------------------------
// Collector mechanics: epoch cadence, bounded ring with oldest-first reads,
// explicit dropped-epoch accounting, end-of-run bookend.
// ---------------------------------------------------------------------------

TEST(telemetry_collector_test, epoch_ring_wraps_with_explicit_drop_count) {
  sim_env env(1);
  telemetry_plane plane(0);
  const std::uint32_t slot = plane.add_slot(telemetry_kind::other);
  telemetry_hot_counters* c = plane.slot_counters(slot).hot;

  telemetry_collector col(env.events, plane, from_us(10), /*capacity=*/4);
  col.start();  // baseline snapshot at t=0
  env.events.run_until(from_us(95));  // epochs fire at 10..90us: 9 snapshots
  c->enq_pkts = 42;  // arrives only in the final bookend snapshot
  col.finish();

  EXPECT_EQ(col.recorded_epochs(), 1u + 9u + 1u);
  EXPECT_EQ(col.n_epochs(), 4u);
  EXPECT_EQ(col.dropped_epochs(), 7u);
  for (std::size_t i = 1; i < col.n_epochs(); ++i) {
    EXPECT_GT(col.epoch_at(i).at, col.epoch_at(i - 1).at) << "epoch " << i;
  }
  EXPECT_EQ(col.epoch_at(col.n_epochs() - 1).counters(slot).enq_pkts, 42u);
  EXPECT_EQ(col.epoch_at(col.n_epochs() - 2).counters(slot).enq_pkts, 0u);

  // finish() is idempotent at one timestamp (no duplicate bookend).
  col.finish();
  EXPECT_EQ(col.recorded_epochs(), 11u);
}

// ---------------------------------------------------------------------------
// JSON emission smoke test: the document exists, carries both sections, and
// only non-idle slots appear.
// ---------------------------------------------------------------------------

TEST(telemetry_json, summary_and_timeseries_document) {
  SKIP_WITHOUT_TELEMETRY();
  fabric_params fp;
  fp.proto = protocol::ndp;
  tele_bed tb(7, 4, fp);
  telemetry_collector col(tb.env.events, tb.plane(), from_us(50));
  col.start();
  run_permutation_workload(tb, protocol::ndp);
  col.finish();

  const char* path = "test_telemetry_out.json";
  ASSERT_TRUE(write_telemetry_json(path, tb.plane(), &col));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  EXPECT_NE(doc.find("\"summary\""), std::string::npos);
  EXPECT_NE(doc.find("\"timeseries\""), std::string::npos);
  EXPECT_NE(doc.find("\"depth_pkts\""), std::string::npos);
  EXPECT_NE(doc.find("\"utilization\""), std::string::npos);
  EXPECT_NE(doc.find("\"stale_drops\""), std::string::npos);
  std::remove(path);
}

// ---------------------------------------------------------------------------
// Campaign-scale reduction: plane.totals(kind) must agree with a manual
// per-slot sum, and telemetry_summary::from_plane (the fct_summary spill
// view) must be exactly those totals.
// ---------------------------------------------------------------------------

TEST(telemetry_totals, per_kind_totals_match_manual_slot_sum) {
  SKIP_WITHOUT_TELEMETRY();
  fabric_params fp;
  fp.proto = protocol::ndp;
  tele_bed tb(17, 4, fp);
  run_permutation_workload(tb, protocol::ndp);
  const telemetry_plane& plane = tb.plane();

  std::size_t armed = 0;
  for (std::uint32_t slot = 0; slot < plane.n_slots(); ++slot) {
    if (plane.info(slot).armed) ++armed;
  }
  EXPECT_EQ(plane.armed_slots(), armed);
  EXPECT_GT(armed, 0u);

  for (const telemetry_kind kind :
       {telemetry_kind::queue, telemetry_kind::pipe, telemetry_kind::demux}) {
    std::uint64_t enq_pkts = 0, enq_bytes = 0, deq_pkts = 0, drop_pkts = 0,
                  trim_bytes = 0, mark_pkts = 0, stale_drops = 0;
    for (std::uint32_t slot = 0; slot < plane.n_slots(); ++slot) {
      const auto& info = plane.info(slot);
      if (!info.armed || info.kind != kind) continue;
      const telemetry_counters c = plane.counters(slot);
      enq_pkts += c.enq_pkts;
      enq_bytes += c.enq_bytes;
      deq_pkts += c.deq_pkts;
      drop_pkts += c.drop_pkts;
      trim_bytes += c.trim_bytes;
      mark_pkts += c.mark_pkts;
      stale_drops += c.stale_drops;
    }
    const telemetry_counters t = plane.totals(kind);
    EXPECT_EQ(t.enq_pkts, enq_pkts) << to_string(kind);
    EXPECT_EQ(t.enq_bytes, enq_bytes) << to_string(kind);
    EXPECT_EQ(t.deq_pkts, deq_pkts) << to_string(kind);
    EXPECT_EQ(t.drop_pkts, drop_pkts) << to_string(kind);
    EXPECT_EQ(t.trim_bytes, trim_bytes) << to_string(kind);
    EXPECT_EQ(t.mark_pkts, mark_pkts) << to_string(kind);
    EXPECT_EQ(t.stale_drops, stale_drops) << to_string(kind);
  }
  EXPECT_GT(plane.totals(telemetry_kind::queue).enq_pkts, 0u);
  EXPECT_GT(plane.totals(telemetry_kind::pipe).enq_pkts, 0u);
  EXPECT_GT(plane.totals(telemetry_kind::demux).enq_pkts, 0u);

  const telemetry_summary ts = telemetry_summary::from_plane(plane);
  EXPECT_TRUE(ts.present);
  EXPECT_EQ(ts.armed_slots, plane.armed_slots());
  EXPECT_EQ(ts.queues, plane.totals(telemetry_kind::queue));
  EXPECT_EQ(ts.pipes, plane.totals(telemetry_kind::pipe));
  EXPECT_EQ(ts.demuxes, plane.totals(telemetry_kind::demux));
}

}  // namespace
}  // namespace ndpsim
