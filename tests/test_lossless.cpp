#include <gtest/gtest.h>

#include "net/fifo_queues.h"
#include "net/lossless.h"
#include "net/pipe.h"
#include "test_util.h"

namespace ndpsim {
namespace {

using testing::make_data;
using testing::recording_sink;

// Minimal PFC chain: upstream NIC queue -> pipe -> pfc_ingress -> egress
// queue -> pipe -> sink.  The egress queue can be paused (jammed) to build
// backlog attributed to the ingress.
struct pfc_chain {
  explicit pfc_chain(sim_env& env, std::uint64_t xoff, std::uint64_t xon)
      : nic(env, gbps(10), "nic"),
        wire_up(env, from_us(1), "wire_up"),
        egress(env, gbps(10), 1000 * 9000, "egress"),
        wire_down(env, from_us(1), "wire_down"),
        sink(env),
        ingress(env, &nic, from_us(1), xoff, xon, "pfc") {
    egress.set_depart_hook(&pfc_ingress::credit_on_depart);
    rt.push_back(&nic);
    rt.push_back(&wire_up);
    rt.push_back(&ingress);
    rt.push_back(&egress);
    rt.push_back(&wire_down);
    rt.push_back(&sink);
  }
  host_priority_queue nic;
  pipe wire_up;
  drop_tail_queue egress;
  pipe wire_down;
  recording_sink sink;
  pfc_ingress ingress;
  owned_route rt;
};

TEST(pfc, no_pause_below_xoff) {
  sim_env env;
  pfc_chain c(env, 5 * 9000, 3 * 9000);
  for (std::uint64_t i = 1; i <= 4; ++i) send_to_next_hop(*make_data(env, &c.rt, 9000, i));
  env.events.run_all();
  EXPECT_EQ(c.ingress.pauses_sent(), 0u);
  EXPECT_EQ(c.sink.count(), 4u);
}

TEST(pfc, xoff_pauses_upstream_and_xon_resumes) {
  sim_env env;
  pfc_chain c(env, 3 * 9000, 1 * 9000);
  c.egress.set_paused(true);  // jam the egress so ingress accounting builds
  for (std::uint64_t i = 1; i <= 8; ++i) send_to_next_hop(*make_data(env, &c.rt, 9000, i));
  env.events.run_until(from_ms(1));
  EXPECT_EQ(c.ingress.pauses_sent(), 1u);
  EXPECT_TRUE(c.nic.paused());
  // Some packets are stuck in the NIC behind the pause.
  EXPECT_GT(c.nic.buffered_packets(), 0u);

  c.egress.set_paused(false);  // unjam: egress drains, credits ingress
  env.events.run_all();
  EXPECT_FALSE(c.nic.paused());
  EXPECT_EQ(c.sink.count(), 8u);  // lossless: everything arrives
  EXPECT_EQ(c.egress.stats().dropped, 0u);
  EXPECT_EQ(env.pool.outstanding(), 0u);
}

TEST(pfc, accounting_credits_on_departure) {
  sim_env env;
  pfc_chain c(env, 100 * 9000, 50 * 9000);
  for (std::uint64_t i = 1; i <= 3; ++i) send_to_next_hop(*make_data(env, &c.rt, 9000, i));
  env.events.run_all();
  EXPECT_EQ(c.ingress.buffered_bytes(), 0u);  // all departed
}

TEST(pfc, pause_arrives_after_propagation_delay) {
  sim_env env;
  pfc_chain c(env, 1 * 9000, 0);
  c.egress.set_paused(true);
  // Two packets: the second arrival pushes accounting over 9000 bytes.
  send_to_next_hop(*make_data(env, &c.rt, 9000, 1));
  send_to_next_hop(*make_data(env, &c.rt, 9000, 2));
  // Arrival at ingress: 7.2 + 1 = 8.2us (first), 15.4us (second). The pause
  // is sent at 15.4+1e... it crosses XOFF at the second arrival and reaches
  // the NIC one link delay (1us) later.
  env.events.run_until(from_us(16.0));
  EXPECT_FALSE(c.nic.paused());
  env.events.run_until(from_us(17.0));
  EXPECT_TRUE(c.nic.paused());
}

TEST(pfc, head_of_line_blocking_hits_innocent_traffic) {
  // Two NICs feed one ingress-accounted port... simplified: one NIC paused by
  // PFC cannot send even packets destined to an uncongested output — the
  // essence of PFC collateral damage.
  sim_env env;
  pfc_chain c(env, 2 * 9000, 1 * 9000);
  c.egress.set_paused(true);
  for (std::uint64_t i = 1; i <= 6; ++i) send_to_next_hop(*make_data(env, &c.rt, 9000, i));
  env.events.run_until(from_ms(1));
  ASSERT_TRUE(c.nic.paused());
  // An "innocent" packet through the same NIC is now stuck behind the pause.
  recording_sink other(env);
  owned_route r2;
  r2.push_back(&c.nic);
  r2.push_back(&other);
  send_to_next_hop(*make_data(env, &r2, 9000, 99));
  env.events.run_until(from_ms(2));
  EXPECT_EQ(other.count(), 0u);  // blocked although its path is idle
  c.egress.set_paused(false);
  env.events.run_all();
  EXPECT_EQ(other.count(), 1u);
}

}  // namespace
}  // namespace ndpsim
