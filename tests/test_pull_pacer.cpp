// Direct unit tests of the per-host pull pacer: pacing rate, DRR fairness,
// strict priority classes, purge, and rate conservation under jitter.
#include <gtest/gtest.h>

#include "host/artifacts.h"
#include "ndp/ndp_sink.h"
#include "ndp/ndp_source.h"
#include "ndp/pull_pacer.h"
#include "net/fifo_queues.h"
#include "topo/micro_topo.h"
#include "test_util.h"

namespace ndpsim {
namespace {

queue_factory hostq_factory(sim_env& env) {
  return [&env](link_level, std::size_t, linkspeed_bps rate,
                const std::string& name) -> std::unique_ptr<queue_base> {
    return std::make_unique<host_priority_queue>(env, rate, name);
  };
}

// Harness: a sink bound to a recording control route, so issued pulls can be
// observed directly without a full connection (the collector swallows the
// pulls before they would reach the demux terminal).
struct sink_rig {
  sink_rig(sim_env& env, pull_pacer& pacer, std::uint32_t fid,
           std::uint8_t cls = 0)
      : collector(env), sink(env, pacer, {9000, cls}, fid) {
    mp.add({}, {&collector});
    sink.bind(mp.set(), 1, 0);
  }
  testing::recording_sink collector;
  manual_paths mp;
  ndp_sink sink;
};

TEST(pull_pacer, paces_at_mss_serialization_interval) {
  sim_env env;
  pull_pacer pacer(env, gbps(10));
  sink_rig rig(env, pacer, 1);
  for (int i = 0; i < 5; ++i) pacer.enqueue(rig.sink);
  env.events.run_all();
  ASSERT_EQ(rig.collector.count(), 5u);
  // First pull immediate; the rest spaced by 7.2us (9000B at 10G).
  EXPECT_EQ(rig.collector.arrivals()[0].at, 0);
  for (int i = 1; i < 5; ++i) {
    EXPECT_EQ(rig.collector.arrivals()[i].at -
                  rig.collector.arrivals()[i - 1].at,
              from_us(7.2));
  }
}

TEST(pull_pacer, pull_numbers_increment_per_connection) {
  sim_env env;
  pull_pacer pacer(env, gbps(10));
  sink_rig a(env, pacer, 1), b(env, pacer, 2);
  pacer.enqueue(a.sink);
  pacer.enqueue(b.sink);
  pacer.enqueue(a.sink);
  env.events.run_all();
  // a got pull numbers 1,2; b got 1.
  std::vector<std::uint64_t> a_pulls, b_pulls;
  for (const auto& x : a.collector.arrivals()) a_pulls.push_back(x.seqno);
  ASSERT_EQ(a.collector.count(), 2u);
  ASSERT_EQ(b.collector.count(), 1u);
}

TEST(pull_pacer, drr_alternates_between_backlogged_connections) {
  sim_env env;
  pull_pacer pacer(env, gbps(10));
  sink_rig a(env, pacer, 1), b(env, pacer, 2);
  for (int i = 0; i < 6; ++i) pacer.enqueue(a.sink);
  for (int i = 0; i < 6; ++i) pacer.enqueue(b.sink);
  env.events.run_all();
  EXPECT_EQ(a.collector.count(), 6u);
  EXPECT_EQ(b.collector.count(), 6u);
  // Fair round robin: after any prefix the counts differ by at most 1...
  // verify by merging timestamps.
  std::vector<std::pair<simtime_t, int>> merged;
  for (const auto& x : a.collector.arrivals()) merged.emplace_back(x.at, 0);
  for (const auto& x : b.collector.arrivals()) merged.emplace_back(x.at, 1);
  std::sort(merged.begin(), merged.end());
  int ca = 0, cb = 0;
  for (const auto& [t, who] : merged) {
    (who == 0 ? ca : cb)++;
    EXPECT_LE(std::abs(ca - cb), 1);
  }
}

TEST(pull_pacer, strict_priority_across_classes) {
  sim_env env;
  pull_pacer pacer(env, gbps(10));
  sink_rig low(env, pacer, 1, 0), high(env, pacer, 2, 2);
  for (int i = 0; i < 4; ++i) pacer.enqueue(low.sink);
  for (int i = 0; i < 4; ++i) pacer.enqueue(high.sink);
  env.events.run_all();
  // All high-class pulls go out before any remaining low-class pull that was
  // queued at the same time (except the first low pull, which may already
  // have been released before the high pulls arrived — here everything is
  // enqueued at t=0, so high strictly precedes low).
  ASSERT_EQ(low.collector.count(), 4u);
  ASSERT_EQ(high.collector.count(), 4u);
  const simtime_t last_high = high.collector.arrivals().back().at;
  int low_before_last_high = 0;
  for (const auto& x : low.collector.arrivals()) {
    if (x.at < last_high) ++low_before_last_high;
  }
  EXPECT_LE(low_before_last_high, 1);
}

TEST(pull_pacer, purge_discards_pending_pulls) {
  sim_env env;
  pull_pacer pacer(env, gbps(10));
  sink_rig a(env, pacer, 1), b(env, pacer, 2);
  for (int i = 0; i < 5; ++i) pacer.enqueue(a.sink);
  for (int i = 0; i < 5; ++i) pacer.enqueue(b.sink);
  pacer.purge(a.sink);
  env.events.run_all();
  // At most one of a's pulls may already have been released at t=0.
  EXPECT_LE(a.collector.count(), 1u);
  EXPECT_EQ(b.collector.count(), 5u);
  EXPECT_EQ(pacer.backlog(), 0u);
}

TEST(pull_pacer, jitter_conserves_long_run_rate) {
  sim_env env(9);
  pull_pacer pacer(env, gbps(10));
  pacer.set_interval_jitter(make_pull_jitter(env, 1500));
  sink_rig rig(env, pacer, 1);
  const int n = 5000;
  for (int i = 0; i < n; ++i) pacer.enqueue(rig.sink);
  env.events.run_all();
  ASSERT_EQ(rig.collector.count(), static_cast<std::size_t>(n));
  const simtime_t span = rig.collector.arrivals().back().at;
  const double mean_gap_us = to_us(span) / (n - 1);
  // Catch-up keeps the mean release interval on the nominal 7.2us despite
  // per-pull jitter (this is what makes Fig 13 come out flat).
  EXPECT_NEAR(mean_gap_us, 7.2, 0.15);
}

TEST(pull_pacer, idle_then_enqueue_releases_immediately) {
  sim_env env;
  pull_pacer pacer(env, gbps(10));
  sink_rig rig(env, pacer, 1);
  env.events.run_until(from_ms(1));
  pacer.enqueue(rig.sink);
  env.events.run_all();
  ASSERT_EQ(rig.collector.count(), 1u);
  EXPECT_EQ(rig.collector.arrivals()[0].at, from_ms(1));
}

}  // namespace
}  // namespace ndpsim
