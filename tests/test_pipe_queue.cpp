#include <gtest/gtest.h>

#include "net/fifo_queues.h"
#include "net/pipe.h"
#include "test_util.h"

namespace ndpsim {
namespace {

using testing::make_data;
using testing::recording_sink;

TEST(pipe, delays_by_propagation) {
  sim_env env;
  recording_sink sink(env);
  pipe pp(env, from_us(1));
  owned_route r;
  r.push_back(&pp);
  r.push_back(&sink);
  packet* p = make_data(env, &r);
  send_to_next_hop(*p);
  env.events.run_all();
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_EQ(sink.arrivals()[0].at, from_us(1));
}

TEST(pipe, preserves_order_and_spacing) {
  sim_env env;
  recording_sink sink(env);
  pipe pp(env, from_us(2));
  owned_route r;
  r.push_back(&pp);
  r.push_back(&sink);
  for (std::uint64_t i = 1; i <= 3; ++i) {
    packet* p = make_data(env, &r, 9000, i);
    env.events.run_until(from_us(i));  // stagger entries 1us apart
    send_to_next_hop(*p);
  }
  env.events.run_all();
  ASSERT_EQ(sink.count(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(sink.arrivals()[i].seqno, i + 1);
    EXPECT_EQ(sink.arrivals()[i].at, from_us(2 + 1 + i));
  }
}

TEST(drop_tail, serializes_at_line_rate) {
  sim_env env;
  recording_sink sink(env);
  drop_tail_queue q(env, gbps(10), 100 * 9000);
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);
  for (std::uint64_t i = 1; i <= 3; ++i) send_to_next_hop(*make_data(env, &r, 9000, i));
  env.events.run_all();
  ASSERT_EQ(sink.count(), 3u);
  // Store-and-forward: arrivals at 7.2, 14.4, 21.6 us.
  EXPECT_EQ(sink.arrivals()[0].at, from_us(7.2));
  EXPECT_EQ(sink.arrivals()[1].at, from_us(14.4));
  EXPECT_EQ(sink.arrivals()[2].at, from_us(21.6));
}

TEST(drop_tail, drops_when_full) {
  sim_env env;
  recording_sink sink(env);
  drop_tail_queue q(env, gbps(10), 2 * 9000);
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);
  // First packet goes into service immediately; two fill the buffer; the
  // fourth is dropped.
  for (std::uint64_t i = 1; i <= 4; ++i) send_to_next_hop(*make_data(env, &r, 9000, i));
  env.events.run_all();
  EXPECT_EQ(sink.count(), 3u);
  EXPECT_EQ(q.stats().dropped, 1u);
  EXPECT_EQ(env.pool.outstanding(), 0u);  // dropped packet was released
}

TEST(drop_tail, byte_capacity_not_packet_count) {
  sim_env env;
  recording_sink sink(env);
  drop_tail_queue q(env, gbps(10), 18000);
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);
  // 1 in service + buffer holds 12 x 1500 = 18000.
  for (std::uint64_t i = 1; i <= 14; ++i) send_to_next_hop(*make_data(env, &r, 1500, i));
  env.events.run_all();
  EXPECT_EQ(sink.count(), 13u);
  EXPECT_EQ(q.stats().dropped, 1u);
}

TEST(ecn_threshold, marks_ect_above_threshold) {
  sim_env env;
  recording_sink sink(env);
  ecn_threshold_queue q(env, gbps(10), 100 * 9000, 2 * 9000);
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);
  for (std::uint64_t i = 1; i <= 6; ++i) {
    packet* p = make_data(env, &r, 9000, i);
    p->set_flag(pkt_flag::ect);
    send_to_next_hop(*p);
  }
  env.events.run_all();
  ASSERT_EQ(sink.count(), 6u);
  // Packet 1 enters service; 2,3 fill up to the threshold; marking is
  // strictly-above, so 4 sees exactly K (unmarked) and 5,6 are marked.
  int marked = 0;
  for (const auto& a : sink.arrivals()) {
    if ((a.flags & pkt_flag::ce) != 0) ++marked;
  }
  EXPECT_EQ(marked, 2);
  EXPECT_EQ(q.stats().marked, 2u);
}

TEST(ecn_threshold, ignores_non_ect) {
  sim_env env;
  recording_sink sink(env);
  ecn_threshold_queue q(env, gbps(10), 100 * 9000, 0);
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);
  for (std::uint64_t i = 1; i <= 3; ++i) send_to_next_hop(*make_data(env, &r, 9000, i));
  env.events.run_all();
  for (const auto& a : sink.arrivals()) EXPECT_EQ(a.flags & pkt_flag::ce, 0);
}

TEST(red_ecn, marks_probabilistically_between_thresholds) {
  sim_env env(7);
  recording_sink sink(env);
  red_ecn_queue q(env, gbps(10), 1000 * 1500, 5 * 1500, 50 * 1500, 1.0);
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);
  for (std::uint64_t i = 1; i <= 200; ++i) {
    packet* p = make_data(env, &r, 1500, i);
    p->set_flag(pkt_flag::ect);
    send_to_next_hop(*p);
  }
  env.events.run_all();
  // Queue fills far beyond kmax, so most packets after the first few must be
  // marked — but the first five (below kmin) must not be.
  EXPECT_GT(q.stats().marked, 100u);
  int first_marked = -1;
  int idx = 0;
  for (const auto& a : sink.arrivals()) {
    if ((a.flags & pkt_flag::ce) != 0) {
      first_marked = idx;
      break;
    }
    ++idx;
  }
  EXPECT_GE(first_marked, 5);
}

TEST(host_priority, control_preempts_data) {
  sim_env env;
  recording_sink sink(env);
  host_priority_queue q(env, gbps(10));
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);
  // Fill with data, then inject a control packet: it must jump the queue
  // (but not preempt the packet already serializing).
  for (std::uint64_t i = 1; i <= 3; ++i) send_to_next_hop(*make_data(env, &r, 9000, i));
  packet* ack = env.pool.alloc();
  ack->type = packet_type::ndp_ack;
  ack->size_bytes = kHeaderBytes;
  ack->seqno = 99;
  ack->rt = &r;
  ack->next_hop = 0;
  send_to_next_hop(*ack);
  env.events.run_all();
  ASSERT_EQ(sink.count(), 4u);
  EXPECT_EQ(sink.arrivals()[0].seqno, 1u);   // already in service
  EXPECT_EQ(sink.arrivals()[1].seqno, 99u);  // control next
  EXPECT_EQ(sink.arrivals()[2].seqno, 2u);
}

TEST(queue_pausing, paused_queue_finishes_current_packet_only) {
  sim_env env;
  recording_sink sink(env);
  drop_tail_queue q(env, gbps(10), 100 * 9000);
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);
  send_to_next_hop(*make_data(env, &r, 9000, 1));
  send_to_next_hop(*make_data(env, &r, 9000, 2));
  q.set_paused(true);
  env.events.run_until(from_us(50));
  EXPECT_EQ(sink.count(), 1u);  // in-flight packet completed, next one held
  q.set_paused(false);
  env.events.run_all();
  EXPECT_EQ(sink.count(), 2u);
  // Resume happened at 50us; the second packet serialized from there.
  EXPECT_EQ(sink.arrivals()[1].at, from_us(57.2));
}

TEST(queue_stats, byte_and_packet_counters) {
  sim_env env;
  recording_sink sink(env);
  drop_tail_queue q(env, gbps(10), 100 * 9000);
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);
  send_to_next_hop(*make_data(env, &r, 9000, 1));
  send_to_next_hop(*make_data(env, &r, 1500, 2));
  env.events.run_all();
  EXPECT_EQ(q.stats().arrivals, 2u);
  EXPECT_EQ(q.stats().forwarded, 2u);
  EXPECT_EQ(q.stats().bytes_forwarded, 10500u);
}

}  // namespace
}  // namespace ndpsim
