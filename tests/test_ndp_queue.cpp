#include <gtest/gtest.h>

#include "ndp/ndp_queue.h"
#include "net/pipe.h"
#include "test_util.h"

namespace ndpsim {
namespace {

using testing::make_data;
using testing::recording_sink;

ndp_queue_config small_q(std::uint32_t data_pkts = 2,
                         std::uint32_t mtu = 9000) {
  ndp_queue_config c;
  c.data_capacity_bytes = data_pkts * mtu;
  c.header_capacity_bytes = data_pkts * mtu;
  return c;
}

TEST(ndp_queue, forwards_when_not_full) {
  sim_env env;
  recording_sink sink(env);
  ndp_queue q(env, gbps(10), small_q(8));
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);
  for (std::uint64_t i = 1; i <= 4; ++i) send_to_next_hop(*make_data(env, &r, 9000, i));
  env.events.run_all();
  EXPECT_EQ(sink.count(), 4u);
  EXPECT_EQ(q.stats().trimmed, 0u);
}

TEST(ndp_queue, trims_on_data_overflow_instead_of_dropping) {
  sim_env env;
  recording_sink sink(env);
  ndp_queue q(env, gbps(10), small_q(2));
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);
  // 1 in service + 2 buffered; the 4th and 5th overflow -> trimmed.
  for (std::uint64_t i = 1; i <= 5; ++i) send_to_next_hop(*make_data(env, &r, 9000, i));
  env.events.run_all();
  ASSERT_EQ(sink.count(), 5u);  // nothing lost: 3 data + 2 headers
  EXPECT_EQ(q.stats().trimmed, 2u);
  EXPECT_EQ(q.stats().dropped, 0u);
  int headers = 0;
  for (const auto& a : sink.arrivals()) {
    if ((a.flags & pkt_flag::trimmed) != 0) {
      ++headers;
      EXPECT_EQ(a.size_bytes, kHeaderBytes);
    }
  }
  EXPECT_EQ(headers, 2);
}

TEST(ndp_queue, trimmed_headers_overtake_queued_data) {
  sim_env env;
  recording_sink sink(env);
  ndp_queue q(env, gbps(10), small_q(2));
  q.set_paused(true);  // hold service so we control the order
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);
  for (std::uint64_t i = 1; i <= 4; ++i) send_to_next_hop(*make_data(env, &r, 9000, i));
  q.set_paused(false);
  env.events.run_all();
  ASSERT_EQ(sink.count(), 4u);
  // The trimmed header (seq 4 or a tail victim) must arrive before the later
  // data packets: first arrival is a header.
  EXPECT_NE(sink.arrivals()[0].flags & pkt_flag::trimmed, 0);
}

TEST(ndp_queue, wrr_limits_headers_per_data_packet) {
  sim_env env;
  recording_sink sink(env);
  ndp_queue_config cfg = small_q(4);
  cfg.wrr_headers_per_data = 2;  // tight ratio so the test is short
  ndp_queue q(env, gbps(10), cfg);
  q.set_paused(true);
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);
  // 4 data buffered; 6 control packets queued at higher priority.
  for (std::uint64_t i = 1; i <= 4; ++i) send_to_next_hop(*make_data(env, &r, 9000, i));
  for (std::uint64_t i = 100; i < 106; ++i) {
    packet* c = env.pool.alloc();
    c->type = packet_type::ndp_ack;
    c->size_bytes = kHeaderBytes;
    c->seqno = i;
    c->rt = &r;
    c->next_hop = 0;
    send_to_next_hop(*c);
  }
  q.set_paused(false);
  env.events.run_all();
  ASSERT_EQ(sink.count(), 10u);
  // Expect pattern: 2 headers, 1 data, 2 headers, 1 data, 2 headers, then
  // remaining data — never 3 headers in a row while data waits.
  int run = 0;
  for (const auto& a : sink.arrivals()) {
    if (a.type == packet_type::ndp_ack) {
      ++run;
      EXPECT_LE(run, 2);
    } else {
      run = 0;
    }
  }
}

TEST(ndp_queue, headers_drain_completely_when_no_data_waits) {
  sim_env env;
  recording_sink sink(env);
  ndp_queue_config cfg = small_q(4);
  cfg.wrr_headers_per_data = 1;
  ndp_queue q(env, gbps(10), cfg);
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);
  for (std::uint64_t i = 0; i < 5; ++i) {
    packet* c = env.pool.alloc();
    c->type = packet_type::ndp_pull;
    c->size_bytes = kHeaderBytes;
    c->rt = &r;
    c->next_hop = 0;
    send_to_next_hop(*c);
  }
  env.events.run_all();
  EXPECT_EQ(sink.count(), 5u);
}

TEST(ndp_queue, wrr_credit_only_charged_under_contention) {
  // Serving headers from an otherwise-empty port must not consume WRR
  // credit: when data shows up later, the full `wrr_headers_per_data` ratio
  // is still available to the headers already queued.  (If uncontended
  // service charged credit, the first dequeue after data arrived would be
  // forced to serve data even though no header ever delayed it.)
  sim_env env;
  recording_sink sink(env);
  ndp_queue_config cfg = small_q(8);
  cfg.wrr_headers_per_data = 2;
  ndp_queue q(env, gbps(10), cfg);
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);
  // Phase 1: five headers drain uncontended — more than the ratio.
  for (std::uint64_t i = 100; i < 105; ++i) {
    packet* c = env.pool.alloc();
    c->type = packet_type::ndp_ack;
    c->size_bytes = kHeaderBytes;
    c->seqno = i;
    c->rt = &r;
    c->next_hop = 0;
    send_to_next_hop(*c);
  }
  env.events.run_all();
  ASSERT_EQ(sink.count(), 5u);
  // Phase 2: contention — data and headers queued together while paused.
  q.set_paused(true);
  for (std::uint64_t i = 1; i <= 2; ++i) {
    send_to_next_hop(*make_data(env, &r, 9000, i));
  }
  for (std::uint64_t i = 200; i < 203; ++i) {
    packet* c = env.pool.alloc();
    c->type = packet_type::ndp_ack;
    c->size_bytes = kHeaderBytes;
    c->seqno = i;
    c->rt = &r;
    c->next_hop = 0;
    send_to_next_hop(*c);
  }
  q.set_paused(false);
  env.events.run_all();
  ASSERT_EQ(sink.count(), 10u);
  // The two headers of the ratio must both precede the first data packet —
  // phase 1 charged no credit.
  const auto& as = sink.arrivals();
  EXPECT_EQ(as[5].type, packet_type::ndp_ack);
  EXPECT_EQ(as[6].type, packet_type::ndp_ack);
  EXPECT_EQ(as[7].type, packet_type::ndp_data);
}

TEST(ndp_queue, random_trim_position_spreads_victims) {
  // With the 50% coin, both "arriving" and "tail" should get trimmed over
  // many trials; with the coin disabled, the arriving packet is always the
  // victim (CP behaviour).
  for (bool random_trim : {true, false}) {
    sim_env env(42);
    recording_sink sink(env);
    ndp_queue_config cfg = small_q(1);
    cfg.random_trim_position = random_trim;
    ndp_queue q(env, gbps(10), cfg);
    q.set_paused(true);
    owned_route r;
    r.push_back(&q);
    r.push_back(&sink);
    int arriving_trimmed = 0;
    int tail_trimmed = 0;
    for (int trial = 0; trial < 64; ++trial) {
      // seq 1 sits in the buffer; seq 2 arrives into a full queue.
      send_to_next_hop(*make_data(env, &r, 9000, 1));
      send_to_next_hop(*make_data(env, &r, 9000, 2));
      q.set_paused(false);
      env.events.run_all();
      q.set_paused(true);
      // Exactly one of the two was trimmed.
      const auto& as = sink.arrivals();
      const auto& hdr =
          (as[as.size() - 1].flags & pkt_flag::trimmed) ? as[as.size() - 1]
                                                        : as[as.size() - 2];
      if (hdr.seqno == 2) {
        ++arriving_trimmed;
      } else {
        ++tail_trimmed;
      }
    }
    if (random_trim) {
      EXPECT_GT(arriving_trimmed, 8);
      EXPECT_GT(tail_trimmed, 8);
    } else {
      EXPECT_EQ(arriving_trimmed, 64);
      EXPECT_EQ(tail_trimmed, 0);
    }
  }
}

TEST(ndp_queue, trim_disabled_drops_like_droptail) {
  sim_env env;
  recording_sink sink(env);
  ndp_queue_config cfg = small_q(1);
  cfg.enable_trimming = false;
  ndp_queue q(env, gbps(10), cfg);
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);
  for (std::uint64_t i = 1; i <= 4; ++i) send_to_next_hop(*make_data(env, &r, 9000, i));
  env.events.run_all();
  EXPECT_EQ(sink.count(), 2u);
  EXPECT_EQ(q.stats().dropped, 2u);
  EXPECT_EQ(q.stats().trimmed, 0u);
  EXPECT_EQ(env.pool.outstanding(), 0u);
}

TEST(ndp_queue, header_queue_overflow_drops_control_without_rts) {
  sim_env env;
  recording_sink sink(env);
  ndp_queue_config cfg;
  cfg.data_capacity_bytes = 9000;
  cfg.header_capacity_bytes = 2 * kHeaderBytes;
  cfg.enable_rts = true;  // control packets cannot bounce regardless
  ndp_queue q(env, gbps(10), cfg);
  q.set_paused(true);
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);
  for (int i = 0; i < 4; ++i) {
    packet* c = env.pool.alloc();
    c->type = packet_type::ndp_ack;
    c->size_bytes = kHeaderBytes;
    c->rt = &r;
    c->next_hop = 0;
    send_to_next_hop(*c);
  }
  q.set_paused(false);
  env.events.run_all();
  EXPECT_EQ(sink.count(), 2u);
  EXPECT_EQ(q.stats().dropped, 2u);
}

TEST(ndp_queue, rts_bounces_header_back_to_source) {
  // Build a 2-queue forward path and its reverse; overflow the header queue
  // at the second hop and verify the packet comes back to the source side
  // with src/dst swapped and the bounced flag set.
  sim_env env;
  recording_sink src_endpoint(env);  // receives the bounce
  recording_sink dst_endpoint(env);

  ndp_queue_config tiny;
  tiny.data_capacity_bytes = 9000;      // 1 packet in flight + overflow
  tiny.header_capacity_bytes = kHeaderBytes;  // 1 header only
  ndp_queue q_a(env, gbps(10), small_q(8), "A.up");
  ndp_queue q_sw(env, gbps(10), tiny, "SW.down");
  ndp_queue q_b(env, gbps(10), small_q(8), "B.up");
  ndp_queue q_sw_rev(env, gbps(10), small_q(8), "SW.down.rev");
  pipe p1(env, from_us(1)), p2(env, from_us(1)), p3(env, from_us(1)),
      p4(env, from_us(1));

  owned_route fwd;  // A -> switch -> B
  fwd.push_back(&q_a);
  fwd.push_back(&p1);
  fwd.push_back(&q_sw);
  fwd.push_back(&p2);
  fwd.push_back(&dst_endpoint);
  owned_route rev;  // B -> switch -> A
  rev.push_back(&q_b);
  rev.push_back(&p3);
  rev.push_back(&q_sw_rev);
  rev.push_back(&p4);
  rev.push_back(&src_endpoint);
  fwd.set_reverse(&rev);
  rev.set_reverse(&fwd);

  q_sw.set_paused(true);  // jam the congested port
  // Packet 1 fills the data queue, packet 2 is trimmed into the one-header
  // header queue, packets 3 and 4 are trimmed with nowhere to go -> bounced.
  for (std::uint64_t i = 1; i <= 4; ++i) {
    packet* p = make_data(env, &fwd, 9000, i);
    p->src = 7;
    p->dst = 9;
    p->reverse_rt = &rev;
    send_to_next_hop(*p);
  }
  env.events.run_all();

  EXPECT_EQ(q_sw.stats().bounced, 2u);
  ASSERT_EQ(src_endpoint.count(), 2u);
  const auto& b = src_endpoint.arrivals()[0];
  EXPECT_NE(b.flags & pkt_flag::bounced, 0);
  EXPECT_NE(b.flags & pkt_flag::trimmed, 0);
  EXPECT_EQ(b.size_bytes, kHeaderBytes);
  q_sw.set_paused(false);
  env.events.run_all();
  EXPECT_EQ(env.pool.outstanding(), 0u);
}

TEST(ndp_queue, bounced_header_is_never_bounced_twice) {
  sim_env env;
  recording_sink sink(env);
  ndp_queue_config tiny;
  tiny.data_capacity_bytes = 9000;
  tiny.header_capacity_bytes = kHeaderBytes;
  ndp_queue q(env, gbps(10), tiny);
  q.set_paused(true);
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);
  // A pre-bounced header arriving at a full header queue must be dropped.
  packet* h = env.pool.alloc();
  packet* h2 = env.pool.alloc();
  for (packet* p : {h, h2}) {
    p->type = packet_type::ndp_data;
    p->set_flag(pkt_flag::trimmed);
    p->set_flag(pkt_flag::bounced);
    p->size_bytes = kHeaderBytes;
    p->rt = &r;
    p->reverse_rt = &r;  // even with a reverse route present
    p->next_hop = 0;
    send_to_next_hop(*p);
  }
  q.set_paused(false);
  env.events.run_all();
  EXPECT_EQ(sink.count(), 1u);
  EXPECT_EQ(q.stats().dropped, 1u);
  EXPECT_EQ(q.stats().bounced, 0u);
}

TEST(ndp_queue, trim_packet_helper) {
  packet p;
  p.type = packet_type::ndp_data;
  p.size_bytes = 9000;
  p.payload_bytes = 9000 - kHeaderBytes;
  ndp_queue::trim_packet(p);
  EXPECT_EQ(p.size_bytes, kHeaderBytes);
  EXPECT_EQ(p.payload_bytes, 0u);
  EXPECT_TRUE(p.has_flag(pkt_flag::trimmed));
  EXPECT_EQ(p.priority, 1);
}

}  // namespace
}  // namespace ndpsim
