#include <gtest/gtest.h>

#include "host/artifacts.h"
#include "host/rpc_latency_model.h"

namespace ndpsim {
namespace {

TEST(rpc_latency, ndp_median_matches_paper_fig8) {
  sim_env env(1);
  const auto s = simulate_rpc_latency(env, rpc_stack::ndp, true, 5000);
  // Paper: 62us median for a 1KB RPC over the DPDK NDP stack.
  EXPECT_NEAR(s.median(), 62.0, 8.0);
}

TEST(rpc_latency, paper_orderings_hold) {
  sim_env env(2);
  const double ndp =
      simulate_rpc_latency(env, rpc_stack::ndp, true, 3000).median();
  const double tfo_ns =
      simulate_rpc_latency(env, rpc_stack::tfo, false, 3000).median();
  const double tcp_ns =
      simulate_rpc_latency(env, rpc_stack::tcp, false, 3000).median();
  const double tfo = simulate_rpc_latency(env, rpc_stack::tfo, true, 3000).median();
  const double tcp = simulate_rpc_latency(env, rpc_stack::tcp, true, 3000).median();
  // Fig 8 orderings: NDP < TFO(no sleep) < TCP(no sleep) < TFO < TCP.
  EXPECT_LT(ndp, tfo_ns);
  EXPECT_LT(tfo_ns, tcp_ns);
  EXPECT_LT(tcp_ns, tfo);
  EXPECT_LT(tfo, tcp);
  // "TFO takes four times longer and regular TCP five times longer".
  EXPECT_NEAR(tfo / ndp, 4.0, 1.2);
  EXPECT_NEAR(tcp / ndp, 5.0, 1.5);
  // With sleep disabled, "NDP's latency is still just over half that of TFO
  // and a third that of TCP".
  EXPECT_NEAR(tfo_ns / ndp, 2.0, 0.6);
  EXPECT_NEAR(tcp_ns / ndp, 3.0, 0.9);
}

TEST(rpc_latency, deep_sleep_only_hurts_interrupt_stacks) {
  sim_env env(3);
  const double ndp_sleep =
      simulate_rpc_latency(env, rpc_stack::ndp, true, 2000).median();
  const double ndp_nosleep =
      simulate_rpc_latency(env, rpc_stack::ndp, false, 2000).median();
  EXPECT_NEAR(ndp_sleep, ndp_nosleep, 4.0);  // polling core never sleeps
}

TEST(pull_jitter, median_stays_on_target) {
  sim_env env(4);
  auto j9000 = make_pull_jitter(env, 9000);
  auto j1500 = make_pull_jitter(env, 1500);
  sample_set s9, s1;
  for (int i = 0; i < 20000; ++i) {
    s9.add(to_us(j9000(from_us(7.2))));
    s1.add(to_us(j1500(from_us(1.2))));
  }
  // Fig 12: medians match the target spacing for both packet sizes.
  EXPECT_NEAR(s9.median(), 7.2, 0.4);
  EXPECT_NEAR(s1.median(), 1.2, 0.25);
}

TEST(pull_jitter, small_packets_have_heavier_variance) {
  sim_env env(5);
  auto j9000 = make_pull_jitter(env, 9000);
  auto j1500 = make_pull_jitter(env, 1500);
  sample_set s9, s1;
  for (int i = 0; i < 20000; ++i) {
    s9.add(to_us(j9000(from_us(7.2))) / 7.2);
    s1.add(to_us(j1500(from_us(1.2))) / 1.2);
  }
  // Normalized 99th percentile: 1500B tail is several times the target;
  // 9000B stays tight (paper Fig 12's contrast).
  EXPECT_GT(s1.quantile(0.99), 2.5);
  EXPECT_LT(s9.quantile(0.99), 1.6);
  // And some 1500B gaps come early (back-to-back release).
  EXPECT_LT(s1.quantile(0.05), 0.75);
}

TEST(host_delay, default_covers_ten_packets_at_10g) {
  host_delay_model m;
  // 10 extra 9K packets at 10G = 72us RTT = 36us per direction (§6, Fig 11:
  // prototype needs IW 25 where the simulator needs 15).
  EXPECT_EQ(m.per_direction, from_us(36));
}

}  // namespace
}  // namespace ndpsim
