// Cross-module integration tests: full protocols over the full FatTree with
// the real harness — small versions of the paper's headline claims.
#include <gtest/gtest.h>

#include "harness/experiments.h"
#include "workload/traffic_matrix.h"

namespace ndpsim {
namespace {

TEST(integration, ndp_permutation_beats_singlepath_tcp_by_a_lot) {
  flow_options o;
  fabric_params ndp_fp;
  ndp_fp.proto = protocol::ndp;
  auto ndp_bed = make_fat_tree_testbed(5, 4, ndp_fp);
  const auto ndp_res =
      run_permutation(*ndp_bed, protocol::ndp, o, from_ms(2), from_ms(4));

  fabric_params tcp_fp;
  tcp_fp.proto = protocol::tcp;
  auto tcp_bed = make_fat_tree_testbed(5, 4, tcp_fp);
  flow_options to;
  to.handshake = false;
  const auto tcp_res =
      run_permutation(*tcp_bed, protocol::tcp, to, from_ms(2), from_ms(4));

  // Fig 14's qualitative claim: per-flow ECMP TCP leaves much of the fabric
  // idle (collisions); NDP stays close to full utilization.
  EXPECT_GT(ndp_res.utilization, 0.85);
  EXPECT_LT(tcp_res.utilization, 0.85);
  EXPECT_GT(ndp_res.utilization, tcp_res.utilization + 0.10);
  // And NDP's worst flow does far better than TCP's worst flow.
  EXPECT_GT(ndp_res.flow_gbps.front(), tcp_res.flow_gbps.front());
}

TEST(integration, ndp_incast_near_optimal_dctcp_close_mptcp_poor) {
  const std::size_t n = 12;  // k=4 fat tree has 16 hosts
  const std::uint64_t bytes = 45 * 8936;
  const double opt =
      incast_optimal_us(n, bytes, 9000, gbps(10), from_us(40));

  auto run = [&](protocol proto, flow_options o) {
    fabric_params fp;
    fp.proto = proto;
    auto bed = make_fat_tree_testbed(13, 4, fp);
    const auto senders =
        incast_senders(bed->env.rng, bed->topo->n_hosts(), 1, n);
    return run_incast(*bed, proto, senders, 1, bytes, o, from_sec(5));
  };

  flow_options ndp_o;
  const auto ndp = run(protocol::ndp, ndp_o);
  flow_options tcp_o;
  tcp_o.min_rto = from_ms(10);
  const auto mptcp = run(protocol::mptcp, tcp_o);
  const auto dctcp = run(protocol::dctcp, tcp_o);

  EXPECT_EQ(ndp.completed, n);
  EXPECT_EQ(mptcp.completed, n);
  EXPECT_EQ(dctcp.completed, n);
  // Fig 16 shape: NDP within a few percent of optimal; DCTCP close behind;
  // MPTCP crippled by synchronized tail losses.
  EXPECT_LT(ndp.last_fct_us, opt * 1.25);
  EXPECT_LT(dctcp.last_fct_us, opt * 2.0);
  EXPECT_GT(mptcp.last_fct_us, ndp.last_fct_us * 1.5);
  // Fairness: NDP's fastest and slowest incast flows are close (paper: the
  // slowest takes at most ~20% longer than the fastest).
  EXPECT_LT(ndp.last_fct_us / std::max(1.0, ndp.first_fct_us), 1.6);
}

TEST(integration, trimming_is_where_the_paper_says) {
  // §3 "Congestion Control": almost all trimming happens on ToR->host
  // links; uplinks see essentially nothing under permutation traffic.
  fabric_params fp;
  fp.proto = protocol::ndp;
  auto bed = make_fat_tree_testbed(21, 4, fp);
  flow_options o;
  (void)run_permutation(*bed, protocol::ndp, o, from_ms(2), from_ms(4));
  const auto up = bed->topo->aggregate_stats(link_level::agg_up);
  const auto down = bed->topo->aggregate_stats(link_level::tor_down);
  EXPECT_GE(down.trimmed + up.trimmed, 0u);
  if (down.trimmed + up.trimmed > 0) {
    const double up_frac =
        static_cast<double>(up.trimmed) /
        static_cast<double>(up.trimmed + down.trimmed);
    EXPECT_LT(up_frac, 0.2);
  }
}

TEST(integration, dcqcn_completes_incast_losslessly) {
  fabric_params fp;
  fp.proto = protocol::dcqcn;
  auto bed = make_fat_tree_testbed(3, 4, fp);
  const auto senders = incast_senders(bed->env.rng, bed->topo->n_hosts(), 2, 8);
  flow_options o;
  const auto res =
      run_incast(*bed, protocol::dcqcn, senders, 2, 30 * 8936, o, from_sec(5));
  EXPECT_EQ(res.completed, 8u);
  // Lossless fabric: zero drops anywhere.
  for (auto level : {link_level::tor_up, link_level::agg_up,
                     link_level::core_down, link_level::agg_down,
                     link_level::tor_down}) {
    EXPECT_EQ(bed->topo->aggregate_stats(level).dropped, 0u)
        << to_string(level);
  }
}

TEST(integration, phost_worse_than_ndp_on_incast) {
  const std::size_t n = 12;
  const std::uint64_t bytes = 30 * 8936;
  auto run = [&](protocol proto) {
    fabric_params fp;
    fp.proto = proto;
    auto bed = make_fat_tree_testbed(31, 4, fp);
    const auto senders =
        incast_senders(bed->env.rng, bed->topo->n_hosts(), 5, n);
    flow_options o;
    return run_incast(*bed, proto, senders, 5, bytes, o, from_sec(10));
  };
  const auto ndp = run(protocol::ndp);
  const auto ph = run(protocol::phost);
  EXPECT_EQ(ndp.completed, n);
  EXPECT_EQ(ph.completed, n);
  // §6.2: without trimming, first-RTT drops cost pHost token timeouts.
  EXPECT_GT(ph.last_fct_us, ndp.last_fct_us * 1.3);
}

}  // namespace
}  // namespace ndpsim
