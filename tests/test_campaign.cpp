// Campaign engine contract tests: streaming equivalence, journaled resume
// with BYTE-identical merged results, and strict rejection of corrupted
// journal/spill lines.
//
// The workload here is deliberately tiny and fabric-free: a deterministic
// pseudo-experiment derived from the config alone.  The campaign engine
// never looks inside a job — what is under test is the plumbing (spill,
// journal, resume, merge), and a toy body makes the identity checks exact
// and fast.  examples/overload_campaign.cpp --smoke runs the same resume
// contract against a real FatTree workload in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

#include "harness/campaign_runner.h"
#include "harness/parallel_runner.h"

namespace ndpsim {
namespace {

namespace fs = std::filesystem;

// Deterministic toy job: `param` completed flows with FCTs derived from the
// seed, plus `param2 > 0` leaving one flow open.  A pure function of the
// config — the same property real bodies get from the per-job sim_env.
void toy_body(const experiment_config& cfg, sim_env& /*env*/,
              fct_recorder& fcts) {
  for (std::int64_t i = 0; i < cfg.param; ++i) {
    const auto id = static_cast<std::uint32_t>(i);
    fcts.flow_started(id, 0, 1000 + static_cast<std::uint64_t>(i));
    const double us =
        10.0 * static_cast<double>((cfg.seed * (i + 3)) % 97 + 1);
    fcts.flow_completed(id, from_us(us));
  }
  if (cfg.param2 > 0) fcts.flow_started(9999, from_us(1), 50);
}

std::vector<experiment_config> toy_grid(std::size_t n) {
  std::vector<experiment_config> configs;
  for (std::size_t i = 0; i < n; ++i) {
    experiment_config cfg;
    cfg.name = "toy_" + std::to_string(i);
    cfg.seed = 100 + i;
    cfg.param = static_cast<std::int64_t>(5 + i % 7);
    cfg.param2 = i % 3 == 0 ? 1.0 : 0.0;
    configs.push_back(std::move(cfg));
  }
  return configs;
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;
}

TEST(experiment_outcome, is_nothrow_movable) {
  static_assert(std::is_nothrow_move_constructible_v<experiment_outcome>);
  static_assert(std::is_nothrow_move_assignable_v<experiment_outcome>);
  // Moving transfers the recorder payload instead of copying it.
  experiment_outcome a;
  a.fcts.flow_started(1, 0, 100);
  a.fcts.flow_completed(1, from_us(10));
  experiment_outcome b = std::move(a);
  EXPECT_EQ(b.fcts.completed(), 1u);
}

TEST(parallel_runner_streaming, sink_sees_every_job_once_equivalently) {
  const auto configs = toy_grid(9);
  const parallel_runner runner(3);
  const std::vector<experiment_outcome> collected =
      runner.run(configs, toy_body);

  std::mutex mu;
  std::vector<int> seen(configs.size(), 0);
  std::vector<experiment_outcome> streamed(configs.size());
  runner.run_streaming(configs, toy_body,
                       [&](std::size_t i, experiment_outcome&& out) {
                         const std::lock_guard<std::mutex> lk(mu);
                         ++seen[i];
                         streamed[i] = std::move(out);
                       });
  for (std::size_t i = 0; i < configs.size(); ++i) {
    ASSERT_EQ(seen[i], 1) << "job " << i;
    EXPECT_EQ(streamed[i].config.name, collected[i].config.name);
    EXPECT_EQ(streamed[i].fcts.completed(), collected[i].fcts.completed());
    EXPECT_EQ(streamed[i].fcts.still_open(), collected[i].fcts.still_open());
    // Same job, same result: the summaries (and so the spill lines) match.
    EXPECT_EQ(fct_summary::from_recorder(streamed[i].fcts),
              fct_summary::from_recorder(collected[i].fcts));
  }
}

TEST(parallel_runner_streaming, stop_flag_prevents_further_claims) {
  const auto configs = toy_grid(12);
  const parallel_runner runner(1);
  std::atomic<bool> stop{false};
  std::size_t ran = 0;
  runner.run_streaming(configs, toy_body,
                       [&](std::size_t, experiment_outcome&&) {
                         if (++ran >= 4) stop.store(true);
                       },
                       &stop);
  // Single worker: the claim after the 4th sink call sees the flag.
  EXPECT_EQ(ran, 4u);
}

TEST(campaign_runner, interrupted_resume_merges_bitwise_identical) {
  const auto configs = toy_grid(11);

  // Reference: one uninterrupted run.
  campaign_config straight;
  straight.dir = fresh_dir("campaign_straight").string();
  straight.threads = 2;
  const campaign_result full =
      campaign_runner(straight).run(configs, toy_body);
  ASSERT_TRUE(full.completed);
  ASSERT_EQ(full.jobs_run, configs.size());
  ASSERT_EQ(full.summaries.size(), configs.size());

  // Interrupted: stop claiming after ~half, drop all process state (the
  // campaign_result goes out of scope), resume from the journal alone.
  campaign_config interrupted;
  interrupted.dir = fresh_dir("campaign_resume").string();
  interrupted.threads = 2;
  interrupted.max_jobs = configs.size() / 2;
  {
    const campaign_result half =
        campaign_runner(interrupted).run(configs, toy_body);
    ASSERT_FALSE(half.completed);
    ASSERT_GE(half.jobs_run, configs.size() / 2);
    ASSERT_LT(half.jobs_run, configs.size());
    ASSERT_TRUE(half.merged_path.empty());
  }
  campaign_config resumed_cfg = interrupted;
  resumed_cfg.max_jobs = 0;
  resumed_cfg.resume = true;
  const campaign_result resumed =
      campaign_runner(resumed_cfg).run(configs, toy_body);
  ASSERT_TRUE(resumed.completed);
  EXPECT_GT(resumed.jobs_skipped, 0u);
  EXPECT_EQ(resumed.jobs_skipped + resumed.jobs_run, configs.size());
  EXPECT_EQ(resumed.journal_rejects, 0u);
  EXPECT_EQ(resumed.spill_rejects, 0u);

  // THE campaign contract: the merged result file is byte-identical.
  const std::string a = slurp(full.merged_path);
  const std::string b = slurp(resumed.merged_path);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);

  // And the in-memory summaries agree with it line by line.
  ASSERT_EQ(resumed.summaries.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(resumed.summaries[i], full.summaries[i]) << "job " << i;
    EXPECT_EQ(resumed.summaries[i].job, i);
    EXPECT_EQ(resumed.summaries[i].hash, config_hash(configs[i]));
  }
}

TEST(campaign_runner, corrupted_journal_lines_are_rejected_and_rerun) {
  const auto configs = toy_grid(6);
  campaign_config cc;
  cc.dir = fresh_dir("campaign_corrupt").string();
  cc.threads = 1;
  const campaign_result first = campaign_runner(cc).run(configs, toy_body);
  ASSERT_TRUE(first.completed);
  const std::string reference = slurp(first.merged_path);

  // Corrupt the journal: flip a hash digit on one line (CRC now fails),
  // truncate another (torn write), and append garbage.
  const fs::path journal = fs::path(cc.dir) / "journal.jsonl";
  std::vector<std::string> lines;
  {
    std::ifstream in(journal);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), configs.size());
  const std::size_t hpos = lines[1].find("\"hash\":\"") + 8;
  lines[1][hpos] = lines[1][hpos] == 'f' ? '0' : 'f';
  lines[3] = lines[3].substr(0, lines[3].size() / 2);
  lines.push_back("{\"job\":junk}");
  {
    std::ofstream out(journal, std::ios::trunc);
    for (const std::string& l : lines) out << l << '\n';
  }

  campaign_config rcfg = cc;
  rcfg.resume = true;
  const campaign_result resumed =
      campaign_runner(rcfg).run(configs, toy_body);
  ASSERT_TRUE(resumed.completed);
  // 3 bad lines ignored; the two damaged jobs re-ran.
  EXPECT_EQ(resumed.journal_rejects, 3u);
  EXPECT_EQ(resumed.jobs_skipped, configs.size() - 2);
  EXPECT_EQ(resumed.jobs_run, 2u);
  // Determinism makes the repair invisible in the merged result.
  EXPECT_EQ(slurp(resumed.merged_path), reference);
}

TEST(campaign_runner, corrupted_spill_line_forces_rerun) {
  const auto configs = toy_grid(5);
  campaign_config cc;
  cc.dir = fresh_dir("campaign_spill_corrupt").string();
  cc.threads = 1;
  const campaign_result first = campaign_runner(cc).run(configs, toy_body);
  ASSERT_TRUE(first.completed);
  const std::string reference = slurp(first.merged_path);

  // Damage one spill line mid-file; its journal entry is intact, but a
  // journaled job without a trusted spill line must re-run.
  const fs::path shards = fs::path(cc.dir) / "shards.jsonl";
  std::string content = slurp(shards);
  const std::size_t pos = content.find("\"sum_us\":");
  ASSERT_NE(pos, std::string::npos);
  content[pos + 9] = 'x';
  {
    std::ofstream out(shards, std::ios::trunc | std::ios::binary);
    out << content;
  }

  campaign_config rcfg = cc;
  rcfg.resume = true;
  const campaign_result resumed =
      campaign_runner(rcfg).run(configs, toy_body);
  ASSERT_TRUE(resumed.completed);
  EXPECT_EQ(resumed.spill_rejects, 1u);
  EXPECT_EQ(resumed.journal_rejects, 1u);  // its journal entry lost its line
  EXPECT_EQ(resumed.jobs_run, 1u);
  EXPECT_EQ(slurp(resumed.merged_path), reference);
}

TEST(campaign_runner, config_drift_reruns_the_changed_job) {
  auto configs = toy_grid(4);
  campaign_config cc;
  cc.dir = fresh_dir("campaign_drift").string();
  cc.threads = 1;
  ASSERT_TRUE(campaign_runner(cc).run(configs, toy_body).completed);

  // Change one config: its journaled hash no longer matches, so resume
  // must re-run it rather than trust the stale result.
  configs[2].seed += 1;
  campaign_config rcfg = cc;
  rcfg.resume = true;
  const campaign_result resumed =
      campaign_runner(rcfg).run(configs, toy_body);
  ASSERT_TRUE(resumed.completed);
  EXPECT_EQ(resumed.jobs_run, 1u);
  EXPECT_EQ(resumed.jobs_skipped, configs.size() - 1);
  EXPECT_EQ(resumed.summaries[2].hash, config_hash(configs[2]));
}

TEST(campaign_journal, line_round_trips_and_rejects_tampering) {
  const std::string line = make_journal_line(17, 0x0123456789abcdefULL);
  std::uint64_t job = 0;
  std::uint64_t hash = 0;
  ASSERT_TRUE(parse_journal_line(line, job, hash));
  EXPECT_EQ(job, 17u);
  EXPECT_EQ(hash, 0x0123456789abcdefULL);

  // Any single-character change breaks either the format or the CRC.
  for (std::size_t i = 0; i < line.size(); ++i) {
    std::string t = line;
    t[i] = t[i] == 'a' ? 'b' : 'a';
    if (t == line) continue;
    EXPECT_FALSE(parse_journal_line(t, job, hash)) << "flip at " << i;
  }
  EXPECT_FALSE(parse_journal_line(line.substr(0, line.size() - 1), job, hash));
  EXPECT_FALSE(parse_journal_line("", job, hash));
}

}  // namespace
}  // namespace ndpsim