#include <gtest/gtest.h>

#include <set>

#include "net/fifo_queues.h"
#include "topo/micro_topo.h"
#include "topo/path_table.h"
#include "workload/cbr_source.h"
#include "workload/closed_loop.h"
#include "workload/size_distributions.h"
#include "workload/traffic_matrix.h"

namespace ndpsim {
namespace {

TEST(traffic_matrix, permutation_is_derangement_with_unit_in_degree) {
  std::mt19937_64 rng(1);
  for (int trial = 0; trial < 10; ++trial) {
    const auto perm = permutation_matrix(rng, 64);
    std::set<std::uint32_t> receivers;
    for (std::size_t i = 0; i < perm.size(); ++i) {
      EXPECT_NE(perm[i], i) << "host must not send to itself";
      receivers.insert(perm[i]);
    }
    EXPECT_EQ(receivers.size(), 64u) << "every host receives exactly once";
  }
}

TEST(traffic_matrix, random_matrix_avoids_self) {
  std::mt19937_64 rng(2);
  const auto m = random_matrix(rng, 32);
  for (std::size_t i = 0; i < m.size(); ++i) EXPECT_NE(m[i], i);
}

TEST(traffic_matrix, incast_senders_distinct_and_exclude_receiver) {
  std::mt19937_64 rng(3);
  const auto s = incast_senders(rng, 100, 42, 50);
  EXPECT_EQ(s.size(), 50u);
  std::set<std::uint32_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 50u);
  EXPECT_EQ(uniq.count(42), 0u);
}

TEST(size_distribution, fixed_size_is_degenerate) {
  std::mt19937_64 rng(4);
  const auto d = fixed_size(5000);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(d.sample(rng), 5000u);
}

TEST(size_distribution, facebook_web_is_small_flow_dominated) {
  std::mt19937_64 rng(5);
  const auto& d = facebook_web_sizes();
  std::size_t tiny = 0, big = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto s = d.sample(rng);
    if (s <= 1500) ++tiny;
    if (s >= 100'000) ++big;
  }
  // Most flows fit in a single 1500B MTU; a small tail is large.
  EXPECT_GT(tiny, n / 2);
  EXPECT_GT(big, 0u);
  EXPECT_LT(big, n / 20);
}

TEST(size_distribution, rejects_malformed_cdf) {
  EXPECT_THROW(flow_size_distribution({{0.5, 100.0}}), simulation_error);
  EXPECT_THROW(flow_size_distribution({{0.7, 100.0}, {0.6, 10.0}, {1.0, 1.0}}),
               simulation_error);
}

TEST(cbr_source, sends_at_configured_rate) {
  sim_env env;
  auto factory = [&env](link_level, std::size_t, linkspeed_bps rate,
                        const std::string& name) -> std::unique_ptr<queue_base> {
    return std::make_unique<drop_tail_queue>(env, rate, 1000 * 9000, name);
  };
  single_switch star(env, 2, gbps(10), from_us(1), factory);
  counting_sink sink(env);
  cbr_source cbr(env, gbps(5), 9000, 1);
  cbr.start(star.paths().single(0, 1, 0), &sink, 0, 1, 0);
  env.events.run_until(from_ms(10));
  const double gb =
      static_cast<double>(sink.payload_bytes()) * 8 / to_sec(from_ms(10)) / 1e9;
  // 5Gb/s offered minus header overhead.
  EXPECT_NEAR(gb, 5.0 * 8936 / 9000, 0.1);
}

TEST(closed_loop, keeps_population_and_records_fcts) {
  sim_env env;
  // Instant-completion starter: flows "finish" after 10us via an event.
  struct finisher : event_source {
    std::vector<std::pair<simtime_t, std::function<void()>>> pending;
    explicit finisher(event_list& el) : event_source(el, "fin") {}
    void do_next_event() override {
      std::vector<std::function<void()>> due;
      std::erase_if(pending, [&](auto& e) {
        if (e.first <= events().now()) {
          due.push_back(std::move(e.second));
          return true;
        }
        return false;
      });
      for (auto& cb : due) cb();
    }
  } fin(env.events);

  auto d = fixed_size(1000);
  closed_loop_generator gen(
      env, 4, 2, d, from_ms(1),
      [&](std::uint32_t src, std::uint32_t dst, std::uint64_t bytes,
          simtime_t start, std::function<void()> done) {
        EXPECT_NE(src, dst);
        EXPECT_EQ(bytes, 1000u);
        EXPECT_GE(start, env.now());
        fin.pending.emplace_back(start + from_us(10), std::move(done));
        env.events.schedule_at(fin, start + from_us(10));
      });
  gen.start();
  env.events.run_until(from_ms(50));
  gen.stop();
  // 4 hosts x 2 workers; gaps median 1ms over 50ms => roughly 40+ flows
  // per worker-pair; just assert sustained activity and bookkeeping sanity.
  EXPECT_GT(gen.fcts().completed(), 100u);
  EXPECT_LE(gen.fcts().still_open(), 8u);
}

}  // namespace
}  // namespace ndpsim
