#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/fifo_queues.h"
#include "stats/cdf.h"
#include "stats/fct_recorder.h"
#include "stats/fct_summary.h"
#include "stats/quantile_sketch.h"
#include "stats/rate_sampler.h"
#include "test_util.h"

namespace ndpsim {
namespace {

TEST(sample_set, quantiles_nearest_rank) {
  sample_set s;
  for (int i = 10; i >= 1; --i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.9), 9.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.5);
}

TEST(sample_set, mean_lowest_fraction) {
  sample_set s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  // Worst 10% = values 1..10, mean 5.5 (the paper's "worst 10%" metric).
  EXPECT_DOUBLE_EQ(s.mean_lowest(0.10), 5.5);
}

TEST(sample_set, add_after_quantile_resorts) {
  sample_set s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  s.add(1.0);
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(sample_set, cdf_rows_end_at_one) {
  sample_set s;
  for (int i = 0; i < 200; ++i) s.add(i);
  const std::string rows = s.cdf_rows(10);
  EXPECT_NE(rows.find(" 1\n"), std::string::npos);
}

TEST(sample_set, empty_quantile_throws) {
  sample_set s;
  EXPECT_THROW(s.median(), simulation_error);
}

TEST(fct_recorder, records_durations) {
  fct_recorder rec;
  rec.flow_started(1, from_us(10), 1000);
  rec.flow_started(2, from_us(10), 1000);
  rec.flow_completed(1, from_us(110));
  rec.flow_completed(2, from_us(210));
  EXPECT_EQ(rec.completed(), 2u);
  EXPECT_EQ(rec.still_open(), 0u);
  EXPECT_DOUBLE_EQ(rec.fct_us().min(), 100.0);
  EXPECT_DOUBLE_EQ(rec.fct_us().max(), 200.0);
  EXPECT_DOUBLE_EQ(rec.last_completion_us(), 210.0);
}

TEST(fct_recorder, double_start_throws) {
  fct_recorder rec;
  rec.flow_started(1, 0, 1);
  EXPECT_THROW(rec.flow_started(1, 0, 1), simulation_error);
}

TEST(fct_recorder, unknown_completion_throws) {
  fct_recorder rec;
  EXPECT_THROW(rec.flow_completed(7, 0), simulation_error);
}

TEST(rate_sampler, measures_queue_drain_rate) {
  sim_env env;
  testing::recording_sink sink(env);
  drop_tail_queue q(env, gbps(10), 1000 * 9000);
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);

  std::uint64_t delivered = 0;
  rate_sampler sampler(
      env, [&q] { return q.stats().bytes_forwarded; }, from_us(100));
  (void)delivered;
  sampler.start(0);

  // Saturate the 10G queue for 1ms.
  for (std::uint64_t i = 0; i < 138; ++i) {
    send_to_next_hop(*testing::make_data(env, &r, 9000, i + 1));
  }
  env.events.run_until(from_ms(1));
  ASSERT_GE(sampler.samples().size(), 5u);
  // Mid-experiment samples should be ~10Gb/s.
  const double mid = sampler.samples()[2].rate_bps;
  EXPECT_NEAR(mid, 10e9, 0.5e9);
}

TEST(rate_sampler, overall_rate) {
  sim_env env;
  std::uint64_t counter = 0;
  rate_sampler sampler(env, [&counter] { return counter; }, from_us(10));
  sampler.start(0);
  // Manually bump the counter between polls via an auxiliary event source.
  struct bumper : event_source {
    std::uint64_t* c;
    bumper(event_list& el, std::uint64_t* cc) : event_source(el, "b"), c(cc) {}
    void do_next_event() override {
      *c += 1250;  // 1250 bytes per 10us = 1Gb/s
      events().schedule_in(*this, from_us(10));
    }
  } b(env.events, &counter);
  env.events.schedule_at(b, 0);
  env.events.run_until(from_ms(1));
  EXPECT_NEAR(sampler.overall_rate_bps(), 1e9, 0.1e9);
}

// ---------------------------------------------------------------------------
// quantile_sketch: the campaign spill sketch.  Determinism here is
// structural (bucket index is a pure function of the value), so the same
// multiset of samples must yield the identical sketch whatever order it
// arrives in — directly, shuffled, or pre-aggregated through merges in any
// grouping.
// ---------------------------------------------------------------------------

// A deterministic heavy-tailed-ish FCT sample: most values around 100us,
// a long tail into tens of ms (no RNG — tests must not depend on libc rand).
std::vector<double> synthetic_fcts(std::size_t n) {
  std::vector<double> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double base = 80.0 + static_cast<double>((i * 37) % 100);
    const double tail = (i % 17 == 0) ? 50.0 * static_cast<double>(1 + i % 7)
                                      : 1.0;
    v.push_back(base * tail);
  }
  return v;
}

TEST(quantile_sketch, insertion_order_independent) {
  const std::vector<double> vals = synthetic_fcts(500);
  quantile_sketch forward;
  for (const double v : vals) forward.add(v);
  quantile_sketch reverse;
  for (auto it = vals.rbegin(); it != vals.rend(); ++it) reverse.add(*it);
  // Strided order as a shuffle stand-in (7 is coprime to 500).
  quantile_sketch strided;
  for (std::size_t i = 0; i < vals.size(); ++i) {
    strided.add(vals[(i * 7) % vals.size()]);
  }
  EXPECT_EQ(forward, reverse);
  EXPECT_EQ(forward, strided);
  EXPECT_EQ(forward.count(), vals.size());
}

TEST(quantile_sketch, merge_grouping_and_order_independent) {
  const std::vector<double> vals = synthetic_fcts(600);
  quantile_sketch whole;
  for (const double v : vals) whole.add(v);

  // Split into three parts, merge in both associations and both orders.
  quantile_sketch part[3];
  for (std::size_t i = 0; i < vals.size(); ++i) part[i % 3].add(vals[i]);

  quantile_sketch ab = part[0];
  ab.merge_from(part[1]);
  quantile_sketch ab_c = ab;
  ab_c.merge_from(part[2]);

  quantile_sketch bc = part[2];
  bc.merge_from(part[1]);
  quantile_sketch c_ba = bc;
  c_ba.merge_from(part[0]);

  EXPECT_EQ(ab_c, whole);
  EXPECT_EQ(c_ba, whole);
}

TEST(quantile_sketch, error_bound_against_exact_quantiles) {
  // The guarantee under test: for in-domain values, quantile(q) is within
  // alpha (relative) of the exact nearest-rank quantile, because the exact
  // rank-q sample lies inside the bucket the sketch answers from.
  fct_recorder rec;
  const std::vector<double> vals = synthetic_fcts(1000);
  for (std::size_t i = 0; i < vals.size(); ++i) {
    const auto id = static_cast<std::uint32_t>(i);
    rec.flow_started(id, 0, 1000);
    rec.flow_completed(id, from_us(vals[i]));
  }
  const fct_summary s = fct_summary::from_recorder(rec);
  const sample_set& exact = rec.fct_us();
  for (const double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    const double e = exact.quantile(q);
    EXPECT_NEAR(s.quantile_us(q), e, s.sketch.alpha() * e + 1e-9)
        << "q=" << q;
  }
  // Exact fields are exact, not sketched.
  EXPECT_EQ(s.flows, vals.size());
  EXPECT_DOUBLE_EQ(s.min_us, exact.min());
  EXPECT_DOUBLE_EQ(s.max_us, exact.max());
  EXPECT_NEAR(s.mean_us(), exact.mean(), 1e-9);
}

TEST(quantile_sketch, clamps_out_of_domain_values) {
  quantile_sketch s;
  s.add(0.0);       // <= min clamps (so do negatives and NaN)
  s.add(-5.0);
  s.add(1e30);      // > max clamps
  EXPECT_EQ(s.count(), 3u);
  EXPECT_LE(s.quantile(0.0), quantile_sketch::kMinValue * (1 + s.alpha()));
  EXPECT_GE(s.quantile(1.0), quantile_sketch::kMaxValue * (1 - s.alpha()));
}

TEST(quantile_sketch, restore_rejects_malformed_buckets) {
  quantile_sketch s;
  // Unsorted.
  EXPECT_FALSE(s.restore(0.02, {{10, 1}, {5, 1}}));
  EXPECT_TRUE(s.empty());
  // Duplicate index.
  EXPECT_FALSE(s.restore(0.02, {{5, 1}, {5, 2}}));
  // Zero count.
  EXPECT_FALSE(s.restore(0.02, {{5, 0}}));
  // Out of the clamped index range.
  EXPECT_FALSE(s.restore(0.02, {{1 << 30, 1}}));
  // A valid restore round-trips.
  quantile_sketch built;
  built.add(100.0, 3);
  built.add(250.0, 2);
  quantile_sketch restored;
  EXPECT_TRUE(restored.restore(built.alpha(), built.raw_buckets()));
  EXPECT_EQ(restored, built);
}

// ---------------------------------------------------------------------------
// fct_summary: the per-job spill record.  The campaign resume contract needs
// (a) byte-identical re-emission after a parse round trip and (b) strict
// rejection of anything malformed.
// ---------------------------------------------------------------------------

fct_summary sample_summary(bool with_telemetry) {
  fct_recorder rec;
  const std::vector<double> vals = synthetic_fcts(64);
  for (std::size_t i = 0; i < vals.size(); ++i) {
    const auto id = static_cast<std::uint32_t>(i);
    rec.flow_started(id, 0, 9000 * (i + 1));
    rec.flow_completed(id, from_us(vals[i]));
  }
  rec.flow_started(1000, from_us(5), 123);  // left open
  fct_summary s = fct_summary::from_recorder(rec);
  s.job = 42;
  s.hash = 0xdeadbeefcafef00dULL;
  s.name = "odd \"name\"\\with\tescapes";
  s.events = 123456789;
  if (with_telemetry) {
    s.tele.present = true;
    s.tele.armed_slots = 96;
    s.tele.queues.enq_pkts = 1000;
    s.tele.queues.enq_bytes = 9000000;
    s.tele.queues.trim_bytes = 8892;
    s.tele.pipes.enq_pkts = 5000;
    s.tele.pipes.deq_pkts = 5000;
    s.tele.demuxes.enq_pkts = 990;
    s.tele.demuxes.stale_drops = 3;
  }
  return s;
}

TEST(fct_summary, jsonl_round_trip_is_byte_identical) {
  for (const bool with_tele : {false, true}) {
    const fct_summary s = sample_summary(with_tele);
    const std::string line = s.to_jsonl();
    fct_summary parsed;
    ASSERT_TRUE(fct_summary::from_jsonl(line, parsed)) << line;
    EXPECT_EQ(parsed, s);
    EXPECT_EQ(parsed.to_jsonl(), line);  // re-emission: the resume identity
  }
}

TEST(fct_summary, parser_rejects_corruption) {
  const std::string line = sample_summary(true).to_jsonl();
  fct_summary out;
  // Truncations at every prefix length must fail, never half-parse.
  for (const std::size_t cut : {std::size_t{1}, line.size() / 4,
                                line.size() / 2, line.size() - 1}) {
    EXPECT_FALSE(fct_summary::from_jsonl(line.substr(0, cut), out));
  }
  // Trailing garbage.
  EXPECT_FALSE(fct_summary::from_jsonl(line + "x", out));
  // A flow-count/sketch mismatch (flipped digit) is caught by the
  // one-sample-per-flow invariant.
  std::string flipped = line;
  const std::size_t fpos = flipped.find("\"flows\":");
  flipped[fpos + 8] = flipped[fpos + 8] == '9' ? '8' : '9';
  EXPECT_FALSE(fct_summary::from_jsonl(flipped, out));
  // Unknown escape in the name (a tab is emitted as the six-byte sequence backslash-u0009).
  std::string bad_esc = line;
  const std::size_t epos = bad_esc.find("\\u0009");
  ASSERT_NE(epos, std::string::npos);
  bad_esc.replace(epos, 6, "\\q");
  EXPECT_FALSE(fct_summary::from_jsonl(bad_esc, out));
}

TEST(fct_summary, merge_accumulates_exact_fields_and_sketch) {
  fct_recorder r1;
  r1.flow_started(1, 0, 100);
  r1.flow_completed(1, from_us(10));
  fct_recorder r2;
  r2.flow_started(1, 0, 200);
  r2.flow_completed(1, from_us(1000));
  r2.flow_started(2, 0, 1);  // open

  fct_summary a = fct_summary::from_recorder(r1);
  const fct_summary b = fct_summary::from_recorder(r2);
  a.merge_from(b);
  EXPECT_EQ(a.flows, 2u);
  EXPECT_EQ(a.still_open, 1u);
  EXPECT_EQ(a.bytes, 300u);
  EXPECT_DOUBLE_EQ(a.min_us, 10.0);
  EXPECT_DOUBLE_EQ(a.max_us, 1000.0);
  EXPECT_DOUBLE_EQ(a.sum_us, 1010.0);
  EXPECT_EQ(a.sketch.count(), 2u);

  // Merging into an empty summary adopts the other's min/max.
  fct_summary empty;
  empty.merge_from(b);
  EXPECT_DOUBLE_EQ(empty.min_us, 1000.0);
  EXPECT_DOUBLE_EQ(empty.max_us, 1000.0);
}

}  // namespace
}  // namespace ndpsim
