#include <gtest/gtest.h>

#include "net/fifo_queues.h"
#include "stats/cdf.h"
#include "stats/fct_recorder.h"
#include "stats/rate_sampler.h"
#include "test_util.h"

namespace ndpsim {
namespace {

TEST(sample_set, quantiles_nearest_rank) {
  sample_set s;
  for (int i = 10; i >= 1; --i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.9), 9.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.5);
}

TEST(sample_set, mean_lowest_fraction) {
  sample_set s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  // Worst 10% = values 1..10, mean 5.5 (the paper's "worst 10%" metric).
  EXPECT_DOUBLE_EQ(s.mean_lowest(0.10), 5.5);
}

TEST(sample_set, add_after_quantile_resorts) {
  sample_set s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  s.add(1.0);
  s.add(9.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(sample_set, cdf_rows_end_at_one) {
  sample_set s;
  for (int i = 0; i < 200; ++i) s.add(i);
  const std::string rows = s.cdf_rows(10);
  EXPECT_NE(rows.find(" 1\n"), std::string::npos);
}

TEST(sample_set, empty_quantile_throws) {
  sample_set s;
  EXPECT_THROW(s.median(), simulation_error);
}

TEST(fct_recorder, records_durations) {
  fct_recorder rec;
  rec.flow_started(1, from_us(10), 1000);
  rec.flow_started(2, from_us(10), 1000);
  rec.flow_completed(1, from_us(110));
  rec.flow_completed(2, from_us(210));
  EXPECT_EQ(rec.completed(), 2u);
  EXPECT_EQ(rec.still_open(), 0u);
  EXPECT_DOUBLE_EQ(rec.fct_us().min(), 100.0);
  EXPECT_DOUBLE_EQ(rec.fct_us().max(), 200.0);
  EXPECT_DOUBLE_EQ(rec.last_completion_us(), 210.0);
}

TEST(fct_recorder, double_start_throws) {
  fct_recorder rec;
  rec.flow_started(1, 0, 1);
  EXPECT_THROW(rec.flow_started(1, 0, 1), simulation_error);
}

TEST(fct_recorder, unknown_completion_throws) {
  fct_recorder rec;
  EXPECT_THROW(rec.flow_completed(7, 0), simulation_error);
}

TEST(rate_sampler, measures_queue_drain_rate) {
  sim_env env;
  testing::recording_sink sink(env);
  drop_tail_queue q(env, gbps(10), 1000 * 9000);
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);

  std::uint64_t delivered = 0;
  rate_sampler sampler(
      env, [&q] { return q.stats().bytes_forwarded; }, from_us(100));
  (void)delivered;
  sampler.start(0);

  // Saturate the 10G queue for 1ms.
  for (std::uint64_t i = 0; i < 138; ++i) {
    send_to_next_hop(*testing::make_data(env, &r, 9000, i + 1));
  }
  env.events.run_until(from_ms(1));
  ASSERT_GE(sampler.samples().size(), 5u);
  // Mid-experiment samples should be ~10Gb/s.
  const double mid = sampler.samples()[2].rate_bps;
  EXPECT_NEAR(mid, 10e9, 0.5e9);
}

TEST(rate_sampler, overall_rate) {
  sim_env env;
  std::uint64_t counter = 0;
  rate_sampler sampler(env, [&counter] { return counter; }, from_us(10));
  sampler.start(0);
  // Manually bump the counter between polls via an auxiliary event source.
  struct bumper : event_source {
    std::uint64_t* c;
    bumper(event_list& el, std::uint64_t* cc) : event_source(el, "b"), c(cc) {}
    void do_next_event() override {
      *c += 1250;  // 1250 bytes per 10us = 1Gb/s
      events().schedule_in(*this, from_us(10));
    }
  } b(env.events, &counter);
  env.events.schedule_at(b, 0);
  env.events.run_until(from_ms(1));
  EXPECT_NEAR(sampler.overall_rate_bps(), 1e9, 0.1e9);
}

}  // namespace
}  // namespace ndpsim
