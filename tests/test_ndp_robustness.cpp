// Failure-injection and robustness tests for the NDP transport: degraded
// links, lost control packets, reordering extremes.
#include <gtest/gtest.h>

#include "net/fifo_queues.h"
#include "net/pipe.h"
#include "ndp/ndp_queue.h"
#include "ndp/ndp_sink.h"
#include "ndp/ndp_source.h"
#include "ndp/pull_pacer.h"
#include "topo/fat_tree.h"
#include "topo/micro_topo.h"
#include "topo/path_table.h"
#include "test_util.h"

namespace ndpsim {
namespace {

queue_factory ndp_factory(sim_env& env) {
  return [&env](link_level level, std::size_t, linkspeed_bps rate,
                const std::string& name) -> std::unique_ptr<queue_base> {
    if (level == link_level::host_up) {
      return std::make_unique<host_priority_queue>(env, rate, name);
    }
    ndp_queue_config c;
    return std::make_unique<ndp_queue>(env, rate, c, name);
  };
}

TEST(ndp_robustness, scoreboard_routes_around_degraded_core_link) {
  auto run = [](bool penalty) {
    sim_env env(5);
    fat_tree_config tc;
    tc.k = 4;
    tc.speed_override = [](link_level level, std::size_t index,
                           linkspeed_bps def) -> linkspeed_bps {
      if (level == link_level::agg_up && index == 0) return gbps(1);
      if (level == link_level::core_down && index == 0) return gbps(1);
      return def;
    };
    fat_tree ft(env, tc, ndp_factory(env));
    pull_pacer pacer(env, gbps(10));
    ndp_source_config sc;
    sc.penalty.enabled = penalty;
    ndp_source src(env, sc, 1);
    ndp_sink snk(env, pacer, {}, 1);
    src.connect(snk, ft.paths().all(0, 15), 0, 15, 10'000'000, 0);
    while (!snk.complete() && env.events.run_next_event()) {
    }
    return to_us(snk.completion_time());
  };
  const double with_penalty = run(true);
  const double without = run(false);
  EXPECT_LT(with_penalty, without * 0.95);
  // With the penalty the transfer should be near the healthy-fabric time
  // (10MB at 10G payload rate ~= 8.06ms + epsilon).
  EXPECT_LT(with_penalty, 9'500.0);
}

TEST(ndp_robustness, survives_loss_of_control_packets) {
  // A lossy element that deletes 5% of ALL control packets (ACKs, NACKs and
  // PULLs): the RTO backstop must still complete the flow exactly.
  sim_env env(7);
  struct lossy final : public packet_sink {
    sim_env& env;
    int counter = 0;
    explicit lossy(sim_env& e) : env(e) {}
    void receive(packet& p) override {
      if (p.is_header_class() && ++counter % 20 == 0) {
        env.pool.release(&p);
        return;
      }
      send_to_next_hop(p);
    }
  } dropper(env);

  host_priority_queue nic_a(env, gbps(10)), nic_b(env, gbps(10));
  pipe w1(env, from_us(1)), w2(env, from_us(1));
  manual_paths mp;
  mp.add({&nic_a, &w1}, {&nic_b, &w2, &dropper});

  pull_pacer pacer(env, gbps(10));
  ndp_source_config sc;
  sc.rto = from_us(400);
  ndp_source src(env, sc, 1);
  ndp_sink snk(env, pacer, {}, 1);
  src.connect(snk, mp.set(), 0, 1, 100 * 8936, 0);
  env.events.run_until(from_ms(200));
  EXPECT_TRUE(snk.complete());
  EXPECT_TRUE(src.complete());
  EXPECT_EQ(snk.payload_received(), 100u * 8936);
  EXPECT_GT(dropper.counter, 0);
}

TEST(ndp_robustness, extreme_reordering_from_heterogeneous_paths) {
  // Paths with wildly different serialization rates: packets of one window
  // arrive many positions out of order; delivery must still be exact.
  sim_env env(9);
  fat_tree_config tc;
  tc.k = 4;
  // Alternate core links between 2.5G and 10G.
  tc.speed_override = [](link_level level, std::size_t index,
                         linkspeed_bps def) -> linkspeed_bps {
    if (level == link_level::agg_up && index % 2 == 0) return gbps(2.5);
    if (level == link_level::core_down && index % 2 == 1) return gbps(2.5);
    return def;
  };
  fat_tree ft(env, tc, ndp_factory(env));
  pull_pacer pacer(env, gbps(10));
  ndp_source_config sc;
  sc.penalty.enabled = false;  // force continued use of slow paths
  ndp_source src(env, sc, 1);
  ndp_sink snk(env, pacer, {}, 1);
  src.connect(snk, ft.paths().all(0, 15), 0, 15, 200 * 8936, 0);
  env.events.run_until(from_ms(100));
  EXPECT_TRUE(snk.complete());
  EXPECT_EQ(snk.payload_received(), 200u * 8936);
  EXPECT_EQ(snk.stats().duplicate_packets, 0u);
  EXPECT_EQ(env.pool.outstanding(), 0u);
}

TEST(ndp_robustness, many_connections_share_one_pacer_exactly) {
  // 16 concurrent flows into one host: the pacer must keep aggregate arrival
  // at the link rate and deliver every flow exactly.
  sim_env env(13);
  single_switch star(env, 17, gbps(10), from_us(1), ndp_factory(env));
  pull_pacer pacer(env, gbps(10));
  struct conn {
    conn(sim_env& e, topology& t, pull_pacer& pc, std::uint32_t s,
         std::uint32_t fid)
        : src(e, {}, fid), snk(e, pc, {}, fid) {
      src.connect(snk, t.paths().all(s, 16), s, 16, 50 * 8936, 0);
    }
    ndp_source src;
    ndp_sink snk;
  };
  std::vector<std::unique_ptr<conn>> conns;
  for (std::uint32_t s = 0; s < 16; ++s) {
    conns.push_back(std::make_unique<conn>(env, star, pacer, s, 100 + s));
  }
  env.events.run_until(from_sec(1));
  simtime_t last = 0;
  for (const auto& c : conns) {
    ASSERT_TRUE(c->snk.complete());
    EXPECT_EQ(c->snk.payload_received(), 50u * 8936);
    last = std::max(last, c->snk.completion_time());
  }
  // 16 x 50 packets of 9000B wire at 10G = 5.76ms minimum.
  EXPECT_LT(to_us(last), 7'000.0);
  EXPECT_GT(to_us(last), 5'760.0);
}

}  // namespace
}  // namespace ndpsim
