#include <gtest/gtest.h>

#include "net/fifo_queues.h"
#include "phost/phost.h"
#include "topo/micro_topo.h"
#include "topo/path_table.h"

namespace ndpsim {
namespace {

queue_factory droptail_factory(sim_env& env, std::uint32_t pkts) {
  return [&env, pkts](link_level level, std::size_t, linkspeed_bps rate,
                      const std::string& name) -> std::unique_ptr<queue_base> {
    if (level == link_level::host_up) {
      return std::make_unique<host_priority_queue>(env, rate, name);
    }
    return std::make_unique<drop_tail_queue>(env, rate, pkts * 9000ull, name);
  };
}

struct pconn {
  pconn(sim_env& env, topology& topo, phost_token_pacer& pacer,
        std::uint32_t s, std::uint32_t d, std::uint64_t bytes,
        std::uint32_t fid)
      : source(env, {}, fid), sink(env, pacer, {}, fid) {
    source.connect(sink, topo.paths().all(s, d), s, d, bytes, 0);
  }
  phost_source source;
  phost_sink sink;
};

TEST(phost, lossless_path_completes_with_free_window) {
  sim_env env;
  back_to_back b2b(env, gbps(10), from_us(1), droptail_factory(env, 100));
  phost_token_pacer pacer(env, gbps(10));
  pconn c(env, b2b, pacer, 0, 1, 6 * 8936, 1);
  env.events.run_all();
  EXPECT_TRUE(c.sink.complete());
  EXPECT_EQ(c.sink.payload_received(), 6u * 8936);
  EXPECT_EQ(env.pool.outstanding(), 0u);
}

TEST(phost, token_paced_transfer_beyond_free_window) {
  sim_env env;
  back_to_back b2b(env, gbps(10), from_us(1), droptail_factory(env, 100));
  phost_token_pacer pacer(env, gbps(10));
  pconn c(env, b2b, pacer, 0, 1, 60 * 8936, 1);
  env.events.run_until(from_ms(10));
  EXPECT_TRUE(c.sink.complete());
  // ~60 packets at 7.2us each: roughly 450us, well under a millisecond.
  EXPECT_LT(to_us(c.sink.completion_time()), 1200.0);
}

TEST(phost, drops_cost_token_timeouts) {
  // 8-packet buffers + line-rate free window burst from many senders: drops
  // happen and recovery waits for the token timeout — pHost's weakness that
  // Fig 16/§6.2 contrasts with NDP trimming.
  sim_env env(23);
  single_switch star(env, 9, gbps(10), from_us(1), droptail_factory(env, 8));
  phost_token_pacer pacer(env, gbps(10));
  std::vector<std::unique_ptr<pconn>> conns;
  for (std::uint32_t s = 0; s < 8; ++s) {
    conns.push_back(
        std::make_unique<pconn>(env, star, pacer, s, 8, 20 * 8936, 10 + s));
  }
  env.events.run_until(from_ms(100));
  std::size_t done = 0;
  for (const auto& c : conns) done += c->sink.complete() ? 1 : 0;
  EXPECT_EQ(done, 8u);
  EXPECT_GT(star.switch_port(8).stats().dropped, 0u);
  // Completion must have taken far longer than the no-loss ideal (~1.2ms)
  // because token timeouts (300us each) gate loss recovery.
  double worst = 0;
  for (const auto& c : conns) {
    worst = std::max(worst, to_us(c->sink.completion_time()));
  }
  EXPECT_GT(worst, 1500.0);
}

TEST(phost, receiver_shares_tokens_round_robin) {
  sim_env env(29);
  single_switch star(env, 4, gbps(10), from_us(1), droptail_factory(env, 64));
  phost_token_pacer pacer(env, gbps(10));
  std::vector<std::unique_ptr<pconn>> conns;
  for (std::uint32_t s = 0; s < 3; ++s) {
    conns.push_back(
        std::make_unique<pconn>(env, star, pacer, s, 3, 300 * 8936, 20 + s));
  }
  env.events.run_until(from_ms(4));
  // Mid-transfer, all three flows should have comparable progress.
  std::vector<double> progress;
  for (const auto& c : conns) {
    progress.push_back(static_cast<double>(c->sink.payload_received()));
  }
  const double total = progress[0] + progress[1] + progress[2];
  ASSERT_GT(total, 0.0);
  for (double p : progress) EXPECT_NEAR(p / total, 1.0 / 3, 0.12);
}

}  // namespace
}  // namespace ndpsim
