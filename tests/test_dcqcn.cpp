#include <gtest/gtest.h>

#include "dcqcn/dcqcn_sink.h"
#include "dcqcn/dcqcn_source.h"
#include "net/fifo_queues.h"
#include "net/lossless.h"
#include "topo/micro_topo.h"
#include "topo/path_table.h"

namespace ndpsim {
namespace {

queue_factory red_factory(sim_env& env, std::uint32_t kmin_pkts = 5,
                          std::uint32_t kmax_pkts = 20) {
  return [&env, kmin_pkts, kmax_pkts](
             link_level level, std::size_t, linkspeed_bps rate,
             const std::string& name) -> std::unique_ptr<queue_base> {
    if (level == link_level::host_up) {
      return std::make_unique<host_priority_queue>(env, rate, name);
    }
    return std::make_unique<red_ecn_queue>(env, rate, 4000ull * 9000,
                                           kmin_pkts * 9000ull,
                                           kmax_pkts * 9000ull, 0.2, name);
  };
}

struct qconn {
  qconn(sim_env& env, topology& topo, std::uint32_t s, std::uint32_t d,
        std::uint64_t bytes, std::uint32_t fid, dcqcn_config cfg = {})
      : source(env, cfg, fid), sink(env, fid) {
    source.connect(sink, topo.paths().single(s, d, 0), s, d, bytes, 0);
  }
  dcqcn_source source;
  dcqcn_sink sink;
};

TEST(dcqcn, starts_at_line_rate_and_completes) {
  sim_env env;
  back_to_back b2b(env, gbps(10), from_us(1), red_factory(env));
  qconn c(env, b2b, 0, 1, 100 * 8936, 1);
  EXPECT_EQ(c.source.current_rate(), gbps(10));
  env.events.run_all();
  EXPECT_TRUE(c.source.complete());
  EXPECT_EQ(c.sink.payload_received(), 100u * 8936);
  EXPECT_EQ(env.pool.outstanding(), 0u);
}

TEST(dcqcn, cnp_cuts_rate_multiplicatively) {
  sim_env env;
  back_to_back b2b(env, gbps(10), from_us(1), red_factory(env));
  qconn c(env, b2b, 0, 1, 0, 1);
  env.events.run_until(from_us(100));
  const linkspeed_bps before = c.source.current_rate();
  // Inject a CNP directly.
  packet* cnp = env.pool.alloc();
  cnp->type = packet_type::dcqcn_cnp;
  cnp->flow_id = 1;
  cnp->size_bytes = kHeaderBytes;
  c.source.receive(*cnp);
  // alpha starts at 1: first cut halves the rate.
  EXPECT_NEAR(static_cast<double>(c.source.current_rate()),
              static_cast<double>(before) * 0.5,
              static_cast<double>(before) * 0.02);
  EXPECT_EQ(c.source.stats().cnps_received, 1u);
}

TEST(dcqcn, rate_recovers_after_congestion_clears) {
  sim_env env;
  back_to_back b2b(env, gbps(10), from_us(1), red_factory(env));
  qconn c(env, b2b, 0, 1, 0, 1);
  env.events.run_until(from_us(50));
  packet* cnp = env.pool.alloc();
  cnp->type = packet_type::dcqcn_cnp;
  cnp->flow_id = 1;
  cnp->size_bytes = kHeaderBytes;
  c.source.receive(*cnp);
  const linkspeed_bps cut = c.source.current_rate();
  ASSERT_LT(cut, gbps(6));
  // With no further CNPs, fast recovery + additive increase restore most of
  // the rate within a few ms.
  env.events.run_until(from_ms(5));
  EXPECT_GT(c.source.current_rate(), gbps(9));
}

TEST(dcqcn, two_flows_converge_to_fair_share_without_loss) {
  sim_env env(17);
  single_switch star(env, 3, gbps(10), from_us(1), red_factory(env, 3, 10));
  qconn a(env, star, 0, 2, 0, 1);
  qconn b(env, star, 1, 2, 0, 2);
  env.events.run_until(from_ms(20));
  const std::uint64_t a0 = a.sink.payload_received();
  const std::uint64_t b0 = b.sink.payload_received();
  env.events.run_until(from_ms(60));
  const double ra = static_cast<double>(a.sink.payload_received() - a0);
  const double rb = static_cast<double>(b.sink.payload_received() - b0);
  EXPECT_NEAR(ra / (ra + rb), 0.5, 0.15);
  EXPECT_EQ(star.switch_port(2).stats().dropped, 0u);  // lossless fabric
  const double total_gb = (ra + rb) * 8 / to_sec(from_ms(40)) / 1e9;
  EXPECT_GT(total_gb, 8.0);
}

TEST(dcqcn, np_rate_limits_cnps) {
  sim_env env(19);
  single_switch star(env, 3, gbps(10), from_us(1), red_factory(env, 1, 2));
  qconn a(env, star, 0, 2, 0, 1);
  qconn b(env, star, 1, 2, 0, 2);
  env.events.run_until(from_ms(10));
  // Marking is pervasive with kmin=1, but CNPs are capped at one per 50us
  // per flow: <= 200 per flow in 10ms (plus slack).
  EXPECT_LE(a.sink.cnps_sent(), 220u);
  EXPECT_GT(a.sink.cnps_sent(), 10u);
}

TEST(dcqcn, alpha_tracks_congestion_level) {
  sim_env env;
  back_to_back b2b(env, gbps(10), from_us(1), red_factory(env));
  qconn c(env, b2b, 0, 1, 0, 1);
  env.events.run_until(from_us(50));
  EXPECT_DOUBLE_EQ(c.source.alpha(), 1.0);  // initial
  // Uncongested: alpha decays towards 0 at (1-g) per 55us: ~0.03 by 50ms.
  env.events.run_until(from_ms(50));
  EXPECT_LT(c.source.alpha(), 0.05);
}

}  // namespace
}  // namespace ndpsim
