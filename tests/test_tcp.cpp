#include <gtest/gtest.h>

#include "net/fifo_queues.h"
#include "tcp/tcp_sink.h"
#include "tcp/tcp_source.h"
#include "topo/micro_topo.h"
#include "topo/path_table.h"
#include "test_util.h"

namespace ndpsim {
namespace {

queue_factory droptail_factory(sim_env& env, std::uint32_t pkts = 100) {
  return [&env, pkts](link_level level, std::size_t, linkspeed_bps rate,
                      const std::string& name) -> std::unique_ptr<queue_base> {
    if (level == link_level::host_up) {
      return std::make_unique<host_priority_queue>(env, rate, name);
    }
    return std::make_unique<drop_tail_queue>(env, rate, pkts * 9000ull, name);
  };
}

struct tconn {
  tconn(sim_env& env, topology& topo, std::uint32_t s, std::uint32_t d,
        std::uint64_t bytes, std::uint32_t fid, tcp_config cfg = {},
        std::size_t path = 0, simtime_t start = 0)
      : source(env, cfg, fid), sink(env, fid) {
    source.connect(sink, topo.paths().single(s, d, path), s, d, bytes, start);
  }
  tcp_source source;
  tcp_sink sink;
};

TEST(tcp, handshake_then_transfer_completes) {
  sim_env env;
  back_to_back b2b(env, gbps(10), from_us(1), droptail_factory(env));
  tconn c(env, b2b, 0, 1, 100 * 8936, 1);
  env.events.run_all();
  EXPECT_TRUE(c.source.complete());
  EXPECT_EQ(c.sink.payload_received(), 100u * 8936);
  EXPECT_EQ(c.sink.cumulative_acked(), 100u * 8936);
  EXPECT_EQ(env.pool.outstanding(), 0u);
}

TEST(tcp, handshake_costs_one_rtt) {
  sim_env env;
  back_to_back b2b(env, gbps(10), from_us(1), droptail_factory(env));
  tcp_config with_hs;
  with_hs.handshake = true;
  tcp_config no_hs;
  no_hs.handshake = false;
  tconn a(env, b2b, 0, 1, 8936, 1, with_hs);
  env.events.run_all();
  const double fct_hs = to_us(a.source.completion_time());
  sim_env env2;
  back_to_back b2b2(env2, gbps(10), from_us(1), droptail_factory(env2));
  tconn b(env2, b2b2, 0, 1, 8936, 1, no_hs);
  env2.events.run_all();
  const double fct_tfo = to_us(b.source.completion_time());
  EXPECT_GT(fct_hs, fct_tfo + 1.5);  // handshake ~= 1 RTT (>2us here)
}

TEST(tcp, slow_start_doubles_window_per_rtt) {
  sim_env env;
  back_to_back b2b(env, gbps(10), from_ms(1), droptail_factory(env));
  tcp_config cfg;
  cfg.handshake = false;
  cfg.iw_mss = 2;
  tconn c(env, b2b, 0, 1, 0 /*unbounded*/, 1, cfg);
  const std::uint64_t w0 = 2 * 8936;
  env.events.run_until(from_ms(1));
  EXPECT_EQ(c.source.cwnd_bytes(), w0);
  env.events.run_until(from_ms(2.5));  // after ~1 RTT of acks
  EXPECT_NEAR(static_cast<double>(c.source.cwnd_bytes()),
              static_cast<double>(2 * w0), 9000.0);
  env.events.run_until(from_ms(4.6));
  EXPECT_NEAR(static_cast<double>(c.source.cwnd_bytes()),
              static_cast<double>(4 * w0), 2 * 9000.0);
}

TEST(tcp, fills_pipe_at_steady_state) {
  sim_env env;
  back_to_back b2b(env, gbps(10), from_us(10), droptail_factory(env));
  tcp_config cfg;
  cfg.handshake = false;
  tconn c(env, b2b, 0, 1, 0, 1, cfg);
  env.events.run_until(from_ms(5));
  const std::uint64_t base = c.sink.payload_received();
  env.events.run_until(from_ms(15));
  const double gb =
      static_cast<double>(c.sink.payload_received() - base) * 8 /
      to_sec(from_ms(10)) / 1e9;
  EXPECT_GT(gb, 9.0);
}

TEST(tcp, fast_retransmit_recovers_single_loss_without_timeout) {
  sim_env env(4);
  // Deterministic single loss: a dropper element discards exactly one data
  // segment mid-flow; dupacks must recover it without any timeout.
  struct dropper final : public packet_sink {
    sim_env& env;
    std::uint64_t victim_seq;
    bool dropped = false;
    dropper(sim_env& e, std::uint64_t v) : env(e), victim_seq(v) {}
    void receive(packet& p) override {
      if (!dropped && p.type == packet_type::tcp_data &&
          p.seqno == victim_seq && !p.has_flag(pkt_flag::rtx)) {
        dropped = true;
        env.pool.release(&p);
        return;
      }
      send_to_next_hop(p);
    }
  } middle(env, 20 * 8936);

  host_priority_queue nic_a(env, gbps(10)), nic_b(env, gbps(10));
  pipe w1(env, from_us(10)), w2(env, from_us(10));
  manual_paths mp;
  mp.add({&nic_a, &w1, &middle}, {&nic_b, &w2});

  tcp_config cfg;
  cfg.handshake = false;
  cfg.min_rto = from_ms(200);
  tcp_source src(env, cfg, 1);
  tcp_sink snk(env, 1);
  src.connect(snk, mp.set(), 0, 1, 200 * 8936, 0);
  env.events.run_until(from_ms(150));
  EXPECT_TRUE(src.complete());
  EXPECT_TRUE(middle.dropped);
  EXPECT_GT(src.stats().rtx_fast, 0u);
  EXPECT_EQ(src.stats().timeouts, 0u);
  // Completion far sooner than any 200ms RTO.
  EXPECT_LT(to_us(src.completion_time()), 100'000.0);
}

TEST(tcp, incast_tail_loss_forces_timeouts) {
  sim_env env(8);
  single_switch star(env, 9, gbps(10), from_us(1), droptail_factory(env, 8));
  tcp_config cfg;
  cfg.handshake = false;
  cfg.min_rto = from_ms(10);
  std::vector<std::unique_ptr<tconn>> conns;
  for (std::uint32_t s = 0; s < 8; ++s) {
    conns.push_back(
        std::make_unique<tconn>(env, star, s, 8, 40 * 8936, 10 + s, cfg));
  }
  env.events.run_until(from_sec(2));
  std::uint64_t timeouts = 0;
  for (const auto& c : conns) {
    EXPECT_TRUE(c->source.complete());
    timeouts += c->source.stats().timeouts;
  }
  // Synchronized window loss leaves too few dupacks: TCP needs RTOs.
  EXPECT_GT(timeouts, 0u);
}

TEST(tcp, rtt_estimator_tracks_path_rtt) {
  sim_env env;
  back_to_back b2b(env, gbps(10), from_us(100), droptail_factory(env));
  tcp_config cfg;
  cfg.handshake = false;
  tconn c(env, b2b, 0, 1, 50 * 8936, 1, cfg);
  env.events.run_all();
  // Wire RTT is ~200us + serialization; srtt must land in that ballpark.
  EXPECT_GT(to_us(c.source.srtt()), 180.0);
  EXPECT_LT(to_us(c.source.srtt()), 400.0);
}

TEST(tcp, unbounded_flow_never_completes) {
  sim_env env;
  back_to_back b2b(env, gbps(10), from_us(1), droptail_factory(env));
  tcp_config cfg;
  cfg.handshake = false;
  tconn c(env, b2b, 0, 1, 0, 1, cfg);
  env.events.run_until(from_ms(10));
  EXPECT_FALSE(c.source.complete());
  EXPECT_GT(c.sink.payload_received(), 0u);
}

TEST(tcp_sink, reorders_and_acks_cumulatively) {
  sim_env env;
  tcp_sink sink(env, 1);
  testing::recording_sink ack_collector(env);
  owned_route rev;
  rev.push_back(&ack_collector);
  sink.bind(&rev, 1, 0);
  auto deliver = [&](std::uint64_t start, std::uint32_t len) {
    packet* p = env.pool.alloc();
    p->type = packet_type::tcp_data;
    p->flow_id = 1;
    p->seqno = start;
    p->payload_bytes = len;
    p->size_bytes = len + kHeaderBytes;
    sink.receive(*p);
  };
  deliver(1000, 1000);  // hole at 0..1000
  EXPECT_EQ(sink.cumulative_acked(), 0u);
  deliver(0, 1000);  // fills the hole: cum jumps over both
  EXPECT_EQ(sink.cumulative_acked(), 2000u);
  deliver(500, 1000);  // overlapping duplicate: no double count
  EXPECT_EQ(sink.payload_received(), 2000u);
  EXPECT_EQ(sink.cumulative_acked(), 2000u);
  ASSERT_EQ(ack_collector.count(), 3u);
}

}  // namespace
}  // namespace ndpsim
