// Property-style tests: protocol invariants under randomized scenarios
// (parameterized over seeds and configurations).
#include <gtest/gtest.h>

#include "net/fifo_queues.h"
#include "ndp/ndp_queue.h"
#include "ndp/ndp_sink.h"
#include "ndp/ndp_source.h"
#include "ndp/pull_pacer.h"
#include "topo/micro_topo.h"
#include "topo/path_table.h"

namespace ndpsim {
namespace {

queue_factory ndp_factory(sim_env& env, std::uint32_t data_pkts) {
  return [&env, data_pkts](link_level level, std::size_t, linkspeed_bps rate,
                           const std::string& name)
             -> std::unique_ptr<queue_base> {
    if (level == link_level::host_up) {
      return std::make_unique<host_priority_queue>(env, rate, name);
    }
    ndp_queue_config c;
    c.data_capacity_bytes = data_pkts * 9000ull;
    c.header_capacity_bytes = c.data_capacity_bytes;
    return std::make_unique<ndp_queue>(env, rate, c, name);
  };
}

struct conn {
  conn(sim_env& env, topology& topo, pull_pacer& pacer, std::uint32_t s,
       std::uint32_t d, std::uint64_t bytes, std::uint32_t fid,
       const ndp_source_config& sc, const ndp_sink_config& kc = {})
      : source(env, sc, fid), sink(env, pacer, kc, fid) {
    source.connect(sink, topo.paths().all(s, d), s, d, bytes, 0);
  }
  ndp_source source;
  ndp_sink sink;
};

class random_incast : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(random_incast, invariants_hold) {
  sim_env env(GetParam());
  const std::size_t n = 2 + env.rand_below(16);
  const std::uint64_t pkts = 1 + env.rand_below(40);
  const std::uint64_t bytes = pkts * 8936 - env.rand_below(4000);
  single_switch star(env, n + 1, gbps(10), from_us(1), ndp_factory(env, 8));
  pull_pacer pacer(env, gbps(10));
  ndp_source_config sc;
  sc.iw_packets = 1 + static_cast<std::uint32_t>(env.rand_below(30));
  std::vector<std::unique_ptr<conn>> conns;
  for (std::uint32_t s = 0; s < n; ++s) {
    conns.push_back(std::make_unique<conn>(
        env, star, pacer, s, static_cast<std::uint32_t>(n), bytes,
        1000 + s, sc));
  }
  env.events.run_all(50'000'000);

  for (const auto& c : conns) {
    // Everything completes...
    EXPECT_TRUE(c->sink.complete());
    EXPECT_TRUE(c->source.complete());
    // ...with exact payload conservation (no loss, no double count)...
    EXPECT_EQ(c->sink.payload_received(), bytes);
    // ...every send is eventually acknowledged or retransmitted...
    EXPECT_GE(c->source.stats().packets_sent, c->source.total_packets());
    // ...ACKs never exceed sends...
    EXPECT_LE(c->source.stats().acks_received,
              c->source.stats().packets_sent);
  }
  // No packet leaks anywhere in the fabric.
  EXPECT_EQ(env.pool.outstanding(), 0u);
}

INSTANTIATE_TEST_SUITE_P(seeds, random_incast,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12));

struct sweep_cfg {
  std::uint32_t queue_pkts;
  std::uint32_t iw;
};

class queue_iw_sweep : public ::testing::TestWithParam<sweep_cfg> {};

TEST_P(queue_iw_sweep, two_flow_sharing_is_fair_and_lossless_for_metadata) {
  sim_env env(99);
  single_switch star(env, 3, gbps(10), from_us(1),
                     ndp_factory(env, GetParam().queue_pkts));
  pull_pacer pacer(env, gbps(10));
  ndp_source_config sc;
  sc.iw_packets = GetParam().iw;
  conn a(env, star, pacer, 0, 2, 0, 1, sc);
  conn b(env, star, pacer, 1, 2, 0, 2, sc);
  env.events.run_until(from_ms(5));
  const double pa = static_cast<double>(a.sink.payload_received());
  const double pb = static_cast<double>(b.sink.payload_received());
  EXPECT_NEAR(pa / (pa + pb), 0.5, 0.06);
  // Metadata losslessness: with an ample header queue nothing is dropped.
  EXPECT_EQ(star.switch_port(2).stats().dropped, 0u);
  // Aggregate goodput close to line rate.
  const double gb = (pa + pb) * 8 / to_sec(from_ms(5)) / 1e9;
  EXPECT_GT(gb, 8.8);
}

INSTANTIATE_TEST_SUITE_P(
    configs, queue_iw_sweep,
    ::testing::Values(sweep_cfg{2, 5}, sweep_cfg{2, 30}, sweep_cfg{4, 10},
                      sweep_cfg{8, 15}, sweep_cfg{8, 23}, sweep_cfg{8, 50},
                      sweep_cfg{16, 30}, sweep_cfg{8, 30}));

class mtu_sweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(mtu_sweep, completes_with_any_mtu) {
  const std::uint32_t mtu = GetParam();
  sim_env env(3);
  auto factory = [&env, mtu](link_level level, std::size_t, linkspeed_bps rate,
                             const std::string& name)
      -> std::unique_ptr<queue_base> {
    if (level == link_level::host_up) {
      return std::make_unique<host_priority_queue>(env, rate, name);
    }
    ndp_queue_config c;
    c.data_capacity_bytes = 8ull * mtu;
    c.header_capacity_bytes = c.data_capacity_bytes;
    return std::make_unique<ndp_queue>(env, rate, c, name);
  };
  single_switch star(env, 5, gbps(10), from_us(1), factory);
  pull_pacer pacer(env, gbps(10));
  ndp_source_config sc;
  sc.mss_bytes = mtu;
  ndp_sink_config kc;
  kc.mss_bytes = mtu;
  std::vector<std::unique_ptr<conn>> conns;
  const std::uint64_t bytes = 40 * (mtu - kHeaderBytes);
  for (std::uint32_t s = 0; s < 4; ++s) {
    auto c = std::make_unique<conn>(env, star, pacer, s, 4, bytes, 10 + s, sc,
                                    kc);
    conns.push_back(std::move(c));
  }
  env.events.run_all(50'000'000);
  for (const auto& c : conns) {
    EXPECT_TRUE(c->sink.complete());
    EXPECT_EQ(c->sink.payload_received(), bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(mtus, mtu_sweep,
                         ::testing::Values(1500, 4500, 9000, 1064, 256));

}  // namespace
}  // namespace ndpsim
