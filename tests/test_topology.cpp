#include <gtest/gtest.h>

#include "net/fifo_queues.h"
#include "topo/fat_tree.h"
#include "topo/micro_topo.h"
#include "test_util.h"

namespace ndpsim {
namespace {

queue_factory droptail_factory(sim_env& env) {
  return [&env](link_level, std::size_t, linkspeed_bps rate,
                const std::string& name) -> std::unique_ptr<queue_base> {
    return std::make_unique<drop_tail_queue>(env, rate, 100 * 9000, name);
  };
}

fat_tree_config ft_cfg(unsigned k, unsigned oversub = 1) {
  fat_tree_config c;
  c.k = k;
  c.oversubscription = oversub;
  return c;
}

TEST(fat_tree, host_and_switch_counts) {
  sim_env env;
  fat_tree ft(env, ft_cfg(4), droptail_factory(env));
  EXPECT_EQ(ft.n_hosts(), 16u);  // k^3/4
  EXPECT_EQ(ft.n_tors(), 8u);
  EXPECT_EQ(ft.n_aggs(), 8u);
  EXPECT_EQ(ft.n_cores(), 4u);
}

TEST(fat_tree, paper_topology_sizes) {
  // k=8 -> 128 hosts; k=12 -> 432 hosts (the paper's main simulation size).
  sim_env env;
  fat_tree ft8(env, ft_cfg(8), droptail_factory(env));
  EXPECT_EQ(ft8.n_hosts(), 128u);
  fat_tree ft12(env, ft_cfg(12), droptail_factory(env));
  EXPECT_EQ(ft12.n_hosts(), 432u);
}

TEST(fat_tree, oversubscription_multiplies_hosts) {
  sim_env env;
  fat_tree ft(env, ft_cfg(8, 4), droptail_factory(env));
  EXPECT_EQ(ft.n_hosts(), 512u);  // the paper's Fig 23 fabric
  EXPECT_EQ(ft.hosts_per_tor(), 16u);
}

TEST(fat_tree, path_counts_by_locality) {
  sim_env env;
  fat_tree ft(env, ft_cfg(8), droptail_factory(env));
  // Same ToR (hosts 0 and 1): one path.
  EXPECT_EQ(ft.n_paths(0, 1), 1u);
  // Same pod, different ToR: k/2 = 4 paths.
  EXPECT_EQ(ft.n_paths(0, 4), 4u);
  // Different pods: (k/2)^2 = 16 paths.
  EXPECT_EQ(ft.n_paths(0, 127), 16u);
}

TEST(fat_tree, interpod_route_has_six_queues) {
  sim_env env;
  fat_tree ft(env, ft_cfg(4), droptail_factory(env));
  auto [fwd, rev] = ft.make_route_pair(0, 15, 0);
  // host_up, tor_up, agg_up, core_down, agg_down, tor_down = 6 queue+pipe
  // pairs, no endpoint yet.
  EXPECT_EQ(fwd->size(), 12u);
  EXPECT_EQ(fwd->queue_hops(), 6u);
  EXPECT_EQ(rev->size(), 12u);
}

TEST(fat_tree, same_tor_route_has_two_queues) {
  sim_env env;
  fat_tree ft(env, ft_cfg(4), droptail_factory(env));
  auto [fwd, rev] = ft.make_route_pair(0, 1, 0);
  EXPECT_EQ(fwd->queue_hops(), 2u);
}

TEST(fat_tree, distinct_paths_use_distinct_cores) {
  sim_env env;
  fat_tree ft(env, ft_cfg(4), droptail_factory(env));
  // Collect the core_down queue pointer (element index 6) for every path.
  std::set<const packet_sink*> cores;
  for (std::size_t p = 0; p < ft.n_paths(0, 15); ++p) {
    auto [fwd, rev] = ft.make_route_pair(0, 15, p);
    cores.insert(&fwd->at(6));
  }
  EXPECT_EQ(cores.size(), 4u);  // (k/2)^2 distinct cores
}

TEST(fat_tree, forward_and_reverse_traverse_same_switches) {
  sim_env env;
  fat_tree ft(env, ft_cfg(4), droptail_factory(env));
  // Deliver a packet along fwd and then along rev; both must work and end
  // at the appended endpoints.
  testing::recording_sink dst(env), src(env);
  auto [fwd, rev] = ft.make_route_pair(2, 13, 3);
  fwd->push_back(&dst);
  rev->push_back(&src);
  packet* a = testing::make_data(env, fwd.get());
  send_to_next_hop(*a);
  packet* b = testing::make_data(env, rev.get());
  send_to_next_hop(*b);
  env.events.run_all();
  EXPECT_EQ(dst.count(), 1u);
  EXPECT_EQ(src.count(), 1u);
}

TEST(fat_tree, delivery_latency_matches_store_and_forward_math) {
  sim_env env;
  fat_tree_config cfg = ft_cfg(4);
  cfg.link_delay = from_us(1);
  fat_tree ft(env, cfg, droptail_factory(env));
  testing::recording_sink dst(env);
  auto [fwd, rev] = ft.make_route_pair(0, 15, 0);
  fwd->push_back(&dst);
  packet* p = testing::make_data(env, fwd.get(), 9000);
  send_to_next_hop(*p);
  env.events.run_all();
  // 6 hops x (7.2us serialization + 1us propagation) = 49.2us.
  ASSERT_EQ(dst.count(), 1u);
  EXPECT_EQ(dst.arrivals()[0].at, from_us(49.2));
}

TEST(fat_tree, speed_override_degrades_one_link) {
  sim_env env;
  fat_tree_config cfg = ft_cfg(4);
  cfg.speed_override = [](link_level level, std::size_t index,
                          linkspeed_bps def) -> linkspeed_bps {
    if (level == link_level::agg_up && index == 0) return gbps(1);
    return def;
  };
  fat_tree ft(env, cfg, [&env](link_level, std::size_t, linkspeed_bps rate,
                               const std::string& name) {
    return std::unique_ptr<queue_base>(
        std::make_unique<drop_tail_queue>(env, rate, 100 * 9000, name));
  });
  const auto& agg_up = ft.queues_at(link_level::agg_up);
  EXPECT_EQ(agg_up[0]->rate(), gbps(1));
  EXPECT_EQ(agg_up[1]->rate(), gbps(10));
}

TEST(fat_tree, aggregate_stats_sum_over_level) {
  sim_env env;
  fat_tree ft(env, ft_cfg(4), droptail_factory(env));
  testing::recording_sink dst(env);
  auto [fwd, rev] = ft.make_route_pair(0, 15, 0);
  fwd->push_back(&dst);
  for (std::uint64_t i = 1; i <= 3; ++i) {
    send_to_next_hop(*testing::make_data(env, fwd.get(), 9000, i));
  }
  env.events.run_all();
  EXPECT_EQ(ft.aggregate_stats(link_level::host_up).forwarded, 3u);
  EXPECT_EQ(ft.aggregate_stats(link_level::agg_up).forwarded, 3u);
  EXPECT_EQ(ft.aggregate_stats(link_level::tor_down).forwarded, 3u);
}

TEST(fat_tree, pfc_mode_inserts_ingress_elements) {
  sim_env env;
  fat_tree_config cfg = ft_cfg(4);
  cfg.pfc.enabled = true;
  fat_tree ft(env, cfg, droptail_factory(env));
  auto [fwd, rev] = ft.make_route_pair(0, 15, 0);
  // 6 queue+pipe pairs + 5 pfc ingress elements (none at the final host).
  EXPECT_EQ(fwd->size(), 17u);
  // Route still delivers end to end.
  testing::recording_sink dst(env);
  fwd->push_back(&dst);
  send_to_next_hop(*testing::make_data(env, fwd.get()));
  env.events.run_all();
  EXPECT_EQ(dst.count(), 1u);
}

TEST(fat_tree, k12_path_counts_match_structure) {
  // The paper's main simulation size: k=12, 432 hosts.  Path counts follow
  // the (k/2)^2 / (k/2) / 1 structure for inter-pod, intra-pod and same-ToR
  // pairs.
  sim_env env;
  fat_tree ft(env, ft_cfg(12), droptail_factory(env));
  EXPECT_EQ(ft.n_hosts(), 432u);
  EXPECT_EQ(ft.hosts_per_tor(), 6u);
  EXPECT_EQ(ft.n_paths(0, 431), 36u);  // inter-pod: (k/2)^2
  EXPECT_EQ(ft.n_paths(0, 12), 6u);    // intra-pod, different ToR: k/2
  EXPECT_EQ(ft.n_paths(0, 1), 1u);     // same ToR
}

TEST(fat_tree, k12_forward_and_reverse_traverse_partner_links) {
  // Forward and reverse of the same path index must traverse the same
  // switches: the same core, and the same (j, m) aggregation/port choice in
  // both pods — the forward direction's queues and the reverse direction's
  // queues are the two directions of the same physical links.
  sim_env env;
  fat_tree ft(env, ft_cfg(12), droptail_factory(env));
  const unsigned half_k = 6;
  const std::uint32_t src = 2;    // pod 0
  const std::uint32_t dst = 431;  // pod 11
  const unsigned pa = ft.pod_of(src);
  const unsigned pb = ft.pod_of(dst);
  auto index_of = [&](link_level level, const packet_sink* q) {
    const auto& qs = ft.queues_at(level);
    for (std::size_t i = 0; i < qs.size(); ++i) {
      if (static_cast<const packet_sink*>(qs[i]) == q) return i;
    }
    ADD_FAILURE() << "queue not found at level " << to_string(level);
    return std::size_t{0};
  };
  for (std::size_t p = 0; p < ft.n_paths(src, dst); ++p) {
    auto [fwd, rev] = ft.make_route_pair(src, dst, p);
    // Queue positions on an inter-pod route: 0 host_up, 2 tor_up, 4 agg_up,
    // 6 core_down, 8 agg_down, 10 tor_down.
    const std::size_t f_agg_up = index_of(link_level::agg_up, &fwd->at(4));
    const std::size_t r_agg_up = index_of(link_level::agg_up, &rev->at(4));
    const std::size_t f_core = index_of(link_level::core_down, &fwd->at(6));
    const std::size_t r_core = index_of(link_level::core_down, &rev->at(6));
    // agg_up index = (pod*half_k + j)*half_k + m.
    const unsigned f_j = (f_agg_up / half_k) % half_k;
    const unsigned f_m = f_agg_up % half_k;
    const unsigned r_j = (r_agg_up / half_k) % half_k;
    const unsigned r_m = r_agg_up % half_k;
    EXPECT_EQ(f_agg_up / (half_k * half_k), pa);  // fwd climbs in pod a
    EXPECT_EQ(r_agg_up / (half_k * half_k), pb);  // rev climbs in pod b
    EXPECT_EQ(f_j, r_j) << "same aggregation choice both ways, path " << p;
    EXPECT_EQ(f_m, r_m) << "same core port both ways, path " << p;
    // core_down index = core*k + pod: both directions cross the SAME core,
    // each descending into the other's pod.
    EXPECT_EQ(f_core / 12, r_core / 12) << "same core switch, path " << p;
    EXPECT_EQ(f_core % 12, pb);
    EXPECT_EQ(r_core % 12, pa);
    // And the descent uses the same aggregation switch (j) on each side:
    // agg_down index = (pod*half_k + j)*half_k + tor_local.
    const std::size_t f_agg_dn = index_of(link_level::agg_down, &fwd->at(8));
    const std::size_t r_agg_dn = index_of(link_level::agg_down, &rev->at(8));
    EXPECT_EQ(f_agg_dn / (half_k * half_k), pb);
    EXPECT_EQ(r_agg_dn / (half_k * half_k), pa);
    EXPECT_EQ((f_agg_dn / half_k) % half_k, f_j);
    EXPECT_EQ((r_agg_dn / half_k) % half_k, f_j);
  }
}

TEST(back_to_back, single_nic_route) {
  sim_env env;
  back_to_back b2b(env, gbps(10), from_us(1), droptail_factory(env));
  EXPECT_EQ(b2b.n_hosts(), 2u);
  EXPECT_EQ(b2b.n_paths(0, 1), 1u);
  auto [fwd, rev] = b2b.make_route_pair(0, 1, 0);
  testing::recording_sink dst(env);
  fwd->push_back(&dst);
  send_to_next_hop(*testing::make_data(env, fwd.get()));
  env.events.run_all();
  ASSERT_EQ(dst.count(), 1u);
  EXPECT_EQ(dst.arrivals()[0].at, from_us(8.2));  // 7.2 serialize + 1 wire
}

TEST(single_switch, routes_through_target_port) {
  sim_env env;
  single_switch star(env, 5, gbps(10), from_us(1), droptail_factory(env));
  EXPECT_EQ(star.n_hosts(), 5u);
  auto [fwd, rev] = star.make_route_pair(0, 4, 0);
  EXPECT_EQ(fwd->queue_hops(), 2u);
  // The contended port object is shared between routes to the same host.
  auto [fwd2, rev2] = star.make_route_pair(1, 4, 0);
  EXPECT_EQ(&fwd->at(2), &fwd2->at(2));
  EXPECT_EQ(&fwd->at(2), static_cast<packet_sink*>(&star.switch_port(4)));
}

TEST(leaf_spine, paper_testbed_shape) {
  sim_env env;
  // 8 servers, four-port switches: 4 leaves x 2 hosts, 2 spines (Fig 9).
  leaf_spine ls(env, 4, 2, 2, gbps(10), from_us(1), droptail_factory(env));
  EXPECT_EQ(ls.n_hosts(), 8u);
  EXPECT_EQ(ls.n_paths(0, 2), 2u);  // via either spine
  EXPECT_EQ(ls.n_paths(0, 1), 1u);  // same leaf
  auto [fwd, rev] = ls.make_route_pair(0, 7, 1);
  EXPECT_EQ(fwd->queue_hops(), 4u);
  testing::recording_sink dst(env);
  fwd->push_back(&dst);
  send_to_next_hop(*testing::make_data(env, fwd.get()));
  env.events.run_all();
  EXPECT_EQ(dst.count(), 1u);
}

TEST(leaf_spine, same_leaf_skips_spine) {
  sim_env env;
  leaf_spine ls(env, 4, 2, 2, gbps(10), from_us(1), droptail_factory(env));
  auto [fwd, rev] = ls.make_route_pair(0, 1, 0);
  EXPECT_EQ(fwd->queue_hops(), 2u);
}

}  // namespace
}  // namespace ndpsim
