#include <gtest/gtest.h>

#include "harness/experiments.h"
#include "net/fifo_queues.h"
#include "ndp/ndp_queue.h"
#include "workload/traffic_matrix.h"

namespace ndpsim {
namespace {

TEST(queue_factory_harness, builds_protocol_specific_queues) {
  sim_env env;
  fabric_params p;
  p.proto = protocol::ndp;
  auto f = make_queue_factory(env, p);
  auto host = f(link_level::host_up, 0, gbps(10), "h");
  auto sw = f(link_level::tor_down, 0, gbps(10), "t");
  EXPECT_EQ(host->buffered_packets(), 0u);
  // NDP switch queue trims rather than drops.
  EXPECT_NE(dynamic_cast<ndp_queue*>(sw.get()), nullptr);

  p.proto = protocol::dctcp;
  auto f2 = make_queue_factory(env, p);
  auto sw2 = f2(link_level::agg_up, 0, gbps(10), "t2");
  EXPECT_NE(dynamic_cast<ecn_threshold_queue*>(sw2.get()), nullptr);
}

TEST(queue_factory_harness, lossless_only_for_dcqcn) {
  EXPECT_TRUE(fabric_is_lossless(protocol::dcqcn));
  EXPECT_FALSE(fabric_is_lossless(protocol::ndp));
  EXPECT_FALSE(fabric_is_lossless(protocol::tcp));
  fabric_params p;
  p.proto = protocol::dcqcn;
  EXPECT_TRUE(default_pfc(p).enabled);
  p.proto = protocol::mptcp;
  EXPECT_FALSE(default_pfc(p).enabled);
}

TEST(flow_factory_harness, creates_and_tracks_all_protocols) {
  for (protocol proto :
       {protocol::ndp, protocol::tcp, protocol::dctcp, protocol::mptcp,
        protocol::dcqcn, protocol::phost}) {
    fabric_params fp;
    fp.proto = proto;
    auto bed = make_fat_tree_testbed(1, 4, fp);
    flow_options o;
    o.bytes = 30 * 8936;
    o.subflows = 4;
    flow& f = bed->flows->create(proto, 0, 12, o);
    run_until_complete(bed->env, {&f}, from_sec(3));
    EXPECT_TRUE(f.complete()) << "protocol " << to_string(proto);
    EXPECT_EQ(f.payload_received(), o.bytes) << to_string(proto);
    EXPECT_GT(f.fct_us(), 0.0) << to_string(proto);
    EXPECT_EQ(bed->flows->completed_count(), 1u);
  }
}

TEST(experiments, small_ndp_permutation_is_efficient) {
  fabric_params fp;
  fp.proto = protocol::ndp;
  auto bed = make_fat_tree_testbed(7, 4, fp);
  flow_options o;  // unbounded
  auto res = run_permutation(*bed, protocol::ndp, o, from_ms(2), from_ms(4));
  EXPECT_EQ(res.flow_gbps.size(), 16u);
  EXPECT_GT(res.utilization, 0.85);
  // Fairness: worst flow not starved.
  EXPECT_GT(res.flow_gbps.front(), 5.0);
}

TEST(experiments, incast_runner_reports_ndp_stats) {
  fabric_params fp;
  fp.proto = protocol::ndp;
  auto bed = make_fat_tree_testbed(9, 4, fp);
  const auto senders = incast_senders(bed->env.rng, bed->topo->n_hosts(), 0, 10);
  flow_options o;
  auto res =
      run_incast(*bed, protocol::ndp, senders, 0, 30 * 8936, o, from_sec(2));
  EXPECT_EQ(res.completed, 10u);
  EXPECT_GT(res.packets_sent, 0u);
  EXPECT_GT(res.last_fct_us, 0.0);
  EXPECT_GE(res.last_fct_us, res.first_fct_us);
}

TEST(experiments, incast_optimal_formula) {
  // 10 senders x 90000 payload bytes at 10G: wire = 90000 + ~11 headers
  // each; drain ~ 10*90704*8/10G = 725.6us plus the one-way latency.
  const double t = incast_optimal_us(10, 90000, 9000, gbps(10), from_us(10));
  EXPECT_NEAR(t, 725.6 + 10.0, 2.0);
}

TEST(experiments, ndp_beats_optimal_never) {
  fabric_params fp;
  fp.proto = protocol::ndp;
  auto bed = make_fat_tree_testbed(11, 4, fp);
  const auto senders = incast_senders(bed->env.rng, bed->topo->n_hosts(), 3, 8);
  flow_options o;
  auto res =
      run_incast(*bed, protocol::ndp, senders, 3, 50 * 8936, o, from_sec(2));
  const double opt = incast_optimal_us(8, 50 * 8936, 9000, gbps(10),
                                       /*one way ~4 hops*/ from_us(33));
  EXPECT_EQ(res.completed, 8u);
  EXPECT_GT(res.last_fct_us, opt * 0.98);
  // And NDP should be within ~15% of optimal on this small incast.
  EXPECT_LT(res.last_fct_us, opt * 1.15);
}

}  // namespace
}  // namespace ndpsim
