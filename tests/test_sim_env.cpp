#include <gtest/gtest.h>

#include "net/sim_env.h"

namespace ndpsim {
namespace {

TEST(sim_env, rand_below_is_in_range) {
  sim_env env(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(env.rand_below(7), 7u);
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(env.rand_below(1), 0u);
}

TEST(sim_env, rand_unit_in_half_open_interval) {
  sim_env env(2);
  for (int i = 0; i < 1000; ++i) {
    const double u = env.rand_unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(sim_env, coin_is_roughly_fair) {
  sim_env env(3);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += env.rand_coin() ? 1 : 0;
  EXPECT_NEAR(heads, 5000, 300);
}

TEST(sim_env, seeded_runs_are_reproducible) {
  sim_env a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.rand_below(1000), b.rand_below(1000));
  }
}

TEST(sim_env, different_seeds_diverge) {
  sim_env a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.rand_below(1000) == b.rand_below(1000) ? 1 : 0;
  }
  EXPECT_LT(same, 10);
}

TEST(sim_env, now_tracks_event_list) {
  sim_env env;
  EXPECT_EQ(env.now(), 0);
  env.events.run_until(from_us(12));
  EXPECT_EQ(env.now(), from_us(12));
}

}  // namespace
}  // namespace ndpsim
