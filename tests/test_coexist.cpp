// NDP/TCP coexistence port (paper §3 "Limitations"): separate queues per
// class, fair-queued onto the shared link.
#include <gtest/gtest.h>

#include "ndp/coexist_queue.h"
#include "ndp/ndp_sink.h"
#include "ndp/ndp_source.h"
#include "ndp/pull_pacer.h"
#include "net/pipe.h"
#include "tcp/tcp_sink.h"
#include "tcp/tcp_source.h"
#include "topo/micro_topo.h"
#include "topo/path_table.h"
#include "test_util.h"

namespace ndpsim {
namespace {

using testing::make_data;
using testing::recording_sink;

coexist_config small_cfg() {
  coexist_config c;
  c.ndp.data_capacity_bytes = 8 * 9000;
  c.ndp.header_capacity_bytes = 8 * 9000;
  c.tcp_capacity_bytes = 50 * 9000;
  return c;
}

TEST(coexist_queue, classifies_by_protocol) {
  sim_env env;
  recording_sink sink(env);
  coexist_queue q(env, gbps(10), small_cfg());
  q.set_paused(true);
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);
  packet* t = env.pool.alloc();
  t->type = packet_type::tcp_data;
  t->size_bytes = 9000;
  t->rt = &r;
  t->next_hop = 0;
  send_to_next_hop(*t);
  send_to_next_hop(*make_data(env, &r, 9000, 1));  // ndp_data
  EXPECT_EQ(q.tcp_stats().arrivals, 0u);  // stats live on the children
  EXPECT_EQ(q.buffered_packets(), 2u);
  q.set_paused(false);
  env.events.run_all();
  EXPECT_EQ(sink.count(), 2u);
}

TEST(coexist_queue, ndp_side_still_trims) {
  sim_env env;
  recording_sink sink(env);
  coexist_config cfg = small_cfg();
  cfg.ndp.data_capacity_bytes = 9000;  // one packet
  coexist_queue q(env, gbps(10), cfg);
  q.set_paused(true);
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);
  for (std::uint64_t i = 1; i <= 3; ++i) send_to_next_hop(*make_data(env, &r, 9000, i));
  EXPECT_EQ(q.ndp_stats().trimmed, 2u);
  q.set_paused(false);
  env.events.run_all();
  EXPECT_EQ(sink.count(), 3u);  // nothing lost, two arrived as headers
}

TEST(coexist_queue, tcp_side_still_drops) {
  sim_env env;
  recording_sink sink(env);
  coexist_config cfg = small_cfg();
  cfg.tcp_capacity_bytes = 2 * 9000;
  coexist_queue q(env, gbps(10), cfg);
  q.set_paused(true);
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);
  for (std::uint64_t i = 1; i <= 4; ++i) {
    packet* t = env.pool.alloc();
    t->type = packet_type::tcp_data;
    t->size_bytes = 9000;
    t->seqno = i;
    t->rt = &r;
    t->next_hop = 0;
    send_to_next_hop(*t);
  }
  EXPECT_EQ(q.tcp_stats().dropped, 2u);
  q.set_paused(false);
  env.events.run_all();
  EXPECT_EQ(sink.count(), 2u);
  EXPECT_EQ(env.pool.outstanding(), 0u);
}

TEST(coexist_queue, drr_shares_bytes_evenly_under_backlog) {
  sim_env env;
  recording_sink sink(env);
  coexist_queue q(env, gbps(10), small_cfg());
  q.set_paused(true);
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);
  // Backlog both classes; the NDP side can hold 8, the TCP side many more.
  for (std::uint64_t i = 1; i <= 8; ++i) send_to_next_hop(*make_data(env, &r, 9000, i));
  for (std::uint64_t i = 1; i <= 8; ++i) {
    packet* t = env.pool.alloc();
    t->type = packet_type::tcp_data;
    t->size_bytes = 9000;
    t->seqno = 100 + i;
    t->rt = &r;
    t->next_hop = 0;
    send_to_next_hop(*t);
  }
  q.set_paused(false);
  env.events.run_all();
  ASSERT_EQ(sink.count(), 16u);
  EXPECT_EQ(q.ndp_bytes_sent(), q.tcp_bytes_sent());
  // Interleaved, not one class then the other.
  bool saw_tcp_before_last_ndp = false;
  bool ndp_pending = false;
  for (auto it = sink.arrivals().rbegin(); it != sink.arrivals().rend(); ++it) {
    if (it->type == packet_type::ndp_data) ndp_pending = true;
    if (it->type == packet_type::tcp_data && ndp_pending) {
      saw_tcp_before_last_ndp = true;
      break;
    }
  }
  EXPECT_TRUE(saw_tcp_before_last_ndp);
}

TEST(coexist_integration, tcp_and_ndp_flows_share_a_port_fairly) {
  // One long TCP flow and one long NDP flow into the same host, through a
  // coexistence port: each should get roughly half the link.
  sim_env env(33);
  auto factory = [&env](link_level level, std::size_t, linkspeed_bps rate,
                        const std::string& name) -> std::unique_ptr<queue_base> {
    if (level == link_level::host_up) {
      return std::make_unique<host_priority_queue>(env, rate, name,
                                                   200 * 9000ull);
    }
    return std::make_unique<coexist_queue>(env, rate, coexist_config{}, name);
  };
  single_switch star(env, 3, gbps(10), from_us(1), factory);

  pull_pacer pacer(env, gbps(10));
  ndp_source nsrc(env, {}, 1);
  ndp_sink nsnk(env, pacer, {}, 1);
  nsrc.connect(nsnk, star.paths().all(0, 2), 0, 2, 0, 0);
  tcp_config tc;
  tc.handshake = false;
  tc.min_rto = from_ms(5);
  tcp_source tsrc(env, tc, 2);
  tcp_sink tsnk(env, 2);
  tsrc.connect(tsnk, star.paths().single(1, 2, 0), 1, 2, 0, 0);

  env.events.run_until(from_ms(10));
  const std::uint64_t n0 = nsnk.payload_received();
  const std::uint64_t t0 = tsnk.payload_received();
  env.events.run_until(from_ms(60));
  const double nshare = static_cast<double>(nsnk.payload_received() - n0);
  const double tshare = static_cast<double>(tsnk.payload_received() - t0);
  const double frac = nshare / (nshare + tshare);
  EXPECT_GT(frac, 0.35);
  EXPECT_LT(frac, 0.65);
  // And the link stays busy: combined goodput near line rate.
  const double total_gb = (nshare + tshare) * 8 / to_sec(from_ms(50)) / 1e9;
  EXPECT_GT(total_gb, 8.5);
}

}  // namespace
}  // namespace ndpsim
