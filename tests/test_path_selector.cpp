#include <gtest/gtest.h>

#include <map>
#include <set>

#include "ndp/path_selector.h"

namespace ndpsim {
namespace {

TEST(path_selector, permutation_covers_all_paths_each_round) {
  sim_env env(3);
  path_selector sel(env, 8, path_mode::permutation);
  for (int round = 0; round < 5; ++round) {
    std::map<std::uint16_t, int> seen;
    for (int i = 0; i < 8; ++i) seen[sel.next()]++;
    EXPECT_EQ(seen.size(), 8u) << "each round must touch every path once";
    for (const auto& [p, n] : seen) EXPECT_EQ(n, 1);
  }
}

TEST(path_selector, permutation_order_varies_between_rounds) {
  sim_env env(3);
  path_selector sel(env, 16, path_mode::permutation);
  std::vector<std::uint16_t> r1, r2;
  for (int i = 0; i < 16; ++i) r1.push_back(sel.next());
  for (int i = 0; i < 16; ++i) r2.push_back(sel.next());
  EXPECT_NE(r1, r2);  // 1/16! chance of false failure
}

TEST(path_selector, random_mode_is_roughly_uniform) {
  sim_env env(5);
  path_selector sel(env, 4, path_mode::random_per_packet);
  std::map<std::uint16_t, int> seen;
  for (int i = 0; i < 4000; ++i) seen[sel.next()]++;
  for (const auto& [p, n] : seen) EXPECT_NEAR(n, 1000, 150);
}

TEST(path_selector, single_mode_always_zero) {
  sim_env env;
  path_selector sel(env, 4, path_mode::single);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sel.next(), 0);
}

TEST(path_selector, next_avoiding_retransmission_path) {
  sim_env env(1);
  path_selector sel(env, 8, path_mode::permutation);
  for (int i = 0; i < 100; ++i) {
    const std::uint16_t avoid = 3;
    EXPECT_NE(sel.next_avoiding(avoid), avoid);
  }
}

TEST(path_selector, next_avoiding_with_single_path_degenerates) {
  sim_env env;
  path_selector sel(env, 1, path_mode::permutation);
  EXPECT_EQ(sel.next_avoiding(0), 0);
}

TEST(path_selector, nack_outlier_path_gets_excluded) {
  sim_env env(11);
  path_penalty_config pen;
  pen.min_samples = 16;
  path_selector sel(env, 4, path_mode::permutation, pen);
  // Path 2 NACKs 90% of its packets; others are clean.
  for (int i = 0; i < 200; ++i) {
    for (std::uint16_t p = 0; p < 4; ++p) {
      if (p == 2 && i % 10 != 0) {
        sel.record_nack(p);
      } else {
        sel.record_ack(p);
      }
    }
    (void)sel.next();  // trigger periodic reshuffles
  }
  // Force a reshuffle round to evaluate penalties.
  for (int i = 0; i < 8; ++i) (void)sel.next();
  EXPECT_TRUE(sel.is_excluded(2));
  EXPECT_FALSE(sel.is_excluded(0));
  EXPECT_FALSE(sel.is_excluded(1));
  EXPECT_FALSE(sel.is_excluded(3));
  // next() never returns the excluded path while the penalty lasts.
  for (int i = 0; i < 30; ++i) EXPECT_NE(sel.next(), 2);
}

TEST(path_selector, loss_outlier_path_gets_excluded) {
  sim_env env(12);
  path_selector sel(env, 4, path_mode::permutation);
  for (int i = 0; i < 20; ++i) sel.record_loss(1);
  for (int i = 0; i < 50; ++i) {
    sel.record_ack(0);
    sel.record_ack(2);
    sel.record_ack(3);
  }
  for (int i = 0; i < 8; ++i) (void)sel.next();
  EXPECT_TRUE(sel.is_excluded(1));
}

TEST(path_selector, penalty_expires) {
  sim_env env(13);
  path_penalty_config pen;
  pen.penalty_time = from_us(100);
  path_selector sel(env, 2, path_mode::permutation, pen);
  for (int i = 0; i < 50; ++i) {
    sel.record_nack(1);
    sel.record_ack(0);
  }
  for (int i = 0; i < 4; ++i) (void)sel.next();
  ASSERT_TRUE(sel.is_excluded(1));
  env.events.run_until(from_ms(1));  // well past the penalty
  EXPECT_FALSE(sel.is_excluded(1));
}

TEST(path_selector, excluded_path_reenters_after_penalty_without_retrigger) {
  // §3.2.3: exclusion is temporary.  After `penalty_time` the path rejoins
  // the permutation, and because per-path counters decay at every reshuffle,
  // the stale NACK history that caused the exclusion must not immediately
  // re-trigger it once the path is clean again.
  sim_env env(17);
  path_penalty_config pen;
  pen.penalty_time = from_us(200);
  path_selector sel(env, 4, path_mode::permutation, pen);
  // Path 2 NACKs everything; the others are clean.
  for (int i = 0; i < 100; ++i) {
    for (std::uint16_t p = 0; p < 4; ++p) {
      if (p == 2) {
        sel.record_nack(p);
      } else {
        sel.record_ack(p);
      }
    }
  }
  for (int i = 0; i < 8; ++i) (void)sel.next();
  ASSERT_TRUE(sel.is_excluded(2));
  EXPECT_EQ(sel.n_usable(), 3u);
  for (int i = 0; i < 30; ++i) EXPECT_NE(sel.next(), 2);

  // While excluded, traffic keeps flowing on the healthy paths; each
  // reshuffle decays path 2's stale counters below min_samples.
  for (int i = 0; i < 400; ++i) sel.record_ack(sel.next());

  // Past the penalty the path is no longer excluded and rejoins the
  // permutation at the next reshuffle round.
  env.events.run_until(from_us(300));
  EXPECT_FALSE(sel.is_excluded(2));
  std::set<std::uint16_t> seen;
  for (int i = 0; i < 12; ++i) seen.insert(sel.next());
  EXPECT_EQ(seen.count(2), 1u) << "path must re-enter the rotation";
  EXPECT_EQ(sel.n_usable(), 4u);

  // Clean behaviour afterwards: the decayed history must not re-exclude it.
  for (int i = 0; i < 200; ++i) sel.record_ack(sel.next());
  EXPECT_FALSE(sel.is_excluded(2));
  EXPECT_EQ(sel.n_usable(), 4u);
}

TEST(path_selector, all_excluded_falls_back_to_full_set) {
  sim_env env(14);
  path_selector sel(env, 2, path_mode::permutation);
  for (int i = 0; i < 100; ++i) {
    sel.record_loss(0);
    sel.record_loss(1);
  }
  // Both paths are loss outliers... mean is high so neither may trip; force
  // via nacks instead.
  for (int i = 0; i < 100; ++i) {
    sel.record_nack(0);
    sel.record_nack(1);
  }
  // Either way, next() must keep returning valid paths.
  for (int i = 0; i < 20; ++i) EXPECT_LT(sel.next(), 2);
  EXPECT_GE(sel.n_usable(), 1u);
}

TEST(path_selector, penalties_can_be_disabled) {
  sim_env env(15);
  path_penalty_config pen;
  pen.enabled = false;
  path_selector sel(env, 2, path_mode::permutation, pen);
  for (int i = 0; i < 100; ++i) sel.record_nack(1);
  for (int i = 0; i < 10; ++i) (void)sel.next();
  EXPECT_FALSE(sel.is_excluded(1));
}

}  // namespace
}  // namespace ndpsim
