// The interned path table: shared routes, the flat hop arena, per-host
// demux delivery, subset sampling and the reverse-pointer invariant.
#include <gtest/gtest.h>

#include <set>

#include "harness/experiments.h"
#include "net/fifo_queues.h"
#include "tcp/tcp_sink.h"
#include "tcp/tcp_source.h"
#include "topo/fat_tree.h"
#include "topo/micro_topo.h"
#include "topo/path_table.h"
#include "test_util.h"

namespace ndpsim {
namespace {

queue_factory droptail_factory(sim_env& env) {
  return [&env](link_level, std::size_t, linkspeed_bps rate,
                const std::string& name) -> std::unique_ptr<queue_base> {
    return std::make_unique<drop_tail_queue>(env, rate, 100 * 9000, name);
  };
}

fat_tree_config ft_cfg(unsigned k) {
  fat_tree_config c;
  c.k = k;
  return c;
}

TEST(path_table, two_flows_on_same_pair_get_pointer_identical_routes) {
  sim_env env;
  fat_tree ft(env, ft_cfg(4), droptail_factory(env));
  path_set a = ft.paths().all(0, 15);
  path_set b = ft.paths().all(0, 15);
  ASSERT_EQ(a.size(), ft.n_paths(0, 15));
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.fwd, b.fwd);  // the very same cached arrays
  for (std::size_t p = 0; p < a.size(); ++p) {
    EXPECT_EQ(a.forward(p), b.forward(p));
    EXPECT_EQ(a.reverse(p), b.reverse(p));
  }
  // Each (src, dst, path) was built exactly once.
  EXPECT_EQ(ft.paths().interned_paths(), ft.n_paths(0, 15));
}

TEST(path_table, flow_factory_shares_routes_between_flows) {
  fabric_params fp;
  fp.proto = protocol::ndp;
  auto bed = make_fat_tree_testbed(3, 4, fp);
  flow_options o;
  o.bytes = 5 * 8936;
  bed->flows->create(protocol::ndp, 0, 15, o);
  const std::size_t after_first = bed->topo->paths().interned_paths();
  bed->flows->create(protocol::ndp, 0, 15, o);
  // The second flow on the pair interned nothing new.
  EXPECT_EQ(bed->topo->paths().interned_paths(), after_first);
  bed->env.events.run_until(from_ms(50));
  EXPECT_EQ(bed->flows->completed_count(), 2u);
}

TEST(path_table, interned_route_appends_demux_terminal) {
  sim_env env;
  fat_tree ft(env, ft_cfg(4), droptail_factory(env));
  auto [raw_fwd, raw_rev] = ft.make_route_pair(0, 15, 0);
  const route* fwd = ft.paths().forward(0, 15, 0);
  // Same fabric hops plus the demux terminal where the endpoint used to go.
  ASSERT_EQ(fwd->size(), raw_fwd->size() + 1);
  EXPECT_EQ(fwd->queue_hops(), raw_fwd->queue_hops());
  for (std::size_t i = 0; i < raw_fwd->size(); ++i) {
    EXPECT_EQ(&fwd->at(i), &raw_fwd->at(i));
  }
  EXPECT_EQ(&fwd->at(fwd->size() - 1),
            static_cast<packet_sink*>(&ft.paths().demux(15)));
}

TEST(path_table, demux_delivers_to_bound_endpoint_by_flow_id) {
  sim_env env;
  fat_tree ft(env, ft_cfg(4), droptail_factory(env));
  testing::recording_sink ep(env);
  ft.paths().demux(15).bind(7, &ep);
  packet* p = testing::make_data(env, ft.paths().forward(0, 15, 2));
  p->flow_id = 7;
  send_to_next_hop(*p);
  env.events.run_all();
  EXPECT_EQ(ep.count(), 1u);
  // An unbound flow id at the terminal is an invariant violation.
  packet* q = testing::make_data(env, ft.paths().forward(0, 15, 2));
  q->flow_id = 9;
  EXPECT_THROW(
      {
        send_to_next_hop(*q);
        env.events.run_all();
      },
      simulation_error);
  ft.paths().demux(15).unbind(7);
  EXPECT_EQ(ft.paths().demux(15).endpoint_for(7), nullptr);
}

TEST(path_table, reverse_pointers_are_reciprocal_and_co_interned) {
  sim_env env;
  fat_tree ft(env, ft_cfg(4), droptail_factory(env));
  for (std::size_t p = 0; p < ft.n_paths(2, 13); ++p) {
    const route* f = ft.paths().forward(2, 13, p);
    const route* r = ft.paths().reverse(2, 13, p);
    ASSERT_NE(f, nullptr);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(f->reverse(), r);
    EXPECT_EQ(r->reverse(), f);
    EXPECT_EQ(f->reverse()->reverse(), f);
  }
}

TEST(path_table, sample_draws_random_subset_not_first_n) {
  sim_env env(5);
  fat_tree ft(env, ft_cfg(8), droptail_factory(env));  // 16 inter-pod paths
  const std::uint32_t dst = 127;
  const std::size_t n = ft.n_paths(0, dst);
  ASSERT_EQ(n, 16u);

  // Across many draws the union must reach beyond the first 4 indices (the
  // old truncation always returned paths {0,1,2,3}).
  std::set<const route*> first_four;
  for (std::size_t p = 0; p < 4; ++p) {
    first_four.insert(ft.paths().forward(0, dst, p));
  }
  bool beyond_first_four = false;
  bool subsets_differ = false;
  path_set prev{};
  for (int trial = 0; trial < 20; ++trial) {
    path_set ps = ft.paths().sample(env, 0, dst, 4);
    ASSERT_EQ(ps.size(), 4u);
    std::set<const route*> distinct;
    for (std::size_t i = 0; i < ps.size(); ++i) {
      distinct.insert(ps.forward(i));
      if (first_four.count(ps.forward(i)) == 0) beyond_first_four = true;
    }
    EXPECT_EQ(distinct.size(), 4u) << "sampled paths must be distinct";
    if (trial > 0) {
      for (std::size_t i = 0; i < 4; ++i) {
        if (prev.forward(i) != ps.forward(i)) subsets_differ = true;
      }
    }
    prev = ps;
  }
  EXPECT_TRUE(beyond_first_four)
      << "subset sampling still truncates to the low path indices";
  // Two flows on the same pair can get different subsets.
  EXPECT_TRUE(subsets_differ);
  // Sampled routes are still the interned ones (shared, not copies).
  path_set ps = ft.paths().sample(env, 0, dst, 4);
  path_set full = ft.paths().all(0, dst);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    bool found = false;
    for (std::size_t j = 0; j < full.size(); ++j) {
      if (ps.forward(i) == full.forward(j)) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST(path_table, sample_is_deterministic_under_the_seed) {
  auto draw = [](std::uint64_t seed) {
    sim_env env(seed);
    fat_tree ft(env, ft_cfg(8), droptail_factory(env));
    path_set ps = ft.paths().sample(env, 0, 127, 4);
    // Compare by structural identity across environments: the index of each
    // path's core_down queue within its level.
    const auto& cores_at = ft.queues_at(link_level::core_down);
    std::vector<std::size_t> cores;
    for (std::size_t i = 0; i < ps.size(); ++i) {
      const packet_sink* q = &ps.forward(i)->at(6);
      for (std::size_t j = 0; j < cores_at.size(); ++j) {
        if (static_cast<const packet_sink*>(cores_at[j]) == q) {
          cores.push_back(j);
        }
      }
    }
    return cores;
  };
  EXPECT_EQ(draw(42), draw(42));
  EXPECT_NE(draw(42), draw(43));
}

TEST(path_table, sample_of_zero_or_all_returns_cached_full_set) {
  sim_env env(1);
  fat_tree ft(env, ft_cfg(4), droptail_factory(env));
  path_set full = ft.paths().all(0, 15);
  path_set s0 = ft.paths().sample(env, 0, 15, 0);
  path_set s_all = ft.paths().sample(env, 0, 15, 99);
  EXPECT_EQ(s0.fwd, full.fwd);
  EXPECT_EQ(s_all.fwd, full.fwd);
  EXPECT_EQ(s0.size(), full.size());
}

TEST(path_table, single_returns_view_into_pair_arrays) {
  sim_env env;
  single_switch star(env, 4, gbps(10), from_us(1), droptail_factory(env));
  path_set one = star.paths().single(1, 2, 0);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one.forward(0), star.paths().forward(1, 2, 0));
  EXPECT_EQ(one.forward(0)->reverse(), one.reverse(0));
}

TEST(path_table, arena_resident_bytes_accounts_for_interned_state) {
  sim_env env;
  fat_tree ft(env, ft_cfg(4), droptail_factory(env));
  (void)ft.paths().all(0, 15);
  const std::size_t bytes = ft.paths().resident_bytes();
  const std::size_t interned = ft.paths().interned_paths();
  EXPECT_GT(bytes, 0u);
  EXPECT_EQ(interned, ft.n_paths(0, 15));
  // Re-requesting the pair interns nothing and allocates no new state.
  (void)ft.paths().all(0, 15);
  EXPECT_EQ(ft.paths().resident_bytes(), bytes);
  EXPECT_EQ(ft.paths().interned_paths(), interned);
}

TEST(path_table, transport_unbinds_from_demux_on_destruction) {
  sim_env env;
  back_to_back b2b(env, gbps(10), from_us(1),
                   [&env](link_level, std::size_t, linkspeed_bps rate,
                          const std::string& name)
                       -> std::unique_ptr<queue_base> {
                     return std::make_unique<host_priority_queue>(env, rate,
                                                                  name);
                   });
  {
    tcp_config cfg;
    cfg.handshake = false;
    tcp_source src(env, cfg, 3);
    tcp_sink snk(env, 3);
    src.connect(snk, b2b.paths().single(0, 1, 0), 0, 1, 8936, 0);
    env.events.run_all();
    EXPECT_TRUE(src.complete());
    EXPECT_NE(b2b.paths().demux(1).endpoint_for(3), nullptr);
  }
  EXPECT_EQ(b2b.paths().demux(1).endpoint_for(3), nullptr);
  EXPECT_EQ(b2b.paths().demux(0).endpoint_for(3), nullptr);
}

}  // namespace
}  // namespace ndpsim
