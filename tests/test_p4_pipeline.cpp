#include <gtest/gtest.h>

#include "ndp/ndp_queue.h"
#include "ndp/p4_pipeline.h"
#include "test_util.h"

namespace ndpsim {
namespace {

using testing::make_data;
using testing::recording_sink;

TEST(p4_pipeline, directprio_matches_control_packets) {
  sim_env env;
  recording_sink sink(env);
  p4_ndp_pipeline q(env, gbps(10), {});
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);
  packet* c = env.pool.alloc();
  c->type = packet_type::ndp_ack;
  c->size_bytes = kHeaderBytes;
  c->rt = &r;
  c->next_hop = 0;
  send_to_next_hop(*c);
  env.events.run_all();
  EXPECT_EQ(q.hits().directprio, 1u);
  EXPECT_EQ(q.hits().readregister, 0u);
  EXPECT_EQ(sink.count(), 1u);
}

TEST(p4_pipeline, setprio_below_threshold_increments_register) {
  sim_env env;
  recording_sink sink(env);
  p4_pipeline_config cfg;
  cfg.data_threshold_bytes = 12 * 1024;
  p4_ndp_pipeline q(env, gbps(10), cfg);
  q.set_paused(true);
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);
  send_to_next_hop(*make_data(env, &r, 9000, 1));
  EXPECT_EQ(q.qs_register(), 9000u);
  EXPECT_EQ(q.hits().setprio_normal, 1u);
  q.set_paused(false);
  env.events.run_all();
  EXPECT_EQ(q.qs_register(), 0u);  // egress Decrement table fired
  EXPECT_EQ(q.hits().decrement, 1u);
}

TEST(p4_pipeline, setprio_above_threshold_truncates) {
  sim_env env;
  recording_sink sink(env);
  p4_pipeline_config cfg;
  cfg.data_threshold_bytes = 12 * 1024;
  p4_ndp_pipeline q(env, gbps(10), cfg);
  q.set_paused(true);
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);
  // qs reads 0, then 9000, then 18000: the threshold check is made *before*
  // adding the packet, so packets 1 and 2 are admitted and packet 3 (qs
  // already 18000 > 12KB) is truncated.
  send_to_next_hop(*make_data(env, &r, 9000, 1));
  send_to_next_hop(*make_data(env, &r, 9000, 2));
  send_to_next_hop(*make_data(env, &r, 9000, 3));
  EXPECT_EQ(q.hits().setprio_truncate, 1u);
  EXPECT_EQ(q.stats().trimmed, 1u);
  q.set_paused(false);
  env.events.run_all();
  ASSERT_EQ(sink.count(), 3u);
  // Priority queue serves the truncated header first (strict priority).
  EXPECT_NE(sink.arrivals()[0].flags & pkt_flag::trimmed, 0);
  EXPECT_EQ(sink.arrivals()[0].seqno, 3u);
  EXPECT_EQ(sink.arrivals()[1].flags & pkt_flag::trimmed, 0);
  EXPECT_EQ(sink.arrivals()[2].flags & pkt_flag::trimmed, 0);
}

TEST(p4_pipeline, equivalent_trim_decisions_to_ndp_queue) {
  // The P4 program trims exactly when qs > threshold; an ndp_queue with the
  // same data capacity, arriving-packet trimming and no WRR must trim the
  // same packets of a deterministic arrival pattern.
  sim_env env1, env2;
  recording_sink s1(env1), s2(env2);

  p4_pipeline_config pc;
  pc.data_threshold_bytes = 3 * 1500;
  pc.header_capacity_bytes = 100 * kHeaderBytes;
  p4_ndp_pipeline p4q(env1, gbps(10), pc);

  ndp_queue_config nc;
  // ndp_queue admits while bytes <= capacity; P4 admits while qs <= threshold
  // before adding the packet — align capacities accordingly.
  nc.data_capacity_bytes = 3 * 1500 + 1500;
  nc.header_capacity_bytes = 100 * kHeaderBytes;
  nc.random_trim_position = false;  // always trim the arriving packet
  nc.wrr_headers_per_data = 1000000;  // effectively strict priority
  ndp_queue ndpq(env2, gbps(10), nc);

  owned_route r1, r2;
  r1.push_back(&p4q);
  r1.push_back(&s1);
  r2.push_back(&ndpq);
  r2.push_back(&s2);

  p4q.set_paused(true);
  ndpq.set_paused(true);
  for (std::uint64_t i = 1; i <= 10; ++i) {
    send_to_next_hop(*make_data(env1, &r1, 1500, i));
    send_to_next_hop(*make_data(env2, &r2, 1500, i));
  }
  p4q.set_paused(false);
  ndpq.set_paused(false);
  env1.events.run_all();
  env2.events.run_all();

  EXPECT_EQ(p4q.stats().trimmed, ndpq.stats().trimmed);
  ASSERT_EQ(s1.count(), s2.count());
  // Same per-sequence trim verdicts.
  std::map<std::uint64_t, bool> v1, v2;
  for (const auto& a : s1.arrivals()) v1[a.seqno] = (a.flags & pkt_flag::trimmed) != 0;
  for (const auto& a : s2.arrivals()) v2[a.seqno] = (a.flags & pkt_flag::trimmed) != 0;
  EXPECT_EQ(v1, v2);
}

TEST(p4_pipeline, header_overflow_drops) {
  sim_env env;
  recording_sink sink(env);
  p4_pipeline_config cfg;
  cfg.data_threshold_bytes = 0;  // everything truncates
  cfg.header_capacity_bytes = 2 * kHeaderBytes;
  p4_ndp_pipeline q(env, gbps(10), cfg);
  q.set_paused(true);
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);
  for (std::uint64_t i = 1; i <= 5; ++i) send_to_next_hop(*make_data(env, &r, 1500, i));
  q.set_paused(false);
  env.events.run_all();
  EXPECT_EQ(sink.count(), 3u);  // 1 normal (qs==0 admits) + 2 headers
  EXPECT_EQ(q.stats().dropped, 2u);
}

}  // namespace
}  // namespace ndpsim
