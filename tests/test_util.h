// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <vector>

#include "net/packet.h"
#include "net/route.h"
#include "net/sim_env.h"

namespace ndpsim::testing {

/// Terminal sink that records what arrives (type, seq, size, time) and
/// releases the packets.
class recording_sink final : public packet_sink {
 public:
  explicit recording_sink(sim_env& env) : env_(env) {}

  struct arrival {
    packet_type type;
    std::uint64_t seqno;
    std::uint32_t size_bytes;
    std::uint16_t flags;
    simtime_t at;
  };

  void receive(packet& p) override {
    arrivals_.push_back(
        arrival{p.type, p.seqno, p.size_bytes, p.flags, env_.now()});
    env_.pool.release(&p);
  }

  [[nodiscard]] const std::vector<arrival>& arrivals() const {
    return arrivals_;
  }
  [[nodiscard]] std::size_t count() const { return arrivals_.size(); }

 private:
  sim_env& env_;
  std::vector<arrival> arrivals_;
};

/// Allocate a data packet with sane defaults for queue-level tests.
inline packet* make_data(sim_env& env, const route* rt,
                         std::uint32_t size_bytes = 9000,
                         std::uint64_t seq = 1) {
  packet* p = env.pool.alloc();
  p->type = packet_type::ndp_data;
  p->size_bytes = size_bytes;
  p->payload_bytes = size_bytes - kHeaderBytes;
  p->seqno = seq;
  p->rt = rt;
  p->next_hop = 0;
  return p;
}

}  // namespace ndpsim::testing
