#include <gtest/gtest.h>

#include "mptcp/mptcp_source.h"
#include "net/fifo_queues.h"
#include "topo/micro_topo.h"
#include "topo/path_table.h"

namespace ndpsim {
namespace {

queue_factory droptail_factory(sim_env& env, std::uint32_t pkts = 100) {
  return [&env, pkts](link_level level, std::size_t, linkspeed_bps rate,
                      const std::string& name) -> std::unique_ptr<queue_base> {
    if (level == link_level::host_up) {
      // Finite NIC: windowed senders must see their own backlog as loss.
      return std::make_unique<host_priority_queue>(env, rate, name,
                                                   200 * 9000ull);
    }
    return std::make_unique<drop_tail_queue>(env, rate, pkts * 9000ull, name);
  };
}

std::unique_ptr<mptcp_source> make_mptcp(sim_env& env, topology& topo,
                                         std::uint32_t s, std::uint32_t d,
                                         std::uint64_t bytes,
                                         std::size_t n_subflows,
                                         tcp_config cfg = {}) {
  cfg.handshake = false;
  auto m = std::make_unique<mptcp_source>(env, cfg, 1);
  m->connect(topo.paths().all(s, d), static_cast<unsigned>(n_subflows), s, d,
             bytes, 0);
  return m;
}

TEST(mptcp, completes_finite_flow_across_subflows) {
  sim_env env;
  leaf_spine ls(env, 2, 4, 1, gbps(10), from_us(1), droptail_factory(env));
  auto m = make_mptcp(env, ls, 0, 1, 400 * 8936, 4);
  env.events.run_until(from_sec(1));
  EXPECT_TRUE(m->complete());
  EXPECT_EQ(m->total_payload_received(), 400u * 8936);
  // All subflows contributed (striped allocation).
  for (std::size_t i = 0; i < m->n_subflows(); ++i) {
    EXPECT_GT(m->subflow(i).stats().packets_sent, 0u);
  }
}

TEST(mptcp, aggregates_multiple_paths_beyond_one_subflow) {
  // 4 spines of 10G between two hosts... single host pair is NIC-limited, so
  // instead check that 4 subflows on 4 paths fill the single 10G NIC just
  // like TCP would, while spreading load over spines.
  sim_env env;
  leaf_spine ls(env, 2, 4, 1, gbps(10), from_us(1), droptail_factory(env));
  auto m = make_mptcp(env, ls, 0, 1, 0, 4);
  env.events.run_until(from_ms(5));
  const std::uint64_t base = m->total_payload_received();
  env.events.run_until(from_ms(15));
  const double gb = static_cast<double>(m->total_payload_received() - base) *
                    8 / to_sec(from_ms(10)) / 1e9;
  EXPECT_GT(gb, 8.5);
}

TEST(mptcp, coupled_increase_is_subcapacity_fair_to_tcp) {
  // An MPTCP connection with 2 subflows sharing one bottleneck with a plain
  // TCP flow should take about half the link (not two thirds, as two
  // uncoupled TCP flows would).
  sim_env env(11);
  single_switch star(env, 3, gbps(10), from_us(10), droptail_factory(env, 50));
  tcp_config sub_cfg;
  sub_cfg.min_rto = from_ms(5);  // loss recovery must not dominate fairness
  auto m = make_mptcp(env, star, 0, 2, 0, 2, sub_cfg);
  tcp_config cfg;
  cfg.handshake = false;
  cfg.min_rto = from_ms(5);
  tcp_source tcp(env, cfg, 99);
  tcp_sink tsink(env, 99);
  tcp.connect(tsink, star.paths().single(1, 2, 0), 1, 2, 0, 0);

  env.events.run_until(from_ms(50));
  const std::uint64_t mb = m->total_payload_received();
  const std::uint64_t tb = tsink.payload_received();
  env.events.run_until(from_ms(550));
  const double mshare = static_cast<double>(m->total_payload_received() - mb);
  const double tshare = static_cast<double>(tsink.payload_received() - tb);
  const double frac = mshare / (mshare + tshare);
  // LIA should keep MPTCP's aggregate near the TCP flow's share. Allow a
  // generous band: the key assertion is "clearly below 2 uncoupled flows'
  // 2/3 share".
  EXPECT_LT(frac, 0.62);
  EXPECT_GT(frac, 0.30);
}

TEST(mptcp, subflow_ids_are_distinct) {
  sim_env env;
  leaf_spine ls(env, 2, 2, 1, gbps(10), from_us(1), droptail_factory(env));
  auto m = make_mptcp(env, ls, 0, 1, 10 * 8936, 2);
  env.events.run_until(from_ms(10));
  EXPECT_NE(m->subflow(0).flow_id(), m->subflow(1).flow_id());
}

}  // namespace
}  // namespace ndpsim
