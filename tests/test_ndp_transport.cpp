#include <gtest/gtest.h>

#include "net/fifo_queues.h"
#include "ndp/ndp_acceptor.h"
#include "ndp/ndp_queue.h"
#include "ndp/ndp_sink.h"
#include "ndp/ndp_source.h"
#include "ndp/pull_pacer.h"
#include "topo/micro_topo.h"
#include "topo/path_table.h"
#include "test_util.h"

namespace ndpsim {
namespace {

queue_factory ndp_factory(sim_env& env, std::uint32_t data_pkts = 8,
                          std::uint64_t hdr_bytes = 0) {
  return [&env, data_pkts, hdr_bytes](
             link_level level, std::size_t, linkspeed_bps rate,
             const std::string& name) -> std::unique_ptr<queue_base> {
    if (level == link_level::host_up) {
      return std::make_unique<host_priority_queue>(env, rate, name);
    }
    ndp_queue_config c;
    c.data_capacity_bytes = data_pkts * 9000ull;
    c.header_capacity_bytes = hdr_bytes != 0 ? hdr_bytes : c.data_capacity_bytes;
    return std::make_unique<ndp_queue>(env, rate, c, name);
  };
}

struct connection {
  connection(sim_env& env, topology& topo, pull_pacer& pacer, std::uint32_t s,
             std::uint32_t d, std::uint64_t bytes, std::uint32_t fid,
             ndp_source_config sc = {}, ndp_sink_config kc = {},
             simtime_t start = 0)
      : source(env, sc, fid), sink(env, pacer, kc, fid) {
    source.connect(sink, topo.paths().all(s, d), s, d, bytes,
                   std::max(start, env.now()));
  }
  ndp_source source;
  ndp_sink sink;
};

TEST(ndp_transport, zero_rtt_small_flow_completes_in_first_window) {
  sim_env env;
  back_to_back b2b(env, gbps(10), from_us(1), ndp_factory(env));
  pull_pacer pacer(env, gbps(10));
  connection c(env, b2b, pacer, 0, 1, 5 * 8936, 1);
  env.events.run_all();
  EXPECT_TRUE(c.sink.complete());
  EXPECT_TRUE(c.source.complete());
  EXPECT_EQ(c.sink.payload_received(), 5u * 8936);
  EXPECT_EQ(c.source.stats().rtx_sent, 0u);
  EXPECT_EQ(c.sink.stats().nacks_sent, 0u);
  // Five packets back to back at 10G + 1us wire: last data at 5*7.2+1 =
  // 37us; no handshake beforehand (zero-RTT).
  EXPECT_LT(to_us(c.sink.completion_time()), 40.0);
  EXPECT_EQ(env.pool.outstanding(), 0u);
}

TEST(ndp_transport, completed_flow_leaves_no_timers_pending) {
  // Timer-leak check for the cancellable-handle scheduler: the moment the
  // flow completes, the RTO backstop and pull-pacer timers must be cancelled
  // — zero dead entries left to fire, zero packets leaked.
  sim_env env;
  back_to_back b2b(env, gbps(10), from_us(1), ndp_factory(env));
  pull_pacer pacer(env, gbps(10));
  connection c(env, b2b, pacer, 0, 1, 80 * 8936, 1);  // pulls past the IW
  while (!c.source.complete() && env.events.run_next_event()) {
  }
  ASSERT_TRUE(c.source.complete());
  EXPECT_TRUE(c.sink.complete());
  EXPECT_EQ(env.events.pending(), 0u);
  EXPECT_EQ(pacer.backlog(), 0u);
  EXPECT_EQ(env.pool.outstanding(), 0u);
}

TEST(ndp_transport, every_first_window_packet_carries_syn_and_offset) {
  sim_env env;
  // Manual wiring with a tap to observe the wire.
  struct tap final : public packet_sink {
    std::vector<std::pair<std::uint64_t, std::uint16_t>> seen;  // seq, flags
    void receive(packet& p) override {
      if (p.type == packet_type::ndp_data) seen.emplace_back(p.seqno, p.flags);
      send_to_next_hop(p);
    }
  } wire_tap;

  host_priority_queue nic_a(env, gbps(10)), nic_b(env, gbps(10));
  pipe wire_ab(env, from_us(1)), wire_ba(env, from_us(1));
  manual_paths mp;
  mp.add({&nic_a, &wire_ab, &wire_tap}, {&nic_b, &wire_ba});

  pull_pacer pacer(env, gbps(10));
  ndp_source_config sc;
  sc.iw_packets = 4;
  ndp_source src(env, sc, 1);
  ndp_sink snk(env, pacer, {}, 1);
  src.connect(snk, mp.set(), 0, 1, 10 * 8936, 0);
  env.events.run_all();

  ASSERT_GE(wire_tap.seen.size(), 10u);
  // The first 4 packets (the initial window) all carry SYN with their
  // sequence offsets 1..4; later (pulled) packets do not.
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(wire_tap.seen[i].second & pkt_flag::syn, 0)
        << "first-RTT packet " << i;
    EXPECT_EQ(wire_tap.seen[i].first, static_cast<std::uint64_t>(i + 1));
  }
  EXPECT_EQ(wire_tap.seen.back().second & pkt_flag::syn, 0);
  EXPECT_TRUE(snk.complete());
}

TEST(ndp_transport, last_packet_flag_set_and_flow_size_learned) {
  sim_env env;
  back_to_back b2b(env, gbps(10), from_us(1), ndp_factory(env));
  pull_pacer pacer(env, gbps(10));
  // 3 full packets + 1 byte -> 4 packets.
  connection c(env, b2b, pacer, 0, 1, 3 * 8936 + 1, 1);
  env.events.run_all();
  EXPECT_TRUE(c.sink.complete());
  EXPECT_EQ(c.sink.payload_received(), 3u * 8936 + 1);
  EXPECT_EQ(c.source.total_packets(), 4u);
}

TEST(ndp_transport, incast_trims_then_recovers_without_timeouts) {
  sim_env env(7);
  single_switch star(env, 11, gbps(10), from_us(1), ndp_factory(env, 8));
  pull_pacer pacer(env, gbps(10));
  std::vector<std::unique_ptr<connection>> conns;
  ndp_source_config sc;
  sc.iw_packets = 30;
  for (std::uint32_t s = 0; s < 10; ++s) {
    conns.push_back(std::make_unique<connection>(env, star, pacer, s, 10,
                                                 20 * 8936, 100 + s, sc));
  }
  env.events.run_all();
  std::uint64_t rtx_nack = 0, rtx_to = 0, dups = 0;
  for (const auto& c : conns) {
    EXPECT_TRUE(c->sink.complete());
    EXPECT_EQ(c->sink.payload_received(), 20u * 8936);
    rtx_nack += c->source.stats().rtx_after_nack;
    rtx_to += c->source.stats().rtx_after_timeout;
    dups += c->sink.stats().duplicate_packets;
  }
  // 10 senders x 30-packet IW into one 8-packet port: heavy trimming, all
  // recovered via NACK+PULL, no timeouts needed (metadata is lossless).
  EXPECT_GT(star.switch_port(10).stats().trimmed, 50u);
  EXPECT_GT(rtx_nack, 50u);
  EXPECT_EQ(rtx_to, 0u);
  EXPECT_EQ(dups, 0u);
  EXPECT_EQ(env.pool.outstanding(), 0u);
}

TEST(ndp_transport, incast_aggregate_arrival_matches_link_rate_after_first_rtt) {
  sim_env env(9);
  single_switch star(env, 5, gbps(10), from_us(1), ndp_factory(env, 8));
  pull_pacer pacer(env, gbps(10));
  std::vector<std::unique_ptr<connection>> conns;
  for (std::uint32_t s = 0; s < 4; ++s) {
    conns.push_back(std::make_unique<connection>(env, star, pacer, s, 4,
                                                 0 /*unbounded*/, 200 + s));
  }
  env.events.run_until(from_ms(2));
  std::uint64_t base = 0;
  for (const auto& c : conns) base += c->sink.payload_received();
  env.events.run_until(from_ms(6));
  std::uint64_t total = 0;
  for (const auto& c : conns) total += c->sink.payload_received();
  const double gbps_measured =
      static_cast<double>(total - base) * 8.0 / to_sec(from_ms(4)) / 1e9;
  // Receiver-paced: aggregate goodput ~= link rate x payload fraction.
  EXPECT_GT(gbps_measured, 9.0);
  EXPECT_LT(gbps_measured, 10.0);
  // Fairness: each of the 4 senders gets about a quarter.
  for (const auto& c : conns) {
    const double share =
        static_cast<double>(c->sink.payload_received()) / static_cast<double>(total);
    EXPECT_NEAR(share, 0.25, 0.05);
  }
}

TEST(ndp_transport, pull_counter_tolerates_reordering) {
  sim_env env;
  back_to_back b2b(env, gbps(10), from_us(1), ndp_factory(env));
  b2b.nic(0).set_paused(true);  // freeze the data path
  pull_pacer pacer(env, gbps(10));
  ndp_source_config sc;
  sc.iw_packets = 1;
  connection c(env, b2b, pacer, 0, 1, 50 * 8936, 1, sc);
  env.events.run_until(from_us(1));  // start event fires; IW=1 packet queued
  EXPECT_EQ(c.source.stats().packets_sent, 1u);

  auto inject_pull = [&](std::uint64_t pullno) {
    packet* p = env.pool.alloc();
    p->type = packet_type::ndp_pull;
    p->flow_id = 1;
    p->size_bytes = kHeaderBytes;
    p->pullno = pullno;
    c.source.receive(*p);
  };
  // Pull #2 arrives before pull #1 (reordered): sends 2 packets at once.
  inject_pull(2);
  EXPECT_EQ(c.source.stats().packets_sent, 3u);
  // The late pull #1 must not double-send.
  inject_pull(1);
  EXPECT_EQ(c.source.stats().packets_sent, 3u);
  inject_pull(3);
  EXPECT_EQ(c.source.stats().packets_sent, 4u);
}

TEST(ndp_transport, receiver_prioritizes_high_class_flow) {
  sim_env env(21);
  single_switch star(env, 8, gbps(10), from_us(1), ndp_factory(env, 8));
  pull_pacer pacer(env, gbps(10));
  // Six long flows to host 7.
  std::vector<std::unique_ptr<connection>> long_flows;
  for (std::uint32_t s = 0; s < 6; ++s) {
    long_flows.push_back(
        std::make_unique<connection>(env, star, pacer, s, 7, 0, 300 + s));
  }
  env.events.run_until(from_ms(1));  // let them saturate the link
  // A short high-priority flow starts now.
  ndp_sink_config high;
  high.pull_class = 1;
  auto short_flow = std::make_unique<connection>(
      env, star, pacer, 6, 7, 200'000, 399, ndp_source_config{}, high,
      env.now());
  const simtime_t t0 = env.now();
  while (!short_flow->sink.complete() && env.events.run_next_event()) {
  }
  const double fct_us = to_us(env.now() - t0);
  // 200KB at 10G is ~170us idle; with priority pulls it must stay within
  // ~100us of that (paper Fig 10: within 50us, we allow slack for the
  // in-flight first window of the long flows).
  EXPECT_LT(fct_us, 320.0);
}

TEST(ndp_transport, without_priority_short_flow_shares_fairly) {
  sim_env env(21);
  single_switch star(env, 8, gbps(10), from_us(1), ndp_factory(env, 8));
  pull_pacer pacer(env, gbps(10));
  std::vector<std::unique_ptr<connection>> long_flows;
  for (std::uint32_t s = 0; s < 6; ++s) {
    long_flows.push_back(
        std::make_unique<connection>(env, star, pacer, s, 7, 0, 300 + s));
  }
  env.events.run_until(from_ms(1));
  auto short_flow = std::make_unique<connection>(
      env, star, pacer, 6, 7, 200'000, 399, ndp_source_config{},
      ndp_sink_config{}, env.now());
  const simtime_t t0 = env.now();
  while (!short_flow->sink.complete() && env.events.run_next_event()) {
  }
  const double fct_us = to_us(env.now() - t0);
  // Without priority the short flow shares the receiver with six long flows:
  // clearly slower than the prioritized case (fair share would be ~1190us;
  // the long flows' in-flight gaps let the short flow do somewhat better).
  EXPECT_GT(fct_us, 450.0);
}

TEST(ndp_transport, rto_backstop_recovers_from_true_loss) {
  // Disable RTS and make the header queue absurdly small so headers die:
  // only the RTO can recover.
  sim_env env(5);
  auto factory = [&env](link_level level, std::size_t, linkspeed_bps rate,
                        const std::string& name) -> std::unique_ptr<queue_base> {
    if (level == link_level::host_up) {
      return std::make_unique<host_priority_queue>(env, rate, name);
    }
    ndp_queue_config c;
    c.data_capacity_bytes = 1 * 9000;
    c.header_capacity_bytes = 1 * kHeaderBytes;
    c.enable_rts = false;
    return std::make_unique<ndp_queue>(env, rate, c, name);
  };
  single_switch star(env, 4, gbps(10), from_us(1), factory);
  pull_pacer pacer(env, gbps(10));
  ndp_source_config sc;
  sc.iw_packets = 10;
  sc.rto = from_us(500);
  std::vector<std::unique_ptr<connection>> conns;
  for (std::uint32_t s = 0; s < 3; ++s) {
    conns.push_back(std::make_unique<connection>(env, star, pacer, s, 3,
                                                 10 * 8936, 500 + s, sc));
  }
  env.events.run_until(from_ms(200));
  std::uint64_t timeouts = 0;
  for (const auto& c : conns) {
    EXPECT_TRUE(c->sink.complete());
    timeouts += c->source.stats().rtx_after_timeout;
  }
  EXPECT_GT(timeouts, 0u);
}

TEST(ndp_transport, rts_bounces_recover_single_packet_flows) {
  // Tiny header queue + RTS on: bounced headers let senders resend without
  // waiting for the RTO (paper §3.2.4).
  sim_env env(6);
  auto factory = [&env](link_level level, std::size_t, linkspeed_bps rate,
                        const std::string& name) -> std::unique_ptr<queue_base> {
    if (level == link_level::host_up) {
      return std::make_unique<host_priority_queue>(env, rate, name);
    }
    ndp_queue_config c;
    c.data_capacity_bytes = 2 * 9000;
    c.header_capacity_bytes = 2 * kHeaderBytes;
    c.enable_rts = true;
    return std::make_unique<ndp_queue>(env, rate, c, name);
  };
  single_switch star(env, 31, gbps(10), from_us(1), factory);
  pull_pacer pacer(env, gbps(10));
  ndp_source_config sc;
  sc.iw_packets = 30;
  sc.rto = from_ms(50);  // long RTO: recovery must not rely on it
  std::vector<std::unique_ptr<connection>> conns;
  for (std::uint32_t s = 0; s < 30; ++s) {
    conns.push_back(std::make_unique<connection>(env, star, pacer, s, 30,
                                                 1 * 8936, 600 + s, sc));
  }
  env.events.run_until(from_ms(40));  // less than one RTO
  std::uint64_t bounces = 0;
  std::size_t done = 0;
  for (const auto& c : conns) {
    done += c->sink.complete() ? 1 : 0;
    bounces += c->source.stats().bounces_received;
  }
  EXPECT_EQ(done, 30u);
  EXPECT_GT(bounces, 0u);
}

TEST(ndp_acceptor, establishes_from_any_first_rtt_packet) {
  sim_env env;
  testing::recording_sink backing(env);
  int created = 0;
  ndp_acceptor acc(env, [&](std::uint32_t) {
    ++created;
    return &backing;
  });
  // A mid-window SYN packet (offset 3) arrives first.
  packet* p = env.pool.alloc();
  p->type = packet_type::ndp_data;
  p->flow_id = 42;
  p->seqno = 3;
  p->set_flag(pkt_flag::syn);
  p->size_bytes = 9000;
  acc.receive(*p);
  EXPECT_EQ(created, 1);
  EXPECT_EQ(acc.established(), 1u);
  EXPECT_TRUE(acc.is_live(42));
  // More packets of the same connection reuse the state.
  packet* q = env.pool.alloc();
  q->type = packet_type::ndp_data;
  q->flow_id = 42;
  q->seqno = 1;
  q->set_flag(pkt_flag::syn);
  q->size_bytes = 9000;
  acc.receive(*q);
  EXPECT_EQ(created, 1);
  EXPECT_EQ(backing.count(), 2u);
}

TEST(ndp_acceptor, rejects_duplicate_connection_in_time_wait) {
  sim_env env;
  testing::recording_sink backing(env);
  ndp_acceptor acc(env, [&](std::uint32_t) { return &backing; },
                   from_ms(1));
  packet* p = env.pool.alloc();
  p->type = packet_type::ndp_data;
  p->flow_id = 7;
  p->set_flag(pkt_flag::syn);
  acc.receive(*p);
  acc.close(7);
  // A duplicate of the same connection id inside the MSL must be rejected
  // (at-most-once semantics, unlike TFO).
  packet* dup = env.pool.alloc();
  dup->type = packet_type::ndp_data;
  dup->flow_id = 7;
  dup->set_flag(pkt_flag::syn);
  acc.receive(*dup);
  EXPECT_EQ(acc.duplicates_rejected(), 1u);
  EXPECT_EQ(backing.count(), 1u);
  // After the MSL expires the id may be reused.
  env.events.run_until(from_ms(2));
  packet* fresh = env.pool.alloc();
  fresh->type = packet_type::ndp_data;
  fresh->flow_id = 7;
  fresh->set_flag(pkt_flag::syn);
  acc.receive(*fresh);
  EXPECT_EQ(acc.established(), 2u);
}

TEST(ndp_acceptor, drops_stale_non_syn_packets) {
  sim_env env;
  testing::recording_sink backing(env);
  ndp_acceptor acc(env, [&](std::uint32_t) { return &backing; });
  packet* p = env.pool.alloc();
  p->type = packet_type::ndp_data;
  p->flow_id = 9;  // unknown connection, no SYN
  acc.receive(*p);
  EXPECT_EQ(acc.stale_dropped(), 1u);
  EXPECT_EQ(backing.count(), 0u);
  EXPECT_EQ(env.pool.outstanding(), 0u);
}

}  // namespace
}  // namespace ndpsim
