// The end-host NIC queue's capacity semantics: control always admitted,
// data bounded when a cap is set — the property that lets window-based
// transports see their own backlog as loss (see DESIGN.md).
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "net/fifo_queues.h"
#include "topo/fat_tree.h"
#include "test_util.h"

namespace ndpsim {
namespace {

using testing::make_data;
using testing::recording_sink;

TEST(host_nic, unbounded_by_default) {
  sim_env env;
  recording_sink sink(env);
  host_priority_queue q(env, gbps(10));
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);
  for (std::uint64_t i = 1; i <= 500; ++i) send_to_next_hop(*make_data(env, &r, 9000, i));
  env.events.run_all();
  EXPECT_EQ(sink.count(), 500u);
  EXPECT_EQ(q.stats().dropped, 0u);
}

TEST(host_nic, data_cap_drops_excess_data) {
  sim_env env;
  recording_sink sink(env);
  host_priority_queue q(env, gbps(10), "nic", 3 * 9000);
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);
  // 1 in service + 3 buffered; the rest dropped.
  for (std::uint64_t i = 1; i <= 6; ++i) send_to_next_hop(*make_data(env, &r, 9000, i));
  env.events.run_all();
  EXPECT_EQ(sink.count(), 4u);
  EXPECT_EQ(q.stats().dropped, 2u);
  EXPECT_EQ(env.pool.outstanding(), 0u);
}

TEST(host_nic, control_ignores_the_data_cap) {
  sim_env env;
  recording_sink sink(env);
  host_priority_queue q(env, gbps(10), "nic", 9000);
  q.set_paused(true);
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);
  send_to_next_hop(*make_data(env, &r, 9000, 1));  // fills the data budget
  for (int i = 0; i < 50; ++i) {
    packet* a = env.pool.alloc();
    a->type = packet_type::ndp_ack;
    a->size_bytes = kHeaderBytes;
    a->rt = &r;
    a->next_hop = 0;
    send_to_next_hop(*a);
  }
  EXPECT_EQ(q.stats().dropped, 0u);  // every ACK admitted
  q.set_paused(false);
  env.events.run_all();
  EXPECT_EQ(sink.count(), 51u);
}

TEST(host_nic, cap_accounts_data_only) {
  sim_env env;
  recording_sink sink(env);
  host_priority_queue q(env, gbps(10), "nic", 2 * 9000);
  q.set_paused(true);
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);
  // Control backlog must not eat the data budget.
  for (int i = 0; i < 100; ++i) {
    packet* a = env.pool.alloc();
    a->type = packet_type::ndp_pull;
    a->size_bytes = kHeaderBytes;
    a->rt = &r;
    a->next_hop = 0;
    send_to_next_hop(*a);
  }
  send_to_next_hop(*make_data(env, &r, 9000, 1));
  send_to_next_hop(*make_data(env, &r, 9000, 2));
  EXPECT_EQ(q.stats().dropped, 0u);
  q.set_paused(false);
  env.events.run_all();
  EXPECT_EQ(sink.count(), 102u);
}

// FatTree route-uniqueness properties, parameterized over k.
class fat_tree_paths : public ::testing::TestWithParam<unsigned> {};

TEST_P(fat_tree_paths, interpod_paths_are_pairwise_distinct) {
  sim_env env;
  fat_tree_config cfg;
  cfg.k = GetParam();
  fat_tree ft(env, cfg, [&env](link_level, std::size_t, linkspeed_bps rate,
                               const std::string& name) {
    return std::unique_ptr<queue_base>(
        std::make_unique<drop_tail_queue>(env, rate, 100 * 9000, name));
  });
  const std::uint32_t src = 0;
  const std::uint32_t dst = static_cast<std::uint32_t>(ft.n_hosts() - 1);
  const std::size_t n = ft.n_paths(src, dst);
  // Each path must differ from every other in at least one middle hop, and
  // all paths share the first (NIC) and last (ToR->host) queues.
  std::set<std::vector<const packet_sink*>> middles;
  const packet_sink* first = nullptr;
  const packet_sink* last = nullptr;
  for (std::size_t p = 0; p < n; ++p) {
    auto [fwd, rev] = ft.make_route_pair(src, dst, p);
    std::vector<const packet_sink*> middle;
    for (std::size_t i = 2; i + 2 < fwd->size(); i += 2) {
      middle.push_back(&fwd->at(i));
    }
    middles.insert(middle);
    if (first == nullptr) {
      first = &fwd->at(0);
      last = &fwd->at(fwd->size() - 2);
    } else {
      EXPECT_EQ(&fwd->at(0), first);
      EXPECT_EQ(&fwd->at(fwd->size() - 2), last);
    }
  }
  EXPECT_EQ(middles.size(), n) << "every path must be distinct";
}

TEST_P(fat_tree_paths, reverse_of_reverse_is_forward_shape) {
  sim_env env;
  fat_tree_config cfg;
  cfg.k = GetParam();
  fat_tree ft(env, cfg, [&env](link_level, std::size_t, linkspeed_bps rate,
                               const std::string& name) {
    return std::unique_ptr<queue_base>(
        std::make_unique<drop_tail_queue>(env, rate, 100 * 9000, name));
  });
  auto [fwd, rev] = ft.make_route_pair(1, static_cast<std::uint32_t>(ft.n_hosts() - 2), 0);
  EXPECT_EQ(fwd->size(), rev->size());
  EXPECT_EQ(fwd->queue_hops(), rev->queue_hops());
}

INSTANTIATE_TEST_SUITE_P(ks, fat_tree_paths, ::testing::Values(4u, 6u, 8u));

}  // namespace
}  // namespace ndpsim
