#include <gtest/gtest.h>

#include "cp/cp_queue.h"
#include "test_util.h"

namespace ndpsim {
namespace {

using testing::make_data;
using testing::recording_sink;

TEST(cp_queue, trims_arriving_packet_when_full) {
  sim_env env;
  recording_sink sink(env);
  cp_queue q(env, gbps(10), 2 * 9000);
  q.set_paused(true);
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);
  for (std::uint64_t i = 1; i <= 4; ++i) send_to_next_hop(*make_data(env, &r, 9000, i));
  q.set_paused(false);
  env.events.run_all();
  ASSERT_EQ(sink.count(), 4u);
  EXPECT_EQ(q.stats().trimmed, 2u);
  // FIFO: headers arrive *after* the queued data — no priority treatment
  // (this is exactly what NDP's priority queue fixes).
  EXPECT_EQ(sink.arrivals()[0].flags & pkt_flag::trimmed, 0);
  EXPECT_EQ(sink.arrivals()[1].flags & pkt_flag::trimmed, 0);
  EXPECT_NE(sink.arrivals()[2].flags & pkt_flag::trimmed, 0);
  EXPECT_NE(sink.arrivals()[3].flags & pkt_flag::trimmed, 0);
  // Deterministic victim: always the arriving packet (phase effects).
  EXPECT_EQ(sink.arrivals()[2].seqno, 3u);
  EXPECT_EQ(sink.arrivals()[3].seqno, 4u);
}

TEST(cp_queue, headers_always_admitted) {
  sim_env env;
  recording_sink sink(env);
  cp_queue q(env, gbps(10), 9000);  // one data packet of buffer
  q.set_paused(true);
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);
  // One data packet fills the data budget; every further arrival trims to a
  // header, and CP stores headers unconditionally (metadata is "free") —
  // the very property that lets headers crowd the link under overload.
  for (std::uint64_t i = 1; i <= 5; ++i) send_to_next_hop(*make_data(env, &r, 9000, i));
  EXPECT_EQ(q.buffered_data_bytes(), 9000u);
  EXPECT_EQ(q.buffered_header_bytes(), 4u * kHeaderBytes);
  q.set_paused(false);
  env.events.run_all();
  EXPECT_EQ(sink.count(), 5u);
  EXPECT_EQ(q.stats().dropped, 0u);
  EXPECT_EQ(env.pool.outstanding(), 0u);
}

TEST(cp_queue, under_overload_headers_eat_goodput) {
  // Sustained 3x overload: the share of link bytes spent on headers grows,
  // data goodput falls — the beginning of CP's congestion collapse curve.
  sim_env env;
  recording_sink sink(env);
  cp_queue q(env, gbps(10), 8 * 9000);
  owned_route r;
  r.push_back(&q);
  r.push_back(&sink);
  // Offer 3 packets per 7.2us slot for 2000 slots.
  for (int slot = 0; slot < 2000; ++slot) {
    env.events.run_until(static_cast<simtime_t>(slot) * from_us(7.2));
    for (int j = 0; j < 3; ++j) {
      send_to_next_hop(*make_data(env, &r, 9000,
                                  static_cast<std::uint64_t>(slot * 3 + j)));
    }
  }
  env.events.run_all();
  EXPECT_GT(q.stats().trimmed, 1000u);
  std::uint64_t data = 0, hdrs = 0;
  for (const auto& a : sink.arrivals()) {
    if ((a.flags & pkt_flag::trimmed) != 0) {
      ++hdrs;
    } else {
      ++data;
    }
  }
  EXPECT_GT(hdrs, data);  // majority of forwarded *packets* are headers
}

}  // namespace
}  // namespace ndpsim
