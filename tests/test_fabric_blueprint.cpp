// Structure/state split: one immutable fabric_blueprint shared by many
// per-env fabric_instances.  Covers blueprint geometry, lazy name
// formatting, structural-path interning shared across instances, mutable
// state isolation between instances of one blueprint, and serial-vs-parallel
// determinism of a sweep over a shared blueprint.
#include <gtest/gtest.h>

#include <set>

#include "harness/experiments.h"
#include "harness/parallel_runner.h"
#include "net/fifo_queues.h"
#include "topo/fat_tree.h"
#include "topo/path_table.h"
#include "test_util.h"

namespace ndpsim {
namespace {

queue_factory droptail_factory(sim_env& env) {
  return [&env](link_level, std::size_t, linkspeed_bps rate,
                name_ref name) -> std::unique_ptr<queue_base> {
    return std::make_unique<drop_tail_queue>(env, rate, 100 * 9000,
                                             std::move(name));
  };
}

fat_tree_config ft_cfg(unsigned k) {
  fat_tree_config c;
  c.k = k;
  return c;
}

TEST(fabric_blueprint, geometry_matches_fat_tree_structure) {
  auto bp = fabric_blueprint::fat_tree(ft_cfg(4));
  EXPECT_EQ(bp->n_hosts(), 16u);
  EXPECT_EQ(bp->n_tors(), 8u);
  EXPECT_EQ(bp->n_aggs(), 8u);
  EXPECT_EQ(bp->n_cores(), 4u);
  EXPECT_EQ(bp->n_paths(0, 1), 1u);    // same ToR
  EXPECT_EQ(bp->n_paths(0, 2), 2u);    // same pod, other ToR: k/2
  EXPECT_EQ(bp->n_paths(0, 15), 4u);   // inter-pod: (k/2)^2
  // 6 levels of directed links; 2 slots per link without PFC, one demux
  // slot per host.
  const std::size_t links = bp->links().size();
  EXPECT_EQ(links, 16u * 2 + 8u * 2 * 2 + 4u * 4 + 4u * 4);
  EXPECT_EQ(bp->n_slots(), links * 2 + bp->n_hosts());
}

TEST(fabric_blueprint, pfc_links_carry_a_third_slot_except_tor_down) {
  fat_tree_config cfg = ft_cfg(4);
  cfg.pfc.enabled = true;
  auto bp = fabric_blueprint::fat_tree(cfg);
  for (const auto& l : bp->links()) {
    EXPECT_EQ(l.has_ingress, l.level != link_level::tor_down)
        << to_string(l.level);
  }
}

TEST(fabric_blueprint, speed_override_is_baked_into_link_records) {
  fat_tree_config cfg = ft_cfg(4);
  cfg.speed_override = [](link_level level, std::size_t index,
                          linkspeed_bps def) -> linkspeed_bps {
    if (level == link_level::agg_up && index == 0) return gbps(1);
    return def;
  };
  auto bp = fabric_blueprint::fat_tree(cfg);
  sim_env env;
  fat_tree ft(env, bp, droptail_factory(env));
  EXPECT_EQ(ft.queues_at(link_level::agg_up)[0]->rate(), gbps(1));
  EXPECT_EQ(ft.queues_at(link_level::agg_up)[1]->rate(), gbps(10));
}

TEST(fabric_blueprint, names_format_lazily_from_the_pool) {
  sim_env env;
  fat_tree ft(env, ft_cfg(4), droptail_factory(env));
  // Same names the eager builder used to format at construction time.
  EXPECT_EQ(ft.queues_at(link_level::host_up)[3]->name(), "hostup3");
  EXPECT_EQ(ft.queues_at(link_level::tor_up)[3]->name(), "torup1.1");
  EXPECT_EQ(ft.queues_at(link_level::agg_up)[5]->name(), "aggup1.0.1");
  EXPECT_EQ(ft.queues_at(link_level::core_down)[6]->name(), "coredn1.2");
  EXPECT_EQ(ft.queues_at(link_level::agg_down)[7]->name(), "aggdn1.1.1");
  EXPECT_EQ(ft.queues_at(link_level::tor_down)[9]->name(), "tordn4.1");
  // Pipe and demux slots format with their suffixes.
  const auto* bp = ft.blueprint();
  EXPECT_EQ(bp->format_name(bp->links()[0].first_slot + 1), "hostup0.pipe");
  EXPECT_EQ(bp->format_name(bp->demux_slot(7)), "demux7");
}

TEST(fabric_blueprint, owned_string_names_still_work) {
  sim_env env;
  drop_tail_queue q(env, gbps(10), 9000, "hand-built");
  EXPECT_EQ(q.name(), "hand-built");
  pipe p(env, from_us(1));
  EXPECT_EQ(p.name(), "pipe");
}

TEST(fabric_blueprint, structural_paths_intern_once_across_instances) {
  auto bp = make_fat_tree_blueprint(4, fabric_params{});
  sim_env env_a(1), env_b(2);
  fabric_params fp;
  testbed bed_a(env_a, bp, fp);
  testbed bed_b(env_b, bp, fp);
  (void)bed_a.topo->paths().all(0, 15);
  const std::size_t after_a = bp->interned_paths();
  EXPECT_EQ(after_a, bp->n_paths(0, 15));
  // The second instance resolves the same structural paths: nothing new is
  // interned in the shared blueprint, only per-env route views.
  (void)bed_b.topo->paths().all(0, 15);
  EXPECT_EQ(bp->interned_paths(), after_a);
  EXPECT_EQ(bed_b.topo->paths().interned_paths(), after_a);
}

TEST(fabric_blueprint, instances_of_one_blueprint_never_alias_mutable_state) {
  auto bp = fabric_blueprint::fat_tree(ft_cfg(4));
  sim_env env_a(1), env_b(2);
  fat_tree ft_a(env_a, bp, droptail_factory(env_a));
  fat_tree ft_b(env_b, bp, droptail_factory(env_b));

  // Distinct queue objects at every level.
  for (const link_level lvl :
       {link_level::host_up, link_level::tor_up, link_level::agg_up,
        link_level::core_down, link_level::agg_down, link_level::tor_down}) {
    const auto& qa = ft_a.queues_at(lvl);
    const auto& qb = ft_b.queues_at(lvl);
    ASSERT_EQ(qa.size(), qb.size());
    for (std::size_t i = 0; i < qa.size(); ++i) EXPECT_NE(qa[i], qb[i]);
  }

  // Drive traffic through instance A only: its stats move, B's do not —
  // even though both resolve the very same structural route slots.
  testing::recording_sink dst_a(env_a);
  ft_a.paths().demux(15).bind(1, &dst_a);
  for (std::uint64_t i = 1; i <= 3; ++i) {
    packet* p = testing::make_data(env_a, ft_a.paths().forward(0, 15, 0), 9000, i);
    p->flow_id = 1;
    send_to_next_hop(*p);
  }
  env_a.events.run_all();
  EXPECT_EQ(dst_a.count(), 3u);
  EXPECT_EQ(ft_a.aggregate_stats(link_level::host_up).forwarded, 3u);
  EXPECT_EQ(ft_b.aggregate_stats(link_level::host_up).forwarded, 0u);
  for (const auto* q : ft_b.queues_at(link_level::agg_up)) {
    EXPECT_EQ(q->stats().arrivals, 0u);
  }

  // Queue stats then diverge independently: B counts its own traffic.
  testing::recording_sink dst_b(env_b);
  ft_b.paths().demux(15).bind(9, &dst_b);
  packet* p = testing::make_data(env_b, ft_b.paths().forward(0, 15, 0));
  p->flow_id = 9;
  send_to_next_hop(*p);
  env_b.events.run_all();
  EXPECT_EQ(ft_b.aggregate_stats(link_level::host_up).forwarded, 1u);
  EXPECT_EQ(ft_a.aggregate_stats(link_level::host_up).forwarded, 3u);
}

TEST(fabric_blueprint, shared_and_private_fabrics_produce_identical_flows) {
  // The blueprint split must be invisible to results: the same seed over a
  // shared blueprint and over a privately built fat_tree gives bitwise-equal
  // flow completions.
  fabric_params fp;
  fp.proto = protocol::ndp;
  auto run = [&fp](std::unique_ptr<testbed> bed) {
    flow_options o;
    o.bytes = 20 * 8936;
    o.max_paths = 2;
    std::vector<flow*> flows;
    for (std::uint32_t h = 0; h < 4; ++h) {
      flows.push_back(&bed->flows->create(protocol::ndp, h, 15 - h, o));
    }
    run_until_complete(bed->env, flows, from_ms(100));
    std::vector<simtime_t> fcts;
    for (flow* f : flows) {
      EXPECT_TRUE(f->complete());
      fcts.push_back(f->completion_time());
    }
    return fcts;
  };
  auto bp = make_fat_tree_blueprint(4, fp);
  auto env = std::make_unique<sim_env>(11);
  auto shared_bed = std::make_unique<testbed>(*env, bp, fp);
  const auto shared_fcts = run(std::move(shared_bed));
  const auto private_fcts = run(make_fat_tree_testbed(11, 4, fp));
  EXPECT_EQ(shared_fcts, private_fcts);
}

TEST(fabric_blueprint, parallel_sweep_over_shared_blueprint_is_deterministic) {
  // One blueprint, N jobs: parallel and serial execution must produce
  // bitwise-identical per-config FCT records (the structural table interns
  // lazily under contention in the parallel case — order differs, content
  // must not).
  fabric_params fp;
  fp.proto = protocol::ndp;
  auto bp = make_fat_tree_blueprint(4, fp);

  std::vector<experiment_config> sweep;
  for (int i = 0; i < 4; ++i) {
    sweep.push_back(experiment_config{.name = "cfg" + std::to_string(i),
                                      .seed = 100u + static_cast<unsigned>(i),
                                      .param = i});
  }
  auto body = [&bp, &fp](const experiment_config& cfg, sim_env& env,
                         fct_recorder& fcts) {
    testbed bed(env, bp, fp);
    flow_options o;
    o.bytes = (10 + static_cast<std::uint64_t>(cfg.param)) * 8936;
    o.max_paths = 2;
    std::vector<flow*> flows;
    for (std::uint32_t h = 1; h <= 5; ++h) {
      flow_options fo = o;
      fo.start = static_cast<simtime_t>(env.rand_below(1000)) * kNanosecond;
      flows.push_back(&bed.flows->create(protocol::ndp, h, 0, fo));
    }
    run_until_complete(env, flows, from_ms(100));
    for (const auto& f : bed.flows->flows()) {
      if (f == nullptr) continue;
      fcts.flow_started(f->id, f->start_time, f->bytes);
      if (f->complete()) fcts.flow_completed(f->id, f->completion_time());
    }
  };

  parallel_runner serial(1);
  parallel_runner pool(4);
  const auto a = serial.run(sweep, body);
  const auto b = pool.run(sweep, body);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].fcts.records().size(), b[i].fcts.records().size());
    for (std::size_t j = 0; j < a[i].fcts.records().size(); ++j) {
      const auto& ra = a[i].fcts.records()[j];
      const auto& rb = b[i].fcts.records()[j];
      EXPECT_EQ(ra.flow_id, rb.flow_id);
      EXPECT_EQ(ra.start, rb.start);
      EXPECT_EQ(ra.end, rb.end);
      EXPECT_EQ(ra.bytes, rb.bytes);
    }
    EXPECT_EQ(a[i].events_processed, b[i].events_processed);
    EXPECT_EQ(a[i].sim_end, b[i].sim_end);
  }
  // Every job completed its incast.
  for (const auto& out : a) EXPECT_EQ(out.fcts.completed(), 5u);
}

TEST(fabric_blueprint, make_route_pair_resolves_same_sinks_as_shared_routes) {
  sim_env env;
  fat_tree ft(env, ft_cfg(4), droptail_factory(env));
  auto [raw_fwd, raw_rev] = ft.make_route_pair(2, 13, 1);
  const route* fwd = ft.paths().forward(2, 13, 1);
  ASSERT_EQ(fwd->size(), raw_fwd->size() + 1);  // + demux terminal
  for (std::size_t i = 0; i < raw_fwd->size(); ++i) {
    EXPECT_EQ(&fwd->at(i), &raw_fwd->at(i));
  }
  EXPECT_EQ(&fwd->at(fwd->size() - 1),
            static_cast<packet_sink*>(&ft.paths().demux(13)));
}

}  // namespace
}  // namespace ndpsim
