// Example: receiver-side priority for straggler responses (paper §2.1, Fig 10).
//
// A frontend has fanned out two requests.  The last responses of request A
// ("stragglers") overlap the first responses of request B, and the
// application needs all of A before it can proceed.  Because NDP receivers
// control their inbound traffic via the pull queue, the frontend can mark
// the straggler connections high priority and their PULLs overtake
// everything else — no switch or sender cooperation needed.
//
//   ./examples/priority_stragglers
#include <cstdio>

#include "harness/flow_factory.h"
#include "harness/queue_factory.h"
#include "topo/micro_topo.h"

using namespace ndpsim;

namespace {

double run(bool prioritize_stragglers) {
  sim_env env(3);
  fabric_params fabric;
  fabric.proto = protocol::ndp;
  single_switch topo(env, 10, gbps(10), from_us(1),
                     make_queue_factory(env, fabric));
  flow_factory flows(env, topo);
  const std::uint32_t frontend = 9;

  // Request B: eight workers start sending 500KB responses now.
  for (std::uint32_t w = 0; w < 8; ++w) {
    flow_options o;
    o.bytes = 500'000;
    flows.create(protocol::ndp, w, frontend, o);
  }
  // Request A's straggler: one worker is late with a 100KB response the
  // application is actually blocked on.
  flow_options straggler;
  straggler.bytes = 100'000;
  straggler.start = from_us(100);
  if (prioritize_stragglers) straggler.pull_class = 3;
  flow& f = flows.create(protocol::ndp, 8, frontend, straggler);

  while (!f.complete() && env.events.run_next_event()) {
  }
  return f.fct_us();
}

}  // namespace

int main() {
  const double with_prio = run(true);
  const double without = run(false);
  const double idle_us =
      to_us(serialization_time(100'000 + (100'000 / 8936 + 1) * 64, gbps(10)));
  std::printf("straggler 100KB response arriving into an 8-way fan-in:\n");
  std::printf("  idle network would take       ~%.0f us\n", idle_us);
  std::printf("  with receiver prioritization   %.0f us\n", with_prio);
  std::printf("  without (fair pull sharing)    %.0f us\n", without);
  std::printf("\nThe receiver reordered its own pull queue; nothing in the "
              "network changed.\n");
  return with_prio < without ? 0 : 1;
}
