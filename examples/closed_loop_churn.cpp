// Example: long-running closed-loop churn with flow recycling.
//
// A k=8 FatTree (128 hosts) runs a permutation-style RPC workload: every
// completed flow is torn down by the `flow_recycler` (transports destroyed,
// demux entries unbound, sampled path subset returned to the table's pool,
// flow id recycled) and immediately replaced.  The point of the exercise is
// the memory profile: after a short warmup, route/flow state must be *flat*
// no matter how many generations run — route memory stays O(pairs x paths)
// (the FatPaths fabric-property invariant) and flow state stays
// O(concurrently-live flows), not O(flows-ever-started).
//
// The example runs >= 20 generations and asserts exactly that, then prints
// the per-epoch FCT stats (epoch 0 includes cold-start interning; steady
// state is everything after).
//
//   ./build/example_closed_loop_churn
#include <cstdio>
#include <cstdlib>

#include "harness/experiments.h"
#include "harness/flow_recycler.h"
#include "topo/path_table.h"
#include "workload/traffic_matrix.h"

using namespace ndpsim;

namespace {

struct mem_snapshot {
  std::size_t route_bytes;     ///< path_table::resident_bytes
  std::size_t subset_arrays;   ///< sampled subset slots ever created
  std::size_t flow_slots;      ///< factory flow-table high-water
  std::size_t demux_slots;     ///< sum of per-host probe-table sizes
  std::uint32_t max_flow_id;   ///< id-space high-water
};

mem_snapshot snapshot(testbed& bed) {
  mem_snapshot s{};
  path_table& pt = bed.topo->paths();
  s.route_bytes = pt.resident_bytes();
  s.subset_arrays = pt.subset_arrays();
  s.flow_slots = bed.flows->flows().size();
  for (std::uint32_t h = 0; h < bed.topo->n_hosts(); ++h) {
    s.demux_slots += pt.demux(h).table_size();
  }
  for (const auto& f : bed.flows->flows()) {
    if (f != nullptr) s.max_flow_id = std::max(s.max_flow_id, f->id);
  }
  return s;
}

bool check(bool ok, const char* what) {
  std::printf("  %-52s %s\n", what, ok ? "ok" : "FAILED");
  return ok;
}

}  // namespace

int main() {
  constexpr unsigned kK = 8;
  constexpr std::uint64_t kGenerations = 20;

  fabric_params fabric;
  fabric.proto = protocol::ndp;
  auto bed = make_fat_tree_testbed(/*seed=*/11, kK, fabric);
  const std::size_t n_hosts = bed->topo->n_hosts();
  std::printf("closed-loop churn: k=%u FatTree, %zu hosts, %llu+ generations\n",
              kK, n_hosts, static_cast<unsigned long long>(kGenerations));

  // Permutation-style pairs, cycled so every teardown reseeds its slot.
  const auto matrix = permutation_matrix(bed->env.rng, n_hosts);
  std::uint64_t cursor = 0;
  auto pick_pair = [&matrix, &cursor](sim_env&) {
    const std::uint32_t src =
        static_cast<std::uint32_t>(cursor++ % matrix.size());
    return std::make_pair(src, matrix[src]);
  };

  // Routes are fabric properties: intern every pair's full path set up
  // front so the flatness check below measures churn, not lazy interning
  // (random 8-path subsets would otherwise keep discovering unbuilt path
  // indices for a few dozen generations).
  for (std::uint32_t h = 0; h < n_hosts; ++h) {
    (void)bed->topo->paths().all(h, matrix[h]);
  }

  recycler_config rc;
  rc.proto = protocol::ndp;
  rc.opts.bytes = 90'000;   // ~10 full packets per RPC
  rc.opts.max_paths = 8;    // capped subsets: exercises the pooled arrays
  rc.linger = from_us(500); // drain window before teardown (~many RTTs)
  flow_recycler rec(bed->env, *bed->topo, *bed->flows, rc, pick_pair);
  rec.start(n_hosts);

  // Warm up two full generations (interning, pool growth), then snapshot.
  while (rec.generations() < 2 && bed->env.events.run_next_event()) {
  }
  const mem_snapshot warm = snapshot(*bed);
  const std::size_t warm_live = bed->flows->live_count();
  std::printf("after %llu generations: %zu flow slots, %zu live, "
              "%.2f MB route state, %zu subset arrays\n",
              static_cast<unsigned long long>(rec.generations()),
              warm.flow_slots, warm_live,
              static_cast<double>(warm.route_bytes) / 1e6, warm.subset_arrays);

  while (rec.generations() < kGenerations + 1 &&
         bed->env.events.run_next_event()) {
  }
  rec.stop();
  const mem_snapshot done = snapshot(*bed);

  std::printf("after %llu generations (%llu flows recycled):\n",
              static_cast<unsigned long long>(rec.generations()),
              static_cast<unsigned long long>(rec.flows_recycled()));

  // The acceptance gate: steady-state route/flow memory is *flat* — every
  // structure sits exactly where the warmup left it.
  bool ok = true;
  ok &= check(rec.generations() >= kGenerations, ">= 20 flow generations ran");
  ok &= check(done.route_bytes == warm.route_bytes,
              "route memory flat (resident_bytes unchanged)");
  ok &= check(done.subset_arrays == warm.subset_arrays,
              "sampled subset arrays pooled (none created after warmup)");
  ok &= check(done.flow_slots == warm.flow_slots,
              "flow table flat (slots recycled, not appended)");
  ok &= check(done.demux_slots <= warm.demux_slots,
              "demux registries flat (unbind shrinks tables)");
  ok &= check(done.max_flow_id == warm.max_flow_id,
              "flow-id space flat (ids recycled)");
  ok &= check(bed->flows->live_count() <= warm_live + rec.lingering(),
              "live flows bounded by population + linger window");

  const fct_recorder& fcts = rec.fcts();
  std::printf("FCTs: %zu flows completed over %u epochs\n", fcts.completed(),
              fcts.max_epoch() + 1);
  for (std::uint32_t e = 0; e <= fcts.max_epoch() && e < 4; ++e) {
    sample_set s = fcts.fct_us_epoch(e);
    if (s.empty()) continue;
    std::printf("  epoch %u: %4zu flows, median %.1f us, p99 %.1f us\n", e,
                s.size(), s.median(), s.quantile(0.99));
  }
  std::printf("stale packets dropped at demuxes: %llu\n",
              static_cast<unsigned long long>(bed->topo->paths().stale_drops()));

  if (!ok) {
    std::printf("FAILED: churn leaked route/flow state\n");
    return 1;
  }
  std::printf("steady-state memory flat across %llu generations\n",
              static_cast<unsigned long long>(rec.generations()));
  return 0;
}
