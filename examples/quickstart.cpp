// Quickstart: the smallest useful NDP simulation.
//
// Builds a k=4 FatTree (16 hosts) with NDP switches, transfers 1MB between
// two hosts in different pods, and prints what happened: zero-RTT start,
// per-packet spraying across all 4 core paths, and completion statistics.
//
//   ./examples/quickstart
#include <cstdio>

#include "harness/experiments.h"

using namespace ndpsim;

int main() {
  // 1. A testbed = simulation env + FatTree with NDP queues + flow factory.
  fabric_params fabric;
  fabric.proto = protocol::ndp;       // trimming switches, 8-packet queues
  auto bed = make_fat_tree_testbed(/*seed=*/1, /*k=*/4, fabric);
  std::printf("topology: %zu hosts, %zu cores, %zu paths between distant hosts\n",
              bed->topo->n_hosts(), bed->topo->n_cores(),
              bed->topo->n_paths(0, 15));

  // 2. One 1MB NDP flow from host 0 to host 15 (different pod).
  flow_options opts;
  opts.bytes = 1'000'000;
  opts.iw_packets = 30;  // zero-RTT: the whole first window is pushed
  flow& f = bed->flows->create(protocol::ndp, 0, 15, opts);

  // 3. Run the event loop until the flow completes.
  run_until_complete(bed->env, {&f}, from_sec(1));

  // 4. Inspect the result.
  std::printf("completed: %s\n", f.complete() ? "yes" : "no");
  std::printf("flow completion time: %.1f us\n", f.fct_us());
  std::printf("payload delivered: %llu bytes\n",
              static_cast<unsigned long long>(f.payload_received()));
  const ndp_source_stats& s = f.ndp_src()->stats();
  std::printf("packets sent: %llu (rtx %llu), ACKs %llu, NACKs %llu, "
              "PULLs %llu\n",
              static_cast<unsigned long long>(s.packets_sent),
              static_cast<unsigned long long>(s.rtx_sent),
              static_cast<unsigned long long>(s.acks_received),
              static_cast<unsigned long long>(s.nacks_received),
              static_cast<unsigned long long>(s.pulls_received));
  const double wire_us =
      to_us(serialization_time(f.payload_received(), gbps(10)));
  std::printf("(payload alone would take %.1f us to serialize at 10G)\n",
              wire_us);
  return f.complete() ? 0 : 1;
}
