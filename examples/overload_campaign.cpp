// Example: open-loop overload campaign — the campaign engine's first
// customer.
//
// A grid of arrival-rate ratios x transports drives `flow_recycler`'s
// open-loop Poisson mode on a k=4 FatTree: each job offers a fixed fraction
// of the fabric's host-link capacity as Poisson flow arrivals and runs for
// a fixed slice of simulated time.  Below saturation the FCT curve is flat
// and the live-flow population is small; past saturation (ratio > 1) the
// queueing system is unstable and the *live-flow count blows up* — the
// still-open column is the signature the sweep exists to plot.
//
// The interesting part is not the 12 jobs, it is HOW they run: through
// `campaign_runner` (src/harness/campaign_runner.h), each job reduced on
// the worker to a compact `fct_summary` spill line + journal entry, so the
// same harness scales to thousand-job grids in bounded memory and survives
// interruption (`--resume` style).  `--smoke` runs a tiny grid twice —
// once interrupted at the halfway journal and resumed, once uninterrupted —
// and self-checks that the two merged result files are BYTE-identical,
// which is the campaign engine's resume contract.  CI runs exactly that.
//
//   ./build/example_overload_campaign [--smoke] [dir]
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "harness/campaign_runner.h"
#include "harness/experiments.h"
#include "harness/flow_recycler.h"

using namespace ndpsim;

namespace {

constexpr unsigned kK = 4;  // 16 hosts
constexpr std::uint64_t kFlowBytes = 45'000;  // 5 full packets per flow

const protocol kTransports[] = {protocol::ndp, protocol::tcp,
                                protocol::dctcp};

/// One overload job: offered load = param2 x fabric host-link capacity,
/// transport = kTransports[param].  Everything — fabric, plane, arrivals —
/// is rebuilt from the per-job env, so the job is a pure function of its
/// config (the campaign resume contract rides on that).
void overload_body(const experiment_config& cfg, sim_env& env,
                   fct_recorder& fcts, simtime_t duration) {
  const protocol proto = kTransports[cfg.param];
  fabric_params fp;
  fp.proto = proto;
  const auto bp = make_fat_tree_blueprint(kK, fp);
  env.telemetry =
      std::make_shared<telemetry_plane>(bp->n_slots(), bp.get());
  testbed bed(env, bp, fp);
  const std::uint32_t n_hosts =
      static_cast<std::uint32_t>(bed.topo->n_hosts());

  // Uniform random pairs, src != dst.
  auto pick_pair = [n_hosts](sim_env& e) {
    const std::uint32_t src = e.rand_below(n_hosts);
    std::uint32_t dst = e.rand_below(n_hosts - 1);
    if (dst >= src) ++dst;
    return std::make_pair(src, dst);
  };

  // Offered load: ratio x aggregate host-link capacity, in flows/sec.
  const double capacity_flows_per_sec =
      static_cast<double>(n_hosts) *
      static_cast<double>(bp->config().link_speed) /
      (8.0 * static_cast<double>(kFlowBytes));

  recycler_config rc;
  rc.proto = proto;
  rc.opts.bytes = kFlowBytes;
  rc.opts.max_paths = 8;
  rc.open_rate_per_sec = cfg.param2 * capacity_flows_per_sec;
  flow_recycler rec(env, *bed.topo, *bed.flows, rc, pick_pair);
  rec.start(4);

  while (env.events.now() < duration && env.events.run_next_event()) {
  }
  rec.stop();

  // Surface the recycler's bookkeeping through the outcome's recorder:
  // completed flows merge over; the still-live population (the blow-up
  // signal) is re-expressed as open records under an id range the merge
  // cannot collide with.
  fcts.merge_from(rec.fcts());
  for (std::size_t i = 0; i < rec.fcts().still_open(); ++i) {
    fcts.flow_started(static_cast<std::uint32_t>(0x40000000u + i),
                      env.events.now(), 0);
  }
}

std::vector<experiment_config> make_grid(const std::vector<double>& ratios,
                                         std::size_t n_transports) {
  std::vector<experiment_config> configs;
  for (std::size_t t = 0; t < n_transports; ++t) {
    for (const double r : ratios) {
      experiment_config cfg;
      char name[64];
      std::snprintf(name, sizeof name, "%s_load%03d",
                    to_string(kTransports[t]),
                    static_cast<int>(r * 100 + 0.5));
      cfg.name = name;
      cfg.seed = 1000 + configs.size();
      cfg.param = static_cast<std::int64_t>(t);
      cfg.param2 = r;
      configs.push_back(std::move(cfg));
    }
  }
  return configs;
}

bool check(bool ok, const char* what) {
  std::printf("  %-52s %s\n", what, ok ? "ok" : "FAILED");
  return ok;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// --smoke: tiny grid, interrupted-and-resumed vs uninterrupted, merged
/// results must be byte-identical.  Returns 0 on success (CI gates on it).
int run_smoke(const std::string& dir) {
  const auto configs = make_grid({0.5, 1.1}, 2);  // 4 jobs
  const simtime_t duration = from_ms(3.0);
  const auto body = [duration](const experiment_config& cfg, sim_env& env,
                               fct_recorder& fcts) {
    overload_body(cfg, env, fcts, duration);
  };

  std::printf("smoke: %zu jobs, interrupt at %zu, resume, compare\n",
              configs.size(), configs.size() / 2);
  std::filesystem::remove_all(dir + "/interrupted");
  std::filesystem::remove_all(dir + "/straight");

  // Leg 1: run to completion in one go.
  campaign_config straight;
  straight.dir = dir + "/straight";
  straight.threads = 1;
  const campaign_result full = campaign_runner(straight).run(configs, body);

  // Leg 2: stop after half the jobs (journal survives, process state is
  // dropped on return), then resume from the journal.
  campaign_config interrupted;
  interrupted.dir = dir + "/interrupted";
  interrupted.threads = 1;
  interrupted.max_jobs = configs.size() / 2;
  const campaign_result half = campaign_runner(interrupted).run(configs, body);

  campaign_config resumed_cfg = interrupted;
  resumed_cfg.max_jobs = 0;
  resumed_cfg.resume = true;
  const campaign_result resumed =
      campaign_runner(resumed_cfg).run(configs, body);

  bool ok = true;
  ok &= check(full.completed && !full.merged_path.empty(),
              "uninterrupted campaign completed");
  ok &= check(!half.completed && half.jobs_run >= configs.size() / 2,
              "interrupted campaign stopped early");
  ok &= check(resumed.completed, "resumed campaign completed");
  ok &= check(resumed.jobs_skipped == half.jobs_run,
              "resume skipped exactly the journaled jobs");
  ok &= check(resumed.journal_rejects == 0 && resumed.spill_rejects == 0,
              "journal replayed clean");
  const std::string a = slurp(full.merged_path);
  const std::string b = slurp(resumed.merged_path);
  ok &= check(!a.empty() && a == b,
              "merged results byte-identical across resume");
  if (!ok) {
    std::printf("FAILED: campaign resume contract violated\n");
    return 1;
  }
  std::printf("resume contract holds: %zu bytes, identical\n", a.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string dir = "overload_campaign_out";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      dir = argv[i];
    }
  }
  if (smoke) return run_smoke(dir);

  const std::vector<double> ratios = {0.4, 0.7, 0.9, 1.1};
  const auto configs = make_grid(ratios, std::size(kTransports));
  const simtime_t duration = from_ms(20.0);
  std::printf("overload campaign: k=%u FatTree, %zu jobs "
              "(%zu transports x %zu load ratios), %.0f ms each\n",
              kK, configs.size(), std::size(kTransports), ratios.size(),
              to_us(duration) / 1000.0);

  campaign_config cc;
  cc.dir = dir;
  const campaign_result res = campaign_runner(cc).run(
      configs, [duration](const experiment_config& cfg, sim_env& env,
                          fct_recorder& fcts) {
        overload_body(cfg, env, fcts, duration);
      });
  if (!res.completed) {
    std::printf("FAILED: campaign did not complete\n");
    return 1;
  }

  std::printf("%zu jobs done (%zu resumed from journal); results: %s\n\n",
              res.jobs_total, res.jobs_skipped, res.merged_path.c_str());
  std::printf("%-16s %6s %8s %10s %10s %10s %8s\n", "job", "load", "flows",
              "p50 us", "p99 us", "max us", "live");
  for (const fct_summary& s : res.summaries) {
    std::printf("%-16s %5.0f%% %8llu %10.1f %10.1f %10.1f %8llu\n",
                s.name.c_str(), 100.0 * configs[s.job].param2,
                static_cast<unsigned long long>(s.flows), s.quantile_us(0.5),
                s.quantile_us(0.99), s.max_us,
                static_cast<unsigned long long>(s.still_open));
  }
  std::printf("\npast saturation (load > 100%%) the live-flow column blows "
              "up while p99 runs away — the open-loop instability the "
              "campaign plots.\n");
  return 0;
}
