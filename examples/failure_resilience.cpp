// Example: routing around silent link degradation (paper §3.2.3, Fig 22).
//
// A core link quietly renegotiates from 10Gb/s to 1Gb/s — the kind of
// failure routing protocols take a while to notice.  NDP senders keep a
// per-path scoreboard of ACKs vs NACKs; paths crossing the sick link rack up
// NACKs and get temporarily evicted from the spraying set.  This example
// runs the same transfer with the scoreboard on and off.
//
//   ./examples/failure_resilience
#include <cstdio>

#include "harness/experiments.h"

using namespace ndpsim;

namespace {

double run_transfer(bool penalty_enabled) {
  fabric_params fabric;
  fabric.proto = protocol::ndp;
  // Degrade one agg->core uplink (and its reverse) to 1Gb/s.
  auto degrade = [](link_level level, std::size_t index,
                    linkspeed_bps def) -> linkspeed_bps {
    if (level == link_level::agg_up && index == 0) return gbps(1);
    if (level == link_level::core_down && index == 0) return gbps(1);
    return def;
  };
  auto bed = make_fat_tree_testbed(5, 4, fabric, 1, degrade);

  // A long flow whose path set crosses the degraded link.
  flow_options o;
  o.bytes = 20'000'000;  // 20MB
  o.path_penalty = penalty_enabled;
  flow& f = bed->flows->create(protocol::ndp, 0, 15, o);
  run_until_complete(bed->env, {&f}, from_sec(5));
  if (!f.complete()) return -1;
  return f.fct_us() / 1000.0;
}

}  // namespace

int main() {
  const double with_scoreboard = run_transfer(true);
  const double without = run_transfer(false);
  const double ideal_ms = to_us(serialization_time(20'000'000, gbps(10))) / 1000.0;
  std::printf("20MB transfer across a FatTree with one core link at 1Gb/s:\n");
  std::printf("  ideal (healthy fabric)      ~%.1f ms\n", ideal_ms);
  std::printf("  with path scoreboard         %.1f ms\n", with_scoreboard);
  std::printf("  without (blind spraying)     %.1f ms\n", without);
  std::printf("\nThe scoreboard notices the NACK-heavy paths within an RTT "
              "or two and stops using them until they recover.\n");
  return with_scoreboard > 0 && (without < 0 || with_scoreboard < without)
             ? 0
             : 1;
}
