// Example: surviving a large fan-in (incast).
//
// The paper's motivating workload: a frontend fans a request out to many
// workers, and all the responses arrive at once.  This example runs a
// 60-to-1 incast of 450KB responses on a 128-host FatTree with NDP and
// shows (a) the first-RTT trimming storm, (b) receiver-paced recovery, and
// (c) completion within a few percent of the theoretical optimum — then
// contrasts the same fan-in over MPTCP.
//
//   ./examples/incast_fanin
#include <cstdio>

#include "harness/experiments.h"
#include "workload/traffic_matrix.h"

using namespace ndpsim;

namespace {

void run(protocol proto) {
  fabric_params fabric;
  fabric.proto = proto;
  auto bed = make_fat_tree_testbed(7, 8, fabric);
  const std::size_t n = 60;
  const std::uint64_t bytes = 450'000;
  const auto senders =
      incast_senders(bed->env.rng, bed->topo->n_hosts(), /*receiver=*/0, n);

  flow_options opts;
  opts.handshake = false;
  opts.min_rto = from_ms(10);
  const auto res =
      run_incast(*bed, proto, senders, 0, bytes, opts, from_sec(30));

  const double optimal =
      incast_optimal_us(n, bytes, 9000, gbps(10), from_us(40));
  std::printf("--- %s ---\n", to_string(proto));
  std::printf("completed %zu/%zu flows\n", res.completed, n);
  std::printf("last flow done at %.2f ms (optimal %.2f ms, +%.1f%%)\n",
              res.last_fct_us / 1000.0, optimal / 1000.0,
              100.0 * (res.last_fct_us - optimal) / optimal);
  std::printf("fastest flow %.2f ms — fairness spread %.2fx\n",
              res.first_fct_us / 1000.0,
              res.last_fct_us / std::max(1.0, res.first_fct_us));
  if (proto == protocol::ndp) {
    const auto tor_down = bed->topo->aggregate_stats(link_level::tor_down);
    std::printf("switch trims at ToR->host ports: %llu "
                "(every one triggered an immediate NACK + later PULL)\n",
                static_cast<unsigned long long>(tor_down.trimmed));
    std::printf("retransmissions: %llu after NACK, %llu after "
                "return-to-sender, %llu after timeout\n",
                static_cast<unsigned long long>(res.rtx_after_nack),
                static_cast<unsigned long long>(res.rtx_after_bounce),
                static_cast<unsigned long long>(res.rtx_after_timeout));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("60-to-1 incast, 450KB responses, 128-host FatTree\n\n");
  run(protocol::ndp);
  run(protocol::mptcp);
  std::printf("NDP absorbs the synchronized burst via trimming; MPTCP "
              "loses whole windows and waits out retransmission timers.\n");
  return 0;
}
