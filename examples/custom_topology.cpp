// Example: bringing your own topology and switch configuration.
//
// Shows the extension points a downstream user needs:
//   * a custom queue_factory (here: NDP queues with a deliberately tiny
//     header queue plus return-to-sender, to watch RTS kick in),
//   * a hand-built leaf-spine topology instead of the FatTree,
//   * direct access to per-queue statistics,
//   * the zero-RTT acceptor for listen-style applications.
//
//   ./examples/custom_topology
#include <algorithm>
#include <cstdio>

#include "harness/flow_factory.h"
#include "harness/queue_factory.h"
#include "ndp/ndp_acceptor.h"
#include "ndp/ndp_queue.h"
#include "net/fifo_queues.h"
#include "topo/micro_topo.h"
#include "workload/cbr_source.h"
#include "workload/traffic_matrix.h"

using namespace ndpsim;

int main() {
  sim_env env(11);

  // A queue factory is just a function: build whatever discipline you like
  // per link level. Here: 6-packet data queues and a header queue of only
  // four headers, so large incasts must fall back to return-to-sender.
  queue_factory factory = [&env](link_level level, std::size_t,
                                 linkspeed_bps rate, const std::string& name)
      -> std::unique_ptr<queue_base> {
    if (level == link_level::host_up) {
      return std::make_unique<host_priority_queue>(env, rate, name);
    }
    ndp_queue_config qc;
    qc.data_capacity_bytes = 6 * 9000;
    qc.header_capacity_bytes = 2 * kHeaderBytes;
    qc.enable_rts = true;
    return std::make_unique<ndp_queue>(env, rate, qc, name);
  };

  // 6 leaves x 4 hosts, 3 spines.
  leaf_spine topo(env, 6, 3, 4, gbps(10), from_us(1), factory);
  flow_factory flows(env, topo);
  std::printf("leaf-spine: %zu hosts, %zu paths between distant hosts\n",
              topo.n_hosts(), topo.n_paths(0, 23));

  // 20-to-1 incast of single-packet responses: the worst case for the tiny
  // header queue.
  const auto senders = incast_senders(env.rng, topo.n_hosts(), 0, 20);
  std::vector<flow*> fs;
  for (auto s : senders) {
    flow_options o;
    o.bytes = 30 * 8936;  // a full initial window each
    fs.push_back(&flows.create(protocol::ndp, s, 0, o));
  }
  while (env.events.run_next_event()) {
    if (std::all_of(fs.begin(), fs.end(),
                    [](flow* f) { return f->complete(); })) {
      break;
    }
  }

  std::uint64_t bounces = 0;
  std::uint64_t timeouts = 0;
  std::size_t done = 0;
  for (flow* f : fs) {
    done += f->complete() ? 1 : 0;
    bounces += f->ndp_src()->stats().bounces_received;
    timeouts += f->ndp_src()->stats().rtx_after_timeout;
  }
  std::printf("incast 20x30pkt: %zu/20 complete, %llu return-to-sender "
              "bounces, %llu RTO retransmissions\n",
              done, static_cast<unsigned long long>(bounces),
              static_cast<unsigned long long>(timeouts));

  // Zero-RTT listen: an acceptor creates per-connection state from whichever
  // first-RTT packet shows up first, and rejects time-wait duplicates.
  ndp_acceptor acceptor(env, [&](std::uint32_t flow_id) -> packet_sink* {
    std::printf("acceptor: connection %u established (SYN seen)\n", flow_id);
    static counting_sink sink{env};
    return &sink;
  });
  packet* p = env.pool.alloc();
  p->type = packet_type::ndp_data;
  p->flow_id = 4242;
  p->seqno = 5;  // not the first packet of the window — establishment still works
  p->set_flag(pkt_flag::syn);
  acceptor.receive(*p);
  acceptor.close(4242);
  std::printf("acceptor: %llu established, duplicates rejected so far %llu\n",
              static_cast<unsigned long long>(acceptor.established()),
              static_cast<unsigned long long>(acceptor.duplicates_rejected()));
  return done == 20 ? 0 : 1;
}
