#!/usr/bin/env bash
# Profile a simulator binary with gprofng using the repo-standard flags.
#
# Builds the Release tree (LTO + native, the configuration every committed
# number is measured in), records one experiment with `gprofng collect app`,
# and prints the function-level profile sorted by exclusive CPU time —
# the view the packet-path optimization work is driven by.
#
# Usage: scripts/profile.sh [TARGET] [ARGS...]
#   TARGET     binary target to profile (default: prof_k32, the committed
#              k=32 permutation headline workload)
#   ARGS       passed through to the binary
#
# Environment:
#   BUILD_DIR  build tree to use (default: build-release)
#   OUT_DIR    where the .er experiment directory goes
#              (default: /tmp/ndpsim-prof.<pid>.er; an existing directory
#              of that name is removed first)
#   LINES      how many functions to print (default: 30)
#
# Examples:
#   scripts/profile.sh                      # the k=32 headline workload
#   scripts/profile.sh bench_eventcore /tmp/b.json --quick
#
# Notes:
#   - perf/valgrind are unavailable in the dev container; gprofng (binutils)
#     is the supported profiler.
#   - Keep the machine otherwise idle: the simulator is single threaded and
#     the profile is CPU-time based.
#   - For call-tree views: gprofng display text -calltree "$OUT_DIR"
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build-release}"
target="${1:-prof_k32}"
shift || true
out_dir="${OUT_DIR:-/tmp/ndpsim-prof.$$.er}"
lines="${LINES:-30}"

command -v gprofng >/dev/null || {
  echo "error: gprofng not found (install binutils)" >&2
  exit 1
}

cmake -S "$repo_root" -B "$build_dir" -DCMAKE_BUILD_TYPE=Release \
      -DBUILD_TESTING=OFF >/dev/null
cmake --build "$build_dir" --target "$target" -j"$(nproc)"

rm -rf "$out_dir"
gprofng collect app -o "$out_dir" "$build_dir/$target" "$@"

echo
echo "== functions by exclusive CPU time ($out_dir) =="
gprofng display text -limit "$lines" -functions "$out_dir"
echo
echo "experiment kept at $out_dir (view: gprofng display text -functions $out_dir)"
