#!/usr/bin/env python3
"""Render an ASCII queue-depth heatmap from a telemetry JSON document.

Input is the file produced by ndpsim's `write_telemetry_json` (see
src/stats/telemetry_json.h for the schema): rows are queues, columns are
collector epochs, cell shade is the chosen per-interval metric.  Stdlib
only — no matplotlib in the loop; the point is a terminal-greppable view of
where the fabric queued, dropped, trimmed or marked, straight from a run.

Usage:
  telemetry_heatmap.py TELEMETRY.json [--metric depth_pkts] [--level tor_up]
                       [--top 24] [--width 100]

Metrics: depth_pkts, depth_bytes, utilization, drops, trims, marks.
--level filters rows by the queue's link level name as embedded in its slot
name (e.g. "torup", "hostup" — substring match); --top keeps the rows with
the largest peak value; --width resamples the epoch axis to fit a terminal.
"""
import argparse
import json
import sys

SHADES = " .:-=+*#%@"


def resample(values, width):
    """Max-pool a series down to `width` buckets (max, not mean: a heatmap
    for congestion diagnosis must not average away a one-epoch spike)."""
    if len(values) <= width:
        return values
    out = []
    for b in range(width):
        lo = b * len(values) // width
        hi = max(lo + 1, (b + 1) * len(values) // width)
        out.append(max(values[lo:hi]))
    return out


def render(rows, width):
    peak = max((max(r["series"]) for r in rows if r["series"]), default=0)
    if peak <= 0:
        return ["(all-zero series: nothing to plot)"], 0
    name_w = max(len(r["name"]) for r in rows)
    lines = []
    for r in rows:
        series = resample(r["series"], width)
        cells = "".join(
            SHADES[min(len(SHADES) - 1,
                       int(v / peak * (len(SHADES) - 1) + 0.5))]
            for v in series)
        lines.append(f"{r['name']:>{name_w}} |{cells}|  peak {max(r['series']):g}")
    return lines, peak


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("json_file")
    ap.add_argument("--metric", default="depth_pkts",
                    choices=["depth_pkts", "depth_bytes", "utilization",
                             "drops", "trims", "marks"])
    ap.add_argument("--level", default=None,
                    help="substring filter on the queue name (e.g. torup)")
    ap.add_argument("--top", type=int, default=24,
                    help="keep the N rows with the largest peak")
    ap.add_argument("--width", type=int, default=100,
                    help="max epoch columns (max-pooled down to fit)")
    args = ap.parse_args()

    with open(args.json_file) as f:
        doc = json.load(f)
    ts = doc.get("timeseries")
    if ts is None:
        print("error: no timeseries section (run with a telemetry_collector "
              "and pass it to write_telemetry_json)")
        return 2

    rows = []
    for q in ts.get("queues", []):
        if args.level and args.level not in q.get("name", ""):
            continue
        series = q.get(args.metric, [])
        if series:
            rows.append({"name": q["name"], "series": series})
    if not rows:
        print("error: no queue rows matched")
        return 2
    rows.sort(key=lambda r: max(r["series"]), reverse=True)
    dropped = len(rows) - args.top
    rows = rows[:args.top]

    epochs = ts.get("epochs_us", [])
    span = f"{epochs[0]:.0f}..{epochs[-1]:.0f}us" if epochs else "?"
    lines, peak = render(rows, args.width)
    print(f"{args.metric} heatmap, {len(rows)} queues, epochs {span} "
          f"(epoch {ts.get('epoch_us', 0):g}us, "
          f"{ts.get('dropped_epochs', 0)} epochs aged out of the ring)")
    print(f"scale: ' '=0 .. '@'={peak:g}")
    for line in lines:
        print(line)
    if dropped > 0:
        print(f"({dropped} quieter queues not shown; raise --top)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
