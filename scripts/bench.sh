#!/usr/bin/env bash
# Build Release and refresh BENCH_eventcore.json at the repo root: the
# event-core microbenchmark (new scheduler vs embedded legacy baseline) plus
# representative figure runs and the serial-vs-parallel sweep.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build-bench}"

cmake -S "$repo_root" -B "$build_dir" -DCMAKE_BUILD_TYPE=Release \
      -DBUILD_TESTING=OFF >/dev/null
cmake --build "$build_dir" --target bench_eventcore -j"$(nproc)"

"$build_dir/bench_eventcore" "$repo_root/BENCH_eventcore.json"
echo "updated $repo_root/BENCH_eventcore.json"
