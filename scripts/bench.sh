#!/usr/bin/env bash
# Build Release and refresh BENCH_eventcore.json at the repo root: the
# event-core microbenchmark (new scheduler vs embedded legacy baseline), the
# flow-churn recycling benchmark, representative figure runs, the
# serial-vs-parallel sweep and the campaign-engine section (streaming vs
# keep-all RSS, resume identity).
#
# Usage: scripts/bench.sh [output.json]
#   BENCH_QUICK=1  reduced iteration counts and a shorter campaign grid
#                  (CI smoke runs; per-job work is unchanged, so rates stay
#                  comparable while wall time drops)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-$repo_root/build-bench}"
out="${1:-$repo_root/BENCH_eventcore.json}"

cmake -S "$repo_root" -B "$build_dir" -DCMAKE_BUILD_TYPE=Release \
      -DBUILD_TESTING=OFF >/dev/null
cmake --build "$build_dir" --target bench_eventcore -j"$(nproc)"

args=("$out")
if [[ "${BENCH_QUICK:-0}" != "0" ]]; then
  args+=("--quick")
fi
"$build_dir/bench_eventcore" "${args[@]}"
echo "updated $out"
