#!/usr/bin/env python3
"""Compare two BENCH_eventcore.json files and fail on events/sec regression.

Usage: check_bench.py COMMITTED.json CANDIDATE.json [--tolerance 0.2]

Compares the rate metrics that are stable across iteration counts (figure
events/sec, scheduler ops/sec, flow-churn flows/sec, route-setup routes/sec,
fabric-setup instantiations/sec, flat-dispatch events/sec): the candidate
may not fall more than `tolerance` below the committed value.  Being faster
is never an error.  Metrics present in only one file are skipped, so the
check keeps working while benchmark sections are added (and while --quick
runs omit the k=32 fabric-setup/figure entries).

Structural gates ride along: the candidate's flat_dispatch section must
exist, be non-diverged and >= 1.2x (PR 6); the committed baseline's
permutation_ndp_k32 figure must stay at or above the recorded floor (2.3M
events/s since the packet-layout PR); and the candidate's telemetry section
must exist, be non-diverged, with on-mode overhead <= 10% and the off
(unarmed) mode within 10% of the same run's flat_dispatch rate on the
identical workload (PR 8 — same-binary same-process comparison, so the
bar does not depend on machine speed; it is 10% rather than tighter
because the two sections time the identical configuration minutes apart
and cross-section drift alone spans ~7% on a shared machine — the gate
exists to catch an unarmed hook acquiring real cost, which shows up far
above that).  The campaign section (PR 9) adds three more candidate-side
gates: resume_identical (interrupted+resumed merged results byte-identical
to uninterrupted), streaming RSS strictly below the keep-every-outcome
baseline, and RSS flat in campaign length.

The comparison prints as a per-section table (figures, scheduler, churn,
packet_path, ...) so an old-vs-new delta is readable section by section.
"""
import argparse
import json
import sys


# Figures whose committed wall time is below this are skipped: a run of a
# few milliseconds measures scheduler jitter, not the simulator.
MIN_FIGURE_WALL_SEC = 0.03

# Absolute floor on the COMMITTED k=32 figure.  The packet-layout PR reset
# this from the flat-dispatch PR's 2.5M: interleaved same-machine A/B puts
# the layout work's true end-to-end gain at ~5-10% over the seed, but the
# shared dev machine now runs EVERY section (including untouched ones like
# timer_churn and fabric_setup) 10-25% below the previously committed
# numbers, so the recorded baseline dropped to 2.4M despite the code being
# faster like-for-like.  The floor sits just under that at 2.3M — still a
# hard guard against committing a genuinely slowed-down baseline.  Applied
# to the committed baseline, not the candidate: the baseline is recorded
# once on a dev machine per scripts/bench.sh, so the floor gates what gets
# committed without making CI depend on shared-runner speed (quick candidate
# runs omit k=32 entirely).
K32_FLOOR_EVENTS_PER_SEC = 2.3e6
K32_FIGURE = "permutation_ndp_k32"


def rate_metrics(doc):
    """Flatten the rate (per-second) metrics of one bench document."""
    out = {}
    sched = doc.get("scheduler_microbench", {})
    if "timer_churn" in sched:
        out["timer_churn.new_ops_per_sec"] = sched["timer_churn"].get(
            "new_ops_per_sec")
    if "tick_dispatch" in sched:
        out["tick_dispatch.new_events_per_sec"] = sched["tick_dispatch"].get(
            "new_events_per_sec")
    # route_setup's interned side finishes in ~1ms; the bench reports the
    # best of interleaved rounds, which damps the allocation jitter enough
    # for the 20% gate to watch it without crying wolf.
    rsetup = doc.get("route_setup", {})
    if "interned_routes_per_sec" in rsetup:
        out["route_setup.interned_routes_per_sec"] = rsetup[
            "interned_routes_per_sec"]
    # fabric_setup: per-instance instantiation rate, keyed by k so the quick
    # run (k=16 only) compares against the committed k=16 entry and the full
    # run also gates k=32.
    for fs in doc.get("fabric_setup", []):
        k = fs.get("k")
        if k is None:
            continue
        out[f"fabric_setup.k{k}.instantiates_per_sec"] = fs.get(
            "instantiates_per_sec")
    churn = doc.get("flow_churn", {})
    if "recycling" in churn:
        out["flow_churn.recycling_flows_per_sec"] = churn["recycling"].get(
            "flows_per_sec")
    for fig in doc.get("figures", []):
        if fig.get("wall_seconds", 0) < MIN_FIGURE_WALL_SEC:
            continue
        out[f"figures.{fig['name']}.events_per_sec"] = fig.get(
            "events_per_sec")
    fd = doc.get("flat_dispatch", {})
    if "flat_events_per_sec" in fd:
        out["flat_dispatch.flat_events_per_sec"] = fd["flat_events_per_sec"]
    tel = doc.get("telemetry", {})
    if "off_events_per_sec" in tel:
        out["telemetry.off_events_per_sec"] = tel["off_events_per_sec"]
    pp = doc.get("packet_path", {})
    if "new_ops_per_sec" in pp:
        out["packet_path.new_ops_per_sec"] = pp["new_ops_per_sec"]
    # campaign jobs/sec: quick runs use a shorter grid but identical per-job
    # work, so the rate stays comparable with the committed full run.
    camp = doc.get("campaign", {})
    if "jobs_per_sec" in camp:
        out["campaign.jobs_per_sec"] = camp["jobs_per_sec"]
    return {k: v for k, v in out.items() if isinstance(v, (int, float))}


def check_flat_dispatch(doc):
    """Structural gates on the candidate's flat_dispatch section (PR 6):
    the section must exist, the two dispatch modes must have run the exact
    same event sequence, and flat must actually be faster than virtual.
    Returns a list of failure strings (empty = pass)."""
    fd = doc.get("flat_dispatch")
    if fd is None:
        return ["flat_dispatch section missing from candidate"]
    failures = []
    if fd.get("identical_events") is not True:
        failures.append("flat_dispatch.identical_events is not true "
                        "(flat and virtual dispatch diverged)")
    speedup = fd.get("speedup", 0)
    if not isinstance(speedup, (int, float)) or speedup < 1.2:
        failures.append(
            f"flat_dispatch.speedup {speedup} below the 1.2x floor")
    return failures


def check_telemetry(doc):
    """Structural gates on the candidate's telemetry section (PR 8): it must
    exist, the off-vs-on transport event sequences must match, on-mode
    overhead must stay within the 10% budget, and the unarmed (off) mode
    must be within 10% of the same run's flat_dispatch rate — both sides of
    that last gate come from one binary in one process over the identical
    k=16 workload, so it is machine-independent.  The off/flat bar is 10%,
    not tighter: the two sections time the same configuration minutes
    apart, and cross-section drift alone spans ~7% on a shared machine;
    a hook that acquires real unarmed cost (a lock, a missing null check)
    lands far above 10%.
    Returns a list of failure strings (empty = pass)."""
    tel = doc.get("telemetry")
    if tel is None:
        return ["telemetry section missing from candidate"]
    failures = []
    if tel.get("identical_events") is not True:
        failures.append("telemetry.identical_events is not true "
                        "(telemetry perturbed the event sequence)")
    overhead = tel.get("overhead", 0)
    if not isinstance(overhead, (int, float)) or overhead > 1.10:
        failures.append(
            f"telemetry.overhead {overhead} above the 1.10 budget")
    off = tel.get("off_events_per_sec", 0)
    flat = doc.get("flat_dispatch", {}).get("flat_events_per_sec", 0)
    if isinstance(off, (int, float)) and isinstance(flat, (int, float)) \
            and flat > 0 and off < 0.90 * flat:
        failures.append(
            f"telemetry.off_events_per_sec {off:.0f} more than 10% below the "
            f"same run's flat_dispatch.flat_events_per_sec {flat:.0f} "
            "(unarmed hooks are not free)")
    return failures


def check_campaign(doc):
    """Structural gates on the candidate's campaign section (PR 9): it must
    exist, the interrupted-and-resumed campaign's merged result must be
    byte-identical to the uninterrupted run's, the streaming spill path's
    live RSS must sit strictly below the keep-every-outcome baseline's, and
    RSS must be flat in campaign length (doubling the job count may not grow
    it).  All three comparisons are internal to one run of one binary —
    runner speed and absolute memory size cancel out.
    Returns a list of failure strings (empty = pass)."""
    camp = doc.get("campaign")
    if camp is None:
        return ["campaign section missing from candidate"]
    failures = []
    if camp.get("resume_identical") is not True:
        failures.append("campaign.resume_identical is not true (interrupted+"
                        "resumed merged results diverged from uninterrupted)")
    stream = camp.get("rss_stream_bytes", 0)
    keepall = camp.get("rss_keepall_bytes", 0)
    if not (isinstance(stream, (int, float)) and
            isinstance(keepall, (int, float)) and 0 < stream < keepall):
        failures.append(
            f"campaign streaming RSS {stream} not strictly below the "
            f"keep-all baseline's {keepall}")
    if camp.get("rss_flat") is not True:
        failures.append("campaign.rss_flat is not true "
                        "(RSS grew with campaign length)")
    return failures


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("committed")
    ap.add_argument("candidate")
    ap.add_argument("--tolerance", type=float, default=0.2,
                    help="allowed fractional slowdown vs committed (0.2 = 20%%)")
    args = ap.parse_args()

    with open(args.committed) as f:
        committed_doc = json.load(f)
    committed = rate_metrics(committed_doc)
    with open(args.candidate) as f:
        candidate_doc = json.load(f)
    candidate = rate_metrics(candidate_doc)

    structural_failures = check_flat_dispatch(candidate_doc)
    structural_failures += check_telemetry(candidate_doc)
    structural_failures += check_campaign(candidate_doc)
    k32_rate = next(
        (fig.get("events_per_sec", 0)
         for fig in committed_doc.get("figures", [])
         if fig.get("name") == K32_FIGURE), None)
    if k32_rate is None:
        structural_failures.append(
            f"committed baseline has no {K32_FIGURE} figure")
    elif k32_rate < K32_FLOOR_EVENTS_PER_SEC:
        structural_failures.append(
            f"committed {K32_FIGURE} at {k32_rate:.0f} events/s is below "
            f"the {K32_FLOOR_EVENTS_PER_SEC:.0f} floor")
    for msg in structural_failures:
        print(f"STRUCTURAL FAILURE: {msg}")

    shared = sorted(set(committed) & set(candidate))
    if not shared:
        print("error: no comparable metrics between the two files")
        return 2

    failures = []
    section = None
    for key in shared:
        base = committed[key]
        got = candidate[key]
        if base <= 0:
            continue
        # Section header whenever the prefix before the first '.' changes
        # (keys arrive sorted, so each section prints contiguously).
        if key.split(".", 1)[0] != section:
            section = key.split(".", 1)[0]
            print(f"\n[{section}]")
        ratio = got / base
        status = "ok"
        if ratio < 1.0 - args.tolerance:
            status = "REGRESSION"
            failures.append(key)
        metric = key.split(".", 1)[1]
        print(f"  {metric:46s} {base:14.0f} -> {got:14.0f}  "
              f"({ratio:6.2f}x) {status}")

    if failures or structural_failures:
        if failures:
            print(f"\nFAILED: {len(failures)} metric(s) regressed more than "
                  f"{args.tolerance:.0%}: {', '.join(failures)}")
        if structural_failures:
            print(f"FAILED: {len(structural_failures)} structural "
                  "gate(s), see above")
        return 1
    print(f"\nall {len(shared)} shared metrics within {args.tolerance:.0%} "
          "of committed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
