#!/usr/bin/env python3
"""Compare two BENCH_eventcore.json files and fail on events/sec regression.

Usage: check_bench.py COMMITTED.json CANDIDATE.json [--tolerance 0.2]

Compares the rate metrics that are stable across iteration counts (figure
events/sec, scheduler ops/sec, flow-churn flows/sec, route-setup routes/sec,
fabric-setup instantiations/sec): the candidate may not fall more than
`tolerance` below the committed value.  Being faster is never an error.
Metrics present in only one file are skipped, so the check keeps working
while benchmark sections are added (and while --quick runs omit the k=32
fabric-setup/figure entries).
"""
import argparse
import json
import sys


# Figures whose committed wall time is below this are skipped: a run of a
# few milliseconds measures scheduler jitter, not the simulator.
MIN_FIGURE_WALL_SEC = 0.03


def rate_metrics(doc):
    """Flatten the rate (per-second) metrics of one bench document."""
    out = {}
    sched = doc.get("scheduler_microbench", {})
    if "timer_churn" in sched:
        out["timer_churn.new_ops_per_sec"] = sched["timer_churn"].get(
            "new_ops_per_sec")
    if "tick_dispatch" in sched:
        out["tick_dispatch.new_events_per_sec"] = sched["tick_dispatch"].get(
            "new_events_per_sec")
    # route_setup's interned side finishes in ~1ms; the bench reports the
    # best of interleaved rounds, which damps the allocation jitter enough
    # for the 20% gate to watch it without crying wolf.
    rsetup = doc.get("route_setup", {})
    if "interned_routes_per_sec" in rsetup:
        out["route_setup.interned_routes_per_sec"] = rsetup[
            "interned_routes_per_sec"]
    # fabric_setup: per-instance instantiation rate, keyed by k so the quick
    # run (k=16 only) compares against the committed k=16 entry and the full
    # run also gates k=32.
    for fs in doc.get("fabric_setup", []):
        k = fs.get("k")
        if k is None:
            continue
        out[f"fabric_setup.k{k}.instantiates_per_sec"] = fs.get(
            "instantiates_per_sec")
    churn = doc.get("flow_churn", {})
    if "recycling" in churn:
        out["flow_churn.recycling_flows_per_sec"] = churn["recycling"].get(
            "flows_per_sec")
    for fig in doc.get("figures", []):
        if fig.get("wall_seconds", 0) < MIN_FIGURE_WALL_SEC:
            continue
        out[f"figures.{fig['name']}.events_per_sec"] = fig.get(
            "events_per_sec")
    return {k: v for k, v in out.items() if isinstance(v, (int, float))}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("committed")
    ap.add_argument("candidate")
    ap.add_argument("--tolerance", type=float, default=0.2,
                    help="allowed fractional slowdown vs committed (0.2 = 20%%)")
    args = ap.parse_args()

    with open(args.committed) as f:
        committed = rate_metrics(json.load(f))
    with open(args.candidate) as f:
        candidate = rate_metrics(json.load(f))

    shared = sorted(set(committed) & set(candidate))
    if not shared:
        print("error: no comparable metrics between the two files")
        return 2

    failures = []
    for key in shared:
        base = committed[key]
        got = candidate[key]
        if base <= 0:
            continue
        ratio = got / base
        status = "ok"
        if ratio < 1.0 - args.tolerance:
            status = "REGRESSION"
            failures.append(key)
        print(f"{key:48s} {base:14.0f} -> {got:14.0f}  ({ratio:6.2f}x) {status}")

    if failures:
        print(f"\nFAILED: {len(failures)} metric(s) regressed more than "
              f"{args.tolerance:.0%}: {', '.join(failures)}")
        return 1
    print(f"\nall {len(shared)} shared metrics within {args.tolerance:.0%} "
          "of committed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
