#include "ndp/path_selector.h"

#include <algorithm>

namespace ndpsim {

path_selector::path_selector(sim_env& env, std::size_t n_paths, path_mode mode,
                             path_penalty_config penalty)
    : env_(env), mode_(mode), penalty_(penalty), stats_(n_paths) {
  NDPSIM_ASSERT_MSG(n_paths > 0, "need at least one path");
  NDPSIM_ASSERT(n_paths <= UINT16_MAX);
  reshuffle();
}

std::uint16_t path_selector::next() {
  switch (mode_) {
    case path_mode::single:
      return 0;
    case path_mode::random_per_packet:
      return static_cast<std::uint16_t>(env_.rand_below(stats_.size()));
    case path_mode::permutation:
      break;
  }
  if (cursor_ >= order_.size()) reshuffle();
  return order_[cursor_++];
}

std::uint16_t path_selector::next_avoiding(std::uint16_t avoid) {
  if (stats_.size() == 1) return 0;
  std::uint16_t p = next();
  if (p == avoid) p = next();
  return p;
}

void path_selector::record_ack(std::uint16_t path) {
  NDPSIM_ASSERT(path < stats_.size());
  stats_[path].acks += 1;
}

void path_selector::record_nack(std::uint16_t path) {
  NDPSIM_ASSERT(path < stats_.size());
  stats_[path].nacks += 1;
}

void path_selector::record_loss(std::uint16_t path) {
  NDPSIM_ASSERT(path < stats_.size());
  stats_[path].losses += 1;
}

bool path_selector::is_excluded(std::uint16_t path) const {
  NDPSIM_ASSERT(path < stats_.size());
  return stats_[path].excluded_until > env_.now();
}

void path_selector::reshuffle() {
  if (penalty_.enabled) evaluate_penalties();
  order_.clear();
  for (std::uint16_t i = 0; i < stats_.size(); ++i) {
    if (!is_excluded(i)) order_.push_back(i);
  }
  if (order_.empty()) {
    // Everything penalized: fall back to the full set rather than stalling.
    order_.resize(stats_.size());
    std::iota(order_.begin(), order_.end(), std::uint16_t{0});
  }
  std::shuffle(order_.begin(), order_.end(), env_.rng);
  cursor_ = 0;
}

void path_selector::evaluate_penalties() {
  double total_acks = 0;
  double total_nacks = 0;
  double total_losses = 0;
  for (const auto& s : stats_) {
    total_acks += s.acks;
    total_nacks += s.nacks;
    total_losses += s.losses;
  }
  for (auto& s : stats_) {
    // Compare each path against the rest of the set (leave-one-out), so a
    // single bad path cannot hide by inflating the global average.
    const double other_samples = (total_acks - s.acks) + (total_nacks - s.nacks);
    const double other_frac =
        other_samples > 0 ? (total_nacks - s.nacks) / other_samples : 0.0;
    bool exclude = false;
    const double samples = s.acks + s.nacks;
    if (samples >= penalty_.min_samples) {
      const double frac = s.nacks / samples;
      if (frac > other_frac * penalty_.nack_factor + penalty_.nack_offset) {
        exclude = true;
      }
    }
    const double other_losses =
        (total_losses - s.losses) / std::max(1.0, double(stats_.size() - 1));
    if (s.losses > other_losses * penalty_.loss_factor + penalty_.loss_offset) {
      exclude = true;
    }
    if (exclude) {
      s.excluded_until = env_.now() + penalty_.penalty_time;
      // The evidence has been acted on: judge the path afresh when it
      // re-enters after penalty_time, instead of letting the stale NACK/loss
      // history (only slowly decaying while the path carries no traffic)
      // immediately re-trigger the exclusion — that livelock would retire a
      // recovered path forever.
      s.acks = 0;
      s.nacks = 0;
      s.losses = 0;
    }
    s.acks *= penalty_.decay;
    s.nacks *= penalty_.decay;
    s.losses *= penalty_.decay;
  }
}

}  // namespace ndpsim
