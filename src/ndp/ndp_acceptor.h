// Zero-RTT listen semantics (paper §3.2.2).
//
// NDP has no handshake: data arrives in the first RTT and, because of
// per-packet multipath, the first packet to arrive is often not the first
// packet sent.  Every first-RTT packet therefore carries SYN plus its
// sequence offset, and the listener must be able to establish connection
// state from whichever of them arrives first.  At-most-once semantics come
// from time-wait state kept at the receiver: a connection id that recently
// completed is rejected for the maximum segment lifetime (< 1ms in a
// datacenter).
//
// The acceptor interposes between the network and per-connection sinks: it
// creates the sink on the first SYN-flagged packet of an unknown connection
// and then forwards everything for that connection to it.
#pragma once

#include <functional>
#include <unordered_map>

#include "net/packet.h"
#include "net/route.h"
#include "net/sim_env.h"

namespace ndpsim {

class ndp_acceptor final : public packet_sink {
 public:
  /// Creates (or returns) the sink for a new connection id. The factory owns
  /// the sink's lifetime.
  using sink_factory = std::function<packet_sink*(std::uint32_t flow_id)>;

  ndp_acceptor(sim_env& env, sink_factory factory,
               simtime_t max_segment_lifetime = from_ms(1.0))
      : env_(env), factory_(std::move(factory)), msl_(max_segment_lifetime) {}

  void receive(packet& p) override {
    auto live = live_.find(p.flow_id);
    if (live == live_.end()) {
      if (in_time_wait(p.flow_id)) {
        // Duplicate of a finished connection: reject (at-most-once).
        ++duplicates_rejected_;
        env_.pool.release(&p);
        return;
      }
      if (!p.has_flag(pkt_flag::syn)) {
        // Not a first-RTT packet and no state: stale packet, drop.
        ++stale_dropped_;
        env_.pool.release(&p);
        return;
      }
      packet_sink* sink = factory_(p.flow_id);
      NDPSIM_ASSERT(sink != nullptr);
      live = live_.emplace(p.flow_id, sink).first;
      ++established_;
    }
    live->second->receive(p);
  }

  /// Move a finished connection into time-wait.
  void close(std::uint32_t flow_id) {
    live_.erase(flow_id);
    time_wait_[flow_id] = env_.now() + msl_;
  }

  [[nodiscard]] std::uint64_t established() const { return established_; }
  [[nodiscard]] std::uint64_t duplicates_rejected() const {
    return duplicates_rejected_;
  }
  [[nodiscard]] std::uint64_t stale_dropped() const { return stale_dropped_; }
  [[nodiscard]] bool is_live(std::uint32_t flow_id) const {
    return live_.count(flow_id) != 0;
  }

 private:
  [[nodiscard]] bool in_time_wait(std::uint32_t flow_id) {
    auto it = time_wait_.find(flow_id);
    if (it == time_wait_.end()) return false;
    if (it->second <= env_.now()) {
      time_wait_.erase(it);  // expired
      return false;
    }
    return true;
  }

  sim_env& env_;
  sink_factory factory_;
  simtime_t msl_;
  std::unordered_map<std::uint32_t, packet_sink*> live_;
  std::unordered_map<std::uint32_t, simtime_t> time_wait_;
  std::uint64_t established_ = 0;
  std::uint64_t duplicates_rejected_ = 0;
  std::uint64_t stale_dropped_ = 0;
};

}  // namespace ndpsim
