// NDP/TCP coexistence switch port (paper §3, "Limitations of NDP").
//
// The paper's deployment answer for mixed datacenters: "serve NDP and TCP
// from different queues, fair-queuing between them. The TCP queue will be
// larger (100s of packets) while NDP's will be small (8 packets), coupled
// with a similarly sized header queue."
//
// This port composes a full `ndp_queue` (trimming, WRR, return-to-sender)
// with a TCP-side queue (drop-tail, or ECN-threshold for DCTCP traffic) and
// schedules between the two classes with byte-deficit round robin, so
// neither transport can starve the other on a shared link.
#pragma once

#include <memory>

#include "net/fifo_queues.h"
#include "ndp/ndp_queue.h"

namespace ndpsim {

struct coexist_config {
  ndp_queue_config ndp = {};            ///< small trimming queue
  std::uint64_t tcp_capacity_bytes = 200ull * 9000;
  std::uint64_t tcp_ecn_threshold_bytes = 0;  ///< 0 = plain drop-tail
  std::uint32_t quantum_bytes = 9000;   ///< DRR quantum per class
};

class coexist_queue final : public queue_base {
 public:
  coexist_queue(sim_env& env, linkspeed_bps rate, coexist_config cfg,
                std::string name = "coexist");

  [[nodiscard]] std::uint64_t buffered_bytes() const override {
    return ndp_side_->buffered_bytes() + tcp_side_->buffered_bytes();
  }
  [[nodiscard]] std::size_t buffered_packets() const override {
    return ndp_side_->buffered_packets() + tcp_side_->buffered_packets();
  }

  [[nodiscard]] const queue_stats& ndp_stats() const {
    return ndp_side_->stats();
  }
  [[nodiscard]] const queue_stats& tcp_stats() const {
    return tcp_side_->stats();
  }
  /// Bytes each class has put on the wire (fairness accounting).
  [[nodiscard]] std::uint64_t ndp_bytes_sent() const { return ndp_sent_; }
  [[nodiscard]] std::uint64_t tcp_bytes_sent() const { return tcp_sent_; }

  /// True if the packet is served from the TCP-side queue.
  [[nodiscard]] static bool is_tcp_class(const packet& p) {
    return p.type == packet_type::tcp_data || p.type == packet_type::tcp_ack;
  }

  /// The composite and both children share one telemetry slot: the port's
  /// enq/deq are counted by the composite's receive/service path (the
  /// children never get the wire), while drops, trims and ECN marks happen
  /// inside the children's admission hooks — all land in the same counters,
  /// so the port satisfies the queue conservation law as a whole.
  void set_telemetry(telemetry_slot t) override {
    queue_base::set_telemetry(t);
    ndp_side_->set_telemetry(t);
    tcp_side_->set_telemetry(t);
  }

 protected:
  void enqueue_arrival(packet& p) override;
  [[nodiscard]] packet* dequeue_next() override;

 private:
  coexist_config cfg_;
  std::unique_ptr<ndp_queue> ndp_side_;
  std::unique_ptr<queue_base> tcp_side_;  // drop_tail or ecn_threshold
  std::int64_t ndp_deficit_ = 0;
  std::int64_t tcp_deficit_ = 0;
  bool serve_ndp_next_ = true;
  std::uint64_t ndp_sent_ = 0;
  std::uint64_t tcp_sent_ = 0;
};

}  // namespace ndpsim
