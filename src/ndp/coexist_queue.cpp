#include "ndp/coexist_queue.h"

namespace ndpsim {

coexist_queue::coexist_queue(sim_env& env, linkspeed_bps rate,
                             coexist_config cfg, std::string name)
    : queue_base(env, rate, name), cfg_(cfg) {
  ndp_side_ = std::make_unique<ndp_queue>(env, rate, cfg_.ndp, name + ".ndp");
  if (cfg_.tcp_ecn_threshold_bytes > 0) {
    tcp_side_ = std::make_unique<ecn_threshold_queue>(
        env, rate, cfg_.tcp_capacity_bytes, cfg_.tcp_ecn_threshold_bytes,
        name + ".tcp");
  } else {
    tcp_side_ = std::make_unique<drop_tail_queue>(
        env, rate, cfg_.tcp_capacity_bytes, name + ".tcp");
  }
}

void coexist_queue::enqueue_arrival(packet& p) {
  // The children never get the wire themselves: we drive their admission and
  // scheduling hooks directly and do the serialization here.
  // Access via the base class: coexist_queue is a friend of queue_base and
  // the hooks dispatch virtually to the concrete child.
  if (is_tcp_class(p)) {
    static_cast<queue_base&>(*tcp_side_).enqueue_arrival(p);
  } else {
    static_cast<queue_base&>(*ndp_side_).enqueue_arrival(p);
  }
}

packet* coexist_queue::dequeue_next() {
  const bool ndp_has = ndp_side_->buffered_packets() > 0;
  const bool tcp_has = tcp_side_->buffered_packets() > 0;
  if (!ndp_has && !tcp_has) return nullptr;

  // Byte-deficit round robin between the two classes; a class with nothing
  // queued cedes its turn (and doesn't accumulate deficit).
  for (int attempts = 0; attempts < 2; ++attempts) {
    if (serve_ndp_next_) {
      if (ndp_has) {
        if (ndp_deficit_ <= 0) ndp_deficit_ += cfg_.quantum_bytes;
        packet* p = static_cast<queue_base&>(*ndp_side_).dequeue_next();
        NDPSIM_ASSERT(p != nullptr);
        ndp_deficit_ -= p->size_bytes;
        ndp_sent_ += p->size_bytes;
        if (ndp_deficit_ <= 0) serve_ndp_next_ = false;
        return p;
      }
      serve_ndp_next_ = false;
      tcp_deficit_ = 0;
    } else {
      if (tcp_has) {
        if (tcp_deficit_ <= 0) tcp_deficit_ += cfg_.quantum_bytes;
        packet* p = static_cast<queue_base&>(*tcp_side_).dequeue_next();
        NDPSIM_ASSERT(p != nullptr);
        tcp_deficit_ -= p->size_bytes;
        tcp_sent_ += p->size_bytes;
        if (tcp_deficit_ <= 0) serve_ndp_next_ = true;
        return p;
      }
      serve_ndp_next_ = true;
      ndp_deficit_ = 0;
    }
  }
  return nullptr;
}

}  // namespace ndpsim
