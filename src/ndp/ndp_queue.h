// The NDP switch output port (paper §3.1).
//
// Two queues per port: a small low-priority queue for data packets and a
// high-priority queue for trimmed headers, ACKs, NACKs and PULLs.  Three
// changes relative to Cut Payload (CP):
//   1. headers/control are *priority* queued (earliest possible feedback);
//   2. weighted round robin between header and data queues (default 10
//      headers per data packet) prevents congestion collapse where headers
//      starve data;
//   3. on data overflow the switch trims either the arriving packet or the
//      packet at the tail of the data queue with 50% probability each,
//      breaking up phase effects.
// If the header queue itself overflows, the switch can return the header to
// its sender (return-to-sender) by reversing the packet onto the reverse
// route from this switch; otherwise the header is dropped.
#pragma once

#include "net/queue.h"
#include "net/ring_fifo.h"

namespace ndpsim {

struct ndp_queue_config {
  std::uint64_t data_capacity_bytes = 8 * 9000;    ///< paper: 8 full packets
  std::uint64_t header_capacity_bytes = 8 * 9000;  ///< same memory as data q
  unsigned wrr_headers_per_data = 10;  ///< WRR ratio under contention
  bool enable_rts = true;             ///< return-to-sender on header overflow
  bool enable_trimming = true;        ///< if false: drop-tail on data (ablation)
  bool random_trim_position = true;   ///< coin-flip arriving/tail (ablation)
};

class ndp_queue final : public queue_base {
 public:
  ndp_queue(sim_env& env, linkspeed_bps rate, ndp_queue_config cfg,
            name_ref name = "ndpq")
      : queue_base(env, rate, std::move(name), dequeue_kind::ndp_wrr),
        cfg_(cfg) {}

  [[nodiscard]] std::uint64_t buffered_bytes() const override {
    return data_bytes_ + hdr_bytes_;
  }
  [[nodiscard]] std::size_t buffered_packets() const override {
    return data_.size() + hdr_.size();
  }
  [[nodiscard]] std::uint64_t data_bytes() const { return data_bytes_; }
  [[nodiscard]] std::uint64_t header_bytes() const { return hdr_bytes_; }
  [[nodiscard]] const ndp_queue_config& config() const { return cfg_; }

  /// Trim a data packet to a header in place (shared with the P4 pipeline
  /// emulation, which must behave identically).
  static void trim_packet(packet& p) {
    p.set_flag(pkt_flag::trimmed);
    p.size_bytes = kHeaderBytes;
    p.payload_bytes = 0;
    p.priority = 1;
  }

  // dequeue_kind::ndp_wrr hooks (see queue_base::dequeue_next_dispatch).
  // Which ring WRR serves next depends on the credit counter, so the
  // prefetch hooks cover the front of both; one of the two is the hit.
  [[nodiscard]] packet* dequeue_direct() { return ndp_queue::dequeue_next(); }
  void prefetch_front_slots() const {
    hdr_.prefetch_front_slot();
    data_.prefetch_front_slot();
  }
  void prefetch_front_packets() const {
    if (!hdr_.empty()) __builtin_prefetch(hdr_.front());
    if (!data_.empty()) __builtin_prefetch(data_.front());
  }

 protected:
  void enqueue_arrival(packet& p) override;
  [[nodiscard]] packet* dequeue_next() override;

 private:
  void admit_header(packet& p);
  void admit_data(packet& p);
  /// Send a header back towards its source (return-to-sender). Falls back to
  /// dropping when the packet cannot be reversed.
  void bounce_or_drop(packet& p);

  ndp_queue_config cfg_;
  ring_fifo<packet*> data_;
  ring_fifo<packet*> hdr_;
  std::uint64_t data_bytes_ = 0;
  std::uint64_t hdr_bytes_ = 0;
  unsigned hdrs_since_data_ = 0;
};

}  // namespace ndpsim
