#include "ndp/ndp_acceptor.h"
