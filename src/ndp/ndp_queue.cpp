#include "ndp/ndp_queue.h"

#include <utility>

#include "net/route.h"

namespace ndpsim {

void ndp_queue::enqueue_arrival(packet& p) {
  if (p.is_header_class()) {
    admit_header(p);
    return;
  }
  if (data_bytes_ + p.size_bytes <= cfg_.data_capacity_bytes) {
    admit_data(p);
    return;
  }
  if (!cfg_.enable_trimming) {
    drop(p);
    return;
  }
  // Data queue full: trim either the arriving packet or the tail of the data
  // queue (50/50), so that synchronized senders do not get deterministically
  // favoured (phase effects, paper §3.1 / Fig 2).
  packet* victim = &p;
  const bool trim_tail =
      cfg_.random_trim_position && !data_.empty() && env_.rand_coin();
  if (trim_tail) {
    victim = data_.back();
    data_.pop_back();
    data_bytes_ -= victim->size_bytes;
    admit_data(p);
  }
  const std::uint64_t removed = victim->size_bytes - kHeaderBytes;
  trim_packet(*victim);
  count_trim(removed);
  admit_header(*victim);
}

void ndp_queue::admit_header(packet& p) {
  if (hdr_bytes_ + p.size_bytes > cfg_.header_capacity_bytes) {
    bounce_or_drop(p);
    return;
  }
  hdr_bytes_ += p.size_bytes;
  p.enqueue_time = env_.now();
  hdr_.push_back(&p);
}

void ndp_queue::admit_data(packet& p) {
  data_bytes_ += p.size_bytes;
  p.enqueue_time = env_.now();
  data_.push_back(&p);
}

void ndp_queue::bounce_or_drop(packet& p) {
  // Only data headers carry a reverse route and are worth returning; control
  // packets that find a full header queue are dropped (rare, covered by RTO).
  const bool can_bounce = cfg_.enable_rts && p.has_flag(pkt_flag::trimmed) &&
                          !p.has_flag(pkt_flag::bounced) &&
                          p.reverse_rt != nullptr;
  if (!can_bounce) {
    drop(p);
    return;
  }
  // This queue sits at element index (next_hop - 1), an even position 2t.
  // The reverse route's egress queue at this same switch is queue index
  // (nq - t), i.e. element 2*(nq - t); see route.h layout.
  const std::size_t t = p.next_hop / 2;
  const route& rev = *p.reverse_rt;
  const std::size_t rev_queue_index = rev.queue_hops() >= t
                                          ? rev.queue_hops() - t
                                          : rev.queue_hops();
  const std::size_t rev_element = 2 * rev_queue_index;
  NDPSIM_ASSERT_MSG(rev_element < rev.size(), "bounce fell off reverse route");
  p.rt = &rev;
  p.reverse_rt = nullptr;  // never bounce twice
  p.next_hop = static_cast<std::uint32_t>(rev_element);
  std::swap(p.src, p.dst);
  p.set_flag(pkt_flag::bounced);
  count_bounce(p);
  send_to_next_hop(p);
}

packet* ndp_queue::dequeue_next() {
  const bool have_hdr = !hdr_.empty();
  const bool have_data = !data_.empty();
  if (!have_hdr && !have_data) return nullptr;

  bool serve_header;
  if (!have_data) {
    serve_header = true;
  } else if (!have_hdr) {
    serve_header = false;
  } else if (hdrs_since_data_ < cfg_.wrr_headers_per_data) {
    serve_header = true;
  } else {
    serve_header = false;
  }

  packet* p = nullptr;
  if (serve_header) {
    p = hdr_.front();
    hdr_.pop_front();
    hdr_bytes_ -= p->size_bytes;
    if (have_data) ++hdrs_since_data_;  // only charge credit under contention
  } else {
    p = data_.front();
    data_.pop_front();
    data_bytes_ -= p->size_bytes;
    hdrs_since_data_ = 0;
  }
  return p;
}

}  // namespace ndpsim
