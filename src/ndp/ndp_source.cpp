#include "ndp/ndp_source.h"

#include <algorithm>

#include "ndp/ndp_sink.h"

namespace ndpsim {

ndp_source::ndp_source(sim_env& env, ndp_source_config cfg,
                       std::uint32_t flow_id, std::string name)
    : event_source(env.events, std::move(name), dispatch_class::transport_timer),
      env_(env),
      cfg_(cfg),
      flow_id_(flow_id),
      payload_per_packet_(cfg.mss_bytes - kHeaderBytes) {
  NDPSIM_ASSERT(cfg_.mss_bytes > kHeaderBytes);
  NDPSIM_ASSERT(cfg_.iw_packets >= 1);
}

ndp_source::~ndp_source() { disconnect(); }

void ndp_source::disconnect() {
  events().cancel(rto_timer_);  // start event or RTO backstop, whichever is armed
  rto_clear();
  if (sink_ != nullptr) {
    net_paths_.unbind(flow_id_);
    sink_ = nullptr;
  }
  net_paths_ = path_set{};
}

void ndp_source::connect(ndp_sink& sink, path_set paths,
                         std::uint32_t src_host, std::uint32_t dst_host,
                         std::uint64_t flow_bytes, simtime_t start,
                         packet_sink* rx_endpoint) {
  NDPSIM_ASSERT_MSG(!paths.empty(), "need at least one path");
  sink_ = &sink;
  net_paths_ = paths;
  src_host_ = src_host;
  dst_host_ = dst_host;
  flow_bytes_ = flow_bytes;
  total_packets_ =
      flow_bytes == 0
          ? kUnbounded
          : (flow_bytes + payload_per_packet_ - 1) / payload_per_packet_;

  packet_sink* rx = rx_endpoint != nullptr ? rx_endpoint
                                           : static_cast<packet_sink*>(sink_);
  net_paths_.bind_dst(flow_id_, rx);
  net_paths_.bind_src(flow_id_, this);
  sink_->bind(net_paths_, dst_host, src_host);

  paths_ = std::make_unique<path_selector>(env_, net_paths_.size(), cfg_.mode,
                                           cfg_.penalty);
  start_time_ = start;
  // The start event shares the RTO backstop's handle: it is the only pending
  // event until the first send arms a real deadline, and keeping it in the
  // handle lets disconnect() cancel a not-yet-started flow cleanly.
  rto_timer_ = events().schedule_at(*this, start);
}

void ndp_source::do_next_event() {
  if (!started_) {
    started_ = true;
    start_flow();
    return;
  }
  // Only the RTO backstop timer remains, and it fires exactly at the
  // earliest live deadline — no state-checking wake-ups.
  process_rto_heap();
}

void ndp_source::start_flow() {
  // Zero-RTT: push the whole initial window at once; the host NIC queue
  // serializes it at line rate. Every packet carries SYN (§3.2.2).
  const std::uint64_t n =
      std::min<std::uint64_t>(cfg_.iw_packets, total_packets_);
  for (std::uint64_t seq = 1; seq <= n; ++seq) {
    send_data(seq, /*is_rtx=*/false);
  }
  next_new_seq_ = n + 1;
}

std::uint32_t ndp_source::payload_for(std::uint64_t seqno) const {
  if (total_packets_ == kUnbounded || seqno < total_packets_) {
    return payload_per_packet_;
  }
  NDPSIM_ASSERT(seqno == total_packets_);
  const std::uint64_t sent_before = (seqno - 1) * payload_per_packet_;
  return static_cast<std::uint32_t>(flow_bytes_ - sent_before);
}

void ndp_source::send_data(std::uint64_t seqno, bool is_rtx) {
  std::uint16_t path;
  auto it = outstanding_.find(seqno);
  if (is_rtx && it != outstanding_.end()) {
    // The paper always retransmits on a different path.
    path = paths_->next_avoiding(it->second.last_path);
  } else {
    path = paths_->next();
  }

  packet* p = env_.pool.alloc();
  p->type = packet_type::ndp_data;
  p->flow_id = flow_id_;
  p->src = src_host_;
  p->dst = dst_host_;
  p->seqno = seqno;
  p->payload_bytes = payload_for(seqno);
  p->size_bytes = p->payload_bytes + kHeaderBytes;
  p->path_id = path;
  if (first_window_phase_) p->set_flag(pkt_flag::syn);
  if (seqno == total_packets_) p->set_flag(pkt_flag::last);
  if (is_rtx) p->set_flag(pkt_flag::rtx);
  p->rt = net_paths_.forward(path);
  p->reverse_rt = net_paths_.reverse(path);
  p->next_hop = 0;

  sent_info& info = outstanding_[seqno];
  if (info.first_sent == 0) info.first_sent = env_.now();
  info.last_tx = env_.now();
  info.last_path = path;
  info.state = tx_state::inflight;
  p->first_sent = info.first_sent;

  arm_rto(seqno, info, env_.now() + cfg_.rto);

  ++stats_.packets_sent;
  if (is_rtx) ++stats_.rtx_sent;
  send_to_next_hop(*p);
}

void ndp_source::receive(packet& p) {
  NDPSIM_ASSERT(p.flow_id == flow_id_);
  switch (p.type) {
    case packet_type::ndp_ack:
      handle_ack(p);
      env_.pool.release(&p);
      break;
    case packet_type::ndp_nack:
      handle_nack(p);
      env_.pool.release(&p);
      break;
    case packet_type::ndp_pull:
      handle_pull(p);
      env_.pool.release(&p);
      break;
    case packet_type::ndp_data:
      NDPSIM_ASSERT_MSG(p.has_flag(pkt_flag::bounced),
                        "source received non-bounced data");
      handle_bounce(p);
      env_.pool.release(&p);
      break;
    default:
      NDPSIM_ASSERT_MSG(false, "unexpected packet type at ndp_source");
  }
}

void ndp_source::handle_ack(const packet& p) {
  ++stats_.acks_received;
  first_window_phase_ = false;
  paths_->record_ack(p.path_id);

  const std::uint64_t seq = p.seqno;
  auto it = outstanding_.find(seq);
  if (it != outstanding_.end()) {
    if (on_latency_) on_latency_(env_.now() - it->second.first_sent);
    rto_erase(it->second);  // before erase: the heap entry points at the node
    outstanding_.erase(it);
  }
  rtx_pending_.erase(seq);

  if (seq > cum_acked_ && ooo_acked_.find(seq) == ooo_acked_.end()) {
    if (seq == cum_acked_ + 1) {
      ++cum_acked_;
      auto o = ooo_acked_.begin();
      while (o != ooo_acked_.end() && *o == cum_acked_ + 1) {
        ++cum_acked_;
        o = ooo_acked_.erase(o);
      }
    } else {
      ooo_acked_.insert(seq);
    }
  }
  check_complete();
}

void ndp_source::handle_nack(const packet& p) {
  ++stats_.nacks_received;
  first_window_phase_ = false;
  paths_->record_nack(p.path_id);
  queue_rtx(p.seqno, tx_state::nacked);
}

void ndp_source::queue_rtx(std::uint64_t seqno, tx_state why) {
  auto it = outstanding_.find(seqno);
  if (it == outstanding_.end()) return;  // already ACKed
  it->second.state = why;
  rtx_pending_.insert(seqno);
  // The packet is accounted for (receiver will PULL it); extend the RTO
  // backstop in case the PULL itself is lost.
  arm_rto(seqno, it->second, env_.now() + 4 * cfg_.rto);
}

void ndp_source::handle_pull(const packet& p) {
  ++stats_.pulls_received;
  last_pull_seen_ = env_.now();
  first_window_phase_ = false;
  // PULL counters tolerate reordering: a delayed pull arriving after a newer
  // one pulls nothing extra (§3.2.1).
  if (p.pullno <= highest_pull_) return;
  std::uint64_t to_send = p.pullno - highest_pull_;
  highest_pull_ = p.pullno;
  while (to_send-- > 0) send_next_from_pull();
}

void ndp_source::send_next_from_pull() {
  // Retransmissions first, then new data (§3.2).
  if (!rtx_pending_.empty()) {
    const std::uint64_t seq = *rtx_pending_.begin();
    rtx_pending_.erase(rtx_pending_.begin());
    auto it = outstanding_.find(seq);
    if (it != outstanding_.end()) {
      if (it->second.state == tx_state::nacked) ++stats_.rtx_after_nack;
      if (it->second.state == tx_state::bounced) ++stats_.rtx_after_bounce;
      send_data(seq, /*is_rtx=*/true);
    }
    return;
  }
  if (total_packets_ == kUnbounded || next_new_seq_ <= total_packets_) {
    send_data(next_new_seq_++, /*is_rtx=*/false);
  }
  // Otherwise: nothing left to send; the pull is simply unused.
}

void ndp_source::handle_bounce(packet& p) {
  ++stats_.bounces_received;
  const std::uint64_t seq = p.seqno;
  paths_->record_loss(p.path_id);
  auto it = outstanding_.find(seq);
  if (it == outstanding_.end()) return;  // raced with an ACK of an rtx copy

  // §3.2.4: resend immediately only if (a) we are not expecting more PULLs
  // (every ACKed/NACKed packet has been matched by a PULL already), or
  // (b) ACKs dominate NACKs, indicating an asymmetric network where trying a
  // different path at once is the right call.  Otherwise wait for a PULL,
  // avoiding an echo of the original incast.
  const std::int64_t pulls_owed =
      static_cast<std::int64_t>(stats_.acks_received + stats_.nacks_received) -
      static_cast<std::int64_t>(stats_.pulls_received);
  const bool acks_dominate =
      stats_.acks_received >
      cfg_.ack_dominance * static_cast<double>(std::max<std::uint64_t>(
                               stats_.nacks_received, 1));
  if (pulls_owed <= 0 || acks_dominate) {
    ++stats_.rtx_after_bounce;
    send_data(seq, /*is_rtx=*/true);
  } else {
    it->second.state = tx_state::bounced;
    rtx_pending_.insert(seq);
    arm_rto(seq, it->second, env_.now() + 4 * cfg_.rto);
  }
}

// --- indexed RTO min-heap -------------------------------------------------
//
// One live entry per outstanding packet, located in O(1) through
// `sent_info::rto_pos`.  Re-arming is an in-place key change and an ACK is
// an eager erase, so — unlike the old push-and-invalidate priority_queue —
// a timer fire never pops dead entries, and `process_rto_heap` reaches each
// packet's `sent_info` through the stored node pointer instead of a hash
// lookup.  The backstop-timer policy is unchanged (arm moves it earlier
// only; fires re-arm it to the live top), which keeps the timer's event
// sequence identical to the old scheme.

bool ndp_source::rto_before(const rto_item& a, const rto_item& b) {
  return a.deadline < b.deadline ||
         (a.deadline == b.deadline && a.seqno < b.seqno);
}

void ndp_source::rto_sift_up(std::uint32_t i) {
  rto_item item = rto_heap_[i];
  while (i > 0) {
    const std::uint32_t parent = (i - 1) / 2;
    if (!rto_before(item, rto_heap_[parent])) break;
    rto_heap_[i] = rto_heap_[parent];
    rto_heap_[i].info->rto_pos = i;
    i = parent;
  }
  rto_heap_[i] = item;
  item.info->rto_pos = i;
}

void ndp_source::rto_sift_down(std::uint32_t i) {
  const auto n = static_cast<std::uint32_t>(rto_heap_.size());
  rto_item item = rto_heap_[i];
  while (true) {
    std::uint32_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && rto_before(rto_heap_[child + 1], rto_heap_[child])) {
      ++child;
    }
    if (!rto_before(rto_heap_[child], item)) break;
    rto_heap_[i] = rto_heap_[child];
    rto_heap_[i].info->rto_pos = i;
    i = child;
  }
  rto_heap_[i] = item;
  item.info->rto_pos = i;
}

void ndp_source::rto_fix(std::uint32_t i) {
  if (i > 0 && rto_before(rto_heap_[i], rto_heap_[(i - 1) / 2])) {
    rto_sift_up(i);
  } else {
    rto_sift_down(i);
  }
}

void ndp_source::rto_set_deadline(std::uint64_t seqno, sent_info& info,
                                  simtime_t deadline) {
  if (info.rto_pos == kNoRtoPos) {
    rto_heap_.push_back(rto_item{deadline, seqno, &info});
    info.rto_pos = static_cast<std::uint32_t>(rto_heap_.size() - 1);
    rto_sift_up(info.rto_pos);
  } else {
    NDPSIM_ASSERT(rto_heap_[info.rto_pos].info == &info);
    rto_heap_[info.rto_pos].deadline = deadline;
    rto_fix(info.rto_pos);
  }
}

void ndp_source::rto_erase(sent_info& info) {
  const std::uint32_t pos = info.rto_pos;
  if (pos == kNoRtoPos) return;
  info.rto_pos = kNoRtoPos;
  const auto last = static_cast<std::uint32_t>(rto_heap_.size() - 1);
  if (pos != last) {
    rto_heap_[pos] = rto_heap_[last];
    rto_heap_[pos].info->rto_pos = pos;
    rto_heap_.pop_back();
    rto_fix(pos);
  } else {
    rto_heap_.pop_back();
  }
}

void ndp_source::rto_clear() {
  for (const rto_item& item : rto_heap_) item.info->rto_pos = kNoRtoPos;
  rto_heap_.clear();
}

void ndp_source::arm_rto(std::uint64_t seqno, sent_info& info,
                         simtime_t deadline) {
  rto_set_deadline(seqno, info, deadline);
  // One backstop timer covers every outstanding packet: keep it armed for
  // the earliest deadline (O(log n) decrease-key, no extra event entries).
  if (!events().is_pending(rto_timer_) ||
      deadline < events().expiry(rto_timer_)) {
    events().reschedule(rto_timer_, *this, deadline);
  }
}

void ndp_source::process_rto_heap() {
  while (!rto_heap_.empty() && rto_heap_.front().deadline <= env_.now()) {
    const rto_item e = rto_heap_.front();
    e.info->rto_pos = kNoRtoPos;
    rto_heap_.front() = rto_heap_.back();
    rto_heap_.pop_back();
    if (!rto_heap_.empty()) {
      rto_heap_.front().info->rto_pos = 0;
      rto_sift_down(0);
    }
    sent_info& info = *e.info;
    if (info.state != tx_state::inflight && last_pull_seen_ >= 0 &&
        env_.now() - last_pull_seen_ <= cfg_.rto) {
      // NACKed/bounced packet queued for retransmission, and the receiver's
      // pull clock is visibly running: our turn is coming (large incasts can
      // queue pulls for many milliseconds). Only a silent pull clock means
      // the PULL itself was lost.  Heap-only re-arm: the old scheme left the
      // backstop untouched here too (the post-loop re-arm covers it).
      rto_set_deadline(e.seqno, info, env_.now() + cfg_.rto);
      continue;
    }
    // Genuine timeout: the packet (or its NACK/PULL) vanished — corruption or
    // failure. Retransmit directly on a different path (§3.2.3).
    paths_->record_loss(info.last_path);
    rtx_pending_.erase(e.seqno);
    ++stats_.rtx_after_timeout;
    send_data(e.seqno, /*is_rtx=*/true);
  }
  if (rto_heap_.empty()) {
    events().cancel(rto_timer_);
  } else {
    events().reschedule(rto_timer_, *this, rto_heap_.front().deadline);
  }
}

void ndp_source::check_complete() {
  if (complete() && completion_time_ < 0) {
    completion_time_ = env_.now();
    // Every packet is ACKed: the RTO backstop has nothing left to guard.
    events().cancel(rto_timer_);
    rto_clear();
    if (on_complete_) on_complete_();
  }
}

}  // namespace ndpsim
