// The per-host NDP pull pacer (paper §3.2).
//
// Each receiving host has exactly one pull queue shared by all connections it
// terminates.  One PULL is owed per arriving data packet or header.  PULLs
// are released paced so the data they elicit arrives at the host's link rate,
// serviced fairly (deficit round robin, quantum one pull) across connections
// within a priority class, and strictly by priority class across classes —
// which is how a receiver prioritizes straggler traffic (Fig 10).
#pragma once

#include <array>
#include <functional>

#include "net/ring_fifo.h"
#include "net/sim_env.h"
#include "sim/eventlist.h"

namespace ndpsim {

class ndp_sink;

inline constexpr std::size_t kPullClasses = 4;  ///< 0 = lowest priority

class pull_pacer final : public event_source {
 public:
  pull_pacer(sim_env& env, linkspeed_bps link_rate,
             std::string name = "pullpacer");

  /// One more pull owed to `sink`'s sender.
  void enqueue(ndp_sink& sink);

  /// Remove all pulls owed on behalf of `sink` (its transfer completed).
  /// The ring entry itself is dropped lazily, so the sink must stay alive
  /// until the pacer next rotates past it — use `remove` for teardown.
  void purge(ndp_sink& sink);

  /// Eagerly purge AND drop the ring entry: after this the pacer holds no
  /// pointer to `sink`, making it safe to destroy (flow recycling).
  void remove(ndp_sink& sink);

  /// Optional jitter on the pacing interval, used to replay the measured
  /// imperfect pull spacing of the Linux implementation (Figs 12/13).
  /// Receives the nominal interval, returns the interval to use.
  void set_interval_jitter(std::function<simtime_t(simtime_t)> jitter) {
    jitter_ = std::move(jitter);
  }

  void do_next_event() override;

  [[nodiscard]] std::uint64_t pulls_sent() const { return pulls_sent_; }
  [[nodiscard]] std::size_t backlog() const { return backlog_; }
  [[nodiscard]] linkspeed_bps link_rate() const { return rate_; }

 private:
  void send_one();
  [[nodiscard]] bool any_pending() const;
  void schedule_if_needed();

  sim_env& env_;
  linkspeed_bps rate_;
  std::array<ring_fifo<ndp_sink*>, kPullClasses> rings_;
  std::function<simtime_t(simtime_t)> jitter_;
  simtime_t next_send_ = 0;
  simtime_t ideal_next_ = 0;  ///< unjittered schedule (rate conservation)
  timer_handle timer_;        ///< the one armed release timer
  std::uint64_t pulls_sent_ = 0;
  std::size_t backlog_ = 0;
};

}  // namespace ndpsim
