// Match-action emulation of the paper's P4 NDP switch (Fig 7).
//
// The P4 proof of concept expresses NDP trimming as four tables around two
// egress queues:
//   Directprio:   control packets (no payload) -> priority queue
//   Readregister: copy the data-queue occupancy register `qs` into metadata
//   Setprio:      qs <= threshold -> normal queue, qs += pkt.size
//                 qs >  threshold -> truncate, priority queue
//   Decrement:    egress, packets leaving the normal queue do qs -= pkt.size
//
// This class executes that exact table program per packet.  Relative to the
// full `ndp_queue`, the P4 prototype (as published) has strict priority
// instead of 10:1 WRR, always trims the *arriving* packet, and has no
// return-to-sender — matching the paper's description of it as a proof of
// concept. Tests verify the table program and its equivalence to `ndp_queue`
// configured the same way.
#pragma once

#include "net/queue.h"
#include "net/ring_fifo.h"

namespace ndpsim {

struct p4_pipeline_config {
  std::uint64_t data_threshold_bytes = 12 * 1024;  ///< paper: 12KB
  std::uint64_t header_capacity_bytes = 12 * 1024;
};

class p4_ndp_pipeline final : public queue_base {
 public:
  p4_ndp_pipeline(sim_env& env, linkspeed_bps rate, p4_pipeline_config cfg,
                  std::string name = "p4ndp");

  [[nodiscard]] std::uint64_t buffered_bytes() const override {
    return qs_register_ + hdr_bytes_;
  }
  [[nodiscard]] std::size_t buffered_packets() const override {
    return normal_.size() + priority_.size();
  }
  /// The P4 occupancy register (bytes in the normal queue).
  [[nodiscard]] std::uint64_t qs_register() const { return qs_register_; }

  struct table_hits {
    std::uint64_t directprio = 0;
    std::uint64_t readregister = 0;
    std::uint64_t setprio_normal = 0;
    std::uint64_t setprio_truncate = 0;
    std::uint64_t decrement = 0;
  };
  [[nodiscard]] const table_hits& hits() const { return hits_; }

 protected:
  void enqueue_arrival(packet& p) override;
  [[nodiscard]] packet* dequeue_next() override;

 private:
  void to_priority(packet& p);

  p4_pipeline_config cfg_;
  ring_fifo<packet*> normal_;
  ring_fifo<packet*> priority_;
  std::uint64_t qs_register_ = 0;
  std::uint64_t hdr_bytes_ = 0;
  table_hits hits_;
};

}  // namespace ndpsim
