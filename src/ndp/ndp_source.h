// NDP sender endpoint (paper §3.2).
//
// Zero-RTT start: a full initial window is pushed at line rate, every packet
// of it carrying SYN plus its offset (so the connection can be established by
// whichever packet arrives first).  After that the sender only transmits in
// response to PULLs: retransmissions queued by NACKs first, then new data.
// Each data packet is sprayed on the next path of a random permutation; a
// per-path scoreboard temporarily retires underperforming paths (§3.2.3).
// Return-to-sender headers (§3.2.4) are resent immediately only when no more
// PULLs are expected or when ACKs dominate NACKs (asymmetric network);
// otherwise they queue for the next PULL, avoiding an incast echo.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "net/packet.h"
#include "net/path_set.h"
#include "net/route.h"
#include "net/sim_env.h"
#include "ndp/path_selector.h"
#include "sim/eventlist.h"

namespace ndpsim {

class ndp_sink;

struct ndp_source_config {
  std::uint32_t mss_bytes = 9000;  ///< full data packet wire size
  std::uint32_t iw_packets = 30;   ///< initial window (paper default, §6.2)
  simtime_t rto = from_ms(1.0);    ///< retransmission timeout backstop
  path_mode mode = path_mode::permutation;
  path_penalty_config penalty = {};
  /// On a bounced header, resend immediately if acks > dominance * nacks.
  double ack_dominance = 4.0;
};

struct ndp_source_stats {
  std::uint64_t packets_sent = 0;  ///< includes retransmissions
  std::uint64_t rtx_sent = 0;
  std::uint64_t rtx_after_nack = 0;
  std::uint64_t rtx_after_bounce = 0;
  std::uint64_t rtx_after_timeout = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t nacks_received = 0;
  std::uint64_t pulls_received = 0;
  std::uint64_t bounces_received = 0;
};

class ndp_source final : public packet_sink, public event_source {
 public:
  ndp_source(sim_env& env, ndp_source_config cfg, std::uint32_t flow_id,
             std::string name = "ndpsrc");
  ~ndp_source() override;

  /// Wire up a connection over a borrowed multipath set (shared interned
  /// routes from `topology::paths()`, or a `manual_paths` build).  Registers
  /// this source and the sink with the set's demuxes under the flow id,
  /// hands the control (reverse) routes to the sink and schedules the
  /// first-window push at `start`.  `flow_bytes == 0` means an unbounded
  /// flow.  If `rx_endpoint` is non-null it is registered as the receiving
  /// endpoint instead of the sink (used to interpose an `ndp_acceptor` for
  /// zero-RTT listen semantics); it must eventually hand packets to the sink.
  void connect(ndp_sink& sink, path_set paths, std::uint32_t src_host,
               std::uint32_t dst_host, std::uint64_t flow_bytes,
               simtime_t start, packet_sink* rx_endpoint = nullptr);

  /// Teardown hook (flow recycling): cancel the pending start/RTO timer,
  /// unbind both demux endpoints and drop the borrowed path view.
  /// Idempotent; also invoked by the destructor, so a connected source can
  /// be destroyed at any point without leaving a dangling event-list entry
  /// or demux binding behind.
  void disconnect();

  void receive(packet& p) override;  // ACK/NACK/PULL/bounced headers
  void do_next_event() override;     // start push + RTO backstop

  void set_complete_callback(std::function<void()> cb) {
    on_complete_ = std::move(cb);
  }
  /// Per-packet delivery latency samples (first send -> ACK seen), Fig 4.
  void set_latency_callback(std::function<void(simtime_t)> cb) {
    on_latency_ = std::move(cb);
  }

  [[nodiscard]] const ndp_source_stats& stats() const { return stats_; }
  [[nodiscard]] bool complete() const {
    return total_packets_ != kUnbounded && cum_acked_ == total_packets_;
  }
  [[nodiscard]] simtime_t completion_time() const { return completion_time_; }
  [[nodiscard]] path_selector& paths() { return *paths_; }
  [[nodiscard]] std::uint64_t total_packets() const { return total_packets_; }
  [[nodiscard]] std::uint32_t flow_id() const { return flow_id_; }
  [[nodiscard]] const ndp_source_config& config() const { return cfg_; }

  static constexpr std::uint64_t kUnbounded = UINT64_MAX;

 private:
  enum class tx_state : std::uint8_t { inflight, nacked, bounced };

  static constexpr std::uint32_t kNoRtoPos = UINT32_MAX;

  struct sent_info {
    simtime_t first_sent = 0;
    simtime_t last_tx = 0;
    std::uint16_t last_path = 0;
    std::uint32_t rto_pos = kNoRtoPos;  ///< index into rto_heap_, or none
    tx_state state = tx_state::inflight;
  };

  /// Indexed min-heap entry: exactly one live deadline per outstanding
  /// packet.  `info` points at the packet's `outstanding_` node (node-based
  /// map, so the address is stable) and `info->rto_pos` tracks the entry's
  /// heap slot, making re-arm an in-place decrease/increase-key and ACK an
  /// O(log n) erase — no stale entries to pop and skip on timer fires.
  /// Ties order by seqno so heap order is data-independent of push history.
  struct rto_item {
    simtime_t deadline;
    std::uint64_t seqno;
    sent_info* info;
  };

  void start_flow();
  void handle_ack(const packet& p);
  void handle_nack(const packet& p);
  void handle_pull(const packet& p);
  void handle_bounce(packet& p);
  void send_data(std::uint64_t seqno, bool is_rtx);
  void send_next_from_pull();
  void queue_rtx(std::uint64_t seqno, tx_state why);
  void arm_rto(std::uint64_t seqno, sent_info& info, simtime_t deadline);
  void process_rto_heap();
  [[nodiscard]] static bool rto_before(const rto_item& a, const rto_item& b);
  void rto_sift_up(std::uint32_t i);
  void rto_sift_down(std::uint32_t i);
  void rto_fix(std::uint32_t i);
  /// Heap-only insert/update (no backstop-timer adjustment); arm_rto adds
  /// the timer handling on top.
  void rto_set_deadline(std::uint64_t seqno, sent_info& info,
                        simtime_t deadline);
  void rto_erase(sent_info& info);
  void rto_clear();
  [[nodiscard]] std::uint32_t payload_for(std::uint64_t seqno) const;
  void check_complete();

  sim_env& env_;
  ndp_source_config cfg_;
  std::uint32_t flow_id_;
  std::uint32_t payload_per_packet_;

  ndp_sink* sink_ = nullptr;
  path_set net_paths_;  ///< borrowed; the topology/path owner outlives us
  std::unique_ptr<path_selector> paths_;
  std::uint32_t src_host_ = 0;
  std::uint32_t dst_host_ = 0;

  std::uint64_t flow_bytes_ = 0;
  std::uint64_t total_packets_ = kUnbounded;
  std::uint64_t next_new_seq_ = 1;
  std::uint64_t highest_pull_ = 0;
  std::uint64_t cum_acked_ = 0;
  std::set<std::uint64_t> ooo_acked_;
  std::set<std::uint64_t> rtx_pending_;
  std::unordered_map<std::uint64_t, sent_info> outstanding_;
  std::vector<rto_item> rto_heap_;  ///< indexed min-heap (see rto_item)
  timer_handle rto_timer_;  ///< one backstop timer, armed for the earliest deadline

  simtime_t start_time_ = 0;
  bool started_ = false;
  bool first_window_phase_ = true;
  simtime_t last_pull_seen_ = -1;
  simtime_t completion_time_ = -1;

  ndp_source_stats stats_;
  std::function<void()> on_complete_;
  std::function<void(simtime_t)> on_latency_;
};

}  // namespace ndpsim
