#include "ndp/pull_pacer.h"

#include <algorithm>

#include "ndp/ndp_sink.h"

namespace ndpsim {

pull_pacer::pull_pacer(sim_env& env, linkspeed_bps link_rate, std::string name)
    : event_source(env.events, std::move(name), dispatch_class::pacer_tick), env_(env), rate_(link_rate) {
  NDPSIM_ASSERT(rate_ > 0);
}

void pull_pacer::enqueue(ndp_sink& sink) {
  ++sink.pulls_pending_;
  ++backlog_;
  if (!sink.in_ring_) {
    sink.in_ring_ = true;
    rings_[sink.pull_class()].push_back(&sink);
  }
  schedule_if_needed();
}

void pull_pacer::purge(ndp_sink& sink) {
  NDPSIM_ASSERT(backlog_ >= sink.pulls_pending_);
  backlog_ -= sink.pulls_pending_;
  sink.pulls_pending_ = 0;
  // Lazy removal: the ring entry is skipped when popped with nothing pending.
  // With the last pull gone, the armed release timer is cancelled instead of
  // firing into an empty queue.
  if (backlog_ == 0) events().cancel(timer_);
}

void pull_pacer::remove(ndp_sink& sink) {
  purge(sink);
  if (sink.in_ring_) {
    // Scan every class: a re-classed sink can sit in a ring other than its
    // current pull_class() until the pacer rotates past it.
    for (auto& ring : rings_) (void)ring.erase_value(&sink);
    sink.in_ring_ = false;
  }
}

bool pull_pacer::any_pending() const { return backlog_ > 0; }

void pull_pacer::schedule_if_needed() {
  if (!any_pending() || events().is_pending(timer_)) return;
  events().reschedule(timer_, *this, std::max(env_.now(), next_send_));
}

void pull_pacer::do_next_event() {
  // The timer only fires when a release is actually due: enqueue arms it,
  // purge of the last pull cancels it.
  NDPSIM_ASSERT(any_pending());
  send_one();
  schedule_if_needed();
}

void pull_pacer::send_one() {
  // Strict priority across classes, DRR (quantum = 1 pull) within a class.
  for (std::size_t cls = kPullClasses; cls-- > 0;) {
    auto& ring = rings_[cls];
    while (!ring.empty()) {
      ndp_sink* sink = ring.front();
      ring.pop_front();
      if (sink->pulls_pending_ == 0) {
        // Purged or re-classed entry: drop it from the ring.
        sink->in_ring_ = false;
        continue;
      }
      --sink->pulls_pending_;
      --backlog_;
      if (sink->pulls_pending_ > 0) {
        ring.push_back(sink);
      } else {
        sink->in_ring_ = false;
      }
      sink->issue_pull();
      ++pulls_sent_;
      // Pace so the elicited data packets arrive at our link rate. Jitter
      // (replaying the prototype's imperfect timing, Fig 12) perturbs each
      // release around an *ideal* schedule: late pulls are followed by
      // back-to-back catch-up ones, exactly like the real pacer thread, so
      // the long-run pull rate is conserved (Fig 13's result depends on it).
      const simtime_t interval =
          serialization_time(sink->pulled_wire_bytes(), rate_);
      const simtime_t base =
          std::max(ideal_next_, env_.now() - 8 * interval);
      ideal_next_ = base + interval;
      simtime_t target = ideal_next_;
      if (jitter_) target = base + jitter_(interval);
      next_send_ = std::max(env_.now(), target);
      return;
    }
  }
}

}  // namespace ndpsim
