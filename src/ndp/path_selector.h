// Sender-side multipath selection (paper §3.1.1) and the path scoreboard
// robustness optimization (paper §3.2.3).
//
// Default mode walks a random permutation of the path list, reshuffling after
// each full pass: packets spread exactly evenly over paths while avoiding
// inter-sender synchronization.  `random_per_packet` models switch-based
// per-packet ECMP (iid uniform choice) for the load-balancing comparison.
//
// The scoreboard counts per-path ACKs, NACKs and losses.  When reshuffling,
// paths whose NACK fraction or loss count is an outlier are temporarily
// excluded (they re-enter after `penalty_time`), which is what lets NDP route
// around a degraded link (Fig 22).
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "net/sim_env.h"
#include "sim/time.h"

namespace ndpsim {

enum class path_mode : std::uint8_t {
  permutation,        ///< shuffled round robin (NDP default)
  random_per_packet,  ///< iid uniform (models switch per-packet ECMP)
  single,             ///< always path 0 (single-path transports)
};

struct path_penalty_config {
  bool enabled = true;
  /// Minimum ACK+NACK samples on a path before it can be judged.
  std::uint32_t min_samples = 16;
  /// Exclude when nack_frac > global_frac * factor + offset.
  double nack_factor = 2.0;
  double nack_offset = 0.10;
  /// Exclude when losses exceed mean losses * factor + offset.
  double loss_factor = 3.0;
  double loss_offset = 2.0;
  simtime_t penalty_time = from_ms(2.0);
  /// Exponential decay applied to per-path counters at each reshuffle, so
  /// judgements track recent behaviour ("temporarily removes outliers").
  /// Steady-state sample count per path is ~1/(1-decay); it must comfortably
  /// exceed min_samples or penalties can never trigger.
  double decay = 0.98;
};

class path_selector {
 public:
  path_selector(sim_env& env, std::size_t n_paths, path_mode mode,
                path_penalty_config penalty = {});

  /// Pick the path for the next packet.
  [[nodiscard]] std::uint16_t next();

  /// Pick a path different from `avoid` (used for retransmissions, which the
  /// paper always sends on a different path).
  [[nodiscard]] std::uint16_t next_avoiding(std::uint16_t avoid);

  void record_ack(std::uint16_t path);
  void record_nack(std::uint16_t path);
  void record_loss(std::uint16_t path);

  [[nodiscard]] std::size_t n_paths() const { return stats_.size(); }
  [[nodiscard]] std::size_t n_usable() const { return order_.size(); }
  [[nodiscard]] bool is_excluded(std::uint16_t path) const;

 private:
  void reshuffle();
  void evaluate_penalties();

  struct path_stat {
    double acks = 0;
    double nacks = 0;
    double losses = 0;
    simtime_t excluded_until = 0;
  };

  sim_env& env_;
  path_mode mode_;
  path_penalty_config penalty_;
  std::vector<path_stat> stats_;
  std::vector<std::uint16_t> order_;  ///< current permutation (usable paths)
  std::size_t cursor_ = 0;
};

}  // namespace ndpsim
