#include "ndp/ndp_sink.h"

namespace ndpsim {

ndp_sink::ndp_sink(sim_env& env, pull_pacer& pacer, ndp_sink_config cfg,
                   std::uint32_t flow_id)
    : env_(env), pacer_(pacer), cfg_(cfg), flow_id_(flow_id) {
  NDPSIM_ASSERT(cfg_.mss_bytes > kHeaderBytes);
  NDPSIM_ASSERT(cfg_.pull_class < kPullClasses);
}

void ndp_sink::bind(path_set paths, std::uint32_t local_host,
                    std::uint32_t remote_host) {
  NDPSIM_ASSERT_MSG(!paths.empty(), "sink needs at least one ctrl route");
  paths_ = paths;
  local_host_ = local_host;
  remote_host_ = remote_host;
}

void ndp_sink::disconnect() {
  pacer_.remove(*this);
  paths_ = path_set{};
}

void ndp_sink::receive(packet& p) {
  NDPSIM_ASSERT_MSG(p.type == packet_type::ndp_data,
                    "ndp_sink received non-data packet");
  NDPSIM_ASSERT(p.flow_id == flow_id_);

  if (p.has_flag(pkt_flag::trimmed)) {
    ++stats_.headers;
    send_control(packet_type::ndp_nack, p.seqno, p.path_id);
    ++stats_.nacks_sent;
    note_arrival_for_pull();
    env_.pool.release(&p);
    return;
  }

  ++stats_.data_packets;
  const bool is_new =
      p.seqno > cum_received_ && ooo_.find(p.seqno) == ooo_.end();
  if (is_new) {
    stats_.payload_bytes += p.payload_bytes;
    if (p.seqno == cum_received_ + 1) {
      ++cum_received_;
      advance_cumulative();
    } else {
      ooo_.insert(p.seqno);
    }
    if (p.has_flag(pkt_flag::last)) total_packets_ = p.seqno;
  } else {
    ++stats_.duplicate_packets;
  }

  // Always ACK, even duplicates: the sender needs to free its copy.
  send_control(packet_type::ndp_ack, p.seqno, p.path_id);
  ++stats_.acks_sent;

  if (complete()) {
    if (completion_time_ < 0) {
      completion_time_ = env_.now();
      pacer_.purge(*this);
      if (on_complete_) on_complete_();
    }
  } else {
    note_arrival_for_pull();
  }
  env_.pool.release(&p);
}

void ndp_sink::advance_cumulative() {
  auto it = ooo_.begin();
  while (it != ooo_.end() && *it == cum_received_ + 1) {
    ++cum_received_;
    it = ooo_.erase(it);
  }
}

void ndp_sink::note_arrival_for_pull() {
  // One pull owed per arriving packet or header (paper §3.2). The pacer will
  // call issue_pull() when this connection's turn comes.
  pacer_.enqueue(*this);
}

void ndp_sink::send_control(packet_type type, std::uint64_t seqno,
                            std::uint16_t echo_path) {
  packet* p = env_.pool.alloc();
  p->type = type;
  p->priority = 1;
  p->flow_id = flow_id_;
  p->src = local_host_;
  p->dst = remote_host_;
  p->size_bytes = kHeaderBytes;
  p->seqno = seqno;
  p->path_id = echo_path;
  // Control packets are sprayed across paths too (reverse direction).
  p->rt = paths_.reverse(env_.rand_below(paths_.size()));
  p->next_hop = 0;
  send_to_next_hop(*p);
}

void ndp_sink::issue_pull() {
  ++pull_counter_;
  ++stats_.pulls_sent;
  packet* p = env_.pool.alloc();
  p->type = packet_type::ndp_pull;
  p->priority = 1;
  p->flow_id = flow_id_;
  p->src = local_host_;
  p->dst = remote_host_;
  p->size_bytes = kHeaderBytes;
  p->pullno = pull_counter_;
  p->rt = paths_.reverse(env_.rand_below(paths_.size()));
  p->next_hop = 0;
  send_to_next_hop(*p);
}

}  // namespace ndpsim
