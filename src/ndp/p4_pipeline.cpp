#include "ndp/p4_pipeline.h"

#include "ndp/ndp_queue.h"

namespace ndpsim {

p4_ndp_pipeline::p4_ndp_pipeline(sim_env& env, linkspeed_bps rate,
                                 p4_pipeline_config cfg, std::string name)
    : queue_base(env, rate, std::move(name)), cfg_(cfg) {}

void p4_ndp_pipeline::enqueue_arrival(packet& p) {
  // Ingress pipeline.
  // Table Directprio: NDP packets without a data payload match '*' and are
  // set to priority 1 immediately.
  if (p.is_header_class()) {
    ++hits_.directprio;
    to_priority(p);
    return;
  }
  // Table Readregister: read qs into packet metadata (modelled by reading the
  // member directly; the hit is still counted to mirror the P4 program).
  ++hits_.readregister;
  const std::uint64_t qs = qs_register_;
  // Table Setprio.
  if (qs <= cfg_.data_threshold_bytes) {
    ++hits_.setprio_normal;
    qs_register_ += p.size_bytes;
    p.enqueue_time = env_.now();
    normal_.push_back(&p);
    return;
  }
  ++hits_.setprio_truncate;
  const std::uint64_t removed = p.size_bytes - kHeaderBytes;
  ndp_queue::trim_packet(p);  // P4 primitive action `truncate`
  count_trim(removed);
  to_priority(p);
}

void p4_ndp_pipeline::to_priority(packet& p) {
  if (hdr_bytes_ + p.size_bytes > cfg_.header_capacity_bytes) {
    drop(p);  // the P4 prototype has no return-to-sender
    return;
  }
  hdr_bytes_ += p.size_bytes;
  p.enqueue_time = env_.now();
  priority_.push_back(&p);
}

packet* p4_ndp_pipeline::dequeue_next() {
  // Strict priority between the two queues (the simple_switch model).
  if (!priority_.empty()) {
    packet* p = priority_.front();
    priority_.pop_front();
    hdr_bytes_ -= p->size_bytes;
    return p;
  }
  if (normal_.empty()) return nullptr;
  packet* p = normal_.front();
  normal_.pop_front();
  // Egress pipeline, table Decrement: prio==0 packets release qs.
  ++hits_.decrement;
  NDPSIM_ASSERT(qs_register_ >= p->size_bytes);
  qs_register_ -= p->size_bytes;
  return p;
}

}  // namespace ndpsim
