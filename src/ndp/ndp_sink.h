// NDP receiver endpoint (paper §3.2).
//
// For every arriving data packet it immediately returns an ACK; for every
// trimmed header an immediate NACK (both high priority, unpaced, so the
// sender learns each packet's fate as early as possible).  For every arrival
// it owes one PULL, queued on the host's shared `pull_pacer`.  ACKs and NACKs
// echo the data packet's path id so the sender can keep its path scoreboard.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "net/packet.h"
#include "net/path_set.h"
#include "net/route.h"
#include "net/sim_env.h"
#include "ndp/pull_pacer.h"

namespace ndpsim {

struct ndp_sink_config {
  std::uint32_t mss_bytes = 9000;  ///< wire size of a full data packet
  std::uint8_t pull_class = 0;     ///< pull priority (0 = default/lowest)
};

struct ndp_sink_stats {
  std::uint64_t data_packets = 0;
  std::uint64_t duplicate_packets = 0;
  std::uint64_t headers = 0;  ///< trimmed arrivals
  std::uint64_t acks_sent = 0;
  std::uint64_t nacks_sent = 0;
  std::uint64_t pulls_sent = 0;
  std::uint64_t payload_bytes = 0;
};

class ndp_sink final : public packet_sink {
 public:
  ndp_sink(sim_env& env, pull_pacer& pacer, ndp_sink_config cfg,
           std::uint32_t flow_id);

  /// Bind the path set whose reverse routes are the control routes towards
  /// the sender. Borrowed; the path owner keeps the routes alive.
  void bind(path_set paths, std::uint32_t local_host,
            std::uint32_t remote_host);

  /// Teardown hook (flow recycling): leave the pull pacer's rings eagerly so
  /// the pacer holds no pointer to this sink, and drop the borrowed path
  /// view.  Idempotent; after this the sink can be destroyed safely even if
  /// the pacer lives on.
  void disconnect();

  void receive(packet& p) override;

  /// Fires once, when every packet of a finite flow has been received.
  void set_complete_callback(std::function<void()> cb) {
    on_complete_ = std::move(cb);
  }

  void set_pull_class(std::uint8_t cls) {
    NDPSIM_ASSERT(cls < kPullClasses);
    cfg_.pull_class = cls;
  }
  [[nodiscard]] std::uint8_t pull_class() const { return cfg_.pull_class; }

  [[nodiscard]] bool complete() const {
    return total_packets_ != 0 && cum_received_ == total_packets_;
  }
  [[nodiscard]] const ndp_sink_stats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t payload_received() const {
    return stats_.payload_bytes;
  }
  [[nodiscard]] simtime_t completion_time() const { return completion_time_; }
  [[nodiscard]] std::uint32_t flow_id() const { return flow_id_; }

  // --- pull_pacer interface ---------------------------------------------
  /// Build and transmit one PULL packet (called by the pacer).
  void issue_pull();
  /// Wire size of the data packet one PULL elicits (pacing interval basis).
  [[nodiscard]] std::uint32_t pulled_wire_bytes() const {
    return cfg_.mss_bytes;
  }

 private:
  friend class pull_pacer;

  void send_control(packet_type type, std::uint64_t seqno,
                    std::uint16_t echo_path);
  void note_arrival_for_pull();
  void advance_cumulative();

  sim_env& env_;
  pull_pacer& pacer_;
  ndp_sink_config cfg_;
  std::uint32_t flow_id_;
  std::uint32_t local_host_ = 0;
  std::uint32_t remote_host_ = 0;
  path_set paths_;  ///< control packets ride paths_.reverse(i)

  std::uint64_t cum_received_ = 0;      ///< all packets 1..cum received
  std::set<std::uint64_t> ooo_;         ///< received beyond cum
  std::uint64_t total_packets_ = 0;     ///< 0 until the `last` flag is seen
  std::uint64_t pull_counter_ = 0;
  simtime_t completion_time_ = -1;

  // pacer bookkeeping
  std::uint64_t pulls_pending_ = 0;
  bool in_ring_ = false;

  ndp_sink_stats stats_;
  std::function<void()> on_complete_;
};

}  // namespace ndpsim
