#include "host/rpc_latency_model.h"

#include <cmath>

namespace ndpsim {

namespace {
/// Multiplicative jitter: exp(N(0, sigma)) with sigma = ln(1+frac).
double jitter(sim_env& env, double value, double frac) {
  std::normal_distribution<double> n(0.0, std::log(1.0 + frac));
  return value * std::exp(n(env.rng));
}
}  // namespace

sample_set simulate_rpc_latency(sim_env& env, rpc_stack stack,
                                bool deep_sleep_enabled, std::size_t n,
                                const rpc_model_params& p) {
  sample_set out;
  for (std::size_t i = 0; i < n; ++i) {
    double us = jitter(env, p.wire_rtt_us, p.jitter_frac);
    switch (stack) {
      case rpc_stack::ndp:
        // Everything in userspace on a spinning core: no interrupts, no
        // copies, no sleep states.
        us += jitter(env, p.ndp_processing_us, p.jitter_frac);
        break;
      case rpc_stack::tfo:
        // Data rides the SYN, but the kernel path is crossed in both
        // directions at both hosts, and the app must be woken.
        us += jitter(env, 2 * p.kernel_crossing_us, p.jitter_frac);
        us += jitter(env, p.app_wakeup_us, p.jitter_frac);
        if (deep_sleep_enabled) {
          us += jitter(env, p.deep_sleep_wake_us, p.jitter_frac);
        }
        break;
      case rpc_stack::tcp:
        // TFO plus a full handshake RTT (wire + kernel) before data moves.
        us += jitter(env, 2 * p.kernel_crossing_us, p.jitter_frac);
        us += jitter(env, p.app_wakeup_us, p.jitter_frac);
        us += jitter(env, p.wire_rtt_us + 1.5 * p.kernel_crossing_us,
                     p.jitter_frac);
        if (deep_sleep_enabled) {
          // Both the handshake and the data exchange can find the remote CPU
          // asleep; empirically the penalty is not paid twice in full.
          us += jitter(env, 1.2 * p.deep_sleep_wake_us, p.jitter_frac);
        }
        break;
    }
    out.add(us);
  }
  return out;
}

}  // namespace ndpsim
