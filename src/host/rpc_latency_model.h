// End-host latency model for the 1KB-RPC experiment (paper Fig 8).
//
// The paper measures its Linux/DPDK NDP stack against kernel TCP and TCP
// Fast Open on two back-to-back servers, and attributes the differences to:
//   * wire + NIC time        (a DPDK ping measures 22us round trip),
//   * protocol + application processing (NDP: ~40us, all userspace/polling),
//   * kernel path costs per stack crossing (interrupts, softirq, copies,
//     scheduling) for TCP/TFO,
//   * the TCP handshake (one extra RTT before data, absent in TFO/NDP), and
//   * deep CPU sleep states: interrupt-driven stacks find the CPU in C-states
//     below C1 and pay a wake-up penalty; the DPDK core spins and never
//     sleeps.
// We model each component as a jittered constant and compose them per RPC —
// the same decomposition §5.1 uses to explain its measurements.  This
// substitutes for the bare-metal testbed (documented in DESIGN.md).
#pragma once

#include <cstdint>

#include "net/sim_env.h"
#include "stats/cdf.h"

namespace ndpsim {

struct rpc_model_params {
  double wire_rtt_us = 22.0;       ///< DPDK ping-pong, 1KB
  double ndp_processing_us = 40.0; ///< NDP proto + app on dedicated core
  double kernel_crossing_us = 32.0;  ///< per direction: irq+softirq+copy+sched
  double app_wakeup_us = 30.0;       ///< scheduling the blocked app thread
  double deep_sleep_wake_us = 140.0; ///< C-state exit on the idle server
  double jitter_frac = 0.12;         ///< lognormal-ish relative jitter
};

enum class rpc_stack : std::uint8_t {
  ndp,            ///< userspace DPDK, polling
  tfo,            ///< TCP Fast Open: data on SYN, kernel, interrupts
  tcp,            ///< plain TCP: 3-way handshake first
};

/// Simulate `n` request/response RPCs and return the latency samples (us).
[[nodiscard]] sample_set simulate_rpc_latency(sim_env& env, rpc_stack stack,
                                              bool deep_sleep_enabled,
                                              std::size_t n,
                                              const rpc_model_params& params = {});

}  // namespace ndpsim
