// Models of the two real-world artifacts §6 identifies when comparing the
// Linux NDP implementation against the simulator:
//
//  1. Host processing delay: the prototype needs a ~25-packet initial window
//     where the simulator needs 15, i.e. the end hosts buffer ~10 packets'
//     worth (~72us at 10G/9K) of processing latency.  Modelled as extra
//     per-direction fixed delay on the path (Fig 11 "Experimental").
//
//  2. Imperfect PULL pacing: the measured inter-PULL gaps at the sender
//     (Fig 12) match the target spacing in the median but show variance for
//     1500B packets (gaps both shorter — back-to-back pulls after reordering
//     — and several times longer).  `make_pull_jitter` returns a sampler that
//     reproduces that mixture and plugs into pull_pacer::set_interval_jitter
//     (Fig 13 re-runs incast with it).
#pragma once

#include <functional>

#include "net/sim_env.h"
#include "sim/time.h"

namespace ndpsim {

struct host_delay_model {
  /// Extra one-way latency contributed by host processing (per direction).
  simtime_t per_direction = from_us(36.0);
};

/// Interval-jitter sampler replaying the measured pull-spacing distribution.
/// `packet_bytes` selects the 1500B (noisy) or 9000B (tight) profile.
[[nodiscard]] std::function<simtime_t(simtime_t)> make_pull_jitter(
    sim_env& env, std::uint32_t packet_bytes);

}  // namespace ndpsim
