#include "host/artifacts.h"

namespace ndpsim {

std::function<simtime_t(simtime_t)> make_pull_jitter(
    sim_env& env, std::uint32_t packet_bytes) {
  // Mixture models eyeballed from the paper's Fig 12 CDFs. The 9000B curve
  // is tight around the 7.2us target; the 1500B curve has ~25% of gaps
  // noticeably short (pulls released back-to-back after queueing) and a tail
  // stretching to several times the 1.2us target (timer granularity).
  const bool noisy = packet_bytes < 4000;
  return [&env, noisy](simtime_t nominal) -> simtime_t {
    const double u = env.rand_unit();
    double factor;
    if (noisy) {
      if (u < 0.25) {
        factor = 0.2 + 0.8 * env.rand_unit();  // early / back-to-back
      } else if (u < 0.80) {
        factor = 0.9 + 0.3 * env.rand_unit();  // near nominal
      } else if (u < 0.97) {
        factor = 1.2 + 2.0 * env.rand_unit();  // late
      } else {
        factor = 2.0 + 4.0 * env.rand_unit();  // rare long stalls
      }
    } else {
      if (u < 0.9) {
        factor = 0.96 + 0.08 * env.rand_unit();
      } else {
        factor = 1.0 + 0.5 * env.rand_unit();
      }
    }
    return static_cast<simtime_t>(static_cast<double>(nominal) * factor);
  };
}

}  // namespace ndpsim
