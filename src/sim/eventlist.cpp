// event_list is header-only; this translation unit anchors the library.
#include "sim/eventlist.h"
