// Simulation time and link-speed units.
//
// All simulation time is kept in signed 64-bit picoseconds, which gives
// ~106 days of range: far more than any experiment needs, while keeping
// serialization times of single bytes on 100Gb/s links exactly representable.
#pragma once

#include <cstdint>

namespace ndpsim {

/// Simulation time in picoseconds.
using simtime_t = std::int64_t;

/// Link speed in bits per second.
using linkspeed_bps = std::uint64_t;

inline constexpr simtime_t kPicosecond = 1;
inline constexpr simtime_t kNanosecond = 1'000;
inline constexpr simtime_t kMicrosecond = 1'000'000;
inline constexpr simtime_t kMillisecond = 1'000'000'000;
inline constexpr simtime_t kSecond = 1'000'000'000'000;

namespace detail {
/// Round-to-nearest for non-negative conversions (avoids 8.2us -> 8199999ps).
[[nodiscard]] constexpr simtime_t round_time(double ps) {
  return ps >= 0 ? static_cast<simtime_t>(ps + 0.5)
                 : static_cast<simtime_t>(ps - 0.5);
}
}  // namespace detail

[[nodiscard]] constexpr simtime_t from_ns(double ns) {
  return detail::round_time(ns * static_cast<double>(kNanosecond));
}
[[nodiscard]] constexpr simtime_t from_us(double us) {
  return detail::round_time(us * static_cast<double>(kMicrosecond));
}
[[nodiscard]] constexpr simtime_t from_ms(double ms) {
  return detail::round_time(ms * static_cast<double>(kMillisecond));
}
[[nodiscard]] constexpr simtime_t from_sec(double s) {
  return detail::round_time(s * static_cast<double>(kSecond));
}

[[nodiscard]] constexpr double to_ns(simtime_t t) {
  return static_cast<double>(t) / static_cast<double>(kNanosecond);
}
[[nodiscard]] constexpr double to_us(simtime_t t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}
[[nodiscard]] constexpr double to_ms(simtime_t t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}
[[nodiscard]] constexpr double to_sec(simtime_t t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

[[nodiscard]] constexpr linkspeed_bps gbps(double g) {
  return static_cast<linkspeed_bps>(g * 1e9);
}
[[nodiscard]] constexpr linkspeed_bps mbps(double m) {
  return static_cast<linkspeed_bps>(m * 1e6);
}

/// Time to serialize `bytes` onto a link of speed `speed` (store-and-forward).
[[nodiscard]] constexpr simtime_t serialization_time(std::uint64_t bytes,
                                                     linkspeed_bps speed) {
  // bits * ps-per-second / bps; use 128-bit intermediate to avoid overflow.
  using u128 = unsigned __int128;
  return static_cast<simtime_t>(u128(bytes) * 8u * u128(kSecond) / speed);
}

/// Bytes transferable in time `t` at speed `speed` (rounded down).
[[nodiscard]] constexpr std::uint64_t bytes_in_time(simtime_t t,
                                                    linkspeed_bps speed) {
  using u128 = unsigned __int128;
  return static_cast<std::uint64_t>(u128(t) * speed / 8u / u128(kSecond));
}

}  // namespace ndpsim
