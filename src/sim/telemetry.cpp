#include "sim/telemetry.h"

namespace ndpsim {

const char* to_string(telemetry_kind k) {
  switch (k) {
    case telemetry_kind::queue:
      return "queue";
    case telemetry_kind::pipe:
      return "pipe";
    case telemetry_kind::demux:
      return "demux";
    case telemetry_kind::other:
      break;
  }
  return "other";
}

void telemetry_plane::merge_from(const telemetry_plane& other) {
  NDPSIM_ASSERT_MSG(other.hot_.size() == hot_.size(),
                    "telemetry merge across mismatched slot layouts ("
                        << hot_.size() << " vs " << other.hot_.size() << ")");
  for (std::size_t i = 0; i < hot_.size(); ++i) {
    hot_[i].add(other.hot_[i]);
    rare_[i].add(other.rare_[i]);
    // Adopt the richer registration: a job that armed a slot knows its kind
    // and rate; the merge target may have been default-constructed.
    if (!info_[i].armed && other.info_[i].armed) info_[i] = other.info_[i];
  }
}

}  // namespace ndpsim
