#include "sim/telemetry.h"

namespace ndpsim {

const char* to_string(telemetry_kind k) {
  switch (k) {
    case telemetry_kind::queue:
      return "queue";
    case telemetry_kind::pipe:
      return "pipe";
    case telemetry_kind::demux:
      return "demux";
    case telemetry_kind::other:
      break;
  }
  return "other";
}

void telemetry_plane::merge_from(const telemetry_plane& other) {
  NDPSIM_ASSERT_MSG(other.hot_.size() == hot_.size(),
                    "telemetry merge across mismatched slot layouts ("
                        << hot_.size() << " vs " << other.hot_.size() << ")");
  for (std::size_t i = 0; i < hot_.size(); ++i) {
    hot_[i].add(other.hot_[i]);
    rare_[i].add(other.rare_[i]);
    // Adopt the richer registration: a job that armed a slot knows its kind
    // and rate; the merge target may have been default-constructed.
    if (!info_[i].armed && other.info_[i].armed) info_[i] = other.info_[i];
  }
}

telemetry_counters telemetry_plane::totals(telemetry_kind kind) const {
  telemetry_counters sum;
  for (std::size_t i = 0; i < hot_.size(); ++i) {
    if (!info_[i].armed || info_[i].kind != kind) continue;
    const telemetry_counters c = combine_telemetry(&hot_[i], &rare_[i]);
    sum.enq_pkts += c.enq_pkts;
    sum.enq_bytes += c.enq_bytes;
    sum.deq_pkts += c.deq_pkts;
    sum.deq_bytes += c.deq_bytes;
    sum.drop_pkts += c.drop_pkts;
    sum.drop_bytes += c.drop_bytes;
    sum.trim_pkts += c.trim_pkts;
    sum.trim_bytes += c.trim_bytes;
    sum.bounce_pkts += c.bounce_pkts;
    sum.bounce_bytes += c.bounce_bytes;
    sum.mark_pkts += c.mark_pkts;
    sum.stale_drops += c.stale_drops;
  }
  return sum;
}

std::size_t telemetry_plane::armed_slots() const {
  std::size_t n = 0;
  for (const slot_info& s : info_) n += s.armed ? 1 : 0;
  return n;
}

}  // namespace ndpsim
