// Discrete-event simulation kernel: a time-ordered queue of event sources.
//
// Usage: components derive from `event_source`, schedule themselves on the
// shared `event_list`, and get `do_next_event()` callbacks in time order.
// `schedule_at`/`schedule_in` return a `timer_handle` that can be cancelled
// or rescheduled in O(log n); a timer fires exactly once, at exactly the time
// it is (last) armed for.  There are no spurious wake-ups: a source that no
// longer needs a pending event cancels it instead of checking its own state
// when woken, and a source that needs an event at a different time moves the
// existing one instead of scheduling a second and ignoring the first.
//
// Two pending-event stores share one logical timeline:
//
//  * An indexed min-heap for arbitrary (cancellable, reschedulable) timers.
//    Every pending event knows its heap position (a dense slot->position
//    side array), which is what makes cancel and reschedule cheap
//    (decrease-key / delete instead of dead-entry accumulation).  Heap
//    entries are 16 bytes — the timestamp plus the arming sequence, dispatch
//    class and slot packed into one tagged word — so four share a cache
//    line.
//
//  * Monotone FIFO **lanes** for the fabric hot path.  A pipe always fires
//    `delay` after arming and a queue always fires one serialization time
//    after arming, so per (class, delta) their deadlines arrive already
//    sorted: a lane is a plain ring buffer with O(1) push and pop — no
//    sifting, no slot table, and room for a 64-bit payload per entry
//    (lanes are struct-of-arrays event state: deadline + seq + source +
//    payload flat in dispatch order).  Lane entries are not cancellable;
//    anything that may cancel or move stays on the heap.
//
// Ordering contract: heap entries and lane entries draw arming sequence
// numbers from the *same* counter, and dispatch always takes the globally
// smallest (when, seq) across the heap top and every lane head.  Ties are
// therefore broken by arming order (FIFO) exactly as with a single heap —
// the split is invisible to simulation results by construction.
// Rescheduling re-arms, i.e. moves the event behind others already pending
// at the new timestamp.
//
// Flat dispatch: every `event_source` carries a `dispatch_class`.  Lane
// events of a class with a registered flat handler are dispatched in
// batches — a maximal run of consecutive same-lane entries at one timestamp
// whose sequences precede every other pending candidate — through one
// indirect call for the whole run instead of one virtual call per event.
// Classes without a handler (and all heap events) fall back to per-event
// virtual dispatch.  `set_flat_dispatch(false)` forces the virtual path
// everywhere; results must be bitwise-identical either way (gated by
// tests/test_flat_dispatch.cpp and the bench identity checks).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/ring_fifo.h"
#include "sim/assert.h"
#include "sim/name_ref.h"
#include "sim/time.h"

namespace ndpsim {

class event_list;

/// Dispatch class of an event source: which flat-dispatch family its lane
/// events belong to.  `generic` sources (and every heap event, whatever the
/// class) always dispatch virtually.  At most 8 classes fit the tag layout.
enum class dispatch_class : std::uint8_t {
  generic = 0,      ///< virtual `do_next_event` / `do_lane_event` only
  pipe_expiry,      ///< link propagation delivery (payload = packet*)
  queue_service,    ///< queue serialization completion
  pacer_tick,       ///< paced-sender tick (reschedules: heap resident)
  transport_timer,  ///< transport protocol timer (RTO etc.; heap resident)
};
inline constexpr std::size_t kNDispatchClasses = 5;

/// Base class for anything that can be scheduled on the event list.
class event_source {
 public:
  event_source(event_list& events, name_ref name,
               dispatch_class cls = dispatch_class::generic)
      : events_(events), name_(std::move(name)), cls_(cls) {}
  virtual ~event_source() = default;

  event_source(const event_source&) = delete;
  event_source& operator=(const event_source&) = delete;

  /// Called when a scheduled time for this source is reached.
  virtual void do_next_event() = 0;

  /// Per-entry (virtual-mode) delivery of a lane event.  Sources that
  /// schedule lane events with payloads override this; the default ignores
  /// the payload so plain timers can ride lanes too.
  virtual void do_lane_event(std::uint64_t /*payload*/) { do_next_event(); }

  [[nodiscard]] event_list& events() const { return events_; }
  [[nodiscard]] dispatch_class dispatch_cls() const { return cls_; }
  /// The component name, formatted on demand (see sim/name_ref.h).
  [[nodiscard]] std::string name() const { return name_.str(); }

 private:
  event_list& events_;
  name_ref name_;
  dispatch_class cls_;
};

/// Token for one pending event.  Trivially copyable; default-constructed
/// handles (and handles whose event has fired or been cancelled) are invalid,
/// and every `event_list` operation on an invalid handle is a safe no-op.
class timer_handle {
 public:
  timer_handle() = default;

 private:
  friend class event_list;
  static constexpr std::uint32_t kNone = UINT32_MAX;
  timer_handle(std::uint32_t slot, std::uint32_t gen)
      : slot_(slot), gen_(gen) {}
  std::uint32_t slot_ = kNone;
  std::uint32_t gen_ = 0;
};

/// Indexed min-heap plus monotone FIFO lanes; ties broken by arming order
/// across both stores.
class event_list {
 public:
  /// Batch handler for one lane run: `srcs[i]` armed the i-th event with
  /// `payloads[i]`.  All entries share one timestamp (== now()) and one
  /// dispatch class.
  using flat_batch_fn = void (*)(event_source* const* srcs,
                                 const std::uint64_t* payloads, std::size_t n);

  /// Returned by `lane_for` when the lane table is full; callers fall back
  /// to `schedule_at` (the heap honors the same (when, seq) order).
  static constexpr std::uint32_t kNoLane = UINT32_MAX;

  event_list() = default;
  event_list(const event_list&) = delete;
  event_list& operator=(const event_list&) = delete;

  [[nodiscard]] simtime_t now() const { return now_; }
  [[nodiscard]] bool empty() const {
    return heap_.empty() && lane_pending_ == 0;
  }
  [[nodiscard]] std::size_t pending() const {
    return heap_.size() + lane_pending_;
  }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// Schedule `src` to run at absolute time `when` (must not be in the past).
  timer_handle schedule_at(event_source& src, simtime_t when) {
    NDPSIM_ASSERT_MSG(when >= now_, "cannot schedule into the past: " << when
                                                                      << " < "
                                                                      << now_);
    const std::uint32_t slot = alloc_slot();
    nodes_[slot].src = &src;
    const std::uint32_t at = static_cast<std::uint32_t>(heap_.size());
    pos_[slot] = at;
    heap_.push_back(heap_item{when, next_tag(slot, src.dispatch_cls())});
    sift_up(at);
    return timer_handle{slot, nodes_[slot].gen};
  }

  /// Schedule `src` to run `delta` picoseconds from now.
  timer_handle schedule_in(event_source& src, simtime_t delta) {
    NDPSIM_ASSERT(delta >= 0);
    return schedule_at(src, now_ + delta);
  }

  // --- lanes --------------------------------------------------------------

  /// The lane of (class, delta), creating it on first use.  A lane accepts
  /// only monotonically non-decreasing deadlines — which (class, delta)
  /// guarantees when every arming is `now + delta` — so callers with one
  /// fixed delta resolve their lane once and reuse the id.  Returns
  /// `kNoLane` when the lane table is full (fall back to `schedule_at`).
  [[nodiscard]] std::uint32_t lane_for(dispatch_class cls, simtime_t delta) {
    NDPSIM_ASSERT(delta >= 0);
    for (std::uint32_t i = 0; i < lanes_.size(); ++i) {
      if (lanes_[i]->cls == cls && lanes_[i]->delta == delta) return i;
    }
    if (lanes_.size() >= kMaxLanes) return kNoLane;
    lanes_.push_back(std::make_unique<lane>(cls, delta));
    return static_cast<std::uint32_t>(lanes_.size() - 1);
  }

  /// Arm a lane event for `src` at `when` carrying `payload`.  `when` must
  /// be >= the lane's last armed deadline (monotone FIFO); lane events fire
  /// exactly once and cannot be cancelled or moved.
  void schedule_lane(std::uint32_t lane_id, event_source& src, simtime_t when,
                     std::uint64_t payload = 0) {
    lane& ln = *lanes_[lane_id];
    NDPSIM_ASSERT_MSG(when >= now_, "cannot schedule into the past: " << when
                                                                      << " < "
                                                                      << now_);
    NDPSIM_ASSERT_MSG(ln.fifo.empty() || when >= ln.fifo.back().when,
                      "lane deadlines must be monotone");
    if (seq_ >= kSeqLimit) [[unlikely]] {
      renumber_tags();
    }
    ln.fifo.emplace_back(lane_entry{when, seq_++, &src, payload});
    ++lane_pending_;
    if (ln.fifo.size() == 1) activate_lane(lane_id);
  }

  /// Pre-size a lane's ring for an expected burst (fabric stamping).
  void reserve_lane(std::uint32_t lane_id, std::size_t n) {
    lanes_[lane_id]->fifo.reserve(n);
  }

  // --- flat dispatch ------------------------------------------------------

  /// Register (or clear, with nullptr) the batch handler of a class.
  void set_flat_handler(dispatch_class cls, flat_batch_fn fn) {
    handlers_[static_cast<std::size_t>(cls)] = fn;
  }

  /// Toggle flat dispatch; when off, every lane event goes through the
  /// per-entry virtual `do_lane_event` instead of the batch handlers.
  void set_flat_dispatch(bool on) { flat_on_ = on; }
  [[nodiscard]] bool flat_dispatch_enabled() const { return flat_on_; }

  struct dispatch_counters {
    std::uint64_t heap_events = 0;      ///< virtual via the heap
    std::uint64_t lane_events = 0;      ///< via lanes (flat or virtual)
    std::uint64_t flat_events = 0;      ///< lane events batch-dispatched
    std::uint64_t flat_runs = 0;        ///< batch handler invocations
  };
  [[nodiscard]] const dispatch_counters& dispatch_stats() const {
    return stats_;
  }

  // --- timer handles (heap events only) -----------------------------------

  /// True while the handle's event is still pending (not fired, not
  /// cancelled).
  [[nodiscard]] bool is_pending(const timer_handle& h) const {
    return h.slot_ < nodes_.size() && nodes_[h.slot_].gen == h.gen_ &&
           pos_[h.slot_] != kFree;
  }

  /// The time a pending handle will fire at (handle must be pending).
  [[nodiscard]] simtime_t expiry(const timer_handle& h) const {
    NDPSIM_ASSERT(is_pending(h));
    return heap_[pos_[h.slot_]].when;
  }

  /// Remove a pending event.  Returns true if one was removed; invalid
  /// handles are a no-op.  Invalidates `h`.
  bool cancel(timer_handle& h) {
    if (!is_pending(h)) {
      h = timer_handle{};
      return false;
    }
    remove_from_heap(h.slot_);
    free_slot(h.slot_);
    h = timer_handle{};
    return true;
  }

  /// Move a pending event to `when`, or arm a fresh one for `src` if `h` is
  /// not pending.  The moved event is ordered behind events already pending
  /// at `when` (re-arming = new arming order).  Updates `h` in place.
  void reschedule(timer_handle& h, event_source& src, simtime_t when) {
    NDPSIM_ASSERT_MSG(when >= now_, "cannot schedule into the past: " << when
                                                                      << " < "
                                                                      << now_);
    if (!is_pending(h)) {
      h = schedule_at(src, when);
      return;
    }
    NDPSIM_ASSERT_MSG(nodes_[h.slot_].src == &src,
                      "rescheduling another source's timer");
    const std::uint32_t at = pos_[h.slot_];
    heap_item& item = heap_[at];
    const bool earlier = when < item.when;  // equal times sift down: seq grew
    item.when = when;
    item.tag = next_tag(h.slot_, src.dispatch_cls());
    if (earlier) {
      sift_up(at);
    } else {
      sift_down(at);
    }
  }

  // --- dispatch -----------------------------------------------------------

  /// Run the single earliest event. Returns false if none are pending.
  bool run_next_event() {
    const candidate c = peek_next();
    if (!c.found) return false;
    if (c.lane == kNoLane) {
      dispatch_min();
    } else {
      dispatch_lane_one(c.lane);
    }
    return true;
  }

  /// Run every event sharing the earliest pending timestamp (including any
  /// that dispatching schedules at that same timestamp).  Lane events of
  /// flat-handled classes are dispatched in maximal same-lane runs.
  /// Returns the number of events dispatched (0 if none pending).
  std::size_t run_next_batch() { return run_batch_bounded(UINT64_MAX); }

  /// Run all events with time <= `horizon`; afterwards now() == horizon.
  /// Drives candidates directly (one peek per dispatch round) rather than
  /// through batch framing — same global (when, seq) order, less peeking.
  void run_until(simtime_t horizon) {
    NDPSIM_ASSERT(horizon >= now_);
    for (;;) {
      const candidate c = peek_next();
      if (!c.found || c.when > horizon) break;
      dispatch_candidate(c);
    }
    now_ = horizon;
  }

  /// Run until the event list drains (or `max_events` is hit, as a backstop
  /// against runaway simulations).  The budget is enforced per event, inside
  /// the batch, so a zero-delay self-rescheduling source still trips it.
  void run_all(std::uint64_t max_events = UINT64_MAX) {
    std::uint64_t n = 0;
    for (;;) {
      const std::size_t got = run_batch_bounded(max_events - n);
      if (got == 0) break;
      n += got;
    }
  }

 private:
  static constexpr std::uint32_t kFree = UINT32_MAX;
  static constexpr unsigned kSlotBits = 24;  ///< up to 16M pending timers
  static constexpr unsigned kClassBits = 3;  ///< dispatch class in the tag
  static constexpr unsigned kSeqShift = kSlotBits + kClassBits;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;
  static constexpr std::uint64_t kLowMask = (1ull << kSeqShift) - 1;
  static constexpr std::uint64_t kSeqLimit = 1ull << (64 - kSeqShift);
  static constexpr std::size_t kMaxLanes = 256;

  /// Heap entries carry their sort key inline so comparisons touch only the
  /// (contiguous, cache-resident) heap array: 16 bytes per entry — the
  /// timestamp, plus `tag` = (arming sequence << 27) | (class << 24) | slot,
  /// which breaks timestamp ties FIFO (the sequence occupies the high bits,
  /// so tag order is sequence order) and finds the slot and class without
  /// another load.
  struct heap_item {
    simtime_t when;
    std::uint64_t tag;
  };

  struct node {
    event_source* src = nullptr;
    std::uint32_t gen = 0;  ///< bumped on fire/cancel: stale handles die
  };

  /// One pending lane event: SoA-ish flat state (deadline, global arming
  /// seq, source, payload) in dispatch order within its ring.
  struct lane_entry {
    simtime_t when;
    std::uint64_t seq;
    event_source* src;
    std::uint64_t payload;
  };

  struct lane {
    lane(dispatch_class c, simtime_t d) : cls(c), delta(d) {}
    dispatch_class cls;
    simtime_t delta;
    std::uint32_t active_pos = UINT32_MAX;  ///< index in active_lanes_
    ring_fifo<lane_entry> fifo;
  };

  struct candidate {
    simtime_t when = 0;
    std::uint64_t seq = 0;
    std::uint32_t lane = kNoLane;  ///< kNoLane = heap top
    bool found = false;
  };

  /// Dispatch one candidate: a heap event, a flat lane run, or a single
  /// virtual lane event.
  void dispatch_candidate(const candidate& c) {
    if (c.lane == kNoLane) {
      dispatch_min();
      return;
    }
    const flat_batch_fn handler =
        flat_on_ ? handlers_[static_cast<std::size_t>(lanes_[c.lane]->cls)]
                 : nullptr;
    if (handler != nullptr) {
      (void)dispatch_lane_run(c.lane, c.when, handler);
    } else {
      dispatch_lane_one(c.lane);
    }
  }

  [[nodiscard]] static std::uint32_t slot_of(const heap_item& it) {
    return static_cast<std::uint32_t>(it.tag & kSlotMask);
  }

  [[nodiscard]] static bool before(const heap_item& a, const heap_item& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.tag < b.tag;  // higher bits are the arming sequence
  }

  /// Next tag for `slot`.  The 37-bit arming sequence lasts ~10^11 arms;
  /// when it would overflow, compact all pending sequences — heap and lanes
  /// share the counter — back to 0..n (their relative order, all that
  /// matters for ties, is preserved).
  [[nodiscard]] std::uint64_t next_tag(std::uint32_t slot,
                                       dispatch_class cls) {
    if (seq_ >= kSeqLimit) [[unlikely]] {
      renumber_tags();
    }
    return (seq_++ << kSeqShift) |
           (static_cast<std::uint64_t>(cls) << kSlotBits) | slot;
  }

  void renumber_tags() {
    struct ref {
      std::uint64_t seq;
      std::uint32_t lane;  ///< kNoLane = heap entry
      std::uint32_t index; ///< heap index or position within the lane ring
    };
    std::vector<ref> order;
    order.reserve(heap_.size() + lane_pending_);
    for (std::uint32_t i = 0; i < heap_.size(); ++i) {
      order.push_back(ref{heap_[i].tag >> kSeqShift, kNoLane, i});
    }
    for (std::uint32_t li = 0; li < lanes_.size(); ++li) {
      const ring_fifo<lane_entry>& f = lanes_[li]->fifo;
      for (std::uint32_t j = 0; j < f.size(); ++j) {
        order.push_back(ref{f.at(j).seq, li, j});
      }
    }
    std::sort(order.begin(), order.end(),
              [](const ref& a, const ref& b) { return a.seq < b.seq; });
    std::uint64_t next = 0;
    for (const ref& r : order) {
      if (r.lane == kNoLane) {
        heap_item& it = heap_[r.index];
        it.tag = (next << kSeqShift) | (it.tag & kLowMask);
      } else {
        lanes_[r.lane]->fifo.at(r.index).seq = next;
      }
      ++next;
    }
    seq_ = next;
  }

  // The slot->heap-position index lives in its own dense array (not in the
  // node table): sift moves store into it once per level, and a 4-byte
  // stride keeps those stores cache-resident even with tens of thousands of
  // pending timers.
  void place(const heap_item& item, std::uint32_t pos) {
    heap_[pos] = item;
    pos_[slot_of(item)] = pos;
  }

  void sift_up(std::uint32_t pos) {
    const heap_item item = heap_[pos];
    while (pos > 0) {
      const std::uint32_t parent = (pos - 1) / 2;
      if (!before(item, heap_[parent])) break;
      place(heap_[parent], pos);
      pos = parent;
    }
    place(item, pos);
  }

  void sift_down(std::uint32_t pos) {
    const heap_item item = heap_[pos];
    const std::uint32_t size = static_cast<std::uint32_t>(heap_.size());
    for (;;) {
      std::uint32_t child = 2 * pos + 1;
      if (child >= size) break;
      if (child + 1 < size && before(heap_[child + 1], heap_[child])) {
        ++child;
      }
      if (!before(heap_[child], item)) break;
      place(heap_[child], pos);
      pos = child;
    }
    place(item, pos);
  }

  [[nodiscard]] std::uint32_t alloc_slot() {
    if (free_slots_.empty()) {
      NDPSIM_ASSERT_MSG(nodes_.size() < kSlotMask, "too many pending events");
      nodes_.emplace_back();
      pos_.push_back(kFree);
      return static_cast<std::uint32_t>(nodes_.size() - 1);
    }
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }

  void free_slot(std::uint32_t slot) {
    pos_[slot] = kFree;
    ++nodes_[slot].gen;  // invalidates every outstanding handle to this slot
    free_slots_.push_back(slot);
  }

  /// Detach `slot` from the heap without freeing it.
  void remove_from_heap(std::uint32_t slot) {
    const std::uint32_t pos = pos_[slot];
    const std::uint32_t last = static_cast<std::uint32_t>(heap_.size() - 1);
    const heap_item moved = heap_.back();
    heap_.pop_back();
    if (pos != last) {
      // The item moved into the hole may belong either way from here.
      place(moved, pos);
      sift_up(pos);
      sift_down(pos_[slot_of(moved)]);
    }
  }

  void activate_lane(std::uint32_t lane_id) {
    lanes_[lane_id]->active_pos =
        static_cast<std::uint32_t>(active_lanes_.size());
    active_lanes_.push_back(lane_id);
  }

  void deactivate_lane(std::uint32_t lane_id) {
    lane& ln = *lanes_[lane_id];
    const std::uint32_t at = ln.active_pos;
    const std::uint32_t moved = active_lanes_.back();
    active_lanes_.pop_back();
    if (moved != lane_id) {
      active_lanes_[at] = moved;
      lanes_[moved]->active_pos = at;
    }
    ln.active_pos = UINT32_MAX;
  }

  /// Globally earliest pending event across the heap top and all lane heads
  /// — strict (when, seq) order, so the heap/lane split cannot reorder ties.
  [[nodiscard]] candidate peek_next() const {
    candidate c;
    if (!heap_.empty()) {
      c.when = heap_.front().when;
      c.seq = heap_.front().tag >> kSeqShift;
      c.lane = kNoLane;
      c.found = true;
    }
    for (const std::uint32_t li : active_lanes_) {
      const lane_entry& e = lanes_[li]->fifo.front();
      if (!c.found || e.when < c.when ||
          (e.when == c.when && e.seq < c.seq)) {
        c.when = e.when;
        c.seq = e.seq;
        c.lane = li;
        c.found = true;
      }
    }
    return c;
  }

  void dispatch_min() {
    const heap_item top = heap_.front();
    NDPSIM_ASSERT(top.when >= now_);
    now_ = top.when;
    const std::uint32_t slot = slot_of(top);
    event_source* src = nodes_[slot].src;
    // Pop: refill the root from the back of the heap and sift it down.
    const heap_item moved = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      place(moved, 0);
      sift_down(0);
    }
    free_slot(slot);
    ++processed_;
    ++stats_.heap_events;
    src->do_next_event();
  }

  /// Dispatch a lane's head entry virtually (per-entry `do_lane_event`).
  void dispatch_lane_one(std::uint32_t lane_id) {
    lane& ln = *lanes_[lane_id];
    const lane_entry e = ln.fifo.front();
    NDPSIM_ASSERT(e.when >= now_);
    ln.fifo.pop_front();
    --lane_pending_;
    if (ln.fifo.empty()) deactivate_lane(lane_id);
    now_ = e.when;
    ++processed_;
    ++stats_.lane_events;
    e.src->do_lane_event(e.payload);
  }

  /// Dispatch the maximal run of `lane_id` entries at time `t` whose
  /// sequences precede every other pending candidate at `t`, as one batch
  /// handler call.  The lane head must be the global minimum.  New events
  /// armed by the handler always get larger sequences than the harvested
  /// run, so harvesting before dispatching cannot reorder anything.
  std::size_t dispatch_lane_run(std::uint32_t lane_id, simtime_t t,
                                flat_batch_fn handler) {
    lane& ln = *lanes_[lane_id];
    // Smallest competing sequence at time t bounds the run.
    std::uint64_t bound = UINT64_MAX;
    if (!heap_.empty() && heap_.front().when == t) {
      bound = heap_.front().tag >> kSeqShift;
    }
    for (const std::uint32_t other : active_lanes_) {
      if (other == lane_id) continue;
      const lane_entry& e = lanes_[other]->fifo.front();
      if (e.when == t && e.seq < bound) bound = e.seq;
    }
    run_srcs_.clear();
    run_payloads_.clear();
    while (!ln.fifo.empty()) {
      const lane_entry& e = ln.fifo.front();
      if (e.when != t || e.seq >= bound) break;
      run_srcs_.push_back(e.src);
      run_payloads_.push_back(e.payload);
      ln.fifo.pop_front();
    }
    if (ln.fifo.empty()) deactivate_lane(lane_id);
    const std::size_t m = run_srcs_.size();
    NDPSIM_ASSERT(m > 0);
    lane_pending_ -= m;
    now_ = t;
    processed_ += m;
    stats_.lane_events += m;
    stats_.flat_events += m;
    ++stats_.flat_runs;
    handler(run_srcs_.data(), run_payloads_.data(), m);
    return m;
  }

  /// One same-timestamp batch; throws once more than `budget` events run.
  std::size_t run_batch_bounded(std::uint64_t budget) {
    candidate c = peek_next();
    if (!c.found) return 0;
    const simtime_t t = c.when;
    std::size_t n = 0;
    for (;;) {
      if (c.lane == kNoLane) {
        dispatch_min();
        ++n;
      } else {
        const flat_batch_fn handler =
            flat_on_
                ? handlers_[static_cast<std::size_t>(lanes_[c.lane]->cls)]
                : nullptr;
        if (handler != nullptr) {
          n += dispatch_lane_run(c.lane, t, handler);
        } else {
          dispatch_lane_one(c.lane);
          ++n;
        }
      }
      NDPSIM_ASSERT_MSG(n <= budget, "event budget exhausted");
      c = peek_next();
      if (!c.found || c.when != t) break;
    }
    return n;
  }

  std::vector<node> nodes_;
  std::vector<std::uint32_t> pos_;  ///< slot -> heap index, kFree if not pending
  std::vector<std::uint32_t> free_slots_;
  std::vector<heap_item> heap_;  ///< heap-ordered by (when, seq)

  std::vector<std::unique_ptr<lane>> lanes_;  ///< by lane id (stable)
  std::vector<std::uint32_t> active_lanes_;   ///< non-empty lanes, unordered
  std::size_t lane_pending_ = 0;

  std::array<flat_batch_fn, kNDispatchClasses> handlers_ = {};
  bool flat_on_ = true;
  dispatch_counters stats_;
  std::vector<event_source*> run_srcs_;      ///< batch harvest scratch
  std::vector<std::uint64_t> run_payloads_;  ///< batch harvest scratch

  simtime_t now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace ndpsim
