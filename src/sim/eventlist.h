// Discrete-event simulation kernel: a time-ordered queue of event sources.
//
// Usage: components derive from `event_source`, schedule themselves on the
// shared `event_list`, and get `do_next_event()` callbacks in time order.
// A source may have several pending events; sources that reschedule must be
// prepared for wake-ups they no longer need (check their own state).
#pragma once

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "sim/assert.h"
#include "sim/time.h"

namespace ndpsim {

class event_list;

/// Base class for anything that can be scheduled on the event list.
class event_source {
 public:
  event_source(event_list& events, std::string name)
      : events_(events), name_(std::move(name)) {}
  virtual ~event_source() = default;

  event_source(const event_source&) = delete;
  event_source& operator=(const event_source&) = delete;

  /// Called when a scheduled time for this source is reached.
  virtual void do_next_event() = 0;

  [[nodiscard]] event_list& events() const { return events_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  event_list& events_;
  std::string name_;
};

/// Min-heap of pending events; ties broken by insertion order (FIFO).
class event_list {
 public:
  event_list() = default;
  event_list(const event_list&) = delete;
  event_list& operator=(const event_list&) = delete;

  [[nodiscard]] simtime_t now() const { return now_; }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// Schedule `src` to run at absolute time `when` (must not be in the past).
  void schedule_at(event_source& src, simtime_t when) {
    NDPSIM_ASSERT_MSG(when >= now_, "cannot schedule into the past: " << when
                                                                      << " < "
                                                                      << now_);
    heap_.push(entry{when, seq_++, &src});
  }

  /// Schedule `src` to run `delta` picoseconds from now.
  void schedule_in(event_source& src, simtime_t delta) {
    NDPSIM_ASSERT(delta >= 0);
    schedule_at(src, now_ + delta);
  }

  /// Run the single earliest event. Returns false if none are pending.
  bool run_next_event() {
    if (heap_.empty()) return false;
    entry e = heap_.top();
    heap_.pop();
    NDPSIM_ASSERT(e.when >= now_);
    now_ = e.when;
    ++processed_;
    e.src->do_next_event();
    return true;
  }

  /// Run all events with time <= `horizon`; afterwards now() == horizon.
  void run_until(simtime_t horizon) {
    NDPSIM_ASSERT(horizon >= now_);
    while (!heap_.empty() && heap_.top().when <= horizon) {
      (void)run_next_event();
    }
    now_ = horizon;
  }

  /// Run until the event list drains (or `max_events` is hit, as a backstop
  /// against runaway simulations).
  void run_all(std::uint64_t max_events = UINT64_MAX) {
    std::uint64_t n = 0;
    while (run_next_event()) {
      NDPSIM_ASSERT_MSG(++n <= max_events, "event budget exhausted");
    }
  }

 private:
  struct entry {
    simtime_t when;
    std::uint64_t seq;
    event_source* src;
    // std::priority_queue is a max-heap; invert for earliest-first.
    [[nodiscard]] bool operator<(const entry& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  std::priority_queue<entry> heap_;
  simtime_t now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace ndpsim
