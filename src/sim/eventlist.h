// Discrete-event simulation kernel: a time-ordered queue of event sources.
//
// Usage: components derive from `event_source`, schedule themselves on the
// shared `event_list`, and get `do_next_event()` callbacks in time order.
// `schedule_at`/`schedule_in` return a `timer_handle` that can be cancelled
// or rescheduled in O(log n); a timer fires exactly once, at exactly the time
// it is (last) armed for.  There are no spurious wake-ups: a source that no
// longer needs a pending event cancels it instead of checking its own state
// when woken, and a source that needs an event at a different time moves the
// existing one instead of scheduling a second and ignoring the first.
//
// The queue is an indexed min-heap: every pending event knows its heap
// position (a dense slot->position side array), which is what makes cancel
// and reschedule cheap (decrease-key / delete instead of dead-entry
// accumulation).  Heap entries are 16 bytes — the timestamp plus the arming
// sequence and slot packed into one tagged word — so four of them share a
// cache line; measured against 4-ary and wider layouts, the binary heap with
// packed entries dispatches fastest on real event mixes.  Ties are broken by
// arming order (FIFO); rescheduling re-arms, i.e. moves the event behind
// others already pending at the new timestamp.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/assert.h"
#include "sim/name_ref.h"
#include "sim/time.h"

namespace ndpsim {

class event_list;

/// Base class for anything that can be scheduled on the event list.
class event_source {
 public:
  event_source(event_list& events, name_ref name)
      : events_(events), name_(std::move(name)) {}
  virtual ~event_source() = default;

  event_source(const event_source&) = delete;
  event_source& operator=(const event_source&) = delete;

  /// Called when a scheduled time for this source is reached.
  virtual void do_next_event() = 0;

  [[nodiscard]] event_list& events() const { return events_; }
  /// The component name, formatted on demand (see sim/name_ref.h).
  [[nodiscard]] std::string name() const { return name_.str(); }

 private:
  event_list& events_;
  name_ref name_;
};

/// Token for one pending event.  Trivially copyable; default-constructed
/// handles (and handles whose event has fired or been cancelled) are invalid,
/// and every `event_list` operation on an invalid handle is a safe no-op.
class timer_handle {
 public:
  timer_handle() = default;

 private:
  friend class event_list;
  static constexpr std::uint32_t kNone = UINT32_MAX;
  timer_handle(std::uint32_t slot, std::uint32_t gen)
      : slot_(slot), gen_(gen) {}
  std::uint32_t slot_ = kNone;
  std::uint32_t gen_ = 0;
};

/// Indexed min-heap of pending events; ties broken by arming order.
class event_list {
 public:
  event_list() = default;
  event_list(const event_list&) = delete;
  event_list& operator=(const event_list&) = delete;

  [[nodiscard]] simtime_t now() const { return now_; }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// Schedule `src` to run at absolute time `when` (must not be in the past).
  timer_handle schedule_at(event_source& src, simtime_t when) {
    NDPSIM_ASSERT_MSG(when >= now_, "cannot schedule into the past: " << when
                                                                      << " < "
                                                                      << now_);
    const std::uint32_t slot = alloc_slot();
    nodes_[slot].src = &src;
    const std::uint32_t at = static_cast<std::uint32_t>(heap_.size());
    pos_[slot] = at;
    heap_.push_back(heap_item{when, next_tag(slot)});
    sift_up(at);
    return timer_handle{slot, nodes_[slot].gen};
  }

  /// Schedule `src` to run `delta` picoseconds from now.
  timer_handle schedule_in(event_source& src, simtime_t delta) {
    NDPSIM_ASSERT(delta >= 0);
    return schedule_at(src, now_ + delta);
  }

  /// True while the handle's event is still pending (not fired, not
  /// cancelled).
  [[nodiscard]] bool is_pending(const timer_handle& h) const {
    return h.slot_ < nodes_.size() && nodes_[h.slot_].gen == h.gen_ &&
           pos_[h.slot_] != kFree;
  }

  /// The time a pending handle will fire at (handle must be pending).
  [[nodiscard]] simtime_t expiry(const timer_handle& h) const {
    NDPSIM_ASSERT(is_pending(h));
    return heap_[pos_[h.slot_]].when;
  }

  /// Remove a pending event.  Returns true if one was removed; invalid
  /// handles are a no-op.  Invalidates `h`.
  bool cancel(timer_handle& h) {
    if (!is_pending(h)) {
      h = timer_handle{};
      return false;
    }
    remove_from_heap(h.slot_);
    free_slot(h.slot_);
    h = timer_handle{};
    return true;
  }

  /// Move a pending event to `when`, or arm a fresh one for `src` if `h` is
  /// not pending.  The moved event is ordered behind events already pending
  /// at `when` (re-arming = new arming order).  Updates `h` in place.
  void reschedule(timer_handle& h, event_source& src, simtime_t when) {
    NDPSIM_ASSERT_MSG(when >= now_, "cannot schedule into the past: " << when
                                                                      << " < "
                                                                      << now_);
    if (!is_pending(h)) {
      h = schedule_at(src, when);
      return;
    }
    NDPSIM_ASSERT_MSG(nodes_[h.slot_].src == &src,
                      "rescheduling another source's timer");
    const std::uint32_t at = pos_[h.slot_];
    heap_item& item = heap_[at];
    const bool earlier = when < item.when;  // equal times sift down: seq grew
    item.when = when;
    item.tag = next_tag(h.slot_);
    if (earlier) {
      sift_up(at);
    } else {
      sift_down(at);
    }
  }

  /// Run the single earliest event. Returns false if none are pending.
  bool run_next_event() {
    if (heap_.empty()) return false;
    dispatch_min();
    return true;
  }

  /// Run every event sharing the earliest pending timestamp (including any
  /// that dispatching schedules at that same timestamp), as one heap
  /// pop-run.  Returns the number of events dispatched (0 if none pending).
  std::size_t run_next_batch() {
    if (heap_.empty()) return 0;
    const simtime_t t = heap_.front().when;
    std::size_t n = 0;
    while (!heap_.empty() && heap_.front().when == t) {
      dispatch_min();
      ++n;
    }
    return n;
  }

  /// Run all events with time <= `horizon`; afterwards now() == horizon.
  void run_until(simtime_t horizon) {
    NDPSIM_ASSERT(horizon >= now_);
    while (!heap_.empty() && heap_.front().when <= horizon) {
      (void)run_next_batch();
    }
    now_ = horizon;
  }

  /// Run until the event list drains (or `max_events` is hit, as a backstop
  /// against runaway simulations).  The budget is enforced per event, inside
  /// the batch, so a zero-delay self-rescheduling source still trips it.
  void run_all(std::uint64_t max_events = UINT64_MAX) {
    std::uint64_t n = 0;
    while (!heap_.empty()) {
      const simtime_t t = heap_.front().when;
      while (!heap_.empty() && heap_.front().when == t) {
        dispatch_min();
        NDPSIM_ASSERT_MSG(++n <= max_events, "event budget exhausted");
      }
    }
  }

 private:
  static constexpr std::uint32_t kFree = UINT32_MAX;
  static constexpr unsigned kSlotBits = 24;  ///< up to 16M pending timers
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;
  static constexpr std::uint64_t kSeqLimit = 1ull << (64 - kSlotBits);

  /// Heap entries carry their sort key inline so comparisons touch only the
  /// (contiguous, cache-resident) heap array: 16 bytes per entry — the
  /// timestamp, plus `tag` = (arming sequence << 24) | slot, which both
  /// breaks timestamp ties FIFO and finds the slot without another load.
  struct heap_item {
    simtime_t when;
    std::uint64_t tag;
  };

  struct node {
    event_source* src = nullptr;
    std::uint32_t gen = 0;  ///< bumped on fire/cancel: stale handles die
  };

  [[nodiscard]] static std::uint32_t slot_of(const heap_item& it) {
    return static_cast<std::uint32_t>(it.tag & kSlotMask);
  }

  [[nodiscard]] static bool before(const heap_item& a, const heap_item& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.tag < b.tag;  // higher bits are the arming sequence
  }

  /// Next tag for `slot`.  The 40-bit arming sequence lasts ~10^12 arms;
  /// when it would overflow, compact the pending entries' sequences back to
  /// 0..n (their relative order — all that matters for ties — is preserved).
  [[nodiscard]] std::uint64_t next_tag(std::uint32_t slot) {
    if (seq_ >= kSeqLimit) [[unlikely]] {
      renumber_tags();
    }
    return (seq_++ << kSlotBits) | slot;
  }

  void renumber_tags() {
    std::vector<std::uint32_t> order(heap_.size());
    for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                return heap_[a].tag < heap_[b].tag;
              });
    std::uint64_t next = 0;
    for (const std::uint32_t i : order) {
      heap_[i].tag = (next++ << kSlotBits) | slot_of(heap_[i]);
    }
    seq_ = next;
  }

  // The slot->heap-position index lives in its own dense array (not in the
  // node table): sift moves store into it once per level, and a 4-byte
  // stride keeps those stores cache-resident even with tens of thousands of
  // pending timers.
  void place(const heap_item& item, std::uint32_t pos) {
    heap_[pos] = item;
    pos_[slot_of(item)] = pos;
  }

  void sift_up(std::uint32_t pos) {
    const heap_item item = heap_[pos];
    while (pos > 0) {
      const std::uint32_t parent = (pos - 1) / 2;
      if (!before(item, heap_[parent])) break;
      place(heap_[parent], pos);
      pos = parent;
    }
    place(item, pos);
  }

  void sift_down(std::uint32_t pos) {
    const heap_item item = heap_[pos];
    const std::uint32_t size = static_cast<std::uint32_t>(heap_.size());
    for (;;) {
      std::uint32_t child = 2 * pos + 1;
      if (child >= size) break;
      if (child + 1 < size && before(heap_[child + 1], heap_[child])) {
        ++child;
      }
      if (!before(heap_[child], item)) break;
      place(heap_[child], pos);
      pos = child;
    }
    place(item, pos);
  }

  [[nodiscard]] std::uint32_t alloc_slot() {
    if (free_slots_.empty()) {
      NDPSIM_ASSERT_MSG(nodes_.size() < kSlotMask, "too many pending events");
      nodes_.emplace_back();
      pos_.push_back(kFree);
      return static_cast<std::uint32_t>(nodes_.size() - 1);
    }
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }

  void free_slot(std::uint32_t slot) {
    pos_[slot] = kFree;
    ++nodes_[slot].gen;  // invalidates every outstanding handle to this slot
    free_slots_.push_back(slot);
  }

  /// Detach `slot` from the heap without freeing it.
  void remove_from_heap(std::uint32_t slot) {
    const std::uint32_t pos = pos_[slot];
    const std::uint32_t last = static_cast<std::uint32_t>(heap_.size() - 1);
    const heap_item moved = heap_[last];
    heap_.pop_back();
    if (pos != last) {
      // The item moved into the hole may belong either way from here.
      place(moved, pos);
      sift_up(pos);
      sift_down(pos_[slot_of(moved)]);
    }
  }

  void dispatch_min() {
    const heap_item top = heap_.front();
    NDPSIM_ASSERT(top.when >= now_);
    now_ = top.when;
    const std::uint32_t slot = slot_of(top);
    event_source* src = nodes_[slot].src;
    // Pop: refill the root from the back of the heap and sift it down.
    const heap_item moved = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      place(moved, 0);
      sift_down(0);
    }
    free_slot(slot);
    ++processed_;
    src->do_next_event();
  }

  std::vector<node> nodes_;
  std::vector<std::uint32_t> pos_;  ///< slot -> heap index, kFree if not pending
  std::vector<std::uint32_t> free_slots_;
  std::vector<heap_item> heap_;  ///< heap-ordered by (when, seq)
  simtime_t now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace ndpsim
