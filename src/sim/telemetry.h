// The telemetry plane: flat per-slot counters + an epoch-driven collector.
//
// Counters live in one pre-sized flat array indexed by the fabric
// blueprint's dense sink-slot ids (topo/fabric_blueprint.h slot layout:
// [queue, pipe, pfc?] per directed link, then one demux slot per host), so
// arming telemetry costs no per-component allocation and a hot-path update
// is a single indexed increment on a pointer the component cached at arm
// time.  Components hand-built outside a blueprint (tests, manual wiring)
// append slots past the blueprint range via `add_slot`.
//
// The zero-cost-off contract, in three tiers:
//  * compile-time off (cmake -DNDPSIM_TELEMETRY=OFF): every increment site
//    expands to nothing — literally zero instructions in the packet path;
//  * armed-capable but off (the default): each component holds a
//    `telemetry_hot_counters* tele_` that stays nullptr until a plane is
//    attached to the `sim_env` *before* fabric construction, so the only
//    residue is one never-taken predictable branch per site — bench_eventcore's
//    `telemetry` section gates that this is within noise of the committed
//    baseline;
//  * on: one pointer-indirect increment per counted event, gated at <=10%
//    end-to-end overhead on the k=16 NDP permutation.
//
// Telemetry is OBSERVATIONAL ONLY: it never schedules differently, never
// touches the RNG, never changes a packet.  tests/test_flat_dispatch.cpp
// pins that with bitwise FCT identity on-vs-off across all six transports,
// and tests/test_telemetry.cpp checks the counters against conservation
// laws (enqueued == dequeued + dropped + bounced + resident, and the byte
// equivalent including trimmed-away payload).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/assert.h"
#include "sim/eventlist.h"
#include "sim/name_ref.h"

namespace ndpsim {

/// Guard for a hot-path telemetry update.  Convention: the enclosing class
/// keeps its armed slot's hot half as a member named `tele_` (nullptr =
/// off) and, if it has rare events to count, the rare half as `tele_rare_`
/// (armed and disarmed together, so the one null check guards both):
///   NDPSIM_TELE(++tele_->enq_pkts; tele_->enq_bytes += p.size_bytes);
///   NDPSIM_TELE(++tele_rare_->drop_pkts);
/// With NDPSIM_TELEMETRY_DISABLED the macro (and thus every site) compiles
/// to nothing.
#ifdef NDPSIM_TELEMETRY_DISABLED
#define NDPSIM_TELE(...) \
  do {                   \
  } while (false)
#else
#define NDPSIM_TELE(...)      \
  do {                        \
    if (tele_ != nullptr) {   \
      __VA_ARGS__;            \
    }                         \
  } while (false)
#endif

/// Hot half of a slot's counters: the four fields every accepted packet
/// (enq) and every completion/delivery (deq) touches.  Kept in their own
/// dense 32-byte-per-slot array so the armed fast path dirties exactly one
/// cache line per update, two slots share each line (a link's queue and
/// pipe slots are blueprint neighbours), and the whole hot array stays
/// small enough to live in L2 beside the simulator's working set — the
/// hot/rare split is what holds armed overhead inside the <=10% budget
/// (bench_eventcore's `telemetry` section gates it).  Written only by the
/// owning component; monotone non-decreasing, so epoch deltas are always
/// well-defined.
struct alignas(32) telemetry_hot_counters {
  std::uint64_t enq_pkts = 0;
  std::uint64_t enq_bytes = 0;
  std::uint64_t deq_pkts = 0;
  std::uint64_t deq_bytes = 0;

  void add(const telemetry_hot_counters& o) {
    enq_pkts += o.enq_pkts;
    enq_bytes += o.enq_bytes;
    deq_pkts += o.deq_pkts;
    deq_bytes += o.deq_bytes;
  }

  bool operator==(const telemetry_hot_counters&) const = default;
};
static_assert(sizeof(telemetry_hot_counters) == 32);

/// Rare half: drops, trims, bounces, ECN marks, stale deliveries — updated
/// only when those events occur, so they live in a separate (cold) array
/// and cost the every-packet path nothing.
struct telemetry_rare_counters {
  std::uint64_t drop_pkts = 0;
  std::uint64_t drop_bytes = 0;
  std::uint64_t trim_pkts = 0;
  std::uint64_t trim_bytes = 0;  ///< payload bytes removed by trimming
  std::uint64_t bounce_pkts = 0;
  std::uint64_t bounce_bytes = 0;
  std::uint64_t mark_pkts = 0;  ///< ECN CE marks applied here
  std::uint64_t stale_drops = 0;  ///< demux only: unbound-flow deliveries

  void add(const telemetry_rare_counters& o) {
    drop_pkts += o.drop_pkts;
    drop_bytes += o.drop_bytes;
    trim_pkts += o.trim_pkts;
    trim_bytes += o.trim_bytes;
    bounce_pkts += o.bounce_pkts;
    bounce_bytes += o.bounce_bytes;
    mark_pkts += o.mark_pkts;
    stale_drops += o.stale_drops;
  }

  bool operator==(const telemetry_rare_counters&) const = default;
};

/// The pair of armed pointers a component caches: both halves of one slot,
/// set and cleared together (the hot pointer doubles as the armed flag).
struct telemetry_slot {
  telemetry_hot_counters* hot = nullptr;
  telemetry_rare_counters* rare = nullptr;
};

/// One slot's combined counters — the analysis-side view (collector
/// snapshots, JSON emission, tests).  Storage-wise the plane keeps the two
/// halves split (see telemetry_hot_counters); this struct is materialized
/// on read.
///
/// Semantics per component kind:
///  * queue: enq = packets accepted by `receive` (at arrival size);
///    deq = serialization completions (at departure size); drop/bounce as
///    counted by the queue; trim_pkts = in-place payload truncations, with
///    `trim_bytes` the payload removed (the packet itself stays resident,
///    so bytes conservation is
///    enq_bytes == deq_bytes + drop_bytes + bounce_bytes + trim_bytes +
///    resident_bytes);
///  * pipe: enq = packets entering the wire, deq = deliveries at the far
///    end (equal once drained — a pipe never drops);
///  * demux: enq = terminal deliveries, deq = packets handed to a bound
///    endpoint, stale_drops = deliveries for recycled/unbound flows
///    (enq_pkts == deq_pkts + stale_drops).
struct telemetry_counters {
  std::uint64_t enq_pkts = 0;
  std::uint64_t enq_bytes = 0;
  std::uint64_t deq_pkts = 0;
  std::uint64_t deq_bytes = 0;

  std::uint64_t drop_pkts = 0;
  std::uint64_t drop_bytes = 0;
  std::uint64_t trim_pkts = 0;
  std::uint64_t trim_bytes = 0;  ///< payload bytes removed by trimming
  std::uint64_t bounce_pkts = 0;
  std::uint64_t bounce_bytes = 0;
  std::uint64_t mark_pkts = 0;  ///< ECN CE marks applied here
  std::uint64_t stale_drops = 0;  ///< demux only: unbound-flow deliveries

  [[nodiscard]] bool idle() const {
    return enq_pkts == 0 && deq_pkts == 0 && drop_pkts == 0 &&
           stale_drops == 0;
  }

  bool operator==(const telemetry_counters&) const = default;
};

/// Zip the two halves into the combined view (either pointer may be null —
/// an unarmed component reads as all-zero).
[[nodiscard]] inline telemetry_counters combine_telemetry(
    const telemetry_hot_counters* h, const telemetry_rare_counters* r) {
  telemetry_counters c;
  if (h != nullptr) {
    c.enq_pkts = h->enq_pkts;
    c.enq_bytes = h->enq_bytes;
    c.deq_pkts = h->deq_pkts;
    c.deq_bytes = h->deq_bytes;
  }
  if (r != nullptr) {
    c.drop_pkts = r->drop_pkts;
    c.drop_bytes = r->drop_bytes;
    c.trim_pkts = r->trim_pkts;
    c.trim_bytes = r->trim_bytes;
    c.bounce_pkts = r->bounce_pkts;
    c.bounce_bytes = r->bounce_bytes;
    c.mark_pkts = r->mark_pkts;
    c.stale_drops = r->stale_drops;
  }
  return c;
}

/// What kind of component owns a slot (drives which conservation law and
/// which JSON series apply to it).
enum class telemetry_kind : std::uint8_t {
  other = 0,
  queue,
  pipe,
  demux,
};

[[nodiscard]] const char* to_string(telemetry_kind k);

/// Registry + counter storage for one simulation.  Pre-sized to the
/// blueprint's slot count; `arm` marks a slot live and returns the pointer
/// the component caches.  Slots past the blueprint range (hand-built
/// components) are appended by `add_slot`.
///
/// The plane is plain memory — no events, no locks.  Under
/// `parallel_runner` each job owns a private plane; `merge_from` folds job
/// planes together on join (counter sums; the slot layout must match, which
/// it does whenever the jobs share one blueprint).
class telemetry_plane {
 public:
  struct slot_info {
    telemetry_kind kind = telemetry_kind::other;
    std::uint8_t level = 0;       ///< link_level cast for queue/pipe slots
    std::uint64_t rate_bps = 0;   ///< queue slots: link rate (utilization)
    bool armed = false;
  };

  /// `names` (optional) formats slot names on demand — a
  /// `fabric_blueprint` is a `name_pool` whose ids are exactly these slot
  /// ids.  Must outlive the plane if given.
  explicit telemetry_plane(std::size_t n_slots,
                           const name_pool* names = nullptr)
      : hot_(n_slots), rare_(n_slots), info_(n_slots), names_(names) {}

  /// Mark `slot` live and return its counter halves.  The pointers are
  /// stable once registration is done: `add_slot` may reallocate the
  /// arrays, so all arming happens during construction (see add_slot's
  /// note) and cached pointers are only dereferenced afterwards.
  telemetry_slot arm(std::uint32_t slot, telemetry_kind kind,
                     std::uint8_t level = 0, std::uint64_t rate_bps = 0) {
    NDPSIM_ASSERT_MSG(slot < hot_.size(),
                      "telemetry slot " << slot << " out of range");
    info_[slot] = slot_info{kind, level, rate_bps, true};
    return telemetry_slot{&hot_[slot], &rare_[slot]};
  }

  /// Append a slot past the pre-sized range for a component built outside
  /// the blueprint (manual wiring, tests).  NOTE: appending may reallocate
  /// the counter arrays, so all `add_slot`/`arm` calls must happen before
  /// any armed pointer is used — i.e. during construction, which is when
  /// every registration site runs.
  std::uint32_t add_slot(telemetry_kind kind, std::uint8_t level = 0,
                         std::uint64_t rate_bps = 0) {
    const auto slot = static_cast<std::uint32_t>(hot_.size());
    hot_.emplace_back();
    rare_.emplace_back();
    info_.push_back(slot_info{kind, level, rate_bps, true});
    return slot;
  }
  [[nodiscard]] telemetry_slot slot_counters(std::uint32_t slot) {
    NDPSIM_ASSERT(slot < hot_.size());
    return telemetry_slot{&hot_[slot], &rare_[slot]};
  }

  [[nodiscard]] std::size_t n_slots() const { return hot_.size(); }
  [[nodiscard]] telemetry_counters counters(std::uint32_t slot) const {
    NDPSIM_ASSERT(slot < hot_.size());
    return combine_telemetry(&hot_[slot], &rare_[slot]);
  }
  [[nodiscard]] const slot_info& info(std::uint32_t slot) const {
    NDPSIM_ASSERT(slot < info_.size());
    return info_[slot];
  }
  /// Raw counter halves — contiguous, so a collector snapshot is two
  /// straight vector copies rather than a per-slot gather.
  [[nodiscard]] const std::vector<telemetry_hot_counters>& hot_counters()
      const {
    return hot_;
  }
  [[nodiscard]] const std::vector<telemetry_rare_counters>& rare_counters()
      const {
    return rare_;
  }
  [[nodiscard]] std::string slot_name(std::uint32_t slot) const {
    if (names_ != nullptr) return names_->format_name(slot);
    return "slot" + std::to_string(slot);
  }
  [[nodiscard]] const name_pool* names() const { return names_; }

  /// Fold another job's plane into this one (counter sums).  Slot layouts
  /// must match — true for sweeps sharing one blueprint.
  void merge_from(const telemetry_plane& other);

  /// Sum of every armed slot's counters of `kind` — the campaign-scale
  /// spill view: a whole plane reduced to one `telemetry_counters` per
  /// component kind (stats/fct_summary.h), so thousand-job sweeps keep a
  /// few hundred bytes per job instead of the full per-slot arrays.
  [[nodiscard]] telemetry_counters totals(telemetry_kind kind) const;
  /// Number of armed slots (any kind).
  [[nodiscard]] std::size_t armed_slots() const;

  /// Exact counter equality across every slot (serial-vs-parallel checks).
  [[nodiscard]] bool counters_equal(const telemetry_plane& other) const {
    return hot_ == other.hot_ && rare_ == other.rare_;
  }

 private:
  std::vector<telemetry_hot_counters> hot_;    ///< [slot id]
  std::vector<telemetry_rare_counters> rare_;  ///< [slot id]
  std::vector<slot_info> info_;                ///< [slot id]
  const name_pool* names_ = nullptr;
};

/// Epoch-driven sampler: a rescheduled heap timer that snapshots the
/// plane's counter array into a bounded ring of epochs.  Time series
/// (queue depth, link utilization, mark/stale rates) are *derived* from
/// cumulative-counter deltas between epochs, so the collector never reads
/// component state — it cannot perturb the simulation beyond its own timer
/// events, and those ride the generic heap class which flat dispatch never
/// batches.
///
/// The ring keeps the most recent `capacity` epochs; `dropped_epochs`
/// reports how many older ones were overwritten (no silent truncation).
class telemetry_collector final : public event_source {
 public:
  struct epoch_snapshot {
    simtime_t at = 0;
    std::vector<telemetry_hot_counters> hot;
    std::vector<telemetry_rare_counters> rare;
    /// Combined view of one slot as of this epoch.
    [[nodiscard]] telemetry_counters counters(std::uint32_t slot) const {
      return combine_telemetry(&hot[slot], &rare[slot]);
    }
  };

  telemetry_collector(event_list& events, telemetry_plane& plane,
                      simtime_t epoch, std::size_t capacity = 256)
      : event_source(events, "telemetry_collector"),
        plane_(plane),
        epoch_(epoch),
        capacity_(capacity) {
    NDPSIM_ASSERT(epoch > 0 && capacity > 0);
    ring_.reserve(capacity_);
  }
  ~telemetry_collector() override { stop(); }

  /// Take the t=now baseline snapshot and start the epoch timer.
  void start() {
    if (events().is_pending(timer_)) return;
    snapshot();
    timer_ = events().schedule_in(*this, epoch_);
  }
  void stop() { (void)events().cancel(timer_); }

  /// One final snapshot at the current time (end-of-run bookend); safe to
  /// call after the event loop drained.
  void finish() {
    stop();
    if (n_recorded_ == 0 || epoch_at(n_epochs() - 1).at != events().now()) {
      snapshot();
    }
  }

  void do_next_event() override {
    snapshot();
    timer_ = events().schedule_in(*this, epoch_);
  }

  [[nodiscard]] const telemetry_plane& plane() const { return plane_; }
  [[nodiscard]] simtime_t epoch() const { return epoch_; }
  /// Epochs currently held (<= capacity), oldest first.
  [[nodiscard]] std::size_t n_epochs() const { return ring_.size(); }
  [[nodiscard]] const epoch_snapshot& epoch_at(std::size_t i) const {
    NDPSIM_ASSERT(i < ring_.size());
    return ring_[(head_ + i) % ring_.size()];
  }
  /// Total snapshots ever taken (>= n_epochs once the ring wrapped).
  [[nodiscard]] std::uint64_t recorded_epochs() const { return n_recorded_; }
  [[nodiscard]] std::uint64_t dropped_epochs() const {
    return n_recorded_ - ring_.size();
  }

 private:
  void snapshot() {
    epoch_snapshot* s;
    if (ring_.size() < capacity_) {
      ring_.emplace_back();
      s = &ring_.back();
    } else {
      s = &ring_[head_];
      head_ = (head_ + 1) % capacity_;
    }
    s->at = events().now();
    // Two contiguous vector copies; once the ring has wrapped they reuse
    // the evicted epoch's storage.
    s->hot = plane_.hot_counters();
    s->rare = plane_.rare_counters();
    ++n_recorded_;
  }

  telemetry_plane& plane_;
  simtime_t epoch_;
  std::size_t capacity_;
  std::vector<epoch_snapshot> ring_;
  std::size_t head_ = 0;  ///< index of the oldest epoch once wrapped
  std::uint64_t n_recorded_ = 0;
  timer_handle timer_;
};

}  // namespace ndpsim
