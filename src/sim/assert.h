// Always-on invariant checking for the simulator.
//
// Simulation bugs manifest as silently wrong results, so invariant checks stay
// enabled in release builds.  Violations throw `simulation_error` so tests can
// assert on them; they are never expected in a correct run.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace ndpsim {

class simulation_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " (" << msg << ")";
  throw simulation_error(os.str());
}
}  // namespace detail

}  // namespace ndpsim

#define NDPSIM_ASSERT(expr)                                              \
  do {                                                                   \
    if (!(expr))                                                         \
      ::ndpsim::detail::assert_fail(#expr, __FILE__, __LINE__, {});      \
  } while (0)

#define NDPSIM_ASSERT_MSG(expr, msg)                                     \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream os_;                                            \
      os_ << msg;                                                        \
      ::ndpsim::detail::assert_fail(#expr, __FILE__, __LINE__, os_.str()); \
    }                                                                    \
  } while (0)
