// Lazily-formatted component names.
//
// At k=32 a FatTree materializes ~100k queue/pipe objects; formatting and
// heap-allocating a `std::string` name for each dominated fabric
// construction even though names are only ever read when a human asks
// (debugging, traces).  A `name_ref` defers that work: it is either a small
// owned string (hand-built wiring keeps passing literals and concatenations,
// unchanged) or a `(pool, id)` pair that formats on demand from an interned
// pool — the `fabric_blueprint` implements `name_pool` and formats a name
// from its link records, so constructing a queue from a blueprint costs no
// formatting and no allocation.
//
// `name_ref` converts implicitly both ways (`std::string` -> `name_ref` and
// `name_ref` -> `std::string`), so legacy queue factories written against
// `const std::string&` keep working: the conversion formats eagerly at the
// factory boundary, which is exactly the old behaviour.
#pragma once

#include <cstdint>
#include <string>

namespace ndpsim {

/// Anything that can format a component name from an interned id.
class name_pool {
 public:
  virtual ~name_pool() = default;
  [[nodiscard]] virtual std::string format_name(std::uint32_t id) const = 0;
};

class name_ref {
 public:
  name_ref() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): by-design implicit, see above
  name_ref(std::string owned) : owned_(std::move(owned)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  name_ref(const char* owned) : owned_(owned) {}
  /// Lazy name: formatted by `pool` on demand.  The pool must outlive every
  /// component named from it (the blueprint/instance lifetime contract).
  name_ref(const name_pool& pool, std::uint32_t id) : pool_(&pool), id_(id) {}

  /// Format (lazy refs) or copy (owned refs) the name.
  [[nodiscard]] std::string str() const {
    return pool_ != nullptr ? pool_->format_name(id_) : owned_;
  }
  // NOLINTNEXTLINE(google-explicit-constructor): legacy factories take
  // `const std::string&`; the conversion reproduces their eager formatting.
  operator std::string() const { return str(); }

  [[nodiscard]] bool lazy() const { return pool_ != nullptr; }

 private:
  const name_pool* pool_ = nullptr;
  std::uint32_t id_ = 0;
  std::string owned_;
};

}  // namespace ndpsim
