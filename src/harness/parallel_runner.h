// Parallel scenario runner: fans a vector of experiment configs across a
// thread pool.
//
// Each job gets its own `sim_env` seeded only from its config, so a config's
// result is a pure function of that config — bitwise identical whether the
// sweep runs serially, on 2 threads or on 64, and in the same order either
// way (results are stored by config index, not completion order).  This is
// the scale-out story for the paper's figure sweeps: a 430-node FatTree
// permutation is single-threaded by design, but every figure is many
// independent scenarios, and those embarrass themselves in parallel.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <memory>

#include "net/sim_env.h"
#include "sim/telemetry.h"
#include "stats/fct_recorder.h"

namespace ndpsim {

/// One scenario in a sweep: a label plus the seed that fully determines it.
struct experiment_config {
  std::string name;
  std::uint64_t seed = 1;
  std::int64_t param = 0;   ///< free-form scenario knob (fan-in, size, ...)
  double param2 = 0.0;      ///< second knob where one is not enough
};

/// What came back from one scenario.
///
/// Move-enabled by contract: the streaming collection path
/// (`run_streaming`) hands each outcome to the sink by rvalue so the
/// recorder's flow records and the telemetry plane transfer ownership
/// instead of being copied — a campaign sink reduces and drops them
/// without the payload ever existing twice.  Copying stays available for
/// the keep-everything `run` path.
struct experiment_outcome {
  experiment_config config;
  fct_recorder fcts;
  std::uint64_t events_processed = 0;
  simtime_t sim_end = 0;         ///< simulated time the run finished at
  double wall_seconds = 0;
  double events_per_sec = 0;
  /// The job's telemetry plane, if the body attached one to its env
  /// (salvaged before the per-job env dies).  Null when telemetry was off.
  std::shared_ptr<telemetry_plane> telemetry;

  experiment_outcome() = default;
  experiment_outcome(experiment_outcome&&) noexcept = default;
  experiment_outcome& operator=(experiment_outcome&&) noexcept = default;
  experiment_outcome(const experiment_outcome&) = default;
  experiment_outcome& operator=(const experiment_outcome&) = default;
};

/// The body of an experiment: build everything from `env` (already seeded
/// from the config), record completions into `fcts`.
using experiment_fn =
    std::function<void(const experiment_config&, sim_env& env,
                       fct_recorder& fcts)>;

/// Streaming consumer of finished jobs: called ON THE WORKER THREAD, once
/// per completed config, with the outcome moved in.  `index` is the
/// config's position in the sweep (jobs complete in claim order, which is
/// nondeterministic — the outcome's *content* is not; see the runner doc).
/// The sink owns whatever synchronization it needs; distinct calls for the
/// same sink may race only through the sink itself.
using outcome_sink =
    std::function<void(std::size_t index, experiment_outcome&& out)>;

class parallel_runner {
 public:
  /// `threads == 0` uses the hardware concurrency (min 1).
  explicit parallel_runner(unsigned threads = 0);

  /// Run `body` once per config.  Blocks until the whole sweep is done;
  /// outcome[i] corresponds to configs[i].  Keeps every outcome alive at
  /// once — for sweeps too long for that, use `run_streaming`.
  [[nodiscard]] std::vector<experiment_outcome> run(
      const std::vector<experiment_config>& configs,
      const experiment_fn& body) const;

  /// Bounded-memory variant: each finished job is moved into `sink` on the
  /// worker thread and then dropped, so peak memory tracks the number of
  /// *active* jobs (<= threads), not the sweep length.  `stop`, when
  /// non-null and set, keeps workers from claiming further configs (jobs
  /// already running finish and reach the sink) — the campaign engine's
  /// interruption hook.  Blocks until all claimed jobs are done; rethrows
  /// the first failed config's exception after the pool joins.
  void run_streaming(const std::vector<experiment_config>& configs,
                     const experiment_fn& body, const outcome_sink& sink,
                     const std::atomic<bool>* stop = nullptr) const;

  [[nodiscard]] unsigned threads() const { return threads_; }

 private:
  unsigned threads_;
};

/// All completed flows of a sweep folded into one recorder (outcome order,
/// which is config order — deterministic).
[[nodiscard]] fct_recorder merge_fcts(
    const std::vector<experiment_outcome>& outcomes);

/// Per-job telemetry planes folded into one by counter summation (outcome
/// order; jobs without a plane are skipped).  All planes present must share
/// one slot layout — true whenever the sweep's jobs instantiate the same
/// blueprint.  Returns null when no job carried telemetry.  Because each
/// job is a pure function of its config, the merged plane is bitwise
/// identical however the sweep was scheduled (asserted by
/// tests/test_telemetry.cpp).
[[nodiscard]] std::shared_ptr<telemetry_plane> merge_telemetry(
    const std::vector<experiment_outcome>& outcomes);

}  // namespace ndpsim
