// Uniform flow handle across all transports, plus the factory that wires
// endpoints to topology routes (including per-host NDP pull pacers and pHost
// token pacers).
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "harness/queue_factory.h"
#include "ndp/ndp_sink.h"
#include "ndp/ndp_source.h"
#include "ndp/pull_pacer.h"
#include "phost/phost.h"
#include "topo/topology.h"

namespace ndpsim {

struct flow_options {
  std::uint64_t bytes = 0;  ///< 0 = unbounded
  simtime_t start = 0;
  std::uint32_t mss_bytes = 9000;
  // NDP
  std::uint32_t iw_packets = 30;
  std::uint8_t pull_class = 0;
  path_mode mode = path_mode::permutation;
  bool path_penalty = true;
  simtime_t ndp_rto = from_ms(1.0);
  // TCP family
  simtime_t min_rto = from_ms(200.0);
  bool handshake = true;
  std::uint32_t tcp_iw_mss = 2;
  std::uint32_t max_cwnd_mss = 1000;
  unsigned subflows = 8;  ///< MPTCP
  // Path selection
  /// Cap on multipath set size (0 = automatic).  When capped, the subset is
  /// a seeded random sample (not the first n indices, which would bias every
  /// flow onto the low core/agg switches), so two flows on the same pair can
  /// spread over different subsets.
  ///
  /// Automatic (0) means all paths on small fabrics, but on large fabrics
  /// (>= flow_factory::kAutoCapHosts hosts, i.e. fat trees of k >= 32) it
  /// defaults to kAutoCapPaths = 16: at that scale a pair has 256+ core
  /// paths, and spraying over a seeded 16-subset is statistically
  /// indistinguishable for load balance while keeping per-flow path-set
  /// working memory (and structural interning) bounded.  Pass SIZE_MAX (or
  /// any cap >= the pair's path count) to force the full set.
  std::size_t max_paths = 0;
  int fixed_path = -1;        ///< force single-path protocols onto this path
};

/// Handle for one transfer, whatever the transport underneath.
class flow {
 public:
  virtual ~flow() = default;
  [[nodiscard]] virtual std::uint64_t payload_received() const = 0;
  [[nodiscard]] virtual bool complete() const = 0;
  [[nodiscard]] virtual simtime_t completion_time() const = 0;
  virtual void on_complete(std::function<void()> cb) = 0;
  /// Uniform teardown hook: disconnect every transport endpoint underneath
  /// (cancel pending timers, leave shared pacer rings, unbind the
  /// `flow_demux` entries at both hosts).  Idempotent; called by
  /// `flow_factory::destroy` before the flow object is freed, so teardown is
  /// explicit rather than destructor-order-dependent.
  virtual void retire() = 0;
  /// Receiver-side priority (NDP pull classes); no-op elsewhere.
  virtual void set_priority(std::uint8_t /*cls*/) {}
  /// Per-packet delivery latency samples (NDP only).
  virtual void set_latency_callback(std::function<void(simtime_t)> /*cb*/) {}
  /// Protocol-specific escapes for stats collection (null when not NDP).
  [[nodiscard]] virtual ndp_source* ndp_src() { return nullptr; }
  [[nodiscard]] virtual ndp_sink* ndp_snk() { return nullptr; }

  std::uint32_t id = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint64_t bytes = 0;
  simtime_t start_time = 0;
  /// The borrowed multipath view the connection runs over; kept on the
  /// handle so `flow_factory::destroy` can return pooled subset arrays to
  /// the path table after the transports are disconnected.
  path_set paths;

  /// Completion time relative to the flow's start, in microseconds.
  [[nodiscard]] double fct_us() const {
    return complete() ? to_us(completion_time() - start_time) : -1.0;
  }

 private:
  friend class flow_factory;
  std::uint32_t slot_ = UINT32_MAX;  ///< index in the factory's flow table
  std::uint32_t id_span_ = 1;        ///< ids consumed (MPTCP uses a block)
};

class flow_factory {
 public:
  /// Fabric size at which `flow_options::max_paths == 0` stops meaning "all
  /// paths" and defaults to kAutoCapPaths (k=32 fat tree has 8192 hosts).
  static constexpr std::size_t kAutoCapHosts = 4096;
  static constexpr std::size_t kAutoCapPaths = 16;

  flow_factory(sim_env& env, topology& topo) : env_(env), topo_(topo) {}

  /// The multipath cap `create` will apply for the given options: the
  /// explicit cap if set, else the automatic large-fabric default.
  [[nodiscard]] std::size_t effective_max_paths(const flow_options& opts) const {
    if (opts.max_paths != 0) return opts.max_paths;
    return topo_.n_hosts() >= kAutoCapHosts ? kAutoCapPaths : 0;
  }

  /// Create (and own) a flow of `proto` from `src` to `dst`.
  flow& create(protocol proto, std::uint32_t src, std::uint32_t dst,
               const flow_options& opts);

  /// Create/destroy symmetry (flow recycling): retire the flow's transports
  /// (cancel timers, leave pacer rings, unbind demux entries), return its
  /// pooled path subset to the topology's path table, free the flow object
  /// and recycle its id (block) for a future `create`.  The reference — and
  /// every pointer to the flow — is dead after this call.  Must not be
  /// called from inside one of the flow's own callbacks (defer to a
  /// scheduled event; `flow_recycler` does).
  void destroy(flow& f);

  /// The shared per-host pull pacer (created on demand).
  [[nodiscard]] pull_pacer& ndp_pacer(std::uint32_t host);
  [[nodiscard]] phost_token_pacer& phost_pacer(std::uint32_t host);

  /// Flow table: destroyed flows leave null holes that a future `create`
  /// refills, so indexes are stable but entries can be null — skip them when
  /// iterating.
  [[nodiscard]] const std::vector<std::unique_ptr<flow>>& flows() const {
    return flows_;
  }
  [[nodiscard]] std::uint64_t total_payload_received() const;
  [[nodiscard]] std::size_t completed_count() const;
  /// Currently live (created, not destroyed) flows.
  [[nodiscard]] std::size_t live_count() const { return live_; }
  /// Flows destroyed over the factory's lifetime.
  [[nodiscard]] std::uint64_t destroyed_count() const { return destroyed_; }

 private:
  sim_env& env_;
  topology& topo_;
  std::vector<std::unique_ptr<flow>> flows_;
  std::vector<std::uint32_t> free_slots_;
  // Recycled flow-id blocks, keyed by block span (MPTCP consumes
  // `subflows + 1` ids; everything else 1).  Reuse is exact-span so a
  // recycled block can never partially overlap a live one, and FIFO so a
  // just-freed id goes to the back of the queue: the longest-dead id is
  // rebound first, maximizing the time between teardown and reuse that the
  // stale-drop window relies on.
  std::unordered_map<std::uint32_t, std::deque<std::uint32_t>> free_ids_;
  std::unordered_map<std::uint32_t, std::unique_ptr<pull_pacer>> pull_pacers_;
  std::unordered_map<std::uint32_t, std::unique_ptr<phost_token_pacer>>
      token_pacers_;
  std::uint32_t next_flow_id_ = 1;
  std::size_t live_ = 0;
  std::uint64_t destroyed_ = 0;
};

}  // namespace ndpsim
