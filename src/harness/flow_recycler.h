// Flow lifecycle engine for long-running churn workloads.
//
// One-shot experiments create flows and keep every object until the sim_env
// dies.  Steady-state workloads (closed-loop RPC churn, Poisson arrival
// sweeps) cannot: over millions of arrivals the flow table, the per-host
// demux registries and the path table's sampled subset arrays would all grow
// without bound.  The recycler closes the loop: when a flow completes it
//
//   1. records the FCT (tagged with its churn generation — the epoch),
//   2. lets the flow *linger* for a drain window so in-flight packets and
//      control traffic addressed to it still find their endpoints,
//   3. tears the transport pair down through `flow_factory::destroy`
//      (timers cancelled, pacer rings left, demux entries unbound, pooled
//      path subset returned, flow id recycled), and
//   4. starts the replacement: immediately (closed loop, optional think
//      gap) or on the next draw of a Poisson arrival process (open loop).
//
// Teardown never happens inside a transport callback — completions only
// queue the flow; the destruction runs from the recycler's own scheduled
// event.  Stale packets that outlive the linger window are dropped at the
// demux (`path_table::enable_stale_drop`, armed by the recycler) instead of
// being misdelivered to the id's next owner.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>

#include "harness/flow_factory.h"
#include "harness/queue_factory.h"
#include "stats/fct_recorder.h"

namespace ndpsim {

struct recycler_config {
  protocol proto = protocol::ndp;
  /// Per-flow template.  `opts.bytes` is the flow size unless a size picker
  /// is supplied; `opts.start` is ignored (the recycler schedules starts).
  flow_options opts;
  /// Drain window between completion and teardown.  In-flight packets for
  /// the completed flow arriving within it are handled normally; anything
  /// later is dropped as stale at the demux.  A few RTOs covers every
  /// straggler the transports can still produce.
  simtime_t linger = from_ms(2.0);
  /// Closed loop: delay between a slot's teardown and its replacement's
  /// start (think time).  0 = back-to-back.
  simtime_t think_gap = 0;
  /// Open loop: Poisson arrival rate in flows/sec (> 0 switches the
  /// replacement policy from closed-loop to open-loop arrivals).
  double open_rate_per_sec = 0;
  /// Stop creating flows after this many starts (existing ones drain).
  std::uint64_t max_starts = UINT64_MAX;
};

class flow_recycler final : public event_source {
 public:
  /// Draws the (src, dst) pair of the next flow.
  using pair_picker =
      std::function<std::pair<std::uint32_t, std::uint32_t>(sim_env&)>;
  /// Draws the size in bytes of the next flow (optional; defaults to
  /// `cfg.opts.bytes`).
  using size_picker = std::function<std::uint64_t(sim_env&)>;

  flow_recycler(sim_env& env, topology& topo, flow_factory& flows,
                recycler_config cfg, pair_picker pick_pair,
                size_picker pick_size = {},
                std::string name = "flow_recycler");

  /// Launch the initial population (closed loop: the fixed number of
  /// concurrently live flows; open loop: `initial` immediate arrivals, then
  /// the Poisson process takes over).
  void start(std::size_t initial);
  /// Stop creating flows; live ones complete and are torn down normally.
  void stop() { stopped_ = true; }

  void do_next_event() override;

  [[nodiscard]] const fct_recorder& fcts() const { return fcts_; }
  [[nodiscard]] std::uint64_t flows_started() const { return started_; }
  [[nodiscard]] std::uint64_t flows_recycled() const { return recycled_; }
  /// Completed churn generations: every live slot has turned over this many
  /// times (closed loop; open loop: recycled / initial arrivals).
  [[nodiscard]] std::uint64_t generations() const {
    return population_ == 0 ? 0 : recycled_ / population_;
  }
  /// Flows waiting out their linger window.
  [[nodiscard]] std::size_t lingering() const { return retire_queue_.size(); }

 private:
  void launch(std::uint32_t src, std::uint32_t dst, simtime_t at);
  void on_flow_complete(flow& f);
  void schedule_next_arrival();
  void rearm();

  struct pending_retire {
    flow* f;
    simtime_t due;
  };

  sim_env& env_;
  flow_factory& flows_;
  recycler_config cfg_;
  pair_picker pick_pair_;
  size_picker pick_size_;

  std::deque<pending_retire> retire_queue_;  ///< FIFO: linger is constant
  simtime_t next_arrival_ = -1;              ///< open loop; -1 = none pending
  timer_handle timer_;

  fct_recorder fcts_;
  std::uint64_t started_ = 0;
  std::uint64_t recycled_ = 0;
  std::size_t population_ = 0;  ///< initial population (epoch divisor)
  bool stopped_ = false;
};

}  // namespace ndpsim
