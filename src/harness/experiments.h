// Shared experiment runners: the permutation and incast scaffolding used by
// most benches, tests and examples.
#pragma once

#include <memory>
#include <vector>

#include "harness/flow_factory.h"
#include "harness/queue_factory.h"
#include "stats/cdf.h"
#include "topo/fat_tree.h"

namespace ndpsim {

/// Convenience bundle: env + fat-tree + factory for one experiment.
struct testbed {
  testbed(std::uint64_t seed, fat_tree_config topo_cfg,
          const fabric_params& fabric);
  /// Borrow an externally-owned env (e.g. the per-job env handed out by
  /// `parallel_runner`) instead of owning one.
  testbed(sim_env& external_env, fat_tree_config topo_cfg,
          const fabric_params& fabric);
  /// Borrow an env AND a shared immutable blueprint: the structure/state
  /// split for sweeps — every job stamps its own queues/pipes out of one
  /// read-only blueprint instead of rebuilding the fabric (the blueprint's
  /// pfc/link config must already match `fabric`; see
  /// `make_fat_tree_blueprint`).  The blueprint must outlive the testbed.
  testbed(sim_env& external_env, std::shared_ptr<const fabric_blueprint> bp,
          const fabric_params& fabric);

 private:
  std::unique_ptr<sim_env> owned_env_;  ///< null when borrowing
  void init(fat_tree_config topo_cfg);

 public:
  sim_env& env;
  fabric_params fabric;
  std::unique_ptr<fat_tree> topo;
  std::unique_ptr<flow_factory> flows;
};

/// Build a fat-tree testbed with the fabric implied by `fabric.proto`.
[[nodiscard]] std::unique_ptr<testbed> make_fat_tree_testbed(
    std::uint64_t seed, unsigned k, const fabric_params& fabric,
    unsigned oversubscription = 1,
    std::function<linkspeed_bps(link_level, std::size_t, linkspeed_bps)>
        speed_override = {});

/// Build the shared blueprint matching what `make_fat_tree_testbed` would
/// wire for this fabric (including the protocol-implied PFC config), for
/// handing to many per-env testbeds/instances at once.
[[nodiscard]] std::shared_ptr<const fabric_blueprint> make_fat_tree_blueprint(
    unsigned k, const fabric_params& fabric, unsigned oversubscription = 1,
    std::function<linkspeed_bps(link_level, std::size_t, linkspeed_bps)>
        speed_override = {});

struct permutation_result {
  std::vector<double> flow_gbps;  ///< per-flow goodput, ascending
  double mean_gbps = 0;
  double utilization = 0;  ///< mean goodput / host link rate
};

/// Long-running permutation traffic matrix; goodput measured over
/// [warmup, warmup+measure).
[[nodiscard]] permutation_result run_permutation(testbed& bed, protocol proto,
                                                 flow_options opts,
                                                 simtime_t warmup,
                                                 simtime_t measure);

struct incast_result {
  sample_set fct_us;          ///< per-flow completion times
  double last_fct_us = 0;     ///< completion of the whole incast
  double first_fct_us = 0;    ///< fastest flow (fairness spread)
  std::size_t completed = 0;
  // NDP accounting (zero for other protocols).
  std::uint64_t packets_sent = 0;
  std::uint64_t rtx_after_nack = 0;
  std::uint64_t rtx_after_bounce = 0;
  std::uint64_t rtx_after_timeout = 0;
};

/// n-to-1 incast of `bytes` per sender into `receiver`; runs until all flows
/// complete or `deadline` passes.
[[nodiscard]] incast_result run_incast(testbed& bed, protocol proto,
                                       const std::vector<std::uint32_t>& senders,
                                       std::uint32_t receiver,
                                       std::uint64_t bytes, flow_options opts,
                                       simtime_t deadline);

/// Ideal last-flow completion time for an n-to-1 incast: the receiver link
/// stays saturated with each packet delivered exactly once (paper Fig 20a's
/// baseline), plus one unloaded one-way traversal.
[[nodiscard]] double incast_optimal_us(std::size_t n_senders,
                                       std::uint64_t bytes_per_sender,
                                       std::uint32_t mss_bytes,
                                       linkspeed_bps link_rate,
                                       simtime_t one_way_us);

/// Drive the event loop until `flows` have all completed or `deadline` hits.
void run_until_complete(sim_env& env, const std::vector<flow*>& flows,
                        simtime_t deadline);

}  // namespace ndpsim
