#include "harness/queue_factory.h"

#include "cp/cp_queue.h"
#include "net/fifo_queues.h"
#include "ndp/ndp_queue.h"

namespace ndpsim {

queue_factory make_queue_factory(sim_env& env, const fabric_params& params) {
  // Takes the lazy `name_ref` as-is (no formatting): at k=32 the fabric
  // builds ~100k queues and eager names dominated construction.
  return [&env, params](link_level level, std::size_t /*index*/,
                        linkspeed_bps rate,
                        name_ref name) -> std::unique_ptr<queue_base> {
    const std::uint64_t mtu = params.mtu_bytes;
    if (level == link_level::host_up) {
      // Window-based transports get a finite NIC (same sizing as the fabric
      // buffers); receiver-driven/PFC transports never build a NIC backlog.
      const bool windowed = params.proto == protocol::tcp ||
                            params.proto == protocol::dctcp ||
                            params.proto == protocol::mptcp;
      const std::uint64_t cap = windowed ? params.droptail_pkts * mtu : 0;
      return std::make_unique<host_priority_queue>(env, rate, name, cap);
    }
    switch (params.proto) {
      case protocol::ndp: {
        ndp_queue_config qc;
        qc.data_capacity_bytes = params.ndp_data_pkts * mtu;
        qc.header_capacity_bytes = params.ndp_header_bytes != 0
                                       ? params.ndp_header_bytes
                                       : qc.data_capacity_bytes;
        qc.wrr_headers_per_data = params.ndp_wrr;
        qc.enable_rts = params.ndp_rts;
        qc.random_trim_position = params.ndp_random_trim;
        return std::make_unique<ndp_queue>(env, rate, qc, name);
      }
      case protocol::tcp:
      case protocol::mptcp:
        return std::make_unique<drop_tail_queue>(
            env, rate, params.droptail_pkts * mtu, name);
      case protocol::dctcp:
        return std::make_unique<ecn_threshold_queue>(
            env, rate, params.droptail_pkts * mtu,
            params.ecn_threshold_pkts * mtu, name);
      case protocol::dcqcn:
        return std::make_unique<red_ecn_queue>(
            env, rate, params.lossless_capacity_pkts * mtu,
            params.red_kmin_pkts * mtu, params.red_kmax_pkts * mtu,
            params.red_pmax, name);
      case protocol::phost:
        return std::make_unique<drop_tail_queue>(env, rate,
                                                 params.phost_pkts * mtu, name);
    }
    NDPSIM_ASSERT_MSG(false, "unknown protocol");
    return nullptr;
  };
}

bool fabric_is_lossless(protocol p) { return p == protocol::dcqcn; }

pfc_config default_pfc(const fabric_params& params) {
  pfc_config pfc;
  pfc.enabled = fabric_is_lossless(params.proto);
  pfc.xoff_bytes = 25ull * params.mtu_bytes;
  pfc.xon_bytes = 23ull * params.mtu_bytes;
  return pfc;
}

}  // namespace ndpsim
