// Campaign engine: thousand-config sweeps in bounded memory, with result
// spill, journaled resume and bitwise-reproducible merged output.
//
// `parallel_runner::run` keeps every job's full outcome (fct_recorder +
// telemetry plane) alive until the sweep joins, so a campaign's peak memory
// grows linearly with its length.  The campaign runner swaps collection for
// reduction: each finished job is folded — on the worker, via the
// move-aware `run_streaming` sink — into a compact `fct_summary`
// (stats/fct_summary.h) and appended to a JSONL spill file, after which the
// recorder and plane are freed.  Peak memory then tracks the number of
// *active* jobs (<= threads), not the campaign length — the property
// bench_eventcore's `campaign` section gates (RSS high-water strictly below
// the keep-everything baseline, and flat as the job count doubles).
//
// On-disk layout (all under campaign_config::dir):
//
//  * `shards.jsonl` — one `fct_summary::to_jsonl` line per finished job,
//    append-only, completion order (nondeterministic order, deterministic
//    content).
//  * `journal.jsonl` — the commit record: one line per finished job,
//    `{"job":N,"hash":"<16 hex>","crc":"<8 hex>"}`, appended strictly AFTER
//    the job's spill line is flushed, so a journaled job always has a
//    complete spill line.  `hash` is the FNV-1a hash of the job's config;
//    `crc` covers the rest of the line, so torn or corrupted lines are
//    rejected (and counted), never trusted.
//  * `results.jsonl` — written only when every job is done: the summaries
//    in ascending job order.  Because each job's summary is a pure function
//    of its config and serialization is deterministic, this file is
//    byte-identical however the campaign was scheduled, interrupted or
//    resumed.
//
// The resume contract (docs/ARCHITECTURE.md, lifetime contract 5): a job id
// is its index in the config list, so every invocation of the same campaign
// must pass the identical config list.  `resume = true` replays the
// journal, re-verifies each entry's config hash against the *current*
// config at that index (a mismatch re-runs the job rather than trusting a
// stale result) and requires the entry's spill line to parse — then runs
// only what is missing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "harness/parallel_runner.h"
#include "stats/fct_summary.h"

namespace ndpsim {

/// FNV-1a, the repo's deterministic content hash for campaign identity
/// (config hashes, journal line CRCs).  Not cryptographic — it guards
/// against corruption and config drift, not adversaries.
[[nodiscard]] std::uint64_t fnv1a_64(const void* data, std::size_t len,
                                     std::uint64_t seed = 0xcbf29ce484222325ULL);
[[nodiscard]] std::uint32_t fnv1a_32(const void* data, std::size_t len,
                                     std::uint32_t seed = 0x811c9dc5U);

/// Hash of everything that determines a job's result: name bytes, seed,
/// param, param2 (bit patterns — -0.0 and 0.0 hash apart, NaNs stably).
[[nodiscard]] std::uint64_t config_hash(const experiment_config& cfg);

/// One journal line (no trailing newline): `{"job":N,"hash":...,"crc":...}`
/// with the CRC computed over everything before the crc field.
[[nodiscard]] std::string make_journal_line(std::uint64_t job,
                                            std::uint64_t hash);
/// Strict parse + CRC check of one journal line.
[[nodiscard]] bool parse_journal_line(std::string_view line,
                                      std::uint64_t& job, std::uint64_t& hash);

struct campaign_config {
  std::string dir;          ///< spill/journal/results directory (created)
  unsigned threads = 0;     ///< 0 = hardware concurrency
  bool resume = false;      ///< replay the journal instead of starting over
  /// Interruption hook: stop claiming new jobs once this many have finished
  /// in THIS invocation (0 = run to completion).  In-flight jobs still
  /// finish and are journaled, so a stopped campaign resumes cleanly.
  std::size_t max_jobs = 0;
  double sketch_alpha = quantile_sketch::kDefaultAlpha;
};

struct campaign_result {
  std::size_t jobs_total = 0;
  std::size_t jobs_run = 0;      ///< executed in this invocation
  std::size_t jobs_skipped = 0;  ///< satisfied from the journal
  std::size_t journal_rejects = 0;  ///< corrupt/stale journal lines ignored
  std::size_t spill_rejects = 0;    ///< corrupt/stale spill lines ignored
  bool completed = false;  ///< every job done; results.jsonl written
  std::string merged_path;  ///< empty unless completed
  /// Per-job summaries, ascending job id.  Covers every finished job (all
  /// of them when `completed`).
  std::vector<fct_summary> summaries;

  /// Campaign-wide aggregate of `summaries` (exact totals add, sketches
  /// merge).  Meaningful once completed; job/hash/name are zeroed.
  [[nodiscard]] fct_summary total() const;
};

class campaign_runner {
 public:
  explicit campaign_runner(campaign_config cfg) : cfg_(std::move(cfg)) {}

  /// Run (or resume) the campaign.  The config list must be identical
  /// across invocations of one campaign directory — job ids are config
  /// indices (see the resume contract above).  Throws on I/O failure and
  /// rethrows the first failed job's exception.
  campaign_result run(const std::vector<experiment_config>& configs,
                      const experiment_fn& body) const;

  [[nodiscard]] const campaign_config& config() const { return cfg_; }

 private:
  campaign_config cfg_;
};

}  // namespace ndpsim
