#include "harness/experiments.h"

#include <algorithm>

#include "workload/traffic_matrix.h"

namespace ndpsim {

testbed::testbed(std::uint64_t seed, fat_tree_config topo_cfg,
                 const fabric_params& fabric_in)
    : owned_env_(std::make_unique<sim_env>(seed)),
      env(*owned_env_),
      fabric(fabric_in) {
  init(std::move(topo_cfg));
}

testbed::testbed(sim_env& external_env, fat_tree_config topo_cfg,
                 const fabric_params& fabric_in)
    : env(external_env), fabric(fabric_in) {
  init(std::move(topo_cfg));
}

testbed::testbed(sim_env& external_env,
                 std::shared_ptr<const fabric_blueprint> bp,
                 const fabric_params& fabric_in)
    : env(external_env), fabric(fabric_in) {
  topo = std::make_unique<fat_tree>(env, std::move(bp),
                                    make_queue_factory(env, fabric));
  flows = std::make_unique<flow_factory>(env, *topo);
}

void testbed::init(fat_tree_config topo_cfg) {
  topo_cfg.pfc = default_pfc(fabric);
  topo = std::make_unique<fat_tree>(env, topo_cfg, make_queue_factory(env, fabric));
  flows = std::make_unique<flow_factory>(env, *topo);
}

std::unique_ptr<testbed> make_fat_tree_testbed(
    std::uint64_t seed, unsigned k, const fabric_params& fabric,
    unsigned oversubscription,
    std::function<linkspeed_bps(link_level, std::size_t, linkspeed_bps)>
        speed_override) {
  fat_tree_config tc;
  tc.k = k;
  tc.oversubscription = oversubscription;
  tc.speed_override = std::move(speed_override);
  return std::make_unique<testbed>(seed, tc, fabric);
}

std::shared_ptr<const fabric_blueprint> make_fat_tree_blueprint(
    unsigned k, const fabric_params& fabric, unsigned oversubscription,
    std::function<linkspeed_bps(link_level, std::size_t, linkspeed_bps)>
        speed_override) {
  fat_tree_config tc;
  tc.k = k;
  tc.oversubscription = oversubscription;
  tc.speed_override = std::move(speed_override);
  tc.pfc = default_pfc(fabric);
  return fabric_blueprint::fat_tree(std::move(tc));
}

permutation_result run_permutation(testbed& bed, protocol proto,
                                   flow_options opts, simtime_t warmup,
                                   simtime_t measure) {
  const std::size_t n = bed.topo->n_hosts();
  const auto matrix = permutation_matrix(bed.env.rng, n);

  std::vector<flow*> flows;
  flows.reserve(n);
  for (std::uint32_t h = 0; h < n; ++h) {
    flow_options o = opts;
    // Small start jitter so unresponsive first windows do not collide in
    // lockstep (hosts boot at slightly different times in reality).
    o.start = opts.start +
              static_cast<simtime_t>(bed.env.rand_below(100)) * kMicrosecond / 10;
    flows.push_back(&bed.flows->create(proto, h, matrix[h], o));
  }

  bed.env.events.run_until(warmup);
  std::vector<std::uint64_t> base(n);
  for (std::size_t i = 0; i < n; ++i) base[i] = flows[i]->payload_received();

  bed.env.events.run_until(warmup + measure);

  permutation_result res;
  res.flow_gbps.reserve(n);
  const double secs = to_sec(measure);
  for (std::size_t i = 0; i < n; ++i) {
    const double bits =
        static_cast<double>(flows[i]->payload_received() - base[i]) * 8.0;
    res.flow_gbps.push_back(bits / secs / 1e9);
  }
  std::sort(res.flow_gbps.begin(), res.flow_gbps.end());
  double sum = 0;
  for (double g : res.flow_gbps) sum += g;
  res.mean_gbps = sum / static_cast<double>(n);
  res.utilization =
      res.mean_gbps * 1e9 / static_cast<double>(bed.topo->host_link_speed(0));
  return res;
}

void run_until_complete(sim_env& env, const std::vector<flow*>& flows,
                        simtime_t deadline) {
  auto all_done = [&flows] {
    return std::all_of(flows.begin(), flows.end(),
                       [](const flow* f) { return f->complete(); });
  };
  // Timestamp-batch granularity (not single events) so the hot path runs
  // through the flat dispatch handlers exactly as run_until does; the
  // completion check between batches is monotonic, so the loop still stops
  // at the first timestamp where every flow is complete.
  while (!all_done() && env.now() < deadline) {
    if (env.events.run_next_batch() == 0) break;
  }
}

incast_result run_incast(testbed& bed, protocol proto,
                         const std::vector<std::uint32_t>& senders,
                         std::uint32_t receiver, std::uint64_t bytes,
                         flow_options opts, simtime_t deadline) {
  std::vector<flow*> flows;
  flows.reserve(senders.size());
  for (std::uint32_t s : senders) {
    flow_options o = opts;
    o.bytes = bytes;
    // "Near-simultaneous" requests: sub-microsecond jitter.
    o.start = opts.start + static_cast<simtime_t>(bed.env.rand_below(1000)) *
                               kNanosecond;
    flows.push_back(&bed.flows->create(proto, s, receiver, o));
  }
  run_until_complete(bed.env, flows, deadline);

  incast_result res;
  double last = 0;
  double first = -1;
  for (flow* f : flows) {
    if (!f->complete()) continue;
    ++res.completed;
    const double fct = to_us(f->completion_time() - f->start_time);
    res.fct_us.add(fct);
    last = std::max(last, to_us(f->completion_time()) - to_us(opts.start));
    if (first < 0) first = fct;
    first = std::min(first, fct);
    if (ndp_source* s = f->ndp_src(); s != nullptr) {
      res.packets_sent += s->stats().packets_sent;
      res.rtx_after_nack += s->stats().rtx_after_nack;
      res.rtx_after_bounce += s->stats().rtx_after_bounce;
      res.rtx_after_timeout += s->stats().rtx_after_timeout;
    }
  }
  res.last_fct_us = last;
  res.first_fct_us = first < 0 ? 0 : first;
  return res;
}

double incast_optimal_us(std::size_t n_senders, std::uint64_t bytes_per_sender,
                         std::uint32_t mss_bytes, linkspeed_bps link_rate,
                         simtime_t one_way) {
  const std::uint32_t ppp = mss_bytes - kHeaderBytes;
  const std::uint64_t pkts = (bytes_per_sender + ppp - 1) / ppp;
  const std::uint64_t wire =
      bytes_per_sender + pkts * kHeaderBytes;  // payload + headers
  const double drain =
      to_us(serialization_time(wire * n_senders, link_rate));
  return drain + to_us(one_way);
}

}  // namespace ndpsim
