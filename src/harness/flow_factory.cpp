#include "harness/flow_factory.h"

#include <algorithm>

#include "dcqcn/dcqcn_sink.h"
#include "dctcp/dctcp_source.h"
#include "mptcp/mptcp_source.h"
#include "tcp/tcp_sink.h"
#include "tcp/tcp_source.h"
#include "topo/path_table.h"

namespace ndpsim {

namespace {

class ndp_flow final : public flow {
 public:
  ndp_flow(sim_env& env, pull_pacer& pacer, path_set ps, std::uint32_t fid,
           std::uint32_t s, std::uint32_t d, const flow_options& o) {
    ndp_source_config sc;
    sc.mss_bytes = o.mss_bytes;
    sc.iw_packets = o.iw_packets;
    sc.rto = o.ndp_rto;
    sc.mode = o.mode;
    sc.penalty.enabled = o.path_penalty;
    source_ = std::make_unique<ndp_source>(env, sc, fid,
                                           "ndpsrc" + std::to_string(fid));
    ndp_sink_config kc;
    kc.mss_bytes = o.mss_bytes;
    kc.pull_class = o.pull_class;
    sink_ = std::make_unique<ndp_sink>(env, pacer, kc, fid);
    source_->connect(*sink_, ps, s, d, o.bytes, o.start);
  }

  void retire() override {
    source_->disconnect();
    sink_->disconnect();
  }

  [[nodiscard]] std::uint64_t payload_received() const override {
    return sink_->payload_received();
  }
  [[nodiscard]] bool complete() const override { return sink_->complete(); }
  [[nodiscard]] simtime_t completion_time() const override {
    return sink_->completion_time();
  }
  void on_complete(std::function<void()> cb) override {
    sink_->set_complete_callback(std::move(cb));
  }
  void set_priority(std::uint8_t cls) override { sink_->set_pull_class(cls); }
  void set_latency_callback(std::function<void(simtime_t)> cb) override {
    source_->set_latency_callback(std::move(cb));
  }
  [[nodiscard]] ndp_source* ndp_src() override { return source_.get(); }
  [[nodiscard]] ndp_sink* ndp_snk() override { return sink_.get(); }

 private:
  std::unique_ptr<ndp_source> source_;
  std::unique_ptr<ndp_sink> sink_;
};

class tcp_flow final : public flow {
 public:
  tcp_flow(sim_env& env, bool dctcp, path_set ps, std::uint32_t fid,
           std::uint32_t s, std::uint32_t d, const flow_options& o) {
    tcp_config tc;
    tc.mss_bytes = o.mss_bytes;
    tc.iw_mss = o.tcp_iw_mss;
    tc.min_rto = o.min_rto;
    tc.handshake = o.handshake;
    tc.max_cwnd_mss = o.max_cwnd_mss;
    if (dctcp) {
      source_ = std::make_unique<dctcp_source>(env, tc, dctcp_config{}, fid,
                                               "dctcp" + std::to_string(fid));
    } else {
      source_ = std::make_unique<tcp_source>(env, tc, fid,
                                             "tcp" + std::to_string(fid));
    }
    sink_ = std::make_unique<tcp_sink>(env, fid);
    source_->connect(*sink_, ps, s, d, o.bytes, o.start);
  }

  void retire() override { source_->disconnect(); }

  [[nodiscard]] std::uint64_t payload_received() const override {
    return sink_->payload_received();
  }
  [[nodiscard]] bool complete() const override { return source_->complete(); }
  [[nodiscard]] simtime_t completion_time() const override {
    return source_->completion_time();
  }
  void on_complete(std::function<void()> cb) override {
    source_->set_complete_callback(std::move(cb));
  }
  [[nodiscard]] tcp_source& source() { return *source_; }

 private:
  std::unique_ptr<tcp_source> source_;
  std::unique_ptr<tcp_sink> sink_;
};

class mptcp_flow final : public flow {
 public:
  mptcp_flow(sim_env& env, path_set ps, unsigned subflows, std::uint32_t fid,
             std::uint32_t s, std::uint32_t d, const flow_options& o) {
    tcp_config tc;
    tc.mss_bytes = o.mss_bytes;
    tc.iw_mss = o.tcp_iw_mss;
    tc.min_rto = o.min_rto;
    tc.handshake = o.handshake;
    tc.max_cwnd_mss = o.max_cwnd_mss;
    source_ = std::make_unique<mptcp_source>(env, tc, fid,
                                             "mptcp" + std::to_string(fid));
    source_->connect(ps, subflows, s, d, o.bytes, o.start);
  }

  void retire() override { source_->disconnect(); }

  [[nodiscard]] std::uint64_t payload_received() const override {
    return source_->total_payload_received();
  }
  [[nodiscard]] bool complete() const override { return source_->complete(); }
  [[nodiscard]] simtime_t completion_time() const override {
    return source_->completion_time();
  }
  void on_complete(std::function<void()> cb) override {
    source_->set_complete_callback(std::move(cb));
  }

 private:
  std::unique_ptr<mptcp_source> source_;
};

class dcqcn_flow final : public flow {
 public:
  dcqcn_flow(sim_env& env, linkspeed_bps line_rate, path_set ps,
             std::uint32_t fid, std::uint32_t s, std::uint32_t d,
             const flow_options& o) {
    dcqcn_config dc;
    dc.mss_bytes = o.mss_bytes;
    dc.line_rate = line_rate;
    source_ = std::make_unique<dcqcn_source>(env, dc, fid,
                                             "dcqcn" + std::to_string(fid));
    sink_ = std::make_unique<dcqcn_sink>(env, fid);
    source_->connect(*sink_, ps, s, d, o.bytes, o.start);
  }

  void retire() override { source_->disconnect(); }

  [[nodiscard]] std::uint64_t payload_received() const override {
    return sink_->payload_received();
  }
  [[nodiscard]] bool complete() const override { return source_->complete(); }
  [[nodiscard]] simtime_t completion_time() const override {
    return source_->completion_time();
  }
  void on_complete(std::function<void()> cb) override {
    source_->set_complete_callback(std::move(cb));
  }

 private:
  std::unique_ptr<dcqcn_source> source_;
  std::unique_ptr<dcqcn_sink> sink_;
};

class phost_flow final : public flow {
 public:
  phost_flow(sim_env& env, phost_token_pacer& pacer, path_set ps,
             std::uint32_t fid, std::uint32_t s, std::uint32_t d,
             const flow_options& o) {
    phost_config pc;
    pc.mss_bytes = o.mss_bytes;
    source_ = std::make_unique<phost_source>(env, pc, fid,
                                             "phost" + std::to_string(fid));
    sink_ = std::make_unique<phost_sink>(env, pacer, pc, fid);
    source_->connect(*sink_, ps, s, d, o.bytes, o.start);
  }

  void retire() override {
    source_->disconnect();
    sink_->disconnect();
  }

  [[nodiscard]] std::uint64_t payload_received() const override {
    return sink_->payload_received();
  }
  [[nodiscard]] bool complete() const override { return sink_->complete(); }
  [[nodiscard]] simtime_t completion_time() const override {
    return sink_->completion_time();
  }
  void on_complete(std::function<void()> cb) override {
    sink_->set_complete_callback(std::move(cb));
  }

 private:
  std::unique_ptr<phost_source> source_;
  std::unique_ptr<phost_sink> sink_;
};

}  // namespace

pull_pacer& flow_factory::ndp_pacer(std::uint32_t host) {
  auto it = pull_pacers_.find(host);
  if (it == pull_pacers_.end()) {
    it = pull_pacers_
             .emplace(host, std::make_unique<pull_pacer>(
                                env_, topo_.host_link_speed(host),
                                "pacer" + std::to_string(host)))
             .first;
  }
  return *it->second;
}

phost_token_pacer& flow_factory::phost_pacer(std::uint32_t host) {
  auto it = token_pacers_.find(host);
  if (it == token_pacers_.end()) {
    it = token_pacers_
             .emplace(host, std::make_unique<phost_token_pacer>(
                                env_, topo_.host_link_speed(host),
                                "tokens" + std::to_string(host)))
             .first;
  }
  return *it->second;
}

flow& flow_factory::create(protocol proto, std::uint32_t src,
                           std::uint32_t dst, const flow_options& opts) {
  NDPSIM_ASSERT(src != dst);
  // MPTCP subflows use a block of ids.  Recycled blocks (exact span match)
  // are preferred over fresh ids so long-running churn keeps the id space —
  // and with it every per-host demux — at its steady-state size.  Taken
  // from the FRONT of the free queue: the id that has been dead longest is
  // the one whose stale packets have had the most time to drain.
  const std::uint32_t span =
      proto == protocol::mptcp ? opts.subflows + 1 : 1;
  const unsigned subflows =
      static_cast<unsigned>(std::max<std::uint32_t>(1, opts.subflows));
  std::uint32_t fid;
  auto freed = free_ids_.find(span);
  if (freed != free_ids_.end() && !freed->second.empty()) {
    fid = freed->second.front();
    freed->second.pop_front();
  } else {
    fid = next_flow_id_;
    next_flow_id_ += span;
  }

  // The connection's borrowed path view, drawn here so the factory can hand
  // pooled subsets back to the table when the flow is destroyed.
  path_set ps;
  const std::size_t path_cap = effective_max_paths(opts);
  switch (proto) {
    case protocol::ndp:
    case protocol::phost:
      ps = topo_.paths().sample(env_, src, dst, path_cap);
      break;
    case protocol::tcp:
    case protocol::dctcp:
    case protocol::dcqcn: {
      // Per-flow ECMP: one path, chosen by "hash" (uniform draw at creation).
      const std::size_t n = topo_.n_paths(src, dst);
      const std::size_t path =
          opts.fixed_path >= 0 ? static_cast<std::size_t>(opts.fixed_path)
                               : env_.rand_below(n);
      ps = topo_.paths().single(src, dst, path);
      break;
    }
    case protocol::mptcp:
      // Distinct paths for the subflows (seeded sample without replacement);
      // extra subflows beyond the path count share routes round-robin.
      ps = topo_.paths().sample(
          env_, src, dst,
          std::min<std::size_t>(subflows, topo_.n_paths(src, dst)));
      break;
  }

  std::unique_ptr<flow> f;
  switch (proto) {
    case protocol::ndp:
      f = std::make_unique<ndp_flow>(env_, ndp_pacer(dst), ps, fid, src, dst,
                                     opts);
      break;
    case protocol::tcp:
      f = std::make_unique<tcp_flow>(env_, false, ps, fid, src, dst, opts);
      break;
    case protocol::dctcp:
      f = std::make_unique<tcp_flow>(env_, true, ps, fid, src, dst, opts);
      break;
    case protocol::mptcp:
      f = std::make_unique<mptcp_flow>(env_, ps, subflows, fid, src, dst,
                                       opts);
      break;
    case protocol::dcqcn:
      f = std::make_unique<dcqcn_flow>(env_, topo_.host_link_speed(src), ps,
                                       fid, src, dst, opts);
      break;
    case protocol::phost:
      f = std::make_unique<phost_flow>(env_, phost_pacer(dst), ps, fid, src,
                                       dst, opts);
      break;
  }
  f->id = fid;
  f->id_span_ = span;
  f->src = src;
  f->dst = dst;
  f->bytes = opts.bytes;
  f->start_time = opts.start;
  f->paths = ps;

  ++live_;
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    f->slot_ = slot;
    flows_[slot] = std::move(f);
    return *flows_[slot];
  }
  f->slot_ = static_cast<std::uint32_t>(flows_.size());
  flows_.push_back(std::move(f));
  return *flows_.back();
}

void flow_factory::destroy(flow& f) {
  NDPSIM_ASSERT_MSG(f.slot_ < flows_.size() && flows_[f.slot_].get() == &f,
                    "destroying a flow this factory does not own");
  f.retire();  // transports first: timers cancelled, demux entries unbound
  topo_.paths().release(f.paths);  // then the pooled subset arrays
  free_ids_[f.id_span_].push_back(f.id);
  const std::uint32_t slot = f.slot_;
  flows_[slot].reset();  // f is dead from here
  free_slots_.push_back(slot);
  --live_;
  ++destroyed_;
}

std::uint64_t flow_factory::total_payload_received() const {
  std::uint64_t total = 0;
  for (const auto& f : flows_) {
    if (f != nullptr) total += f->payload_received();
  }
  return total;
}

std::size_t flow_factory::completed_count() const {
  std::size_t n = 0;
  for (const auto& f : flows_) {
    if (f != nullptr) n += f->complete() ? 1 : 0;
  }
  return n;
}

}  // namespace ndpsim
