// Per-protocol fabric configuration: which queue discipline runs at switch
// egress ports, with the paper's buffer sizings as defaults (§6.1):
//   NDP    : 8-packet data queue + equal-byte header queue, WRR 10:1, RTS
//   DCTCP  : 200-packet drop-tail with sharp ECN threshold at 30 packets
//   MPTCP/TCP: 200-packet drop-tail
//   DCQCN  : effectively-lossless queue (PFC) with RED marking from 20 pkts
//   pHost  : 8-packet drop-tail (its published configuration)
// Host NICs are always two-band priority queues (control over data).
#pragma once

#include "net/sim_env.h"
#include "topo/fat_tree.h"
#include "topo/topology.h"

namespace ndpsim {

enum class protocol : std::uint8_t { ndp, tcp, dctcp, mptcp, dcqcn, phost };

[[nodiscard]] constexpr const char* to_string(protocol p) {
  switch (p) {
    case protocol::ndp: return "NDP";
    case protocol::tcp: return "TCP";
    case protocol::dctcp: return "DCTCP";
    case protocol::mptcp: return "MPTCP";
    case protocol::dcqcn: return "DCQCN";
    case protocol::phost: return "pHost";
  }
  return "?";
}

struct fabric_params {
  protocol proto = protocol::ndp;
  std::uint32_t mtu_bytes = 9000;
  // NDP queue
  std::uint32_t ndp_data_pkts = 8;
  std::uint32_t ndp_header_bytes = 0;  ///< 0 = same bytes as the data queue
  unsigned ndp_wrr = 10;
  bool ndp_rts = true;
  bool ndp_random_trim = true;
  // drop-tail family
  std::uint32_t droptail_pkts = 200;
  std::uint32_t ecn_threshold_pkts = 30;
  std::uint32_t phost_pkts = 8;
  // DCQCN RED marking
  std::uint32_t red_kmin_pkts = 20;
  std::uint32_t red_kmax_pkts = 100;
  double red_pmax = 0.1;
  std::uint32_t lossless_capacity_pkts = 4000;  ///< "never drops" backstop
};

/// Egress-queue factory for this fabric (host NICs get priority queues).
[[nodiscard]] queue_factory make_queue_factory(sim_env& env,
                                               const fabric_params& params);

/// DCQCN runs over PFC; everything else does not.
[[nodiscard]] bool fabric_is_lossless(protocol p);

/// PFC thresholds matched to the fabric MTU.
[[nodiscard]] pfc_config default_pfc(const fabric_params& params);

}  // namespace ndpsim
