#include "harness/parallel_runner.h"

#include <atomic>
#include <chrono>
#include <thread>

namespace ndpsim {

parallel_runner::parallel_runner(unsigned threads) : threads_(threads) {
  if (threads_ == 0) {
    threads_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

namespace {

void run_one(const experiment_config& cfg, const experiment_fn& body,
             experiment_outcome& out) {
  const auto t0 = std::chrono::steady_clock::now();
  sim_env env(cfg.seed);
  fct_recorder fcts;
  body(cfg, env, fcts);
  const auto t1 = std::chrono::steady_clock::now();
  out.config = cfg;
  out.fcts = std::move(fcts);
  out.telemetry = std::move(env.telemetry);  // outlive the per-job env
  out.events_processed = env.events.events_processed();
  out.sim_end = env.events.now();
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  out.events_per_sec =
      out.wall_seconds > 0
          ? static_cast<double>(out.events_processed) / out.wall_seconds
          : 0.0;
}

}  // namespace

std::vector<experiment_outcome> parallel_runner::run(
    const std::vector<experiment_config>& configs,
    const experiment_fn& body) const {
  std::vector<experiment_outcome> outcomes(configs.size());
  // Keep-everything collection is just a streaming sink that parks each
  // outcome in its config's slot.  Slots are disjoint per index, so the
  // sink needs no lock.
  run_streaming(configs, body,
                [&outcomes](std::size_t i, experiment_outcome&& out) {
                  outcomes[i] = std::move(out);
                });
  return outcomes;
}

void parallel_runner::run_streaming(
    const std::vector<experiment_config>& configs, const experiment_fn& body,
    const outcome_sink& sink, const std::atomic<bool>* stop) const {
  const unsigned n_workers =
      static_cast<unsigned>(std::min<std::size_t>(threads_, configs.size()));
  // Work-stealing by atomic index: threads claim the next un-run config.
  // Which thread runs a config never affects its outcome (each one builds a
  // private sim_env from its own seed), so placement is free to be dynamic.
  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(configs.size());
  auto worker = [&] {
    for (;;) {
      if (stop != nullptr && stop->load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= configs.size()) return;
      try {
        experiment_outcome out;
        run_one(configs[i], body, out);
        sink(i, std::move(out));
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  };
  if (n_workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(n_workers);
    for (unsigned t = 0; t < n_workers; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);  // surface the first failed config
  }
}

fct_recorder merge_fcts(const std::vector<experiment_outcome>& outcomes) {
  fct_recorder merged;
  for (const auto& o : outcomes) merged.merge_from(o.fcts);
  return merged;
}

std::shared_ptr<telemetry_plane> merge_telemetry(
    const std::vector<experiment_outcome>& outcomes) {
  std::shared_ptr<telemetry_plane> merged;
  for (const auto& o : outcomes) {
    if (o.telemetry == nullptr) continue;
    if (merged == nullptr) {
      merged = std::make_shared<telemetry_plane>(*o.telemetry);
    } else {
      merged->merge_from(*o.telemetry);
    }
  }
  return merged;
}

}  // namespace ndpsim
