#include "harness/campaign_runner.h"

#include <atomic>
#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <stdexcept>

namespace ndpsim {

std::uint64_t fnv1a_64(const void* data, std::size_t len, std::uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint32_t fnv1a_32(const void* data, std::size_t len, std::uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x01000193U;
  }
  return h;
}

std::uint64_t config_hash(const experiment_config& cfg) {
  std::uint64_t h = fnv1a_64(cfg.name.data(), cfg.name.size());
  h = fnv1a_64(&cfg.seed, sizeof cfg.seed, h);
  h = fnv1a_64(&cfg.param, sizeof cfg.param, h);
  std::uint64_t p2bits = 0;
  std::memcpy(&p2bits, &cfg.param2, sizeof p2bits);
  return fnv1a_64(&p2bits, sizeof p2bits, h);
}

std::string make_journal_line(std::uint64_t job, std::uint64_t hash) {
  char core[64];
  const int n = std::snprintf(core, sizeof core,
                              "{\"job\":%" PRIu64 ",\"hash\":\"%016" PRIx64
                              "\"",
                              job, hash);
  const std::uint32_t crc = fnv1a_32(core, static_cast<std::size_t>(n));
  char line[96];
  const int m = std::snprintf(line, sizeof line, "%s,\"crc\":\"%08" PRIx32
                              "\"}",
                              core, crc);
  return std::string(line, static_cast<std::size_t>(m));
}

bool parse_journal_line(std::string_view line, std::uint64_t& job,
                        std::uint64_t& hash) {
  constexpr std::string_view kCrcKey = ",\"crc\":\"";
  const std::size_t pos = line.rfind(kCrcKey);
  if (pos == std::string_view::npos) return false;
  const std::string_view core = line.substr(0, pos);
  const std::string_view rest = line.substr(pos + kCrcKey.size());
  // rest must be exactly 8 hex digits + `"}`.
  if (rest.size() != 10 || rest[8] != '"' || rest[9] != '}') return false;
  std::uint32_t crc = 0;
  {
    auto [next, ec] = std::from_chars(rest.data(), rest.data() + 8, crc, 16);
    if (ec != std::errc() || next != rest.data() + 8) return false;
  }
  if (crc != fnv1a_32(core.data(), core.size())) return false;
  // Strict parse of the CRC-verified core.
  constexpr std::string_view kJobKey = "{\"job\":";
  if (core.substr(0, kJobKey.size()) != kJobKey) return false;
  const char* p = core.data() + kJobKey.size();
  const char* end = core.data() + core.size();
  auto [next, ec] = std::from_chars(p, end, job);
  if (ec != std::errc() || next == p) return false;
  p = next;
  constexpr std::string_view kHashKey = ",\"hash\":\"";
  if (static_cast<std::size_t>(end - p) != kHashKey.size() + 17) return false;
  if (std::string_view(p, kHashKey.size()) != kHashKey) return false;
  p += kHashKey.size();
  auto [hnext, hec] = std::from_chars(p, p + 16, hash, 16);
  if (hec != std::errc() || hnext != p + 16) return false;
  return *(p + 16) == '"';
}

fct_summary campaign_result::total() const {
  if (summaries.empty()) return fct_summary();
  fct_summary t(summaries.front().sketch.alpha());
  for (const fct_summary& s : summaries) t.merge_from(s);
  t.job = 0;
  t.hash = 0;
  t.name.clear();
  return t;
}

namespace {

/// Apply `fn` to every non-empty line of `path` (absent file = no lines).
template <typename Fn>
void for_each_line(const std::filesystem::path& path, Fn&& fn) {
  std::ifstream in(path);
  if (!in.is_open()) return;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) fn(line);
  }
}

}  // namespace

campaign_result campaign_runner::run(
    const std::vector<experiment_config>& configs,
    const experiment_fn& body) const {
  namespace fs = std::filesystem;
  if (cfg_.dir.empty()) {
    throw std::runtime_error("campaign_runner: empty campaign directory");
  }
  const fs::path dir(cfg_.dir);
  fs::create_directories(dir);
  const fs::path journal_path = dir / "journal.jsonl";
  const fs::path shards_path = dir / "shards.jsonl";
  const fs::path merged_path = dir / "results.jsonl";

  campaign_result res;
  res.jobs_total = configs.size();

  // job id -> finished summary (ascending — the merge order).
  std::map<std::uint64_t, fct_summary> done;

  if (cfg_.resume) {
    // Pass 1: spill lines.  A line is trusted only if it parses strictly
    // AND its job/hash match the current config list — anything else
    // (torn write, corruption, config drift) is counted and the job re-run.
    std::map<std::uint64_t, fct_summary> spilled;
    for_each_line(shards_path, [&](const std::string& line) {
      fct_summary s;
      if (!fct_summary::from_jsonl(line, s) || s.job >= configs.size() ||
          s.hash != config_hash(configs[s.job])) {
        ++res.spill_rejects;
        return;
      }
      spilled[s.job] = std::move(s);
    });
    // Pass 2: the journal decides what counts as finished.  A journaled job
    // without a trusted spill line (crash between the two appends is
    // impossible by write order, but a corrupt spill line is not) re-runs.
    for_each_line(journal_path, [&](const std::string& line) {
      std::uint64_t job = 0;
      std::uint64_t hash = 0;
      if (!parse_journal_line(line, job, hash) || job >= configs.size() ||
          hash != config_hash(configs[job])) {
        ++res.journal_rejects;
        return;
      }
      auto it = spilled.find(job);
      if (it == spilled.end()) {
        ++res.journal_rejects;
        return;
      }
      done.insert_or_assign(job, std::move(it->second));
    });
  } else {
    // Fresh campaign: truncate any previous state.
    std::ofstream(journal_path, std::ios::trunc);
    std::ofstream(shards_path, std::ios::trunc);
    std::error_code ec;
    fs::remove(merged_path, ec);
  }
  res.jobs_skipped = done.size();

  std::vector<experiment_config> pending;
  std::vector<std::uint64_t> pending_ids;
  pending.reserve(configs.size() - done.size());
  pending_ids.reserve(configs.size() - done.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (done.find(i) == done.end()) {
      pending.push_back(configs[i]);
      pending_ids.push_back(i);
    }
  }

  if (!pending.empty()) {
    std::ofstream shards(shards_path, std::ios::app);
    std::ofstream journal(journal_path, std::ios::app);
    if (!shards.is_open() || !journal.is_open()) {
      throw std::runtime_error("campaign_runner: cannot open spill/journal in " +
                               cfg_.dir);
    }
    std::mutex mu;
    std::atomic<bool> stop{false};
    const parallel_runner runner(cfg_.threads);
    runner.run_streaming(
        pending, body,
        [&](std::size_t pi, experiment_outcome&& out) {
          const std::uint64_t job = pending_ids[pi];
          // Worker-side reduction: O(flows) recorder + O(slots) plane fold
          // into a few-hundred-byte summary, then the heavy payload is
          // freed BEFORE the spill lock — peak memory never holds more
          // than one full outcome per worker.
          fct_summary s =
              fct_summary::from_recorder(out.fcts, cfg_.sketch_alpha);
          s.job = job;
          s.hash = config_hash(out.config);
          s.name = out.config.name;
          s.events = out.events_processed;
          if (out.telemetry != nullptr) s.set_telemetry(*out.telemetry);
          out.fcts = fct_recorder();
          out.telemetry.reset();
          const std::string line = s.to_jsonl();
          const std::lock_guard<std::mutex> lk(mu);
          // Spill first, flush, then journal: the journal only ever names
          // jobs whose spill line is complete on disk.
          shards << line << '\n';
          shards.flush();
          journal << make_journal_line(job, s.hash) << '\n';
          journal.flush();
          done.insert_or_assign(job, std::move(s));
          ++res.jobs_run;
          if (cfg_.max_jobs > 0 && res.jobs_run >= cfg_.max_jobs) {
            stop.store(true, std::memory_order_relaxed);
          }
        },
        &stop);
  }

  res.completed = done.size() == configs.size();
  res.summaries.reserve(done.size());
  for (auto& [job, s] : done) res.summaries.push_back(std::move(s));

  if (res.completed) {
    // The merged result: spill lines re-emitted in job order.  Re-emission
    // of a parsed line is byte-identical (fct_summary round-trip contract),
    // so resumed and uninterrupted campaigns write the same file.
    std::ofstream merged(merged_path, std::ios::trunc);
    if (!merged.is_open()) {
      throw std::runtime_error("campaign_runner: cannot write " +
                               merged_path.string());
    }
    for (const fct_summary& s : res.summaries) merged << s.to_jsonl() << '\n';
    merged.flush();
    res.merged_path = merged_path.string();
  }
  return res;
}

}  // namespace ndpsim
