#include "harness/flow_recycler.h"

#include <cmath>

#include "topo/path_table.h"

namespace ndpsim {

flow_recycler::flow_recycler(sim_env& env, topology& topo,
                             flow_factory& flows, recycler_config cfg,
                             pair_picker pick_pair, size_picker pick_size,
                             std::string name)
    : event_source(env.events, std::move(name)),
      env_(env),
      flows_(flows),
      cfg_(cfg),
      pick_pair_(std::move(pick_pair)),
      pick_size_(std::move(pick_size)) {
  NDPSIM_ASSERT(pick_pair_ != nullptr);
  NDPSIM_ASSERT(cfg_.linger >= 0);
  // Recycling means stale packets for torn-down flows can reach a demux
  // after their endpoints are gone; arm the drop policy before it happens.
  topo.paths().enable_stale_drop(env_.pool);
}

void flow_recycler::start(std::size_t initial) {
  NDPSIM_ASSERT(initial >= 1);
  population_ = initial;
  for (std::size_t i = 0; i < initial; ++i) {
    const auto [src, dst] = pick_pair_(env_);
    launch(src, dst, env_.now());
  }
  if (cfg_.open_rate_per_sec > 0) schedule_next_arrival();
  rearm();
}

void flow_recycler::launch(std::uint32_t src, std::uint32_t dst,
                           simtime_t at) {
  if (stopped_ || started_ >= cfg_.max_starts) return;
  flow_options o = cfg_.opts;
  o.start = at;
  if (pick_size_) o.bytes = std::max<std::uint64_t>(1, pick_size_(env_));
  flow& f = flows_.create(cfg_.proto, src, dst, o);
  const std::uint32_t epoch =
      static_cast<std::uint32_t>(started_ / population_);
  ++started_;
  fcts_.flow_started(f.id, at, o.bytes, epoch);
  f.on_complete([this, &f] { on_flow_complete(f); });
}

void flow_recycler::on_flow_complete(flow& f) {
  // Called from inside a transport callback: only record and queue here —
  // the teardown (which frees the very objects running this callback) waits
  // for the recycler's own event after the linger window.
  fcts_.flow_completed(f.id, f.completion_time());
  retire_queue_.push_back(pending_retire{&f, env_.now() + cfg_.linger});
  rearm();
}

void flow_recycler::schedule_next_arrival() {
  const double u = std::max(1e-12, env_.rand_unit());
  const double gap_s = -std::log(u) / cfg_.open_rate_per_sec;
  next_arrival_ = env_.now() + from_sec(gap_s);
}

void flow_recycler::rearm() {
  simtime_t due = -1;
  if (!retire_queue_.empty()) due = retire_queue_.front().due;
  if (next_arrival_ >= 0 && !stopped_ && started_ < cfg_.max_starts &&
      (due < 0 || next_arrival_ < due)) {
    due = next_arrival_;
  }
  if (due < 0) {
    events().cancel(timer_);
    return;
  }
  if (!events().is_pending(timer_) || events().expiry(timer_) != due) {
    events().reschedule(timer_, *this, std::max(env_.now(), due));
  }
}

void flow_recycler::do_next_event() {
  const simtime_t now = env_.now();

  bool retired_any = false;
  while (!retire_queue_.empty() && retire_queue_.front().due <= now) {
    flow* f = retire_queue_.front().f;
    retire_queue_.pop_front();
    flows_.destroy(*f);  // frees the id this slot's replacement will reuse
    ++recycled_;
    retired_any = true;
    if (cfg_.open_rate_per_sec <= 0) {
      // Closed loop: every teardown seeds its replacement.
      const auto [src, dst] = pick_pair_(env_);
      launch(src, dst, now + cfg_.think_gap);
    }
  }
  // Teardown windows are the pool's idle time: a completed flow just drained
  // its in-flight packets into the free list in completion order, so restore
  // address order before the replacement flow starts allocating.
  if (retired_any) env_.pool.compact();

  if (next_arrival_ >= 0 && next_arrival_ <= now) {
    if (!stopped_ && started_ < cfg_.max_starts) {
      const auto [src, dst] = pick_pair_(env_);
      launch(src, dst, now);
      schedule_next_arrival();
    } else {
      next_arrival_ = -1;
    }
  }

  rearm();
}

}  // namespace ndpsim
