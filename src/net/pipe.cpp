#include "net/pipe.h"
