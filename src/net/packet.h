// Protocol-neutral simulated packet and packet pool.
//
// A single flat struct represents every packet type in the simulator (NDP
// data/ACK/NACK/PULL, TCP segments, DCQCN CNPs, pHost tokens, ...).  Queues
// and pipes only look at `size_bytes`, priority and the trimmed/control
// distinction, so they can carry any transport.  Packets are pooled to avoid
// allocation churn in large simulations.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/assert.h"
#include "sim/time.h"

namespace ndpsim {

class route;
class pfc_ingress;

/// Simulated wire header size for all protocols; a trimmed NDP packet and all
/// control packets are exactly this many bytes (paper: 64-byte headers).
inline constexpr std::uint32_t kHeaderBytes = 64;

enum class packet_type : std::uint8_t {
  ndp_data,
  ndp_ack,
  ndp_nack,
  ndp_pull,
  tcp_data,
  tcp_ack,
  dcqcn_data,
  dcqcn_ack,
  dcqcn_cnp,
  phost_rts,
  phost_data,
  phost_token,
  phost_ack,
  cbr_data,
};

/// True for packet types that ride the high-priority/control queue.
[[nodiscard]] constexpr bool is_control(packet_type t) {
  switch (t) {
    case packet_type::ndp_data:
    case packet_type::tcp_data:
    case packet_type::dcqcn_data:
    case packet_type::phost_data:
    case packet_type::cbr_data:
      return false;
    default:
      return true;
  }
}

/// Packet flag bits.
namespace pkt_flag {
inline constexpr std::uint16_t syn = 1u << 0;      ///< first-RTT packet (NDP)
inline constexpr std::uint16_t last = 1u << 1;     ///< last packet of the flow
inline constexpr std::uint16_t trimmed = 1u << 2;  ///< payload cut by a switch
inline constexpr std::uint16_t bounced = 1u << 3;  ///< returned to sender
inline constexpr std::uint16_t ect = 1u << 4;      ///< ECN-capable transport
inline constexpr std::uint16_t ce = 1u << 5;       ///< congestion experienced
inline constexpr std::uint16_t rtx = 1u << 6;      ///< is a retransmission
inline constexpr std::uint16_t fin = 1u << 7;      ///< TCP fin equivalent
}  // namespace pkt_flag

struct packet {
  packet_type type = packet_type::ndp_data;
  std::uint16_t flags = 0;
  std::uint8_t priority = 0;  ///< 0 = data/low, 1 = control/high queue

  std::uint32_t flow_id = 0;
  std::uint32_t src = 0;  ///< host id
  std::uint32_t dst = 0;  ///< host id

  std::uint32_t size_bytes = 0;     ///< current wire size (after any trim)
  std::uint32_t payload_bytes = 0;  ///< application bytes carried (0 if trimmed)

  std::uint64_t seqno = 0;   ///< packet index (NDP/pHost/DCQCN) or byte seq (TCP)
  std::uint64_t ackno = 0;   ///< cumulative ack (TCP) / acked seq (others)
  std::uint64_t pullno = 0;  ///< NDP pull counter / pHost token count
  std::uint64_t data_seq = 0;  ///< MPTCP data-level sequence / scratch

  std::uint16_t path_id = 0;  ///< sender's path index (scoreboard bookkeeping)

  const route* rt = nullptr;       ///< forward route being followed
  const route* reverse_rt = nullptr;  ///< reverse of `rt` (for bounces)
  std::uint32_t next_hop = 0;      ///< index of next sink in `rt`

  simtime_t first_sent = 0;    ///< time the original copy entered the network
  simtime_t enqueue_time = 0;  ///< scratch for queue-delay accounting
  pfc_ingress* ingress = nullptr;  ///< PFC buffer-accounting context
  bool in_pool = false;  ///< owned by packet_pool's free list (double-free check)

  [[nodiscard]] bool has_flag(std::uint16_t f) const { return (flags & f) != 0; }
  void set_flag(std::uint16_t f) { flags |= f; }
  void clear_flag(std::uint16_t f) { flags &= static_cast<std::uint16_t>(~f); }
  [[nodiscard]] bool is_header_class() const {
    return is_control(type) || has_flag(pkt_flag::trimmed);
  }
};

/// Free-list pool of packets. Not thread-safe (the simulator is single
/// threaded by design).
class packet_pool {
 public:
  packet_pool() = default;
  packet_pool(const packet_pool&) = delete;
  packet_pool& operator=(const packet_pool&) = delete;

  /// Get a value-initialized packet.
  [[nodiscard]] packet* alloc() {
    if (free_.empty()) grow();
    packet* p = free_.back();
    free_.pop_back();
    *p = packet{};
    ++outstanding_;
    return p;
  }

  /// Return a packet to the pool.  Re-releasing a pointer that is already in
  /// the pool is detected per-packet (the `outstanding_` counter alone would
  /// miss a double free interleaved with an alloc of a different packet).
  void release(packet* p) {
    NDPSIM_ASSERT(p != nullptr);
    NDPSIM_ASSERT_MSG(!p->in_pool, "double free of packet");
    NDPSIM_ASSERT_MSG(outstanding_ > 0, "release with nothing outstanding");
    --outstanding_;
    poison(*p);
    free_.push_back(p);
  }

  /// Packets currently alive (for leak detection in tests).
  [[nodiscard]] std::size_t outstanding() const { return outstanding_; }
  [[nodiscard]] std::size_t capacity() const { return blocks_.size() * kBlock; }

 private:
  static constexpr std::size_t kBlock = 1024;
  void grow() {
    auto& block = blocks_.emplace_back(std::make_unique<packet[]>(kBlock));
    free_.reserve(free_.size() + kBlock);
    for (std::size_t i = 0; i < kBlock; ++i) {
      block[i].in_pool = true;
      free_.push_back(&block[i]);
    }
  }

  /// Mark a released packet and (in debug builds) scribble over its fields so
  /// use-after-release reads fail loudly instead of looking plausible.
  static void poison(packet& p) {
    p.in_pool = true;
#ifndef NDEBUG
    p.type = static_cast<packet_type>(0xEF);  // no such type: switches throw
    p.flags = 0xDEAD;
    p.flow_id = 0xDEADDEAD;
    p.seqno = 0xDEADDEADDEADDEADull;
    p.ackno = 0xDEADDEADDEADDEADull;
    p.size_bytes = 0xDEADDEAD;
    p.payload_bytes = 0xDEADDEAD;
    p.rt = nullptr;
    p.reverse_rt = nullptr;
    p.ingress = nullptr;
#endif
  }

  std::vector<std::unique_ptr<packet[]>> blocks_;
  std::vector<packet*> free_;
  std::size_t outstanding_ = 0;
};

/// Deliver `p` to the next sink on its route, advancing the hop index.
void send_to_next_hop(packet& p);

}  // namespace ndpsim
