// Protocol-neutral simulated packet and packet pool.
//
// A single flat struct represents every packet type in the simulator (NDP
// data/ACK/NACK/PULL, TCP segments, DCQCN CNPs, pHost tokens, ...).  Queues
// and pipes only look at `size_bytes`, priority and the trimmed/control
// distinction, so they can carry any transport.  Packets are pooled to avoid
// allocation churn in large simulations.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/assert.h"
#include "sim/time.h"

namespace ndpsim {

class route;
class pfc_ingress;

/// Simulated wire header size for all protocols; a trimmed NDP packet and all
/// control packets are exactly this many bytes (paper: 64-byte headers).
inline constexpr std::uint32_t kHeaderBytes = 64;

enum class packet_type : std::uint8_t {
  ndp_data,
  ndp_ack,
  ndp_nack,
  ndp_pull,
  tcp_data,
  tcp_ack,
  dcqcn_data,
  dcqcn_ack,
  dcqcn_cnp,
  phost_rts,
  phost_data,
  phost_token,
  phost_ack,
  cbr_data,
};

/// True for packet types that ride the high-priority/control queue.
[[nodiscard]] constexpr bool is_control(packet_type t) {
  switch (t) {
    case packet_type::ndp_data:
    case packet_type::tcp_data:
    case packet_type::dcqcn_data:
    case packet_type::phost_data:
    case packet_type::cbr_data:
      return false;
    default:
      return true;
  }
}

/// Packet flag bits.
namespace pkt_flag {
inline constexpr std::uint16_t syn = 1u << 0;      ///< first-RTT packet (NDP)
inline constexpr std::uint16_t last = 1u << 1;     ///< last packet of the flow
inline constexpr std::uint16_t trimmed = 1u << 2;  ///< payload cut by a switch
inline constexpr std::uint16_t bounced = 1u << 3;  ///< returned to sender
inline constexpr std::uint16_t ect = 1u << 4;      ///< ECN-capable transport
inline constexpr std::uint16_t ce = 1u << 5;       ///< congestion experienced
inline constexpr std::uint16_t rtx = 1u << 6;      ///< is a retransmission
inline constexpr std::uint16_t fin = 1u << 7;      ///< TCP fin equivalent
}  // namespace pkt_flag

// Hot/cold field split: every per-hop touch — pipe delivery (`rt`,
// `next_hop`), queue admission (`type`/`flags`, `size_bytes`,
// `enqueue_time`), WRR dequeue and service (`size_bytes`), demux
// (`flow_id`) and the common sink reads (`seqno`, `payload_bytes`,
// `path_id`) — lands in the first cache line, so a forwarded packet costs
// the memory system one line, not two.  Rarely-touched state (per-protocol
// ack/pull counters, bounce reverse route, latency timestamp, PFC context)
// lives behind it.  `alignas(64)` pins the hot header to a line boundary in
// the pool's slabs; the static_asserts below are the layout contract.
struct alignas(64) packet {
  // --- hot header: first cache line ------------------------------------
  const route* rt = nullptr;    ///< forward route being followed
  std::uint32_t next_hop = 0;   ///< index of next sink in `rt`
  std::uint32_t size_bytes = 0; ///< current wire size (after any trim)
  std::uint64_t seqno = 0;   ///< packet index (NDP/pHost/DCQCN) or byte seq (TCP)
  std::uint32_t flow_id = 0;
  std::uint32_t payload_bytes = 0;  ///< application bytes carried (0 if trimmed)
  packet_type type = packet_type::ndp_data;
  std::uint8_t priority = 0;  ///< 0 = data/low, 1 = control/high queue
  std::uint16_t flags = 0;
  std::uint16_t path_id = 0;  ///< sender's path index (scoreboard bookkeeping)
  bool in_pool = false;  ///< owned by packet_pool's free list (double-free check)
  // (1 byte pad)
  std::uint32_t pool_index = 0;  ///< slab slot; pool-owned, survives resets
  std::uint32_t src = 0;  ///< host id
  std::uint32_t dst = 0;  ///< host id
  simtime_t enqueue_time = 0;  ///< scratch for queue-delay accounting

  // --- cold tail: second cache line -------------------------------------
  const route* reverse_rt = nullptr;  ///< reverse of `rt` (for bounces)
  std::uint64_t ackno = 0;   ///< cumulative ack (TCP) / acked seq (others)
  std::uint64_t pullno = 0;  ///< NDP pull counter / pHost token count
  std::uint64_t data_seq = 0;  ///< MPTCP data-level sequence / scratch
  simtime_t first_sent = 0;    ///< time the original copy entered the network
  pfc_ingress* ingress = nullptr;  ///< PFC buffer-accounting context

  [[nodiscard]] bool has_flag(std::uint16_t f) const { return (flags & f) != 0; }
  void set_flag(std::uint16_t f) { flags |= f; }
  void clear_flag(std::uint16_t f) { flags &= static_cast<std::uint16_t>(~f); }
  [[nodiscard]] bool is_header_class() const {
    return is_control(type) || has_flag(pkt_flag::trimmed);
  }
};

// Layout contract for the hot/cold split.  If a change to `packet` trips
// one of these, re-balance the fields instead of deleting the assert: the
// flat batch handlers' prefetch pipeline assumes the per-hop working set is
// exactly the first line of a line-aligned object.
static_assert(alignof(packet) == 64, "hot header must start a cache line");
static_assert(sizeof(packet) == 128, "packet should stay two cache lines");
static_assert(offsetof(packet, rt) < 64, "per-hop field outside hot line");
static_assert(offsetof(packet, next_hop) + sizeof(std::uint32_t) <= 64,
              "per-hop field outside hot line");
static_assert(offsetof(packet, size_bytes) + sizeof(std::uint32_t) <= 64,
              "per-hop field outside hot line");
static_assert(offsetof(packet, seqno) + sizeof(std::uint64_t) <= 64,
              "per-hop field outside hot line");
static_assert(offsetof(packet, flow_id) + sizeof(std::uint32_t) <= 64,
              "per-hop field outside hot line");
static_assert(offsetof(packet, payload_bytes) + sizeof(std::uint32_t) <= 64,
              "per-hop field outside hot line");
static_assert(offsetof(packet, type) < 64 && offsetof(packet, flags) < 64 &&
                  offsetof(packet, priority) < 64,
              "classification bits outside hot line");
static_assert(offsetof(packet, path_id) < 64 && offsetof(packet, in_pool) < 64,
              "per-hop field outside hot line");
static_assert(offsetof(packet, enqueue_time) + sizeof(simtime_t) <= 64,
              "queue admission scratch outside hot line");
static_assert(offsetof(packet, reverse_rt) >= 64,
              "cold tail must stay off the hot line");

/// Slab-backed pool of packets with allocation-order locality.  Not
/// thread-safe (the simulator is single threaded by design).
///
/// Packets live in fixed 1024-slot slabs and are identified by a dense
/// `pool_index` (slab * kBlock + slot).  The free list is a LIFO stack of
/// those indices: a just-released packet is the next one handed out, so the
/// steady-state working set rides whatever is already hot in cache, and both
/// `alloc()` and `release()` are O(1).  `compact()` (called from idle hooks)
/// sorts the stack *descending*, so the next burst of allocations pops the
/// lowest-addressed slots first and walks the slabs in pure address order —
/// concurrently-live packets cluster at the bottom of the slabs again after
/// churn instead of staying wherever the LIFO history scattered them.
/// (An always-sorted min-heap free list was tried first: the O(log n)
/// sift per alloc/release plus handing out the *coldest* slot instead of
/// the just-freed hot one made it measurably slower on the packet-path
/// microbenchmark; sort-on-idle keeps the address-order benefit without
/// the per-op tax.)
class packet_pool {
 public:
  packet_pool() = default;
  packet_pool(const packet_pool&) = delete;
  packet_pool& operator=(const packet_pool&) = delete;

  /// Get a value-initialized packet from the top of the free stack (the
  /// most recently released slot; after `compact()`, the lowest-addressed).
  [[nodiscard]] packet* alloc() {
    if (free_.empty()) grow();
    const std::uint32_t idx = free_.back();
    free_.pop_back();
    packet* p = slot(idx);
    *p = packet{};
    p->pool_index = idx;
    ++outstanding_;
    return p;
  }

  /// Return a packet to the pool.  Re-releasing a pointer that is already in
  /// the pool is detected per-packet (the `outstanding_` counter alone would
  /// miss a double free interleaved with an alloc of a different packet).
  void release(packet* p) {
    NDPSIM_ASSERT(p != nullptr);
    NDPSIM_ASSERT_MSG(!p->in_pool, "double free of packet");
    NDPSIM_ASSERT_MSG(outstanding_ > 0, "release with nothing outstanding");
    NDPSIM_ASSERT_MSG(slot(p->pool_index) == p, "foreign packet released");
    --outstanding_;
    poison(*p);
    free_.push_back(p->pool_index);
  }

  /// Restore address order on the free list.  After heavy churn the stack
  /// holds indices in release order; sorting descending makes subsequent
  /// `pop_back` allocations hand out ascending addresses, so the next burst
  /// of allocations walks the slabs front to back.  O(n log n) — call from
  /// idle time (flow-recycle boundaries), not per event.
  void compact() { std::sort(free_.begin(), free_.end(), std::greater<>{}); }

  /// Packets currently alive (for leak detection in tests).
  [[nodiscard]] std::size_t outstanding() const { return outstanding_; }
  [[nodiscard]] std::size_t capacity() const { return blocks_.size() * kBlock; }

 private:
  static constexpr std::size_t kBlock = 1024;

  [[nodiscard]] packet* slot(std::uint32_t idx) const {
    NDPSIM_ASSERT(idx < blocks_.size() * kBlock);
    return &blocks_[idx / kBlock][idx % kBlock];
  }

  void grow() {
    const auto base = static_cast<std::uint32_t>(blocks_.size() * kBlock);
    auto& block = blocks_.emplace_back(std::make_unique<packet[]>(kBlock));
    free_.reserve(free_.size() + kBlock);
    // Push the new block's indices in reverse so pop_back hands out the
    // fresh slab front to back (ascending addresses).
    for (std::uint32_t i = 0; i < kBlock; ++i) {
      block[i].in_pool = true;
      block[i].pool_index = base + i;
      free_.push_back(base + kBlock - 1 - i);
    }
  }

  /// Mark a released packet and (in debug builds) scribble over its fields so
  /// use-after-release reads fail loudly instead of looking plausible.  The
  /// pool's own bookkeeping (`pool_index`) is never scribbled.
  static void poison(packet& p) {
    p.in_pool = true;
#ifndef NDEBUG
    p.type = static_cast<packet_type>(0xEF);  // no such type: switches throw
    p.flags = 0xDEAD;
    p.flow_id = 0xDEADDEAD;
    p.seqno = 0xDEADDEADDEADDEADull;
    p.ackno = 0xDEADDEADDEADDEADull;
    p.size_bytes = 0xDEADDEAD;
    p.payload_bytes = 0xDEADDEAD;
    p.rt = nullptr;
    p.reverse_rt = nullptr;
    p.ingress = nullptr;
#endif
  }

  std::vector<std::unique_ptr<packet[]>> blocks_;
  std::vector<std::uint32_t> free_;  ///< LIFO stack of free pool indices
  std::size_t outstanding_ = 0;
};

/// Deliver `p` to the next sink on its route, advancing the hop index.
void send_to_next_hop(packet& p);

}  // namespace ndpsim
