#include "net/flat_dispatch.h"

#include "net/pipe.h"
#include "net/queue.h"

namespace ndpsim {

void install_flat_handlers(event_list& events) {
  events.set_flat_handler(dispatch_class::pipe_expiry, &pipe::dispatch_run);
  events.set_flat_handler(dispatch_class::queue_service,
                          &queue_base::dispatch_run);
}

}  // namespace ndpsim
