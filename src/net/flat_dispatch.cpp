// Flat batch handlers and the devirtualized dequeue tier.
//
// The two hot-path batch bodies (pipe delivery, queue service completion)
// live here rather than in their class headers because both now reach into
// concrete types the headers cannot see: the queue handler prefetches the
// ring the next dequeue will pop (switching on `dequeue_kind`), and the
// pipe handler's last pipeline stage peeks into `flow_demux`'s hash table.
// They are only ever called through the function pointers registered below,
// so nothing is lost by taking them out of line.

#include "net/flat_dispatch.h"

#include "cp/cp_queue.h"
#include "ndp/ndp_queue.h"
#include "net/fifo_queues.h"
#include "net/path_set.h"
#include "net/pipe.h"
#include "net/queue.h"

namespace ndpsim {

packet* queue_base::dequeue_next_dispatch() {
  // Direct calls into final-class bodies: same packet, same side effects as
  // the vtable slot, minus the indirect call.  `other` (composites, test
  // queues) keeps the virtual path bit-identically.
  switch (dequeue_kind_) {
    case dequeue_kind::fifo:
      return static_cast<drop_tail_queue*>(this)->dequeue_direct();
    case dequeue_kind::ndp_wrr:
      return static_cast<ndp_queue*>(this)->dequeue_direct();
    case dequeue_kind::host_priority:
      return static_cast<host_priority_queue*>(this)->dequeue_direct();
    case dequeue_kind::cp_fifo:
      return static_cast<cp_queue*>(this)->dequeue_direct();
    case dequeue_kind::other:
      break;
  }
  return dequeue_next();
}

void queue_base::prefetch_dequeue_slot() const {
  switch (dequeue_kind_) {
    case dequeue_kind::fifo:
      static_cast<const drop_tail_queue*>(this)->prefetch_front_slots();
      break;
    case dequeue_kind::ndp_wrr:
      static_cast<const ndp_queue*>(this)->prefetch_front_slots();
      break;
    case dequeue_kind::host_priority:
      static_cast<const host_priority_queue*>(this)->prefetch_front_slots();
      break;
    case dequeue_kind::cp_fifo:
      static_cast<const cp_queue*>(this)->prefetch_front_slots();
      break;
    case dequeue_kind::other:
      break;
  }
}

void queue_base::prefetch_dequeue_packet() const {
  switch (dequeue_kind_) {
    case dequeue_kind::fifo:
      static_cast<const drop_tail_queue*>(this)->prefetch_front_packets();
      break;
    case dequeue_kind::ndp_wrr:
      static_cast<const ndp_queue*>(this)->prefetch_front_packets();
      break;
    case dequeue_kind::host_priority:
      static_cast<const host_priority_queue*>(this)->prefetch_front_packets();
      break;
    case dequeue_kind::cp_fifo:
      static_cast<const cp_queue*>(this)->prefetch_front_packets();
      break;
    case dequeue_kind::other:
      break;
  }
}

namespace {

// Shared tail stage of both handlers: one entry before a packet is handed to
// its sink, peek whether that sink is a terminal flow_demux and prefetch the
// home hash bucket for the packet's flow.  Both loads this makes (the sink
// table entry, the sink's first line) were prefetched by the earlier stages
// of the same pipeline, so the peek itself does not stall.
inline void prefetch_terminal_bucket(const packet& p) {
  const packet_sink* s = p.rt->hop_sink(p.next_hop);
  if (s != nullptr && s->is_terminal_demux()) {
    static_cast<const flow_demux*>(s)->prefetch_flow(p.flow_id);
  }
}

}  // namespace

void pipe::dispatch_run(event_source* const* srcs,
                        const std::uint64_t* payloads, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 6 < n) {
      const char* q = reinterpret_cast<const char*>(payloads[i + 6]);
      __builtin_prefetch(q);       // hot header: rt/next_hop/flow_id/size
      __builtin_prefetch(q + 64);  // cold tail: terminal receive reads it
    }
    if (i + 5 < n) {
      const packet* q = reinterpret_cast<const packet*>(payloads[i + 5]);
      __builtin_prefetch(q->rt);
    }
    if (i + 4 < n) {
      const packet* q = reinterpret_cast<const packet*>(payloads[i + 4]);
      q->rt->prefetch_hop_slot(q->next_hop);
    }
    if (i + 3 < n) {
      const packet* q = reinterpret_cast<const packet*>(payloads[i + 3]);
      q->rt->prefetch_hop_table(q->next_hop);
    }
    if (i + 2 < n) {
      const packet* q = reinterpret_cast<const packet*>(payloads[i + 2]);
      q->rt->prefetch_hop_sink(q->next_hop);
    }
    if (i + 1 < n) {
      prefetch_terminal_bucket(*reinterpret_cast<const packet*>(payloads[i + 1]));
    }
    packet& p = *reinterpret_cast<packet*>(payloads[i]);
    static_cast<pipe*>(srcs[i])->tele_deliver(p);
    send_to_next_hop(p);
  }
}

void queue_base::dispatch_run(event_source* const* srcs,
                              const std::uint64_t* /*payloads*/,
                              std::size_t n) {
  // Two chains interleave here: the in-service packet's next-hop resolution
  // (it is about to be forwarded) and the ring front the follow-up dequeue
  // will pop.  A queue's next hop is always a pipe, never a terminal demux,
  // so the bucket stage lives only in pipe::dispatch_run.
  for (std::size_t i = 0; i < n; ++i) {
    if (i + 5 < n) {
      const char* q =
          reinterpret_cast<const char*>(static_cast<queue_base*>(srcs[i + 5]));
      __builtin_prefetch(q);
      __builtin_prefetch(q + 64);
      __builtin_prefetch(q + 128);  // concrete part: ring headers
    }
    if (i + 4 < n) {
      const queue_base* qb = static_cast<const queue_base*>(srcs[i + 4]);
      const char* p = reinterpret_cast<const char*>(qb->serving_);
      __builtin_prefetch(p);
      __builtin_prefetch(p + 64);
      qb->prefetch_dequeue_slot();
    }
    if (i + 3 < n) {
      const queue_base* qb = static_cast<const queue_base*>(srcs[i + 3]);
      const packet* p = qb->serving_;
      if (p != nullptr) __builtin_prefetch(p->rt);
      qb->prefetch_dequeue_packet();
    }
    if (i + 2 < n) {
      const queue_base* qb = static_cast<const queue_base*>(srcs[i + 2]);
      const packet* p = qb->serving_;
      if (p != nullptr && p->rt != nullptr) {
        p->rt->prefetch_hop_slot(p->next_hop);
        p->rt->prefetch_hop_table(p->next_hop);
      }
    }
    if (i + 1 < n) {
      const queue_base* qb = static_cast<const queue_base*>(srcs[i + 1]);
      const packet* p = qb->serving_;
      if (p != nullptr && p->rt != nullptr) {
        p->rt->prefetch_hop_sink(p->next_hop);
      }
    }
    static_cast<queue_base*>(srcs[i])->service_complete();
  }
}

void install_flat_handlers(event_list& events) {
  events.set_flat_handler(dispatch_class::pipe_expiry, &pipe::dispatch_run);
  events.set_flat_handler(dispatch_class::queue_service,
                          &queue_base::dispatch_run);
}

}  // namespace ndpsim
