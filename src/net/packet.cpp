#include "net/packet.h"

#include "net/path_set.h"
#include "net/pipe.h"
#include "net/queue.h"
#include "net/route.h"

namespace ndpsim {

void send_to_next_hop(packet& p) {
  NDPSIM_ASSERT_MSG(p.rt != nullptr, "packet has no route");
  NDPSIM_ASSERT_MSG(p.next_hop < p.rt->size(), "packet ran off its route");
  packet_sink& sink = p.rt->at(p.next_hop++);
  // Hop-delivery tier of the devirtualized fast path: fabric routes only
  // ever deliver to pipes, queues and the terminal flow_demux, all of whose
  // receive bodies are final — the switch turns ~every hop's indirect call
  // into a direct (inlinable) one.  `other` endpoints (transports, test
  // sinks) take the virtual call, bit-identically.
  switch (sink.kind()) {
    case sink_kind::pipe:
      static_cast<pipe&>(sink).receive(p);
      return;
    case sink_kind::queue:
      static_cast<queue_base&>(sink).receive(p);
      return;
    case sink_kind::demux:
      static_cast<flow_demux&>(sink).receive(p);
      return;
    case sink_kind::other:
      break;
  }
  sink.receive(p);
}

}  // namespace ndpsim
