#include "net/packet.h"

#include "net/route.h"

namespace ndpsim {

void send_to_next_hop(packet& p) {
  NDPSIM_ASSERT_MSG(p.rt != nullptr, "packet has no route");
  NDPSIM_ASSERT_MSG(p.next_hop < p.rt->size(), "packet ran off its route");
  packet_sink& sink = p.rt->at(p.next_hop++);
  sink.receive(p);
}

}  // namespace ndpsim
