#include "net/fifo_queues.h"
