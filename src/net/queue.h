// Base class for store-and-forward output queues.
//
// A queue serializes one packet at a time at its link rate, then hands it to
// the next hop (normally a pipe).  Subclasses define buffering policy by
// implementing `enqueue_arrival` (admit / drop / trim / mark) and
// `dequeue_next` (scheduling discipline across internal sub-queues).
//
// Queues support PFC pausing: while paused, the in-flight packet finishes
// serializing but no new packet starts (pause at packet boundary, as 802.1Qbb
// does).
//
// Hot-path layout: service completions are monotone per (rate, packet size)
// — the deadline is always now + serialization_time — so they ride the
// event list's (queue_service, delta) lanes and batch-dispatch through
// `dispatch_run` without a virtual call per event.  A queue's traffic
// alternates between very few sizes (full data MTU and header/control), so
// a 2-entry delta->lane cache in front of `lane_for` keeps lane resolution
// at two compares; unseen sizes miss into `lane_for`, and if the lane table
// is ever full the completion falls back to a plain heap timer (same
// ordering, just slower).  Completion logic itself is the non-virtual
// `service_complete` — identical from the flat batch handler, the per-entry
// lane path, and the heap fallback.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/packet.h"
#include "net/route.h"
#include "net/sim_env.h"
#include "sim/eventlist.h"
#include "sim/telemetry.h"

namespace ndpsim {

/// Per-queue statistics, kept by the base class.
struct queue_stats {
  std::uint64_t arrivals = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t dropped = 0;
  std::uint64_t trimmed = 0;
  std::uint64_t bounced = 0;
  std::uint64_t marked = 0;
  std::uint64_t bytes_forwarded = 0;
};

/// Concrete dequeue discipline tag, set once at construction.  The service
/// path dispatches on it with a switch instead of the `dequeue_next` vtable
/// slot (`dequeue_next_dispatch` below), so the per-completion dequeue is a
/// direct call into a final class body the compiler can inline.  `other` is
/// the escape hatch: composites (coexist_queue) and test doubles keep the
/// virtual path, bit-identically.
enum class dequeue_kind : std::uint8_t {
  other = 0,      ///< fall back to the virtual dequeue_next
  fifo,           ///< drop_tail_queue family (ECN variants share its body)
  ndp_wrr,        ///< ndp_queue (10:1 weighted round robin)
  host_priority,  ///< host_priority_queue (ctrl over data)
  cp_fifo,        ///< cp_queue (single FIFO, CP baseline)
};

class queue_base : public packet_sink, public event_source {
  // coexist_queue composes two child queues and drives their (protected)
  // admission/scheduling hooks directly, without giving them the wire.
  friend class coexist_queue;

 public:
  queue_base(sim_env& env, linkspeed_bps rate, name_ref name,
             dequeue_kind kind = dequeue_kind::other)
      : event_source(env.events, std::move(name),
                     dispatch_class::queue_service),
        env_(env),
        rate_(rate),
        dequeue_kind_(kind) {
    // All queues share the final receive() below, so the hop-delivery fast
    // path may call it through the base type for every subclass.
    kind_ = sink_kind::queue;
    NDPSIM_ASSERT(rate > 0);
  }

  void receive(packet& p) final {
    ++stats_.arrivals;
    NDPSIM_TELE(++tele_->enq_pkts; tele_->enq_bytes += p.size_bytes);
    enqueue_arrival(p);
    try_start_service();
  }

  /// Heap-fallback path (lane table full); lanes are the normal route.
  void do_next_event() final { service_complete(); }
  void do_lane_event(std::uint64_t /*payload*/) final { service_complete(); }

  /// Flat batch handler for dispatch_class::queue_service (registered by
  /// `install_flat_handlers`): must do exactly what per-entry
  /// `do_lane_event` does, in order.  Pipelined like pipe::dispatch_run —
  /// the queue object, its in-service packet, that packet's next-hop
  /// resolution AND the front of the ring the next dequeue will pop are
  /// prefetched for future entries of the run.  Defined in flat_dispatch.cpp
  /// where the concrete queue types are visible (the ring prefetches switch
  /// on `dequeue_kind_`).
  static void dispatch_run(event_source* const* srcs,
                           const std::uint64_t* payloads, std::size_t n);

  /// PFC: pause/resume serving (the packet on the wire always completes).
  void set_paused(bool paused) {
    paused_ = paused;
    if (!paused_) try_start_service();
  }
  [[nodiscard]] bool paused() const { return paused_; }
  [[nodiscard]] bool busy() const { return serving_ != nullptr; }

  [[nodiscard]] linkspeed_bps rate() const { return rate_; }
  [[nodiscard]] const queue_stats& stats() const { return stats_; }

  /// Called just before a packet leaves the queue (PFC buffer accounting).
  void set_depart_hook(std::function<void(packet&)> hook) {
    on_depart_ = std::move(hook);
  }

  /// Bytes currently buffered (excluding the packet being serialized).
  [[nodiscard]] virtual std::uint64_t buffered_bytes() const = 0;
  [[nodiscard]] virtual std::size_t buffered_packets() const = 0;
  /// Size of the packet on the wire right now (0 when idle) — together with
  /// buffered_bytes this is the queue's resident byte count, the term the
  /// telemetry conservation law needs.
  [[nodiscard]] std::uint64_t serving_bytes() const {
    return serving_ != nullptr ? serving_->size_bytes : 0;
  }

  /// Arm (or disarm with a null slot) this queue's telemetry slot.  Virtual
  /// so composite ports (coexist_queue) can share the slot with the child
  /// queues whose admission/drop hooks do the actual counting.
  virtual void set_telemetry(telemetry_slot t) {
    tele_ = t.hot;
    tele_rare_ = t.rare;
  }
  /// Combined snapshot of this queue's slot (all-zero when unarmed).
  [[nodiscard]] telemetry_counters telemetry() const {
    return combine_telemetry(tele_, tele_rare_);
  }
  [[nodiscard]] bool telemetry_armed() const { return tele_ != nullptr; }

 protected:
  /// Admit/drop/trim/mark the arriving packet; must either buffer it or
  /// dispose of it (release to pool / bounce).
  virtual void enqueue_arrival(packet& p) = 0;
  /// Pick the next packet to serialize, or nullptr if none.
  [[nodiscard]] virtual packet* dequeue_next() = 0;

  /// Devirtualized dequeue: switch on `dequeue_kind_` and call the concrete
  /// final class's `dequeue_next` body directly; `other` falls back to the
  /// virtual call.  Defined in flat_dispatch.cpp (needs the concrete types).
  [[nodiscard]] packet* dequeue_next_dispatch();

  void try_start_service() {
    if (serving_ != nullptr || paused_) return;
    packet* p = dequeue_next_dispatch();
    if (p == nullptr) return;
    serving_ = p;
    const simtime_t st = serialization_time(p->size_bytes, rate_);
    // The service event is deliberately not kept as a handle: once a packet
    // starts serializing it always completes (even under PFC pause) — which
    // is also what makes the non-cancellable lane legal here.
    std::uint32_t li;
    if (st == lane_delta_[0]) {
      li = lane_id_[0];
    } else if (st == lane_delta_[1]) {
      // Swap to front so two alternating sizes both stay one compare away.
      std::swap(lane_delta_[0], lane_delta_[1]);
      std::swap(lane_id_[0], lane_id_[1]);
      li = lane_id_[0];
    } else {
      li = events().lane_for(dispatch_class::queue_service, st);
      lane_delta_[1] = lane_delta_[0];
      lane_id_[1] = lane_id_[0];
      lane_delta_[0] = st;
      lane_id_[0] = li;
    }
    if (li != event_list::kNoLane) {
      events().schedule_lane(li, *this, events().now() + st);
    } else {
      (void)events().schedule_in(*this, st);
    }
  }

  void drop(packet& p) {
    ++stats_.dropped;
    NDPSIM_TELE(++tele_rare_->drop_pkts; tele_rare_->drop_bytes +=
                                         p.size_bytes);
    env_.pool.release(&p);
  }
  /// `removed_bytes` is the payload cut away by the in-place truncation
  /// (old size - kHeaderBytes): the trimmed packet stays resident at header
  /// size, so this is the only record of the bytes that left the queue here.
  void count_trim(std::uint64_t removed_bytes) {
    ++stats_.trimmed;
    NDPSIM_TELE(++tele_rare_->trim_pkts; tele_rare_->trim_bytes +=
                                         removed_bytes);
    (void)removed_bytes;
  }
  /// `p` is leaving sideways onto the reverse route (return-to-sender).
  void count_bounce(const packet& p) {
    ++stats_.bounced;
    NDPSIM_TELE(++tele_rare_->bounce_pkts; tele_rare_->bounce_bytes +=
                                           p.size_bytes);
    (void)p;
  }
  void count_mark() {
    ++stats_.marked;
    NDPSIM_TELE(++tele_rare_->mark_pkts);
  }

  sim_env& env_;
  telemetry_hot_counters* tele_ = nullptr;  ///< armed slot; nullptr = off
  telemetry_rare_counters* tele_rare_ = nullptr;  ///< armed with tele_

 private:
  // Ring-front prefetch stages for dispatch_run: first the slot the next
  // dequeue will pop (the ring buffer entry), then the packet that slot
  // points at (whose hot header the dequeue body reads).  Both switch on
  // `dequeue_kind_`; defined in flat_dispatch.cpp.
  void prefetch_dequeue_slot() const;
  void prefetch_dequeue_packet() const;

  void service_complete() {
    NDPSIM_ASSERT_MSG(serving_ != nullptr, "queue service event with no packet");
    packet* p = serving_;
    serving_ = nullptr;
    ++stats_.forwarded;
    stats_.bytes_forwarded += p->size_bytes;
    NDPSIM_TELE(++tele_->deq_pkts; tele_->deq_bytes += p->size_bytes);
    if (on_depart_) on_depart_(*p);
    send_to_next_hop(*p);
    try_start_service();
  }

  linkspeed_bps rate_;
  packet* serving_ = nullptr;
  bool paused_ = false;
  // delta -> lane cache, most-recent first (-1 never matches a valid delta).
  simtime_t lane_delta_[2] = {-1, -1};
  std::uint32_t lane_id_[2] = {event_list::kNoLane, event_list::kNoLane};
  queue_stats stats_;
  dequeue_kind dequeue_kind_;
  std::function<void(packet&)> on_depart_;
};

}  // namespace ndpsim
