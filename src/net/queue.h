// Base class for store-and-forward output queues.
//
// A queue serializes one packet at a time at its link rate, then hands it to
// the next hop (normally a pipe).  Subclasses define buffering policy by
// implementing `enqueue_arrival` (admit / drop / trim / mark) and
// `dequeue_next` (scheduling discipline across internal sub-queues).
//
// Queues support PFC pausing: while paused, the in-flight packet finishes
// serializing but no new packet starts (pause at packet boundary, as 802.1Qbb
// does).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/packet.h"
#include "net/route.h"
#include "net/sim_env.h"
#include "sim/eventlist.h"

namespace ndpsim {

/// Per-queue statistics, kept by the base class.
struct queue_stats {
  std::uint64_t arrivals = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t dropped = 0;
  std::uint64_t trimmed = 0;
  std::uint64_t bounced = 0;
  std::uint64_t marked = 0;
  std::uint64_t bytes_forwarded = 0;
};

class queue_base : public packet_sink, public event_source {
  // coexist_queue composes two child queues and drives their (protected)
  // admission/scheduling hooks directly, without giving them the wire.
  friend class coexist_queue;

 public:
  queue_base(sim_env& env, linkspeed_bps rate, name_ref name)
      : event_source(env.events, std::move(name)), env_(env), rate_(rate) {
    NDPSIM_ASSERT(rate > 0);
  }

  void receive(packet& p) final {
    ++stats_.arrivals;
    enqueue_arrival(p);
    try_start_service();
  }

  void do_next_event() final {
    NDPSIM_ASSERT_MSG(serving_ != nullptr, "queue service event with no packet");
    packet* p = serving_;
    serving_ = nullptr;
    ++stats_.forwarded;
    stats_.bytes_forwarded += p->size_bytes;
    if (on_depart_) on_depart_(*p);
    send_to_next_hop(*p);
    try_start_service();
  }

  /// PFC: pause/resume serving (the packet on the wire always completes).
  void set_paused(bool paused) {
    paused_ = paused;
    if (!paused_) try_start_service();
  }
  [[nodiscard]] bool paused() const { return paused_; }
  [[nodiscard]] bool busy() const { return serving_ != nullptr; }

  [[nodiscard]] linkspeed_bps rate() const { return rate_; }
  [[nodiscard]] const queue_stats& stats() const { return stats_; }

  /// Called just before a packet leaves the queue (PFC buffer accounting).
  void set_depart_hook(std::function<void(packet&)> hook) {
    on_depart_ = std::move(hook);
  }

  /// Bytes currently buffered (excluding the packet being serialized).
  [[nodiscard]] virtual std::uint64_t buffered_bytes() const = 0;
  [[nodiscard]] virtual std::size_t buffered_packets() const = 0;

 protected:
  /// Admit/drop/trim/mark the arriving packet; must either buffer it or
  /// dispose of it (release to pool / bounce).
  virtual void enqueue_arrival(packet& p) = 0;
  /// Pick the next packet to serialize, or nullptr if none.
  [[nodiscard]] virtual packet* dequeue_next() = 0;

  void try_start_service() {
    if (serving_ != nullptr || paused_) return;
    packet* p = dequeue_next();
    if (p == nullptr) return;
    serving_ = p;
    // The service event is deliberately not kept as a handle: once a packet
    // starts serializing it always completes (even under PFC pause).
    events().schedule_in(*this, serialization_time(p->size_bytes, rate_));
  }

  void drop(packet& p) {
    ++stats_.dropped;
    env_.pool.release(&p);
  }
  void count_trim() { ++stats_.trimmed; }
  void count_bounce() { ++stats_.bounced; }
  void count_mark() { ++stats_.marked; }

  sim_env& env_;

 private:
  linkspeed_bps rate_;
  packet* serving_ = nullptr;
  bool paused_ = false;
  queue_stats stats_;
  std::function<void(packet&)> on_depart_;
};

}  // namespace ndpsim
