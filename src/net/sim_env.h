// Bundle of per-simulation state: the event list, the RNG and the packet
// pool. One `sim_env` per experiment; passed by reference to all components
// so nothing in the library is a global.
#pragma once

#include <memory>
#include <random>

#include "net/packet.h"
#include "sim/eventlist.h"

namespace ndpsim {

class telemetry_plane;

/// Defined in net/flat_dispatch.cpp: registers the pipe/queue batch
/// handlers on a fresh event list.
void install_flat_handlers(event_list& events);

struct sim_env {
  explicit sim_env(std::uint64_t seed = 1) : rng(seed) {
    install_flat_handlers(events);
  }

  event_list events;
  std::mt19937_64 rng;
  packet_pool pool;

  /// Optional telemetry plane for this simulation.  Attach BEFORE building
  /// the fabric: registration happens at component construction (queues,
  /// pipes) and at demux mount time, and components built while this is
  /// null simply stay unarmed — the sim_env-level "off" of the zero-cost
  /// contract (see sim/telemetry.h).  shared_ptr so a `parallel_runner`
  /// job's plane outlives its env on the experiment outcome.
  std::shared_ptr<telemetry_plane> telemetry;

  [[nodiscard]] simtime_t now() const { return events.now(); }

  /// Uniform integer in [0, n).  Lemire's multiply-shift reduction: one
  /// 128-bit multiply on the hot path, no per-call distribution object, and
  /// the rejection branch is taken with probability < n / 2^64 (never for the
  /// small fan-outs the simulator draws).
  [[nodiscard]] std::uint64_t rand_below(std::uint64_t n) {
    NDPSIM_ASSERT(n > 0);
    using u128 = unsigned __int128;
    u128 m = u128(rng()) * n;
    if (static_cast<std::uint64_t>(m) < n) [[unlikely]] {
      const std::uint64_t threshold = (0 - n) % n;
      while (static_cast<std::uint64_t>(m) < threshold) {
        m = u128(rng()) * n;
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }
  /// Uniform double in [0, 1): the top 53 bits of one draw, scaled.
  [[nodiscard]] double rand_unit() {
    return static_cast<double>(rng() >> 11) * 0x1.0p-53;
  }
  /// Fair coin.
  [[nodiscard]] bool rand_coin() { return rand_below(2) == 0; }
};

}  // namespace ndpsim
