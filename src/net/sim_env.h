// Bundle of per-simulation state: the event list, the RNG and the packet
// pool. One `sim_env` per experiment; passed by reference to all components
// so nothing in the library is a global.
#pragma once

#include <random>

#include "net/packet.h"
#include "sim/eventlist.h"

namespace ndpsim {

struct sim_env {
  explicit sim_env(std::uint64_t seed = 1) : rng(seed) {}

  event_list events;
  std::mt19937_64 rng;
  packet_pool pool;

  [[nodiscard]] simtime_t now() const { return events.now(); }

  /// Uniform integer in [0, n).
  [[nodiscard]] std::uint64_t rand_below(std::uint64_t n) {
    NDPSIM_ASSERT(n > 0);
    return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(rng);
  }
  /// Uniform double in [0, 1).
  [[nodiscard]] double rand_unit() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(rng);
  }
  /// Fair coin.
  [[nodiscard]] bool rand_coin() { return rand_below(2) == 0; }
};

}  // namespace ndpsim
