#include "net/route.h"
