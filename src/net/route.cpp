#include "net/route.h"

#include <array>

namespace ndpsim {

namespace {
// Longest identity-resolved route supported.  Fabric routes top out around
// 18 hops (6 links x 3 elements under PFC, plus the demux terminal);
// hand-built test wiring stays far below this.
constexpr std::size_t kMaxIdentityHops = 4096;
}  // namespace

const std::uint32_t* identity_slots(std::size_t n) {
  static const auto table = [] {
    std::array<std::uint32_t, kMaxIdentityHops> a{};
    for (std::uint32_t i = 0; i < kMaxIdentityHops; ++i) a[i] = i;
    return a;
  }();
  NDPSIM_ASSERT_MSG(n <= kMaxIdentityHops, "route too long for identity slots");
  return table.data();
}

}  // namespace ndpsim
