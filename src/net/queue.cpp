#include "net/queue.h"
