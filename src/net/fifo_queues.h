// FIFO queue family: plain drop-tail, DCTCP sharp-threshold ECN marking,
// DCQCN RED-style probabilistic ECN marking, and the two-band host priority
// queue used as end-host NICs.
#pragma once

#include "net/queue.h"
#include "net/ring_fifo.h"

namespace ndpsim {

/// Drop-tail FIFO with a byte capacity.
class drop_tail_queue : public queue_base {
 public:
  drop_tail_queue(sim_env& env, linkspeed_bps rate, std::uint64_t capacity_bytes,
                  name_ref name = "droptail")
      : queue_base(env, rate, std::move(name), dequeue_kind::fifo),
        capacity_(capacity_bytes) {}

  [[nodiscard]] std::uint64_t buffered_bytes() const override { return bytes_; }
  [[nodiscard]] std::size_t buffered_packets() const override {
    return fifo_.size();
  }
  [[nodiscard]] std::uint64_t capacity_bytes() const { return capacity_; }

  // dequeue_kind::fifo hooks (see queue_base::dequeue_next_dispatch).  The
  // qualified call is static even for the ECN subclasses — they share this
  // exact dequeue body and only override admission.
  [[nodiscard]] packet* dequeue_direct() {
    return drop_tail_queue::dequeue_next();
  }
  void prefetch_front_slots() const { fifo_.prefetch_front_slot(); }
  void prefetch_front_packets() const {
    if (!fifo_.empty()) __builtin_prefetch(fifo_.front());
  }

 protected:
  void enqueue_arrival(packet& p) override {
    if (bytes_ + p.size_bytes > capacity_) {
      drop(p);
      return;
    }
    admit(p);
  }

  [[nodiscard]] packet* dequeue_next() override {
    if (fifo_.empty()) return nullptr;
    packet* p = fifo_.front();
    fifo_.pop_front();
    bytes_ -= p->size_bytes;
    return p;
  }

  void admit(packet& p) {
    bytes_ += p.size_bytes;
    p.enqueue_time = env_.now();
    fifo_.push_back(&p);
  }

  ring_fifo<packet*> fifo_;
  std::uint64_t bytes_ = 0;
  std::uint64_t capacity_;
};

/// DCTCP-style marking: CE is set on arriving ECT packets whenever the
/// instantaneous queue exceeds a sharp threshold K.
class ecn_threshold_queue final : public drop_tail_queue {
 public:
  ecn_threshold_queue(sim_env& env, linkspeed_bps rate,
                      std::uint64_t capacity_bytes, std::uint64_t mark_bytes,
                      name_ref name = "ecn")
      : drop_tail_queue(env, rate, capacity_bytes, std::move(name)),
        mark_bytes_(mark_bytes) {}

 protected:
  void enqueue_arrival(packet& p) override {
    if (bytes_ + p.size_bytes > capacity_) {
      drop(p);
      return;
    }
    if (bytes_ > mark_bytes_ && p.has_flag(pkt_flag::ect)) {
      p.set_flag(pkt_flag::ce);
      count_mark();
    }
    admit(p);
  }

 private:
  std::uint64_t mark_bytes_;
};

/// RED-style probabilistic ECN marking (DCQCN congestion point): mark with
/// probability rising linearly from 0 at kmin to pmax at kmax, and always
/// above kmax.
class red_ecn_queue final : public drop_tail_queue {
 public:
  red_ecn_queue(sim_env& env, linkspeed_bps rate, std::uint64_t capacity_bytes,
                std::uint64_t kmin_bytes, std::uint64_t kmax_bytes, double pmax,
                name_ref name = "red")
      : drop_tail_queue(env, rate, capacity_bytes, std::move(name)),
        kmin_(kmin_bytes),
        kmax_(kmax_bytes),
        pmax_(pmax) {
    NDPSIM_ASSERT(kmin_ <= kmax_);
    NDPSIM_ASSERT(pmax_ >= 0.0 && pmax_ <= 1.0);
  }

 protected:
  void enqueue_arrival(packet& p) override {
    if (bytes_ + p.size_bytes > capacity_) {
      drop(p);
      return;
    }
    if (p.has_flag(pkt_flag::ect) && should_mark()) {
      p.set_flag(pkt_flag::ce);
      count_mark();
    }
    admit(p);
  }

 private:
  [[nodiscard]] bool should_mark() {
    if (bytes_ <= kmin_) return false;
    if (bytes_ >= kmax_) return true;
    const double frac = static_cast<double>(bytes_ - kmin_) /
                        static_cast<double>(kmax_ - kmin_);
    return env_.rand_unit() < frac * pmax_;
  }

  std::uint64_t kmin_;
  std::uint64_t kmax_;
  double pmax_;
};

/// End-host NIC queue: strict priority for control packets over data.
/// `data_capacity_bytes` bounds buffered data (0 = unbounded): window-based
/// transports need a finite NIC so self-congestion surfaces as loss instead
/// of an invisible standing queue; receiver-paced transports (NDP, DCQCN
/// under PFC) never build one and may leave it unbounded.  Control packets
/// are always admitted (they are tiny and real NICs prioritize them).
class host_priority_queue final : public queue_base {
 public:
  host_priority_queue(sim_env& env, linkspeed_bps rate,
                      name_ref name = "hostnic",
                      std::uint64_t data_capacity_bytes = 0)
      : queue_base(env, rate, std::move(name), dequeue_kind::host_priority),
        data_capacity_(data_capacity_bytes) {}

  [[nodiscard]] std::uint64_t buffered_bytes() const override {
    return bytes_;
  }
  [[nodiscard]] std::size_t buffered_packets() const override {
    return packets_;
  }

  // dequeue_kind::host_priority hooks.
  [[nodiscard]] packet* dequeue_direct() {
    return host_priority_queue::dequeue_next();
  }
  void prefetch_front_slots() const {
    ctrl_.prefetch_front_slot();
    data_.prefetch_front_slot();
  }
  void prefetch_front_packets() const {
    if (!ctrl_.empty()) __builtin_prefetch(ctrl_.front());
    if (!data_.empty()) __builtin_prefetch(data_.front());
  }

 protected:
  void enqueue_arrival(packet& p) override {
    if (p.is_header_class()) {
      bytes_ += p.size_bytes;
      ++packets_;
      p.enqueue_time = env_.now();
      ctrl_.push_back(&p);
      return;
    }
    if (data_capacity_ != 0 && data_bytes_ + p.size_bytes > data_capacity_) {
      drop(p);
      return;
    }
    bytes_ += p.size_bytes;
    data_bytes_ += p.size_bytes;
    ++packets_;
    p.enqueue_time = env_.now();
    data_.push_back(&p);
  }

  [[nodiscard]] packet* dequeue_next() override {
    packet* p = nullptr;
    if (!ctrl_.empty()) {
      p = ctrl_.front();
      ctrl_.pop_front();
    } else if (!data_.empty()) {
      p = data_.front();
      data_.pop_front();
      data_bytes_ -= p->size_bytes;
    }
    if (p != nullptr) {
      bytes_ -= p->size_bytes;
      --packets_;
    }
    return p;
  }

 private:
  ring_fifo<packet*> ctrl_;
  ring_fifo<packet*> data_;
  std::uint64_t bytes_ = 0;
  std::uint64_t data_bytes_ = 0;
  std::size_t packets_ = 0;  ///< ctrl_+data_ depth, kept incrementally
  std::uint64_t data_capacity_;
};

}  // namespace ndpsim
