// Registration of the flat (batch) dispatch handlers for the fabric hot
// path.  Lives in net/ because the handlers are the components' own static
// batch functions (pipe delivery, queue service completion); the event
// kernel in sim/ stays ignorant of concrete component types.
#pragma once

namespace ndpsim {

class event_list;

/// Register the batch handlers for every flat-dispatched class
/// (pipe_expiry, queue_service).  Called once per `sim_env` at
/// construction; idempotent.
void install_flat_handlers(event_list& events);

}  // namespace ndpsim
