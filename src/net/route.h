// Source routes: explicit sequences of packet sinks.
//
// A route alternates queue and pipe elements and ends at a terminal sink (a
// per-host `flow_demux` for interned fabric routes, or a transport endpoint
// for hand-built ones):
//   [q0, p0, q1, p1, ..., q_{n-1}, p_{n-1}, terminal]
// Queues sit at even indices. Each route may know its reverse (same switches,
// opposite direction), which lets an NDP switch return a packet to its sender
// from the middle of the path.
//
// `route` itself is a non-owning view with one level of indirection: hop i
// is `table[slots[i]]`, where `slots` is an immutable sequence of sink-slot
// ids and `table` maps slot id -> live `packet_sink*`.  That split is what
// lets fabric structure be shared across simulations (the blueprint/instance
// split): the slot sequences live once in a `fabric_blueprint`'s structural
// path table, shared read-only by every `sim_env`, while each
// `fabric_instance` supplies its own sink table of materialized queues,
// pipes and demuxes.  Hand-built routes (`owned_route`, the `path_table`
// hop arena) use an identity slot sequence over their own sink storage, so
// `at(i)` behaves exactly as before.
//
// Reverse-pointer lifetime contract: `reverse()` is a raw pointer, so the
// reverse route (and the storage its hops view) must outlive every use of the
// forward route — in particular packets in flight carry `reverse_rt` for
// return-to-sender.  Interned routes satisfy this by construction: forward
// and reverse of a path are interned together into the same arena and neither
// is ever freed before the table.  Hand-built pairs must keep both sides
// alive for the duration of the run; `path_table` asserts reciprocity
// (`fwd->reverse()->reverse() == fwd`) at interning time.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/assert.h"

namespace ndpsim {

struct packet;

/// Concrete-type tag for the hop-delivery fast path, mirroring
/// `dequeue_kind` on the dequeue side: the three sink types a fabric route
/// is built from (queues at even hops, pipes at odd hops, a per-host
/// `flow_demux` terminal) set their tag at construction, and
/// `send_to_next_hop` switches on it to call the concrete `receive` body
/// directly instead of through the vtable.  `other` (transport endpoints,
/// test sinks) keeps the virtual call — the tag is an optimization hint,
/// never a semantics switch.
enum class sink_kind : std::uint8_t {
  other = 0,
  pipe,
  queue,
  demux,
};

/// Anything that can receive a packet: queues, pipes, transport endpoints.
class packet_sink {
 public:
  virtual ~packet_sink() = default;
  virtual void receive(packet& p) = 0;

  [[nodiscard]] sink_kind kind() const { return kind_; }

  /// True only for `flow_demux` (set in its constructor).  A non-virtual
  /// tag rather than dynamic_cast/virtual: the flat batch handlers test it
  /// on the prefetch path to reach one stage past delivery — into the
  /// demux's flow hash bucket — without an indirect call.
  [[nodiscard]] bool is_terminal_demux() const {
    return kind_ == sink_kind::demux;
  }

 protected:
  sink_kind kind_ = sink_kind::other;
};

/// The shared identity slot sequence {0, 1, 2, ...}: routes over contiguous
/// private hop storage use it so the two-level `table[slots[i]]` resolution
/// collapses to `hops[i]`.  Asserts `n` within the (generous) static bound.
[[nodiscard]] const std::uint32_t* identity_slots(std::size_t n);

class route {
 public:
  route() = default;
  /// View over externally-owned contiguous hop storage (path_table arena,
  /// owned_route): identity slots, hop i is `hops[i]`.
  route(packet_sink* const* hops, std::uint32_t n)
      : route(hops, identity_slots(n), n) {}
  /// Slot-indexed view: hop i is `table[slots[i]]`.  `slots` is shared
  /// immutable structure (a blueprint's interned path); `table` is the
  /// owning instance's per-env sink table.  Both must outlive the view.
  route(packet_sink* const* table, const std::uint32_t* slots, std::uint32_t n)
      : table_(table), slots_(slots), n_(n) {
    NDPSIM_ASSERT_MSG(table != nullptr && slots != nullptr && n > 0,
                      "route view needs hops");
  }

  [[nodiscard]] packet_sink& at(std::size_t i) const {
    NDPSIM_ASSERT_MSG(i < n_, "route hop out of range");
    return *table_[slots_[i]];
  }

  // Hop resolution is a dependent-load chain (route object -> slot id ->
  // sink table entry -> sink object) over working sets that fall out of
  // cache at k=32 scale; the flat batch handlers pipeline it across a
  // dispatch run with these prefetch stages, issued one iteration apart so
  // each stage only dereferences what the previous stage already fetched.
  void prefetch_hop_slot(std::size_t i) const {
    if (i < n_) __builtin_prefetch(&slots_[i]);
  }
  void prefetch_hop_table(std::size_t i) const {
    if (i < n_) __builtin_prefetch(&table_[slots_[i]]);
  }
  void prefetch_hop_sink(std::size_t i) const {
    if (i < n_) __builtin_prefetch(table_[slots_[i]]);
  }
  /// Resolve hop `i` without the range assert (nullptr when out of range):
  /// the prefetch pipeline reads the sink pointer a stage after
  /// `prefetch_hop_table` so the load hits cache, then peeks the sink's
  /// terminal flag to extend the chain into the demux hash bucket.
  [[nodiscard]] packet_sink* hop_sink(std::size_t i) const {
    return i < n_ ? table_[slots_[i]] : nullptr;
  }
  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }

  /// Number of queue elements (queues at even indices before the terminal).
  [[nodiscard]] std::size_t queue_hops() const { return n_ / 2; }

  /// The reverse route (traverses the same switches back to the source), or
  /// nullptr if none was registered.  See the lifetime contract above: the
  /// returned pointer is only valid while the reverse route's owner lives.
  [[nodiscard]] const route* reverse() const { return reverse_; }
  void set_reverse(const route* r) { reverse_ = r; }

 protected:
  packet_sink* const* table_ = nullptr;
  const std::uint32_t* slots_ = nullptr;
  std::uint32_t n_ = 0;
  const route* reverse_ = nullptr;
};

/// A route that owns its hop storage: hand-built wiring in tests, benches and
/// custom topologies, and the scratch routes `topology::make_route_pair`
/// returns for the path_table to intern.  Not copyable — the base view points
/// into this object's vector.
class owned_route final : public route {
 public:
  owned_route() = default;
  explicit owned_route(std::vector<packet_sink*> hops) { adopt(std::move(hops)); }
  owned_route(const owned_route&) = delete;
  owned_route& operator=(const owned_route&) = delete;

  void push_back(packet_sink* s) {
    NDPSIM_ASSERT(s != nullptr);
    store_.push_back(s);
    adopt_store();
  }

 private:
  void adopt(std::vector<packet_sink*> hops) {
    store_ = std::move(hops);
    adopt_store();
  }

  void adopt_store() {
    table_ = store_.data();
    n_ = static_cast<std::uint32_t>(store_.size());
    slots_ = identity_slots(store_.size());
  }

  std::vector<packet_sink*> store_;
};

}  // namespace ndpsim
