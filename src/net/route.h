// Source routes: explicit sequences of packet sinks.
//
// A route alternates queue and pipe elements and ends at a transport endpoint:
//   [q0, p0, q1, p1, ..., q_{n-1}, p_{n-1}, endpoint]
// Queues sit at even indices. Each route may know its reverse (same switches,
// opposite direction), which lets an NDP switch return a packet to its sender
// from the middle of the path.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/assert.h"

namespace ndpsim {

struct packet;

/// Anything that can receive a packet: queues, pipes, transport endpoints.
class packet_sink {
 public:
  virtual ~packet_sink() = default;
  virtual void receive(packet& p) = 0;
};

class route {
 public:
  route() = default;
  explicit route(std::vector<packet_sink*> hops) : hops_(std::move(hops)) {}

  void push_back(packet_sink* s) {
    NDPSIM_ASSERT(s != nullptr);
    hops_.push_back(s);
  }

  [[nodiscard]] packet_sink& at(std::size_t i) const {
    NDPSIM_ASSERT_MSG(i < hops_.size(), "route hop out of range");
    return *hops_[i];
  }
  [[nodiscard]] std::size_t size() const { return hops_.size(); }
  [[nodiscard]] bool empty() const { return hops_.empty(); }

  /// Number of queue elements (queues at even indices before the endpoint).
  [[nodiscard]] std::size_t queue_hops() const { return hops_.size() / 2; }

  /// The reverse route (traverses the same switches back to the source), or
  /// nullptr if none was registered.
  [[nodiscard]] const route* reverse() const { return reverse_; }
  void set_reverse(const route* r) { reverse_ = r; }

 private:
  std::vector<packet_sink*> hops_;
  const route* reverse_ = nullptr;
};

}  // namespace ndpsim
