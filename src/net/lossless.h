// Priority flow control (802.1Qbb style) for lossless-Ethernet experiments.
//
// Model: shared-buffer switches account every buffered packet against the
// ingress port it arrived on, from arrival until it departs the egress queue.
// When an ingress port's count crosses XOFF the switch sends PAUSE to the
// upstream transmitter (one link propagation away); when it falls below XON
// it sends RESUME.  Pausing stops the upstream egress queue at a packet
// boundary.  This reproduces PFC's head-of-line blocking and pause cascades
// (the collateral-damage mechanism of Figs 15/19 in the paper).
//
// A `pfc_ingress` is placed on routes between the arrival pipe and the egress
// queue.  It forwards packets immediately (fabric is not the bottleneck) but
// tags them for buffer accounting; every lossless egress queue gets a depart
// hook that credits the tagged ingress.
#pragma once

#include <utility>

#include "net/queue.h"

namespace ndpsim {

class pfc_ingress final : public packet_sink, public event_source {
 public:
  /// `upstream` is the transmitter across the inbound link (an egress queue of
  /// the neighbour switch or a host NIC); `pause_delay` the link propagation.
  pfc_ingress(sim_env& env, queue_base* upstream, simtime_t pause_delay,
              std::uint64_t xoff_bytes, std::uint64_t xon_bytes,
              name_ref name = "pfc")
      : event_source(env.events, std::move(name)),
        upstream_(upstream),
        pause_delay_(pause_delay),
        // PAUSE/RESUME propagation is monotone (fixed delay), so signals
        // ride a generic-class lane: payload = the pause bit, delivered
        // per-entry via do_lane_event (generic lanes never batch-dispatch,
        // so sharing the lane with other generic sources is safe).
        lane_(env.events.lane_for(dispatch_class::generic, pause_delay)),
        xoff_(xoff_bytes),
        xon_(xon_bytes) {
    NDPSIM_ASSERT(xon_ <= xoff_);
    NDPSIM_ASSERT_MSG(lane_ != event_list::kNoLane,
                      "event lane table exhausted by PFC pause delays");
  }

  void receive(packet& p) override {
    buffered_ += p.size_bytes;
    NDPSIM_ASSERT_MSG(p.ingress == nullptr, "packet already has PFC context");
    p.ingress = this;
    if (!pause_requested_ && buffered_ > xoff_) {
      pause_requested_ = true;
      ++pauses_sent_;
      signal(true);
    }
    send_to_next_hop(p);
  }

  /// Called (via egress depart hooks) when a tagged packet leaves its egress
  /// queue at this switch.
  void on_depart(packet& p) {
    NDPSIM_ASSERT(buffered_ >= p.size_bytes);
    buffered_ -= p.size_bytes;
    if (pause_requested_ && buffered_ < xon_) {
      pause_requested_ = false;
      signal(false);
    }
  }

  void do_next_event() override {
    NDPSIM_ASSERT_MSG(false, "PFC signals ride lanes, not timers");
  }

  void do_lane_event(std::uint64_t payload) override {
    if (upstream_ != nullptr) upstream_->set_paused(payload != 0);
  }

  [[nodiscard]] std::uint64_t buffered_bytes() const { return buffered_; }
  [[nodiscard]] std::uint64_t pauses_sent() const { return pauses_sent_; }
  [[nodiscard]] bool pause_requested() const { return pause_requested_; }

  /// Depart hook suitable for any lossless egress queue.
  static void credit_on_depart(packet& p) {
    if (p.ingress != nullptr) {
      p.ingress->on_depart(p);
      p.ingress = nullptr;
    }
  }

 private:
  void signal(bool pause) {
    events().schedule_lane(lane_, *this, events().now() + pause_delay_,
                           pause ? 1 : 0);
  }

  queue_base* upstream_;
  simtime_t pause_delay_;
  std::uint32_t lane_;
  std::uint64_t xoff_;
  std::uint64_t xon_;
  std::uint64_t buffered_ = 0;
  std::uint64_t pauses_sent_ = 0;
  bool pause_requested_ = false;
};

}  // namespace ndpsim
