// Lazily-allocated ring-buffer FIFO for the packet path.
//
// `std::deque` allocates its map and first block on *construction* — two
// heap allocations per deque before anything is enqueued.  A fabric
// materializes hundreds of thousands of queues and pipes (k=32: ~100k
// objects, most of which never buffer a packet in a given run), so those
// eager allocations dominated `fabric_instance` stamping.  A `ring_fifo`
// allocates nothing until the first push, grows by doubling (power-of-two
// capacity, index masking), and on the hot path replaces the deque's
// segment-map indirection with one masked array access.
//
// Supports exactly the operations the queues and pipes use: push/emplace at
// the back, pop at the front (FIFO) or back (NDP tail trim), front/back
// peeks, size/empty.  `T` must be default-constructible and assignable
// (packet pointers and small PODs here).
#pragma once

#include <cstddef>
#include <memory>
#include <utility>

#include "sim/assert.h"

namespace ndpsim {

template <typename T>
class ring_fifo {
 public:
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  void push_back(const T& v) { emplace_back(v); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == cap_) grow();
    T& slot = buf_[(head_ + size_) & (cap_ - 1)];
    slot = T(std::forward<Args>(args)...);
    ++size_;
    return slot;
  }

  [[nodiscard]] T& front() {
    NDPSIM_ASSERT_MSG(size_ > 0, "front() on empty ring_fifo");
    return buf_[head_];
  }
  [[nodiscard]] const T& front() const {
    NDPSIM_ASSERT_MSG(size_ > 0, "front() on empty ring_fifo");
    return buf_[head_];
  }
  [[nodiscard]] T& back() {
    NDPSIM_ASSERT_MSG(size_ > 0, "back() on empty ring_fifo");
    return buf_[(head_ + size_ - 1) & (cap_ - 1)];
  }
  [[nodiscard]] const T& back() const {
    NDPSIM_ASSERT_MSG(size_ > 0, "back() on empty ring_fifo");
    return buf_[(head_ + size_ - 1) & (cap_ - 1)];
  }

  /// Prefetch the slot `front()` would return (no-op when empty).  The batch
  /// dispatch pipeline issues this a few entries ahead so the ring entry —
  /// and, one stage later, the packet it points at — are in cache by the
  /// time the dequeue body pops them.
  void prefetch_front_slot() const {
    if (size_ != 0) __builtin_prefetch(&buf_[head_]);
  }

  void pop_front() {
    NDPSIM_ASSERT_MSG(size_ > 0, "pop_front() on empty ring_fifo");
    head_ = (head_ + 1) & (cap_ - 1);
    --size_;
  }
  void pop_back() {
    NDPSIM_ASSERT_MSG(size_ > 0, "pop_back() on empty ring_fifo");
    --size_;
  }

  /// i-th element from the front (0 = front()).  Used by the event list's
  /// tag renumbering, which must walk lane entries in FIFO order.
  [[nodiscard]] T& at(std::size_t i) {
    NDPSIM_ASSERT_MSG(i < size_, "ring_fifo index out of range");
    return buf_[(head_ + i) & (cap_ - 1)];
  }
  [[nodiscard]] const T& at(std::size_t i) const {
    NDPSIM_ASSERT_MSG(i < size_, "ring_fifo index out of range");
    return buf_[(head_ + i) & (cap_ - 1)];
  }

  /// Remove every element equal to `v`, preserving the relative order of
  /// the rest.  O(size) compaction — teardown-path only (e.g. the pull
  /// pacer eagerly dropping a destroyed sink's ring entry), never per
  /// event.
  std::size_t erase_value(const T& v) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < size_; ++i) {
      T& e = buf_[(head_ + i) & (cap_ - 1)];
      if (e == v) continue;
      if (kept != i) buf_[(head_ + kept) & (cap_ - 1)] = std::move(e);
      ++kept;
    }
    const std::size_t removed = size_ - kept;
    size_ = kept;
    return removed;
  }

  /// Pre-size the buffer to at least `n` slots (rounded up to a power of
  /// two) so a known burst does not pay doubling-growth copies mid-run.
  void reserve(std::size_t n) {
    if (n <= cap_) return;
    std::size_t new_cap = cap_ == 0 ? 8 : cap_;
    while (new_cap < n) new_cap *= 2;
    grow_to(new_cap);
  }

 private:
  void grow() { grow_to(cap_ == 0 ? 8 : cap_ * 2); }

  void grow_to(std::size_t new_cap) {
    // for_overwrite: every slot is written by the move loop or a later
    // guarded push; zero-filling the new buffer would be pure overhead.
    auto fresh = std::make_unique_for_overwrite<T[]>(new_cap);
    for (std::size_t i = 0; i < size_; ++i) {
      fresh[i] = std::move(buf_[(head_ + i) & (cap_ - 1)]);
    }
    buf_ = std::move(fresh);
    cap_ = new_cap;
    head_ = 0;
  }

  std::unique_ptr<T[]> buf_;
  std::size_t cap_ = 0;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace ndpsim
