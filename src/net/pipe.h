// A pipe models link propagation delay: packets entering come out unchanged
// `delay` later, in order. Serialization happens in the upstream queue, so a
// pipe can hold any number of packets in flight.
#pragma once

#include <utility>

#include "net/packet.h"
#include "net/ring_fifo.h"
#include "net/route.h"
#include "net/sim_env.h"
#include "sim/eventlist.h"

namespace ndpsim {

class pipe final : public packet_sink, public event_source {
 public:
  pipe(sim_env& env, simtime_t delay, name_ref name = "pipe")
      : event_source(env.events, std::move(name)), delay_(delay) {
    NDPSIM_ASSERT(delay_ >= 0);
  }

  [[nodiscard]] simtime_t delay() const { return delay_; }

  void receive(packet& p) override {
    const simtime_t due = events().now() + delay_;
    inflight_.emplace_back(due, &p);
    // FIFO by construction: the one armed timer always tracks the head of
    // the line, so only the empty->non-empty transition arms it.
    if (inflight_.size() == 1) {
      timer_ = events().schedule_at(*this, due);
    }
  }

  void do_next_event() override {
    NDPSIM_ASSERT(!inflight_.empty());
    // Deliver everything due now (multiple packets can share an arrival time).
    while (!inflight_.empty() && inflight_.front().first <= events().now()) {
      packet* p = inflight_.front().second;
      inflight_.pop_front();
      send_to_next_hop(*p);
    }
    if (!inflight_.empty()) {
      events().reschedule(timer_, *this, inflight_.front().first);
    }
  }

  [[nodiscard]] std::size_t in_flight() const { return inflight_.size(); }

 private:
  simtime_t delay_;
  ring_fifo<std::pair<simtime_t, packet*>> inflight_;
  timer_handle timer_;
};

}  // namespace ndpsim
