// A pipe models link propagation delay: packets entering come out unchanged
// `delay` later, in order. Serialization happens in the upstream queue, so a
// pipe can hold any number of packets in flight.
//
// Hot-path layout: a pipe's deadlines are perfectly monotone (every packet
// is due exactly `delay` after entry), so in-flight packets live in the
// event list's (pipe_expiry, delay) lane — one ring push per entry, one
// batch handler call per same-time run — instead of a per-pipe ring plus a
// rescheduled head timer.  The pipe object holds no in-flight state at all;
// delivery needs only the lane entry's payload (the packet pointer), so the
// flat handler touches pipe memory only for the telemetry slot pointer (a
// never-taken branch while unarmed; compiled out entirely with
// NDPSIM_TELEMETRY_DISABLED).  All pipes sharing one delay share one lane.
#pragma once

#include <utility>

#include "net/packet.h"
#include "net/route.h"
#include "net/sim_env.h"
#include "sim/eventlist.h"
#include "sim/telemetry.h"

namespace ndpsim {

class pipe final : public packet_sink, public event_source {
 public:
  pipe(sim_env& env, simtime_t delay, name_ref name = "pipe")
      : event_source(env.events, std::move(name), dispatch_class::pipe_expiry),
        delay_(delay),
        lane_(env.events.lane_for(dispatch_class::pipe_expiry, delay)) {
    kind_ = sink_kind::pipe;  // hop-delivery fast path (send_to_next_hop)
    NDPSIM_ASSERT(delay_ >= 0);
    // Distinct pipe delays come from topology configs — a handful of values
    // per fabric.  Exhausting the lane table here means something is
    // generating unbounded distinct delays; fail loudly rather than silently
    // falling back to a slower path.
    NDPSIM_ASSERT_MSG(lane_ != event_list::kNoLane,
                      "event lane table exhausted by pipe delays");
  }

  [[nodiscard]] simtime_t delay() const { return delay_; }

  void receive(packet& p) override {
    NDPSIM_TELE(++tele_->enq_pkts; tele_->enq_bytes += p.size_bytes);
    events().schedule_lane(lane_, *this, events().now() + delay_,
                           reinterpret_cast<std::uint64_t>(&p));
  }

  /// Pipes only ever arm lane events, never plain timers.
  void do_next_event() override {
    NDPSIM_ASSERT_MSG(false, "pipe delivery rides lanes, not timers");
  }

  void do_lane_event(std::uint64_t payload) override {
    packet& p = *reinterpret_cast<packet*>(payload);
    tele_deliver(p);
    send_to_next_hop(p);
  }

  /// Flat batch handler for dispatch_class::pipe_expiry (registered by
  /// `install_flat_handlers`): must do exactly what per-entry
  /// `do_lane_event` does, in order.  Delivery is a dependent-load chain
  /// (packet -> route slot -> sink table entry -> sink object -> demux hash
  /// bucket) whose misses dominate the k=32 hot path, so the run is
  /// pipelined six entries deep: each stage prefetches one link for a
  /// future entry while the current one does real work.  Defined in
  /// flat_dispatch.cpp (the last stage peeks into flow_demux).
  static void dispatch_run(event_source* const* srcs,
                           const std::uint64_t* payloads, std::size_t n);

  /// Arm (or disarm) this pipe's telemetry slot.  A pipe never drops,
  /// trims or marks, so only the hot half is kept.
  void set_telemetry(telemetry_slot t) { tele_ = t.hot; }
  /// Combined snapshot of this pipe's slot (all-zero when unarmed).
  [[nodiscard]] telemetry_counters telemetry() const {
    return combine_telemetry(tele_, nullptr);
  }

 private:
  /// Far-end delivery counting, shared by the per-entry lane path and the
  /// flat batch handler (a static member, so it reaches this directly).
  void tele_deliver(const packet& p) {
    NDPSIM_TELE(++tele_->deq_pkts; tele_->deq_bytes += p.size_bytes);
    (void)p;
  }

  simtime_t delay_;
  std::uint32_t lane_;
  telemetry_hot_counters* tele_ = nullptr;  ///< armed slot; nullptr = off
};

}  // namespace ndpsim
