// Shared-route plumbing between the topology's path table and the transports.
//
// With interned routes, a route is a per-fabric object shared by every flow
// on that (src, dst, path) — so it cannot end at a per-flow endpoint.
// Instead every interned route terminates at the destination host's
// `flow_demux`, which dispatches arriving packets to the endpoint registered
// under the packet's flow id.  A `path_set` is the lightweight view a
// transport borrows at connect time: the multipath route arrays plus the two
// demuxes where it registers its endpoints.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "net/packet.h"
#include "net/route.h"
#include "sim/telemetry.h"

namespace ndpsim {

/// Per-host terminal sink: dispatches delivered packets to the transport
/// endpoint bound under the packet's flow id.  Flow ids are dense across the
/// whole fabric but sparse per host, so the registry is a small flat
/// open-addressed hash table (linear probing, backward-shift deletion):
/// O(flows-at-this-host) memory per host — not O(total-flows), which at
/// k=32 churn scale would cost more than the shared routes save — and one
/// multiply+probe per delivered packet.
///
/// Under flow churn the table both grows and shrinks: unbinding below 1/8
/// load rehashes into a table sized for the live flows, so a host that once
/// terminated a burst does not keep burst-sized probe arrays forever.
///
/// A delivered packet whose flow has no endpoint is a hard error by default
/// (a silently dropped packet usually means a wiring bug).  Recycling changes
/// that: after a flow is torn down, packets already in flight for it may
/// still arrive, and they must be dropped — not misdelivered to whichever
/// flow inherits the id next.  `set_stale_pool` opts into that mode: unbound
/// deliveries are returned to the packet pool and counted instead.
class flow_demux final : public packet_sink {
 public:
  flow_demux() { kind_ = sink_kind::demux; }

  /// Prefetch the probe-chain home bucket for `flow_id`.  Issued by the flat
  /// batch handlers one entry before a terminal delivery, so `receive`'s
  /// first probe is a cache hit.  Only the home slot is fetched — at the
  /// <=50% load the table maintains, most lookups end there.
  void prefetch_flow(std::uint32_t flow_id) const {
    if (!slots_.empty()) {
      __builtin_prefetch(&slots_[hash(flow_id) & (slots_.size() - 1)]);
    }
  }

  void bind(std::uint32_t flow_id, packet_sink* endpoint) {
    NDPSIM_ASSERT(endpoint != nullptr);
    if (slots_.empty() || (bound_ + 1) * 2 > slots_.size()) {
      rehash(slots_.empty() ? 16 : slots_.size() * 2);
    }
    slot& s = find_slot(flow_id);
    // A silently stolen slot would misdeliver every packet of the first
    // flow to the second flow's endpoint (same id, so the endpoint's own
    // flow-id assert cannot catch it); fail loudly instead.  Re-binding the
    // same endpoint is idempotent (e.g. an acceptor shared by many flows
    // re-registered per connection).
    NDPSIM_ASSERT_MSG(s.ep == nullptr || s.ep == endpoint,
                      "flow " << flow_id
                              << " already bound to a different endpoint at "
                                 "this host demux");
    if (s.ep == nullptr) ++bound_;
    s.key = flow_id;
    s.ep = endpoint;
  }

  void unbind(std::uint32_t flow_id) {
    if (slots_.empty()) return;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash(flow_id) & mask;
    while (slots_[i].ep != nullptr && slots_[i].key != flow_id) {
      i = (i + 1) & mask;
    }
    if (slots_[i].ep == nullptr) return;
    slots_[i].ep = nullptr;
    --bound_;
    // Backward-shift the rest of the probe cluster so lookups never need
    // tombstones.
    std::size_t j = i;
    while (true) {
      j = (j + 1) & mask;
      if (slots_[j].ep == nullptr) break;
      const std::size_t home = hash(slots_[j].key) & mask;
      if (((j - home) & mask) >= ((j - i) & mask)) {
        slots_[i] = slots_[j];
        slots_[j].ep = nullptr;
        i = j;
      }
    }
    // Shrink when load drops below 1/8 so churn does not pin the table at
    // its high-water size; rehash to 1/4 load so the next few binds do not
    // immediately grow it back.
    if (slots_.size() > 16 && bound_ * 8 < slots_.size()) {
      std::size_t target = 16;
      while (target < bound_ * 4) target *= 2;
      rehash(target);
    }
  }

  [[nodiscard]] packet_sink* endpoint_for(std::uint32_t flow_id) const {
    if (slots_.empty()) return nullptr;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash(flow_id) & mask;
    while (slots_[i].ep != nullptr) {
      if (slots_[i].key == flow_id) return slots_[i].ep;
      i = (i + 1) & mask;
    }
    return nullptr;
  }
  [[nodiscard]] std::size_t bound_count() const { return bound_; }
  /// Current probe-table size (tests: shrink behaviour under churn).
  [[nodiscard]] std::size_t table_size() const { return slots_.size(); }

  /// Opt into dropping deliveries for unbound flows (returning the packet to
  /// `pool`) instead of treating them as a wiring bug.  Required once flows
  /// are recycled: packets still in flight when their flow is torn down are
  /// stale, and must die here rather than reach the id's next owner.
  void set_stale_pool(packet_pool* pool) { stale_pool_ = pool; }
  [[nodiscard]] std::uint64_t stale_drops() const { return stale_drops_; }

  /// Arm (or disarm) this demux's telemetry slot: enq = terminal
  /// deliveries, deq = packets handed to a bound endpoint, stale_drops =
  /// deliveries for unbound (recycled) flows.
  void set_telemetry(telemetry_slot t) {
    tele_ = t.hot;
    tele_rare_ = t.rare;
  }
  /// Combined snapshot of this demux's slot (all-zero when unarmed).
  [[nodiscard]] telemetry_counters telemetry() const {
    return combine_telemetry(tele_, tele_rare_);
  }
  [[nodiscard]] bool telemetry_armed() const { return tele_ != nullptr; }

  void receive(packet& p) override {
    NDPSIM_TELE(++tele_->enq_pkts; tele_->enq_bytes += p.size_bytes);
    packet_sink* ep = endpoint_for(p.flow_id);
    if (ep == nullptr) {
      NDPSIM_ASSERT_MSG(stale_pool_ != nullptr,
                        "no endpoint bound for flow " << p.flow_id
                                                      << " at host demux");
      ++stale_drops_;
      NDPSIM_TELE(++tele_rare_->stale_drops);
      stale_pool_->release(&p);
      return;
    }
    NDPSIM_TELE(++tele_->deq_pkts; tele_->deq_bytes += p.size_bytes);
    ep->receive(p);
  }

 private:
  struct slot {
    std::uint32_t key = 0;
    packet_sink* ep = nullptr;  ///< nullptr = empty slot
  };

  [[nodiscard]] static std::size_t hash(std::uint32_t k) {
    return k * std::size_t{0x9E3779B97F4A7C15ull} >> 32;
  }

  [[nodiscard]] slot& find_slot(std::uint32_t flow_id) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash(flow_id) & mask;
    while (slots_[i].ep != nullptr && slots_[i].key != flow_id) {
      i = (i + 1) & mask;
    }
    return slots_[i];
  }

  void rehash(std::size_t new_size) {
    std::vector<slot> old = std::move(slots_);
    slots_.assign(new_size, slot{});
    for (const slot& s : old) {
      if (s.ep != nullptr) {
        slot& dst = find_slot(s.key);
        dst = s;
      }
    }
  }

  std::vector<slot> slots_;  ///< power-of-two size
  std::size_t bound_ = 0;
  packet_pool* stale_pool_ = nullptr;  ///< non-null = drop unbound deliveries
  std::uint64_t stale_drops_ = 0;
  telemetry_hot_counters* tele_ = nullptr;  ///< armed slot; nullptr = off
  telemetry_rare_counters* tele_rare_ = nullptr;  ///< armed with tele_
};

/// Borrowed view of a multipath route set: forward/reverse route arrays
/// (pointers into path_table- or manual_paths-owned storage; fwd[i] and
/// rev[i] traverse the same switches in opposite directions) plus the demuxes
/// at the two ends.  Cheap to copy; the owner must outlive every connection
/// using it.
///
/// Borrow rules (the `path_set` lifetime contract):
///  * The view is valid from the moment the owner hands it out until the
///    owner dies — or, for pooled subset views (`pool_token != 0`, produced
///    by `path_table::sample` when it caps the set), until the subset is
///    returned via `path_table::release`.  After release the arrays are
///    recycled for a future flow: a released view (and every copy of it,
///    including the ones transports stored at connect time) must never be
///    dereferenced again.
///  * Release order is therefore: tear the transports down first (cancel
///    timers, unbind the demux entries), release the subset second.  The
///    `flow_factory::destroy` / `flow_recycler` path does this.
///  * The `const route*`s *inside* the arrays are interned fabric state and
///    remain valid for the table's lifetime — only the pointer arrays are
///    pooled.  A stale packet already in flight keeps a valid route even
///    after its flow's subset was released.
struct path_set {
  const route* const* fwd = nullptr;
  const route* const* rev = nullptr;
  std::uint32_t n = 0;
  flow_demux* src_demux = nullptr;  ///< terminal of the reverse routes
  flow_demux* dst_demux = nullptr;  ///< terminal of the forward routes
  /// Non-zero for pooled subset arrays owned by a `path_table`: the handle
  /// `path_table::release` uses to return the arrays to its free pool.
  /// Zero for shared (`all`/`single`) and manually built views, whose
  /// storage is not per-flow and is never released.
  std::uint32_t pool_token = 0;

  [[nodiscard]] std::size_t size() const { return n; }
  [[nodiscard]] bool empty() const { return n == 0; }

  [[nodiscard]] const route* forward(std::size_t i) const {
    NDPSIM_ASSERT_MSG(i < n, "path index out of range");
    return fwd[i];
  }
  [[nodiscard]] const route* reverse(std::size_t i) const {
    NDPSIM_ASSERT_MSG(i < n, "path index out of range");
    return rev[i];
  }

  /// Single-path view of path `i` (MPTCP pins one subflow per path).
  [[nodiscard]] path_set slice(std::size_t i) const {
    NDPSIM_ASSERT_MSG(i < n, "path index out of range");
    return path_set{fwd + i, rev + i, 1, src_demux, dst_demux};
  }

  /// Register the receiving endpoint for `flow_id` (terminal of fwd routes).
  void bind_dst(std::uint32_t flow_id, packet_sink* endpoint) const {
    NDPSIM_ASSERT_MSG(dst_demux != nullptr, "path_set has no dst demux");
    dst_demux->bind(flow_id, endpoint);
  }
  /// Register the sending endpoint for `flow_id` (terminal of rev routes).
  void bind_src(std::uint32_t flow_id, packet_sink* endpoint) const {
    NDPSIM_ASSERT_MSG(src_demux != nullptr, "path_set has no src demux");
    src_demux->bind(flow_id, endpoint);
  }
  void unbind(std::uint32_t flow_id) const {
    if (src_demux != nullptr) src_demux->unbind(flow_id);
    if (dst_demux != nullptr) dst_demux->unbind(flow_id);
  }
};

/// Builder for hand-wired path sets (tests, custom setups): owns the routes
/// and both demuxes.  Hops exclude the endpoints — like interned routes, each
/// side terminates at the built-in demux, and transports register their
/// endpoints through the resulting path_set.  Add every path before calling
/// set(); the builder must outlive the connection.
class manual_paths {
 public:
  /// Append one forward/reverse pair; reverses are linked automatically.
  void add(std::vector<packet_sink*> fwd_hops,
           std::vector<packet_sink*> rev_hops) {
    fwd_hops.push_back(&dst_demux_);
    rev_hops.push_back(&src_demux_);
    owned_route& f = routes_.emplace_back(std::move(fwd_hops));
    owned_route& r = routes_.emplace_back(std::move(rev_hops));
    f.set_reverse(&r);
    r.set_reverse(&f);
    fwd_.push_back(&f);
    rev_.push_back(&r);
  }

  [[nodiscard]] path_set set() {
    return path_set{fwd_.data(), rev_.data(),
                    static_cast<std::uint32_t>(fwd_.size()), &src_demux_,
                    &dst_demux_};
  }

  [[nodiscard]] flow_demux& src_demux() { return src_demux_; }
  [[nodiscard]] flow_demux& dst_demux() { return dst_demux_; }

 private:
  std::deque<owned_route> routes_;  // deque: routes are pinned in place
  std::vector<const route*> fwd_, rev_;
  flow_demux src_demux_, dst_demux_;
};

}  // namespace ndpsim
