// Shared-route plumbing between the topology's path table and the transports.
//
// With interned routes, a route is a per-fabric object shared by every flow
// on that (src, dst, path) — so it cannot end at a per-flow endpoint.
// Instead every interned route terminates at the destination host's
// `flow_demux`, which dispatches arriving packets to the endpoint registered
// under the packet's flow id.  A `path_set` is the lightweight view a
// transport borrows at connect time: the multipath route arrays plus the two
// demuxes where it registers its endpoints.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "net/packet.h"
#include "net/route.h"

namespace ndpsim {

/// Per-host terminal sink: dispatches delivered packets to the transport
/// endpoint bound under the packet's flow id.  Flow ids are dense across the
/// whole fabric but sparse per host, so the registry is a small flat
/// open-addressed hash table (linear probing, backward-shift deletion):
/// O(flows-at-this-host) memory per host — not O(total-flows), which at
/// k=32 churn scale would cost more than the shared routes save — and one
/// multiply+probe per delivered packet.
class flow_demux final : public packet_sink {
 public:
  flow_demux() = default;

  void bind(std::uint32_t flow_id, packet_sink* endpoint) {
    NDPSIM_ASSERT(endpoint != nullptr);
    if (slots_.empty() || (bound_ + 1) * 2 > slots_.size()) grow();
    slot& s = find_slot(flow_id);
    // A silently stolen slot would misdeliver every packet of the first
    // flow to the second flow's endpoint (same id, so the endpoint's own
    // flow-id assert cannot catch it); fail loudly instead.  Re-binding the
    // same endpoint is idempotent (e.g. an acceptor shared by many flows
    // re-registered per connection).
    NDPSIM_ASSERT_MSG(s.ep == nullptr || s.ep == endpoint,
                      "flow " << flow_id
                              << " already bound to a different endpoint at "
                                 "this host demux");
    if (s.ep == nullptr) ++bound_;
    s.key = flow_id;
    s.ep = endpoint;
  }

  void unbind(std::uint32_t flow_id) {
    if (slots_.empty()) return;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash(flow_id) & mask;
    while (slots_[i].ep != nullptr && slots_[i].key != flow_id) {
      i = (i + 1) & mask;
    }
    if (slots_[i].ep == nullptr) return;
    slots_[i].ep = nullptr;
    --bound_;
    // Backward-shift the rest of the probe cluster so lookups never need
    // tombstones.
    std::size_t j = i;
    while (true) {
      j = (j + 1) & mask;
      if (slots_[j].ep == nullptr) break;
      const std::size_t home = hash(slots_[j].key) & mask;
      if (((j - home) & mask) >= ((j - i) & mask)) {
        slots_[i] = slots_[j];
        slots_[j].ep = nullptr;
        i = j;
      }
    }
  }

  [[nodiscard]] packet_sink* endpoint_for(std::uint32_t flow_id) const {
    if (slots_.empty()) return nullptr;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash(flow_id) & mask;
    while (slots_[i].ep != nullptr) {
      if (slots_[i].key == flow_id) return slots_[i].ep;
      i = (i + 1) & mask;
    }
    return nullptr;
  }
  [[nodiscard]] std::size_t bound_count() const { return bound_; }

  void receive(packet& p) override {
    packet_sink* ep = endpoint_for(p.flow_id);
    NDPSIM_ASSERT_MSG(ep != nullptr,
                      "no endpoint bound for flow " << p.flow_id
                                                    << " at host demux");
    ep->receive(p);
  }

 private:
  struct slot {
    std::uint32_t key = 0;
    packet_sink* ep = nullptr;  ///< nullptr = empty slot
  };

  [[nodiscard]] static std::size_t hash(std::uint32_t k) {
    return k * std::size_t{0x9E3779B97F4A7C15ull} >> 32;
  }

  [[nodiscard]] slot& find_slot(std::uint32_t flow_id) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash(flow_id) & mask;
    while (slots_[i].ep != nullptr && slots_[i].key != flow_id) {
      i = (i + 1) & mask;
    }
    return slots_[i];
  }

  void grow() {
    std::vector<slot> old = std::move(slots_);
    slots_.assign(old.empty() ? 16 : old.size() * 2, slot{});
    for (const slot& s : old) {
      if (s.ep != nullptr) {
        slot& dst = find_slot(s.key);
        dst = s;
      }
    }
  }

  std::vector<slot> slots_;  ///< power-of-two size
  std::size_t bound_ = 0;
};

/// Borrowed view of a multipath route set: forward/reverse route arrays
/// (pointers into path_table- or manual_paths-owned storage; fwd[i] and
/// rev[i] traverse the same switches in opposite directions) plus the demuxes
/// at the two ends.  Cheap to copy; the owner must outlive every connection
/// using it.
struct path_set {
  const route* const* fwd = nullptr;
  const route* const* rev = nullptr;
  std::uint32_t n = 0;
  flow_demux* src_demux = nullptr;  ///< terminal of the reverse routes
  flow_demux* dst_demux = nullptr;  ///< terminal of the forward routes

  [[nodiscard]] std::size_t size() const { return n; }
  [[nodiscard]] bool empty() const { return n == 0; }

  [[nodiscard]] const route* forward(std::size_t i) const {
    NDPSIM_ASSERT_MSG(i < n, "path index out of range");
    return fwd[i];
  }
  [[nodiscard]] const route* reverse(std::size_t i) const {
    NDPSIM_ASSERT_MSG(i < n, "path index out of range");
    return rev[i];
  }

  /// Single-path view of path `i` (MPTCP pins one subflow per path).
  [[nodiscard]] path_set slice(std::size_t i) const {
    NDPSIM_ASSERT_MSG(i < n, "path index out of range");
    return path_set{fwd + i, rev + i, 1, src_demux, dst_demux};
  }

  /// Register the receiving endpoint for `flow_id` (terminal of fwd routes).
  void bind_dst(std::uint32_t flow_id, packet_sink* endpoint) const {
    NDPSIM_ASSERT_MSG(dst_demux != nullptr, "path_set has no dst demux");
    dst_demux->bind(flow_id, endpoint);
  }
  /// Register the sending endpoint for `flow_id` (terminal of rev routes).
  void bind_src(std::uint32_t flow_id, packet_sink* endpoint) const {
    NDPSIM_ASSERT_MSG(src_demux != nullptr, "path_set has no src demux");
    src_demux->bind(flow_id, endpoint);
  }
  void unbind(std::uint32_t flow_id) const {
    if (src_demux != nullptr) src_demux->unbind(flow_id);
    if (dst_demux != nullptr) dst_demux->unbind(flow_id);
  }
};

/// Builder for hand-wired path sets (tests, custom setups): owns the routes
/// and both demuxes.  Hops exclude the endpoints — like interned routes, each
/// side terminates at the built-in demux, and transports register their
/// endpoints through the resulting path_set.  Add every path before calling
/// set(); the builder must outlive the connection.
class manual_paths {
 public:
  /// Append one forward/reverse pair; reverses are linked automatically.
  void add(std::vector<packet_sink*> fwd_hops,
           std::vector<packet_sink*> rev_hops) {
    fwd_hops.push_back(&dst_demux_);
    rev_hops.push_back(&src_demux_);
    owned_route& f = routes_.emplace_back(std::move(fwd_hops));
    owned_route& r = routes_.emplace_back(std::move(rev_hops));
    f.set_reverse(&r);
    r.set_reverse(&f);
    fwd_.push_back(&f);
    rev_.push_back(&r);
  }

  [[nodiscard]] path_set set() {
    return path_set{fwd_.data(), rev_.data(),
                    static_cast<std::uint32_t>(fwd_.size()), &src_demux_,
                    &dst_demux_};
  }

  [[nodiscard]] flow_demux& src_demux() { return src_demux_; }
  [[nodiscard]] flow_demux& dst_demux() { return dst_demux_; }

 private:
  std::deque<owned_route> routes_;  // deque: routes are pinned in place
  std::vector<const route*> fwd_, rev_;
  flow_demux src_demux_, dst_demux_;
};

}  // namespace ndpsim
