#include "net/lossless.h"
