// Multipath TCP with LIA coupled congestion control (Raiciu et al.,
// SIGCOMM 2011) — the paper's high-throughput baseline (8 subflows).
//
// Each subflow is a TCP NewReno instance pinned to one path.  Subflows claim
// payload from the shared connection-level stream, so a finite flow finishes
// when the union of subflow progress covers it.  Subflows slow-start
// independently (standard MPTCP); in congestion avoidance the increase is
// coupled:
//   w_r += min( alpha / w_total , 1 / w_r )  per MSS acked,
//   alpha = w_total * max_s(w_s / rtt_s^2) / (sum_s w_s / rtt_s)^2
// which for equal datacenter RTTs reduces to alpha = max_s(w_s) / w_total.
#pragma once

#include <memory>
#include <vector>

#include "tcp/tcp_sink.h"
#include "tcp/tcp_source.h"

namespace ndpsim {

class mptcp_source;

/// One MPTCP subflow: TCP with the coupled increase, claiming payload from
/// the parent connection.
class mptcp_subflow final : public tcp_source {
 public:
  mptcp_subflow(sim_env& env, tcp_config cfg, std::uint32_t flow_id,
                mptcp_source& parent, std::string name)
      : tcp_source(env, cfg, flow_id, std::move(name)), parent_(parent) {}

 protected:
  std::uint32_t claim_payload(std::uint32_t max) override;
  void increase_window(std::uint64_t newly_acked) override;
  void on_bytes_acked(std::uint64_t newly_acked) override;

 private:
  mptcp_source& parent_;
};

class mptcp_source {
 public:
  mptcp_source(sim_env& env, tcp_config cfg, std::uint32_t flow_id,
               std::string name = "mptcp");

  /// One subflow per path (typically 8): subflow i is pinned to path
  /// i % paths.size() of the borrowed set, so more subflows than distinct
  /// paths share routes (which interning makes free).  `n_subflows == 0`
  /// means one subflow per path.
  void connect(path_set paths, unsigned n_subflows, std::uint32_t src_host,
               std::uint32_t dst_host, std::uint64_t flow_bytes,
               simtime_t start);

  void set_complete_callback(std::function<void()> cb) {
    on_complete_ = std::move(cb);
  }

  /// Teardown hook (flow recycling): disconnect every subflow (cancel its
  /// timers, unbind its demux entries).  Idempotent.
  void disconnect() {
    for (auto& sf : subflows_) sf->disconnect();
  }

  [[nodiscard]] bool complete() const { return completed_; }
  [[nodiscard]] simtime_t completion_time() const { return completion_time_; }
  [[nodiscard]] std::uint64_t bytes_acked() const { return total_acked_; }
  [[nodiscard]] std::size_t n_subflows() const { return subflows_.size(); }
  [[nodiscard]] tcp_source& subflow(std::size_t i) { return *subflows_[i]; }
  [[nodiscard]] std::uint64_t total_payload_received() const;

  /// {sum of subflow windows, max subflow window}, in bytes.
  [[nodiscard]] std::pair<double, double> window_totals() const;

 private:
  friend class mptcp_subflow;
  [[nodiscard]] std::uint32_t claim(std::uint32_t max);
  void note_acked(std::uint64_t bytes);

  sim_env& env_;
  tcp_config cfg_;
  std::uint32_t flow_id_;
  std::string name_;
  std::vector<std::unique_ptr<mptcp_subflow>> subflows_;
  std::vector<std::unique_ptr<tcp_sink>> sinks_;
  std::uint64_t flow_bytes_ = 0;
  std::uint64_t remaining_ = 0;
  std::uint64_t total_acked_ = 0;
  bool completed_ = false;
  simtime_t completion_time_ = -1;
  std::function<void()> on_complete_;
};

}  // namespace ndpsim
