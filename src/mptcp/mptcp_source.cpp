#include "mptcp/mptcp_source.h"

#include <algorithm>

namespace ndpsim {

std::uint32_t mptcp_subflow::claim_payload(std::uint32_t max) {
  return parent_.claim(max);
}

void mptcp_subflow::increase_window(std::uint64_t newly_acked) {
  if (cwnd_ < ssthresh_) {
    // Subflows slow-start independently, like regular TCP.
    tcp_source::increase_window(newly_acked);
    return;
  }
  const auto [w_total, w_max] = parent_.window_totals();
  const double mss = static_cast<double>(payload_per_packet());
  const double w_r = static_cast<double>(cwnd_) / mss;
  if (w_total <= 0 || w_r <= 0) return;
  const double alpha = w_max / w_total;  // equal-RTT LIA
  const double inc_mss = std::min(alpha / (w_total / mss), 1.0 / w_r) *
                         (static_cast<double>(newly_acked) / mss);
  cwnd_ += static_cast<std::uint64_t>(inc_mss * mss);
  cwnd_ = std::min<std::uint64_t>(
      cwnd_, static_cast<std::uint64_t>(config().max_cwnd_mss) *
                 payload_per_packet());
}

void mptcp_subflow::on_bytes_acked(std::uint64_t newly_acked) {
  parent_.note_acked(newly_acked);
}

mptcp_source::mptcp_source(sim_env& env, tcp_config cfg, std::uint32_t flow_id,
                           std::string name)
    : env_(env), cfg_(cfg), flow_id_(flow_id), name_(std::move(name)) {}

void mptcp_source::connect(path_set paths, unsigned n_subflows,
                           std::uint32_t src_host, std::uint32_t dst_host,
                           std::uint64_t flow_bytes, simtime_t start) {
  NDPSIM_ASSERT_MSG(!paths.empty(), "need at least one path");
  const std::size_t k = n_subflows == 0 ? paths.size() : n_subflows;
  flow_bytes_ = flow_bytes;
  remaining_ = flow_bytes == 0 ? UINT64_MAX : flow_bytes;
  for (std::size_t i = 0; i < k; ++i) {
    auto& sub = subflows_.emplace_back(std::make_unique<mptcp_subflow>(
        env_, cfg_, flow_id_ + static_cast<std::uint32_t>(i), *this,
        name_ + ".sub" + std::to_string(i)));
    auto& sink = sinks_.emplace_back(std::make_unique<tcp_sink>(
        env_, flow_id_ + static_cast<std::uint32_t>(i)));
    // Subflows get an unbounded budget; actual allocation happens through
    // claim(), and completion is tracked at the connection level.
    sub->connect(*sink, paths.slice(i % paths.size()), src_host, dst_host,
                 /*flow_bytes=*/0, start);
  }
}

std::pair<double, double> mptcp_source::window_totals() const {
  double total = 0;
  double w_max = 0;
  for (const auto& s : subflows_) {
    const double w = static_cast<double>(s->cwnd_bytes());
    total += w;
    w_max = std::max(w_max, w);
  }
  return {total, w_max};
}

std::uint32_t mptcp_source::claim(std::uint32_t max) {
  const std::uint32_t n =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(max, remaining_));
  remaining_ -= n;
  return n;
}

void mptcp_source::note_acked(std::uint64_t bytes) {
  total_acked_ += bytes;
  if (!completed_ && flow_bytes_ > 0 && total_acked_ >= flow_bytes_) {
    completed_ = true;
    completion_time_ = env_.now();
    if (on_complete_) on_complete_();
  }
}

std::uint64_t mptcp_source::total_payload_received() const {
  std::uint64_t total = 0;
  for (const auto& s : sinks_) total += s->payload_received();
  return total;
}

}  // namespace ndpsim
