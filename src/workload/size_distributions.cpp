#include "workload/size_distributions.h"

#include <cmath>

#include "sim/assert.h"

namespace ndpsim {

flow_size_distribution::flow_size_distribution(
    std::vector<std::pair<double, double>> points)
    : points_(std::move(points)) {
  NDPSIM_ASSERT(points_.size() >= 1);
  double prev = 0.0;
  for (const auto& [p, s] : points_) {
    NDPSIM_ASSERT_MSG(p > prev && p <= 1.0, "CDF must be increasing to 1");
    NDPSIM_ASSERT(s >= 1.0);
    prev = p;
  }
  NDPSIM_ASSERT_MSG(points_.back().first == 1.0, "CDF must end at 1");
}

std::uint64_t flow_size_distribution::sample(std::mt19937_64& rng) const {
  const double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
  double p0 = 0.0;
  double s0 = points_.front().second;
  for (const auto& [p1, s1] : points_) {
    if (u <= p1) {
      const double frac = p1 > p0 ? (u - p0) / (p1 - p0) : 1.0;
      // Interpolate in log-size space (sizes span orders of magnitude).
      const double ls = std::log(s0) + frac * (std::log(s1) - std::log(s0));
      return static_cast<std::uint64_t>(std::llround(std::exp(ls)));
    }
    p0 = p1;
    s0 = s1;
  }
  return static_cast<std::uint64_t>(points_.back().second);
}

double flow_size_distribution::mean_bytes() const {
  // Mean of the piecewise log-linear distribution, by trapezoid on segments.
  double mean = 0.0;
  double p0 = 0.0;
  double s0 = points_.front().second;
  for (const auto& [p1, s1] : points_) {
    mean += (p1 - p0) * 0.5 * (s0 + s1);
    p0 = p1;
    s0 = s1;
  }
  return mean;
}

const flow_size_distribution& facebook_web_sizes() {
  static const flow_size_distribution dist({
      {0.15, 150.0},       // tiny RPCs
      {0.40, 300.0},
      {0.60, 700.0},
      {0.74, 1'500.0},     // around one 1500B MTU
      {0.84, 4'000.0},
      {0.91, 10'000.0},
      {0.95, 40'000.0},
      {0.975, 200'000.0},
      {0.99, 2'000'000.0},
      {1.0, 20'000'000.0},  // heavy tail: the mean is tail-dominated
  });
  return dist;
}

flow_size_distribution fixed_size(std::uint64_t bytes) {
  return flow_size_distribution({{1.0, static_cast<double>(bytes)}});
}

}  // namespace ndpsim
