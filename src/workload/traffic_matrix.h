// Traffic matrices used throughout the paper's evaluation.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace ndpsim {

/// Permutation: every host sends to exactly one other host and receives from
/// exactly one (a random derangement) — the paper's worst-case utilization
/// test.
[[nodiscard]] std::vector<std::uint32_t> permutation_matrix(
    std::mt19937_64& rng, std::size_t n_hosts);

/// Random: each host picks an independent uniform destination != itself
/// (receiver collisions allowed).
[[nodiscard]] std::vector<std::uint32_t> random_matrix(std::mt19937_64& rng,
                                                       std::size_t n_hosts);

/// n distinct senders for an incast towards `receiver`.
[[nodiscard]] std::vector<std::uint32_t> incast_senders(std::mt19937_64& rng,
                                                        std::size_t n_hosts,
                                                        std::uint32_t receiver,
                                                        std::size_t n_senders);

}  // namespace ndpsim
