#include "workload/closed_loop.h"

#include <cmath>

namespace ndpsim {

closed_loop_generator::closed_loop_generator(
    sim_env& env, std::size_t n_hosts, unsigned flows_per_host,
    const flow_size_distribution& sizes, simtime_t median_gap,
    flow_starter starter, std::string name)
    : event_source(env.events, std::move(name)),
      env_(env),
      n_hosts_(n_hosts),
      flows_per_host_(flows_per_host),
      sizes_(sizes),
      // median of Exp(lambda) = ln2 / lambda
      gap_lambda_(std::log(2.0) / to_sec(median_gap)),
      starter_(std::move(starter)) {
  NDPSIM_ASSERT(n_hosts_ >= 2);
  NDPSIM_ASSERT(flows_per_host_ >= 1);
}

void closed_loop_generator::start() {
  for (std::uint32_t h = 0; h < n_hosts_; ++h) {
    for (unsigned i = 0; i < flows_per_host_; ++i) {
      // Stagger initial launches to avoid a synthetic synchronized burst.
      const simtime_t jitter =
          static_cast<simtime_t>(env_.rand_unit() * to_ns(from_us(100))) *
          kNanosecond;
      launch_flow(h, env_.now() + jitter);
    }
  }
}

void closed_loop_generator::launch_flow(std::uint32_t src, simtime_t at) {
  std::uint32_t dst;
  do {
    dst = static_cast<std::uint32_t>(env_.rand_below(n_hosts_));
  } while (dst == src);
  const std::uint64_t bytes = std::max<std::uint64_t>(1, sizes_.sample(env_.rng));
  const std::uint32_t id = next_id_++;
  fcts_.flow_started(id, at, bytes);
  starter_(src, dst, bytes, at, [this, id, src] {
    fcts_.flow_completed(id, env_.now());
    if (stopped_) return;
    const double u = std::max(1e-12, env_.rand_unit());
    const double gap_s = -std::log(u) / gap_lambda_;
    launch_flow(src, env_.now() + from_sec(gap_s));
  });
}

}  // namespace ndpsim
