#include "workload/traffic_matrix.h"

#include <algorithm>
#include <numeric>

#include "sim/assert.h"

namespace ndpsim {

std::vector<std::uint32_t> permutation_matrix(std::mt19937_64& rng,
                                              std::size_t n_hosts) {
  NDPSIM_ASSERT(n_hosts >= 2);
  std::vector<std::uint32_t> perm(n_hosts);
  std::iota(perm.begin(), perm.end(), 0u);
  // Sattolo's algorithm yields a uniform cyclic permutation: by construction
  // no host maps to itself, and in-degree is exactly one everywhere.
  for (std::size_t i = n_hosts - 1; i > 0; --i) {
    std::uniform_int_distribution<std::size_t> d(0, i - 1);
    std::swap(perm[i], perm[d(rng)]);
  }
  return perm;
}

std::vector<std::uint32_t> random_matrix(std::mt19937_64& rng,
                                         std::size_t n_hosts) {
  NDPSIM_ASSERT(n_hosts >= 2);
  std::vector<std::uint32_t> dst(n_hosts);
  std::uniform_int_distribution<std::uint32_t> d(
      0, static_cast<std::uint32_t>(n_hosts - 1));
  for (std::size_t i = 0; i < n_hosts; ++i) {
    do {
      dst[i] = d(rng);
    } while (dst[i] == i);
  }
  return dst;
}

std::vector<std::uint32_t> incast_senders(std::mt19937_64& rng,
                                          std::size_t n_hosts,
                                          std::uint32_t receiver,
                                          std::size_t n_senders) {
  NDPSIM_ASSERT(n_senders <= n_hosts - 1);
  std::vector<std::uint32_t> all;
  all.reserve(n_hosts - 1);
  for (std::uint32_t h = 0; h < n_hosts; ++h) {
    if (h != receiver) all.push_back(h);
  }
  std::shuffle(all.begin(), all.end(), rng);
  all.resize(n_senders);
  return all;
}

}  // namespace ndpsim
