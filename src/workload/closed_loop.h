// Closed-loop workload generator (paper Fig 23): each host keeps a fixed
// number of outstanding connections; when one finishes it waits an
// exponentially-distributed think gap (median ~1ms) and opens a new one to a
// fresh random destination with a size drawn from a flow-size distribution.
#pragma once

#include <cstdint>
#include <functional>

#include "net/sim_env.h"
#include "sim/eventlist.h"
#include "stats/fct_recorder.h"
#include "workload/size_distributions.h"

namespace ndpsim {

class closed_loop_generator final : public event_source {
 public:
  /// Starts flow (src -> dst) of `bytes` at `start`; must invoke `done` when
  /// the flow completes.
  using flow_starter = std::function<void(
      std::uint32_t src, std::uint32_t dst, std::uint64_t bytes,
      simtime_t start, std::function<void()> done)>;

  closed_loop_generator(sim_env& env, std::size_t n_hosts,
                        unsigned flows_per_host,
                        const flow_size_distribution& sizes,
                        simtime_t median_gap, flow_starter starter,
                        std::string name = "closedloop");

  /// Launch the initial population (staggered over one gap).
  void start();
  /// Stop creating replacement flows (existing flows finish naturally).
  void stop() { stopped_ = true; }

  void do_next_event() override {}  // all work happens in callbacks

  [[nodiscard]] const fct_recorder& fcts() const { return fcts_; }
  [[nodiscard]] std::uint64_t flows_started() const { return next_id_; }

 private:
  void launch_flow(std::uint32_t src, simtime_t at);

  sim_env& env_;
  std::size_t n_hosts_;
  unsigned flows_per_host_;
  const flow_size_distribution& sizes_;
  double gap_lambda_;  ///< rate of the exponential think time
  flow_starter starter_;
  fct_recorder fcts_;
  std::uint32_t next_id_ = 0;
  bool stopped_ = false;
};

}  // namespace ndpsim
