// Constant-bit-rate unresponsive sender and a counting sink.
//
// Used for the Fig 2 experiment ("many unresponsive flows converge on a
// 10Gb/s link"): CBR sources ignore all feedback, which isolates the switch
// service model (CP vs NDP queue) from any transport reaction.
#pragma once

#include <memory>

#include "net/packet.h"
#include "net/path_set.h"
#include "net/route.h"
#include "net/sim_env.h"
#include "sim/eventlist.h"

namespace ndpsim {

/// Terminal sink that counts delivered payload and releases packets
/// (including trimmed headers, which carry no payload).
class counting_sink final : public packet_sink {
 public:
  explicit counting_sink(sim_env& env) : env_(env) {}

  void receive(packet& p) override {
    ++packets_;
    if (p.has_flag(pkt_flag::trimmed)) {
      ++headers_;
    } else {
      payload_ += p.payload_bytes;
    }
    env_.pool.release(&p);
  }

  [[nodiscard]] std::uint64_t payload_bytes() const { return payload_; }
  [[nodiscard]] std::uint64_t packets() const { return packets_; }
  [[nodiscard]] std::uint64_t headers() const { return headers_; }

 private:
  sim_env& env_;
  std::uint64_t payload_ = 0;
  std::uint64_t packets_ = 0;
  std::uint64_t headers_ = 0;
};

class cbr_source final : public event_source {
 public:
  /// `jitter_frac` adds uniform timing noise of +-(jitter/2) x period to each
  /// send, modelling OS/NIC scheduling variability (keeps mean rate exact).
  cbr_source(sim_env& env, linkspeed_bps rate, std::uint32_t mss_bytes,
             std::uint32_t flow_id, double jitter_frac = 0.0,
             std::string name = "cbr");
  ~cbr_source() override;

  /// Send forever from `start_at`, at `rate`, over path 0 of the borrowed
  /// set. `rx` is registered at the destination demux as this flow's
  /// receiving endpoint (CBR is unidirectional — nothing binds at the
  /// source).
  void start(path_set paths, packet_sink* rx, std::uint32_t src,
             std::uint32_t dst, simtime_t start_at);

  void do_next_event() override;

  /// Stop sending (cancels the pending send timer).
  void stop() { events().cancel(timer_); }

  /// Teardown hook (flow recycling): stop sending and unbind the receiving
  /// endpoint from the destination demux.  Idempotent; also invoked by the
  /// destructor.
  void disconnect() {
    stop();
    if (dst_demux_ != nullptr) {
      dst_demux_->unbind(flow_id_);
      dst_demux_ = nullptr;
    }
  }

  [[nodiscard]] std::uint64_t packets_sent() const { return sent_; }

 private:
  timer_handle timer_;
  sim_env& env_;
  linkspeed_bps rate_;
  std::uint32_t mss_bytes_;
  std::uint32_t flow_id_;
  double jitter_frac_;
  const route* route_ = nullptr;  ///< borrowed; the path owner outlives us
  flow_demux* dst_demux_ = nullptr;  ///< where rx was bound (for unbind)
  std::uint32_t src_ = 0;
  std::uint32_t dst_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t sent_ = 0;
};

}  // namespace ndpsim
