#include "workload/cbr_source.h"

namespace ndpsim {

cbr_source::cbr_source(sim_env& env, linkspeed_bps rate,
                       std::uint32_t mss_bytes, std::uint32_t flow_id,
                       double jitter_frac, std::string name)
    : event_source(env.events, std::move(name), dispatch_class::pacer_tick),
      env_(env),
      rate_(rate),
      mss_bytes_(mss_bytes),
      flow_id_(flow_id),
      jitter_frac_(jitter_frac) {
  NDPSIM_ASSERT(rate_ > 0);
  NDPSIM_ASSERT(mss_bytes_ > kHeaderBytes);
  NDPSIM_ASSERT(jitter_frac_ >= 0.0 && jitter_frac_ < 1.0);
}

cbr_source::~cbr_source() { disconnect(); }

void cbr_source::start(path_set paths, packet_sink* rx, std::uint32_t src,
                       std::uint32_t dst, simtime_t start_at) {
  NDPSIM_ASSERT_MSG(!paths.empty(), "need at least one path");
  route_ = paths.forward(0);
  paths.bind_dst(flow_id_, rx);
  dst_demux_ = paths.dst_demux;
  src_ = src;
  dst_ = dst;
  timer_ = events().schedule_at(*this, start_at);
}

void cbr_source::do_next_event() {
  packet* p = env_.pool.alloc();
  p->type = packet_type::cbr_data;
  p->flow_id = flow_id_;
  p->src = src_;
  p->dst = dst_;
  p->seqno = ++seq_;
  p->size_bytes = mss_bytes_;
  p->payload_bytes = mss_bytes_ - kHeaderBytes;
  p->rt = route_;
  p->next_hop = 0;
  ++sent_;
  send_to_next_hop(*p);
  simtime_t period = serialization_time(mss_bytes_, rate_);
  if (jitter_frac_ > 0.0) {
    const double noise = (env_.rand_unit() - 0.5) * jitter_frac_;
    period = static_cast<simtime_t>(static_cast<double>(period) * (1.0 + noise));
  }
  timer_ = events().schedule_in(*this, period);
}

}  // namespace ndpsim
