// Flow-size distributions.
//
// The paper's oversubscribed experiment (Fig 23) draws flow sizes from the
// "web" workload of Roy et al., "Inside the social network's (datacenter)
// network" (SIGCOMM 2015, Fig 6a): dominated by sub-MTU flows with a heavy
// tail — the least favourable case for trimming (poor compression ratio).
// The original figure is only published as a plot; this is a piecewise
// approximation of its shape, which is what the experiment needs (lots of
// tiny flows, occasional multi-MB ones).
#pragma once

#include <cstdint>
#include <random>
#include <utility>
#include <vector>

namespace ndpsim {

/// Piecewise-linear (in log-size) inverse-CDF sampler.
class flow_size_distribution {
 public:
  /// points: (cumulative probability, size in bytes), strictly increasing in
  /// probability, ending at probability 1.
  explicit flow_size_distribution(
      std::vector<std::pair<double, double>> points);

  [[nodiscard]] std::uint64_t sample(std::mt19937_64& rng) const;
  [[nodiscard]] double mean_bytes() const;

 private:
  std::vector<std::pair<double, double>> points_;
};

/// Approximation of the Facebook web flow-size CDF (Roy et al. Fig 6a).
[[nodiscard]] const flow_size_distribution& facebook_web_sizes();

/// Fixed-size "distribution" (degenerate), convenient for tests.
[[nodiscard]] flow_size_distribution fixed_size(std::uint64_t bytes);

}  // namespace ndpsim
