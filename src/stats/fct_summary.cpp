#include "stats/fct_summary.h"

#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace ndpsim {
namespace {

void add_counters(telemetry_counters& a, const telemetry_counters& b) {
  a.enq_pkts += b.enq_pkts;
  a.enq_bytes += b.enq_bytes;
  a.deq_pkts += b.deq_pkts;
  a.deq_bytes += b.deq_bytes;
  a.drop_pkts += b.drop_pkts;
  a.drop_bytes += b.drop_bytes;
  a.trim_pkts += b.trim_pkts;
  a.trim_bytes += b.trim_bytes;
  a.bounce_pkts += b.bounce_pkts;
  a.bounce_bytes += b.bounce_bytes;
  a.mark_pkts += b.mark_pkts;
  a.stale_drops += b.stale_drops;
}

// Fixed serialization order of telemetry_counters: declaration order.
constexpr std::size_t kCounterFields = 12;

void counters_to_array(const telemetry_counters& c,
                       std::uint64_t (&a)[kCounterFields]) {
  a[0] = c.enq_pkts;
  a[1] = c.enq_bytes;
  a[2] = c.deq_pkts;
  a[3] = c.deq_bytes;
  a[4] = c.drop_pkts;
  a[5] = c.drop_bytes;
  a[6] = c.trim_pkts;
  a[7] = c.trim_bytes;
  a[8] = c.bounce_pkts;
  a[9] = c.bounce_bytes;
  a[10] = c.mark_pkts;
  a[11] = c.stale_drops;
}

void counters_from_array(const std::uint64_t (&a)[kCounterFields],
                         telemetry_counters& c) {
  c.enq_pkts = a[0];
  c.enq_bytes = a[1];
  c.deq_pkts = a[2];
  c.deq_bytes = a[3];
  c.drop_pkts = a[4];
  c.drop_bytes = a[5];
  c.trim_pkts = a[6];
  c.trim_bytes = a[7];
  c.bounce_pkts = a[8];
  c.bounce_bytes = a[9];
  c.mark_pkts = a[10];
  c.stale_drops = a[11];
}

void append_u64(std::string& s, std::uint64_t v) {
  char buf[24];
  auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;
  s.append(buf, p);
}

void append_i32(std::string& s, std::int32_t v) {
  char buf[16];
  auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;
  s.append(buf, p);
}

// %.17g round-trips every finite double bit-exactly, and — being a pure
// function of the value — keeps the spill line deterministic.
void append_double(std::string& s, double v) {
  char buf[40];
  const int n = std::snprintf(buf, sizeof buf, "%.17g", v);
  s.append(buf, static_cast<std::size_t>(n));
}

void append_hex64(std::string& s, std::uint64_t v) {
  char buf[20];
  const int n = std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  s.append(buf, static_cast<std::size_t>(n));
}

void append_escaped(std::string& s, std::string_view name) {
  for (const char ch : name) {
    const auto u = static_cast<unsigned char>(ch);
    if (ch == '"' || ch == '\\') {
      s.push_back('\\');
      s.push_back(ch);
    } else if (u < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", u);
      s.append(buf, 6);
    } else {
      s.push_back(ch);
    }
  }
}

void append_counters(std::string& s, const telemetry_counters& c) {
  std::uint64_t a[kCounterFields];
  counters_to_array(c, a);
  s.push_back('[');
  for (std::size_t i = 0; i < kCounterFields; ++i) {
    if (i > 0) s.push_back(',');
    append_u64(s, a[i]);
  }
  s.push_back(']');
}

// Strict left-to-right cursor over one spill line.  Every primitive returns
// false on the first defect; there is no whitespace skipping because the
// emitter writes none — any byte out of place fails the whole line.
struct cursor {
  const char* p;
  const char* end;

  explicit cursor(std::string_view line)
      : p(line.data()), end(line.data() + line.size()) {}

  [[nodiscard]] bool lit(std::string_view s) {
    if (static_cast<std::size_t>(end - p) < s.size()) return false;
    if (std::memcmp(p, s.data(), s.size()) != 0) return false;
    p += s.size();
    return true;
  }

  [[nodiscard]] bool u64(std::uint64_t& out) {
    auto [next, ec] = std::from_chars(p, end, out);
    if (ec != std::errc() || next == p) return false;
    p = next;
    return true;
  }

  [[nodiscard]] bool i32(std::int32_t& out) {
    auto [next, ec] = std::from_chars(p, end, out);
    if (ec != std::errc() || next == p) return false;
    p = next;
    return true;
  }

  [[nodiscard]] bool dbl(double& out) {
    auto [next, ec] = std::from_chars(p, end, out);
    if (ec != std::errc() || next == p) return false;
    p = next;
    return true;
  }

  [[nodiscard]] bool hex64(std::uint64_t& out) {
    if (end - p < 16) return false;
    auto [next, ec] = std::from_chars(p, p + 16, out, 16);
    if (ec != std::errc() || next != p + 16) return false;
    p = next;
    return true;
  }

  [[nodiscard]] bool str(std::string& out) {
    if (!lit("\"")) return false;
    out.clear();
    while (p < end && *p != '"') {
      char ch = *p++;
      if (ch == '\\') {
        if (p >= end) return false;
        const char esc = *p++;
        if (esc == '"' || esc == '\\') {
          ch = esc;
        } else if (esc == 'u') {
          if (end - p < 4) return false;
          std::uint32_t code = 0;
          auto [next, ec] = std::from_chars(p, p + 4, code, 16);
          if (ec != std::errc() || next != p + 4 || code > 0xff) return false;
          p = next;
          ch = static_cast<char>(code);
        } else {
          return false;
        }
      }
      out.push_back(ch);
    }
    return lit("\"");
  }

  [[nodiscard]] bool counters(telemetry_counters& out) {
    std::uint64_t a[kCounterFields];
    if (!lit("[")) return false;
    for (std::size_t i = 0; i < kCounterFields; ++i) {
      if (i > 0 && !lit(",")) return false;
      if (!u64(a[i])) return false;
    }
    if (!lit("]")) return false;
    counters_from_array(a, out);
    return true;
  }

  [[nodiscard]] bool done() const { return p == end; }
};

}  // namespace

void telemetry_summary::add(const telemetry_summary& other) {
  if (!other.present) return;
  present = true;
  armed_slots += other.armed_slots;
  add_counters(queues, other.queues);
  add_counters(pipes, other.pipes);
  add_counters(demuxes, other.demuxes);
}

telemetry_summary telemetry_summary::from_plane(const telemetry_plane& p) {
  telemetry_summary s;
  s.present = true;
  s.armed_slots = p.armed_slots();
  s.queues = p.totals(telemetry_kind::queue);
  s.pipes = p.totals(telemetry_kind::pipe);
  s.demuxes = p.totals(telemetry_kind::demux);
  return s;
}

fct_summary fct_summary::from_recorder(const fct_recorder& rec, double alpha) {
  fct_summary s(alpha);
  s.flows = rec.completed();
  s.still_open = rec.still_open();
  bool first = true;
  for (const fct_recorder::record& r : rec.records()) {
    const double us = to_us(r.end - r.start);
    s.bytes += r.bytes;
    s.sum_us += us;
    s.min_us = first ? us : std::min(s.min_us, us);
    s.max_us = std::max(s.max_us, us);
    s.sketch.add(us);
    first = false;
  }
  return s;
}

void fct_summary::merge_from(const fct_summary& other) {
  if (other.flows > 0) {
    min_us = flows > 0 ? std::min(min_us, other.min_us) : other.min_us;
    max_us = flows > 0 ? std::max(max_us, other.max_us) : other.max_us;
  }
  flows += other.flows;
  still_open += other.still_open;
  bytes += other.bytes;
  events += other.events;
  sum_us += other.sum_us;
  sketch.merge_from(other.sketch);
  tele.add(other.tele);
}

std::string fct_summary::to_jsonl() const {
  std::string s;
  s.reserve(256 + sketch.buckets() * 16);
  s += "{\"job\":";
  append_u64(s, job);
  s += ",\"hash\":\"";
  append_hex64(s, hash);
  s += "\",\"name\":\"";
  append_escaped(s, name);
  s += "\",\"flows\":";
  append_u64(s, flows);
  s += ",\"open\":";
  append_u64(s, still_open);
  s += ",\"bytes\":";
  append_u64(s, bytes);
  s += ",\"events\":";
  append_u64(s, events);
  s += ",\"sum_us\":";
  append_double(s, sum_us);
  s += ",\"min_us\":";
  append_double(s, min_us);
  s += ",\"max_us\":";
  append_double(s, max_us);
  s += ",\"sketch\":{\"alpha\":";
  append_double(s, sketch.alpha());
  s += ",\"buckets\":[";
  bool first = true;
  for (const quantile_sketch::bucket& b : sketch.raw_buckets()) {
    if (!first) s.push_back(',');
    first = false;
    s += "[";
    append_i32(s, b.index);
    s.push_back(',');
    append_u64(s, b.count);
    s.push_back(']');
  }
  s += "]},\"tele\":";
  if (!tele.present) {
    s += "null}";
    return s;
  }
  s += "{\"armed\":";
  append_u64(s, tele.armed_slots);
  s += ",\"queue\":";
  append_counters(s, tele.queues);
  s += ",\"pipe\":";
  append_counters(s, tele.pipes);
  s += ",\"demux\":";
  append_counters(s, tele.demuxes);
  s += "}}";
  return s;
}

bool fct_summary::from_jsonl(std::string_view line, fct_summary& out) {
  out = fct_summary();
  fct_summary s;
  cursor c(line);
  double alpha = 0;
  std::vector<quantile_sketch::bucket> buckets;
  if (!c.lit("{\"job\":") || !c.u64(s.job)) return false;
  if (!c.lit(",\"hash\":\"") || !c.hex64(s.hash) || !c.lit("\"")) return false;
  if (!c.lit(",\"name\":") || !c.str(s.name)) return false;
  if (!c.lit(",\"flows\":") || !c.u64(s.flows)) return false;
  if (!c.lit(",\"open\":") || !c.u64(s.still_open)) return false;
  if (!c.lit(",\"bytes\":") || !c.u64(s.bytes)) return false;
  if (!c.lit(",\"events\":") || !c.u64(s.events)) return false;
  if (!c.lit(",\"sum_us\":") || !c.dbl(s.sum_us)) return false;
  if (!c.lit(",\"min_us\":") || !c.dbl(s.min_us)) return false;
  if (!c.lit(",\"max_us\":") || !c.dbl(s.max_us)) return false;
  if (!c.lit(",\"sketch\":{\"alpha\":") || !c.dbl(alpha)) return false;
  if (!(alpha > 0 && alpha < 1)) return false;
  if (!c.lit(",\"buckets\":[")) return false;
  bool first = true;
  while (!c.lit("]")) {
    if (!first && !c.lit(",")) return false;
    first = false;
    quantile_sketch::bucket b{};
    if (!c.lit("[") || !c.i32(b.index) || !c.lit(",") || !c.u64(b.count) ||
        !c.lit("]")) {
      return false;
    }
    buckets.push_back(b);
  }
  if (!s.sketch.restore(alpha, buckets)) return false;
  // Invariant of every emitted line: one sketch sample per completed flow.
  if (s.sketch.count() != s.flows) return false;
  if (!c.lit("},\"tele\":")) return false;
  if (c.lit("null")) {
    s.tele = telemetry_summary{};
  } else {
    s.tele.present = true;
    if (!c.lit("{\"armed\":") || !c.u64(s.tele.armed_slots)) return false;
    if (!c.lit(",\"queue\":") || !c.counters(s.tele.queues)) return false;
    if (!c.lit(",\"pipe\":") || !c.counters(s.tele.pipes)) return false;
    if (!c.lit(",\"demux\":") || !c.counters(s.tele.demuxes)) return false;
    if (!c.lit("}")) return false;
  }
  if (!c.lit("}") || !c.done()) return false;
  out = std::move(s);
  return true;
}

}  // namespace ndpsim
