// Flow-completion-time bookkeeping shared by experiments.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/assert.h"
#include "sim/time.h"
#include "stats/cdf.h"

namespace ndpsim {

class fct_recorder {
 public:
  /// `epoch` tags the record with the flow's churn generation (0 for one-shot
  /// experiments): with recycled flow ids, (flow_id, epoch) — not flow_id
  /// alone — identifies one transfer across a long-running run.
  void flow_started(std::uint32_t flow_id, simtime_t at, std::uint64_t bytes,
                    std::uint32_t epoch = 0) {
    NDPSIM_ASSERT_MSG(open_.find(flow_id) == open_.end(),
                      "flow started twice: " << flow_id);
    open_[flow_id] = info{at, bytes, epoch};
    max_epoch_ = std::max(max_epoch_, epoch);
  }

  void flow_completed(std::uint32_t flow_id, simtime_t at) {
    auto it = open_.find(flow_id);
    NDPSIM_ASSERT_MSG(it != open_.end(), "unknown flow completed: " << flow_id);
    const simtime_t fct = at - it->second.start;
    NDPSIM_ASSERT(fct >= 0);
    done_.push_back(record{flow_id, it->second.start, at, it->second.bytes,
                           it->second.epoch});
    fct_us_.add(to_us(fct));
    open_.erase(it);
  }

  struct record {
    std::uint32_t flow_id;
    simtime_t start;
    simtime_t end;
    std::uint64_t bytes;
    std::uint32_t epoch = 0;  ///< churn generation the flow belonged to
  };

  /// Fold another recorder's completed flows into this one (flow ids are
  /// namespaced per experiment, so collisions across merged runs are fine).
  void merge_from(const fct_recorder& other) {
    done_.insert(done_.end(), other.done_.begin(), other.done_.end());
    for (double v : other.fct_us_.raw()) fct_us_.add(v);
    max_epoch_ = std::max(max_epoch_, other.max_epoch_);
  }

  [[nodiscard]] std::size_t completed() const { return done_.size(); }
  /// Highest epoch tag seen on a started flow.
  [[nodiscard]] std::uint32_t max_epoch() const { return max_epoch_; }
  /// Completed flows tagged with `epoch` (per-generation breakdown).
  [[nodiscard]] std::size_t completed_in_epoch(std::uint32_t epoch) const {
    std::size_t n = 0;
    for (const record& r : done_) n += r.epoch == epoch ? 1 : 0;
    return n;
  }
  /// Completion times of one epoch, microseconds (steady-state comparisons:
  /// epoch 0 includes cold-start effects that later generations do not).
  [[nodiscard]] sample_set fct_us_epoch(std::uint32_t epoch) const {
    sample_set s;
    for (const record& r : done_) {
      if (r.epoch == epoch) s.add(to_us(r.end - r.start));
    }
    return s;
  }
  [[nodiscard]] std::size_t still_open() const { return open_.size(); }
  [[nodiscard]] const std::vector<record>& records() const { return done_; }
  /// All completion times, microseconds.
  [[nodiscard]] const sample_set& fct_us() const { return fct_us_; }
  /// Completion time of the last flow to finish, microseconds since t=0.
  [[nodiscard]] double last_completion_us() const;

 private:
  struct info {
    simtime_t start;
    std::uint64_t bytes;
    std::uint32_t epoch = 0;
  };
  std::unordered_map<std::uint32_t, info> open_;
  std::vector<record> done_;
  sample_set fct_us_;
  std::uint32_t max_epoch_ = 0;
};

}  // namespace ndpsim
