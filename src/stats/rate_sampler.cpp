#include "stats/rate_sampler.h"

namespace ndpsim {

rate_sampler::rate_sampler(sim_env& env,
                           std::function<std::uint64_t()> counter,
                           simtime_t interval, std::string name)
    : event_source(env.events, std::move(name)),
      env_(env),
      counter_(std::move(counter)),
      interval_(interval) {
  NDPSIM_ASSERT(interval_ > 0);
}

void rate_sampler::start(simtime_t at) {
  timer_ = events().schedule_at(*this, at);
}

void rate_sampler::do_next_event() {
  const std::uint64_t count = counter_();
  if (first_poll_ < 0) {
    first_poll_ = env_.now();
    first_count_ = count;
  } else {
    const double bits = static_cast<double>(count - last_count_) * 8.0;
    samples_.push_back(
        sample{env_.now(), bits / to_sec(interval_) / 1.0});
  }
  last_count_ = count;
  timer_ = events().schedule_in(*this, interval_);
}

double rate_sampler::overall_rate_bps() const {
  if (first_poll_ < 0 || samples_.empty()) return 0.0;
  const simtime_t span = samples_.back().at - first_poll_;
  if (span <= 0) return 0.0;
  const double bits =
      static_cast<double>(last_count_ - first_count_) * 8.0;
  return bits / to_sec(span);
}

}  // namespace ndpsim
