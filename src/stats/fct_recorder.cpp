#include "stats/fct_recorder.h"

#include <algorithm>

namespace ndpsim {

double fct_recorder::last_completion_us() const {
  simtime_t latest = 0;
  for (const auto& r : done_) latest = std::max(latest, r.end);
  return to_us(latest);
}

}  // namespace ndpsim
