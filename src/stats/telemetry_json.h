// JSON emission for the telemetry plane: an end-of-run per-slot summary and
// an epoch time-series with *derived* metrics — queue depth (for heatmaps),
// link utilization, ECN-mark / trim / drop and demux stale-drop rates — all
// computed from cumulative-counter deltas between collector epochs, never
// from live component state.
//
// Output contract (consumed by scripts/telemetry_heatmap.py and the README
// example):
//   {
//     "summary": {"slots": [ {slot, name, kind, level, rate_bps,
//                             enq_pkts, deq_pkts, drop_pkts, trim_pkts,
//                             bounce_pkts, mark_pkts, stale_drops,
//                             enq_bytes, deq_bytes, drop_bytes, trim_bytes,
//                             bounce_bytes}... ]},
//     "timeseries": {"epoch_us", "dropped_epochs", "epochs_us": [...],
//                    "queues":  [ {slot, name, level, rate_bps,
//                                  depth_pkts: [...], depth_bytes: [...],
//                                  utilization: [...], drops: [...],
//                                  trims: [...], marks: [...]} ... ],
//                    "demuxes": [ {slot, name, delivered: [...],
//                                  stale_drops: [...]} ... ]}
//   }
// Idle slots (no packet ever counted) are omitted from both sections so a
// k=32 fabric with a localized workload doesn't emit 100k empty series.
// Per-epoch arrays have one entry per *interval* (epoch i covers
// (epochs_us[i-1], epochs_us[i]]); depth series are sampled at interval end.
//
// Like bench_eventcore, emission is hand-formatted fprintf — no JSON
// library dependency, and the writers take a FILE* so callers can embed the
// sections in a larger document.
#pragma once

#include <cstdio>

#include "sim/telemetry.h"

namespace ndpsim {

/// Write the `{"slots": [...]}` end-of-run summary object.
void write_telemetry_summary(std::FILE* f, const telemetry_plane& plane);

/// Write the derived time-series object from a collector's epoch ring.
void write_telemetry_timeseries(std::FILE* f,
                                const telemetry_collector& collector);

/// Whole-document convenience: {"summary": ..., "timeseries": ...} (the
/// timeseries key is omitted when `collector` is null).  Returns false when
/// the file cannot be written.
bool write_telemetry_json(const char* path, const telemetry_plane& plane,
                          const telemetry_collector* collector);

}  // namespace ndpsim
