// Sample accumulator with quantile/CDF helpers used by tests and benches.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ndpsim {

class sample_set {
 public:
  void add(double v) { samples_.push_back(v); sorted_ = false; }
  void clear() { samples_.clear(); sorted_ = false; }

  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Quantile q in [0,1] by nearest-rank on the sorted samples.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double min() const { return quantile(0.0); }
  [[nodiscard]] double max() const { return quantile(1.0); }
  [[nodiscard]] double mean() const;
  /// Mean of the lowest `frac` fraction of samples (paper's "worst 10%").
  [[nodiscard]] double mean_lowest(double frac) const;

  [[nodiscard]] const std::vector<double>& raw() const { return samples_; }

  /// CDF rows "value cum_fraction" at each sample, thinned to <= max_rows.
  [[nodiscard]] std::string cdf_rows(std::size_t max_rows = 50) const;

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace ndpsim
