// Fixed-size, deterministic, mergeable quantile sketch for campaign spill.
//
// Campaign-scale sweeps (src/harness/campaign_runner.h) reduce every job's
// `fct_recorder` — O(flows) memory — into a compact `fct_summary` before the
// recorder is freed, so the sketch must (a) answer quantile queries with a
// *guaranteed* error bound, (b) merge across jobs, and (c) be bitwise
// deterministic: a resumed campaign must reproduce the uninterrupted run's
// spill lines exactly, however its jobs were scheduled or interleaved.
//
// The design is the relative-error logarithmic histogram (the DDSketch
// bucket rule): value v > 0 lands in bucket ceil(log_gamma(v)) with
// gamma = (1 + alpha) / (1 - alpha), and the bucket is answered as the
// geometric midpoint 2*gamma^i / (gamma + 1), which is within a factor
// (1 ± alpha) of every value the bucket can hold.  The consequences we rely
// on, in order of importance:
//
//  * Insertion-order independence.  A bucket index depends only on the
//    value, never on sketch state: the same multiset of samples produces
//    the identical sketch whatever order it arrives in — including arriving
//    pre-aggregated through `merge_from`, which is a plain counter add and
//    therefore commutative and associative.  (A sampling sketch seeded per
//    job would be deterministic too, but not order-independent under merge;
//    determinism here is structural, no RNG involved at all.)
//  * Fixed size.  The value domain is clamped to [kMinValue, kMaxValue]
//    (1e-3 .. 1e12, microseconds in practice: sub-nanosecond FCTs and
//    11-day FCTs are both off the scale of any figure), which caps the
//    index range at ~864 buckets at the default alpha = 0.02.  Storage is
//    sparse (sorted index -> count pairs), so a typical per-job FCT
//    distribution costs a few hundred bytes; the cap is what makes the
//    worst case campaign-length-independent.
//  * Relative-error guarantee.  For any quantile q, the reported value is
//    within alpha (relative) of some sample at rank within one bucket of
//    the nearest-rank answer — values inside the clamp domain only; the
//    clamp saturates anything outside.  tests/test_stats.cpp checks the
//    bound against exact nearest-rank quantiles on recorded FCT
//    distributions.
//
// Exact count / sum / min / max ride alongside in `fct_summary`
// (stats/fct_summary.h); the sketch only answers interior quantiles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ndpsim {

class quantile_sketch {
 public:
  /// Value clamp domain: everything outside saturates to the boundary
  /// bucket (and is reported as such).  In microseconds this spans 1ps to
  /// ~11.6 days — no real FCT leaves it.
  static constexpr double kMinValue = 1e-3;
  static constexpr double kMaxValue = 1e12;
  /// Default relative-error target (2%).
  static constexpr double kDefaultAlpha = 0.02;

  explicit quantile_sketch(double alpha = kDefaultAlpha);

  /// Record one sample (clamped into the value domain).
  void add(double v, std::uint64_t count = 1);

  /// Fold another sketch in (bucket-wise counter add — commutative, so the
  /// merged sketch is independent of merge order).  Alphas must match.
  void merge_from(const quantile_sketch& other);

  /// Quantile q in [0, 1] as the geometric midpoint of the bucket holding
  /// the nearest-rank sample; within `alpha()` (relative) of the exact
  /// nearest-rank answer for in-domain values.  Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::size_t buckets() const { return buckets_.size(); }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  /// Bucket index for a value at this sketch's resolution (exposed for the
  /// serializer and tests).
  [[nodiscard]] std::int32_t bucket_index(double v) const;
  /// Representative (geometric midpoint) value of a bucket.
  [[nodiscard]] double bucket_value(std::int32_t index) const;

  /// Sparse storage, ascending index — the serialization order.  Counts are
  /// never zero.
  struct bucket {
    std::int32_t index;
    std::uint64_t count;
    bool operator==(const bucket&) const = default;
  };
  [[nodiscard]] const std::vector<bucket>& raw_buckets() const {
    return buckets_;
  }

  /// Rebuild from serialized state (parser side).  Returns false (leaving
  /// the sketch empty) if the buckets are unsorted, duplicated, zero-count
  /// or out of the clamped index range.
  bool restore(double alpha, const std::vector<bucket>& buckets);

  bool operator==(const quantile_sketch&) const = default;

 private:
  double alpha_;
  double log_gamma_;   ///< ln((1+alpha)/(1-alpha))
  std::int32_t min_index_;
  std::int32_t max_index_;
  std::uint64_t count_ = 0;
  std::vector<bucket> buckets_;  ///< sorted by index, counts > 0
};

}  // namespace ndpsim
