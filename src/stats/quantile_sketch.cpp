#include "stats/quantile_sketch.h"

#include <algorithm>
#include <cmath>

#include "sim/assert.h"

namespace ndpsim {

quantile_sketch::quantile_sketch(double alpha) : alpha_(alpha) {
  NDPSIM_ASSERT_MSG(alpha > 0 && alpha < 1, "sketch alpha out of (0,1)");
  log_gamma_ = std::log((1.0 + alpha_) / (1.0 - alpha_));
  min_index_ =
      static_cast<std::int32_t>(std::ceil(std::log(kMinValue) / log_gamma_));
  max_index_ =
      static_cast<std::int32_t>(std::ceil(std::log(kMaxValue) / log_gamma_));
}

std::int32_t quantile_sketch::bucket_index(double v) const {
  if (!(v > kMinValue)) return min_index_;  // clamps NaN and <=0 too
  if (v >= kMaxValue) return max_index_;
  const auto i = static_cast<std::int32_t>(std::ceil(std::log(v) / log_gamma_));
  return std::clamp(i, min_index_, max_index_);
}

double quantile_sketch::bucket_value(std::int32_t index) const {
  // Geometric midpoint of (gamma^(i-1), gamma^i]: within (1 +- alpha) of
  // every value the bucket can hold.
  const double gamma = (1.0 + alpha_) / (1.0 - alpha_);
  return 2.0 * std::exp(static_cast<double>(index) * log_gamma_) /
         (gamma + 1.0);
}

void quantile_sketch::add(double v, std::uint64_t count) {
  if (count == 0) return;
  const std::int32_t idx = bucket_index(v);
  // Sorted sparse insert: FCT distributions hit a few hundred distinct
  // buckets at most, and most adds land in an existing one.
  auto it = std::lower_bound(
      buckets_.begin(), buckets_.end(), idx,
      [](const bucket& b, std::int32_t i) { return b.index < i; });
  if (it != buckets_.end() && it->index == idx) {
    it->count += count;
  } else {
    buckets_.insert(it, bucket{idx, count});
  }
  count_ += count;
}

void quantile_sketch::merge_from(const quantile_sketch& other) {
  NDPSIM_ASSERT_MSG(alpha_ == other.alpha_,
                    "merging sketches of different resolution");
  if (other.buckets_.empty()) return;
  // Merge-join of two sorted bucket lists; counter adds are commutative, so
  // (a merge b) == (b merge a) bucket for bucket.
  std::vector<bucket> merged;
  merged.reserve(buckets_.size() + other.buckets_.size());
  auto a = buckets_.begin();
  auto b = other.buckets_.begin();
  while (a != buckets_.end() || b != other.buckets_.end()) {
    if (b == other.buckets_.end() ||
        (a != buckets_.end() && a->index < b->index)) {
      merged.push_back(*a++);
    } else if (a == buckets_.end() || b->index < a->index) {
      merged.push_back(*b++);
    } else {
      merged.push_back(bucket{a->index, a->count + b->count});
      ++a;
      ++b;
    }
  }
  buckets_ = std::move(merged);
  count_ += other.count_;
}

double quantile_sketch::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank on the bucket counts (rank 1 = smallest), matching
  // sample_set::quantile's convention.
  const auto rank = static_cast<std::uint64_t>(std::max(
      1.0, std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (const bucket& b : buckets_) {
    seen += b.count;
    if (seen >= rank) return bucket_value(b.index);
  }
  return bucket_value(buckets_.back().index);
}

bool quantile_sketch::restore(double alpha, const std::vector<bucket>& buckets) {
  *this = quantile_sketch(alpha);
  std::uint64_t total = 0;
  std::int32_t prev = min_index_ - 1;
  for (const bucket& b : buckets) {
    if (b.index <= prev || b.index < min_index_ || b.index > max_index_ ||
        b.count == 0) {
      *this = quantile_sketch(alpha);
      return false;
    }
    prev = b.index;
    total += b.count;
  }
  buckets_ = buckets;
  count_ = total;
  return true;
}

}  // namespace ndpsim
