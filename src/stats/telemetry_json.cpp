#include "stats/telemetry_json.h"

#include <cinttypes>
#include <vector>

#include "sim/time.h"

namespace ndpsim {

namespace {

// Slot names come from the blueprint's name pool ("aggup3.1.2.pipe",
// "demux17") or the "slotN" fallback — no characters that need JSON
// escaping, asserted here so a future name scheme cannot silently corrupt
// the document.
void write_name(std::FILE* f, const std::string& name) {
  for (const char c : name) {
    NDPSIM_ASSERT_MSG(c != '"' && c != '\\' && c >= 0x20,
                      "telemetry slot name needs JSON escaping: " << name);
  }
  std::fprintf(f, "\"%s\"", name.c_str());
}

void write_u64_array(std::FILE* f, const char* key,
                     const std::vector<std::uint64_t>& v) {
  std::fprintf(f, "\"%s\": [", key);
  for (std::size_t i = 0; i < v.size(); ++i) {
    std::fprintf(f, "%s%" PRIu64, i > 0 ? ", " : "", v[i]);
  }
  std::fprintf(f, "]");
}

void write_f64_array(std::FILE* f, const char* key,
                     const std::vector<double>& v) {
  std::fprintf(f, "\"%s\": [", key);
  for (std::size_t i = 0; i < v.size(); ++i) {
    std::fprintf(f, "%s%.6f", i > 0 ? ", " : "", v[i]);
  }
  std::fprintf(f, "]");
}

/// Resident packets implied by a slot's cumulative counters (the
/// conservation-law identity, rearranged): what entered minus every way out.
[[nodiscard]] std::uint64_t resident_pkts(const telemetry_counters& c) {
  const std::uint64_t out = c.deq_pkts + c.drop_pkts + c.bounce_pkts;
  return c.enq_pkts >= out ? c.enq_pkts - out : 0;
}

[[nodiscard]] std::uint64_t resident_bytes(const telemetry_counters& c) {
  const std::uint64_t out =
      c.deq_bytes + c.drop_bytes + c.bounce_bytes + c.trim_bytes;
  return c.enq_bytes >= out ? c.enq_bytes - out : 0;
}

}  // namespace

void write_telemetry_summary(std::FILE* f, const telemetry_plane& plane) {
  std::fprintf(f, "{\"slots\": [");
  bool first = true;
  for (std::uint32_t slot = 0; slot < plane.n_slots(); ++slot) {
    const telemetry_plane::slot_info& info = plane.info(slot);
    const telemetry_counters c = plane.counters(slot);
    if (!info.armed || c.idle()) continue;
    std::fprintf(f, "%s\n    {\"slot\": %u, \"name\": ", first ? "" : ",",
                 slot);
    write_name(f, plane.slot_name(slot));
    std::fprintf(
        f,
        ", \"kind\": \"%s\", \"level\": %u, \"rate_bps\": %" PRIu64
        ", \"enq_pkts\": %" PRIu64 ", \"deq_pkts\": %" PRIu64
        ", \"drop_pkts\": %" PRIu64 ", \"trim_pkts\": %" PRIu64
        ", \"bounce_pkts\": %" PRIu64 ", \"mark_pkts\": %" PRIu64
        ", \"stale_drops\": %" PRIu64 ", \"enq_bytes\": %" PRIu64
        ", \"deq_bytes\": %" PRIu64 ", \"drop_bytes\": %" PRIu64
        ", \"trim_bytes\": %" PRIu64 ", \"bounce_bytes\": %" PRIu64 "}",
        to_string(info.kind), info.level, info.rate_bps, c.enq_pkts,
        c.deq_pkts, c.drop_pkts, c.trim_pkts, c.bounce_pkts, c.mark_pkts,
        c.stale_drops, c.enq_bytes, c.deq_bytes, c.drop_bytes, c.trim_bytes,
        c.bounce_bytes);
    first = false;
  }
  std::fprintf(f, "%s]}", first ? "" : "\n  ");
}

void write_telemetry_timeseries(std::FILE* f,
                                const telemetry_collector& collector) {
  const telemetry_plane& plane = collector.plane();
  const std::size_t n_epochs = collector.n_epochs();
  std::fprintf(f, "{\"epoch_us\": %.3f, \"dropped_epochs\": %" PRIu64 ",\n",
               to_us(collector.epoch()), collector.dropped_epochs());
  std::fprintf(f, "  \"epochs_us\": [");
  for (std::size_t e = 0; e < n_epochs; ++e) {
    std::fprintf(f, "%s%.3f", e > 0 ? ", " : "",
                 to_us(collector.epoch_at(e).at));
  }
  std::fprintf(f, "],\n");

  // Queue series: depth sampled at each interval end, plus per-interval
  // drop/trim/mark deltas and utilization (bytes put on the wire over what
  // the link could have carried in the interval).
  std::fprintf(f, "  \"queues\": [");
  bool first = true;
  for (std::uint32_t slot = 0; slot < plane.n_slots(); ++slot) {
    const telemetry_plane::slot_info& info = plane.info(slot);
    if (!info.armed || info.kind != telemetry_kind::queue) continue;
    if (n_epochs == 0 ||
        collector.epoch_at(n_epochs - 1).counters(slot).idle()) {
      continue;
    }
    std::vector<std::uint64_t> depth_pkts, depth_bytes, drops, trims, marks;
    std::vector<double> utilization;
    for (std::size_t e = 1; e < n_epochs; ++e) {
      const auto& prev = collector.epoch_at(e - 1);
      const auto& cur = collector.epoch_at(e);
      const telemetry_counters a = prev.counters(slot);
      const telemetry_counters b = cur.counters(slot);
      depth_pkts.push_back(resident_pkts(b));
      depth_bytes.push_back(resident_bytes(b));
      drops.push_back(b.drop_pkts - a.drop_pkts);
      trims.push_back(b.trim_pkts - a.trim_pkts);
      marks.push_back(b.mark_pkts - a.mark_pkts);
      const double dt = to_sec(cur.at - prev.at);
      const double capacity =
          dt * static_cast<double>(info.rate_bps) / 8.0;  // bytes
      utilization.push_back(
          capacity > 0
              ? static_cast<double>(b.deq_bytes - a.deq_bytes) / capacity
              : 0.0);
    }
    std::fprintf(f, "%s\n    {\"slot\": %u, \"name\": ", first ? "" : ",",
                 slot);
    write_name(f, plane.slot_name(slot));
    std::fprintf(f, ", \"level\": %u, \"rate_bps\": %" PRIu64 ",\n     ",
                 info.level, info.rate_bps);
    write_u64_array(f, "depth_pkts", depth_pkts);
    std::fprintf(f, ",\n     ");
    write_u64_array(f, "depth_bytes", depth_bytes);
    std::fprintf(f, ",\n     ");
    write_f64_array(f, "utilization", utilization);
    std::fprintf(f, ",\n     ");
    write_u64_array(f, "drops", drops);
    std::fprintf(f, ", ");
    write_u64_array(f, "trims", trims);
    std::fprintf(f, ", ");
    write_u64_array(f, "marks", marks);
    std::fprintf(f, "}");
    first = false;
  }
  std::fprintf(f, "%s],\n", first ? "" : "\n  ");

  // Demux series: per-interval delivered / stale-drop deltas.
  std::fprintf(f, "  \"demuxes\": [");
  first = true;
  for (std::uint32_t slot = 0; slot < plane.n_slots(); ++slot) {
    const telemetry_plane::slot_info& info = plane.info(slot);
    if (!info.armed || info.kind != telemetry_kind::demux) continue;
    if (n_epochs == 0 ||
        collector.epoch_at(n_epochs - 1).counters(slot).idle()) {
      continue;
    }
    std::vector<std::uint64_t> delivered, stale;
    for (std::size_t e = 1; e < n_epochs; ++e) {
      const telemetry_counters a = collector.epoch_at(e - 1).counters(slot);
      const telemetry_counters b = collector.epoch_at(e).counters(slot);
      delivered.push_back(b.deq_pkts - a.deq_pkts);
      stale.push_back(b.stale_drops - a.stale_drops);
    }
    std::fprintf(f, "%s\n    {\"slot\": %u, \"name\": ", first ? "" : ",",
                 slot);
    write_name(f, plane.slot_name(slot));
    std::fprintf(f, ", ");
    write_u64_array(f, "delivered", delivered);
    std::fprintf(f, ", ");
    write_u64_array(f, "stale_drops", stale);
    std::fprintf(f, "}");
    first = false;
  }
  std::fprintf(f, "%s]}", first ? "" : "\n  ");
}

bool write_telemetry_json(const char* path, const telemetry_plane& plane,
                          const telemetry_collector* collector) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n  \"summary\": ");
  write_telemetry_summary(f, plane);
  if (collector != nullptr) {
    std::fprintf(f, ",\n  \"timeseries\": ");
    write_telemetry_timeseries(f, *collector);
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  return true;
}

}  // namespace ndpsim
