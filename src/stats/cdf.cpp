#include "stats/cdf.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "sim/assert.h"

namespace ndpsim {

void sample_set::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double sample_set::quantile(double q) const {
  NDPSIM_ASSERT(!samples_.empty());
  NDPSIM_ASSERT(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  const auto idx = static_cast<std::size_t>(
      std::min<double>(std::ceil(q * static_cast<double>(samples_.size())),
                       static_cast<double>(samples_.size())));
  return samples_[idx == 0 ? 0 : idx - 1];
}

double sample_set::mean() const {
  NDPSIM_ASSERT(!samples_.empty());
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double sample_set::mean_lowest(double frac) const {
  NDPSIM_ASSERT(!samples_.empty());
  NDPSIM_ASSERT(frac > 0.0 && frac <= 1.0);
  ensure_sorted();
  const std::size_t n = std::max<std::size_t>(
      1, static_cast<std::size_t>(frac * static_cast<double>(samples_.size())));
  return std::accumulate(samples_.begin(), samples_.begin() + n, 0.0) /
         static_cast<double>(n);
}

std::string sample_set::cdf_rows(std::size_t max_rows) const {
  ensure_sorted();
  std::ostringstream os;
  if (samples_.empty()) return {};
  const std::size_t n = samples_.size();
  const std::size_t step = std::max<std::size_t>(1, n / max_rows);
  for (std::size_t i = 0; i < n; i += step) {
    os << samples_[i] << " "
       << static_cast<double>(i + 1) / static_cast<double>(n) << "\n";
  }
  if ((n - 1) % step != 0) os << samples_[n - 1] << " 1\n";
  return os.str();
}

}  // namespace ndpsim
