// Periodic goodput sampler: polls byte counters at a fixed interval and
// records per-interval rates (the time-series plots, e.g. Fig 19).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "net/sim_env.h"
#include "sim/eventlist.h"

namespace ndpsim {

class rate_sampler final : public event_source {
 public:
  /// `counter` returns a monotonically non-decreasing byte count.
  rate_sampler(sim_env& env, std::function<std::uint64_t()> counter,
               simtime_t interval, std::string name = "rates");

  void start(simtime_t at);
  /// Stop polling (cancels the pending poll timer).
  void stop() { events().cancel(timer_); }
  void do_next_event() override;

  struct sample {
    simtime_t at;     ///< end of the interval
    double rate_bps;  ///< average rate over the interval
  };
  [[nodiscard]] const std::vector<sample>& samples() const { return samples_; }
  /// Average rate between the first and the last poll.
  [[nodiscard]] double overall_rate_bps() const;

 private:
  sim_env& env_;
  std::function<std::uint64_t()> counter_;
  simtime_t interval_;
  timer_handle timer_;
  std::uint64_t last_count_ = 0;
  simtime_t first_poll_ = -1;
  std::uint64_t first_count_ = 0;
  std::vector<sample> samples_;
};

}  // namespace ndpsim
