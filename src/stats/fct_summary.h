// Compact per-job result record for campaign-scale sweeps.
//
// A campaign job's full result — its `fct_recorder` (O(completed flows))
// and, when telemetry is on, its per-slot counter plane (O(fabric slots)) —
// is reduced on the worker into this fixed-size summary and spilled as one
// JSONL line, so a thousand-job campaign never accumulates recorders or
// planes (src/harness/campaign_runner.h).  The summary keeps:
//
//  * exact count / still-open / byte / event totals and exact
//    sum / min / max of the completion times (microseconds);
//  * a `quantile_sketch` of the FCT distribution — deterministic,
//    insertion-order independent, mergeable, with a guaranteed relative
//    error bound (stats/quantile_sketch.h);
//  * the telemetry plane folded to one `telemetry_counters` total per
//    component kind (queues / pipes / demuxes) plus the armed-slot count.
//
// Serialization contract (the campaign spill / resume contract rides on
// it): `to_jsonl` is a pure function of the summary — fixed key order,
// `%.17g` doubles (value-preserving round trip), sketch buckets in
// ascending index order — so two runs of the same job config emit
// byte-identical lines, which is what makes a resumed campaign's merged
// result file bitwise-identical to an uninterrupted run's.  `from_jsonl`
// is strict: any malformed, truncated or trailing-garbage line is rejected
// as a whole (never half-parsed), which is how interrupted spill writes
// are detected on resume.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/telemetry.h"
#include "stats/fct_recorder.h"
#include "stats/quantile_sketch.h"

namespace ndpsim {

/// A whole telemetry plane folded to per-kind counter totals.
struct telemetry_summary {
  bool present = false;  ///< false = the job carried no plane
  std::uint64_t armed_slots = 0;
  telemetry_counters queues;
  telemetry_counters pipes;
  telemetry_counters demuxes;

  void add(const telemetry_summary& other);
  [[nodiscard]] static telemetry_summary from_plane(const telemetry_plane& p);

  bool operator==(const telemetry_summary&) const = default;
};

struct fct_summary {
  std::uint64_t job = 0;   ///< campaign job id (index into the config list)
  std::uint64_t hash = 0;  ///< config hash (resume identity check)
  std::string name;        ///< experiment_config::name

  std::uint64_t flows = 0;      ///< completed flows
  std::uint64_t still_open = 0; ///< started but not completed
  std::uint64_t bytes = 0;      ///< payload bytes of completed flows
  std::uint64_t events = 0;     ///< simulator events the job processed
  double sum_us = 0;
  double min_us = 0;
  double max_us = 0;
  quantile_sketch sketch;
  telemetry_summary tele;

  explicit fct_summary(double alpha = quantile_sketch::kDefaultAlpha)
      : sketch(alpha) {}

  /// Reduce a recorder: exact totals + every completion time sketched.
  [[nodiscard]] static fct_summary from_recorder(
      const fct_recorder& rec, double alpha = quantile_sketch::kDefaultAlpha);

  /// Fold a plane in (campaign spill: call once per job, before the plane
  /// is freed).
  void set_telemetry(const telemetry_plane& plane) {
    tele = telemetry_summary::from_plane(plane);
  }

  /// Campaign-wide aggregation across jobs (exact fields add / min / max;
  /// sketches merge bucket-wise).  job/hash/name keep this summary's.
  void merge_from(const fct_summary& other);

  [[nodiscard]] double mean_us() const {
    return flows > 0 ? sum_us / static_cast<double>(flows) : 0.0;
  }
  /// FCT quantile in microseconds, from the sketch (see its error bound).
  [[nodiscard]] double quantile_us(double q) const {
    return sketch.quantile(q);
  }

  /// One deterministic JSONL line (no trailing newline).
  [[nodiscard]] std::string to_jsonl() const;
  /// Strict parse of one line; on any defect returns false and leaves
  /// `out` default-constructed.
  static bool from_jsonl(std::string_view line, fct_summary& out);

  bool operator==(const fct_summary&) const = default;
};

}  // namespace ndpsim
