// TCP receiver: cumulative ACK generation with out-of-order interval
// tracking; echoes CE marks back to the sender (per-packet echo, which is
// what DCTCP needs).
#pragma once

#include <cstdint>
#include <map>

#include "net/packet.h"
#include "net/route.h"
#include "net/sim_env.h"

namespace ndpsim {

class tcp_sink final : public packet_sink {
 public:
  explicit tcp_sink(sim_env& env, std::uint32_t flow_id)
      : env_(env), flow_id_(flow_id) {}

  /// Called by tcp_source::connect.
  void bind(const route* rev_route, std::uint32_t local_host,
            std::uint32_t remote_host) {
    rev_route_ = rev_route;
    local_host_ = local_host;
    remote_host_ = remote_host;
  }

  void receive(packet& p) override;

  [[nodiscard]] std::uint64_t cumulative_acked() const { return cum_; }
  [[nodiscard]] std::uint64_t payload_received() const { return payload_; }
  [[nodiscard]] std::uint64_t packets_received() const { return packets_; }
  [[nodiscard]] std::uint32_t flow_id() const { return flow_id_; }

 private:
  void send_ack(bool syn_ack, bool ecn_echo);

  sim_env& env_;
  std::uint32_t flow_id_;
  const route* rev_route_ = nullptr;
  std::uint32_t local_host_ = 0;
  std::uint32_t remote_host_ = 0;

  std::uint64_t cum_ = 0;  ///< all bytes < cum_ received
  std::map<std::uint64_t, std::uint64_t> ooo_;  ///< start -> end, disjoint
  std::uint64_t payload_ = 0;
  std::uint64_t packets_ = 0;
};

}  // namespace ndpsim
