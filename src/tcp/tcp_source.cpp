#include "tcp/tcp_source.h"

#include <algorithm>

#include "tcp/tcp_sink.h"

namespace ndpsim {

tcp_source::tcp_source(sim_env& env, tcp_config cfg, std::uint32_t flow_id,
                       std::string name)
    : event_source(env.events, std::move(name), dispatch_class::transport_timer),
      env_(env),
      cfg_(cfg),
      flow_id_(flow_id) {
  NDPSIM_ASSERT(cfg_.mss_bytes > kHeaderBytes);
  cwnd_ = static_cast<std::uint64_t>(cfg_.iw_mss) * payload_per_packet();
  ssthresh_ = static_cast<std::uint64_t>(cfg_.max_cwnd_mss) *
              payload_per_packet();
  srtt_ = cfg_.initial_rtt;
  rttvar_ = cfg_.initial_rtt / 2;
  rto_ = std::max(cfg_.min_rto, srtt_ + 4 * rttvar_);
}

tcp_source::~tcp_source() { disconnect(); }

void tcp_source::disconnect() {
  events().cancel(rto_timer_);  // pending start event or RTO, whichever
  if (sink_ != nullptr) {
    paths_.unbind(flow_id_);
    sink_ = nullptr;
  }
  paths_ = path_set{};
}

void tcp_source::connect(tcp_sink& sink, path_set paths,
                         std::uint32_t src_host, std::uint32_t dst_host,
                         std::uint64_t flow_bytes, simtime_t start) {
  NDPSIM_ASSERT_MSG(!paths.empty(), "need at least one path");
  sink_ = &sink;
  paths_ = paths;
  fwd_route_ = paths_.forward(0);
  rev_route_ = paths_.reverse(0);
  paths_.bind_dst(flow_id_, sink_);
  paths_.bind_src(flow_id_, this);
  sink_->bind(rev_route_, dst_host, src_host);
  src_host_ = src_host;
  dst_host_ = dst_host;
  flow_bytes_ = flow_bytes;
  remaining_ = flow_bytes == 0 ? UINT64_MAX : flow_bytes;
  start_time_ = start;
  // The start event shares the RTO handle so disconnect() can cancel a flow
  // that never started; the first arm_rto after start re-arms it.
  rto_timer_ = events().schedule_at(*this, start);
}

void tcp_source::do_next_event() {
  if (!started_) {
    started_ = true;
    start_flow();
    return;
  }
  // Genuine RTO expiry: the timer is moved on every ACK and cancelled when
  // nothing is outstanding, so a firing always means a timeout.
  NDPSIM_ASSERT(syn_outstanding_ || snd_una_ < snd_nxt_);
  ++stats_.timeouts;
  enter_slow_start_after_timeout();
  if (syn_outstanding_) {
    send_syn();
  } else {
    ++stats_.rtx_timeout;
    retransmit_head();
    // Treat everything in flight as suspect: recover holes NewReno-style
    // as cumulative ACKs come back.
    in_recovery_ = true;
    recover_ = snd_nxt_;
  }
  rto_ = std::min<simtime_t>(2 * rto_, from_sec(1.0));
  arm_rto();
}

void tcp_source::start_flow() {
  if (cfg_.handshake) {
    send_syn();
    arm_rto();
  } else {
    established_ = true;
    try_send();
  }
}

void tcp_source::send_syn() {
  packet* p = env_.pool.alloc();
  p->type = packet_type::tcp_data;
  p->flow_id = flow_id_;
  p->src = src_host_;
  p->dst = dst_host_;
  p->size_bytes = kHeaderBytes;
  p->payload_bytes = 0;
  p->set_flag(pkt_flag::syn);
  p->rt = fwd_route_;
  p->next_hop = 0;
  syn_outstanding_ = true;
  ++stats_.packets_sent;
  send_to_next_hop(*p);
}

void tcp_source::enter_slow_start_after_timeout() {
  ssthresh_ = std::max<std::uint64_t>(inflight() / 2,
                                      2 * payload_per_packet());
  cwnd_ = payload_per_packet();
  in_recovery_ = false;
  dup_acks_ = 0;
}

std::uint32_t tcp_source::claim_payload(std::uint32_t max) {
  const std::uint32_t n =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(max, remaining_));
  remaining_ -= n;
  return n;
}

void tcp_source::try_send() {
  if (!established_) return;
  const std::uint64_t cap =
      std::min<std::uint64_t>(cwnd_, static_cast<std::uint64_t>(
                                         cfg_.max_cwnd_mss) *
                                         payload_per_packet());
  while (inflight() + payload_per_packet() <= cap ||
         (inflight() == 0 && cap > 0)) {
    const std::uint32_t want = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(payload_per_packet(), cap - std::min(cap, inflight())));
    if (want == 0) break;
    const std::uint32_t len = claim_payload(want);
    if (len == 0) break;  // no more data to send
    send_segment(snd_nxt_, len, /*is_rtx=*/false);
    snd_nxt_ += len;
  }
  arm_rto();
}

void tcp_source::send_segment(std::uint64_t start, std::uint32_t len,
                              bool is_rtx) {
  packet* p = env_.pool.alloc();
  p->type = packet_type::tcp_data;
  p->flow_id = flow_id_;
  p->src = src_host_;
  p->dst = dst_host_;
  p->seqno = start;
  p->payload_bytes = len;
  p->size_bytes = len + kHeaderBytes;
  if (cfg_.ecn) p->set_flag(pkt_flag::ect);
  if (is_rtx) p->set_flag(pkt_flag::rtx);
  p->rt = fwd_route_;
  p->next_hop = 0;

  auto [it, inserted] = segments_.try_emplace(start);
  it->second.len = len;
  it->second.sent = env_.now();
  it->second.retransmitted = it->second.retransmitted || is_rtx || !inserted;

  ++stats_.packets_sent;
  send_to_next_hop(*p);
}

void tcp_source::retransmit_head() {
  auto it = segments_.find(snd_una_);
  if (it == segments_.end()) {
    // Head segment record missing (e.g. SYN loss path); resend a full MSS
    // worth from snd_una_ if anything is outstanding.
    if (snd_una_ < snd_nxt_) {
      const std::uint32_t len = static_cast<std::uint32_t>(std::min<std::uint64_t>(
          payload_per_packet(), snd_nxt_ - snd_una_));
      send_segment(snd_una_, len, true);
    }
    return;
  }
  send_segment(it->first, it->second.len, true);
}

void tcp_source::receive(packet& p) {
  NDPSIM_ASSERT(p.type == packet_type::tcp_ack);
  NDPSIM_ASSERT(p.flow_id == flow_id_);
  handle_ack(p);
  env_.pool.release(&p);
}

void tcp_source::handle_ack(const packet& p) {
  if (p.has_flag(pkt_flag::syn)) {
    // SYN-ACK: connection established. try_send -> arm_rto re-arms (or
    // cancels) the timer as appropriate.
    if (!established_) {
      established_ = true;
      syn_outstanding_ = false;
      try_send();
    }
    return;
  }
  const std::uint64_t ack = p.ackno;
  const bool echo = p.has_flag(pkt_flag::ce);

  if (ack > snd_una_) {
    const std::uint64_t newly = ack - snd_una_;
    // RTT sample from the newest fully-acked, never-retransmitted segment.
    simtime_t sample = -1;
    auto it = segments_.begin();
    while (it != segments_.end() && it->first + it->second.len <= ack) {
      if (!it->second.retransmitted) sample = env_.now() - it->second.sent;
      it = segments_.erase(it);
    }
    if (sample >= 0) update_rtt(sample);

    snd_una_ = ack;
    dup_acks_ = 0;
    if (echo) ++stats_.ecn_echoes;
    if (cfg_.ecn) ecn_feedback(newly, echo);
    on_bytes_acked(newly);

    if (in_recovery_) {
      if (ack >= recover_) {
        in_recovery_ = false;
        cwnd_ = ssthresh_;
      } else {
        // NewReno partial ACK: retransmit the next hole, deflate.
        retransmit_head();
        ++stats_.rtx_fast;
        cwnd_ = cwnd_ > newly ? cwnd_ - newly : payload_per_packet();
        cwnd_ += payload_per_packet();
      }
    } else {
      increase_window(newly);
    }
    try_send();
    check_complete();
  } else if (ack == snd_una_ && snd_una_ < snd_nxt_) {
    if (echo) ++stats_.ecn_echoes;
    if (cfg_.ecn) ecn_feedback(0, echo);
    ++dup_acks_;
    if (!in_recovery_ && dup_acks_ == 3) {
      ssthresh_ = std::max<std::uint64_t>(inflight() / 2,
                                          2 * payload_per_packet());
      in_recovery_ = true;
      recover_ = snd_nxt_;
      retransmit_head();
      ++stats_.rtx_fast;
      cwnd_ = ssthresh_ + 3 * payload_per_packet();
    } else if (in_recovery_) {
      cwnd_ += payload_per_packet();  // window inflation
      try_send();
    }
  }
  arm_rto();
}

void tcp_source::increase_window(std::uint64_t newly_acked) {
  const std::uint32_t mss = payload_per_packet();
  if (cwnd_ < ssthresh_) {
    cwnd_ += std::min<std::uint64_t>(newly_acked, mss);  // slow start
  } else {
    cwnd_ += std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(mss) * mss / std::max<std::uint64_t>(cwnd_, 1));
  }
  cwnd_ = std::min<std::uint64_t>(
      cwnd_, static_cast<std::uint64_t>(cfg_.max_cwnd_mss) * mss);
}

void tcp_source::ecn_feedback(std::uint64_t /*newly_acked*/, bool echo) {
  // Classic ECN: at most one multiplicative cut per RTT.
  if (!echo) return;
  if (last_ecn_cut_ >= 0 && env_.now() - last_ecn_cut_ < srtt_) return;
  last_ecn_cut_ = env_.now();
  ssthresh_ = std::max<std::uint64_t>(cwnd_ / 2, 2 * payload_per_packet());
  cwnd_ = ssthresh_;
}

void tcp_source::on_bytes_acked(std::uint64_t /*newly_acked*/) {}

void tcp_source::update_rtt(simtime_t sample) {
  if (srtt_ == cfg_.initial_rtt && rttvar_ == cfg_.initial_rtt / 2) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    const simtime_t err = sample > srtt_ ? sample - srtt_ : srtt_ - sample;
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * srtt_ + sample) / 8;
  }
  rto_ = std::max(cfg_.min_rto, srtt_ + 4 * rttvar_);
}

void tcp_source::arm_rto() {
  if (!syn_outstanding_ && snd_una_ >= snd_nxt_) {
    events().cancel(rto_timer_);  // nothing outstanding
    return;
  }
  events().reschedule(rto_timer_, *this, env_.now() + rto_);
}

void tcp_source::check_complete() {
  if (!completed_ && flow_bytes_ > 0 && snd_una_ >= flow_bytes_) {
    completed_ = true;
    completion_time_ = env_.now();
    events().cancel(rto_timer_);
    if (on_complete_) on_complete_();
  }
}

}  // namespace ndpsim
