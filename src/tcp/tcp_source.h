// TCP NewReno sender: slow start, congestion avoidance, fast
// retransmit/recovery with NewReno partial-ACK handling, RTO with exponential
// backoff, optional SYN handshake (TFO-style zero-handshake when disabled)
// and optional ECN.  Single path (per-flow ECMP, chosen by the harness).
//
// Virtual hooks let DCTCP (ECN reaction) and MPTCP subflows (coupled window
// increase, connection-level data allocation) specialize behaviour.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "net/packet.h"
#include "net/path_set.h"
#include "net/route.h"
#include "net/sim_env.h"
#include "sim/eventlist.h"

namespace ndpsim {

class tcp_sink;

struct tcp_config {
  std::uint32_t mss_bytes = 9000;  ///< wire size of a full segment
  std::uint32_t iw_mss = 2;
  simtime_t min_rto = from_ms(200);  ///< Linux default; 200us = "aggressive"
  simtime_t initial_rtt = from_us(100);
  std::uint32_t max_cwnd_mss = 200;  ///< receive-window bound (~paper buffers)
  bool handshake = true;  ///< false = TFO-like: data in the first packet
  bool ecn = false;       ///< set ECT on data, react to ECN echoes
};

struct tcp_stats {
  std::uint64_t packets_sent = 0;
  std::uint64_t rtx_fast = 0;
  std::uint64_t rtx_timeout = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t ecn_echoes = 0;
};

class tcp_source : public packet_sink, public event_source {
 public:
  tcp_source(sim_env& env, tcp_config cfg, std::uint32_t flow_id,
             std::string name = "tcpsrc");
  ~tcp_source() override;

  /// Wire up over a borrowed path set; single path (per-flow ECMP), so path
  /// 0 of the set is used. Registers the endpoints with the set's demuxes.
  /// `flow_bytes == 0` means unbounded.
  void connect(tcp_sink& sink, path_set paths, std::uint32_t src_host,
               std::uint32_t dst_host, std::uint64_t flow_bytes,
               simtime_t start);

  /// Teardown hook (flow recycling): cancel the pending start/RTO timer and
  /// unbind both demux endpoints.  Idempotent; also invoked by the
  /// destructor, so a connected source can be destroyed at any point without
  /// dangling event-list entries or demux bindings.
  void disconnect();

  void receive(packet& p) override;  // ACKs
  void do_next_event() override;     // start + RTO timer

  void set_complete_callback(std::function<void()> cb) {
    on_complete_ = std::move(cb);
  }

  [[nodiscard]] const tcp_stats& stats() const { return stats_; }
  [[nodiscard]] bool complete() const { return completed_; }
  [[nodiscard]] simtime_t completion_time() const { return completion_time_; }
  [[nodiscard]] std::uint64_t cwnd_bytes() const { return cwnd_; }
  [[nodiscard]] std::uint64_t bytes_acked() const { return snd_una_; }
  [[nodiscard]] simtime_t srtt() const { return srtt_; }
  [[nodiscard]] std::uint32_t flow_id() const { return flow_id_; }
  [[nodiscard]] const tcp_config& config() const { return cfg_; }

 protected:
  /// Allocate up to `max` new payload bytes to this (sub)flow.  The base
  /// implementation serves the flow's own byte budget; MPTCP subflows claim
  /// from the connection-level stream instead.
  [[nodiscard]] virtual std::uint32_t claim_payload(std::uint32_t max);
  /// Grow cwnd after `newly_acked` bytes (slow start / AIMD).  MPTCP
  /// overrides with the coupled (LIA) increase.
  virtual void increase_window(std::uint64_t newly_acked);
  /// React to an ECN echo. Base TCP halves once per RTT; DCTCP overrides
  /// with the fractional alpha cut. Called for every ACK when ecn is on.
  virtual void ecn_feedback(std::uint64_t newly_acked, bool echo);
  /// Called when `newly_acked` bytes are cumulatively acknowledged (MPTCP
  /// aggregates sub-flow progress here).
  virtual void on_bytes_acked(std::uint64_t newly_acked);

  void enter_slow_start_after_timeout();
  [[nodiscard]] std::uint64_t inflight() const { return snd_nxt_ - snd_una_; }
  [[nodiscard]] std::uint32_t payload_per_packet() const {
    return cfg_.mss_bytes - kHeaderBytes;
  }

  sim_env& env_;
  tcp_config cfg_;
  std::uint64_t cwnd_ = 0;      ///< bytes
  std::uint64_t ssthresh_ = 0;  ///< bytes

 private:
  struct segment {
    std::uint32_t len;
    simtime_t sent;
    bool retransmitted;
  };

  void start_flow();
  void try_send();
  void send_segment(std::uint64_t start, std::uint32_t len, bool is_rtx);
  void send_syn();
  void handle_ack(const packet& p);
  void retransmit_head();
  void arm_rto();
  void update_rtt(simtime_t sample);
  void check_complete();

  std::uint32_t flow_id_;
  tcp_sink* sink_ = nullptr;
  path_set paths_;  ///< borrowed; path 0 is the flow's route pair
  const route* fwd_route_ = nullptr;
  const route* rev_route_ = nullptr;
  std::uint32_t src_host_ = 0;
  std::uint32_t dst_host_ = 0;

  std::uint64_t flow_bytes_ = 0;  ///< 0 = unbounded
  std::uint64_t remaining_ = 0;
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  std::map<std::uint64_t, segment> segments_;  ///< start -> in-flight segment

  bool established_ = false;
  bool syn_outstanding_ = false;
  unsigned dup_acks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recover_ = 0;

  simtime_t srtt_ = 0;
  simtime_t rttvar_ = 0;
  simtime_t rto_ = 0;
  timer_handle rto_timer_;  ///< rescheduled on every ACK, cancelled when idle
  simtime_t last_ecn_cut_ = -1;

  simtime_t start_time_ = 0;
  bool started_ = false;
  bool completed_ = false;
  simtime_t completion_time_ = -1;

  tcp_stats stats_;
  std::function<void()> on_complete_;
};

}  // namespace ndpsim
