#include "tcp/tcp_sink.h"

namespace ndpsim {

void tcp_sink::receive(packet& p) {
  NDPSIM_ASSERT(p.type == packet_type::tcp_data);
  NDPSIM_ASSERT(p.flow_id == flow_id_);
  ++packets_;
  const bool syn = p.has_flag(pkt_flag::syn);
  const bool echo = p.has_flag(pkt_flag::ce);

  if (p.payload_bytes > 0) {
    const std::uint64_t start = p.seqno;
    const std::uint64_t end = start + p.payload_bytes;
    if (end > cum_) {
      // Insert [max(start,cum), end) into the out-of-order set; count only
      // newly covered bytes as payload.
      std::uint64_t s = std::max(start, cum_);
      auto it = ooo_.lower_bound(s);
      if (it != ooo_.begin()) {
        auto prev = std::prev(it);
        if (prev->second >= s) it = prev;
      }
      std::uint64_t new_bytes = end > s ? end - s : 0;
      std::uint64_t merged_s = s;
      std::uint64_t merged_e = end;
      while (it != ooo_.end() && it->first <= merged_e) {
        // Overlap: subtract the already-received intersection.
        const std::uint64_t ov_s = std::max(merged_s, it->first);
        const std::uint64_t ov_e = std::min(merged_e, it->second);
        if (ov_e > ov_s) new_bytes -= ov_e - ov_s;
        merged_s = std::min(merged_s, it->first);
        merged_e = std::max(merged_e, it->second);
        it = ooo_.erase(it);
      }
      ooo_[merged_s] = merged_e;
      payload_ += new_bytes;
      // Advance the cumulative point.
      auto first = ooo_.begin();
      if (first != ooo_.end() && first->first <= cum_) {
        cum_ = std::max(cum_, first->second);
        ooo_.erase(first);
      }
    }
  }

  send_ack(syn, echo);
  env_.pool.release(&p);
}

void tcp_sink::send_ack(bool syn_ack, bool ecn_echo) {
  NDPSIM_ASSERT_MSG(rev_route_ != nullptr, "tcp_sink not bound");
  packet* a = env_.pool.alloc();
  a->type = packet_type::tcp_ack;
  a->priority = 1;
  a->flow_id = flow_id_;
  a->src = local_host_;
  a->dst = remote_host_;
  a->size_bytes = kHeaderBytes;
  a->ackno = cum_;
  if (syn_ack) a->set_flag(pkt_flag::syn);
  if (ecn_echo) a->set_flag(pkt_flag::ce);
  a->rt = rev_route_;
  a->next_hop = 0;
  send_to_next_hop(*a);
}

}  // namespace ndpsim
