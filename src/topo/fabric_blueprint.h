// Immutable fabric structure, split from per-simulation state.
//
// A `fabric_blueprint` is an env-free description of a FatTree's wiring:
// flat link records (level, flat index, rate, delay, slot assignment), an
// interned name pool (component names are formatted lazily from the records
// — see sim/name_ref.h), and a structural path table that interns each
// (src, dst, path) route exactly once as a sequence of **sink-slot ids**
// rather than device pointers.  Because nothing in it touches a `sim_env`,
// one blueprint is shared read-only by any number of `fabric_instance`s —
// including concurrently across `parallel_runner` jobs (the structural path
// table interns lazily under a mutex; everything else is immutable after
// construction).
//
// Slot layout: each directed link owns 2 or 3 consecutive slots —
// [queue, pipe, pfc-ingress?] in traversal order — followed by one slot per
// host for its `flow_demux` terminal.  A `fabric_instance` materializes the
// link slots from a `queue_factory` and mounts demuxes as its path table
// creates them; a structural path is then resolved per packet hop as
// `sink_table[slot]` (see net/route.h).
//
// Lifetime contract: the blueprint must outlive every `fabric_instance`
// built from it (enforced by shared_ptr), and every instance must outlive
// the flows connected over it — routes handed to flows point into the
// blueprint's slot arena *and* the instance's sink table.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/sim_env.h"
#include "sim/name_ref.h"
#include "topo/topology.h"

namespace ndpsim {

struct pfc_config {
  bool enabled = false;
  std::uint64_t xoff_bytes = 25 * 9000;  ///< per-ingress pause threshold
  std::uint64_t xon_bytes = 23 * 9000;
};

struct fat_tree_config {
  unsigned k = 8;  ///< pods; must be even
  unsigned oversubscription = 1;
  linkspeed_bps link_speed = gbps(10);
  simtime_t link_delay = from_us(1);
  pfc_config pfc = {};
  /// Optional per-link speed override (failure injection). Called with the
  /// directed link's level/index and the default speed; returns the speed to
  /// use. Leave empty for uniform fabric.
  std::function<linkspeed_bps(link_level, std::size_t, linkspeed_bps)>
      speed_override = {};
};

class fabric_blueprint final : public name_pool {
 public:
  /// One directed link of the fabric.  `index` is the flat index within the
  /// level (the same indexing the speed-override hooks use).
  struct link_record {
    link_level level;
    std::uint32_t index;
    linkspeed_bps rate;
    simtime_t delay;
    std::uint32_t first_slot;  ///< queue; pipe = +1; ingress = +2 if present
    bool has_ingress;          ///< PFC ingress accounting at the far end
  };

  /// Span of interned slot ids (points into the blueprint's arena; valid for
  /// the blueprint's lifetime).
  struct slot_span {
    const std::uint32_t* slots = nullptr;
    std::uint32_t n = 0;
  };
  struct structural_pair_view {
    slot_span fwd, rev;
  };

  /// Build the blueprint for a k-ary FatTree (same wiring, indexing and
  /// naming as the former env-bound `fat_tree` builder).
  [[nodiscard]] static std::shared_ptr<const fabric_blueprint> fat_tree(
      fat_tree_config cfg);

  fabric_blueprint(const fabric_blueprint&) = delete;
  fabric_blueprint& operator=(const fabric_blueprint&) = delete;

  // --- geometry ----------------------------------------------------------
  [[nodiscard]] const fat_tree_config& config() const { return cfg_; }
  [[nodiscard]] std::size_t n_hosts() const { return n_hosts_; }
  [[nodiscard]] std::size_t n_tors() const { return n_tor_; }
  [[nodiscard]] std::size_t n_aggs() const { return n_agg_; }
  [[nodiscard]] std::size_t n_cores() const { return n_core_; }
  [[nodiscard]] unsigned hosts_per_tor() const { return hosts_per_tor_; }
  [[nodiscard]] std::uint32_t tor_of(std::uint32_t host) const {
    return host / hosts_per_tor_;
  }
  [[nodiscard]] std::uint32_t pod_of(std::uint32_t host) const {
    return tor_of(host) / half_k_;
  }
  [[nodiscard]] std::size_t agg_up_index(unsigned pod, unsigned agg,
                                         unsigned port) const {
    return (static_cast<std::size_t>(pod) * half_k_ + agg) * half_k_ + port;
  }
  [[nodiscard]] std::size_t core_down_index(unsigned core, unsigned pod) const {
    return static_cast<std::size_t>(core) * cfg_.k + pod;
  }
  [[nodiscard]] std::size_t n_paths(std::uint32_t src, std::uint32_t dst) const;
  [[nodiscard]] linkspeed_bps host_link_speed(std::uint32_t) const {
    return cfg_.link_speed;
  }

  // --- links & slots -----------------------------------------------------
  [[nodiscard]] const std::vector<link_record>& links() const { return links_; }
  /// Link id (index into `links()`) of a level's flat `index`.
  [[nodiscard]] std::uint32_t link_id(link_level level, std::size_t index) const;
  /// Total sink slots: link slots followed by one demux slot per host.
  [[nodiscard]] std::size_t n_slots() const {
    return demux_base_ + n_hosts_;
  }
  [[nodiscard]] std::uint32_t demux_slot(std::uint32_t host) const {
    NDPSIM_ASSERT(host < n_hosts_);
    return demux_base_ + host;
  }

  // --- name pool ---------------------------------------------------------
  /// Format the name of a sink slot ("aggup3.1.2", "...pipe", "...pfc",
  /// "demux17").  Cold path — only called when someone reads a name.
  [[nodiscard]] std::string format_name(std::uint32_t slot) const override;

  // --- structural path table --------------------------------------------
  /// The interned slot sequences of one (src, dst, path) route pair, both
  /// ending at the destination's demux slot.  Built exactly once per path,
  /// lazily, under a mutex — safe to call concurrently from parallel jobs
  /// sharing the blueprint.  Returned spans stay valid for the blueprint's
  /// lifetime.
  [[nodiscard]] structural_pair_view structural_pair(std::uint32_t src,
                                                     std::uint32_t dst,
                                                     std::size_t path) const;

  /// Batch form: fetch/intern `count` paths of one pair under a single lock
  /// (a multipath connect resolves its whole sampled set at once — per-path
  /// locking showed up at k=32 scale).  `out` receives one view per entry of
  /// `paths`, in order.
  void structural_paths(std::uint32_t src, std::uint32_t dst,
                        const std::size_t* paths, std::size_t count,
                        structural_pair_view* out) const;

  /// Compute (without interning) the link-slot sequence of one direction of
  /// a path, excluding the demux terminal — the raw structural builder used
  /// by `fabric_instance::make_route_pair` scratch routes.
  void build_path(std::uint32_t src, std::uint32_t dst, std::size_t path,
                  std::vector<std::uint32_t>& out) const;

  // --- introspection -----------------------------------------------------
  /// Distinct (src, dst, path) structural routes interned so far.
  [[nodiscard]] std::size_t interned_paths() const;
  /// Resident bytes of the shared structure: link records + slot arena +
  /// pair index.  Counted once per sweep, however many envs share it.
  [[nodiscard]] std::size_t resident_bytes() const;

 private:
  explicit fabric_blueprint(fat_tree_config cfg);

  void add_link(link_level level, std::uint32_t index);
  /// Append one link's traversal slots (queue, pipe, ingress?) to `out`.
  void append_link_slots(std::uint32_t link, std::vector<std::uint32_t>& out) const;
  [[nodiscard]] const std::uint32_t* intern_slots(
      const std::vector<std::uint32_t>& seq) const;

  fat_tree_config cfg_;
  unsigned half_k_;
  unsigned hosts_per_tor_;
  std::size_t n_tor_, n_agg_, n_core_, n_hosts_;

  std::vector<link_record> links_;
  std::uint32_t level_base_[6] = {};  ///< first link id per level
  std::uint32_t demux_base_ = 0;     ///< first demux slot id
  std::uint32_t next_slot_ = 0;

  // Structural path interning (lazy, shared): chunked u32 arena + per-pair
  // index.  Mutable behind a mutex — the blueprint stays logically immutable
  // (a path's slot sequence is a pure function of the wiring); the cache
  // just fills in on first use from whichever env asks first.
  struct path_entry {
    std::uint32_t path = 0;
    slot_span fwd, rev;
  };
  // Sparse per-pair index: only interned paths are stored (append-only,
  // linear scan — sets are small: capped samples or one full-set build).
  // An eager vector sized n_paths costs 8KB per inter-pod pair at k=32 —
  // that dwarfed the slot arena itself for capped-multipath workloads.
  struct pair_entry {
    std::vector<path_entry> paths;
  };

  mutable std::mutex paths_mu_;
  mutable std::unordered_map<std::uint64_t, pair_entry> pairs_;
  mutable std::vector<std::unique_ptr<std::uint32_t[]>> blocks_;
  mutable std::size_t block_used_ = 0;
  mutable std::size_t block_cap_ = 0;
  mutable std::size_t slots_total_ = 0;
  mutable std::size_t interned_ = 0;
};

}  // namespace ndpsim
