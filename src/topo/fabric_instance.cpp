#include "topo/fabric_instance.h"

#include <algorithm>

#include "net/path_set.h"
#include "sim/telemetry.h"

namespace ndpsim {

fabric_instance::fabric_instance(sim_env& env,
                                 std::shared_ptr<const fabric_blueprint> bp,
                                 const queue_factory& make_queue)
    : env_(env), bp_(std::move(bp)) {
  NDPSIM_ASSERT_MSG(bp_ != nullptr, "fabric_instance needs a blueprint");
  const auto& links = bp_->links();
  const pfc_config& pfc = bp_->config().pfc;
  sinks_.assign(bp_->n_slots(), nullptr);
  queues_.reserve(links.size());
  by_level_.resize(6);
  for (auto& lvl : by_level_) lvl.reserve(links.size() / 6 + 1);

  // Slot-keyed telemetry registration: when the env carries a plane (armed
  // BEFORE instantiation — the sim_env contract), every queue and pipe gets
  // the counter block of its own blueprint slot.  Demux slots arm lazily in
  // bind_demux_slot as the path table mounts them.  PFC ingress slots stay
  // unarmed: they forward without buffering decisions of their own.
  telemetry_plane* const tp = env_.telemetry.get();
  for (std::uint32_t id = 0; id < links.size(); ++id) {
    const auto& l = links[id];
    auto q = make_queue(l.level, l.index, l.rate, name_ref(*bp_, l.first_slot));
    NDPSIM_ASSERT(q != nullptr);
    pipes_.emplace_back(env_, l.delay, name_ref(*bp_, l.first_slot + 1));
    sinks_[l.first_slot] = q.get();
    sinks_[l.first_slot + 1] = &pipes_.back();
    if (tp != nullptr) {
      q->set_telemetry(tp->arm(l.first_slot, telemetry_kind::queue,
                               static_cast<std::uint8_t>(l.level), l.rate));
      pipes_.back().set_telemetry(
          tp->arm(l.first_slot + 1, telemetry_kind::pipe,
                  static_cast<std::uint8_t>(l.level), l.rate));
    }
    if (pfc.enabled) {
      q->set_depart_hook(&pfc_ingress::credit_on_depart);
    }
    if (l.has_ingress) {
      ingresses_.emplace_back(env_, q.get(), l.delay, pfc.xoff_bytes,
                              pfc.xon_bytes, name_ref(*bp_, l.first_slot + 2));
      sinks_[l.first_slot + 2] = &ingresses_.back();
    }
    by_level_[static_cast<std::size_t>(l.level)].push_back(q.get());
    queues_.push_back(std::move(q));
  }

  // Stamp the flat dispatch lanes up front: pre-open the (class, delta)
  // lanes this fabric will drive hardest — pipe delivery per distinct link
  // delay (the pipe constructors above already opened those) and queue
  // service per distinct (rate, common packet size) — and pre-size their
  // rings so the first traffic burst doesn't pay doubling-growth copies.
  // 9000/64 are the dominant wire sizes (full data MTU, header/control);
  // uncommon sizes open their lanes lazily via the queues' delta caches.
  std::vector<simtime_t> deltas;
  for (const auto& l : links) {
    for (const std::uint32_t size : {9000u, kHeaderBytes}) {
      const simtime_t st = serialization_time(size, l.rate);
      if (std::find(deltas.begin(), deltas.end(), st) == deltas.end()) {
        deltas.push_back(st);
        const std::uint32_t lane =
            env_.events.lane_for(dispatch_class::queue_service, st);
        if (lane != event_list::kNoLane) {
          env_.events.reserve_lane(lane, 512);
        }
      }
    }
    const std::uint32_t pl =
        env_.events.lane_for(dispatch_class::pipe_expiry, l.delay);
    if (pl != event_list::kNoLane) env_.events.reserve_lane(pl, 1024);
  }
}

route_pair fabric_instance::make_route_pair(std::uint32_t src,
                                            std::uint32_t dst,
                                            std::size_t path) {
  auto build = [this](std::uint32_t a, std::uint32_t b, std::size_t p) {
    std::vector<std::uint32_t> seq;
    bp_->build_path(a, b, p, seq);
    auto r = std::make_unique<owned_route>();
    for (const std::uint32_t slot : seq) r->push_back(sinks_[slot]);
    return r;
  };
  return {build(src, dst, path), build(dst, src, path)};
}

void fabric_instance::bind_demux_slot(std::uint32_t host, flow_demux* d) {
  sinks_[bp_->demux_slot(host)] = d;
  // Demuxes mount lazily (first connect touching the host), possibly after
  // the run started; arming a pre-sized slot never moves the counter array,
  // so this is safe mid-simulation.
  if (env_.telemetry != nullptr) {
    d->set_telemetry(
        env_.telemetry->arm(bp_->demux_slot(host), telemetry_kind::demux));
  }
}

queue_stats fabric_instance::aggregate_stats(link_level level) const {
  queue_stats total;
  for (const queue_base* q : by_level_[static_cast<std::size_t>(level)]) {
    const queue_stats& s = q->stats();
    total.arrivals += s.arrivals;
    total.forwarded += s.forwarded;
    total.dropped += s.dropped;
    total.trimmed += s.trimmed;
    total.bounced += s.bounced;
    total.marked += s.marked;
    total.bytes_forwarded += s.bytes_forwarded;
  }
  return total;
}

const std::vector<queue_base*>& fabric_instance::queues_at(
    link_level level) const {
  return by_level_[static_cast<std::size_t>(level)];
}

std::size_t fabric_instance::resident_bytes() const {
  std::size_t bytes = sinks_.capacity() * sizeof(packet_sink*) +
                      queues_.capacity() * sizeof(void*) +
                      pipes_.size() * sizeof(pipe) +
                      ingresses_.size() * sizeof(pfc_ingress);
  for (const auto& lvl : by_level_) bytes += lvl.capacity() * sizeof(void*);
  // Queue objects themselves are factory-built subclasses of unknown size;
  // count the base as a floor.
  bytes += queues_.size() * sizeof(queue_base);
  return bytes;
}

}  // namespace ndpsim
