#include "topo/micro_topo.h"

#include <string>

namespace ndpsim {

// ---------------------------------------------------------------- back_to_back

back_to_back::back_to_back(sim_env& env, linkspeed_bps speed, simtime_t delay,
                           const queue_factory& make_queue)
    : speed_(speed) {
  for (std::size_t h = 0; h < 2; ++h) {
    nic_q_.push_back(make_queue(link_level::host_up, h,
                                speed, "nic" + std::to_string(h)));
    nic_p_.push_back(
        std::make_unique<pipe>(env, delay, "wire" + std::to_string(h)));
  }
}

route_pair back_to_back::make_route_pair(std::uint32_t src, std::uint32_t dst,
                                         std::size_t path) {
  NDPSIM_ASSERT(src < 2 && dst < 2 && src != dst && path == 0);
  auto build = [this](std::uint32_t a) {
    auto r = std::make_unique<owned_route>();
    r->push_back(nic_q_[a].get());
    r->push_back(nic_p_[a].get());
    return r;
  };
  return {build(src), build(dst)};
}

// --------------------------------------------------------------- single_switch

single_switch::single_switch(sim_env& env, std::size_t n_hosts,
                             linkspeed_bps speed, simtime_t delay,
                             const queue_factory& make_queue)
    : speed_(speed) {
  NDPSIM_ASSERT(n_hosts >= 2);
  for (std::size_t h = 0; h < n_hosts; ++h) {
    nic_q_.push_back(
        make_queue(link_level::host_up, h, speed, "nic" + std::to_string(h)));
    nic_p_.push_back(
        std::make_unique<pipe>(env, delay, "uplink" + std::to_string(h)));
    sw_q_.push_back(make_queue(link_level::tor_down, h, speed,
                               "swport" + std::to_string(h)));
    sw_p_.push_back(
        std::make_unique<pipe>(env, delay, "downlink" + std::to_string(h)));
  }
}

route_pair single_switch::make_route_pair(std::uint32_t src, std::uint32_t dst,
                                          std::size_t path) {
  NDPSIM_ASSERT(src < n_hosts() && dst < n_hosts() && src != dst && path == 0);
  auto build = [this](std::uint32_t a, std::uint32_t b) {
    auto r = std::make_unique<owned_route>();
    r->push_back(nic_q_[a].get());
    r->push_back(nic_p_[a].get());
    r->push_back(sw_q_[b].get());
    r->push_back(sw_p_[b].get());
    return r;
  };
  return {build(src, dst), build(dst, src)};
}

// ------------------------------------------------------------------ leaf_spine

leaf_spine::leaf_spine(sim_env& env, std::size_t n_leaf, std::size_t n_spine,
                       std::size_t hosts_per_leaf, linkspeed_bps speed,
                       simtime_t delay, const queue_factory& make_queue)
    : n_leaf_(n_leaf),
      n_spine_(n_spine),
      hosts_per_leaf_(hosts_per_leaf),
      speed_(speed),
      env_(&env) {
  NDPSIM_ASSERT(n_leaf >= 1 && n_spine >= 1 && hosts_per_leaf >= 1);
  for (std::size_t h = 0; h < n_hosts(); ++h) {
    host_up_.push_back(make_link(link_level::host_up, h,
                                 "hostup" + std::to_string(h), speed, delay,
                                 make_queue));
  }
  for (std::size_t l = 0; l < n_leaf_; ++l) {
    for (std::size_t s = 0; s < n_spine_; ++s) {
      leaf_up_.push_back(make_link(
          link_level::tor_up, l * n_spine_ + s,
          "leafup" + std::to_string(l) + "." + std::to_string(s), speed, delay,
          make_queue));
    }
  }
  for (std::size_t s = 0; s < n_spine_; ++s) {
    for (std::size_t l = 0; l < n_leaf_; ++l) {
      spine_down_.push_back(make_link(
          link_level::agg_down, s * n_leaf_ + l,
          "spinedn" + std::to_string(s) + "." + std::to_string(l), speed,
          delay, make_queue));
    }
  }
  for (std::size_t l = 0; l < n_leaf_; ++l) {
    for (std::size_t h = 0; h < hosts_per_leaf_; ++h) {
      leaf_down_.push_back(make_link(
          link_level::tor_down, l * hosts_per_leaf_ + h,
          "leafdn" + std::to_string(l) + "." + std::to_string(h), speed, delay,
          make_queue));
    }
  }
}

leaf_spine::link leaf_spine::make_link(link_level level, std::size_t index,
                                       const std::string& name,
                                       linkspeed_bps speed, simtime_t delay,
                                       const queue_factory& make_queue) {
  link l;
  l.q = make_queue(level, index, speed, name);
  l.p = std::make_unique<pipe>(*env_, delay, name + ".pipe");
  return l;
}

std::size_t leaf_spine::n_paths(std::uint32_t src, std::uint32_t dst) const {
  NDPSIM_ASSERT(src < n_hosts() && dst < n_hosts() && src != dst);
  return leaf_of(src) == leaf_of(dst) ? 1 : n_spine_;
}

route_pair leaf_spine::make_route_pair(std::uint32_t src, std::uint32_t dst,
                                       std::size_t path) {
  NDPSIM_ASSERT(path < n_paths(src, dst));
  auto build = [this](std::uint32_t a, std::uint32_t b, std::size_t spine) {
    auto r = std::make_unique<owned_route>();
    const std::uint32_t la = leaf_of(a);
    const std::uint32_t lb = leaf_of(b);
    const std::size_t local_b = b % hosts_per_leaf_;
    auto add = [&r](const link& l) {
      r->push_back(l.q.get());
      r->push_back(l.p.get());
    };
    add(host_up_[a]);
    if (la != lb) {
      add(leaf_up_[la * n_spine_ + spine]);
      add(spine_down_[spine * n_leaf_ + lb]);
    }
    add(leaf_down_[lb * hosts_per_leaf_ + local_b]);
    return r;
  };
  return {build(src, dst, path), build(dst, src, path)};
}

}  // namespace ndpsim
