// Topology abstraction: anything that can enumerate multipath source routes
// between hosts.
//
// Routes are endpoint-less (they stop after the final pipe); transports append
// their endpoints via `connect`.  Forward/reverse pairs with the same path
// index traverse the same switches in opposite directions, which NDP's
// return-to-sender relies on.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "net/queue.h"
#include "net/route.h"

namespace ndpsim {

/// Where a queue sits in the topology (used for per-level statistics, e.g.
/// counting trims on core uplinks, and for queue-type selection).
enum class link_level : std::uint8_t {
  host_up,    ///< host NIC egress
  tor_up,     ///< ToR -> aggregation
  agg_up,     ///< aggregation -> core
  core_down,  ///< core -> aggregation
  agg_down,   ///< aggregation -> ToR
  tor_down,   ///< ToR -> host
};

[[nodiscard]] constexpr const char* to_string(link_level l) {
  switch (l) {
    case link_level::host_up: return "host_up";
    case link_level::tor_up: return "tor_up";
    case link_level::agg_up: return "agg_up";
    case link_level::core_down: return "core_down";
    case link_level::agg_down: return "agg_down";
    case link_level::tor_down: return "tor_down";
  }
  return "?";
}

/// Builds the egress queue for one directed link.
using queue_factory =
    std::function<std::unique_ptr<queue_base>(link_level level,
                                              std::size_t index,
                                              linkspeed_bps rate,
                                              const std::string& name)>;

/// Route pair: {forward, reverse}, both endpoint-less.
using route_pair = std::pair<std::unique_ptr<route>, std::unique_ptr<route>>;

class topology {
 public:
  virtual ~topology() = default;

  [[nodiscard]] virtual std::size_t n_hosts() const = 0;
  /// Number of distinct paths from `src` to `dst`.
  [[nodiscard]] virtual std::size_t n_paths(std::uint32_t src,
                                            std::uint32_t dst) const = 0;
  /// Build the route pair for one path index in [0, n_paths)).
  [[nodiscard]] virtual route_pair make_route_pair(std::uint32_t src,
                                                   std::uint32_t dst,
                                                   std::size_t path) = 0;
  [[nodiscard]] virtual linkspeed_bps host_link_speed(
      std::uint32_t host) const = 0;

  /// Build all (or up to `max_paths`) route pairs for a host pair.
  void make_routes(std::uint32_t src, std::uint32_t dst,
                   std::vector<std::unique_ptr<route>>& fwd,
                   std::vector<std::unique_ptr<route>>& rev,
                   std::size_t max_paths = 0) {
    std::size_t n = n_paths(src, dst);
    if (max_paths != 0 && max_paths < n) n = max_paths;
    for (std::size_t i = 0; i < n; ++i) {
      auto [f, r] = make_route_pair(src, dst, i);
      fwd.push_back(std::move(f));
      rev.push_back(std::move(r));
    }
  }
};

}  // namespace ndpsim
