// Topology abstraction: anything that can enumerate multipath source routes
// between hosts.
//
// `make_route_pair` builds one endpoint-less route pair (it stops after the
// final pipe) and is the raw structural builder — tests and the path table
// use it.  Flows never call it directly any more: they borrow shared routes
// from the topology-owned `path_table` (see `paths()`), which interns each
// distinct (src, dst, path) route exactly once, appends the per-host
// `flow_demux` terminal, and stores hops in one contiguous arena.
// Forward/reverse pairs with the same path index traverse the same switches
// in opposite directions, which NDP's return-to-sender relies on.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "net/queue.h"
#include "net/route.h"

namespace ndpsim {

class fabric_blueprint;
class flow_demux;
class path_table;

/// Where a queue sits in the topology (used for per-level statistics, e.g.
/// counting trims on core uplinks, and for queue-type selection).
enum class link_level : std::uint8_t {
  host_up,    ///< host NIC egress
  tor_up,     ///< ToR -> aggregation
  agg_up,     ///< aggregation -> core
  core_down,  ///< core -> aggregation
  agg_down,   ///< aggregation -> ToR
  tor_down,   ///< ToR -> host
};

[[nodiscard]] constexpr const char* to_string(link_level l) {
  switch (l) {
    case link_level::host_up: return "host_up";
    case link_level::tor_up: return "tor_up";
    case link_level::agg_up: return "agg_up";
    case link_level::core_down: return "core_down";
    case link_level::agg_down: return "agg_down";
    case link_level::tor_down: return "tor_down";
  }
  return "?";
}

/// Builds the egress queue for one directed link.  `name` is lazy (see
/// sim/name_ref.h): factories that forward it untouched cost no formatting;
/// legacy factories written against `const std::string&` still work — the
/// implicit conversion formats eagerly at the call boundary.
using queue_factory =
    std::function<std::unique_ptr<queue_base>(link_level level,
                                              std::size_t index,
                                              linkspeed_bps rate,
                                              name_ref name)>;

/// Route pair: {forward, reverse}, both endpoint-less and self-owning
/// (scratch output of the builder; the path table copies hops into its arena).
using route_pair =
    std::pair<std::unique_ptr<owned_route>, std::unique_ptr<owned_route>>;

class topology {
 public:
  topology();
  virtual ~topology();
  topology(const topology&) = delete;
  topology& operator=(const topology&) = delete;

  [[nodiscard]] virtual std::size_t n_hosts() const = 0;
  /// Number of distinct paths from `src` to `dst`.
  [[nodiscard]] virtual std::size_t n_paths(std::uint32_t src,
                                            std::uint32_t dst) const = 0;
  /// Build the route pair for one path index in [0, n_paths)).
  [[nodiscard]] virtual route_pair make_route_pair(std::uint32_t src,
                                                   std::uint32_t dst,
                                                   std::size_t path) = 0;
  [[nodiscard]] virtual linkspeed_bps host_link_speed(
      std::uint32_t host) const = 0;

  /// The interned path table: shared routes for every flow on this fabric.
  /// Built lazily; lives (and keeps every handed-out route alive) as long as
  /// the topology.
  [[nodiscard]] path_table& paths();

  // --- structure/state split hooks (see topo/fabric_blueprint.h) ---------
  /// The immutable shared blueprint behind this topology, or nullptr for
  /// hand-built topologies.  When non-null, the path table resolves routes
  /// as blueprint slot sequences over `sink_table()` instead of interning
  /// per-env hop copies via `make_route_pair`.
  [[nodiscard]] virtual const fabric_blueprint* blueprint() const {
    return nullptr;
  }
  /// Per-env sink table indexed by blueprint slot id (null hooks otherwise).
  [[nodiscard]] virtual packet_sink* const* sink_table() const {
    return nullptr;
  }
  /// Called by the path table when it creates a host's demux, so a
  /// blueprint-backed topology can mount it at the host's demux slot.
  virtual void bind_demux_slot(std::uint32_t /*host*/, flow_demux* /*d*/) {}

 private:
  std::unique_ptr<path_table> paths_;
};

}  // namespace ndpsim
