// Topology-owned interned path table (the FatPaths idea: multipath route
// sets are per-pair fabric properties, not per-flow state).
//
// Each distinct (src, dst, path) route is built exactly once — lazily, on
// first use — and shared by every flow on that pair: two flows on the same
// (src, dst) receive pointer-identical `const route*`s.  Every route
// terminates at the destination host's `flow_demux`, where transports
// register their per-flow endpoints at connect time.  Route memory is
// therefore O(pairs-used x paths) for the whole fabric instead of
// O(flows x paths x hops).
//
// Two interning modes, chosen per topology:
//  * blueprint-backed (`topology::blueprint() != nullptr`): the hop
//    sequence lives once, as slot ids, in the shared `fabric_blueprint`'s
//    structural table; this env only creates two small route views over its
//    instance's sink table.  N parallel jobs over one blueprint duplicate
//    none of the hop storage.
//  * legacy (hand-built topologies): hops are copied into this table's
//    chunked arena (a contiguous span per route, no per-route heap vector)
//    via the topology's `make_route_pair` scratch builder.
//
// Forward and reverse of a path are interned together: both live in the same
// arena and neither is freed before the table, which is what makes the raw
// `route::reverse()` pointer safe (see the lifetime contract in net/route.h).
// Reciprocity (`fwd->reverse()->reverse() == fwd`) is asserted at interning
// time.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/path_set.h"
#include "net/sim_env.h"
#include "topo/fabric_blueprint.h"

namespace ndpsim {

class topology;

class path_table {
 public:
  explicit path_table(topology& topo);
  path_table(const path_table&) = delete;
  path_table& operator=(const path_table&) = delete;

  /// All n_paths(src, dst) routes of a pair, interning any not yet built.
  /// The returned view is cached: every caller gets the same arrays.
  [[nodiscard]] path_set all(std::uint32_t src, std::uint32_t dst);

  /// Up to `max_paths` routes of a pair (all if 0 or >= n_paths).  When a
  /// subset is taken it is a seeded random subset drawn via
  /// `env.rand_below` — not the first `max_paths` indices, which would bias
  /// every flow onto the low core/agg switches.  Distinct calls can return
  /// distinct subsets (each draw advances the env's RNG); only the sampled
  /// paths are interned.
  ///
  /// A capped subset's pointer arrays come from a free pool (the returned
  /// view carries a non-zero `pool_token`); hand them back with `release`
  /// when the flow is torn down, after which the view must not be used.
  [[nodiscard]] path_set sample(sim_env& env, std::uint32_t src,
                                std::uint32_t dst, std::size_t max_paths);

  /// Return a sampled subset's pointer arrays to the free pool so a future
  /// `sample` can reuse them.  No-op for unpooled views (`pool_token == 0`:
  /// `all`/`single` results, slices, manual sets).  Double release asserts.
  /// Call only after every transport holding the view has been unbound —
  /// see the borrow rules in net/path_set.h.
  void release(const path_set& ps);

  /// Single-path view (per-flow-ECMP transports: TCP, DCQCN).
  [[nodiscard]] path_set single(std::uint32_t src, std::uint32_t dst,
                                std::size_t path);

  /// The interned route for one path (forward / reverse direction).
  [[nodiscard]] const route* forward(std::uint32_t src, std::uint32_t dst,
                                     std::size_t path);
  [[nodiscard]] const route* reverse(std::uint32_t src, std::uint32_t dst,
                                     std::size_t path);

  /// Per-host terminal demux (endpoint registry).
  [[nodiscard]] flow_demux& demux(std::uint32_t host);

  /// Recycling mode: deliveries for unbound flows at any of this table's
  /// demuxes (stale packets of torn-down flows) are dropped back into `pool`
  /// instead of asserting.  Applies to existing and future demuxes.
  void enable_stale_drop(packet_pool& pool);
  /// Stale packets dropped across all demuxes.
  [[nodiscard]] std::uint64_t stale_drops() const;

  // --- introspection (tests, benches) -----------------------------------
  /// Distinct (src, dst, path) routes interned so far (forward + reverse
  /// count as one path).
  [[nodiscard]] std::size_t interned_paths() const { return interned_; }
  /// Resident bytes of shared route state: hop arena + route objects +
  /// pair/subset pointer arrays.
  [[nodiscard]] std::size_t resident_bytes() const;
  /// Subset pointer-array slots ever created / currently in the free pool.
  /// Their difference is the number of live sampled subsets: flat over a
  /// steady-state churn run when flows release on teardown.
  [[nodiscard]] std::size_t subset_arrays() const { return subsets_.size(); }
  [[nodiscard]] std::size_t free_subset_arrays() const;

 private:
  /// One interned path's route pair.  Lives in the table-wide `slots_`
  /// deque so the two pointers are address-stable: `single()` hands out
  /// 1-element views directly over them.
  struct path_slot {
    const route* fwd = nullptr;
    const route* rev = nullptr;
  };

  struct pair_entry {
    // Sparse interned-path index, sorted by path id: only paths actually
    // built are stored.  Eagerly sizing per-pair pointer vectors to
    // n_paths cost ~33MB at k=32 when capped sampling touches 16 of 256
    // paths per pair (ROADMAP open item 5).  `all()` converts the pair to
    // the dense arrays below (stable once built — every path exists) and
    // clears the sparse index.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> sparse;  // (path, slot)
    std::vector<const route*> dense_fwd, dense_rev;  // full set, `all()` only
    std::uint32_t n_paths = 0;
    std::size_t built = 0;
    [[nodiscard]] bool dense() const { return !dense_fwd.empty(); }
  };

  [[nodiscard]] pair_entry& entry_for(std::uint32_t src, std::uint32_t dst);
  /// The pair's slot for `path`, or UINT32_MAX if not yet interned.
  [[nodiscard]] static std::uint32_t find_slot(const pair_entry& e,
                                               std::uint32_t path);
  void ensure_path(pair_entry& e, std::uint32_t src, std::uint32_t dst,
                   std::size_t path);
  /// Build all not-yet-built paths in `paths` at once: blueprint-backed
  /// topologies intern the whole batch under one blueprint lock (per-path
  /// locking dominated connect cost at k=32 scale).
  void ensure_paths(pair_entry& e, std::uint32_t src, std::uint32_t dst,
                    const std::size_t* paths, std::size_t count);
  [[nodiscard]] route* intern_route(const route& built, flow_demux* terminal);
  [[nodiscard]] packet_sink** alloc_hops(std::size_t n);

  topology& topo_;
  std::unordered_map<std::uint64_t, pair_entry> pairs_;
  std::deque<route> routes_;  // deque: handed-out route*s are pinned
  std::deque<path_slot> slots_;  // deque: single() views point into these

  // Chunked hop arena: bump allocation, one contiguous span per route.
  std::vector<std::unique_ptr<packet_sink*[]>> blocks_;
  std::size_t block_used_ = 0;
  std::size_t block_cap_ = 0;
  std::size_t hops_total_ = 0;

  // Per-sample subset pointer arrays (deque: views stay valid as flows add
  // more subsets).  Slots are pooled: `release` marks a slot free and
  // `sample` refills a free slot of matching size before creating a new one,
  // so steady-state churn holds the slot count at the peak number of
  // concurrently live subsets instead of growing with every flow arrival.
  struct subset_slot {
    std::vector<const route*> fwd, rev;
    bool free = false;
  };
  std::deque<subset_slot> subsets_;
  // Free slots bucketed by array size (exact-size reuse: closed-loop churn
  // resamples with the same max_paths, so buckets stay hot).
  std::unordered_map<std::size_t, std::vector<std::uint32_t>> free_subsets_;

  std::vector<std::unique_ptr<flow_demux>> demux_;  // [host], lazy
  packet_pool* stale_pool_ = nullptr;  ///< forwarded to every demux when set
  std::size_t interned_ = 0;

  // Connect-path scratch (reused across calls; connects are frequent under
  // churn and per-call vectors showed up at k=32 scale).
  std::vector<std::size_t> idx_scratch_;      ///< sample()'s Fisher-Yates
  std::vector<std::size_t> missing_scratch_;  ///< not-yet-built batch
  std::vector<fabric_blueprint::structural_pair_view>
      views_scratch_;  ///< blueprint batch results
};

}  // namespace ndpsim
