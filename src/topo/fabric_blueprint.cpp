#include "topo/fabric_blueprint.h"

#include <algorithm>

namespace ndpsim {

namespace {
[[nodiscard]] std::uint64_t pair_key(std::uint32_t src, std::uint32_t dst) {
  return (static_cast<std::uint64_t>(src) << 32) | dst;
}
constexpr std::size_t kBlockSlots = 8192;
}  // namespace

std::shared_ptr<const fabric_blueprint> fabric_blueprint::fat_tree(
    fat_tree_config cfg) {
  // make_shared needs a public ctor; the private ctor + explicit new keeps
  // construction behind the factory.
  return std::shared_ptr<const fabric_blueprint>(
      new fabric_blueprint(std::move(cfg)));
}

fabric_blueprint::fabric_blueprint(fat_tree_config cfg)
    : cfg_(std::move(cfg)), half_k_(cfg_.k / 2) {
  NDPSIM_ASSERT_MSG(cfg_.k >= 2 && cfg_.k % 2 == 0, "k must be even and >= 2");
  NDPSIM_ASSERT(cfg_.oversubscription >= 1);
  hosts_per_tor_ = cfg_.oversubscription * half_k_;
  n_tor_ = static_cast<std::size_t>(cfg_.k) * half_k_;
  n_agg_ = n_tor_;
  n_core_ = static_cast<std::size_t>(half_k_) * half_k_;
  n_hosts_ = n_tor_ * hosts_per_tor_;

  const std::size_t n_links =
      n_hosts_ * 2 +                       // host_up + tor_down
      n_tor_ * half_k_ * 2 +               // tor_up + agg_down
      static_cast<std::size_t>(cfg_.k) * half_k_ * half_k_ +  // agg_up
      n_core_ * cfg_.k;                    // core_down
  links_.reserve(n_links);

  // Same creation order (and per-level flat indexing) as the former
  // env-bound builder, so `queues_at(level)[index]` keeps its meaning.
  level_base_[static_cast<std::size_t>(link_level::host_up)] =
      static_cast<std::uint32_t>(links_.size());
  for (std::size_t h = 0; h < n_hosts_; ++h) {
    add_link(link_level::host_up, static_cast<std::uint32_t>(h));
  }
  level_base_[static_cast<std::size_t>(link_level::tor_up)] =
      static_cast<std::uint32_t>(links_.size());
  for (std::size_t t = 0; t < n_tor_; ++t) {
    for (unsigned j = 0; j < half_k_; ++j) {
      add_link(link_level::tor_up, static_cast<std::uint32_t>(t * half_k_ + j));
    }
  }
  level_base_[static_cast<std::size_t>(link_level::agg_up)] =
      static_cast<std::uint32_t>(links_.size());
  for (unsigned p = 0; p < cfg_.k; ++p) {
    for (unsigned j = 0; j < half_k_; ++j) {
      for (unsigned m = 0; m < half_k_; ++m) {
        add_link(link_level::agg_up,
                 static_cast<std::uint32_t>(agg_up_index(p, j, m)));
      }
    }
  }
  level_base_[static_cast<std::size_t>(link_level::core_down)] =
      static_cast<std::uint32_t>(links_.size());
  for (std::size_t c = 0; c < n_core_; ++c) {
    for (unsigned p = 0; p < cfg_.k; ++p) {
      add_link(link_level::core_down,
               static_cast<std::uint32_t>(
                   core_down_index(static_cast<unsigned>(c), p)));
    }
  }
  level_base_[static_cast<std::size_t>(link_level::agg_down)] =
      static_cast<std::uint32_t>(links_.size());
  for (unsigned p = 0; p < cfg_.k; ++p) {
    for (unsigned j = 0; j < half_k_; ++j) {
      for (unsigned i = 0; i < half_k_; ++i) {
        add_link(link_level::agg_down,
                 static_cast<std::uint32_t>(
                     (static_cast<std::size_t>(p) * half_k_ + j) * half_k_ + i));
      }
    }
  }
  level_base_[static_cast<std::size_t>(link_level::tor_down)] =
      static_cast<std::uint32_t>(links_.size());
  for (std::size_t t = 0; t < n_tor_; ++t) {
    for (unsigned l = 0; l < hosts_per_tor_; ++l) {
      add_link(link_level::tor_down,
               static_cast<std::uint32_t>(t * hosts_per_tor_ + l));
    }
  }
  demux_base_ = next_slot_;
}

void fabric_blueprint::add_link(link_level level, std::uint32_t index) {
  link_record l;
  l.level = level;
  l.index = index;
  l.rate = cfg_.link_speed;
  if (cfg_.speed_override) {
    l.rate = cfg_.speed_override(level, index, l.rate);
  }
  l.delay = cfg_.link_delay;
  // PFC ingress accounting sits at the downstream end of every link except
  // ToR->host (endpoints consume at line rate), exactly as before.
  l.has_ingress = cfg_.pfc.enabled && level != link_level::tor_down;
  l.first_slot = next_slot_;
  next_slot_ += l.has_ingress ? 3 : 2;
  links_.push_back(l);
}

std::uint32_t fabric_blueprint::link_id(link_level level,
                                        std::size_t index) const {
  const std::uint32_t id =
      level_base_[static_cast<std::size_t>(level)] +
      static_cast<std::uint32_t>(index);
  NDPSIM_ASSERT_MSG(id < links_.size() && links_[id].level == level &&
                        links_[id].index == index,
                    "link index out of range");
  return id;
}

std::size_t fabric_blueprint::n_paths(std::uint32_t src,
                                      std::uint32_t dst) const {
  NDPSIM_ASSERT(src < n_hosts_ && dst < n_hosts_ && src != dst);
  if (tor_of(src) == tor_of(dst)) return 1;
  if (pod_of(src) == pod_of(dst)) return half_k_;
  return n_core_;
}

std::string fabric_blueprint::format_name(std::uint32_t slot) const {
  NDPSIM_ASSERT_MSG(slot < n_slots(), "slot out of range");
  if (slot >= demux_base_) {
    return "demux" + std::to_string(slot - demux_base_);
  }
  // Binary search the link owning this slot (links are slot-ordered).
  const auto it = std::upper_bound(
      links_.begin(), links_.end(), slot,
      [](std::uint32_t s, const link_record& l) { return s < l.first_slot; });
  NDPSIM_ASSERT(it != links_.begin());
  const link_record& l = *(it - 1);
  const std::uint32_t idx = l.index;
  std::string base;
  switch (l.level) {
    case link_level::host_up:
      base = "hostup" + std::to_string(idx);
      break;
    case link_level::tor_up:
      base = "torup" + std::to_string(idx / half_k_) + "." +
             std::to_string(idx % half_k_);
      break;
    case link_level::agg_up:
      base = "aggup" + std::to_string(idx / (half_k_ * half_k_)) + "." +
             std::to_string((idx / half_k_) % half_k_) + "." +
             std::to_string(idx % half_k_);
      break;
    case link_level::core_down:
      base = "coredn" + std::to_string(idx / cfg_.k) + "." +
             std::to_string(idx % cfg_.k);
      break;
    case link_level::agg_down:
      base = "aggdn" + std::to_string(idx / (half_k_ * half_k_)) + "." +
             std::to_string((idx / half_k_) % half_k_) + "." +
             std::to_string(idx % half_k_);
      break;
    case link_level::tor_down:
      base = "tordn" + std::to_string(idx / hosts_per_tor_) + "." +
             std::to_string(idx % hosts_per_tor_);
      break;
  }
  switch (slot - l.first_slot) {
    case 0: return base;
    case 1: return base + ".pipe";
    default: return base + ".pfc";
  }
}

void fabric_blueprint::append_link_slots(
    std::uint32_t link, std::vector<std::uint32_t>& out) const {
  const link_record& l = links_[link];
  out.push_back(l.first_slot);
  out.push_back(l.first_slot + 1);
  if (l.has_ingress) out.push_back(l.first_slot + 2);
}

void fabric_blueprint::build_path(std::uint32_t src, std::uint32_t dst,
                                  std::size_t path,
                                  std::vector<std::uint32_t>& out) const {
  NDPSIM_ASSERT(path < n_paths(src, dst));
  out.clear();
  const std::uint32_t ts = tor_of(src);
  const std::uint32_t td = tor_of(dst);
  const unsigned ld = dst % hosts_per_tor_;
  append_link_slots(link_id(link_level::host_up, src), out);
  if (ts == td) {
    append_link_slots(
        link_id(link_level::tor_down,
                static_cast<std::size_t>(td) * hosts_per_tor_ + ld),
        out);
    return;
  }
  const unsigned ps = pod_of(src);
  const unsigned pd = pod_of(dst);
  const unsigned id = td % half_k_;
  if (ps == pd) {
    const unsigned j = static_cast<unsigned>(path);
    append_link_slots(
        link_id(link_level::tor_up, static_cast<std::size_t>(ts) * half_k_ + j),
        out);
    append_link_slots(
        link_id(link_level::agg_down,
                (static_cast<std::size_t>(ps) * half_k_ + j) * half_k_ + id),
        out);
    append_link_slots(
        link_id(link_level::tor_down,
                static_cast<std::size_t>(td) * hosts_per_tor_ + ld),
        out);
    return;
  }
  // Inter-pod: the path index selects the core switch; the core determines
  // the aggregation switch (j = core / half_k) in both pods.
  const unsigned core = static_cast<unsigned>(path);
  const unsigned j = core / half_k_;
  const unsigned m = core % half_k_;
  append_link_slots(
      link_id(link_level::tor_up, static_cast<std::size_t>(ts) * half_k_ + j),
      out);
  append_link_slots(link_id(link_level::agg_up, agg_up_index(ps, j, m)), out);
  append_link_slots(link_id(link_level::core_down, core_down_index(core, pd)),
                    out);
  append_link_slots(
      link_id(link_level::agg_down,
              (static_cast<std::size_t>(pd) * half_k_ + j) * half_k_ + id),
      out);
  append_link_slots(
      link_id(link_level::tor_down,
              static_cast<std::size_t>(td) * hosts_per_tor_ + ld),
      out);
}

const std::uint32_t* fabric_blueprint::intern_slots(
    const std::vector<std::uint32_t>& seq) const {
  if (block_used_ + seq.size() > block_cap_) {
    block_cap_ = std::max(kBlockSlots, seq.size());
    block_used_ = 0;
    blocks_.push_back(std::make_unique<std::uint32_t[]>(block_cap_));
  }
  std::uint32_t* span = blocks_.back().get() + block_used_;
  std::copy(seq.begin(), seq.end(), span);
  block_used_ += seq.size();
  slots_total_ += seq.size();
  return span;
}

void fabric_blueprint::structural_paths(std::uint32_t src, std::uint32_t dst,
                                        const std::size_t* paths,
                                        std::size_t count,
                                        structural_pair_view* out) const {
  std::lock_guard<std::mutex> lock(paths_mu_);
  pair_entry& pe = pairs_[pair_key(src, dst)];
  const std::size_t limit = n_paths(src, dst);
  std::vector<std::uint32_t> seq;  // reused across the batch
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t path = paths[i];
    NDPSIM_ASSERT_MSG(path < limit, "path index out of range");
    const path_entry* found = nullptr;
    for (const path_entry& e : pe.paths) {
      if (e.path == path) {
        found = &e;
        break;
      }
    }
    if (found == nullptr) {
      path_entry e;
      e.path = static_cast<std::uint32_t>(path);
      build_path(src, dst, path, seq);
      seq.push_back(demux_slot(dst));
      e.fwd =
          slot_span{intern_slots(seq), static_cast<std::uint32_t>(seq.size())};
      build_path(dst, src, path, seq);
      seq.push_back(demux_slot(src));
      e.rev =
          slot_span{intern_slots(seq), static_cast<std::uint32_t>(seq.size())};
      ++interned_;
      found = &pe.paths.emplace_back(e);
    }
    out[i] = structural_pair_view{found->fwd, found->rev};
  }
}

fabric_blueprint::structural_pair_view fabric_blueprint::structural_pair(
    std::uint32_t src, std::uint32_t dst, std::size_t path) const {
  structural_pair_view v;
  structural_paths(src, dst, &path, 1, &v);
  return v;
}

std::size_t fabric_blueprint::interned_paths() const {
  std::lock_guard<std::mutex> lock(paths_mu_);
  return interned_;
}

std::size_t fabric_blueprint::resident_bytes() const {
  std::lock_guard<std::mutex> lock(paths_mu_);
  std::size_t bytes = links_.capacity() * sizeof(link_record) +
                      slots_total_ * sizeof(std::uint32_t);
  bytes += pairs_.size() * (sizeof(std::uint64_t) + sizeof(pair_entry));
  for (const auto& [key, e] : pairs_) {
    (void)key;
    bytes += e.paths.capacity() * sizeof(path_entry);
  }
  return bytes;
}

}  // namespace ndpsim
