// Small topologies: back-to-back host pair, single switch (star), and
// two-tier leaf-spine (the paper's 8-server NetFPGA testbed, Fig 9).
#pragma once

#include <memory>
#include <vector>

#include "net/pipe.h"
#include "net/sim_env.h"
#include "topo/topology.h"

namespace ndpsim {

/// Two hosts joined by one bidirectional link; the only queue is the sending
/// host's NIC.  Used for RPC latency and initial-window experiments.
class back_to_back final : public topology {
 public:
  back_to_back(sim_env& env, linkspeed_bps speed, simtime_t delay,
               const queue_factory& make_queue);

  [[nodiscard]] std::size_t n_hosts() const override { return 2; }
  [[nodiscard]] std::size_t n_paths(std::uint32_t,
                                    std::uint32_t) const override {
    return 1;
  }
  [[nodiscard]] route_pair make_route_pair(std::uint32_t src,
                                           std::uint32_t dst,
                                           std::size_t path) override;
  [[nodiscard]] linkspeed_bps host_link_speed(std::uint32_t) const override {
    return speed_;
  }
  [[nodiscard]] queue_base& nic(std::uint32_t host) {
    return *nic_q_[host];
  }

 private:
  linkspeed_bps speed_;
  std::vector<std::unique_ptr<queue_base>> nic_q_;
  std::vector<std::unique_ptr<pipe>> nic_p_;
};

/// H hosts hanging off one switch. Exercises a single contended output port:
/// the CP-vs-NDP collapse experiment (Fig 2) and the sender-limited fairness
/// scenario (Fig 21).
class single_switch final : public topology {
 public:
  single_switch(sim_env& env, std::size_t n_hosts, linkspeed_bps speed,
                simtime_t delay, const queue_factory& make_queue);

  [[nodiscard]] std::size_t n_hosts() const override { return nic_q_.size(); }
  [[nodiscard]] std::size_t n_paths(std::uint32_t,
                                    std::uint32_t) const override {
    return 1;
  }
  [[nodiscard]] route_pair make_route_pair(std::uint32_t src,
                                           std::uint32_t dst,
                                           std::size_t path) override;
  [[nodiscard]] linkspeed_bps host_link_speed(std::uint32_t) const override {
    return speed_;
  }
  /// The switch egress port towards `host` (where contention happens).
  [[nodiscard]] queue_base& switch_port(std::uint32_t host) {
    return *sw_q_[host];
  }

 private:
  linkspeed_bps speed_;
  std::vector<std::unique_ptr<queue_base>> nic_q_;
  std::vector<std::unique_ptr<pipe>> nic_p_;
  std::vector<std::unique_ptr<queue_base>> sw_q_;
  std::vector<std::unique_ptr<pipe>> sw_p_;
};

/// Two-tier leaf-spine: `n_leaf` ToR switches with `hosts_per_leaf` hosts
/// each, every ToR connected to every one of `n_spine` spines. The paper's
/// testbed is leaf_spine(4 leaves, 2 spines, 2 hosts/leaf) built from 4-port
/// switches.
class leaf_spine final : public topology {
 public:
  leaf_spine(sim_env& env, std::size_t n_leaf, std::size_t n_spine,
             std::size_t hosts_per_leaf, linkspeed_bps speed, simtime_t delay,
             const queue_factory& make_queue);

  [[nodiscard]] std::size_t n_hosts() const override {
    return n_leaf_ * hosts_per_leaf_;
  }
  [[nodiscard]] std::size_t n_paths(std::uint32_t src,
                                    std::uint32_t dst) const override;
  [[nodiscard]] route_pair make_route_pair(std::uint32_t src,
                                           std::uint32_t dst,
                                           std::size_t path) override;
  [[nodiscard]] linkspeed_bps host_link_speed(std::uint32_t) const override {
    return speed_;
  }
  [[nodiscard]] std::uint32_t leaf_of(std::uint32_t host) const {
    return host / static_cast<std::uint32_t>(hosts_per_leaf_);
  }

 private:
  struct link {
    std::unique_ptr<queue_base> q;
    std::unique_ptr<pipe> p;
  };
  link make_link(link_level level, std::size_t index, const std::string& name,
                 linkspeed_bps speed, simtime_t delay,
                 const queue_factory& make_queue);

  std::size_t n_leaf_, n_spine_, hosts_per_leaf_;
  linkspeed_bps speed_;
  std::vector<link> host_up_;    // [host]
  std::vector<link> leaf_up_;    // [leaf][spine]
  std::vector<link> spine_down_; // [spine][leaf]
  std::vector<link> leaf_down_;  // [leaf][local host]
  sim_env* env_ = nullptr;
};

}  // namespace ndpsim
