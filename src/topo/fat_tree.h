// k-ary three-tier FatTree (Al-Fares et al.), the paper's evaluation fabric.
//
// k pods; per pod k/2 ToR and k/2 aggregation switches; (k/2)^2 core
// switches.  Each ToR serves `oversubscription * k/2` hosts (oversubscription
// 1 = fully provisioned; 4 = the paper's Fig 23 fabric).  k=8/12/32 give the
// paper's 128/432/8192-host networks.
//
// Path structure:
//   inter-pod pairs:  (k/2)^2 paths, one per core switch;
//   intra-pod pairs:  k/2 paths, one per aggregation switch;
//   same-ToR pairs:   1 path.
//
// Link-speed overrides support the failure experiments (Fig 22: one
// core<->agg link negotiated down to 1Gb/s). Optional PFC (lossless mode)
// inserts per-link ingress buffer accounting for DCQCN.
#pragma once

#include <memory>
#include <vector>

#include "net/lossless.h"
#include "net/pipe.h"
#include "net/sim_env.h"
#include "topo/topology.h"

namespace ndpsim {

struct pfc_config {
  bool enabled = false;
  std::uint64_t xoff_bytes = 25 * 9000;  ///< per-ingress pause threshold
  std::uint64_t xon_bytes = 23 * 9000;
};

struct fat_tree_config {
  unsigned k = 8;  ///< pods; must be even
  unsigned oversubscription = 1;
  linkspeed_bps link_speed = gbps(10);
  simtime_t link_delay = from_us(1);
  pfc_config pfc = {};
  /// Optional per-link speed override (failure injection). Called with the
  /// directed link's level/index and the default speed; returns the speed to
  /// use. Leave empty for uniform fabric.
  std::function<linkspeed_bps(link_level, std::size_t, linkspeed_bps)>
      speed_override = {};
};

class fat_tree final : public topology {
 public:
  fat_tree(sim_env& env, fat_tree_config cfg, const queue_factory& make_queue);

  [[nodiscard]] std::size_t n_hosts() const override { return n_hosts_; }
  [[nodiscard]] std::size_t n_paths(std::uint32_t src,
                                    std::uint32_t dst) const override;
  [[nodiscard]] route_pair make_route_pair(std::uint32_t src,
                                           std::uint32_t dst,
                                           std::size_t path) override;
  [[nodiscard]] linkspeed_bps host_link_speed(std::uint32_t) const override {
    return cfg_.link_speed;
  }

  [[nodiscard]] const fat_tree_config& config() const { return cfg_; }
  [[nodiscard]] std::size_t n_tors() const { return n_tor_; }
  [[nodiscard]] std::size_t n_aggs() const { return n_agg_; }
  [[nodiscard]] std::size_t n_cores() const { return n_core_; }
  [[nodiscard]] unsigned hosts_per_tor() const { return hosts_per_tor_; }
  [[nodiscard]] std::uint32_t tor_of(std::uint32_t host) const {
    return host / hosts_per_tor_;
  }
  [[nodiscard]] std::uint32_t pod_of(std::uint32_t host) const {
    return tor_of(host) / half_k_;
  }

  /// Summed queue stats over all queues at one level (e.g. trims on uplinks).
  [[nodiscard]] queue_stats aggregate_stats(link_level level) const;
  /// All queues at a level (test/bench introspection).
  [[nodiscard]] const std::vector<queue_base*>& queues_at(
      link_level level) const;

  // Flat-index helpers for speed overrides (directed links).
  [[nodiscard]] std::size_t agg_up_index(unsigned pod, unsigned agg,
                                         unsigned port) const {
    return (static_cast<std::size_t>(pod) * half_k_ + agg) * half_k_ + port;
  }
  [[nodiscard]] std::size_t core_down_index(unsigned core, unsigned pod) const {
    return static_cast<std::size_t>(core) * cfg_.k + pod;
  }

 private:
  struct link {
    std::unique_ptr<queue_base> q;
    std::unique_ptr<pipe> p;
    std::unique_ptr<pfc_ingress> ingress;  ///< at the downstream end (PFC)
  };

  link make_link(link_level level, std::size_t index, const std::string& name,
                 const queue_factory& make_queue, bool ingress_at_far_end);
  void append_link(owned_route& r, const link& l) const;

  sim_env& env_;
  fat_tree_config cfg_;
  unsigned half_k_;
  unsigned hosts_per_tor_;
  std::size_t n_tor_, n_agg_, n_core_, n_hosts_;

  // Directed links, flat-indexed (see *_index helpers and .cpp layout notes).
  std::vector<link> host_up_;    // [host]
  std::vector<link> tor_up_;     // [tor][agg_local] -> tor*half_k + j
  std::vector<link> agg_up_;     // [pod][agg][port] -> agg_up_index
  std::vector<link> core_down_;  // [core][pod] -> core_down_index
  std::vector<link> agg_down_;   // [pod][agg][tor_local]
  std::vector<link> tor_down_;   // [tor][host_local]

  std::vector<std::vector<queue_base*>> by_level_;
};

}  // namespace ndpsim
