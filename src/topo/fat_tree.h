// k-ary three-tier FatTree (Al-Fares et al.), the paper's evaluation fabric.
//
// k pods; per pod k/2 ToR and k/2 aggregation switches; (k/2)^2 core
// switches.  Each ToR serves `oversubscription * k/2` hosts (oversubscription
// 1 = fully provisioned; 4 = the paper's Fig 23 fabric).  k=8/12/32 give the
// paper's 128/432/8192-host networks.
//
// Path structure:
//   inter-pod pairs:  (k/2)^2 paths, one per core switch;
//   intra-pod pairs:  k/2 paths, one per aggregation switch;
//   same-ToR pairs:   1 path.
//
// Link-speed overrides support the failure experiments (Fig 22: one
// core<->agg link negotiated down to 1Gb/s). Optional PFC (lossless mode)
// inserts per-link ingress buffer accounting for DCQCN.
//
// Structure/state split: the wiring itself lives in an immutable
// `fabric_blueprint` (topo/fabric_blueprint.h) and this class is a
// `fabric_instance` of it plus FatTree-geometry accessors.  The one-argument
// constructor builds a private blueprint (the classic single-run shape); the
// shared_ptr constructor stamps an instance out of a blueprint shared with
// other simulations (e.g. one per `parallel_runner` job).
#pragma once

#include <memory>

#include "topo/fabric_instance.h"

namespace ndpsim {

class fat_tree final : public fabric_instance {
 public:
  fat_tree(sim_env& env, fat_tree_config cfg, const queue_factory& make_queue)
      : fabric_instance(env, fabric_blueprint::fat_tree(std::move(cfg)),
                        make_queue) {}
  /// Instantiate over a shared (possibly concurrently used) blueprint.
  fat_tree(sim_env& env, std::shared_ptr<const fabric_blueprint> bp,
           const queue_factory& make_queue)
      : fabric_instance(env, std::move(bp), make_queue) {}

  [[nodiscard]] const fat_tree_config& config() const {
    return blueprint()->config();
  }
  [[nodiscard]] std::size_t n_tors() const { return blueprint()->n_tors(); }
  [[nodiscard]] std::size_t n_aggs() const { return blueprint()->n_aggs(); }
  [[nodiscard]] std::size_t n_cores() const { return blueprint()->n_cores(); }
  [[nodiscard]] unsigned hosts_per_tor() const {
    return blueprint()->hosts_per_tor();
  }
  [[nodiscard]] std::uint32_t tor_of(std::uint32_t host) const {
    return blueprint()->tor_of(host);
  }
  [[nodiscard]] std::uint32_t pod_of(std::uint32_t host) const {
    return blueprint()->pod_of(host);
  }

  // Flat-index helpers for speed overrides (directed links).
  [[nodiscard]] std::size_t agg_up_index(unsigned pod, unsigned agg,
                                         unsigned port) const {
    return blueprint()->agg_up_index(pod, agg, port);
  }
  [[nodiscard]] std::size_t core_down_index(unsigned core, unsigned pod) const {
    return blueprint()->core_down_index(core, pod);
  }
};

}  // namespace ndpsim
