#include "topo/path_table.h"

#include <algorithm>

#include "topo/fabric_blueprint.h"
#include "topo/topology.h"

namespace ndpsim {

// topology's out-of-line members live here so topology.h only needs a
// forward declaration of path_table.
topology::topology() = default;
topology::~topology() = default;

path_table& topology::paths() {
  if (paths_ == nullptr) paths_ = std::make_unique<path_table>(*this);
  return *paths_;
}

namespace {
[[nodiscard]] std::uint64_t pair_key(std::uint32_t src, std::uint32_t dst) {
  return (static_cast<std::uint64_t>(src) << 32) | dst;
}
constexpr std::size_t kBlockHops = 4096;
}  // namespace

path_table::path_table(topology& topo) : topo_(topo) {
  demux_.resize(topo_.n_hosts());
}

flow_demux& path_table::demux(std::uint32_t host) {
  NDPSIM_ASSERT_MSG(host < demux_.size(), "host out of range");
  if (demux_[host] == nullptr) {
    demux_[host] = std::make_unique<flow_demux>();
    demux_[host]->set_stale_pool(stale_pool_);
    // Blueprint-backed topologies mount the demux at the host's sink slot so
    // structural routes (which end at that slot) can resolve it.
    topo_.bind_demux_slot(host, demux_[host].get());
  }
  return *demux_[host];
}

void path_table::enable_stale_drop(packet_pool& pool) {
  stale_pool_ = &pool;
  for (const auto& d : demux_) {
    if (d != nullptr) d->set_stale_pool(stale_pool_);
  }
}

std::uint64_t path_table::stale_drops() const {
  std::uint64_t n = 0;
  for (const auto& d : demux_) {
    if (d != nullptr) n += d->stale_drops();
  }
  return n;
}

packet_sink** path_table::alloc_hops(std::size_t n) {
  if (block_used_ + n > block_cap_) {
    block_cap_ = std::max(kBlockHops, n);
    block_used_ = 0;
    blocks_.push_back(std::make_unique<packet_sink*[]>(block_cap_));
  }
  packet_sink** span = blocks_.back().get() + block_used_;
  block_used_ += n;
  hops_total_ += n;
  return span;
}

route* path_table::intern_route(const route& built, flow_demux* terminal) {
  const std::size_t n = built.size() + 1;  // + demux terminal
  packet_sink** span = alloc_hops(n);
  for (std::size_t i = 0; i < built.size(); ++i) span[i] = &built.at(i);
  span[n - 1] = terminal;
  routes_.emplace_back(span, static_cast<std::uint32_t>(n));
  return &routes_.back();
}

path_table::pair_entry& path_table::entry_for(std::uint32_t src,
                                              std::uint32_t dst) {
  auto [it, fresh] = pairs_.try_emplace(pair_key(src, dst));
  if (fresh) {
    const std::size_t n = topo_.n_paths(src, dst);
    NDPSIM_ASSERT_MSG(n > 0, "pair has no paths");
    it->second.n_paths = static_cast<std::uint32_t>(n);
  }
  return it->second;
}

std::uint32_t path_table::find_slot(const pair_entry& e, std::uint32_t path) {
  const auto it = std::lower_bound(
      e.sparse.begin(), e.sparse.end(), path,
      [](const std::pair<std::uint32_t, std::uint32_t>& a, std::uint32_t p) {
        return a.first < p;
      });
  if (it == e.sparse.end() || it->first != path) return UINT32_MAX;
  return it->second;
}

void path_table::ensure_path(pair_entry& e, std::uint32_t src,
                             std::uint32_t dst, std::size_t path) {
  ensure_paths(e, src, dst, &path, 1);
}

void path_table::ensure_paths(pair_entry& e, std::uint32_t src,
                              std::uint32_t dst, const std::size_t* paths,
                              std::size_t count) {
  missing_scratch_.clear();
  for (std::size_t i = 0; i < count; ++i) {
    NDPSIM_ASSERT_MSG(paths[i] < e.n_paths, "path index out of range");
    if (e.dense()) continue;  // dense pairs have every path built
    if (find_slot(e, static_cast<std::uint32_t>(paths[i])) == UINT32_MAX) {
      missing_scratch_.push_back(paths[i]);
    }
  }
  if (missing_scratch_.empty()) return;

  const auto record = [this, &e](std::uint32_t path, route* fi, route* ri) {
    slots_.push_back(path_slot{fi, ri});
    const std::uint32_t si = static_cast<std::uint32_t>(slots_.size() - 1);
    const auto at = std::lower_bound(
        e.sparse.begin(), e.sparse.end(), path,
        [](const std::pair<std::uint32_t, std::uint32_t>& a, std::uint32_t p) {
          return a.first < p;
        });
    e.sparse.insert(at, {path, si});
    ++e.built;
    ++interned_;
  };

  if (const fabric_blueprint* bp = topo_.blueprint(); bp != nullptr) {
    // Structure/state split: the slot sequences are interned once in the
    // shared blueprint (one lock for the whole batch; thread-safe across
    // parallel jobs sharing it); this env only creates two 32-byte route
    // views per path over its own sink table — no hop copying, no per-env
    // arena.  The demuxes must exist first so the terminal slots resolve.
    (void)demux(dst);
    (void)demux(src);
    views_scratch_.resize(missing_scratch_.size());
    bp->structural_paths(src, dst, missing_scratch_.data(),
                         missing_scratch_.size(), views_scratch_.data());
    packet_sink* const* table = topo_.sink_table();
    NDPSIM_ASSERT(table != nullptr);
    for (std::size_t i = 0; i < missing_scratch_.size(); ++i) {
      const auto& pv = views_scratch_[i];
      routes_.emplace_back(table, pv.fwd.slots, pv.fwd.n);
      route* fi = &routes_.back();
      routes_.emplace_back(table, pv.rev.slots, pv.rev.n);
      route* ri = &routes_.back();
      fi->set_reverse(ri);
      ri->set_reverse(fi);
      record(static_cast<std::uint32_t>(missing_scratch_[i]), fi, ri);
    }
    return;
  }

  for (const std::size_t path : missing_scratch_) {
    auto [f, r] = topo_.make_route_pair(src, dst, path);
    NDPSIM_ASSERT_MSG(
        f != nullptr && r != nullptr && !f->empty() && !r->empty(),
        "topology built an empty route");
    route* fi = intern_route(*f, &demux(dst));
    route* ri = intern_route(*r, &demux(src));
    fi->set_reverse(ri);
    ri->set_reverse(fi);
    // The reverse-pointer lifetime contract (net/route.h): both directions
    // are co-interned and reciprocal, so neither can dangle while the table
    // lives.
    NDPSIM_ASSERT(fi->reverse()->reverse() == fi);
    NDPSIM_ASSERT(ri->reverse()->reverse() == ri);
    record(static_cast<std::uint32_t>(path), fi, ri);
  }
}

path_set path_table::all(std::uint32_t src, std::uint32_t dst) {
  pair_entry& e = entry_for(src, dst);
  if (!e.dense()) {
    // Full-set request: build everything, convert the pair to dense arrays
    // (stable from here on — every path exists) and drop the sparse index.
    idx_scratch_.resize(e.n_paths);
    for (std::size_t p = 0; p < e.n_paths; ++p) idx_scratch_[p] = p;
    ensure_paths(e, src, dst, idx_scratch_.data(), idx_scratch_.size());
    e.dense_fwd.resize(e.n_paths);
    e.dense_rev.resize(e.n_paths);
    for (const auto& [path, si] : e.sparse) {
      e.dense_fwd[path] = slots_[si].fwd;
      e.dense_rev[path] = slots_[si].rev;
    }
    e.sparse.clear();
    e.sparse.shrink_to_fit();
  }
  return path_set{e.dense_fwd.data(), e.dense_rev.data(), e.n_paths,
                  &demux(src), &demux(dst)};
}

path_set path_table::sample(sim_env& env, std::uint32_t src, std::uint32_t dst,
                            std::size_t max_paths) {
  pair_entry& e = entry_for(src, dst);
  const std::size_t n = e.n_paths;
  if (max_paths == 0 || max_paths >= n) return all(src, dst);

  // Seeded random subset without replacement (partial Fisher-Yates): taking
  // the first `max_paths` indices instead would always prefer the low
  // core/agg switches and pile every capped flow onto them.
  std::vector<std::size_t>& idx = idx_scratch_;
  idx.resize(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < max_paths; ++i) {
    const std::size_t j = i + env.rand_below(n - i);
    std::swap(idx[i], idx[j]);
  }
  ensure_paths(e, src, dst, idx.data(), max_paths);

  // Take a free slot of this exact size if one exists (returned by a
  // recycled flow); the arrays are overwritten in place, so the same memory
  // serves one live flow after another without growing the deque.
  std::uint32_t slot_idx;
  auto pooled = free_subsets_.find(max_paths);
  if (pooled != free_subsets_.end() && !pooled->second.empty()) {
    slot_idx = pooled->second.back();
    pooled->second.pop_back();
    subsets_[slot_idx].free = false;
    subsets_[slot_idx].fwd.clear();
    subsets_[slot_idx].rev.clear();
  } else {
    slot_idx = static_cast<std::uint32_t>(subsets_.size());
    subsets_.emplace_back();
    subsets_[slot_idx].fwd.reserve(max_paths);
    subsets_[slot_idx].rev.reserve(max_paths);
  }
  subset_slot& s = subsets_[slot_idx];
  for (std::size_t i = 0; i < max_paths; ++i) {
    const std::uint32_t p = static_cast<std::uint32_t>(idx[i]);
    if (e.dense()) {
      s.fwd.push_back(e.dense_fwd[p]);
      s.rev.push_back(e.dense_rev[p]);
    } else {
      const std::uint32_t si = find_slot(e, p);
      NDPSIM_ASSERT(si != UINT32_MAX);
      s.fwd.push_back(slots_[si].fwd);
      s.rev.push_back(slots_[si].rev);
    }
  }
  path_set ps{s.fwd.data(), s.rev.data(),
              static_cast<std::uint32_t>(max_paths), &demux(src), &demux(dst)};
  ps.pool_token = slot_idx + 1;  // 0 stays "not pooled"
  return ps;
}

void path_table::release(const path_set& ps) {
  if (ps.pool_token == 0) return;  // shared or manual view: nothing to pool
  const std::uint32_t slot_idx = ps.pool_token - 1;
  NDPSIM_ASSERT_MSG(slot_idx < subsets_.size(), "bad subset pool token");
  subset_slot& s = subsets_[slot_idx];
  NDPSIM_ASSERT_MSG(!s.free, "subset released twice");
  NDPSIM_ASSERT_MSG(s.fwd.data() == ps.fwd && s.rev.data() == ps.rev,
                    "pool token does not match the released view");
  s.free = true;
  free_subsets_[s.fwd.size()].push_back(slot_idx);
}

std::size_t path_table::free_subset_arrays() const {
  std::size_t n = 0;
  for (const auto& [size, idxs] : free_subsets_) {
    (void)size;
    n += idxs.size();
  }
  return n;
}

path_set path_table::single(std::uint32_t src, std::uint32_t dst,
                            std::size_t path) {
  pair_entry& e = entry_for(src, dst);
  ensure_path(e, src, dst, path);
  if (e.dense()) {
    return path_set{e.dense_fwd.data() + path, e.dense_rev.data() + path, 1,
                    &demux(src), &demux(dst)};
  }
  // The path_slot's two pointers are a valid 1-element view each (the slot
  // deque pins them for the table's lifetime).
  const std::uint32_t si = find_slot(e, static_cast<std::uint32_t>(path));
  NDPSIM_ASSERT(si != UINT32_MAX);
  path_slot& s = slots_[si];
  return path_set{&s.fwd, &s.rev, 1, &demux(src), &demux(dst)};
}

const route* path_table::forward(std::uint32_t src, std::uint32_t dst,
                                 std::size_t path) {
  pair_entry& e = entry_for(src, dst);
  ensure_path(e, src, dst, path);
  if (e.dense()) return e.dense_fwd[path];
  return slots_[find_slot(e, static_cast<std::uint32_t>(path))].fwd;
}

const route* path_table::reverse(std::uint32_t src, std::uint32_t dst,
                                 std::size_t path) {
  pair_entry& e = entry_for(src, dst);
  ensure_path(e, src, dst, path);
  if (e.dense()) return e.dense_rev[path];
  return slots_[find_slot(e, static_cast<std::uint32_t>(path))].rev;
}

std::size_t path_table::resident_bytes() const {
  std::size_t bytes = hops_total_ * sizeof(packet_sink*) +
                      routes_.size() * sizeof(route) +
                      slots_.size() * sizeof(path_slot);
  for (const auto& [key, e] : pairs_) {
    (void)key;
    bytes += e.sparse.capacity() * sizeof(std::pair<std::uint32_t, std::uint32_t>);
    bytes += (e.dense_fwd.capacity() + e.dense_rev.capacity()) *
             sizeof(const route*);
  }
  for (const auto& s : subsets_) {
    bytes += (s.fwd.capacity() + s.rev.capacity()) * sizeof(const route*);
  }
  return bytes;
}

}  // namespace ndpsim
