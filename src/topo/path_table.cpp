#include "topo/path_table.h"

#include <algorithm>

#include "topo/topology.h"

namespace ndpsim {

// topology's out-of-line members live here so topology.h only needs a
// forward declaration of path_table.
topology::topology() = default;
topology::~topology() = default;

path_table& topology::paths() {
  if (paths_ == nullptr) paths_ = std::make_unique<path_table>(*this);
  return *paths_;
}

namespace {
[[nodiscard]] std::uint64_t pair_key(std::uint32_t src, std::uint32_t dst) {
  return (static_cast<std::uint64_t>(src) << 32) | dst;
}
constexpr std::size_t kBlockHops = 4096;
}  // namespace

path_table::path_table(topology& topo) : topo_(topo) {
  demux_.resize(topo_.n_hosts());
}

flow_demux& path_table::demux(std::uint32_t host) {
  NDPSIM_ASSERT_MSG(host < demux_.size(), "host out of range");
  if (demux_[host] == nullptr) demux_[host] = std::make_unique<flow_demux>();
  return *demux_[host];
}

packet_sink** path_table::alloc_hops(std::size_t n) {
  if (block_used_ + n > block_cap_) {
    block_cap_ = std::max(kBlockHops, n);
    block_used_ = 0;
    blocks_.push_back(std::make_unique<packet_sink*[]>(block_cap_));
  }
  packet_sink** span = blocks_.back().get() + block_used_;
  block_used_ += n;
  hops_total_ += n;
  return span;
}

route* path_table::intern_route(const route& built, flow_demux* terminal) {
  const std::size_t n = built.size() + 1;  // + demux terminal
  packet_sink** span = alloc_hops(n);
  for (std::size_t i = 0; i < built.size(); ++i) span[i] = &built.at(i);
  span[n - 1] = terminal;
  routes_.emplace_back(span, static_cast<std::uint32_t>(n));
  return &routes_.back();
}

path_table::pair_entry& path_table::entry_for(std::uint32_t src,
                                              std::uint32_t dst) {
  auto [it, fresh] = pairs_.try_emplace(pair_key(src, dst));
  if (fresh) {
    const std::size_t n = topo_.n_paths(src, dst);
    NDPSIM_ASSERT_MSG(n > 0, "pair has no paths");
    it->second.fwd.assign(n, nullptr);
    it->second.rev.assign(n, nullptr);
  }
  return it->second;
}

void path_table::ensure_path(pair_entry& e, std::uint32_t src,
                             std::uint32_t dst, std::size_t path) {
  NDPSIM_ASSERT_MSG(path < e.fwd.size(), "path index out of range");
  if (e.fwd[path] != nullptr) return;
  auto [f, r] = topo_.make_route_pair(src, dst, path);
  NDPSIM_ASSERT_MSG(f != nullptr && r != nullptr && !f->empty() && !r->empty(),
                    "topology built an empty route");
  route* fi = intern_route(*f, &demux(dst));
  route* ri = intern_route(*r, &demux(src));
  fi->set_reverse(ri);
  ri->set_reverse(fi);
  // The reverse-pointer lifetime contract (net/route.h): both directions are
  // co-interned and reciprocal, so neither can dangle while the table lives.
  NDPSIM_ASSERT(fi->reverse()->reverse() == fi);
  NDPSIM_ASSERT(ri->reverse()->reverse() == ri);
  e.fwd[path] = fi;
  e.rev[path] = ri;
  ++e.built;
  ++interned_;
}

path_set path_table::all(std::uint32_t src, std::uint32_t dst) {
  pair_entry& e = entry_for(src, dst);
  if (e.built < e.fwd.size()) {
    for (std::size_t p = 0; p < e.fwd.size(); ++p) ensure_path(e, src, dst, p);
  }
  return path_set{e.fwd.data(), e.rev.data(),
                  static_cast<std::uint32_t>(e.fwd.size()), &demux(src),
                  &demux(dst)};
}

path_set path_table::sample(sim_env& env, std::uint32_t src, std::uint32_t dst,
                            std::size_t max_paths) {
  pair_entry& e = entry_for(src, dst);
  const std::size_t n = e.fwd.size();
  if (max_paths == 0 || max_paths >= n) return all(src, dst);

  // Seeded random subset without replacement (partial Fisher-Yates): taking
  // the first `max_paths` indices instead would always prefer the low
  // core/agg switches and pile every capped flow onto them.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < max_paths; ++i) {
    const std::size_t j = i + env.rand_below(n - i);
    std::swap(idx[i], idx[j]);
  }

  auto& [sf, sr] = subsets_.emplace_back();
  sf.reserve(max_paths);
  sr.reserve(max_paths);
  for (std::size_t i = 0; i < max_paths; ++i) {
    ensure_path(e, src, dst, idx[i]);
    sf.push_back(e.fwd[idx[i]]);
    sr.push_back(e.rev[idx[i]]);
  }
  return path_set{sf.data(), sr.data(), static_cast<std::uint32_t>(max_paths),
                  &demux(src), &demux(dst)};
}

path_set path_table::single(std::uint32_t src, std::uint32_t dst,
                            std::size_t path) {
  pair_entry& e = entry_for(src, dst);
  ensure_path(e, src, dst, path);
  return path_set{e.fwd.data() + path, e.rev.data() + path, 1, &demux(src),
                  &demux(dst)};
}

const route* path_table::forward(std::uint32_t src, std::uint32_t dst,
                                 std::size_t path) {
  pair_entry& e = entry_for(src, dst);
  ensure_path(e, src, dst, path);
  return e.fwd[path];
}

const route* path_table::reverse(std::uint32_t src, std::uint32_t dst,
                                 std::size_t path) {
  pair_entry& e = entry_for(src, dst);
  ensure_path(e, src, dst, path);
  return e.rev[path];
}

std::size_t path_table::resident_bytes() const {
  std::size_t bytes = hops_total_ * sizeof(packet_sink*) +
                      routes_.size() * sizeof(route);
  for (const auto& [key, e] : pairs_) {
    (void)key;
    bytes += (e.fwd.capacity() + e.rev.capacity()) * sizeof(const route*);
  }
  for (const auto& [sf, sr] : subsets_) {
    bytes += (sf.capacity() + sr.capacity()) * sizeof(const route*);
  }
  return bytes;
}

}  // namespace ndpsim
