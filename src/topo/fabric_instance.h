// Per-simulation fabric state, stamped out from a shared immutable
// `fabric_blueprint`.
//
// A `fabric_instance` materializes the blueprint's link records into live
// queues (via the experiment's `queue_factory`), pipes and PFC ingress
// elements — all bound to one `sim_env` — and keeps them in a flat sink
// table indexed by blueprint slot id.  Routes are the blueprint's interned
// slot sequences resolved through that table (`net/route.h`), so N parallel
// jobs over one blueprint share all structural route state and duplicate
// only the mutable per-env objects.  Component names are lazy `name_ref`s
// into the blueprint's name pool: instantiation formats nothing.
//
// Lifetime: the instance holds a shared_ptr keeping the blueprint alive;
// the instance itself must outlive every flow connected over it (its
// inherited `path_table` holds routes into the sink table).
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "net/lossless.h"
#include "net/pipe.h"
#include "net/sim_env.h"
#include "topo/fabric_blueprint.h"
#include "topo/topology.h"

namespace ndpsim {

class fabric_instance : public topology {
 public:
  fabric_instance(sim_env& env, std::shared_ptr<const fabric_blueprint> bp,
                  const queue_factory& make_queue);

  [[nodiscard]] std::size_t n_hosts() const override { return bp_->n_hosts(); }
  [[nodiscard]] std::size_t n_paths(std::uint32_t src,
                                    std::uint32_t dst) const override {
    return bp_->n_paths(src, dst);
  }
  [[nodiscard]] route_pair make_route_pair(std::uint32_t src,
                                           std::uint32_t dst,
                                           std::size_t path) override;
  [[nodiscard]] linkspeed_bps host_link_speed(
      std::uint32_t host) const override {
    return bp_->host_link_speed(host);
  }

  [[nodiscard]] const fabric_blueprint* blueprint() const override {
    return bp_.get();
  }
  [[nodiscard]] packet_sink* const* sink_table() const override {
    return sinks_.data();
  }
  void bind_demux_slot(std::uint32_t host, flow_demux* d) override;

  [[nodiscard]] const std::shared_ptr<const fabric_blueprint>& blueprint_ptr()
      const {
    return bp_;
  }

  /// Summed queue stats over all queues at one level (e.g. trims on uplinks).
  [[nodiscard]] queue_stats aggregate_stats(link_level level) const;
  /// All queues at a level (test/bench introspection), indexed like the
  /// blueprint's per-level flat link indices.
  [[nodiscard]] const std::vector<queue_base*>& queues_at(
      link_level level) const;

  /// Resident bytes of this instance's own state (estimate: sink table,
  /// link object storage, bookkeeping — excludes the shared blueprint and
  /// the per-env path table, which report separately).
  [[nodiscard]] std::size_t resident_bytes() const;

 private:
  sim_env& env_;
  std::shared_ptr<const fabric_blueprint> bp_;
  std::vector<std::unique_ptr<queue_base>> queues_;  // [link id]
  std::deque<pipe> pipes_;                           // [link id], pinned slab
  std::deque<pfc_ingress> ingresses_;                // pinned slab (PFC only)
  std::vector<packet_sink*> sinks_;  // [slot id]; demux slots filled lazily
  std::vector<std::vector<queue_base*>> by_level_;
};

}  // namespace ndpsim
