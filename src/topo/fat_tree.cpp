#include "topo/fat_tree.h"

#include <string>

namespace ndpsim {

fat_tree::fat_tree(sim_env& env, fat_tree_config cfg,
                   const queue_factory& make_queue)
    : env_(env), cfg_(cfg), half_k_(cfg.k / 2) {
  NDPSIM_ASSERT_MSG(cfg_.k >= 2 && cfg_.k % 2 == 0, "k must be even and >= 2");
  NDPSIM_ASSERT(cfg_.oversubscription >= 1);
  hosts_per_tor_ = cfg_.oversubscription * half_k_;
  n_tor_ = static_cast<std::size_t>(cfg_.k) * half_k_;
  n_agg_ = n_tor_;
  n_core_ = static_cast<std::size_t>(half_k_) * half_k_;
  n_hosts_ = n_tor_ * hosts_per_tor_;
  by_level_.resize(6);

  // host_up: host h -> its ToR. Ingress (PFC) lives at the ToR.
  host_up_.reserve(n_hosts_);
  for (std::size_t h = 0; h < n_hosts_; ++h) {
    host_up_.push_back(make_link(link_level::host_up, h,
                                 "hostup" + std::to_string(h), make_queue,
                                 /*ingress_at_far_end=*/true));
  }
  // tor_up: ToR t -> agg (pod(t), j).
  tor_up_.reserve(n_tor_ * half_k_);
  for (std::size_t t = 0; t < n_tor_; ++t) {
    for (unsigned j = 0; j < half_k_; ++j) {
      tor_up_.push_back(make_link(
          link_level::tor_up, t * half_k_ + j,
          "torup" + std::to_string(t) + "." + std::to_string(j), make_queue,
          true));
    }
  }
  // agg_up: agg (p, j) -> core j*half_k + m.
  agg_up_.reserve(cfg_.k * half_k_ * half_k_);
  for (unsigned p = 0; p < cfg_.k; ++p) {
    for (unsigned j = 0; j < half_k_; ++j) {
      for (unsigned m = 0; m < half_k_; ++m) {
        agg_up_.push_back(make_link(
            link_level::agg_up, agg_up_index(p, j, m),
            "aggup" + std::to_string(p) + "." + std::to_string(j) + "." +
                std::to_string(m),
            make_queue, true));
      }
    }
  }
  // core_down: core c -> pod p's agg (c / half_k).
  core_down_.reserve(n_core_ * cfg_.k);
  for (std::size_t c = 0; c < n_core_; ++c) {
    for (unsigned p = 0; p < cfg_.k; ++p) {
      core_down_.push_back(make_link(
          link_level::core_down, core_down_index(static_cast<unsigned>(c), p),
          "coredn" + std::to_string(c) + "." + std::to_string(p), make_queue,
          true));
    }
  }
  // agg_down: agg (p, j) -> ToR i in pod p.
  agg_down_.reserve(cfg_.k * half_k_ * half_k_);
  for (unsigned p = 0; p < cfg_.k; ++p) {
    for (unsigned j = 0; j < half_k_; ++j) {
      for (unsigned i = 0; i < half_k_; ++i) {
        agg_down_.push_back(make_link(
            link_level::agg_down,
            (static_cast<std::size_t>(p) * half_k_ + j) * half_k_ + i,
            "aggdn" + std::to_string(p) + "." + std::to_string(j) + "." +
                std::to_string(i),
            make_queue, true));
      }
    }
  }
  // tor_down: ToR t -> host t*hosts_per_tor + l. No PFC ingress at hosts:
  // endpoints consume at line rate.
  tor_down_.reserve(n_tor_ * hosts_per_tor_);
  for (std::size_t t = 0; t < n_tor_; ++t) {
    for (unsigned l = 0; l < hosts_per_tor_; ++l) {
      tor_down_.push_back(make_link(
          link_level::tor_down, t * hosts_per_tor_ + l,
          "tordn" + std::to_string(t) + "." + std::to_string(l), make_queue,
          false));
    }
  }
}

fat_tree::link fat_tree::make_link(link_level level, std::size_t index,
                                   const std::string& name,
                                   const queue_factory& make_queue,
                                   bool ingress_at_far_end) {
  linkspeed_bps speed = cfg_.link_speed;
  if (cfg_.speed_override) speed = cfg_.speed_override(level, index, speed);
  link l;
  l.q = make_queue(level, index, speed, name);
  NDPSIM_ASSERT(l.q != nullptr);
  l.p = std::make_unique<pipe>(env_, cfg_.link_delay, name + ".pipe");
  if (cfg_.pfc.enabled) {
    l.q->set_depart_hook(&pfc_ingress::credit_on_depart);
    if (ingress_at_far_end) {
      l.ingress = std::make_unique<pfc_ingress>(
          env_, l.q.get(), cfg_.link_delay, cfg_.pfc.xoff_bytes,
          cfg_.pfc.xon_bytes, name + ".pfc");
    }
  }
  by_level_[static_cast<std::size_t>(level)].push_back(l.q.get());
  return l;
}

void fat_tree::append_link(owned_route& r, const link& l) const {
  r.push_back(l.q.get());
  r.push_back(l.p.get());
  if (l.ingress != nullptr) r.push_back(l.ingress.get());
}

std::size_t fat_tree::n_paths(std::uint32_t src, std::uint32_t dst) const {
  NDPSIM_ASSERT(src < n_hosts_ && dst < n_hosts_ && src != dst);
  if (tor_of(src) == tor_of(dst)) return 1;
  if (pod_of(src) == pod_of(dst)) return half_k_;
  return n_core_;
}

route_pair fat_tree::make_route_pair(std::uint32_t src, std::uint32_t dst,
                                     std::size_t path) {
  NDPSIM_ASSERT(path < n_paths(src, dst));
  auto build = [this](std::uint32_t a, std::uint32_t b,
                      std::size_t path_idx) -> std::unique_ptr<owned_route> {
    auto r = std::make_unique<owned_route>();
    const std::uint32_t ta = tor_of(a);
    const std::uint32_t tb = tor_of(b);
    const unsigned lb = b % hosts_per_tor_;
    append_link(*r, host_up_[a]);
    if (ta == tb) {
      append_link(*r, tor_down_[static_cast<std::size_t>(tb) * hosts_per_tor_ + lb]);
      return r;
    }
    const unsigned pa = pod_of(a);
    const unsigned pb = pod_of(b);
    const unsigned ib = tb % half_k_;
    if (pa == pb) {
      const unsigned j = static_cast<unsigned>(path_idx);
      append_link(*r, tor_up_[static_cast<std::size_t>(ta) * half_k_ + j]);
      append_link(
          *r, agg_down_[(static_cast<std::size_t>(pa) * half_k_ + j) * half_k_ + ib]);
      append_link(*r, tor_down_[static_cast<std::size_t>(tb) * hosts_per_tor_ + lb]);
      return r;
    }
    // Inter-pod: path index selects the core switch; the core determines the
    // aggregation switch (j = core / half_k) in both pods.
    const unsigned core = static_cast<unsigned>(path_idx);
    const unsigned j = core / half_k_;
    const unsigned m = core % half_k_;
    append_link(*r, tor_up_[static_cast<std::size_t>(ta) * half_k_ + j]);
    append_link(*r, agg_up_[agg_up_index(pa, j, m)]);
    append_link(*r, core_down_[core_down_index(core, pb)]);
    append_link(
        *r, agg_down_[(static_cast<std::size_t>(pb) * half_k_ + j) * half_k_ + ib]);
    append_link(*r, tor_down_[static_cast<std::size_t>(tb) * hosts_per_tor_ + lb]);
    return r;
  };
  return {build(src, dst, path), build(dst, src, path)};
}

queue_stats fat_tree::aggregate_stats(link_level level) const {
  queue_stats total;
  for (const queue_base* q : by_level_[static_cast<std::size_t>(level)]) {
    const queue_stats& s = q->stats();
    total.arrivals += s.arrivals;
    total.forwarded += s.forwarded;
    total.dropped += s.dropped;
    total.trimmed += s.trimmed;
    total.bounced += s.bounced;
    total.marked += s.marked;
    total.bytes_forwarded += s.bytes_forwarded;
  }
  return total;
}

const std::vector<queue_base*>& fat_tree::queues_at(link_level level) const {
  return by_level_[static_cast<std::size_t>(level)];
}

}  // namespace ndpsim
