#include "phost/phost.h"

#include <algorithm>

namespace ndpsim {

// ---------------------------------------------------------------- phost_source

phost_source::phost_source(sim_env& env, phost_config cfg,
                           std::uint32_t flow_id, std::string name)
    : event_source(env.events, std::move(name), dispatch_class::transport_timer),
      env_(env),
      cfg_(cfg),
      flow_id_(flow_id) {
  NDPSIM_ASSERT(cfg_.mss_bytes > kHeaderBytes);
}

phost_source::~phost_source() { disconnect(); }

void phost_source::disconnect() {
  events().cancel(start_timer_);
  if (sink_ != nullptr) {
    net_paths_.unbind(flow_id_);
    sink_ = nullptr;
  }
  net_paths_ = path_set{};
}

void phost_source::connect(phost_sink& sink, path_set paths,
                           std::uint32_t src_host, std::uint32_t dst_host,
                           std::uint64_t flow_bytes, simtime_t start) {
  NDPSIM_ASSERT_MSG(!paths.empty(), "need at least one path");
  NDPSIM_ASSERT_MSG(flow_bytes > 0, "phost needs finite flows (RTS size)");
  sink_ = &sink;
  net_paths_ = paths;
  net_paths_.bind_dst(flow_id_, sink_);
  net_paths_.bind_src(flow_id_, this);
  sink_->bind(net_paths_, dst_host, src_host);
  src_host_ = src_host;
  dst_host_ = dst_host;
  flow_bytes_ = flow_bytes;
  const std::uint32_t ppp = cfg_.mss_bytes - kHeaderBytes;
  total_packets_ = (flow_bytes + ppp - 1) / ppp;
  paths_ = std::make_unique<path_selector>(env_, net_paths_.size(),
                                           path_mode::random_per_packet,
                                           path_penalty_config{.enabled = false});
  start_time_ = start;
  start_timer_ = events().schedule_at(*this, start);
}

void phost_source::do_next_event() {
  NDPSIM_ASSERT(!started_);  // only the one start event is ever scheduled
  started_ = true;
  // RTS announcing the flow size.
  packet* rts = env_.pool.alloc();
  rts->type = packet_type::phost_rts;
  rts->priority = 1;
  rts->flow_id = flow_id_;
  rts->src = src_host_;
  rts->dst = dst_host_;
  rts->size_bytes = kHeaderBytes;
  rts->pullno = total_packets_;  // flow size in packets
  rts->rt = net_paths_.forward(paths_->next());
  rts->next_hop = 0;
  send_to_next_hop(*rts);
  // Free-token first-RTT burst.
  const std::uint64_t burst =
      std::min<std::uint64_t>(cfg_.free_tokens, total_packets_);
  for (std::uint64_t s = 1; s <= burst; ++s) send_data(s);
  next_unsent_ = burst + 1;
  credit_used_ = burst;
}

std::uint32_t phost_source::payload_for(std::uint64_t seqno) const {
  const std::uint32_t ppp = cfg_.mss_bytes - kHeaderBytes;
  if (seqno < total_packets_) return ppp;
  return static_cast<std::uint32_t>(flow_bytes_ - (seqno - 1) * ppp);
}

void phost_source::send_data(std::uint64_t seqno) {
  packet* p = env_.pool.alloc();
  p->type = packet_type::phost_data;
  p->flow_id = flow_id_;
  p->src = src_host_;
  p->dst = dst_host_;
  p->seqno = seqno;
  p->payload_bytes = payload_for(seqno);
  p->size_bytes = p->payload_bytes + kHeaderBytes;
  if (seqno == total_packets_) p->set_flag(pkt_flag::last);
  p->rt = net_paths_.forward(paths_->next());
  p->next_hop = 0;
  ++packets_sent_;
  send_to_next_hop(*p);
}

void phost_source::receive(packet& p) {
  NDPSIM_ASSERT(p.type == packet_type::phost_token);
  NDPSIM_ASSERT(p.flow_id == flow_id_);
  // Token: credit up to p.pullno total sends; p.seqno hints the lowest
  // sequence the receiver is missing (loss recovery).
  while (credit_used_ < p.pullno) {
    ++credit_used_;
    if (p.seqno != 0 && p.seqno < next_unsent_) {
      send_data(p.seqno);  // retransmission requested by the receiver
    } else if (next_unsent_ <= total_packets_) {
      send_data(next_unsent_++);
    } else {
      break;  // nothing new to send; credit goes unused
    }
  }
  env_.pool.release(&p);
}

// ----------------------------------------------------------- phost_token_pacer

phost_token_pacer::phost_token_pacer(sim_env& env, linkspeed_bps rate,
                                     std::string name)
    : event_source(env.events, std::move(name), dispatch_class::pacer_tick),
      env_(env),
      rate_(rate) {}

void phost_token_pacer::activate(phost_sink& sink) {
  if (!sink.in_ring_) {
    sink.in_ring_ = true;
    ring_.push_back(&sink);
  }
  kick();
}

void phost_token_pacer::deactivate(phost_sink& sink) { sink.active_ = false; }

void phost_token_pacer::remove(phost_sink& sink) {
  sink.active_ = false;
  if (sink.in_ring_) {
    ring_.erase(std::remove(ring_.begin(), ring_.end(), &sink), ring_.end());
    sink.in_ring_ = false;
  }
}

void phost_token_pacer::kick() {
  if (ring_.empty() || events().is_pending(timer_)) return;
  events().reschedule(timer_, *this, std::max(env_.now(), next_send_));
}

phost_sink* phost_token_pacer::pick_next() {
  // One full rotation at most.
  for (std::size_t i = 0, n = ring_.size(); i < n; ++i) {
    phost_sink* s = ring_.front();
    ring_.pop_front();
    if (!s->active_) {
      s->in_ring_ = false;
      continue;
    }
    ring_.push_back(s);
    if (s->wants_token()) return s;
  }
  return nullptr;
}

void phost_token_pacer::do_next_event() {
  phost_sink* s = pick_next();
  if (s == nullptr) {
    // Nothing currently wants a token; retry after a timeout tick so token
    // expiry can refresh demand (the only wake-up that can find no work).
    if (!ring_.empty()) {
      timer_ = events().schedule_in(*this, from_us(50));
    }
    return;
  }
  s->issue_token();
  next_send_ =
      std::max(env_.now(), next_send_) +
      serialization_time(s->token_wire_bytes(), rate_);
  kick();
}

// ------------------------------------------------------------------ phost_sink

phost_sink::phost_sink(sim_env& env, phost_token_pacer& pacer,
                       phost_config cfg, std::uint32_t flow_id)
    : env_(env), pacer_(pacer), cfg_(cfg), flow_id_(flow_id) {}

void phost_sink::bind(path_set paths, std::uint32_t local_host,
                      std::uint32_t remote_host) {
  NDPSIM_ASSERT_MSG(!paths.empty(), "sink needs at least one ctrl route");
  paths_ = paths;
  local_host_ = local_host;
  remote_host_ = remote_host;
}

void phost_sink::disconnect() {
  pacer_.remove(*this);
  paths_ = path_set{};
}

bool phost_sink::wants_token() const {
  if (!active_ || complete()) return false;
  const std::uint64_t outstanding = tokens_granted_ - received_;
  if (tokens_granted_ >= total_packets_ + 4 * cfg_.max_outstanding_tokens) {
    return false;  // hard cap on re-grants, avoids infinite token loops
  }
  if (outstanding < cfg_.max_outstanding_tokens &&
      tokens_granted_ < total_packets_) {
    return true;
  }
  // Token expiry: no arrival for a while but credit outstanding -> assume
  // the data (or token) was lost and re-issue.
  return outstanding > 0 &&
         env_.now() - last_arrival_ > cfg_.token_timeout;
}

void phost_sink::issue_token() {
  ++tokens_granted_;
  packet* t = env_.pool.alloc();
  t->type = packet_type::phost_token;
  t->priority = 1;
  t->flow_id = flow_id_;
  t->src = local_host_;
  t->dst = remote_host_;
  t->size_bytes = kHeaderBytes;
  t->pullno = tokens_granted_;
  // Loss-recovery hint: only point the sender at the lowest missing sequence
  // when this grant was triggered by a token timeout — otherwise tokens
  // fetch new data and the hint would cause duplicate storms.
  const bool recovering = env_.now() - last_arrival_ > cfg_.token_timeout;
  t->seqno = recovering && cum_ + 1 <= total_packets_ ? cum_ + 1 : 0;
  t->rt = paths_.reverse(env_.rand_below(paths_.size()));
  t->next_hop = 0;
  send_to_next_hop(*t);
}

void phost_sink::receive(packet& p) {
  NDPSIM_ASSERT(p.flow_id == flow_id_);
  if (p.type == packet_type::phost_rts) {
    total_packets_ = p.pullno;
    // The sender's free-token first-RTT burst counts as pre-granted credit,
    // keeping the token counter aligned between the two sides.
    tokens_granted_ = std::max<std::uint64_t>(
        tokens_granted_,
        std::min<std::uint64_t>(cfg_.free_tokens, total_packets_));
    active_ = true;
    last_arrival_ = env_.now();
    pacer_.activate(*this);
    env_.pool.release(&p);
    return;
  }
  NDPSIM_ASSERT(p.type == packet_type::phost_data);
  last_arrival_ = env_.now();
  if (total_packets_ == 0) {
    // Data raced ahead of the RTS; learn what we can and activate.
    if (p.has_flag(pkt_flag::last)) total_packets_ = p.seqno;
    active_ = true;
    pacer_.activate(*this);
  }
  const bool is_new = p.seqno > cum_ && ooo_.find(p.seqno) == ooo_.end();
  if (is_new) {
    ++received_;
    payload_ += p.payload_bytes;
    if (p.seqno == cum_ + 1) {
      ++cum_;
      auto it = ooo_.begin();
      while (it != ooo_.end() && *it == cum_ + 1) {
        ++cum_;
        it = ooo_.erase(it);
      }
    } else {
      ooo_.insert(p.seqno);
    }
  }
  if (complete() && completion_time_ < 0) {
    completion_time_ = env_.now();
    pacer_.deactivate(*this);
    if (on_complete_) on_complete_();
  } else {
    pacer_.kick();
  }
  env_.pool.release(&p);
}

}  // namespace ndpsim
