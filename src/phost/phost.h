// pHost (Gao et al., CoNEXT 2015): receiver-driven scheduling over a plain
// drop-tail fabric with per-packet spraying — the paper's §6.2 "who needs
// packet trimming?" baseline.
//
// Model (faithful to pHost's structure, simplified bookkeeping):
//  * the sender announces a flow with an RTS carrying its size, and bursts a
//    "free token" window at line rate in the first RTT;
//  * the receiver paces tokens at its link rate, round-robin across active
//    flows; a token carries a cumulative credit plus the lowest sequence the
//    receiver is still missing (its loss-recovery hint);
//  * tokens stop being issued for a flow once enough credit is outstanding;
//    credit is replenished by arrivals or, after `token_timeout`, assumed
//    lost and re-issued.  Data lost in the fabric (there is no trimming, and
//    buffers are 8 packets) therefore costs at least a token timeout —
//    exactly the failure mode the paper contrasts NDP against.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <vector>

#include "net/packet.h"
#include "net/path_set.h"
#include "net/route.h"
#include "net/sim_env.h"
#include "ndp/path_selector.h"
#include "sim/eventlist.h"

namespace ndpsim {

class phost_sink;

struct phost_config {
  std::uint32_t mss_bytes = 9000;
  std::uint32_t free_tokens = 8;  ///< first-RTT line-rate burst (packets)
  simtime_t token_timeout = from_us(300);
  std::uint32_t max_outstanding_tokens = 12;
};

class phost_source final : public packet_sink, public event_source {
 public:
  phost_source(sim_env& env, phost_config cfg, std::uint32_t flow_id,
               std::string name = "phostsrc");
  ~phost_source() override;

  /// Wire up over a borrowed multipath set (data is sprayed per packet).
  void connect(phost_sink& sink, path_set paths, std::uint32_t src_host,
               std::uint32_t dst_host, std::uint64_t flow_bytes,
               simtime_t start);

  /// Teardown hook (flow recycling): cancel the pending start event and
  /// unbind both demux endpoints.  Idempotent; also invoked by the
  /// destructor.
  void disconnect();

  void receive(packet& p) override;  // tokens
  void do_next_event() override;     // start

  [[nodiscard]] std::uint64_t packets_sent() const { return packets_sent_; }
  [[nodiscard]] std::uint32_t flow_id() const { return flow_id_; }

 private:
  void send_data(std::uint64_t seqno);
  [[nodiscard]] std::uint32_t payload_for(std::uint64_t seqno) const;

  sim_env& env_;
  phost_config cfg_;
  std::uint32_t flow_id_;
  phost_sink* sink_ = nullptr;
  path_set net_paths_;  ///< borrowed; the path owner outlives us
  std::unique_ptr<path_selector> paths_;
  std::uint32_t src_host_ = 0;
  std::uint32_t dst_host_ = 0;
  std::uint64_t flow_bytes_ = 0;
  std::uint64_t total_packets_ = 0;
  std::uint64_t next_unsent_ = 1;
  std::uint64_t credit_used_ = 0;
  std::uint64_t packets_sent_ = 0;
  simtime_t start_time_ = 0;
  timer_handle start_timer_;  ///< the one scheduled start event
  bool started_ = false;
};

/// Per-receiving-host token pacer: round-robin across its active flows.
class phost_token_pacer final : public event_source {
 public:
  phost_token_pacer(sim_env& env, linkspeed_bps rate,
                    std::string name = "phostpacer");

  void activate(phost_sink& sink);
  void deactivate(phost_sink& sink);
  /// Eagerly deactivate AND drop the ring entry: after this the pacer holds
  /// no pointer to `sink`, making it safe to destroy (flow recycling).
  void remove(phost_sink& sink);
  void kick();  ///< re-evaluate after state changes

  void do_next_event() override;

 private:
  [[nodiscard]] phost_sink* pick_next();

  sim_env& env_;
  linkspeed_bps rate_;
  std::deque<phost_sink*> ring_;
  simtime_t next_send_ = 0;
  timer_handle timer_;
};

class phost_sink final : public packet_sink {
 public:
  phost_sink(sim_env& env, phost_token_pacer& pacer, phost_config cfg,
             std::uint32_t flow_id);

  /// Bind the path set whose reverse routes carry tokens to the sender.
  void bind(path_set paths, std::uint32_t local_host,
            std::uint32_t remote_host);

  void receive(packet& p) override;  // RTS + data

  /// Teardown hook (flow recycling): leave the token pacer's ring eagerly
  /// and drop the borrowed path view.  Idempotent.
  void disconnect();

  void set_complete_callback(std::function<void()> cb) {
    on_complete_ = std::move(cb);
  }
  [[nodiscard]] bool complete() const {
    return total_packets_ != 0 && received_ == total_packets_;
  }
  [[nodiscard]] std::uint64_t payload_received() const { return payload_; }
  [[nodiscard]] simtime_t completion_time() const { return completion_time_; }

  // pacer interface
  [[nodiscard]] bool wants_token() const;
  void issue_token();
  [[nodiscard]] std::uint32_t token_wire_bytes() const {
    return cfg_.mss_bytes;
  }

 private:
  friend class phost_token_pacer;

  sim_env& env_;
  phost_token_pacer& pacer_;
  phost_config cfg_;
  std::uint32_t flow_id_;
  path_set paths_;  ///< tokens ride paths_.reverse(i)
  std::uint32_t local_host_ = 0;
  std::uint32_t remote_host_ = 0;

  bool active_ = false;     ///< RTS seen, not complete
  bool in_ring_ = false;
  std::uint64_t total_packets_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t cum_ = 0;
  std::set<std::uint64_t> ooo_;
  std::uint64_t tokens_granted_ = 0;  ///< cumulative credit sent
  std::uint64_t payload_ = 0;
  simtime_t last_arrival_ = 0;
  simtime_t completion_time_ = -1;
  std::function<void()> on_complete_;
};

}  // namespace ndpsim
