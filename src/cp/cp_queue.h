// Cut Payload (CP) switch queue, as proposed by Cheng et al. (NSDI'14) and
// used as the baseline in the paper's Fig 2.
//
// A single FIFO: when the data buffer is full an arriving data packet is
// trimmed to its header, and the header joins the same FIFO at the tail.
// Headers are always admitted (they are 64 bytes against a multi-packet
// buffer; CP treats metadata as effectively free to store).  This is exactly
// what makes CP collapse under extreme overload: every offered packet
// forwards *something*, so at N-fold overload the link spends ~(N-1)*64
// bytes on headers per 9000-byte data packet — at large N only headers get
// forwarded.  Because the FIFO gives headers no priority, feedback is also
// delayed behind queued data ("tail loss costs at least one RTT"), and the
// deterministic trim-the-arrival rule preserves phase effects.  NDP's queue
// (ndp/ndp_queue.h) fixes all three.
#pragma once

#include "net/queue.h"
#include "net/ring_fifo.h"

namespace ndpsim {

class cp_queue final : public queue_base {
 public:
  /// `capacity_bytes` bounds buffered *data* bytes; headers and control
  /// packets are always admitted.
  cp_queue(sim_env& env, linkspeed_bps rate, std::uint64_t capacity_bytes,
           std::string name = "cpq")
      : queue_base(env, rate, std::move(name), dequeue_kind::cp_fifo),
        capacity_(capacity_bytes) {}

  [[nodiscard]] std::uint64_t buffered_bytes() const override {
    return bytes_;
  }
  [[nodiscard]] std::size_t buffered_packets() const override {
    return fifo_.size();
  }
  [[nodiscard]] std::uint64_t buffered_data_bytes() const {
    return data_bytes_;
  }
  [[nodiscard]] std::uint64_t buffered_header_bytes() const {
    return header_bytes_;
  }

  // dequeue_kind::cp_fifo hooks (see queue_base::dequeue_next_dispatch).
  [[nodiscard]] packet* dequeue_direct() { return cp_queue::dequeue_next(); }
  void prefetch_front_slots() const { fifo_.prefetch_front_slot(); }
  void prefetch_front_packets() const {
    if (!fifo_.empty()) __builtin_prefetch(fifo_.front());
  }

 protected:
  void enqueue_arrival(packet& p) override;
  [[nodiscard]] packet* dequeue_next() override;

 private:
  ring_fifo<packet*> fifo_;
  std::uint64_t bytes_ = 0;  ///< data + header total, kept incrementally
  std::uint64_t data_bytes_ = 0;
  std::uint64_t header_bytes_ = 0;
  std::uint64_t capacity_;
};

}  // namespace ndpsim
