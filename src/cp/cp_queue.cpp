#include "cp/cp_queue.h"

#include "ndp/ndp_queue.h"

namespace ndpsim {

void cp_queue::enqueue_arrival(packet& p) {
  if (!p.is_header_class()) {
    if (data_bytes_ + p.size_bytes > capacity_) {
      // CP: always trim the arriving data packet; the header joins the same
      // FIFO with no priority treatment.
      const std::uint64_t removed = p.size_bytes - kHeaderBytes;
      ndp_queue::trim_packet(p);
      p.priority = 0;  // CP has no priority queue
      count_trim(removed);
    }
  }
  if (p.is_header_class()) {
    header_bytes_ += p.size_bytes;
  } else {
    data_bytes_ += p.size_bytes;
  }
  bytes_ += p.size_bytes;
  p.enqueue_time = env_.now();
  fifo_.push_back(&p);
}

packet* cp_queue::dequeue_next() {
  if (fifo_.empty()) return nullptr;
  packet* p = fifo_.front();
  fifo_.pop_front();
  if (p->is_header_class()) {
    header_bytes_ -= p->size_bytes;
  } else {
    data_bytes_ -= p->size_bytes;
  }
  bytes_ -= p->size_bytes;
  return p;
}

}  // namespace ndpsim
