#include "dcqcn/dcqcn_source.h"

#include <algorithm>

#include "dcqcn/dcqcn_sink.h"

namespace ndpsim {

dcqcn_source::dcqcn_source(sim_env& env, dcqcn_config cfg,
                           std::uint32_t flow_id, std::string name)
    : event_source(env.events, std::move(name), dispatch_class::transport_timer),
      env_(env),
      cfg_(cfg),
      flow_id_(flow_id),
      rc_(cfg.line_rate),
      rt_(cfg.line_rate) {
  NDPSIM_ASSERT(cfg_.mss_bytes > kHeaderBytes);
  NDPSIM_ASSERT(cfg_.line_rate > 0 && cfg_.min_rate > 0);
}

dcqcn_source::~dcqcn_source() { disconnect(); }

void dcqcn_source::disconnect() {
  events().cancel(pace_timer_);  // pending start event or pacing tick
  if (sink_ != nullptr) {
    paths_.unbind(flow_id_);
    sink_ = nullptr;
  }
  paths_ = path_set{};
}

void dcqcn_source::connect(dcqcn_sink& sink, path_set paths,
                           std::uint32_t src_host, std::uint32_t dst_host,
                           std::uint64_t flow_bytes, simtime_t start) {
  NDPSIM_ASSERT_MSG(!paths.empty(), "need at least one path");
  sink_ = &sink;
  paths_ = paths;
  fwd_route_ = paths_.forward(0);
  rev_route_ = paths_.reverse(0);
  paths_.bind_dst(flow_id_, sink_);
  paths_.bind_src(flow_id_, this);
  sink_->bind(rev_route_, dst_host, src_host);
  src_host_ = src_host;
  dst_host_ = dst_host;
  flow_bytes_ = flow_bytes;
  total_packets_ =
      flow_bytes == 0
          ? UINT64_MAX
          : (flow_bytes + payload_per_packet() - 1) / payload_per_packet();
  start_time_ = start;
  // The start event shares the pacing handle so disconnect() can cancel a
  // flow that never started.
  pace_timer_ = events().schedule_at(*this, start);
}

void dcqcn_source::do_next_event() {
  if (!started_) {
    started_ = true;
    last_increase_timer_ = env_.now();
    last_alpha_update_ = env_.now();
    next_send_ = env_.now();
    // This very event doubles as the first send.
  }
  if (completed_ || next_seq_ > total_packets_) return;

  // Timer-driven state updates are piggybacked on pacing events, which fire
  // at least every mss/min_rate.
  while (env_.now() - last_increase_timer_ >= cfg_.increase_timer) {
    last_increase_timer_ += cfg_.increase_timer;
    ++timer_stage_;
    rate_increase_event();
  }
  while (env_.now() - last_alpha_update_ >= cfg_.alpha_timer) {
    last_alpha_update_ += cfg_.alpha_timer;
    // alpha decays whenever a full alpha_timer passes without a CNP.
    if (last_cnp_ < 0 || env_.now() - last_cnp_ > cfg_.alpha_timer) {
      alpha_ *= (1.0 - cfg_.g);
    }
  }

  send_next_packet();
  schedule_pacing();
}

void dcqcn_source::send_next_packet() {
  packet* p = env_.pool.alloc();
  p->type = packet_type::dcqcn_data;
  p->flow_id = flow_id_;
  p->src = src_host_;
  p->dst = dst_host_;
  p->seqno = next_seq_;
  p->payload_bytes =
      next_seq_ == total_packets_ && flow_bytes_ > 0
          ? static_cast<std::uint32_t>(flow_bytes_ -
                                       (next_seq_ - 1) * payload_per_packet())
          : payload_per_packet();
  p->size_bytes = p->payload_bytes + kHeaderBytes;
  p->set_flag(pkt_flag::ect);
  if (next_seq_ == total_packets_) p->set_flag(pkt_flag::last);
  p->rt = fwd_route_;
  p->next_hop = 0;
  ++next_seq_;
  ++stats_.packets_sent;
  bytes_since_increase_ += p->size_bytes;
  if (bytes_since_increase_ >= cfg_.byte_counter) {
    bytes_since_increase_ = 0;
    ++byte_stage_;
    rate_increase_event();
  }
  send_to_next_hop(*p);
}

void dcqcn_source::schedule_pacing() {
  if (completed_ || next_seq_ > total_packets_ ||
      events().is_pending(pace_timer_)) {
    return;
  }
  const simtime_t gap = serialization_time(cfg_.mss_bytes, rc_);
  next_send_ = std::max(env_.now(), next_send_) + gap;
  events().reschedule(pace_timer_, *this, next_send_);
}

void dcqcn_source::receive(packet& p) {
  NDPSIM_ASSERT(p.flow_id == flow_id_);
  switch (p.type) {
    case packet_type::dcqcn_ack: {
      acked_cum_ = std::max(acked_cum_, p.ackno);
      if (!completed_ && flow_bytes_ > 0 && acked_cum_ >= total_packets_) {
        completed_ = true;
        completion_time_ = env_.now();
        events().cancel(pace_timer_);  // no more sends will happen
        if (on_complete_) on_complete_();
      }
      break;
    }
    case packet_type::dcqcn_cnp:
      on_cnp();
      break;
    default:
      NDPSIM_ASSERT_MSG(false, "unexpected packet at dcqcn_source");
  }
  env_.pool.release(&p);
}

void dcqcn_source::on_cnp() {
  ++stats_.cnps_received;
  ++stats_.rate_cuts;
  last_cnp_ = env_.now();
  rt_ = rc_;
  rc_ = static_cast<linkspeed_bps>(static_cast<double>(rc_) *
                                   (1.0 - alpha_ / 2.0));
  rc_ = std::max(rc_, cfg_.min_rate);
  alpha_ = (1.0 - cfg_.g) * alpha_ + cfg_.g;
  timer_stage_ = 0;
  byte_stage_ = 0;
  bytes_since_increase_ = 0;
  last_increase_timer_ = env_.now();
}

void dcqcn_source::rate_increase_event() {
  // DCQCN stages (Zhu et al., Fig/Alg 1): fast recovery for the first F
  // events of either counter; additive increase once either counter passes
  // F; hyper increase when both have.
  ++stats_.increase_events;
  if (std::max(timer_stage_, byte_stage_) <= cfg_.f_stages) {
    // Fast recovery: move halfway back to the target rate.
  } else if (std::min(timer_stage_, byte_stage_) <= cfg_.f_stages) {
    rt_ = std::min<linkspeed_bps>(rt_ + cfg_.rai, cfg_.line_rate);
  } else {
    rt_ = std::min<linkspeed_bps>(rt_ + cfg_.rhai, cfg_.line_rate);
  }
  rc_ = (rt_ + rc_) / 2;
  rc_ = std::clamp(rc_, cfg_.min_rate, cfg_.line_rate);
}

}  // namespace ndpsim
