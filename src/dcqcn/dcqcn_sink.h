// Split out so CMake has a separate TU; the class lives with the source's
// header for cohesion.
#pragma once
#include "dcqcn/dcqcn_source.h"
