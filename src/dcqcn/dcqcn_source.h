// DCQCN (Zhu et al., SIGCOMM 2015): rate-based congestion control for RoCEv2
// over lossless (PFC) Ethernet — the paper's low-latency RDMA baseline.
//
//  CP (switch): RED-style ECN marking (red_ecn_queue in net/).
//  NP (receiver): on a CE-marked packet, send a CNP at most once per
//     `cnp_interval` (50us) per flow — see dcqcn_sink.
//  RP (sender, this class): paced at rate Rc.
//     On CNP:  Rt = Rc; Rc *= (1 - alpha/2); alpha = (1-g)*alpha + g.
//     Increase events fire on a timer (55us) and a byte counter; the first
//     `f_stages` events are fast recovery (Rc = (Rt+Rc)/2), then additive
//     (Rt += Rai), then hyper increase (Rt += Rhai).
//     alpha decays by (1-g) every `alpha_timer` without CNPs.
//
// The fabric never drops (PFC), so reliability is trivial: cumulative ACKs
// confirm delivery and an RTO backstop exists only for completeness.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <set>

#include "net/packet.h"
#include "net/path_set.h"
#include "net/route.h"
#include "net/sim_env.h"
#include "sim/eventlist.h"

namespace ndpsim {

class dcqcn_sink;

struct dcqcn_config {
  std::uint32_t mss_bytes = 9000;
  linkspeed_bps line_rate = gbps(10);
  linkspeed_bps min_rate = mbps(10);
  linkspeed_bps rai = mbps(40);    ///< additive increase step
  linkspeed_bps rhai = mbps(400);  ///< hyper increase step
  double g = 1.0 / 256.0;
  simtime_t increase_timer = from_us(55);
  simtime_t alpha_timer = from_us(55);
  std::uint64_t byte_counter = 10u * 1024 * 1024;
  unsigned f_stages = 5;
};

struct dcqcn_stats {
  std::uint64_t packets_sent = 0;
  std::uint64_t cnps_received = 0;
  std::uint64_t rate_cuts = 0;
  std::uint64_t increase_events = 0;
};

class dcqcn_source final : public packet_sink, public event_source {
 public:
  dcqcn_source(sim_env& env, dcqcn_config cfg, std::uint32_t flow_id,
               std::string name = "dcqcnsrc");
  ~dcqcn_source() override;

  /// Single path (RoCE flows are pinned): path 0 of the borrowed set.
  void connect(dcqcn_sink& sink, path_set paths, std::uint32_t src_host,
               std::uint32_t dst_host, std::uint64_t flow_bytes,
               simtime_t start);

  /// Teardown hook (flow recycling): cancel the pending start/pacing timer
  /// and unbind both demux endpoints.  Idempotent; also invoked by the
  /// destructor.
  void disconnect();

  void receive(packet& p) override;  // ACKs and CNPs
  void do_next_event() override;     // pacing + timers

  void set_complete_callback(std::function<void()> cb) {
    on_complete_ = std::move(cb);
  }

  [[nodiscard]] linkspeed_bps current_rate() const { return rc_; }
  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] const dcqcn_stats& stats() const { return stats_; }
  [[nodiscard]] bool complete() const { return completed_; }
  [[nodiscard]] simtime_t completion_time() const { return completion_time_; }
  [[nodiscard]] std::uint32_t flow_id() const { return flow_id_; }

 private:
  void send_next_packet();
  void schedule_pacing();
  void on_cnp();
  void rate_increase_event();
  [[nodiscard]] std::uint32_t payload_per_packet() const {
    return cfg_.mss_bytes - kHeaderBytes;
  }

  sim_env& env_;
  dcqcn_config cfg_;
  std::uint32_t flow_id_;
  dcqcn_sink* sink_ = nullptr;
  path_set paths_;  ///< borrowed; path 0 is the flow's route pair
  const route* fwd_route_ = nullptr;
  const route* rev_route_ = nullptr;
  std::uint32_t src_host_ = 0;
  std::uint32_t dst_host_ = 0;

  std::uint64_t flow_bytes_ = 0;
  std::uint64_t total_packets_ = UINT64_MAX;
  std::uint64_t next_seq_ = 1;
  std::uint64_t acked_cum_ = 0;

  // RP rate state.
  linkspeed_bps rc_;  ///< current rate
  linkspeed_bps rt_;  ///< target rate
  double alpha_ = 1.0;
  unsigned timer_stage_ = 0;
  unsigned byte_stage_ = 0;
  std::uint64_t bytes_since_increase_ = 0;
  simtime_t last_increase_timer_ = 0;
  simtime_t last_alpha_update_ = 0;
  simtime_t last_cnp_ = -1;

  simtime_t next_send_ = 0;
  timer_handle pace_timer_;
  simtime_t start_time_ = 0;
  bool started_ = false;
  bool completed_ = false;
  simtime_t completion_time_ = -1;

  dcqcn_stats stats_;
  std::function<void()> on_complete_;
};

/// NP: acks every data packet (cumulatively) and emits CNPs for CE marks at
/// most once per `cnp_interval`.
class dcqcn_sink final : public packet_sink {
 public:
  dcqcn_sink(sim_env& env, std::uint32_t flow_id,
             simtime_t cnp_interval = from_us(50))
      : env_(env), flow_id_(flow_id), cnp_interval_(cnp_interval) {}

  void bind(const route* rev_route, std::uint32_t local_host,
            std::uint32_t remote_host) {
    rev_route_ = rev_route;
    local_host_ = local_host;
    remote_host_ = remote_host;
  }

  void receive(packet& p) override;

  [[nodiscard]] std::uint64_t payload_received() const { return payload_; }
  [[nodiscard]] std::uint64_t cnps_sent() const { return cnps_; }

 private:
  void send_control(packet_type type, std::uint64_t ackno);

  sim_env& env_;
  std::uint32_t flow_id_;
  simtime_t cnp_interval_;
  const route* rev_route_ = nullptr;
  std::uint32_t local_host_ = 0;
  std::uint32_t remote_host_ = 0;
  std::uint64_t cum_ = 0;
  std::set<std::uint64_t> ooo_;
  std::uint64_t payload_ = 0;
  std::uint64_t cnps_ = 0;
  simtime_t last_cnp_ = -from_sec(1);
};

}  // namespace ndpsim
