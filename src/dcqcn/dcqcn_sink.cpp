#include "dcqcn/dcqcn_sink.h"

namespace ndpsim {

void dcqcn_sink::receive(packet& p) {
  NDPSIM_ASSERT(p.type == packet_type::dcqcn_data);
  NDPSIM_ASSERT(p.flow_id == flow_id_);

  const bool marked = p.has_flag(pkt_flag::ce);
  if (p.seqno > cum_ && ooo_.find(p.seqno) == ooo_.end()) {
    payload_ += p.payload_bytes;
    if (p.seqno == cum_ + 1) {
      ++cum_;
      auto it = ooo_.begin();
      while (it != ooo_.end() && *it == cum_ + 1) {
        ++cum_;
        it = ooo_.erase(it);
      }
    } else {
      ooo_.insert(p.seqno);
    }
  }

  // NP: CNPs are rate-limited per flow; ACK every packet (cumulative).
  if (marked && env_.now() - last_cnp_ >= cnp_interval_) {
    last_cnp_ = env_.now();
    ++cnps_;
    send_control(packet_type::dcqcn_cnp, cum_);
  }
  send_control(packet_type::dcqcn_ack, cum_);
  env_.pool.release(&p);
}

void dcqcn_sink::send_control(packet_type type, std::uint64_t ackno) {
  NDPSIM_ASSERT_MSG(rev_route_ != nullptr, "dcqcn_sink not bound");
  packet* c = env_.pool.alloc();
  c->type = type;
  c->priority = 1;
  c->flow_id = flow_id_;
  c->src = local_host_;
  c->dst = remote_host_;
  c->size_bytes = kHeaderBytes;
  c->ackno = ackno;
  c->rt = rev_route_;
  c->next_hop = 0;
  send_to_next_hop(*c);
}

}  // namespace ndpsim
