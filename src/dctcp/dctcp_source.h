// DCTCP (Alizadeh et al., SIGCOMM 2010): TCP with a fractional ECN response.
//
// The switch marks with a sharp threshold K (instantaneous queue).  The
// receiver echoes CE per packet.  The sender maintains
//    alpha <- (1 - g) * alpha + g * F
// where F is the fraction of acked bytes that were marked over the last
// observation window (~1 RTT), and on a marked window cuts
//    cwnd <- cwnd * (1 - alpha / 2)
// at most once per window.
#pragma once

#include "tcp/tcp_source.h"

namespace ndpsim {

struct dctcp_config {
  double g = 1.0 / 16.0;  ///< EWMA gain
};

class dctcp_source final : public tcp_source {
 public:
  dctcp_source(sim_env& env, tcp_config cfg, dctcp_config dcfg,
               std::uint32_t flow_id, std::string name = "dctcpsrc")
      : tcp_source(env, [&] { cfg.ecn = true; return cfg; }(), flow_id,
                   std::move(name)),
        dcfg_(dcfg) {}

  [[nodiscard]] double alpha() const { return alpha_; }

 protected:
  void ecn_feedback(std::uint64_t newly_acked, bool echo) override;

 private:
  dctcp_config dcfg_;
  double alpha_ = 1.0;  ///< start conservative, as the paper does
  std::uint64_t window_acked_ = 0;
  std::uint64_t window_marked_ = 0;
  std::uint64_t window_end_ = 0;  ///< observation window boundary (snd_una)
  bool cut_this_window_ = false;
};

}  // namespace ndpsim
