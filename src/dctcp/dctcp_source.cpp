#include "dctcp/dctcp_source.h"

#include <algorithm>

namespace ndpsim {

void dctcp_source::ecn_feedback(std::uint64_t newly_acked, bool echo) {
  window_acked_ += newly_acked;
  if (echo) window_marked_ += newly_acked;

  // One observation window ~= one cwnd of acked bytes.
  if (bytes_acked() >= window_end_) {
    const double f =
        window_acked_ > 0
            ? static_cast<double>(window_marked_) /
                  static_cast<double>(window_acked_)
            : 0.0;
    alpha_ = (1.0 - dcfg_.g) * alpha_ + dcfg_.g * f;
    window_acked_ = 0;
    window_marked_ = 0;
    window_end_ = bytes_acked() + cwnd_;
    cut_this_window_ = false;
  }

  if (echo && !cut_this_window_) {
    cut_this_window_ = true;
    const auto cut = static_cast<std::uint64_t>(
        static_cast<double>(cwnd_) * alpha_ / 2.0);
    cwnd_ = std::max<std::uint64_t>(cwnd_ - cut, 2 * payload_per_packet());
    ssthresh_ = cwnd_;
  }
}

}  // namespace ndpsim
